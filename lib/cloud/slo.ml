open Bm_engine

type tier = Gold | Silver | Bronze

let tier_name = function Gold -> "gold" | Silver -> "silver" | Bronze -> "bronze"

let tier_of_index i =
  match (i mod 3 + 3) mod 3 with 0 -> Gold | 1 -> Silver | _ -> Bronze

type target = {
  availability : float;
  p99_ms : float;
  goodput : float;
  compliant_windows : float;
}

let default_target = function
  | Gold -> { availability = 0.99; p99_ms = 0.25; goodput = 0.97; compliant_windows = 0.75 }
  | Silver -> { availability = 0.97; p99_ms = 0.5; goodput = 0.95; compliant_windows = 0.625 }
  | Bronze -> { availability = 0.90; p99_ms = 2.0; goodput = 0.85; compliant_windows = 0.5 }

(* One window's worth of a tenant's resolutions. The latency histogram
   covers 100 ns .. 100 ms at 1% relative error — every fabric path of
   interest, with bounded memory per (tenant, window). *)
type cell = {
  mutable delivered : int;
  mutable failed : int;
  mutable shed : int;
  mutable offered_bytes : float;
  mutable delivered_bytes : float;
  latency : Stats.Histogram.t;
}

let new_cell () =
  {
    delivered = 0;
    failed = 0;
    shed = 0;
    offered_bytes = 0.0;
    delivered_bytes = 0.0;
    latency = Stats.Histogram.create ~lo:100.0 ~hi:1e8 ();
  }

type tenant_state = { tier : tier; target : target; cells : (int, cell) Hashtbl.t }

type t = {
  now : unit -> float;
  window_ns : float;
  tenants : (string, tenant_state) Hashtbl.t;
  obs : Obs.t;
}

let create ?(obs = Obs.none) ~now ~window_ns () =
  if not (window_ns > 0.0) then invalid_arg "Slo.create: window_ns must be positive";
  { now; window_ns; tenants = Hashtbl.create 64; obs }

let declare t ~tenant ~tier ?target () =
  if Hashtbl.mem t.tenants tenant then
    invalid_arg (Printf.sprintf "Slo.declare: duplicate tenant %S" tenant);
  let target = Option.value target ~default:(default_target tier) in
  Hashtbl.replace t.tenants tenant { tier; target; cells = Hashtbl.create 16 }

let tier_of t ~tenant = Option.map (fun s -> s.tier) (Hashtbl.find_opt t.tenants tenant)

let state t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Slo: tenant %S not declared" tenant)

let cell_now t st =
  let w = int_of_float (t.now () /. t.window_ns) in
  match Hashtbl.find_opt st.cells w with
  | Some c -> c
  | None ->
    let c = new_cell () in
    Hashtbl.replace st.cells w c;
    c

let deliver t ~tenant ~bytes ~latency_ns =
  let c = cell_now t (state t tenant) in
  c.delivered <- c.delivered + 1;
  c.offered_bytes <- c.offered_bytes +. float_of_int bytes;
  c.delivered_bytes <- c.delivered_bytes +. float_of_int bytes;
  Stats.Histogram.add c.latency latency_ns;
  Metrics.incr_opt (Obs.metrics t.obs) "cloud.slo.delivered"

let fail t ~tenant ~bytes =
  let c = cell_now t (state t tenant) in
  c.failed <- c.failed + 1;
  c.offered_bytes <- c.offered_bytes +. float_of_int bytes;
  Metrics.incr_opt (Obs.metrics t.obs) "cloud.slo.failed"

let shed t ~tenant ~bytes =
  let c = cell_now t (state t tenant) in
  c.shed <- c.shed + 1;
  c.offered_bytes <- c.offered_bytes +. float_of_int bytes;
  Metrics.incr_opt (Obs.metrics t.obs) "cloud.slo.shed"

(* --- scoring -------------------------------------------------------- *)

let resolved c = c.delivered + c.failed + c.shed

let cell_ok (target : target) c =
  let n = resolved c in
  if n = 0 then true
  else begin
    let avail = float_of_int c.delivered /. float_of_int n in
    let goodput =
      if c.offered_bytes > 0.0 then c.delivered_bytes /. c.offered_bytes else 1.0
    in
    let p99_ms =
      if Stats.Histogram.count c.latency = 0 then 0.0
      else Stats.Histogram.percentile c.latency 99.0 /. 1e6
    in
    avail >= target.availability && goodput >= target.goodput && p99_ms <= target.p99_ms
  end

type tenant_score = {
  tenant : string;
  tier : tier;
  target : target;
  offered : int;
  delivered : int;
  failed : int;
  shed_count : int;
  offered_bytes : float;
  delivered_bytes : float;
  availability : float;
  p99_ms : float;
  goodput : float;
  windows : int;
  ok_windows : int;
  met : bool;
}

let windows_elapsed t ~now_ns = int_of_float (now_ns /. t.window_ns)

let score_tenant name (st : tenant_state) ~nwindows =
  let agg = new_cell () in
  let hist = ref agg.latency in
  let ok = ref 0 in
  for w = 0 to nwindows - 1 do
    match Hashtbl.find_opt st.cells w with
    | None -> incr ok (* no demand, no violation *)
    | Some c ->
      if cell_ok st.target c then incr ok;
      agg.delivered <- agg.delivered + c.delivered;
      agg.failed <- agg.failed + c.failed;
      agg.shed <- agg.shed + c.shed;
      agg.offered_bytes <- agg.offered_bytes +. c.offered_bytes;
      agg.delivered_bytes <- agg.delivered_bytes +. c.delivered_bytes;
      hist := Stats.Histogram.merge !hist c.latency
  done;
  let n = resolved agg in
  {
    tenant = name;
    tier = st.tier;
    target = st.target;
    offered = n;
    delivered = agg.delivered;
    failed = agg.failed;
    shed_count = agg.shed;
    offered_bytes = agg.offered_bytes;
    delivered_bytes = agg.delivered_bytes;
    availability = (if n = 0 then 1.0 else float_of_int agg.delivered /. float_of_int n);
    p99_ms =
      (if Stats.Histogram.count !hist = 0 then 0.0
       else Stats.Histogram.percentile !hist 99.0 /. 1e6);
    goodput =
      (if agg.offered_bytes > 0.0 then agg.delivered_bytes /. agg.offered_bytes else 1.0);
    windows = nwindows;
    ok_windows = !ok;
    met =
      nwindows = 0
      || float_of_int !ok /. float_of_int nwindows >= st.target.compliant_windows -. 1e-9;
  }

let scores t ~until_ns =
  let nwindows = int_of_float (ceil (until_ns /. t.window_ns)) in
  Hashtbl.fold (fun name st acc -> (name, st) :: acc) t.tenants []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, st) -> score_tenant name st ~nwindows)

(* A tenant participates in a window's pressure only when it actually
   resolved traffic there: a tenant idle through a traffic gap (no cell,
   or a cell with nothing resolved) must not dilute the denominator by
   counting as "meeting" an SLO it was never offered. *)
let window_active st ~window =
  match Hashtbl.find_opt st.cells window with
  | None -> None
  | Some c -> if resolved c > 0 then Some c else None

let window_pressure t ?tiers ~window () =
  let counted tier = match tiers with None -> true | Some ts -> List.mem tier ts in
  let total = ref 0 and missing = ref 0 in
  Hashtbl.iter
    (fun _ st ->
      match window_active st ~window with
      | None -> ()
      | Some c ->
        if counted st.tier then begin
          incr total;
          if not (cell_ok st.target c) then incr missing
        end)
    t.tenants;
  if !total = 0 then 0.0 else float_of_int !missing /. float_of_int !total

let window_misses t ?tiers ~window () =
  let counted tier = match tiers with None -> true | Some ts -> List.mem tier ts in
  Hashtbl.fold
    (fun name st acc ->
      match window_active st ~window with
      | Some c when counted st.tier && not (cell_ok st.target c) -> (name, st.tier) :: acc
      | Some _ | None -> acc)
    t.tenants []
  |> List.sort compare

let window_tier_p99 t ~tier ~window =
  Hashtbl.fold
    (fun _ (st : tenant_state) worst ->
      if st.tier <> tier then worst
      else
        match window_active st ~window with
        | Some c when Stats.Histogram.count c.latency > 0 ->
          Float.max worst (Stats.Histogram.percentile c.latency 99.0 /. 1e6)
        | Some _ | None -> worst)
    t.tenants 0.0

let row_header =
  [ "tenant"; "tier"; "offered"; "ok"; "shed"; "avail"; "p99 ms"; "goodput"; "windows"; "slo" ]

let pct x = Printf.sprintf "%.1f%%" (x *. 100.0)

let row s =
  [
    s.tenant;
    tier_name s.tier;
    string_of_int s.offered;
    string_of_int s.delivered;
    string_of_int s.shed_count;
    pct s.availability;
    Printf.sprintf "%.2f" s.p99_ms;
    pct s.goodput;
    Printf.sprintf "%d/%d" s.ok_windows s.windows;
    (if s.met then "met" else "MISS");
  ]
