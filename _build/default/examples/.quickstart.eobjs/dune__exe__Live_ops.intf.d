examples/live_ops.mli:
