open Bm_engine
open Bm_hw
open Bm_virtio
open Bm_cloud
open Bm_guest
module Vf = Bm_iobond.Vf

type params = {
  cpu_overhead : float;
  mem_tax : float;
  vhost_pkt_ns : float;
  vblk_req_ns : float;
  vblk_sched_ns : float;
  vblk_hiccup_p : float;
  vblk_hiccup_scale_ns : float;
  copy_gb_s : float;
  injection_ns : float;
}

(* cpu_overhead 1.5%: background exits + world switches leave SPEC-class
   work ~2-4% slower together with the EPT term (§4.2). mem_tax 2%: the
   vm-guest reaches ~98% of bm STREAM bandwidth under load. vhost/vblk
   costs are DPDK/SPDK-class. copy_gb_s: one CPU core's memcpy rate —
   the extra storage copies the bm path avoids (§4.3). *)
(* copy_gb_s: effective end-to-end rate of the vm block data path's CPU
   copies (two crossings plus per-segment block-layer work — well below
   a raw memcpy). The bm path moves the same bytes with IO-Bond's DMA
   engine instead, which is the §4.3 claim that unrestricted local-SSD
   bandwidth doubles on bare metal. *)
(* vblk_sched_ns: unlike the bm path (IO-Bond DMA straight into the
   device queue, §4.3), a vm request traverses the host block layer and
   the vhost event loop twice; eventfd wake-ups and completion softirqs
   add tens of microseconds of scheduling latency. This is the term
   behind Fig. 11's ~25% average gap. *)
let default_params =
  {
    cpu_overhead = 0.015;
    mem_tax = 0.02;
    vhost_pkt_ns = 200.0;
    vblk_req_ns = 2_500.0;
    vblk_sched_ns = 30_000.0;
    vblk_hiccup_p = 0.002;
    vblk_hiccup_scale_ns = 300_000.0;
    copy_gb_s = 2.2;
    injection_ns = 3_000.0;
  }

type vm = {
  instance : Instance.t;
  exits : Vmexit.counters;
  preempt : Preempt.t;
  rekick : unit -> unit; (* re-arm backend work hints after a respawn *)
  vm_datapath : Vf.datapath;
  vm_vf : Vf.vf option;
}

type host = {
  sim : Sim.t;
  rng : Rng.t;
  spec : Cpu_spec.t;
  params : params;
  batch : int;
  service_cores : Cores.t;
  vswitch : Vswitch.t;
  storage : Blockstore.t;
  total_threads : int;
  obs : Obs.t;
  vhost_alive : bool ref;
  mutable provisioned_threads : int;
  mutable vms : (string * vm) list;
  fault : Fault.t;
  vf_total : int;
  vf_queues : int;
  mutable vf_pool : Vf.dev option; (* created on first VFIO attachment *)
  mutable vf_fallbacks : int;
}

let reserved_threads = 8

(* Bounded per-VM rx backlog between vswitch delivery and the vhost
   pump, mirroring the bm path's NIC-queue bound. *)
let rx_backlog_capacity = 512

let create_host ?(obs = Obs.none) ?(fault = Fault.none) sim rng ~fabric ~storage
    ?(spec = Cpu_spec.xeon_e5_2682_v4) ?(sockets = 2) ?(params = default_params) ?(batch = 1)
    ?(vfs = 8) ?(vf_queues = 2) () =
  if batch < 1 then invalid_arg "Kvm.create_host: batch must be >= 1";
  if vfs < 1 then invalid_arg "Kvm.create_host: vfs must be >= 1";
  if vf_queues < 1 then invalid_arg "Kvm.create_host: vf_queues must be >= 1";
  let total = sockets * spec.Cpu_spec.threads in
  let service_cores = Cores.create sim ~spec ~threads:reserved_threads () in
  let host =
    {
      sim;
      rng;
      spec;
      params;
      batch;
      service_cores;
      vswitch = Vswitch.create ~obs sim ~fabric ~cores:service_cores ();
      storage;
      total_threads = total - reserved_threads;
      obs;
      vhost_alive = ref true;
      provisioned_threads = 0;
      vms = [];
      fault;
      vf_total = vfs;
      vf_queues;
      vf_pool = None;
      vf_fallbacks = 0;
    }
  in
  (* The vhost worker threads die and respawn just like the bm path's
     PMD processes, so goodput-under-faults compares like with like.
     Ring state is shared memory; the respawned workers drain from where
     the rings left off. *)
  Fault.subscribe fault Fault.Pmd_crash (fun ev ->
      if !(host.vhost_alive) then begin
        host.vhost_alive := false;
        Metrics.incr_opt (Obs.metrics obs) "hyp.vm.vhost_crashes";
        Sim.schedule sim ~delay:ev.Fault.duration_ns (fun () ->
            host.vhost_alive := true;
            Metrics.incr_opt (Obs.metrics obs) "hyp.vm.vhost_respawns";
            List.iter (fun (_, vm) -> vm.rekick ()) host.vms)
      end);
  host

let wait_vhost_alive host =
  while not !(host.vhost_alive) do
    Sim.delay 10_000.0
  done

(* Poll-loop iteration period of the batched vhost drain (see
   Bm_hypervisor.poll_tick_ns): at [batch > 1] the worker sleeps one
   tick between bursts so descriptors accumulate into them; at the
   default of 1 the drain stays hint-driven and bit-identical. *)
let poll_tick_ns = 1_000.0

let vswitch host = host.vswitch
let sellable_threads host = host.total_threads
let service_cores host = host.service_cores

(* The host's VFIO-capable SR-IOV NIC: a commodity ASIC part, created
   on first use so vring-only hosts schedule exactly the events they
   always did. *)
let vf_pool_dev host =
  match host.vf_pool with
  | Some d -> d
  | None ->
    let d =
      Vf.create_device ~obs:host.obs ~fault:host.fault host.sim
        ~profile:Bm_iobond.Profile.Asic ~vfs:host.vf_total ~queues_per_vf:host.vf_queues ()
    in
    host.vf_pool <- Some d;
    d

let vf_capacity host = host.vf_total
let vf_free host = match host.vf_pool with None -> host.vf_total | Some d -> Vf.free_vfs d
let vf_fallbacks host = host.vf_fallbacks
let vf_pool_device host = host.vf_pool

type vm_config = {
  name : string;
  vcpus : int;
  mem_gb : int;
  pinning : Preempt.mode;
  host_load : float;
  net_limits : Limits.net;
  blk_limits : Limits.blk;
  nested : bool;
  halt_polling : bool;
  datapath : Vf.datapath;
}

let default_config ~name =
  {
    name;
    vcpus = 32;
    mem_gb = 64;
    pinning = Preempt.Exclusive;
    host_load = 0.5;
    net_limits = Limits.cloud_net ();
    blk_limits = Limits.cloud_blk ();
    nested = false;
    halt_polling = true;
    datapath = Vf.Vring;
  }

let create_vm host config =
  if config.vcpus > host.total_threads - host.provisioned_threads then
    invalid_arg "Kvm.create_vm: host out of sellable threads";
  host.provisioned_threads <- host.provisioned_threads + config.vcpus;
  let sim = host.sim in
  let p = host.params in
  let os = Guest_os.default in
  let spec = host.spec in
  let exits =
    Vmexit.create_counters ~obs:host.obs ~track:("hyp.vmexit." ^ config.name) ()
  in
  let preempt =
    Preempt.create ~obs:host.obs sim (Rng.split host.rng) ~mode:config.pinning
      ~host_load:config.host_load ()
  in
  let vm_rng = Rng.split host.rng in
  let poll_mode = ref false in
  let guest_cores = Cores.create sim ~spec ~threads:config.vcpus () in
  let memory = Memory.of_spec sim spec in
  Memory.set_tax memory p.mem_tax;
  let tlb = Tlb.create () in
  (* Trapped-and-emulated config accesses: each costs a full exit. *)
  let on_access () =
    Vmexit.record exits Vmexit.Io_instruction;
    Sim.delay (Vmexit.handle_ns Vmexit.Io_instruction)
  in
  (* Net rings sized like a multiqueue device (8 queues x 256). *)
  let net = Virtio_net.create ~obs:host.obs ~queue_size:2048 ~on_access () in
  let blkdev = Virtio_blk.create ~obs:host.obs ~on_access () in
  (* The vhost-user backends come up through the real control protocol
     before any descriptor moves (§3.4.2). *)
  let bring_up features =
    let backend = Vhost_user.create ~backend_features:features () in
    match Vhost_user.standard_handshake backend ~driver_features:features with
    | Ok () -> backend
    | Error e -> invalid_arg ("vhost-user handshake failed: " ^ e)
  in
  let _vhost_net = bring_up Feature.default_net in
  let _vhost_blk = bring_up Feature.default_blk in
  (* Work hints coalesce: capacity 1, a kick rung while one is pending
     folds into it (the drain loop will see the new work anyway). *)
  let tx_hint = Sim.Bounded.create ~capacity:1 ~policy:Sim.Bounded.Drop_tail () in
  let blk_hint = Sim.Bounded.create ~capacity:1 ~policy:Sim.Bounded.Drop_tail () in
  (* vhost-user PMD: kicks are doorbells into shared memory, no exit. *)
  Virtio_net.set_notify net
    ~tx:(fun () -> ignore (Sim.Bounded.send tx_hint ()))
    ~rx:(fun () -> ());
  Virtio_blk.set_notify blkdev (fun () -> ignore (Sim.Bounded.send blk_hint ()));
  let io_factor = if config.nested then 1.0 /. Nested.io_efficiency else 1.0 in
  let cpu_factor =
    (1.0 +. p.cpu_overhead) *. if config.nested then 1.0 /. Nested.cpu_efficiency else 1.0
  in
  let rx_handler = ref (fun (_ : Packet.t) -> ()) in

  (* Without halt polling, an idle vCPU has HLT-exited and been scheduled
     out: waking it for an injected interrupt costs a host scheduling
     round trip on top of the injection (the KVM halt_polling feature the
     paper's related work cites exists to avoid exactly this). *)
  let wake_ns () =
    if config.halt_polling then 0.0
    else begin
      Vmexit.record exits Vmexit.Hlt;
      25_000.0
    end
  in
  (* Guest-side completion handling: one injected interrupt costs the
     guest an exit/entry pair plus the kernel ISR, then the stack work. *)
  Virtio_net.set_interrupt net (fun () ->
      Sim.spawn sim (fun () ->
          (* Interrupt/injection context preempts the guest's threads:
             charge it as time, not as a queued core reservation. *)
          if !poll_mode then
            (* Guest PMD polls the rings: no injection, bypass stack. *)
            Sim.delay 500.0
          else begin
            Vmexit.record exits Vmexit.Interrupt_window;
            Sim.delay (wake_ns () +. ((p.injection_ns +. os.Guest_os.irq_entry_ns) *. io_factor))
          end;
          ignore (Virtio_net.reap_tx net);
          let pkts = Virtio_net.reap_rx net in
          ignore (Virtio_net.refill_rx net ~target:1536);
          List.iter
            (fun pkt ->
              let count = pkt.Packet.count in
              let stack_ns =
                if !poll_mode then Guest_os.dpdk_rx_ns_of os ~count
                else Guest_os.net_rx_ns os ~kind:pkt.Packet.protocol ~count
              in
              Cores.execute_ns guest_cores (stack_ns *. io_factor);
              !rx_handler pkt)
            pkts));
  Virtio_blk.set_interrupt blkdev (fun () ->
      Sim.spawn sim (fun () ->
          Vmexit.record exits Vmexit.Interrupt_window;
          Sim.delay (wake_ns () +. ((p.injection_ns +. os.Guest_os.irq_entry_ns) *. io_factor));
          ignore (Virtio_blk.reap blkdev)));

  (* vhost-net backend thread on the host service cores. *)
  Sim.spawn sim (fun () ->
      let process_tx pkt =
        Cores.execute_ns host.service_cores (p.vhost_pkt_ns *. float_of_int pkt.Packet.count);
        Vswitch.send host.vswitch pkt
      in
      let rec loop () =
        Sim.Bounded.recv tx_hint;
        wait_vhost_alive host;
        (* Bursts fan out to PMD workers, as multiqueue vhost does: the
           ring drains in poll-tick bursts of up to [host.batch] chains,
           one worker fiber (one host-side event) per burst. *)
        let rec drain () =
          let rec burst n acc =
            if n >= host.batch then List.rev acc
            else
              match Vring.pop_avail (Virtio_net.tx_ring net) with
              | Some chain ->
                Vring.push_used (Virtio_net.tx_ring net) ~head:chain.Vring.head ~written:0;
                burst (n + 1) (chain.Vring.payload :: acc)
              | None -> List.rev acc
          in
          match burst 0 [] with
          | [] -> ()
          | pkts ->
            Sim.fork (fun () -> List.iter process_tx pkts);
            if host.batch > 1 then Sim.delay poll_tick_ns;
            drain ()
        in
        if host.batch > 1 then Sim.delay poll_tick_ns;
        drain ();
        Virtio_net.fire_interrupt net;
        loop ()
      in
      loop ());

  (* VFIO direct assignment: passthrough pins a whole SR-IOV device to
     this VM, a slice attaches one VF of the host NIC; an exhausted
     pool falls back to the vhost path. Guest MMIO to the assigned
     device does not exit — that is the point of the comparison. *)
  let vf_attached =
    match config.datapath with
    | Vf.Vring -> None
    | Vf.Passthrough ->
      let dev =
        Vf.create_device ~obs:host.obs ~fault:host.fault sim
          ~profile:Bm_iobond.Profile.Asic ~vfs:1 ~queues_per_vf:host.vf_queues ()
      in
      (match Vf.attach dev ~owner:config.name () with Ok vf -> Some vf | Error _ -> None)
    | Vf.Sliced -> (
      match Vf.attach (vf_pool_dev host) ~owner:config.name () with
      | Ok vf -> Some vf
      | Error _ ->
        host.vf_fallbacks <- host.vf_fallbacks + 1;
        Metrics.incr_opt (Obs.metrics host.obs) "hyp.vm.vf_fallbacks";
        None)
  in

  (* Receive path: vswitch delivery -> bounded backlog -> rx ring ->
     injected interrupt. A backlog overflow is a NIC-queue drop. *)
  let rx_chan =
    Sim.Bounded.create ~capacity:rx_backlog_capacity ~policy:Sim.Bounded.Drop_tail ()
  in
  Obs.watch_bounded host.obs ~track:"hyp.vm.rx_backlog" rx_chan;
  let endpoint =
    match vf_attached with
    | None ->
      Vswitch.register host.vswitch ~deliver:(fun pkt -> ignore (Sim.Bounded.send rx_chan pkt))
    | Some vf ->
      (* The assigned device DMAs into guest memory and its MSI is
         injected directly; the vhost workers never see the packet. *)
      let rxq = ref 0 in
      Vswitch.register host.vswitch ~deliver:(fun pkt ->
          let q = !rxq in
          rxq := (q + 1) mod Vf.queues vf;
          let deliver _c =
            Sim.spawn sim (fun () ->
                if !poll_mode then Sim.delay 500.0
                else begin
                  Vmexit.record exits Vmexit.Interrupt_window;
                  Sim.delay
                    (wake_ns () +. ((p.injection_ns +. os.Guest_os.irq_entry_ns) *. io_factor))
                end;
                let count = pkt.Packet.count in
                let stack_ns =
                  if !poll_mode then Guest_os.dpdk_rx_ns_of os ~count
                  else Guest_os.net_rx_ns os ~kind:pkt.Packet.protocol ~count
                in
                Cores.execute_ns guest_cores (stack_ns *. io_factor);
                !rx_handler pkt)
          in
          match Vf.submit vf ~queue:q ~bytes_:pkt.Packet.size ~deliver with
          | `Submitted _ -> ()
          | `Rejected ->
            Metrics.incr_opt (Obs.metrics host.obs)
              ~by:(float_of_int pkt.Packet.count)
              "hyp.vm.rx_drops")
  in
  Sim.spawn sim (fun () ->
      let process_rx pkt =
        Cores.execute_ns host.service_cores (p.vhost_pkt_ns *. float_of_int pkt.Packet.count);
        match Vring.pop_avail (Virtio_net.rx_ring net) with
        | Some chain ->
          Vring.set_payload (Virtio_net.rx_ring net) ~head:chain.Vring.head pkt;
          Vring.push_used (Virtio_net.rx_ring net) ~head:chain.Vring.head
            ~written:pkt.Packet.size;
          Virtio_net.fire_interrupt net
        | None -> (* no posted buffer: drop *) ()
      in
      let rec loop () =
        let pkt = Sim.Bounded.recv rx_chan in
        wait_vhost_alive host;
        (* Pull whatever else already sits in the backlog, up to the
           poll-tick burst: one worker fiber per burst. At batch > 1,
           wait out a poll tick first so the burst has arrivals. *)
        if host.batch > 1 then Sim.delay poll_tick_ns;
        let rec burst n acc =
          if n >= host.batch then List.rev acc
          else
            match Sim.Bounded.try_recv rx_chan with
            | Some pkt -> burst (n + 1) (pkt :: acc)
            | None -> List.rev acc
        in
        let pkts = burst 1 [ pkt ] in
        Sim.fork (fun () -> List.iter process_rx pkts);
        loop ()
      in
      loop ());

  (* vhost-blk backend: pops requests, serves them against cloud storage
     with the extra CPU copies of the vm path, completes, injects. The
     per-VM iothread is single: its CPU work (request handling + data
     copies) serialises, while device-side service overlaps. *)
  let vblk_iothread = Sim.Resource.create ~capacity:1 in
  Sim.spawn sim (fun () ->
      let process_blk chain =
        let req = chain.Vring.payload in
        Sim.delay (p.vblk_sched_ns /. 2.0);
        Sim.Resource.with_resource vblk_iothread (fun () ->
            (* Under nesting the L1 hypervisor's backend is itself
               a guest: its per-request work multiplies. *)
            Cores.execute_ns host.service_cores (p.vblk_req_ns *. io_factor);
            (* Extra buffer copies between guest and host I/O
               stacks; writes cross twice (data out, ack in). *)
            let copies =
              match req.Virtio_blk.op with
              | Virtio_blk.Write -> 2.0
              | Virtio_blk.Read | Virtio_blk.Flush -> 1.0
            in
            let copy_ns = copies *. float_of_int req.Virtio_blk.bytes /. p.copy_gb_s in
            Cores.execute_ns host.service_cores (copy_ns *. io_factor));
        let op =
          match req.Virtio_blk.op with
          | Virtio_blk.Read -> `Read
          | Virtio_blk.Write -> `Write
          | Virtio_blk.Flush -> `Flush
        in
        (match Blockstore.serve host.storage ~op ~bytes_:req.Virtio_blk.bytes with
        | `Served -> ()
        | `Rejected ->
          req.Virtio_blk.failed <- true;
          Metrics.incr_opt (Obs.metrics host.obs) "hyp.vm.blk_rejected");
        Sim.delay (p.vblk_sched_ns /. 2.0);
        (* Rare host block-layer hiccup: the source of the vm's
           heavy p99.9 storage tail (Fig. 11). *)
        if Rng.bernoulli vm_rng ~p:p.vblk_hiccup_p then
          Sim.delay (Rng.pareto vm_rng ~scale:p.vblk_hiccup_scale_ns ~shape:1.4);
        (* The completion thread itself can be preempted. *)
        Preempt.maybe_steal preempt;
        Vring.push_used (Virtio_blk.ring blkdev) ~head:chain.Vring.head
          ~written:req.Virtio_blk.bytes;
        Virtio_blk.fire_interrupt blkdev
      in
      let rec loop () =
        Sim.Bounded.recv blk_hint;
        wait_vhost_alive host;
        let rec drain () =
          let rec burst n acc =
            if n >= host.batch then List.rev acc
            else
              match Vring.pop_avail (Virtio_blk.ring blkdev) with
              | Some chain -> burst (n + 1) (chain :: acc)
              | None -> List.rev acc
          in
          match burst 0 [] with
          | [] -> ()
          | chains ->
            Sim.fork (fun () -> List.iter process_blk chains);
            if host.batch > 1 then Sim.delay poll_tick_ns;
            drain ()
        in
        if host.batch > 1 then Sim.delay poll_tick_ns;
        drain ();
        loop ()
      in
      loop ());

  (* Keep rx buffers posted from the start. *)
  Sim.spawn sim (fun () -> ignore (Virtio_net.refill_rx net ~target:1536));

  (* Co-residency perturbs the shared LLC/SMT pipelines: a few percent
     of run-to-run noise on top of the deterministic overheads — the
     fluctuation the paper attributes to the cache (Fig. 16). *)
  let cache_noise () = 1.0 +. Float.abs (Rng.normal vm_rng ~mean:0.0 ~stddev:0.04) in
  let exec_ns natural =
    Preempt.maybe_steal preempt;
    Cores.execute_ns guest_cores (natural *. cpu_factor *. cache_noise ())
  in
  let exec_mem_ns ~working_set ~locality natural =
    Preempt.maybe_steal preempt;
    let factor = Ept.dilation_factor ~obs:host.obs tlb ~virtualized:true ~working_set ~locality in
    Cores.execute_ns guest_cores (natural *. cpu_factor *. factor *. cache_noise ())
  in
  let net_shed pkt =
    Metrics.incr_opt (Obs.metrics host.obs)
      ~by:(float_of_int pkt.Packet.count)
      "hyp.vm.net_shed";
    false
  in
  let send pkt =
    Cores.execute_ns guest_cores
      (Guest_os.net_tx_ns os ~kind:pkt.Packet.protocol ~count:pkt.Packet.count *. io_factor);
    if Limits.net_admit config.net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size
    then Virtio_net.xmit net pkt
    else net_shed pkt
  in
  let send_dpdk pkt =
    Cores.execute_ns guest_cores (Guest_os.dpdk_tx_ns_of os ~count:pkt.Packet.count *. io_factor);
    if Limits.net_admit config.net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size
    then Virtio_net.xmit net pkt
    else net_shed pkt
  in
  (* With an assigned device the tx doorbell is a plain MMIO store to
     real hardware — no exit, no vhost worker: the device streams the
     descriptor at its arbitrated share and forwards it in hardware. *)
  let send, send_dpdk =
    match vf_attached with
    | None -> (send, send_dpdk)
    | Some vf ->
      let txq = ref 0 in
      let vf_xmit pkt =
        let q = !txq in
        txq := (q + 1) mod Vf.queues vf;
        match
          Vf.submit vf ~queue:q ~bytes_:pkt.Packet.size ~deliver:(fun _ ->
              Vswitch.forward_hw host.vswitch pkt)
        with
        | `Submitted _ -> true
        | `Rejected ->
          Metrics.incr_opt (Obs.metrics host.obs)
            ~by:(float_of_int pkt.Packet.count)
            "hyp.vm.vf_tx_rejects";
          false
      in
      ( (fun pkt ->
          Cores.execute_ns guest_cores
            (Guest_os.net_tx_ns os ~kind:pkt.Packet.protocol ~count:pkt.Packet.count
            *. io_factor);
          if Limits.net_admit config.net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size
          then vf_xmit pkt
          else net_shed pkt),
        fun pkt ->
          Cores.execute_ns guest_cores
            (Guest_os.dpdk_tx_ns_of os ~count:pkt.Packet.count *. io_factor);
          if Limits.net_admit config.net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size
          then vf_xmit pkt
          else net_shed pkt )
  in
  let blk_attempt ~op ~bytes_ =
    Cores.execute_ns guest_cores (os.Guest_os.blk_submit_ns *. io_factor);
    if not (Limits.blk_admit config.blk_limits ~bytes_) then begin
      Metrics.incr_opt (Obs.metrics host.obs) "hyp.vm.blk_shed";
      Cores.execute_ns guest_cores (os.Guest_os.blk_complete_ns *. io_factor);
      Error `Limited
    end
    else begin
      (* Completion latency (fio's clat): measured once the request is
         admitted past the instance rate limiter. *)
      let t0 = Sim.clock () in
      let vop =
        match op with `Read -> Virtio_blk.Read | `Write -> Virtio_blk.Write | `Flush -> Virtio_blk.Flush
      in
      let req = Virtio_blk.make_req ~op:vop ~sector:0 ~bytes:bytes_ ~now:(Sim.clock ()) in
      if not (Virtio_blk.submit blkdev req) then begin
        Sim.delay 1_000.0;
        Cores.execute_ns guest_cores (os.Guest_os.blk_complete_ns *. io_factor);
        Error (`Busy (Sim.clock () -. t0))
      end
      else begin
        ignore (Sim.Ivar.read req.Virtio_blk.done_);
        Cores.execute_ns guest_cores (os.Guest_os.blk_complete_ns *. io_factor);
        let lat = Sim.clock () -. t0 in
        if req.Virtio_blk.failed then Error (`Rejected lat) else Ok lat
      end
    end
  in
  let blk ~op ~bytes_ =
    match blk_attempt ~op ~bytes_ with
    | Ok lat | Error (`Busy lat) | Error (`Rejected lat) -> lat
    | Error `Limited -> 0.0
  in
  let blk_try ~op ~bytes_ =
    match blk_attempt ~op ~bytes_ with
    | Ok lat -> Ok lat
    | Error `Limited -> Error `Limited
    | Error (`Busy _) -> Error `Busy
    | Error (`Rejected _) -> Error `Rejected
  in
  let probe () =
    match Virtio_net.probe net with
    | Error e -> Error e
    | Ok () -> (
      match Virtio_blk.probe blkdev with
      | Error e -> Error e
      | Ok () ->
        Ok
          (Virtio_pci.access_count (Virtio_net.pci net)
          + Virtio_pci.access_count (Virtio_blk.pci blkdev)))
  in
  let instance =
    {
      Instance.name = config.name;
      kind = Instance.Virtual;
      spec;
      endpoint;
      cores = guest_cores;
      memory;
      os;
      exec_ns;
      exec_mem_ns;
      mem_stream = (fun ~bytes_ -> Memory.transfer memory ~bytes_);
      send;
      send_dpdk;
      set_rx_handler = (fun h -> rx_handler := h);
      blk;
      blk_try;
      probe;
      pause = (fun () -> Preempt.maybe_steal preempt);
      ipi =
        (fun () ->
          (* Sending the IPI exits the sender; delivery exits the target. *)
          Vmexit.record exits Vmexit.Ipi;
          Cores.execute_ns guest_cores (1_000.0 +. Vmexit.handle_ns Vmexit.Ipi));
      set_poll_mode = (fun b -> poll_mode := b);
      timer_arm =
        (fun () ->
          (* Arming the TSC-deadline timer is an MSR write: one exit. *)
          Vmexit.record exits Vmexit.Msr_access;
          Cores.execute_ns guest_cores (100.0 +. Vmexit.handle_ns Vmexit.Msr_access));
    }
  in
  let rekick () =
    if Vring.avail_pending (Virtio_net.tx_ring net) > 0 then
      ignore (Sim.Bounded.send tx_hint ());
    if Vring.avail_pending (Virtio_blk.ring blkdev) > 0 then
      ignore (Sim.Bounded.send blk_hint ())
  in
  host.vms <-
    ( config.name,
      {
        instance;
        exits;
        preempt;
        rekick;
        vm_datapath = (if Option.is_none vf_attached then Vf.Vring else config.datapath);
        vm_vf = vf_attached;
      } )
    :: host.vms;
  instance

let exit_counters host ~name =
  Option.map (fun vm -> vm.exits) (List.assoc_opt name host.vms)

let preempt_of host ~name = Option.map (fun vm -> vm.preempt) (List.assoc_opt name host.vms)

let vm_datapath host ~name =
  Option.map (fun vm -> vm.vm_datapath) (List.assoc_opt name host.vms)

let vm_vf host ~name = Option.bind (List.assoc_opt name host.vms) (fun vm -> vm.vm_vf)
