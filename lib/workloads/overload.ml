open Bm_engine
open Bm_virtio
open Bm_guest

(* Open-loop load generators for the overload experiment. Unlike
   [Netperf], which lets the datapath pace the senders (closed loop),
   these stamp every unit of work with its *intended* start time and
   measure latency against that schedule. Under a blocking limiter the
   senders fall behind and the measured latency diverges — the classic
   open-loop hockey stick — while a shedding limiter keeps the survivors
   on schedule and turns the excess into explicit refusals. *)

type net_result = {
  offered_pps : float;  (** schedule rate: what the clients wanted to send *)
  goodput_pps : float;  (** packets the receiver actually absorbed *)
  shed : int;  (** packets refused at the sender (rate limiter said no) *)
  p50_us : float;  (** receive latency vs the intended send time *)
  p99_us : float;
  max_lag_ms : float;  (** worst sender slip behind its own schedule *)
}

let udp_flood sim ~src ~dst ?(senders = 12) ?(batch = 64) ~offered_pps ~duration () =
  let received = ref 0 and offered = ref 0 and shed = ref 0 in
  let hist = Stats.Histogram.create ~lo:100.0 ~hi:1e12 () in
  let t0 = Sim.now sim in
  let stop_at = t0 +. duration in
  (* Only arrivals inside the measurement window count: a blocking
     limiter drains its backlog long after the window closes, and that
     tail must not inflate goodput. *)
  dst.Instance.set_rx_handler (fun pkt ->
      if Sim.now sim <= stop_at then begin
        received := !received + pkt.Packet.count;
        Stats.Histogram.add_n hist
          (Float.max 1.0 (Sim.now sim -. pkt.Packet.sent_at))
          pkt.Packet.count
      end);
  let per_sender_pps = offered_pps /. float_of_int senders in
  let interval = float_of_int batch /. per_sender_pps *. 1e9 in
  let next_id = ref 0 in
  let max_lag = ref 0.0 in
  for _ = 1 to senders do
    Sim.spawn sim (fun () ->
        let rec blast k =
          let due = t0 +. (float_of_int k *. interval) in
          if due < stop_at then begin
            let now = Sim.clock () in
            if due > now then Sim.delay (due -. now)
            else max_lag := Float.max !max_lag (now -. due);
            incr next_id;
            let pkt =
              Packet.small_udp ~id:!next_id ~src:src.Instance.endpoint
                ~dst:dst.Instance.endpoint ~count:batch ~sent_at:due ()
            in
            offered := !offered + batch;
            if not (src.Instance.send pkt) then shed := !shed + batch;
            blast (k + 1)
          end
        in
        blast 0)
  done;
  Sim.run ~until:(stop_at +. Simtime.ms 2.0) sim;
  let seconds = Simtime.to_sec duration in
  {
    offered_pps = float_of_int !offered /. seconds;
    goodput_pps = float_of_int !received /. seconds;
    shed = !shed;
    p50_us = Stats.Histogram.percentile hist 50.0 /. 1e3;
    p99_us = Stats.Histogram.percentile hist 99.0 /. 1e3;
    max_lag_ms = !max_lag /. 1e6;
  }

type blk_result = {
  offered_iops : float;
  goodput_iops : float;  (** requests that completed successfully *)
  rejected : int;  (** requests abandoned after exhausting retries *)
  retries : int;  (** extra attempts spent on refused requests *)
  blk_p50_us : float;  (** completion latency vs the intended issue time *)
  blk_p99_us : float;
  blk_max_lag_ms : float;
}

let blk_flood sim ~inst ?(block_bytes = 4096) ?(max_retries = 2)
    ?(retry_backoff_ns = 50_000.0) ~offered_iops ~duration () =
  let completed = ref 0 and rejected = ref 0 and retries = ref 0 and issued = ref 0 in
  let hist = Stats.Histogram.create ~lo:1_000.0 ~hi:1e12 () in
  let t0 = Sim.now sim in
  let stop_at = t0 +. duration in
  let interval = 1e9 /. offered_iops in
  let max_lag = ref 0.0 in
  (* One dispatcher fiber keeps the arrival process on schedule; each
     request runs in its own fiber so a blocking limiter stalls only
     that request, never the arrivals (open loop). *)
  Sim.spawn sim (fun () ->
      let rec dispatch k =
        let due = t0 +. (float_of_int k *. interval) in
        if due < stop_at then begin
          let now = Sim.clock () in
          if due > now then Sim.delay (due -. now)
          else max_lag := Float.max !max_lag (now -. due);
          incr issued;
          Sim.spawn sim (fun () ->
              let rec attempt tries =
                match inst.Instance.blk_try ~op:`Read ~bytes_:block_bytes with
                | Ok _ ->
                  (* Same window rule as the network side: completions
                     that straggle in after the window are not goodput. *)
                  if Sim.clock () <= stop_at then begin
                    incr completed;
                    Stats.Histogram.add hist (Float.max 1.0 (Sim.clock () -. due))
                  end
                | Error (`Limited | `Busy | `Rejected) when tries < max_retries ->
                  incr retries;
                  Sim.delay (retry_backoff_ns *. float_of_int (1 lsl tries));
                  attempt (tries + 1)
                | Error _ -> incr rejected
              in
              attempt 0);
          dispatch (k + 1)
        end
      in
      dispatch 0);
  Sim.run ~until:(stop_at +. Simtime.ms 2.0) sim;
  let seconds = Simtime.to_sec duration in
  {
    offered_iops = float_of_int !issued /. seconds;
    goodput_iops = float_of_int !completed /. seconds;
    rejected = !rejected;
    retries = !retries;
    blk_p50_us = Stats.Histogram.percentile hist 50.0 /. 1e3;
    blk_p99_us = Stats.Histogram.percentile hist 99.0 /. 1e3;
    blk_max_lag_ms = !max_lag /. 1e6;
  }
