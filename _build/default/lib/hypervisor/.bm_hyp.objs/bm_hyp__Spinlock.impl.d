lib/hypervisor/spinlock.ml: Bm_engine Bm_guest Instance Sim
