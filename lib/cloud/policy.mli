(** Pluggable closed-loop degradation policies.

    A policy replaces the hardcoded game-day ladder: once per SLO
    window the scenario runner assembles a {!signals} bundle (SLO
    window pressure, failed hosts, fabric queue pressure, brownout and
    breaker state), asks the policy to {!decide}, executes the returned
    {!action}s — escalations under the scenario's {!Bm_engine.Fault.Guard},
    so a browned-out control plane refuses them — and reports the
    outcome back via {!confirm}.

    The decide/confirm split is the hysteresis contract: a decision
    proposes at most one stage move, the move commits only when the
    actions actually ran, and every policy pairs a raise threshold
    with a strictly lower relax threshold plus a calm-window count (and,
    for the non-legacy policies, a minimum hold time per stage) — so the
    stage changes by at most one per window and cannot flap inside the
    dead band. The [ladder] policy reproduces the legacy ladder
    bit-identically; [selective], [tiered] and [congestion] trade
    blast radius differently. *)

type kind =
  | Ladder  (** legacy: shed Bronze tier → global host ceiling → drain failed *)
  | Selective
      (** drain first, then shed only Bronze tenants colocated with the
          distressed premium tenants ({!blast_radius}), then the ceiling *)
  | Tiered
      (** graduated per-tier admission ceilings (Bronze first, Silver
          as the last resort) plus a Bronze placement-class cap, with
          the drain between the two *)
  | Congestion
      (** spine-queue / gold-p99 aware: silence bulk background flows
          and the Bronze tier first, stop placing Bronze into the hot
          zone, and defer the drain until the spine has headroom — a
          drain streams every evacuated guest's memory post-copy, and
          launching that storm into a saturated fabric trades the
          failed hosts' outage for a longer whole-fleet one *)

val all : kind list
(** In the fixed registry order: ladder, selective, tiered, congestion. *)

val name : kind -> string
val of_name : string -> kind option

type signals = {
  window : int;  (** SLO window index just closed *)
  premium_pressure : float;  (** {!Slo.window_pressure} over Gold+Silver *)
  all_pressure : float;  (** {!Slo.window_pressure} over every tier *)
  distressed : (string * Slo.tier) list;  (** {!Slo.window_misses}, all tiers *)
  suspects : string list;  (** {!blast_radius} of [distressed] + failed hosts *)
  gold_p99_ms : float;  (** {!Slo.window_tier_p99} for Gold *)
  offered_pps : (Slo.tier * float) list;
      (** per-tier offered request rate over the window just closed —
          what [Tiered] sizes its relative ceilings against *)
  failed_hosts : int list;  (** failed servers still hosting guests *)
  spine_queued : int;  (** bursts queued on spine-tier links right now *)
  spine_dropped : int;  (** cumulative packets dropped on spine-tier links *)
  links : Bm_fabric.Fabric.pressure list;  (** the full per-link sample *)
  links_down : int;
  brownout : bool;  (** control plane currently browned out *)
  breaker : Bm_engine.Fault.Guard.state;  (** the scenario guard's breaker *)
}

val calm_signals : window:int -> signals
(** An all-quiet bundle (zero pressure, nothing failed, breaker closed)
    — the baseline for tests and for property generators to perturb. *)

type action =
  | Shed_tier of Slo.tier  (** move the tier onto a tight fail-fast bucket *)
  | Restore_tier of Slo.tier
  | Shed_tenants of string list  (** tight fail-fast buckets, listed tenants only *)
  | Restore_tenants of string list
  | Tier_ceiling of { tier : Slo.tier; pps : float }
      (** cap the tier's admission at [pps] ({!Limits.ceiling_net}) *)
  | Restore_tier_ceiling of Slo.tier
  | Host_ceiling of float  (** scale the global admission ceiling by this factor *)
  | Restore_host_ceiling
  | Class_ceiling of { tier : Slo.tier; frac : float }
      (** cap the tier's placement class at [frac] of fleet threads
          ({!Control_plane.set_class_ceiling}) *)
  | Restore_class_ceiling of Slo.tier
  | Drain_failed  (** evacuate every failed host that still has guests *)
  | Throttle_bulk of float  (** scale background bulk traffic by this factor *)
  | Restore_bulk

val action_name : action -> string

type decision =
  | Hold  (** no change this window *)
  | Escalate of action list  (** raise one stage iff the actions run (guarded) *)
  | Reapply of action list
      (** re-run the current stage's work — e.g. drain a newly failed
          host at top stage — without moving the stage (guarded) *)
  | Relax of action list  (** lower one stage; undo actions run unguarded *)

type t
(** Mutable policy state: stage, calm/hold counters, the shed set. *)

val create : kind -> t

val kind : t -> kind

val stage : t -> int
(** Current committed stage, 0 (normal) to 3 (fully escalated). *)

val max_stage : t -> int

val shed_tenants : t -> string list
(** Tenants currently shed by [Shed_tenants] actions (sorted). *)

val decide : t -> signals -> decision
(** One call per SLO window. Proposes at most one stage move and
    records it as pending; nothing commits until {!confirm}. *)

val confirm : t -> ok:bool -> unit
(** Report whether the decision's actions ran. [ok:false] (guard gave
    up, e.g. brownout) discards the pending move — stage, counters and
    shed set stay as they were, and the policy retries from the same
    stage next window. Call with [ok:true] for [Hold] / [Relax]. *)

val blast_radius :
  sched:Scheduler.t ->
  tor_of:(int -> int) ->
  tier_of:(string -> Slo.tier) ->
  distressed:(string * Slo.tier) list ->
  failed_hosts:int list ->
  string list
(** The Bronze tenants sharing fate with the trouble: every Bronze
    tenant with a guest on a seed host (a [failed_hosts] member or any
    host of a distressed non-Bronze tenant) or in a seed rack ([tor_of]
    maps a server id to its ToR). Sorted, distinct. This is what
    [Selective] sheds instead of the whole Bronze tier. *)
