open Bm_engine

type t = {
  sim : Sim.t;
  gbit_s : float;
  register_ns : float;
  mtu_bytes : int;
  wire : Sim.Resource.resource;
  mutable bytes_moved : float;
  obs : Obs.t;
  fault : Fault.t;
}

let create ?(obs = Obs.none) ?(fault = Fault.none) sim ~gbit_s ?(register_ns = 800.0)
    ?(mtu_bytes = 256) () =
  assert (gbit_s > 0.0 && register_ns >= 0.0 && mtu_bytes > 0);
  {
    sim;
    gbit_s;
    register_ns;
    mtu_bytes;
    wire = Sim.Resource.create ~capacity:1;
    bytes_moved = 0.0;
    obs;
    fault;
  }

let x4 ?obs ?fault sim ~register_ns = create ?obs ?fault sim ~gbit_s:32.0 ~register_ns ()
let x8 ?obs ?fault sim ~register_ns = create ?obs ?fault sim ~gbit_s:64.0 ~register_ns ()

let gbit_s t = t.gbit_s
let register_ns t = t.register_ns

(* A link-down window stalls TLPs at the port until the retrain
   completes; nothing is lost, the transaction just waits. *)
let stall_if_link_down t =
  if Fault.is_active t.fault Fault.Link_down then begin
    Metrics.incr_opt (Obs.metrics t.obs) "hw.pcie.link_stalls";
    Fault.block_until_clear t.fault Fault.Link_down
  end

let register_access t =
  stall_if_link_down t;
  Metrics.incr_opt (Obs.metrics t.obs) "hw.pcie.register_accesses";
  Trace.instant_opt (Obs.trace t.obs) ~track:"hw.pcie" "register_access" ~now:(Sim.now t.sim);
  Sim.delay t.register_ns

let transfer_time_ns t ~bytes_ = float_of_int bytes_ *. 8.0 /. t.gbit_s

let transfer t ~bytes_ =
  assert (bytes_ >= 0);
  let t0 = Sim.now t.sim in
  Trace.begin_span_opt (Obs.trace t.obs) ~track:"hw.pcie" "transfer" ~now:t0;
  let rec chunks remaining =
    if remaining > 0 then begin
      stall_if_link_down t;
      let n = min remaining t.mtu_bytes in
      Sim.Resource.with_resource t.wire (fun () -> Sim.delay (transfer_time_ns t ~bytes_:n));
      t.bytes_moved <- t.bytes_moved +. float_of_int n;
      chunks (remaining - n)
    end
  in
  chunks bytes_;
  let t1 = Sim.now t.sim in
  Trace.end_span_opt (Obs.trace t.obs) ~track:"hw.pcie" "transfer" ~now:t1;
  Metrics.observe_opt (Obs.metrics t.obs) "hw.pcie.transfer_ns" (t1 -. t0)

let account t ~bytes_ = t.bytes_moved <- t.bytes_moved +. float_of_int bytes_

let bytes_moved t = t.bytes_moved
