lib/engine/token_bucket.ml: Float Sim
