(* Game-day scenario engine: timeline DSL and spec parsing, SLO
   window scoring, fabric link failure windows, evacuation drop
   accounting, guard breaker recovery under seeded fault storms, and
   the end-to-end determinism / degradation-helps properties the
   game_day experiment rests on. *)

open Bm_engine
module Scenario = Bmhive.Scenario
module Slo = Bm_cloud.Slo
module Vswitch = Bm_cloud.Vswitch
module Fabric = Bm_fabric.Fabric
module Topology = Bm_fabric.Topology
module Fleet = Bm_hyp.Fleet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let cores_of sim = Bm_hw.Cores.create sim ~spec:Bm_hw.Cpu_spec.base_server_e5 ()

let mk_pkt ?(count = 1) ?(size = 1500) ~src ~dst id =
  Bm_virtio.Packet.make ~id ~src ~dst ~size ~count ~protocol:Bm_virtio.Packet.Udp ~tag:0
    ~sent_at:0.0 ()

(* ------------------------------------------------------------------ *)
(* Timeline DSL *)

let test_dsl_combinators () =
  let congest = Scenario.Congest { duration_ns = 10.0 } in
  check_int "every strictly before until" 5
    (List.length (Scenario.every ~period_ns:100.0 ~until_ns:450.0 congest));
  check_int "every honours start" 4
    (List.length (Scenario.every ~period_ns:100.0 ~until_ns:450.0 ~start_ns:100.0 congest));
  let r = Scenario.ramp ~steps:8 ~from_ns:0.0 ~until_ns:800.0 ~lo:0.5 ~hi:2.0 () in
  check_int "ramp steps" 8 (List.length r);
  let values =
    List.map
      (fun (e : Scenario.entry) ->
        match e.Scenario.action with
        | Scenario.Traffic m -> m
        | _ -> Alcotest.fail "ramp emits Traffic only")
      r
  in
  List.iter
    (fun m -> check_bool "ramp within [lo, hi]" true (m >= 0.5 -. 1e-9 && m <= 2.0 +. 1e-9))
    values;
  check_bool "ramp actually rises" true
    (List.fold_left max neg_infinity values > List.hd values +. 0.5)

let test_make_validates () =
  let congest = Scenario.Congest { duration_ns = 1.0 } in
  let s =
    Scenario.make ~seed:1 ~horizon_ns:1000.0
      (Scenario.at 700.0 congest @ Scenario.at 100.0 congest)
  in
  (match s.Scenario.timeline with
  | [ a; b ] ->
    check_bool "timeline sorted" true (a.Scenario.at = 100.0 && b.Scenario.at = 700.0)
  | _ -> Alcotest.fail "two entries expected");
  let rejects tl =
    match Scenario.make ~seed:1 ~horizon_ns:1000.0 tl with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "entry at horizon rejected" true (rejects (Scenario.at 1000.0 congest));
  check_bool "negative time rejected" true (rejects (Scenario.at (-1.0) congest))

let count_kind pred (s : Scenario.spec) =
  List.length (List.filter (fun (e : Scenario.entry) -> pred e.Scenario.action) s.Scenario.timeline)

let test_parse_spec () =
  (match Scenario.parse_spec "42:default" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    check_int "seed" 42 s.Scenario.seed;
    check_bool "default timeline non-empty" true (s.Scenario.timeline <> []));
  (match Scenario.parse_spec "7:hosts=2,links=1,congest=1,evac=1,brownout=1,ramp=0.5-2.0" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    check_int "host failures" 2
      (count_kind (function Scenario.Host_fail _ -> true | _ -> false) s);
    check_int "link failures" 1
      (count_kind (function Scenario.Link_fail _ -> true | _ -> false) s);
    check_int "congestion episodes" 1
      (count_kind (function Scenario.Congest _ -> true | _ -> false) s);
    check_int "evacuations" 1
      (count_kind (function Scenario.Evacuate _ -> true | _ -> false) s);
    check_int "brownouts" 1
      (count_kind (function Scenario.Brownout _ -> true | _ -> false) s));
  List.iter
    (fun bad ->
      check_bool (Printf.sprintf "%S rejected" bad) true
        (match Scenario.parse_spec bad with Error _ -> true | Ok _ -> false))
    [ "no-colon"; "x:hosts=2"; "7:frobs=1"; "7:ramp=banana"; "7:" ]

let test_parse_spec_streams_independent () =
  (* Per-kind seeded streams: asking for more links must not move the
     host-failure times. *)
  let host_times spec_s =
    match Scenario.parse_spec spec_s with
    | Error e -> Alcotest.fail e
    | Ok s ->
      List.filter_map
        (fun (e : Scenario.entry) ->
          match e.Scenario.action with Scenario.Host_fail _ -> Some e.Scenario.at | _ -> None)
        s.Scenario.timeline
  in
  Alcotest.(check (list (float 0.0)))
    "host times unmoved" (host_times "11:hosts=2") (host_times "11:hosts=2,links=3")

let test_render_deterministic () =
  let r spec_s =
    match Scenario.parse_spec spec_s with Error e -> Alcotest.fail e | Ok s -> Scenario.render s
  in
  check_string "render is a pure function of the spec" (r "42:default") (r "42:default");
  check_bool "seed changes the drawn times" true (r "42:hosts=2" <> r "43:hosts=2")

(* ------------------------------------------------------------------ *)
(* SLO window scoring *)

let test_slo_windows () =
  let now = ref 0.0 in
  let slo = Slo.create ~now:(fun () -> !now) ~window_ns:100.0 () in
  Slo.declare slo ~tenant:"a" ~tier:Slo.Gold ();
  (* window 0 healthy, window 1 a total outage, windows 2-3 idle *)
  for _ = 1 to 10 do
    Slo.deliver slo ~tenant:"a" ~bytes:100 ~latency_ns:1_000.0
  done;
  now := 150.0;
  for _ = 1 to 10 do
    Slo.fail slo ~tenant:"a" ~bytes:100
  done;
  match Slo.scores slo ~until_ns:400.0 with
  | [ s ] ->
    check_int "windows scored" 4 s.Slo.windows;
    check_int "idle windows compliant" 3 s.Slo.ok_windows;
    check_int "offered" 20 s.Slo.offered;
    check_int "delivered" 10 s.Slo.delivered;
    (* gold needs 3/4 compliant windows: exactly on the boundary *)
    check_bool "met at the boundary" true s.Slo.met
  | _ -> Alcotest.fail "one tenant expected"

let test_slo_p99_objective () =
  let now = ref 0.0 in
  let slo = Slo.create ~now:(fun () -> !now) ~window_ns:100.0 () in
  Slo.declare slo ~tenant:"a" ~tier:Slo.Gold ();
  (* 100% availability but 10 ms latency: gold's 0.25 ms p99 is blown *)
  for _ = 1 to 10 do
    Slo.deliver slo ~tenant:"a" ~bytes:100 ~latency_ns:1e7
  done;
  match Slo.scores slo ~until_ns:100.0 with
  | [ s ] ->
    check_int "latency alone fails the window" 0 s.Slo.ok_windows;
    check_bool "missed" false s.Slo.met
  | _ -> Alcotest.fail "one tenant expected"

let test_slo_shed_separate_column () =
  let now = ref 0.0 in
  let slo = Slo.create ~now:(fun () -> !now) ~window_ns:100.0 () in
  Slo.declare slo ~tenant:"b" ~tier:Slo.Bronze ();
  Slo.deliver slo ~tenant:"b" ~bytes:100 ~latency_ns:1_000.0;
  for _ = 1 to 9 do
    Slo.shed slo ~tenant:"b" ~bytes:100
  done;
  (match Slo.scores slo ~until_ns:100.0 with
  | [ s ] ->
    check_int "shed reported separately" 9 s.Slo.shed_count;
    check_int "failed stays zero" 0 s.Slo.failed;
    check_bool "shed counts against availability" true (abs_float (s.Slo.availability -. 0.1) < 1e-9);
    check_bool "bronze misses when shed" false s.Slo.met
  | _ -> Alcotest.fail "one tenant expected");
  check_bool "undeclared tenant is a harness bug" true
    (match Slo.deliver slo ~tenant:"ghost" ~bytes:1 ~latency_ns:1.0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_window_pressure_tier_filter () =
  let now = ref 0.0 in
  let slo = Slo.create ~now:(fun () -> !now) ~window_ns:100.0 () in
  Slo.declare slo ~tenant:"g" ~tier:Slo.Gold ();
  Slo.declare slo ~tenant:"b" ~tier:Slo.Bronze ();
  Slo.deliver slo ~tenant:"g" ~bytes:100 ~latency_ns:1_000.0;
  Slo.fail slo ~tenant:"b" ~bytes:100;
  check_bool "bronze distress visible unfiltered" true
    (Slo.window_pressure slo ~window:0 () > 0.49);
  check_bool "ladder's view ignores shed tier" true
    (Slo.window_pressure slo ~tiers:[ Slo.Gold; Slo.Silver ] ~window:0 () = 0.0)

(* ------------------------------------------------------------------ *)
(* Fabric link failure windows *)

let spine_link fab =
  match
    List.find_opt
      (fun n -> String.length n > 3 && String.sub n 0 3 = "tor" && Astring.String.is_infix ~affix:">spine" n)
      (Fabric.link_names fab)
  with
  | Some n -> n
  | None -> Alcotest.fail "no tor->spine link in topology"

let test_fabric_fail_repair () =
  let sim = Sim.create () in
  let fab = Fabric.create sim (Rng.create ~seed:3) (Topology.clos ~hosts:4 ~tors:2 ~spines:2 ()) in
  let name = spine_link fab in
  check_bool "up initially" true (Fabric.link_up fab ~name);
  Fabric.fail_link fab ~name;
  Fabric.fail_link fab ~name;
  check_bool "down after fail" false (Fabric.link_up fab ~name);
  check_int "fail idempotent" 1 (Fabric.links_down fab);
  Fabric.repair_link fab ~name;
  check_bool "up after repair" true (Fabric.link_up fab ~name);
  check_int "no links down" 0 (Fabric.links_down fab);
  check_bool "unknown link rejected" true
    (match Fabric.fail_link fab ~name:"tor9->warp0" with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_fabric_failed_link_drops () =
  let sim = Sim.create () in
  (* one spine: cross-tor traffic has exactly one uplink to die on *)
  let fab = Fabric.create sim (Rng.create ~seed:3) (Topology.clos ~hosts:4 ~tors:2 ~spines:1 ()) in
  for _ = 1 to 4 do
    ignore (Fabric.attach fab)
  done;
  Fabric.fail_link fab ~name:"tor0->spine0";
  let delivered = ref 0 and dropped = ref 0 in
  Fabric.send fab ~src_host:0 ~dst_host:2
    ~on_drop:(fun _ -> incr dropped)
    ~deliver:(fun _ -> incr delivered)
    (mk_pkt ~src:1 ~dst:2 1);
  Sim.run sim;
  check_int "dropped at the dark link" 1 !dropped;
  check_int "nothing delivered" 0 !delivered;
  Fabric.repair_link fab ~name:"tor0->spine0";
  Fabric.send fab ~src_host:0 ~dst_host:2
    ~on_drop:(fun _ -> incr dropped)
    ~deliver:(fun _ -> incr delivered)
    (mk_pkt ~src:1 ~dst:2 2);
  Sim.run sim;
  check_int "delivered after repair" 1 !delivered;
  check_int "no further drops" 1 !dropped

(* ------------------------------------------------------------------ *)
(* Evacuation drop accounting (vswitch) *)

let test_vswitch_evac_stale_dropped () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let got = ref 0 in
  let a = Vswitch.register vs ~deliver:(fun _ -> incr got) in
  let b = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Vswitch.unregister ~evacuated:true vs a;
  Sim.spawn sim (fun () ->
      Vswitch.send vs (mk_pkt ~src:b ~dst:a 1);
      (* a genuinely unknown address, for contrast *)
      Vswitch.send vs (mk_pkt ~src:b ~dst:9999 2));
  Sim.run sim;
  check_int "nothing delivered" 0 !got;
  check_int "evacuated address counted apart" 1 (Vswitch.evac_stale_dropped vs);
  check_int "unknown address still unknown" 1 (Vswitch.unknown_dropped vs);
  check_int "both are drops" 2 (Vswitch.dropped vs)

(* ------------------------------------------------------------------ *)
(* Guard breaker under seeded fault storms (QCheck) *)

(* The storm fails every attempt until the clock passes [storm_end];
   the driver keeps re-running the guarded operation with a pause
   between runs. Whatever the storm length, breaker threshold and
   pacing, the breaker must half-open after its cooldown and close on
   the first success — it never stays open once faults clear — and the
   operation must succeed exactly once (no double execution). *)
let prop_breaker_recovers =
  QCheck.Test.make ~name:"breaker closes once the storm clears" ~count:60
    QCheck.(triple (int_range 0 20) (int_range 1 4) (int_range 50 300))
    (fun (storm_steps, circuit_threshold, pause) ->
      let sim = Sim.create () in
      let policy =
        {
          Fault.Guard.default_policy with
          Fault.Guard.max_attempts = 2;
          backoff_ns = 50.0;
          backoff_mult = 2.0;
          backoff_max_ns = 400.0;
          circuit_threshold;
          circuit_cooldown_ns = 1_000.0;
        }
      in
      let g = Fault.Guard.create ~policy sim ~name:"storm" in
      let storm_end = float_of_int storm_steps *. 100.0 in
      let successes = ref 0 in
      let op () =
        if Sim.clock () < storm_end then Error "storm"
        else begin
          incr successes;
          Ok ()
        end
      in
      let recovered = ref false in
      Sim.spawn sim (fun () ->
          let attempts = ref 0 in
          while (not !recovered) && !attempts < 500 do
            incr attempts;
            (match Fault.Guard.run g op with Ok () -> recovered := true | Error _ -> ());
            if not !recovered then Sim.delay (float_of_int pause)
          done);
      Sim.run sim;
      !recovered && (not (Fault.Guard.circuit_open g)) && !successes = 1)

(* With the breaker disabled, a run that needs [n] attempts executes
   the operation exactly [min (n+1) max_attempts] times and succeeds at
   most once — retries never re-execute a completed request. *)
let prop_no_double_execution =
  QCheck.Test.make ~name:"retries never double-execute a request" ~count:100
    QCheck.(pair (int_range 1 5) (small_list (int_range 0 7)))
    (fun (max_attempts, failure_counts) ->
      let sim = Sim.create () in
      let policy =
        {
          Fault.Guard.default_policy with
          Fault.Guard.max_attempts;
          backoff_ns = 10.0;
          backoff_mult = 2.0;
          backoff_max_ns = 100.0;
          circuit_threshold = 0;
        }
      in
      let g = Fault.Guard.create ~policy sim ~name:"dup" in
      let ok = ref true in
      Sim.spawn sim (fun () ->
          List.iter
            (fun n ->
              let execs = ref 0 and successes = ref 0 in
              let op () =
                incr execs;
                if !execs <= n then Error "transient"
                else begin
                  incr successes;
                  Ok ()
                end
              in
              let r = Fault.Guard.run g op in
              let expect_ok = n < max_attempts in
              let expected_execs = min (n + 1) max_attempts in
              if (r = Ok ()) <> expect_ok then ok := false;
              if !execs <> expected_execs then ok := false;
              if !successes > 1 then ok := false)
            failure_counts);
      Sim.run sim;
      !ok)

(* ------------------------------------------------------------------ *)
(* End-to-end scenario runs (quick fleet) *)

let quick = Fleet.Live.quick_config

let test_scenario_deterministic () =
  let spec = Scenario.default_spec ~seed:11 () in
  let a = Scenario.run ~fleet:quick spec in
  let b = Scenario.run ~fleet:quick spec in
  check_string "same spec, byte-identical scorecard" a.Scenario.scorecard b.Scenario.scorecard;
  let c = Scenario.run ~fleet:quick (Scenario.default_spec ~seed:12 ()) in
  check_bool "different seed, different run" true (a.Scenario.scorecard <> c.Scenario.scorecard)

let test_scenario_observation_pure () =
  let spec = Scenario.default_spec ~seed:11 () in
  let bare = Scenario.run ~fleet:quick spec in
  let observed =
    Scenario.run ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) ~fleet:quick spec
  in
  check_string "sinks never perturb the run" bare.Scenario.scorecard observed.Scenario.scorecard

let test_scenario_faults_all_recovered () =
  let o = Scenario.run ~degrade:false ~fleet:quick (Scenario.default_spec ~seed:11 ()) in
  (* satellite of the horizon-recovery rule: the permanent host-failure
     windows must still be reported recovered at the horizon *)
  check_bool "fault summary balances"
    true
    (Astring.String.is_infix ~affix:"recovered/injected: 4/4" o.Scenario.fault_summary)

let test_degradation_helps () =
  let spec = Scenario.default_spec ~seed:2020 () in
  let off = Scenario.run ~degrade:false ~fleet:quick spec in
  let on_ = Scenario.run ~degrade:true ~fleet:quick spec in
  check_int "open loop never escalates" 0 off.Scenario.max_stage;
  check_bool "ladder engaged" true (on_.Scenario.max_stage >= 1);
  check_bool "more tenants meet their SLO" true (on_.Scenario.met > off.Scenario.met);
  (* the acceptance bar: a premium tenant that misses open-loop is
     rescued by the ladder *)
  let rescued =
    List.exists2
      (fun (o : Slo.tenant_score) (n : Slo.tenant_score) ->
        (not o.Slo.met) && n.Slo.met && n.Slo.tier <> Slo.Bronze)
      off.Scenario.scores on_.Scenario.scores
  in
  check_bool "a gold/silver tenant flips miss -> met" true rescued;
  check_bool "evacuation actually moved guests" true (on_.Scenario.evacuated_guests > 0)

let suites =
  [
    ( "scenario.dsl",
      [
        Alcotest.test_case "combinators" `Quick test_dsl_combinators;
        Alcotest.test_case "make validates" `Quick test_make_validates;
        Alcotest.test_case "parse_spec" `Quick test_parse_spec;
        Alcotest.test_case "per-kind streams independent" `Quick
          test_parse_spec_streams_independent;
        Alcotest.test_case "render deterministic" `Quick test_render_deterministic;
      ] );
    ( "scenario.slo",
      [
        Alcotest.test_case "window scoring" `Quick test_slo_windows;
        Alcotest.test_case "p99 objective" `Quick test_slo_p99_objective;
        Alcotest.test_case "shed separate column" `Quick test_slo_shed_separate_column;
        Alcotest.test_case "window pressure tier filter" `Quick test_window_pressure_tier_filter;
      ] );
    ( "scenario.fabric",
      [
        Alcotest.test_case "fail/repair link" `Quick test_fabric_fail_repair;
        Alcotest.test_case "failed link drops traffic" `Quick test_fabric_failed_link_drops;
      ] );
    ( "scenario.evac",
      [ Alcotest.test_case "evac_stale_dropped accounting" `Quick test_vswitch_evac_stale_dropped ] );
    ( "scenario.guard.prop",
      List.map QCheck_alcotest.to_alcotest [ prop_breaker_recovers; prop_no_double_execution ] );
    ( "scenario.run",
      [
        Alcotest.test_case "deterministic" `Slow test_scenario_deterministic;
        Alcotest.test_case "observation pure" `Slow test_scenario_observation_pure;
        Alcotest.test_case "faults recovered at horizon" `Slow test_scenario_faults_all_recovered;
        Alcotest.test_case "degradation helps" `Slow test_degradation_helps;
      ] );
  ]
