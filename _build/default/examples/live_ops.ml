(* Day-2 operations: the paper's §6 roadmap, running.

   1. Live-upgrade a guest's bm-hypervisor process (Orthus-style) while
      it serves storage I/O — zero lost requests, a bounded blip.
   2. Turn on IO-Bond flow offload and watch the base server's CPU drop
      out of the packet path.
   3. Convert a bm-guest to a special vm-guest at run time (on-demand
      virtualization) and live-migrate it with iterative pre-copy.
   4. Run an SGX enclave natively on the bare-metal guest.

     dune exec examples/live_ops.exe *)

open Bm_engine
open Bm_guest
open Bm_hyp
open Bm_workload

let () =
  (* --- 1. live upgrade under load ------------------------------- *)
  let tb = Testbed.make ~seed:77 () in
  let server, guest = Testbed.bm_guest tb in
  let completed = ref 0 and worst = ref 0.0 in
  Sim.spawn tb.Testbed.sim (fun () ->
      for _ = 1 to 500 do
        let l = guest.Instance.blk ~op:`Read ~bytes_:4096 in
        worst := Float.max !worst l;
        incr completed
      done);
  Sim.spawn tb.Testbed.sim (fun () ->
      Sim.delay (Simtime.ms 15.0);
      match Bm_hypervisor.live_upgrade server ~name:"bm0" () with
      | Ok v -> Printf.printf "1. live upgrade: backend now v%d, mid-flight\n" v
      | Error e -> failwith e);
  Testbed.run tb;
  Printf.printf "   %d/500 I/Os survived; worst latency %.1fms (blackout bounded)\n\n" !completed
    (!worst /. 1e6);

  (* --- 2. flow offload ------------------------------------------ *)
  let tb2 = Testbed.make ~seed:78 () in
  let server2 =
    Bm_hypervisor.create_server tb2.Testbed.sim tb2.Testbed.rng ~fabric:tb2.Testbed.fabric
      ~storage:tb2.Testbed.storage ()
  in
  let unlimited = Bm_cloud.Limits.unlimited_net () in
  let g name =
    Result.get_ok (Bm_hypervisor.provision server2 ~name ~net_limits:unlimited ~offload:true ())
  in
  let a = g "a" and b = g "b" in
  let r =
    Netperf.udp_pps tb2.Testbed.sim ~src:a ~dst:b ~senders:8 ~batch:64
      ~duration:(Simtime.ms 40.0) ()
  in
  let util =
    Bm_hw.Cores.utilization (Bm_hypervisor.base_cores server2) ~now:(Sim.now tb2.Testbed.sim)
  in
  (match Bm_hypervisor.offload_table server2 ~name:"a" with
  | Some ot ->
    Printf.printf "2. offload: %.1fM PPS with base cores %.1f%% busy (%d flows, %d hits)\n\n"
      (r.Netperf.received_pps /. 1e6)
      (100.0 *. util) (Bm_iobond.Offload.occupancy ot) (Bm_iobond.Offload.hits ot)
  | None -> ());

  (* --- 3. on-demand virtualization + pre-copy migration --------- *)
  let tb3 = Testbed.make ~seed:79 () in
  let _, bm = Testbed.bm_guest tb3 in
  Sim.spawn tb3.Testbed.sim (fun () ->
      match Live_migration.inject tb3.Testbed.sim (Rng.create ~seed:79) bm with
      | Error e -> failwith e
      | Ok inj -> (
        Printf.printf "3. thin hypervisor injected: guest now reports %s\n"
          (Instance.kind_name (Live_migration.as_instance inj));
        match Live_migration.migrate inj ~dirty_rate_gb_s:1.5 ~mem_gb:64 () with
        | Ok s ->
          Printf.printf
            "   migrated: %d pre-copy rounds, %.1f GB moved, blackout %.1fms, total %.1fs\n\n"
            s.Live_migration.precopy_rounds
            (s.Live_migration.bytes_copied /. 1e9)
            (s.Live_migration.blackout_ns /. 1e6)
            (s.Live_migration.total_ns /. 1e9)
        | Error e -> failwith e));
  Testbed.run tb3;

  (* --- 4. SGX on bare metal ------------------------------------- *)
  let tb4 = Testbed.make ~seed:80 () in
  let _, bm4 = Testbed.bm_guest tb4 in
  let _, vm4 = Testbed.vm_guest tb4 in
  (match Sgx.create vm4 ~name:"keys" ~epc_mb:32 with
  | Ok _ -> ()
  | Error e -> Printf.printf "4. SGX on the vm-guest: %s\n" e);
  (match Sgx.create bm4 ~name:"keys" ~epc_mb:32 with
  | Error e -> failwith e
  | Ok enclave ->
    Sim.spawn tb4.Testbed.sim (fun () ->
        for _ = 1 to 1000 do
          Sgx.ecall enclave ~work_ns:2_000.0
        done);
    Testbed.run tb4;
    let quote = Sgx.attest enclave in
    Printf.printf "   SGX on the bm-guest: %d ecalls, quote verifies: %b\n"
      (Sgx.transitions enclave)
      (Sgx.verify_quote ~name:"keys" ~quote))
