type kind =
  | Link_down
  | Dma_stall
  | Mailbox_drop
  | Firmware_wedge
  | Pmd_crash
  | Server_failure
  | Fabric_link_down
  | Vf_stall
  | Vf_reassign_timeout

let all_kinds =
  [
    Link_down; Dma_stall; Mailbox_drop; Firmware_wedge; Pmd_crash; Server_failure;
    Fabric_link_down; Vf_stall; Vf_reassign_timeout;
  ]

let kind_index = function
  | Link_down -> 0
  | Dma_stall -> 1
  | Mailbox_drop -> 2
  | Firmware_wedge -> 3
  | Pmd_crash -> 4
  | Server_failure -> 5
  | Fabric_link_down -> 6
  | Vf_stall -> 7
  | Vf_reassign_timeout -> 8

let nkinds = 9

let kind_name = function
  | Link_down -> "link_down"
  | Dma_stall -> "dma_stall"
  | Mailbox_drop -> "mailbox_drop"
  | Firmware_wedge -> "firmware_wedge"
  | Pmd_crash -> "pmd_crash"
  | Server_failure -> "server_failure"
  | Fabric_link_down -> "fabric_link_down"
  | Vf_stall -> "vf_stall"
  | Vf_reassign_timeout -> "vf_reassign_timeout"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

(* Window lengths chosen to sit in the regimes the hardware exhibits:
   a PCIe retrain is tens of µs, a DMA hiccup shorter, a firmware
   reload longer, a process respawn longer still. *)
let default_duration_ns = function
  | Link_down -> 50_000.0
  | Dma_stall -> 20_000.0
  | Mailbox_drop -> 10_000.0
  | Firmware_wedge -> 100_000.0
  | Pmd_crash -> 200_000.0
  | Server_failure -> infinity
  | Fabric_link_down -> 150_000.0
  | Vf_stall -> 30_000.0
  | Vf_reassign_timeout -> 80_000.0

type event = { kind : kind; at : float; duration_ns : float }

type plan = { seed : int; horizon_ns : float; events : event list }

let no_faults = { seed = 0; horizon_ns = 0.0; events = [] }

let sort_events events =
  List.stable_sort
    (fun a b ->
      match compare a.at b.at with 0 -> compare (kind_index a.kind) (kind_index b.kind) | c -> c)
    events

let make_plan ~seed ?(horizon_ns = 2e6) counts =
  if horizon_ns <= 0.0 then invalid_arg "Fault.make_plan: horizon must be positive";
  let rng = Rng.create ~seed in
  (* One split per kind, in kind order, so adding events of one kind
     never moves another kind's times. *)
  let streams = Array.init nkinds (fun _ -> Rng.split rng) in
  let events =
    List.concat_map
      (fun (kind, count) ->
        if count < 0 then invalid_arg "Fault.make_plan: negative count";
        let stream = streams.(kind_index kind) in
        List.init count (fun _ ->
            { kind; at = Rng.float stream horizon_ns; duration_ns = default_duration_ns kind }))
      counts
  in
  { seed; horizon_ns; events = sort_events events }

let default_counts =
  [
    (Link_down, 2);
    (Dma_stall, 2);
    (Mailbox_drop, 2);
    (Firmware_wedge, 1);
    (Pmd_crash, 1);
  ]

let parse_spec s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault spec %S: expected <seed>:<spec>" s)
  | Some i -> (
    let seed_s = String.sub s 0 i in
    let body = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt seed_s with
    | None -> Error (Printf.sprintf "fault spec %S: seed %S is not an integer" s seed_s)
    | Some seed ->
      let parts =
        String.split_on_char ',' body |> List.map String.trim
        |> List.filter (fun p -> p <> "")
      in
      let rec go horizon counts = function
        | [] -> Ok (make_plan ~seed ?horizon_ns:horizon (List.rev counts))
        | "default" :: rest -> go horizon (List.rev_append default_counts counts) rest
        | part :: rest -> (
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "fault spec: %S is not kind=count" part)
          | Some j -> (
            let key = String.sub part 0 j in
            let v = String.sub part (j + 1) (String.length part - j - 1) in
            match (key, kind_of_name key, int_of_string_opt v, float_of_string_opt v) with
            | "horizon", _, _, Some h when h > 0.0 -> go (Some h) counts rest
            | "horizon", _, _, _ ->
              Error (Printf.sprintf "fault spec: horizon %S is not a positive number" v)
            | _, Some kind, Some count, _ when count >= 0 -> go horizon ((kind, count) :: counts) rest
            | _, Some _, _, _ ->
              Error (Printf.sprintf "fault spec: count %S is not a non-negative integer" v)
            | _, None, _, _ ->
              Error
                (Printf.sprintf "fault spec: unknown kind %S (expected one of %s)" key
                   (String.concat ", " (List.map kind_name all_kinds)))))
      in
      if parts = [] then Error "fault spec: empty (try \"default\")" else go None [] parts)

let render_plan plan =
  let line e =
    Printf.sprintf "%-14s at %12.1f ns for %s" (kind_name e.kind) e.at
      (if Float.is_finite e.duration_ns then Printf.sprintf "%.1f ns" e.duration_ns
       else "ever")
  in
  Printf.sprintf "plan seed=%d horizon=%.0fns events=%d\n%s" plan.seed plan.horizon_ns
    (List.length plan.events)
    (String.concat "\n" (List.map line plan.events))

(* ------------------------------------------------------------------ *)
(* Injector *)

type t = {
  sim : Sim.t option; (* None for the null injector *)
  the_plan : plan;
  until : float array; (* per-kind end of the open window *)
  mutable subs : (kind * (event -> unit)) list; (* reversed *)
  mutable armed : bool;
  mutable opened : int;
  mutable closed : int;
  opened_k : int array;
  closed_k : int array;
  obs : Obs.t;
}

let none =
  {
    sim = None;
    the_plan = no_faults;
    until = Array.make nkinds neg_infinity;
    subs = [];
    armed = false;
    opened = 0;
    closed = 0;
    opened_k = Array.make nkinds 0;
    closed_k = Array.make nkinds 0;
    obs = Obs.none;
  }

let create ?(obs = Obs.none) sim plan =
  {
    sim = Some sim;
    the_plan = plan;
    until = Array.make nkinds neg_infinity;
    subs = [];
    armed = false;
    opened = 0;
    closed = 0;
    opened_k = Array.make nkinds 0;
    closed_k = Array.make nkinds 0;
    obs;
  }

let plan_of t = t.the_plan
let injected t = t.opened
let recovered t = t.closed

let subscribe t kind f = if t.sim <> None then t.subs <- (kind, f) :: t.subs

let open_window t sim e =
  t.opened <- t.opened + 1;
  let k = kind_index e.kind in
  t.opened_k.(k) <- t.opened_k.(k) + 1;
  t.until.(k) <- Float.max t.until.(k) (Sim.now sim +. e.duration_ns);
  Trace.instant_opt (Obs.trace t.obs) ~track:"fault" (kind_name e.kind) ~now:(Sim.now sim);
  Metrics.incr_opt (Obs.metrics t.obs) ("fault.injected." ^ kind_name e.kind);
  List.iter (fun (kind, f) -> if kind = e.kind then f e) (List.rev t.subs)

(* Terminal recovery accounting. Every injected window is reported
   recovered exactly once, at its natural close or — for windows that
   would outlive the plan (including ones ending exactly at the horizon
   and the permanent [Server_failure] windows) — at the plan horizon,
   so availability accounting is conservative: a fault is "down" for
   its whole window and never silently forgotten at simulation end. *)
let close_window t sim e =
  t.closed <- t.closed + 1;
  t.closed_k.(kind_index e.kind) <- t.closed_k.(kind_index e.kind) + 1;
  Trace.instant_opt (Obs.trace t.obs)
    ~track:"fault"
    (kind_name e.kind ^ ".recovered")
    ~now:(Sim.now sim);
  Metrics.incr_opt (Obs.metrics t.obs) ("fault.recovered." ^ kind_name e.kind)

let arm t =
  match t.sim with
  | None -> ()
  | Some sim ->
    if not t.armed then begin
      t.armed <- true;
      List.iter
        (fun e ->
          Sim.schedule sim ~delay:e.at (fun () -> open_window t sim e);
          let close_at = Float.min (e.at +. e.duration_ns) t.the_plan.horizon_ns in
          Sim.schedule sim ~delay:close_at (fun () -> close_window t sim e))
        t.the_plan.events
    end

let summary t =
  let per_kind =
    List.filter_map
      (fun k ->
        let i = kind_index k in
        if t.opened_k.(i) = 0 && t.closed_k.(i) = 0 then None
        else Some (Printf.sprintf "%s %d/%d" (kind_name k) t.closed_k.(i) t.opened_k.(i)))
      all_kinds
  in
  Printf.sprintf "faults recovered/injected: %d/%d%s" t.closed t.opened
    (if per_kind = [] then "" else " (" ^ String.concat ", " per_kind ^ ")")

let active_until t kind = t.until.(kind_index kind)

let is_active t kind =
  match t.sim with None -> false | Some sim -> Sim.now sim < t.until.(kind_index kind)

let block_until_clear t kind =
  match t.sim with
  | None -> ()
  | Some sim ->
    let k = kind_index kind in
    (* Loop: a longer window may have opened while we slept. *)
    let rec wait () =
      let u = t.until.(k) in
      if Sim.now sim < u then begin
        Sim.delay (u -. Sim.now sim);
        wait ()
      end
    in
    wait ()

(* ------------------------------------------------------------------ *)
(* Guard *)

module Guard = struct
  type policy = {
    timeout_ns : float;
    max_attempts : int;
    backoff_ns : float;
    backoff_mult : float;
    backoff_max_ns : float;
    circuit_threshold : int;
    circuit_cooldown_ns : float;
  }

  let default_policy =
    {
      timeout_ns = infinity;
      max_attempts = 4;
      backoff_ns = 500.0;
      backoff_mult = 2.0;
      backoff_max_ns = 8_000.0;
      circuit_threshold = 0;
      circuit_cooldown_ns = 1e6;
    }

  type g = {
    sim : Sim.t;
    name : string;
    policy : policy;
    mutable consecutive_failures : int;
    mutable open_until : float; (* breaker rejects while now < open_until *)
    mutable retries : int;
    mutable timeouts : int;
    mutable circuit_opens : int;
    obs : Obs.t;
  }

  let create ?(obs = Obs.none) ?(policy = default_policy) sim ~name =
    if policy.max_attempts < 1 then invalid_arg "Fault.Guard: max_attempts must be >= 1";
    {
      sim;
      name;
      policy;
      consecutive_failures = 0;
      open_until = neg_infinity;
      retries = 0;
      timeouts = 0;
      circuit_opens = 0;
      obs;
    }

  let retries g = g.retries
  let timeouts g = g.timeouts
  let circuit_opens g = g.circuit_opens
  let circuit_open g = Sim.now g.sim < g.open_until

  type state = Closed | Open | Half_open

  let state_name = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half_open"

  (* Half-open is the probe state: the breaker has tripped (the failure
     streak reached the threshold) and the cooldown has elapsed, so the
     next run is allowed through; its outcome closes the breaker or
     re-opens it. Observable so policies can defer to a browned-out
     control plane instead of inferring from retry counts. *)
  let state g =
    if circuit_open g then Open
    else if
      g.policy.circuit_threshold > 0
      && g.consecutive_failures >= g.policy.circuit_threshold
    then Half_open
    else Closed

  let metric g what = "fault.guard." ^ g.name ^ "." ^ what

  let with_timeout sim ~timeout_ns op =
    if not (Float.is_finite timeout_ns) then Ok (op ())
    else begin
      (* Race the operation against the deadline. First settle wins;
         the loser is abandoned (the simulator cannot preempt it). *)
      let result = ref None in
      let waiter = ref None in
      let settle v =
        if !result = None then begin
          result := Some v;
          match !waiter with Some resume -> resume v | None -> ()
        end
      in
      Sim.fork (fun () ->
          let v = op () in
          settle (Ok v));
      Sim.schedule sim ~delay:timeout_ns (fun () -> settle (Error `Timeout));
      match !result with
      | Some v -> v
      | None ->
        Sim.suspend (fun resume ->
            match !result with Some v -> resume v | None -> waiter := Some resume)
    end

  let run g op =
    let p = g.policy in
    if circuit_open g then begin
      Metrics.incr_opt (Obs.metrics g.obs) (metric g "rejected");
      Error (g.name ^ ": circuit open")
    end
    else begin
      let once () =
        match with_timeout g.sim ~timeout_ns:p.timeout_ns op with
        | Ok r -> r
        | Error `Timeout ->
          g.timeouts <- g.timeouts + 1;
          Metrics.incr_opt (Obs.metrics g.obs) (metric g "timeouts");
          Error (g.name ^ ": timeout")
      in
      let rec attempt i backoff =
        match once () with
        | Ok v ->
          g.consecutive_failures <- 0;
          Ok v
        | Error e ->
          if i >= p.max_attempts then begin
            g.consecutive_failures <- g.consecutive_failures + 1;
            if p.circuit_threshold > 0 && g.consecutive_failures >= p.circuit_threshold then begin
              g.open_until <- Sim.now g.sim +. p.circuit_cooldown_ns;
              g.circuit_opens <- g.circuit_opens + 1;
              Metrics.incr_opt (Obs.metrics g.obs) (metric g "circuit_opens")
            end;
            Error e
          end
          else begin
            g.retries <- g.retries + 1;
            Metrics.incr_opt (Obs.metrics g.obs) (metric g "retries");
            Sim.delay backoff;
            attempt (i + 1) (Float.min (backoff *. p.backoff_mult) p.backoff_max_ns)
          end
      in
      (* The ceiling caps the whole schedule, first sleep included: a
         policy whose base backoff exceeds its cap still honours the
         cap. *)
      attempt 1 (Float.min p.backoff_ns p.backoff_max_ns)
    end
end
