lib/iobond/offload.mli: Bm_virtio
