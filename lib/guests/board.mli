(** A compute board: dedicated CPU + memory + IO-Bond on a PCIe card.

    "Each bare-metal guest runs on its own compute board, a PCIe
    extension board with the dedicated CPU and memory modules" (§1). The
    board's life cycle is driven by the bm-hypervisor over PCIe: power
    on, boot from remote storage, power off (§3.2). The CPU choice is
    free — any SKU from {!Bm_hw.Cpu_spec} (§3.3). *)

type power = Off | On

type t

val create :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  id:int ->
  spec:Bm_hw.Cpu_spec.t ->
  mem_gb:int ->
  profile:Bm_iobond.Profile.t ->
  ?dma_gbit_s:float ->
  unit ->
  t
(** [obs] and [fault] are threaded into the board's IO-Bond. *)

val id : t -> int
val spec : t -> Bm_hw.Cpu_spec.t
val mem_gb : t -> int
val power : t -> power
val iobond : t -> Bm_iobond.Iobond.t
val firmware : t -> Firmware.t
val vendor_key : int
(** The key boards are provisioned with (exposed so tests and the
    control plane can produce valid signatures). *)

val cores : t -> Bm_hw.Cores.t
(** Raises [Invalid_argument] while powered off. *)

val memory : t -> Bm_hw.Memory.t

val power_on : t -> unit
(** Turn on the PCIe power (§3.2). Idempotent. *)

val power_off : t -> unit
