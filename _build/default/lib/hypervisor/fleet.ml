open Bm_engine

type workload_class = Idle | Web | Database | Cache | Hpc | Io_heavy

(* Mixture calibrated against Table 2: 3.82% of VMs above 10K exits/s,
   0.37% above 50K, 0.13% above 100K. Most of the fleet barely exits;
   a small I/O-heavy population carries the tail. *)
let class_mix =
  [ (Idle, 0.35); (Web, 0.38); (Database, 0.15); (Cache, 0.07); (Hpc, 0.02); (Io_heavy, 0.03) ]

let sample_class rng =
  let u = Rng.float rng 1.0 in
  let rec pick acc = function
    | [] -> Io_heavy
    | (cls, p) :: rest -> if u < acc +. p then cls else pick (acc +. p) rest
  in
  pick 0.0 class_mix

(* Exit-rate medians (per second per vCPU) and lognormal shapes. *)
let rate_params = function
  | Idle -> (30.0, 1.0)
  | Web -> (600.0, 1.0)
  | Database -> (1_800.0, 1.0)
  | Cache -> (3_500.0, 1.1)
  | Hpc -> (300.0, 0.8)
  | Io_heavy -> (9_000.0, 1.35)

let sample_exit_rate rng cls =
  let median, sigma = rate_params cls in
  Rng.lognormal rng ~median ~sigma

type exit_survey = { vms : int; over_10k : float; over_50k : float; over_100k : float }

let survey_exits rng ~vms =
  assert (vms > 0);
  let over_10k = ref 0 and over_50k = ref 0 and over_100k = ref 0 in
  for _ = 1 to vms do
    let rate = sample_exit_rate rng (sample_class rng) in
    if rate > 10_000.0 then incr over_10k;
    if rate > 50_000.0 then incr over_50k;
    if rate > 100_000.0 then incr over_100k
  done;
  let frac r = float_of_int !r /. float_of_int vms in
  { vms; over_10k = frac over_10k; over_50k = frac over_50k; over_100k = frac over_100k }

type preempt_window = {
  hour : int;
  shared_p99 : float;
  shared_p999 : float;
  exclusive_p99 : float;
  exclusive_p999 : float;
}

(* Datacenter host load: a mild diurnal swing around ~0.55. *)
let diurnal_load ~hour =
  let phase = float_of_int ((hour + 18) mod 24) /. 24.0 *. 2.0 *. Float.pi in
  0.55 +. (0.25 *. sin phase)

let percentile_of_array a p =
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (Float.of_int n *. p /. 100.0) in
  a.(min (n - 1) rank)

let survey_preemption rng ~vms ~hours =
  assert (vms > 1 && hours > 0);
  List.init hours (fun hour ->
      let host_load = diurnal_load ~hour in
      let draw mode = Array.init vms (fun _ -> Preempt.sample_window_fraction rng ~mode ~host_load) in
      let shared = draw Preempt.Shared in
      let exclusive = draw Preempt.Exclusive in
      {
        hour;
        shared_p99 = percentile_of_array shared 99.0;
        shared_p999 = percentile_of_array shared 99.9;
        exclusive_p99 = percentile_of_array exclusive 99.0;
        exclusive_p999 = percentile_of_array exclusive 99.9;
      })
