(* Tests for the virtio 1.1 packed ring, including a model-based
   equivalence check against the split Vring. *)

open Bm_virtio

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pkt id = Packet.make ~id ~src:0 ~dst:1 ~size:64 ~protocol:Packet.Udp ~sent_at:0.0 ()

let test_roundtrip () =
  let r = Packed_ring.create ~size:8 in
  let p = pkt 1 in
  (match Packed_ring.add r ~out:[ 12; 64 ] ~in_:[] p with
  | None -> Alcotest.fail "add failed"
  | Some id ->
    check_int "two slots consumed" 6 (Packed_ring.num_free r);
    (match Packed_ring.pop_avail r with
    | None -> Alcotest.fail "nothing available"
    | Some chain ->
      check_int "same id" id chain.Packed_ring.id;
      check_bool "payload" true (chain.Packed_ring.payload == p));
    Packed_ring.push_used r ~id ~written:0;
    (match Packed_ring.pop_used r with
    | Some (payload, _) -> check_bool "payload back" true (payload == p)
    | None -> Alcotest.fail "no used entry"));
  check_int "slots recycled" 8 (Packed_ring.num_free r);
  check_bool "invariants" true (Packed_ring.check_invariants r = Ok ())

let test_fills_up () =
  let r = Packed_ring.create ~size:4 in
  check_bool "1st" true (Packed_ring.add r ~out:[ 12; 64 ] ~in_:[] (pkt 1) <> None);
  check_bool "2nd" true (Packed_ring.add r ~out:[ 12; 64 ] ~in_:[] (pkt 2) <> None);
  check_bool "3rd rejected" true (Packed_ring.add r ~out:[ 12; 64 ] ~in_:[] (pkt 3) = None)

let test_out_of_order_completion () =
  let r = Packed_ring.create ~size:16 in
  let ids =
    List.filter_map (fun i -> Packed_ring.add r ~out:[ 64 ] ~in_:[] (pkt i)) [ 1; 2; 3 ]
  in
  List.iter (fun _ -> ignore (Packed_ring.pop_avail r)) ids;
  (* Complete 3, 1, 2: the driver reclaims in completion order. *)
  (match ids with
  | [ a; b; c ] ->
    Packed_ring.push_used r ~id:c ~written:0;
    Packed_ring.push_used r ~id:a ~written:0;
    Packed_ring.push_used r ~id:b ~written:0
  | _ -> Alcotest.fail "expected 3 ids");
  let order =
    List.filter_map (fun _ -> Option.map (fun (p, _) -> p.Packet.id) (Packed_ring.pop_used r)) ids
  in
  Alcotest.(check (list int)) "completion order" [ 3; 1; 2 ] order;
  check_bool "invariants" true (Packed_ring.check_invariants r = Ok ())

let test_wrap_counters () =
  let r = Packed_ring.create ~size:4 in
  (* Many cycles in lockstep: wrap counters must keep rings consistent. *)
  for i = 0 to 9_999 do
    match Packed_ring.add r ~out:[ 64; 64; 64 ] ~in_:[] (pkt i) with
    | None -> Alcotest.failf "ring full in lockstep at %d" i
    | Some id ->
      (match Packed_ring.pop_avail r with
      | Some chain -> if chain.Packed_ring.payload.Packet.id <> i then Alcotest.fail "wrong chain"
      | None -> Alcotest.failf "avail missing at %d" i);
      Packed_ring.push_used r ~id ~written:0;
      (match Packed_ring.pop_used r with
      | Some (p, _) -> if p.Packet.id <> i then Alcotest.failf "wrap mismatch at %d" i
      | None -> Alcotest.failf "used missing at %d" i)
  done;
  check_bool "invariants after 10k cycles" true (Packed_ring.check_invariants r = Ok ())

let test_set_payload () =
  let r = Packed_ring.create ~size:8 in
  match Packed_ring.add r ~out:[] ~in_:[ 1536 ] (pkt 0) with
  | None -> Alcotest.fail "add failed"
  | Some id ->
    ignore (Packed_ring.pop_avail r);
    Packed_ring.set_payload r ~id (pkt 42);
    Packed_ring.push_used r ~id ~written:1400;
    (match Packed_ring.pop_used r with
    | Some (p, written) ->
      check_int "device payload" 42 p.Packet.id;
      check_int "written" 1400 written
    | None -> Alcotest.fail "no used")

(* Model-based equivalence: driving the packed ring and the split Vring
   through the same operation sequence (with in-order completion) yields
   the same observable payload streams. *)
let prop_matches_split_ring =
  QCheck.Test.make ~name:"packed ring ~ split ring (in-order schedules)" ~count:200
    QCheck.(pair (int_range 0 2) (list_of_size (Gen.int_range 10 300) (int_range 0 99)))
    (fun (size_exp, ops) ->
      let size = 8 lsl size_exp in
      let packed = Packed_ring.create ~size in
      let split = Vring.create ~size in
      let p_pop = Queue.create () and s_pop = Queue.create () in
      let log_p = Buffer.create 64 and log_s = Buffer.create 64 in
      let step op =
        if op < 40 then begin
          (* add a 2-segment request *)
          let payload = pkt op in
          let a = Packed_ring.add packed ~out:[ 12; 64 ] ~in_:[] payload in
          let b = Vring.add split ~out:[ 12; 64 ] ~in_:[] payload in
          if (a = None) <> (b = None) then QCheck.Test.fail_report "add acceptance diverged";
          ()
        end
        else if op < 70 then begin
          let a = Packed_ring.pop_avail packed in
          let b = Vring.pop_avail split in
          (match (a, b) with
          | Some ca, Some cb ->
            if ca.Packed_ring.payload.Packet.id <> cb.Vring.payload.Packet.id then
              QCheck.Test.fail_report "pop_avail diverged";
            Queue.add ca.Packed_ring.id p_pop;
            Queue.add cb.Vring.head s_pop
          | None, None -> ()
          | Some _, None | None, Some _ -> QCheck.Test.fail_report "pop_avail presence diverged")
        end
        else if op < 85 then begin
          match (Queue.take_opt p_pop, Queue.take_opt s_pop) with
          | Some id, Some head ->
            Packed_ring.push_used packed ~id ~written:op;
            Vring.push_used split ~head ~written:op
          | None, None -> ()
          | _ -> QCheck.Test.fail_report "popped queues diverged"
        end
        else begin
          let a = Packed_ring.pop_used packed in
          let b = Vring.pop_used split in
          match (a, b) with
          | Some (pa, wa), Some (pb, wb) ->
            Buffer.add_string log_p (Printf.sprintf "%d:%d;" pa.Packet.id wa);
            Buffer.add_string log_s (Printf.sprintf "%d:%d;" pb.Packet.id wb)
          | None, None -> ()
          | Some _, None | None, Some _ -> QCheck.Test.fail_report "pop_used presence diverged"
        end
      in
      List.iter step ops;
      Buffer.contents log_p = Buffer.contents log_s
      && Packed_ring.check_invariants packed = Ok ()
      && Vring.check_invariants split = Ok ())

let prop_invariants_random =
  QCheck.Test.make ~name:"packed ring invariants under random op mixes" ~count:200
    QCheck.(list_of_size (Gen.int_range 10 400) (int_range 0 99))
    (fun ops ->
      let r = Packed_ring.create ~size:16 in
      let popped = Queue.create () in
      let step op =
        if op < 45 then
          ignore (Packed_ring.add r ~out:(List.init (1 + (op mod 3)) (fun _ -> 64)) ~in_:[] (pkt op))
        else if op < 75 then (
          match Packed_ring.pop_avail r with
          | Some chain -> Queue.add chain.Packed_ring.id popped
          | None -> ())
        else if op < 90 then (
          (* out-of-order completion: sometimes take from the back *)
          match Queue.take_opt popped with
          | Some id -> Packed_ring.push_used r ~id ~written:0
          | None -> ())
        else ignore (Packed_ring.pop_used r)
      in
      List.iter step ops;
      Packed_ring.check_invariants r = Ok ())

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "virtio.packed",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "fills up" `Quick test_fills_up;
        Alcotest.test_case "out-of-order completion" `Quick test_out_of_order_completion;
        Alcotest.test_case "wrap counters (10k cycles)" `Quick test_wrap_counters;
        Alcotest.test_case "device sets payload" `Quick test_set_payload;
      ] );
    qsuite "virtio.packed.prop" [ prop_matches_split_ring; prop_invariants_random ];
  ]
