test/test_hw.ml: Alcotest Bm_engine Bm_hw Cache Cores Cpu_spec Dma Float Gen Irq List Memory Pcie Power QCheck QCheck_alcotest Sim Tlb
