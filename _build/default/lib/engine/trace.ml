type event = {
  at : float;
  track : string;
  name : string;
  kind : [ `Instant | `Begin | `End | `Counter of float ];
}

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int; (* total events ever recorded *)
}

let create ?(capacity = 65536) () =
  assert (capacity > 0);
  { capacity; buffer = Array.make capacity None; next = 0 }

let record t event =
  t.buffer.(t.next mod t.capacity) <- Some event;
  t.next <- t.next + 1

let instant t ~track name ~now = record t { at = now; track; name; kind = `Instant }
let begin_span t ~track name ~now = record t { at = now; track; name; kind = `Begin }
let end_span t ~track name ~now = record t { at = now; track; name; kind = `End }
let counter t ~track name ~now v = record t { at = now; track; name; kind = `Counter v }

let span t ~track name ~clock f =
  begin_span t ~track name ~now:(clock ());
  match f () with
  | v ->
    end_span t ~track name ~now:(clock ());
    v
  | exception e ->
    end_span t ~track name ~now:(clock ());
    raise e

(* Option-sink variants: exact no-ops when no trace is installed, so
   instrumented call sites cost one branch on the disabled path. *)

let instant_opt o ~track name ~now =
  match o with Some t -> instant t ~track name ~now | None -> ()

let begin_span_opt o ~track name ~now =
  match o with Some t -> begin_span t ~track name ~now | None -> ()

let end_span_opt o ~track name ~now =
  match o with Some t -> end_span t ~track name ~now | None -> ()

let counter_opt o ~track name ~now v =
  match o with Some t -> counter t ~track name ~now v | None -> ()

let span_opt o ~track name ~clock f =
  match o with Some t -> span t ~track name ~clock f | None -> f ()

let events t =
  let n = min t.next t.capacity in
  let start = t.next - n in
  List.init n (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let dropped t = max 0 (t.next - t.capacity)

let count t ~track ?name () =
  List.length
    (List.filter
       (fun e -> e.track = track && match name with Some n -> e.name = n | None -> true)
       (events t))

let span_durations t ~track name =
  (* Pair Begin/End events of the same (track, name) in order; nesting of
     the same name on one track pairs innermost-first. *)
  let stack = ref [] in
  let out = ref [] in
  List.iter
    (fun e ->
      if e.track = track && e.name = name then
        match e.kind with
        | `Begin -> stack := e.at :: !stack
        | `End -> (
          match !stack with
          | t0 :: rest ->
            stack := rest;
            out := (e.at -. t0) :: !out
          | [] -> ())
        | `Instant | `Counter _ -> ())
    (events t);
  List.rev !out

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      let kind =
        match e.kind with
        | `Instant -> "·"
        | `Begin -> "▶"
        | `End -> "◀"
        | `Counter v -> Printf.sprintf "=%g" v
      in
      Buffer.add_string buf
        (Printf.sprintf "%12.0fns %-20s %s %s\n" e.at e.track e.name kind))
    (events t);
  if dropped t > 0 then
    Buffer.add_string buf (Printf.sprintf "(… %d earlier events dropped)\n" (dropped t));
  Buffer.contents buf

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_number v = if Float.is_finite v then Printf.sprintf "%.17g" v else "0"

let export_json t =
  (* Chrome trace_event "JSON Array Format" wrapped in an object, one
     numeric tid per track (first-seen order) named via "M" metadata
     records. Timestamps are microseconds, as the format requires. *)
  let buf = Buffer.create 4096 in
  let tids = Hashtbl.create 16 in
  let tracks_in_order = ref [] in
  let tid track =
    match Hashtbl.find_opt tids track with
    | Some i -> i
    | None ->
      let i = Hashtbl.length tids + 1 in
      Hashtbl.replace tids track i;
      tracks_in_order := track :: !tracks_in_order;
      i
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  List.iter
    (fun e ->
      let ph, extra =
        match e.kind with
        | `Instant -> ("i", ",\"s\":\"t\"")
        | `Begin -> ("B", "")
        | `End -> ("E", "")
        | `Counter v -> ("C", Printf.sprintf ",\"args\":{\"value\":%s}" (json_number v))
      in
      emit
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"%s\",\"ts\":%s,\"pid\":1,\"tid\":%d%s}"
           (json_escape e.name) ph
           (json_number (e.at /. 1e3))
           (tid e.track) extra))
    (events t);
  List.iter
    (fun track ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (Hashtbl.find tids track) (json_escape track)))
    (List.rev !tracks_in_order);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf
