(* A bounded domain pool for embarrassingly parallel work. Each worker
   claims the next unclaimed index with an atomic fetch-and-add, so the
   pool load-balances uneven cell durations without any channel
   machinery; results land in a per-index slot and are joined in input
   order, which is what keeps sweep output byte-identical for any job
   count. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 1) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f items.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          claim ()
        end
      in
      claim ()
    in
    let spawned =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false (* every index is claimed before joins return *))
  end
