(** Open-loop overload generators.

    [Netperf] is closed-loop: senders go as fast as the datapath lets
    them, so a blocking rate limiter silently converts overload into
    client-side waiting and the measured "latency" stays flat. These
    drivers are open-loop: every packet/request is stamped with the time
    it was *supposed* to start, latency is measured against that
    schedule, and the generator never slows down to accommodate the
    system under test. Offered load beyond capacity therefore shows up
    either as diverging latency (blocking admission) or as explicit
    sheds/rejections with flat latency (bounded admission) — the
    hockey-stick comparison of the overload experiment. *)

type net_result = {
  offered_pps : float;  (** schedule rate: what the clients wanted to send *)
  goodput_pps : float;  (** packets the receiver actually absorbed *)
  shed : int;  (** packets refused at the sender (rate limiter said no) *)
  p50_us : float;  (** receive latency vs the intended send time *)
  p99_us : float;
  max_lag_ms : float;  (** worst sender slip behind its own schedule *)
}

val udp_flood :
  Bm_engine.Sim.t ->
  src:Bm_guest.Instance.t ->
  dst:Bm_guest.Instance.t ->
  ?senders:int ->
  ?batch:int ->
  offered_pps:float ->
  duration:float ->
  unit ->
  net_result
(** [senders] fibers each pace batches of [batch] packets so their
    combined schedule is [offered_pps]; a sender that the datapath
    blocks falls behind its schedule and the slip is charged to the
    latency of every packet it sends late. Runs the sim to completion
    (plus a small drain window). *)

type blk_result = {
  offered_iops : float;
  goodput_iops : float;  (** requests that completed successfully *)
  rejected : int;  (** requests abandoned after exhausting retries *)
  retries : int;  (** extra attempts spent on refused requests *)
  blk_p50_us : float;  (** completion latency vs the intended issue time *)
  blk_p99_us : float;
  blk_max_lag_ms : float;
}

val blk_flood :
  Bm_engine.Sim.t ->
  inst:Bm_guest.Instance.t ->
  ?block_bytes:int ->
  ?max_retries:int ->
  ?retry_backoff_ns:float ->
  offered_iops:float ->
  duration:float ->
  unit ->
  blk_result
(** A dispatcher fiber issues 4 KiB reads at exactly [offered_iops],
    each in its own fiber; refused requests ([Instance.blk_try]) retry
    up to [max_retries] times with exponential backoff starting at
    [retry_backoff_ns], then count as rejected. *)
