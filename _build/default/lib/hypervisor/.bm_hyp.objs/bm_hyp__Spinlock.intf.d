lib/hypervisor/spinlock.mli: Bm_guest
