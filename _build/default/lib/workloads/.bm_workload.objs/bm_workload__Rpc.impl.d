lib/workloads/rpc.ml: Bm_engine Bm_guest Bm_virtio Hashtbl Instance Packet Sim
