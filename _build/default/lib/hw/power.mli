(** TDP-based power accounting for the cost-efficiency comparison (§3.5).

    The paper estimates 3.17 W per vCPU for a single-board BM-Hive
    configuration against 3.06 W per vCPU for a vm-based server, the
    difference coming from the per-guest FPGA and the base-server CPU. *)

type component = Cpu of Cpu_spec.t * int  (** spec × socket count *) | Fpga of int  (** count *) | Fixed of string * float  (** label, watts *)

val fpga_tdp_w : float
(** Intel Arria low-cost FPGA, per IO-Bond instance. *)

val total_w : component list -> float

val watts_per_vcpu : components:component list -> sellable_vcpus:int -> float
(** Total platform TDP divided by the hardware threads actually sold. *)
