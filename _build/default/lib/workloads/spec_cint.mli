(** SPEC CINT2006 model (Fig. 7).

    Each of the twelve integer benchmarks is characterised by its memory
    working set and access locality (from published characterisation
    studies); a run executes the profile through the instance's
    memory-aware execution path, so the vm-guest pays EPT walk overheads
    proportional to each benchmark's TLB behaviour while bm/physical run
    natively. Scores are reported relative to a caller-supplied baseline,
    as the figure plots them. *)

type profile = {
  bench : string;
  natural_ns : float;  (** native execution time of the (scaled) run *)
  working_set : float;  (** bytes *)
  locality : float;
}

val profiles : profile list
(** The 12 CINT2006 benchmarks. Run lengths are scaled down uniformly
    (simulating a full SPEC run serves no purpose); relative results are
    unaffected. *)

type score = { bench : string; time_ns : float }

val run : Bm_engine.Sim.t -> Bm_guest.Instance.t -> score list

val relative : baseline:score list -> score list -> (string * float) list
(** [relative ~baseline scores]: per-benchmark speed relative to
    baseline ([> 1] = faster), plus a final ["geomean"] row. *)
