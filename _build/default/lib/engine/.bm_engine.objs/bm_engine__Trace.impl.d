lib/engine/trace.ml: Array Buffer Char Float Hashtbl List Printf String
