(** Fleet placement scheduler: bin-packing with anti-affinity, per-host
    ceilings and tenant quotas.

    The layer between tenant requests and the {!Control_plane}: requests
    carry an owner ({!Tenant}), an optional anti-affinity group, and a
    memory footprint; the scheduler packs them first-fit-decreasing
    (largest vCPU count first, names breaking ties, so a batch placement
    is a pure function of the request list), refuses placements that
    would violate a tenant quota or co-locate two members of one
    anti-affinity group, and relies on the control plane's per-host
    utilization ceilings for headroom. {!drain} is the mass-evacuation
    path: fail a host, re-place every victim elsewhere (anti-affinity
    and ceilings still enforced), stranding what no longer fits;
    {!retry_stranded} re-places strandees once capacity returns, and
    {!rebalance} spreads load off the hottest hosts.

    Invariants the property suite enforces:
    - two guests of one anti-affinity group never share a host;
    - no host's thread utilization exceeds its ceiling;
    - equal request lists produce identical assignments;
    - any drain / restore / rebalance sequence conserves guests
      (placed + stranded = admitted; no duplicates). *)

type request = {
  name : string;
  tenant : string;
  vcpus : int;
  mem_gb : int;  (** memory footprint — what an evacuation must move *)
  prefer : Control_plane.substrate option;
  group : string option;  (** anti-affinity group *)
  datapath : Bm_iobond.Vf.datapath;
      (** requested net path; non-[Vring] spends one of the host's VF
          credits, or falls over to the shadow-vring path when the host
          is out (see {!granted_datapath}) *)
}

val request :
  name:string ->
  tenant:string ->
  vcpus:int ->
  ?mem_gb:int ->
  ?prefer:Control_plane.substrate ->
  ?group:string ->
  ?datapath:Bm_iobond.Vf.datapath ->
  unit ->
  request
(** [mem_gb] defaults to [2 * vcpus]; [datapath] to [Vring]. *)

type t

val create :
  ?obs:Bm_engine.Obs.t ->
  ?strategy:Control_plane.strategy ->
  ?vfs_per_host:int ->
  Control_plane.t ->
  t
(** [strategy] (default [First_fit]) orders candidate hosts within the
    control plane. [vfs_per_host] (default 8) is each host's budget of
    SR-IOV virtual functions, overridable per host with
    {!set_vf_capacity}. With [obs], the scheduler counts
    ["cloud.sched.placed" / ".rejected" / ".evacuated" / ".stranded" /
    ".moves" / ".vf_granted" / ".vf_fallbacks"]. *)

val control_plane : t -> Control_plane.t

val set_classifier : t -> (request -> string option) -> unit
(** Install the placement classifier: every subsequent placement that
    goes through the scheduler (including evacuation re-placement and
    rebalance moves) tags its control-plane instance with the returned
    class, so per-class admission ceilings
    ({!Control_plane.set_class_ceiling}) can bind on it. The default
    classifier returns [None] (no class, never capped). *)

val register_tenant : t -> Tenant.t -> unit
(** Raises [Invalid_argument] on a duplicate tenant name. *)

val tenant : t -> string -> Tenant.t option
val tenants : t -> Tenant.t list
(** Sorted by name. *)

val place : t -> request -> (Control_plane.placement, string) result
(** Admit against the tenant quota, then place avoiding the request
    group's hosts. A request refused (quota, anti-affinity, capacity,
    ceiling) is not retained — the error is the caller's to handle. *)

val place_batch : t -> request list -> (string * (Control_plane.placement, string) result) list
(** First-fit-decreasing: requests sorted by descending [vcpus] (names
    break ties) and placed in that order; results in the same order. *)

val release : t -> string -> unit
(** Free the instance, its quota and its anti-affinity slot. Unknown
    names are ignored. *)

val drain :
  t -> server:int -> (string * (Control_plane.placement, string) result) list
(** Mark [server] failed ({!Control_plane.fail_server}) and re-place
    each of its guests, largest first: the victim's own substrate is
    tried before the other (the cold-migration fallback), anti-affinity
    and ceilings still hold. Victims that no longer fit are {e stranded}
    — they keep their tenant admission and wait in the scheduler until
    {!retry_stranded}. *)

val retry_stranded : t -> (string * (Control_plane.placement, string) result) list
(** Attempt to place every stranded guest (largest first) — the
    recovery step after a failed host is repaired
    ({!Control_plane.restore_server}) or capacity is added. *)

val rebalance : t -> ?max_moves:int -> ?band:float -> unit -> (string * int * int) list
(** Move guests (smallest first) off hosts whose thread utilization
    exceeds the fleet mean by more than [band] (default 0.05) onto the
    emptiest feasible hosts, until each donor is within the band or
    [max_moves] (default 64) moves were made. Returns
    [(name, from_server, to_server)] per move. Anti-affinity, ceilings
    and conservation hold throughout. *)

val lookup : t -> string -> Control_plane.placement option
val request_of : t -> string -> request option

(** {2 Virtual-function accounting}

    Virtual functions are a countable per-host resource, spent when a
    placement lands and returned when the guest releases, drains away or
    is rebalanced off the host. The scheduler only promises a datapath —
    the hypervisor hands out the actual function at provisioning time. *)

val vf_capacity : t -> server:int -> int
val set_vf_capacity : t -> server:int -> vfs:int -> unit
val vf_in_use : t -> server:int -> int
val vf_free : t -> server:int -> int

val vf_fallbacks : t -> int
(** Placements that asked for a VF, found the host's budget spent, and
    were granted the shadow-vring path instead. *)

val granted_datapath : t -> string -> Bm_iobond.Vf.datapath option
(** What the guest's current placement actually got ([Some Vring] after
    a fallback); [None] while unplaced or unknown. *)

val check_vf_accounting : t -> unit
(** Recompute per-host VF consumption from the placed guests and fail
    (with [Failure]) if it disagrees with the incremental counters or
    exceeds any host's capacity — the QCheck-enforced invariant. *)

val assignments : t -> (string * Control_plane.placement) list
(** Every placed guest, sorted by name. *)

val stranded : t -> string list
(** Guests admitted but currently unplaced, sorted by name. *)

val guest_count : t -> int
(** Placed + stranded. *)

val guests_on : t -> server:int -> string list
(** Names placed on one host, sorted. *)

val hosts_of_tenant : t -> tenant:string -> int list
(** Distinct server ids currently hosting any guest of [tenant],
    sorted — one side of the blast-radius question a selective
    degradation policy asks ("where does this tenant live?"). *)

val tenants_on_host : t -> server:int -> string list
(** Distinct tenant names with a guest on [server], sorted — the other
    side ("who shares this host?"). *)

val occupancy : t -> (int * int) list
(** [(server id, placed guest count)] for every server, in declaration
    order. *)

val anti_affinity_violations : t -> (string * int) list
(** Recomputed from the ground truth: [(group, host)] pairs hosting
    more than one member of the group. Empty on a well-formed fleet —
    the property the QCheck suite asserts. *)
