(* Tests for the discrete-event simulation engine. *)

open Bm_engine

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Simtime *)

let test_time_units () =
  check_float "us" 1_000.0 (Simtime.us 1.0);
  check_float "ms" 1_000_000.0 (Simtime.ms 1.0);
  check_float "sec" 1e9 (Simtime.sec 1.0);
  check_float "minutes" 60e9 (Simtime.minutes 1.0);
  check_float "hours" 3600e9 (Simtime.hours 1.0);
  check_float "roundtrip us" 2.5 (Simtime.to_us (Simtime.us 2.5));
  check_float "roundtrip s" 3.25 (Simtime.to_sec (Simtime.sec 3.25))

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Simtime.to_string 500.0);
  Alcotest.(check string) "us" "1.60us" (Simtime.to_string (Simtime.us 1.6));
  Alcotest.(check string) "ms" "2.50ms" (Simtime.to_string (Simtime.ms 2.5));
  Alcotest.(check string) "s" "1.000s" (Simtime.to_string (Simtime.sec 1.0))

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.add q ~time:3.0 ~seq:1 "c";
  Pqueue.add q ~time:1.0 ~seq:2 "a";
  Pqueue.add q ~time:2.0 ~seq:3 "b";
  let pop () = match Pqueue.pop q with Some (_, _, v) -> v | None -> "!" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  check_bool "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  for i = 1 to 100 do
    Pqueue.add q ~time:5.0 ~seq:i i
  done;
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (_, _, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "fifo on equal time" (List.init 100 (fun i -> i + 1)) (drain [])

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing key order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1e6) small_nat))
    (fun items ->
      let q = Pqueue.create () in
      List.iteri (fun i (t, _) -> Pqueue.add q ~time:(Float.abs t) ~seq:i i) items;
      let rec drain last ok =
        match Pqueue.pop q with
        | None -> ok
        | Some (t, _, _) -> drain t (ok && t >= last)
      in
      drain neg_infinity true)

let test_pqueue_pop_if_le () =
  let q = Pqueue.create () in
  Pqueue.add q ~time:5.0 ~seq:2 "b";
  Pqueue.add q ~time:5.0 ~seq:1 "a";
  Pqueue.add q ~time:9.0 ~seq:3 "c";
  check_bool "earlier bound: no pop" true (Pqueue.pop_if_le q ~time:4.0 ~seq:max_int = None);
  check_bool "same time, smaller seq bound: no pop" true
    (Pqueue.pop_if_le q ~time:5.0 ~seq:0 = None);
  check_bool "equal key pops" true (Pqueue.pop_if_le q ~time:5.0 ~seq:1 = Some (5.0, 1, "a"));
  (* A strictly earlier time is eligible whatever the seq bound. *)
  check_bool "earlier time beats seq bound" true
    (Pqueue.pop_if_le q ~time:8.0 ~seq:min_int = Some (5.0, 2, "b"));
  check_bool "later entry stays" true (Pqueue.pop_if_le q ~time:8.999 ~seq:max_int = None);
  check_int "one left" 1 (Pqueue.length q);
  check_bool "empty queue" true
    (let e = Pqueue.create () in
     Pqueue.pop_if_le e ~time:infinity ~seq:max_int = None)

let test_pqueue_clear_keeps_capacity () =
  let q = Pqueue.create () in
  for i = 1 to 100 do
    Pqueue.add q ~time:(float_of_int i) ~seq:i i
  done;
  let cap = Pqueue.capacity q in
  Pqueue.clear q;
  check_int "emptied" 0 (Pqueue.length q);
  check_int "capacity survives clear" cap (Pqueue.capacity q);
  (* Still a working queue afterwards. *)
  Pqueue.add q ~time:1.0 ~seq:1 42;
  check_bool "usable after clear" true (Pqueue.pop q = Some (1.0, 1, 42))

(* Popped (and cleared) entries must not pin their values: slots past
   [size] are overwritten with a dummy, so the GC can collect fibers of
   completed events even while the queue object itself stays live. *)
let test_pqueue_releases_popped_values () =
  let q = Pqueue.create () in
  let n = 16 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let v = ref i in
    Weak.set weak i (Some v);
    Pqueue.add q ~time:(float_of_int i) ~seq:i v
  done;
  for _ = 0 to (n / 2) - 1 do
    ignore (Pqueue.pop q)
  done;
  Pqueue.clear q;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr live
  done;
  check_int "no value retained" 0 !live;
  ignore (Sys.opaque_identity q)

(* Model test: against a sorted association list, any interleaving of
   adds and pops agrees — including the FIFO tie-break at equal times. *)
let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue matches sorted-list reference" ~count:300
    QCheck.(list (option (int_bound 50)))
    (fun ops ->
      let q = Pqueue.create () in
      let model = ref [] in
      (* kept sorted ascending by (time, seq); seq is unique *)
      let seq = ref 0 in
      let ok = ref true in
      let pop_model () =
        match !model with
        | [] -> None
        | x :: rest ->
          model := rest;
          Some x
      in
      List.iter
        (function
          | Some t ->
            (* coarse times on purpose: ties are the interesting case *)
            let time = float_of_int (t / 10) in
            incr seq;
            Pqueue.add q ~time ~seq:!seq !seq;
            model := List.merge compare !model [ (time, !seq, !seq) ]
          | None -> if Pqueue.pop q <> pop_model () then ok := false)
        ops;
      let rec drain () =
        match Pqueue.pop q with
        | None -> if pop_model () <> None then ok := false
        | got ->
          if got <> pop_model () then ok := false;
          drain ()
      in
      drain ();
      !ok && Pqueue.is_empty q)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  (* After splitting, consuming from [b] must not affect [a]'s stream. *)
  let a' = Rng.copy a in
  for _ = 1 to 10 do
    ignore (Rng.bits64 b)
  done;
  check_bool "a unchanged by b" true (Rng.bits64 a = Rng.bits64 a')

let test_rng_uniform_range () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.float r 10.0 in
    check_bool "in range" true (x >= 0.0 && x < 10.0);
    let i = Rng.int r 7 in
    check_bool "int range" true (i >= 0 && i < 7)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:3 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Rng.exponential r ~mean:100.0)
  done;
  let m = Stats.Summary.mean s in
  check_bool "mean near 100" true (m > 97.0 && m < 103.0)

let test_rng_normal_moments () =
  let r = Rng.create ~seed:4 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Rng.normal r ~mean:50.0 ~stddev:5.0)
  done;
  check_bool "mean near 50" true (Float.abs (Stats.Summary.mean s -. 50.0) < 0.2);
  check_bool "sd near 5" true (Float.abs (Stats.Summary.stddev s -. 5.0) < 0.2)

let test_rng_zipf_skew () =
  let r = Rng.create ~seed:5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Rng.zipf r ~n:100 ~s:1.1 in
    check_bool "zipf in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank0 most popular" true (counts.(0) > counts.(10) && counts.(10) > 0)

let prop_pareto_above_scale =
  QCheck.Test.make ~name:"pareto samples >= scale" ~count:500
    QCheck.(pair (int_range 1 1000) (int_range 1 10))
    (fun (seed, shape) ->
      let r = Rng.create ~seed in
      let x = Rng.pareto r ~scale:5.0 ~shape:(float_of_int shape) in
      x >= 5.0)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "min" 1.0 (Stats.Summary.min s);
  check_float "max" 4.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stats.Summary.variance s)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let all = Stats.Summary.create () in
  let r = Rng.create ~seed:9 in
  for i = 1 to 1000 do
    let x = Rng.float r 50.0 in
    Stats.Summary.add (if i mod 2 = 0 then a else b) x;
    Stats.Summary.add all x
  done;
  let m = Stats.Summary.merge a b in
  Alcotest.(check (float 1e-6)) "merged mean" (Stats.Summary.mean all) (Stats.Summary.mean m);
  Alcotest.(check (float 1e-4))
    "merged variance" (Stats.Summary.variance all) (Stats.Summary.variance m);
  check_int "merged count" 1000 (Stats.Summary.count m)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create ~lo:1.0 ~hi:1e7 ~precision:0.005 () in
  (* 10,000 samples: 1..10000; p50 ~ 5000, p99 ~ 9900. *)
  for i = 1 to 10_000 do
    Stats.Histogram.add h (float_of_int i)
  done;
  let p50 = Stats.Histogram.percentile h 50.0 in
  let p99 = Stats.Histogram.percentile h 99.0 in
  let p999 = Stats.Histogram.percentile h 99.9 in
  check_bool "p50" true (Float.abs (p50 -. 5000.0) /. 5000.0 < 0.02);
  check_bool "p99" true (Float.abs (p99 -. 9900.0) /. 9900.0 < 0.02);
  check_bool "p999" true (Float.abs (p999 -. 9990.0) /. 9990.0 < 0.02);
  check_bool "ordered" true (p50 <= p99 && p99 <= p999)

let test_histogram_clamps () =
  let h = Stats.Histogram.create ~lo:10.0 ~hi:100.0 () in
  Stats.Histogram.add h 1.0;
  Stats.Histogram.add h 1e9;
  check_int "count" 2 (Stats.Histogram.count h);
  check_float "min tracked exactly" 1.0 (Stats.Histogram.min h);
  check_float "max tracked exactly" 1e9 (Stats.Histogram.max h)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range 1.0 1e6))
    (fun xs ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) xs;
      let ps = [ 10.0; 50.0; 90.0; 99.0; 99.9 ] in
      let vs = List.map (Stats.Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vs)

let prop_histogram_percentile_within_bounds =
  QCheck.Test.make ~name:"histogram percentile within [min,max]" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range 1.0 1e9))
    (fun xs ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) xs;
      let p = Stats.Histogram.percentile h 99.0 in
      p >= Stats.Histogram.min h && p <= Stats.Histogram.max h)

let test_meter_rate () =
  let m = Stats.Meter.create () in
  (* 1000 events over 1 simulated second -> ~1000/s. *)
  for i = 0 to 999 do
    Stats.Meter.mark m ~now:(float_of_int i *. 1e6)
  done;
  let r = Stats.Meter.rate m in
  check_bool "rate ~1000" true (Float.abs (r -. 1001.0) < 2.0)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_delay_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      Sim.delay 30.0;
      log := "c" :: !log);
  Sim.spawn sim (fun () ->
      Sim.delay 10.0;
      log := "a" :: !log);
  Sim.spawn sim (fun () ->
      Sim.delay 20.0;
      log := "b" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 30.0 (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.spawn sim (fun () ->
      let rec tick () =
        Sim.delay 100.0;
        incr fired;
        tick ()
      in
      tick ());
  Sim.run ~until:1000.0 sim;
  check_int "10 ticks in 1000ns" 10 !fired;
  check_float "clock = until" 1000.0 (Sim.now sim)

let test_sim_nested_fork () =
  let sim = Sim.create () in
  let sum = ref 0 in
  Sim.spawn sim (fun () ->
      for i = 1 to 5 do
        Sim.fork (fun () ->
            Sim.delay (float_of_int i);
            sum := !sum + i)
      done);
  Sim.run sim;
  check_int "all forks ran" 15 !sum

let test_sim_clock_inside () =
  let sim = Sim.create () in
  let seen = ref (-1.0) in
  Sim.spawn sim (fun () ->
      Sim.delay 42.0;
      seen := Sim.clock ());
  Sim.run sim;
  check_float "clock visible inside process" 42.0 !seen

let test_sim_blocking_outside_raises () =
  Alcotest.check_raises "delay outside" Sim.Not_in_simulation (fun () -> Sim.delay 1.0);
  Alcotest.check_raises "clock outside" Sim.Not_in_simulation (fun () ->
      ignore (Sim.clock ()))

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.spawn sim (fun () ->
      let rec tick () =
        Sim.delay 10.0;
        incr count;
        if !count = 5 then Sim.stop sim;
        tick ()
      in
      tick ());
  Sim.run sim;
  check_int "stopped after 5" 5 !count

let test_ivar () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create () in
  let got = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        let v = Sim.Ivar.read iv in
        got := (i, v, Sim.clock ()) :: !got)
  done;
  Sim.spawn sim (fun () ->
      Sim.delay 50.0;
      Sim.Ivar.fill iv 99);
  Sim.run sim;
  check_int "three readers" 3 (List.length !got);
  List.iter
    (fun (_, v, t) ->
      check_int "value" 99 v;
      check_float "woke at fill time" 50.0 t)
    !got

let test_ivar_double_fill () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create () in
  let raised = ref false in
  Sim.spawn sim (fun () ->
      Sim.Ivar.fill iv 1;
      (try Sim.Ivar.fill iv 2 with Invalid_argument _ -> raised := true));
  Sim.run sim;
  check_bool "second fill rejected" true !raised;
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Ivar.peek iv)

let test_channel_fifo () =
  let sim = Sim.create () in
  let ch = Sim.Channel.create () in
  let received = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        received := Sim.Channel.recv ch :: !received
      done);
  Sim.spawn sim (fun () ->
      Sim.delay 5.0;
      Sim.Channel.send ch 1;
      Sim.Channel.send ch 2;
      Sim.Channel.send ch 3);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !received)

let test_channel_waiter_order () =
  let sim = Sim.create () in
  let ch = Sim.Channel.create () in
  let order = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        let v = Sim.Channel.recv ch in
        order := (i, v) :: !order)
  done;
  Sim.spawn sim (fun () ->
      Sim.delay 1.0;
      List.iter (Sim.Channel.send ch) [ 10; 20; 30 ]);
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "oldest waiter first" [ (1, 10); (2, 20); (3, 30) ] (List.rev !order)

let test_resource_mutual_exclusion () =
  let sim = Sim.create () in
  let r = Sim.Resource.create ~capacity:1 in
  let finish = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.Resource.with_resource r (fun () ->
            Sim.delay 10.0;
            finish := (i, Sim.clock ()) :: !finish))
  done;
  Sim.run sim;
  let finished = List.rev !finish in
  Alcotest.(check (list (pair int (float 1e-9))))
    "serialized FIFO" [ (1, 10.0); (2, 20.0); (3, 30.0) ] finished

let test_resource_capacity_respected () =
  let sim = Sim.create () in
  let r = Sim.Resource.create ~capacity:3 in
  let peak = ref 0 in
  for _ = 1 to 10 do
    Sim.spawn sim (fun () ->
        Sim.Resource.acquire r;
        peak := max !peak (Sim.Resource.in_use r);
        Sim.delay 5.0;
        Sim.Resource.release r)
  done;
  Sim.run sim;
  check_int "never above capacity" 3 !peak;
  check_int "all released" 0 (Sim.Resource.in_use r)

let test_resource_no_barging () =
  let sim = Sim.create () in
  let r = Sim.Resource.create ~capacity:2 in
  let order = ref [] in
  (* p1 takes 2; p2 wants 2 (must wait); p3 wants 1 and arrives later —
     FIFO admission means p3 must not overtake p2. *)
  Sim.spawn sim (fun () ->
      Sim.Resource.acquire ~n:2 r;
      Sim.delay 10.0;
      Sim.Resource.release ~n:2 r);
  Sim.spawn sim (fun () ->
      Sim.delay 1.0;
      Sim.Resource.acquire ~n:2 r;
      order := "p2" :: !order;
      Sim.delay 10.0;
      Sim.Resource.release ~n:2 r);
  Sim.spawn sim (fun () ->
      Sim.delay 2.0;
      Sim.Resource.acquire ~n:1 r;
      order := "p3" :: !order;
      Sim.Resource.release ~n:1 r);
  Sim.run sim;
  Alcotest.(check (list string)) "fifo admission" [ "p2"; "p3" ] (List.rev !order)

let test_determinism_same_seed () =
  let trace seed =
    let sim = Sim.create () in
    let r = Rng.create ~seed in
    let log = Buffer.create 64 in
    for i = 1 to 20 do
      Sim.spawn sim (fun () ->
          Sim.delay (Rng.exponential r ~mean:100.0);
          Buffer.add_string log (Printf.sprintf "%d@%.3f;" i (Sim.now sim)))
    done;
    Sim.run sim;
    Buffer.contents log
  in
  Alcotest.(check string) "identical traces" (trace 11) (trace 11);
  check_bool "different seeds differ" true (trace 11 <> trace 12)

(* ------------------------------------------------------------------ *)
(* Token bucket *)

let test_token_bucket_steady_rate () =
  let sim = Sim.create () in
  let tb = Token_bucket.create ~rate:1000.0 ~burst:1.0 in
  let meter = Stats.Meter.create () in
  Sim.spawn sim (fun () ->
      for _ = 1 to 2000 do
        ignore (Token_bucket.take tb);
        Stats.Meter.mark meter ~now:(Sim.clock ())
      done);
  Sim.run sim;
  let r = Stats.Meter.rate meter in
  check_bool "limited to ~1000/s" true (Float.abs (r -. 1000.0) /. 1000.0 < 0.01)

let test_token_bucket_burst () =
  let sim = Sim.create () in
  let tb = Token_bucket.create ~rate:10.0 ~burst:100.0 in
  let waited = ref nan in
  Sim.spawn sim (fun () ->
      (* The first 100 tokens are free (full bucket). *)
      waited := Token_bucket.take_n tb 100.0;
      check_float "burst free" 0.0 !waited;
      (* The next token must wait 1/10 s. *)
      let w = Token_bucket.take tb in
      check_bool "then throttled" true (Float.abs (w -. 1e8) < 1e3));
  Sim.run sim

let test_token_bucket_unlimited () =
  let sim = Sim.create () in
  let tb = Token_bucket.unlimited () in
  Sim.spawn sim (fun () ->
      for _ = 1 to 100 do
        check_float "no wait" 0.0 (Token_bucket.take_n tb 1e9)
      done);
  Sim.run sim;
  check_float "time did not advance" 0.0 (Sim.now sim)

(* ------------------------------------------------------------------ *)
(* Two-lane scheduler *)

let test_schedule_negative_raises () =
  let sim = Sim.create () in
  (try
     Sim.schedule sim ~delay:(-1.0) ignore;
     Alcotest.fail "negative delay accepted"
   with Invalid_argument _ -> ());
  try
    Sim.schedule sim ~delay:Float.nan ignore;
    Alcotest.fail "NaN delay accepted"
  with Invalid_argument _ -> ()

let test_event_counters () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:0.0 (fun () -> Sim.schedule sim ~delay:1.0 ignore);
  Sim.schedule sim ~delay:2.0 ignore;
  check_int "pending before run" 2 (Sim.pending_events sim);
  check_int "executed before run" 0 (Sim.events_executed sim);
  Sim.run sim;
  check_int "pending after run" 0 (Sim.pending_events sim);
  check_int "executed after run" 3 (Sim.events_executed sim)

(* The decisive invariant of the hot lane: execution order is exactly
   the (absolute time, schedule-order) sort, no matter how zero-delay
   and timed events interleave — including events scheduled from inside
   other events. The wrapper's seq counter increments in the same order
   as the scheduler's internal one because every schedule goes through
   it, so the sorted record predicts the execution order of a pure
   single-heap scheduler. *)
let prop_two_lane_order =
  QCheck.Test.make ~name:"two-lane order = (time, seq) sort" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 0 60)
        (pair (int_bound 3) (list_of_size (Gen.int_range 0 8) (int_bound 2))))
    (fun tasks ->
      let sim = Sim.create () in
      let seq = ref 0 in
      let id = ref 0 in
      let scheduled = ref [] in
      let order = ref [] in
      let sched ~delay body =
        incr seq;
        incr id;
        let my_seq = !seq and my_id = !id in
        scheduled := (Sim.now sim +. delay, my_seq, my_id) :: !scheduled;
        Sim.schedule sim ~delay (fun () ->
            order := my_id :: !order;
            body ())
      in
      List.iter
        (fun (d, children) ->
          sched ~delay:(float_of_int d) (fun () ->
              List.iter (fun c -> sched ~delay:(float_of_int c) ignore) children))
        tasks;
      Sim.run sim;
      let expected =
        List.map (fun (_, _, i) -> i) (List.sort compare (List.rev !scheduled))
      in
      List.rev !order = expected)

(* Zero-delay events and heap events at the same instant still obey
   global schedule order across the two lanes. *)
let test_two_lane_tie_break () =
  let sim = Sim.create () in
  let order = ref [] in
  let mark i () = order := i :: !order in
  Sim.schedule sim ~delay:1.0 (fun () ->
      (* At time 1.0: interleave lane and heap events at the current
         instant; seq order must win regardless of the lane. *)
      Sim.schedule sim ~delay:0.0 (mark 1);
      Sim.schedule sim ~delay:0.0 (mark 2);
      Sim.schedule sim ~delay:0.0 (fun () ->
          mark 3 ();
          Sim.schedule sim ~delay:0.0 (mark 6));
      Sim.schedule sim ~delay:0.0 (mark 4);
      Sim.schedule sim ~delay:2.0 (mark 7);
      Sim.schedule sim ~delay:0.0 (mark 5));
  Sim.run sim;
  Alcotest.(check (list int)) "global (time, seq) order" [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.rev !order)

let test_sim_stats_lanes () =
  let sim = Sim.create () in
  let ran = ref 0 in
  for _ = 1 to 5 do
    Sim.schedule sim ~delay:0.0 (fun () -> incr ran)
  done;
  for i = 1 to 3 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () -> incr ran)
  done;
  Sim.run sim;
  let s = Sim.stats sim in
  check_int "executed" 8 s.Sim.executed;
  check_int "lane events" 5 s.Sim.lane;
  check_int "heap events" 3 s.Sim.heap;
  check_int "executed = lane + heap" s.Sim.executed (s.Sim.lane + s.Sim.heap);
  check_int "pending lane drained" 0 s.Sim.pending_lane;
  check_int "pending heap drained" 0 s.Sim.pending_heap;
  check_bool "lane ring capacity is a power of two" true
    (s.Sim.lane_capacity land (s.Sim.lane_capacity - 1) = 0)

let test_run_window_strict () =
  let sim = Sim.create () in
  let hits = ref [] in
  Sim.schedule sim ~delay:5.0 (fun () -> hits := 5 :: !hits);
  Sim.schedule sim ~delay:10.0 (fun () -> hits := 10 :: !hits);
  Sim.run_window sim ~until:10.0;
  Alcotest.(check (list int)) "strictly before the window end" [ 5 ] (List.rev !hits);
  Alcotest.(check (float 0.0)) "clock parked at the boundary" 10.0 (Sim.now sim);
  Alcotest.(check (float 0.0)) "boundary event still pending" 10.0 (Sim.next_event_time sim);
  Sim.run sim;
  Alcotest.(check (list int)) "boundary event runs on resume" [ 5; 10 ] (List.rev !hits)

let test_schedule_at_exact () =
  let sim = Sim.create () in
  (* A timestamp that a [now +. (time -. now)] round-trip would move by
     a ulp from a nonzero clock. *)
  let time = 0.1 +. 0.2 in
  let seen = ref nan in
  Sim.schedule sim ~delay:0.05 (fun () ->
      Sim.schedule_at sim ~time (fun () -> seen := Sim.now sim));
  Sim.run sim;
  check_bool "delivered at the exact bit pattern" true
    (Int64.equal (Int64.bits_of_float !seen) (Int64.bits_of_float time));
  check_bool "past timestamp raises" true
    (try
       Sim.schedule_at sim ~time:0.0 (fun () -> ());
       false
     with Invalid_argument _ -> true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "engine.time",
      [
        Alcotest.test_case "unit conversions" `Quick test_time_units;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
      ] );
    ( "engine.pqueue",
      [
        Alcotest.test_case "pops in order" `Quick test_pqueue_order;
        Alcotest.test_case "FIFO on ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "pop_if_le bound" `Quick test_pqueue_pop_if_le;
        Alcotest.test_case "clear keeps capacity" `Quick test_pqueue_clear_keeps_capacity;
        Alcotest.test_case "no space leak" `Quick test_pqueue_releases_popped_values;
      ] );
    qsuite "engine.pqueue.prop" [ prop_pqueue_sorted; prop_pqueue_model ];
    ( "engine.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "uniform ranges" `Quick test_rng_uniform_range;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
      ] );
    qsuite "engine.rng.prop" [ prop_pareto_above_scale ];
    ( "engine.stats",
      [
        Alcotest.test_case "summary basics" `Quick test_summary_basic;
        Alcotest.test_case "summary merge" `Quick test_summary_merge;
        Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
        Alcotest.test_case "histogram clamps outliers" `Quick test_histogram_clamps;
        Alcotest.test_case "meter rate" `Quick test_meter_rate;
      ] );
    qsuite "engine.stats.prop"
      [ prop_histogram_percentile_monotone; prop_histogram_percentile_within_bounds ];
    ( "engine.sim",
      [
        Alcotest.test_case "delay ordering" `Quick test_sim_delay_ordering;
        Alcotest.test_case "run until horizon" `Quick test_sim_until;
        Alcotest.test_case "nested fork" `Quick test_sim_nested_fork;
        Alcotest.test_case "clock inside process" `Quick test_sim_clock_inside;
        Alcotest.test_case "blocking outside raises" `Quick test_sim_blocking_outside_raises;
        Alcotest.test_case "stop" `Quick test_sim_stop;
        Alcotest.test_case "ivar broadcast" `Quick test_ivar;
        Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
        Alcotest.test_case "channel FIFO" `Quick test_channel_fifo;
        Alcotest.test_case "channel waiter order" `Quick test_channel_waiter_order;
        Alcotest.test_case "resource mutual exclusion" `Quick test_resource_mutual_exclusion;
        Alcotest.test_case "resource capacity" `Quick test_resource_capacity_respected;
        Alcotest.test_case "resource no barging" `Quick test_resource_no_barging;
        Alcotest.test_case "deterministic replay" `Quick test_determinism_same_seed;
        Alcotest.test_case "negative delay raises" `Quick test_schedule_negative_raises;
        Alcotest.test_case "event counters" `Quick test_event_counters;
        Alcotest.test_case "two-lane tie break" `Quick test_two_lane_tie_break;
        Alcotest.test_case "per-lane stats" `Quick test_sim_stats_lanes;
        Alcotest.test_case "run_window strict horizon" `Quick test_run_window_strict;
        Alcotest.test_case "schedule_at bit-exact" `Quick test_schedule_at_exact;
      ] );
    qsuite "engine.sim.prop" [ prop_two_lane_order ];
    ( "engine.token_bucket",
      [
        Alcotest.test_case "steady rate" `Quick test_token_bucket_steady_rate;
        Alcotest.test_case "burst then throttle" `Quick test_token_bucket_burst;
        Alcotest.test_case "unlimited" `Quick test_token_bucket_unlimited;
      ] );
  ]

(* Property: a token bucket never over-admits — for any schedule of
   take_n requests, total tokens granted by time T never exceeds
   burst + rate * T. *)
let prop_token_bucket_never_overadmits =
  QCheck.Test.make ~name:"token bucket conserves tokens" ~count:100
    QCheck.(pair (int_range 1 500) (list_of_size (Gen.int_range 1 100) (int_range 1 50)))
    (fun (rate_hz, takes) ->
      let sim = Sim.create () in
      let rate = float_of_int rate_hz in
      let burst = 10.0 in
      let tb = Token_bucket.create ~rate ~burst in
      let granted_by = ref [] in
      Sim.spawn sim (fun () ->
          List.iter
            (fun n ->
              ignore (Token_bucket.take_n tb (float_of_int n));
              granted_by := (Sim.clock (), n) :: !granted_by)
            takes);
      Sim.run sim;
      List.for_all
        (fun (t, _) ->
          let total_by_t =
            List.fold_left
              (fun acc (t', n) -> if t' <= t then acc + n else acc)
              0 !granted_by
          in
          float_of_int total_by_t <= burst +. (rate *. t /. 1e9) +. 1e-6)
        !granted_by)

let () = ignore prop_token_bucket_never_overadmits

let extra_prop_suites =
  [ ("engine.token_bucket.prop", List.map QCheck_alcotest.to_alcotest [ prop_token_bucket_never_overadmits ]) ]

let suites = suites @ extra_prop_suites

(* Trace *)
let test_trace_basics () =
  let tr = Trace.create () in
  Trace.instant tr ~track:"net" "kick" ~now:10.0;
  Trace.begin_span tr ~track:"net" "dma" ~now:20.0;
  Trace.end_span tr ~track:"net" "dma" ~now:70.0;
  Trace.counter tr ~track:"net" "inflight" ~now:80.0 3.0;
  check_int "four events" 4 (List.length (Trace.events tr));
  check_int "track count" 4 (Trace.count tr ~track:"net" ());
  check_int "named count" 1 (Trace.count tr ~track:"net" ~name:"kick" ());
  Alcotest.(check (list (float 1e-9))) "span duration" [ 50.0 ] (Trace.span_durations tr ~track:"net" "dma");
  check_bool "renders" true (String.length (Trace.render tr) > 0);
  Trace.clear tr;
  check_int "cleared" 0 (List.length (Trace.events tr))

let test_trace_ring_bounds () =
  let tr = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.instant tr ~track:"t" (string_of_int i) ~now:(float_of_int i)
  done;
  check_int "bounded" 8 (List.length (Trace.events tr));
  check_int "dropped counted" 12 (Trace.dropped tr);
  (* Oldest retained is event 13. *)
  (match Trace.events tr with
  | first :: _ -> Alcotest.(check string) "oldest" "13" first.Trace.name
  | [] -> Alcotest.fail "empty");
  ()

let test_trace_span_in_simulation () =
  let sim = Sim.create () in
  let tr = Trace.create () in
  Sim.spawn sim (fun () ->
      Trace.span tr ~track:"guest" "request" ~clock:Sim.clock (fun () -> Sim.delay 123.0));
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "span measured sim time" [ 123.0 ]
    (Trace.span_durations tr ~track:"guest" "request")

let trace_suites =
  [
    ( "engine.trace",
      [
        Alcotest.test_case "basics" `Quick test_trace_basics;
        Alcotest.test_case "ring bounds" `Quick test_trace_ring_bounds;
        Alcotest.test_case "span in simulation" `Quick test_trace_span_in_simulation;
      ] );
  ]

let suites = suites @ trace_suites

(* Remaining edge cases. *)
let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.add q ~time:1.0 ~seq:1 "x";
  Pqueue.add q ~time:2.0 ~seq:2 "y";
  check_int "two" 2 (Pqueue.length q);
  Pqueue.clear q;
  check_bool "empty after clear" true (Pqueue.is_empty q);
  check_bool "pop empty" true (Pqueue.pop q = None);
  check_bool "peek empty" true (Pqueue.peek q = None)

let test_channel_try_recv () =
  let sim = Sim.create () in
  let ch = Sim.Channel.create () in
  check_bool "empty" true (Sim.Channel.try_recv ch = None);
  Sim.spawn sim (fun () ->
      Sim.Channel.send ch 5;
      Sim.Channel.send ch 6;
      check_int "length" 2 (Sim.Channel.length ch);
      Alcotest.(check (option int)) "first" (Some 5) (Sim.Channel.try_recv ch);
      Alcotest.(check (option int)) "second" (Some 6) (Sim.Channel.try_recv ch);
      check_bool "drained" true (Sim.Channel.try_recv ch = None));
  Sim.run sim

exception Boom

let test_with_resource_exception_safe () =
  let sim = Sim.create () in
  let r = Sim.Resource.create ~capacity:1 in
  let second_ran = ref false in
  Sim.spawn sim (fun () ->
      (try Sim.Resource.with_resource r (fun () -> raise Boom) with Boom -> ());
      check_int "released after raise" 0 (Sim.Resource.in_use r));
  Sim.spawn sim (fun () ->
      Sim.delay 1.0;
      Sim.Resource.with_resource r (fun () -> second_ran := true));
  Sim.run sim;
  check_bool "resource reusable" true !second_ran

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  for i = 1 to 100 do
    Stats.Histogram.add a (float_of_int i)
  done;
  for i = 101 to 200 do
    Stats.Histogram.add b (float_of_int i)
  done;
  let m = Stats.Histogram.merge a b in
  check_int "merged count" 200 (Stats.Histogram.count m);
  check_float "merged min" 1.0 (Stats.Histogram.min m);
  check_float "merged max" 200.0 (Stats.Histogram.max m);
  let p50 = Stats.Histogram.percentile m 50.0 in
  check_bool "p50 near 100" true (Float.abs (p50 -. 100.0) /. 100.0 < 0.05)

let test_schedule_callback_outside_process () =
  let sim = Sim.create () in
  let ran_at = ref nan in
  Sim.schedule sim ~delay:42.0 (fun () -> ran_at := Sim.now sim);
  Sim.run sim;
  check_float "callback at 42" 42.0 !ran_at

let edge_suites =
  [
    ( "engine.edges",
      [
        Alcotest.test_case "pqueue clear" `Quick test_pqueue_clear;
        Alcotest.test_case "channel try_recv" `Quick test_channel_try_recv;
        Alcotest.test_case "with_resource exception-safe" `Quick test_with_resource_exception_safe;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "bare callback scheduling" `Quick test_schedule_callback_outside_process;
      ] );
  ]

let suites = suites @ edge_suites

(* ------------------------------------------------------------------ *)
(* Bounded queues, resources and the non-blocking token-bucket path
   (the overload-control primitives) *)

let test_bounded_fifo_order () =
  let sim = Sim.create () in
  let q = Sim.Bounded.create ~capacity:2 ~policy:Sim.Bounded.Block () in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for i = 1 to 6 do
        ignore (Sim.Bounded.send q i)
      done);
  Sim.spawn sim (fun () ->
      for _ = 1 to 6 do
        Sim.delay 10.0;
        got := Sim.Bounded.recv q :: !got
      done);
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO across parks" [ 1; 2; 3; 4; 5; 6 ] (List.rev !got);
  check_int "all delivered" 6 (Sim.Bounded.delivered q);
  check_int "no senders left" 0 (Sim.Bounded.waiting_senders q)

(* The capacity boundary is where wakeups get lost in buggy queues: a
   sender parks the instant the queue fills, and every recv must unpark
   exactly one. N senders through a capacity-1 queue all complete. *)
let test_bounded_no_lost_wakeups () =
  let sim = Sim.create () in
  let q = Sim.Bounded.create ~capacity:1 ~policy:Sim.Bounded.Block () in
  let n = 50 in
  let sent_ok = ref 0 in
  for i = 1 to n do
    Sim.spawn sim (fun () ->
        match Sim.Bounded.send q i with
        | `Sent -> incr sent_ok
        | `Dropped | `Rejected -> ())
  done;
  let got = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to n do
        Sim.delay 5.0;
        ignore (Sim.Bounded.recv q);
        incr got
      done);
  Sim.run sim;
  check_int "every send completed" n !sent_ok;
  check_int "every item received" n !got;
  check_int "no parked senders" 0 (Sim.Bounded.waiting_senders q);
  check_int "queue drained" 0 (Sim.Bounded.length q)

let test_bounded_drop_tail () =
  let sim = Sim.create () in
  let q = Sim.Bounded.create ~capacity:2 ~policy:Sim.Bounded.Drop_tail () in
  Sim.spawn sim (fun () ->
      Alcotest.(check string) "first" "sent" (match Sim.Bounded.send q 1 with `Sent -> "sent" | _ -> "other");
      ignore (Sim.Bounded.send q 2);
      Alcotest.(check string) "overflow" "dropped"
        (match Sim.Bounded.send q 3 with `Dropped -> "dropped" | _ -> "other");
      Alcotest.(check (option int)) "oldest survives" (Some 1) (Sim.Bounded.try_recv q));
  Sim.run sim;
  check_int "one drop" 1 (Sim.Bounded.dropped q)

let test_bounded_drop_head () =
  let sim = Sim.create () in
  let q = Sim.Bounded.create ~capacity:2 ~policy:Sim.Bounded.Drop_head () in
  Sim.spawn sim (fun () ->
      ignore (Sim.Bounded.send q 1);
      ignore (Sim.Bounded.send q 2);
      Alcotest.(check string) "newest admitted" "sent"
        (match Sim.Bounded.send q 3 with `Sent -> "sent" | _ -> "other");
      Alcotest.(check (option int)) "head evicted" (Some 2) (Sim.Bounded.try_recv q);
      Alcotest.(check (option int)) "newest present" (Some 3) (Sim.Bounded.try_recv q));
  Sim.run sim;
  check_int "victim counted" 1 (Sim.Bounded.dropped q)

let test_bounded_reject () =
  let sim = Sim.create () in
  let q = Sim.Bounded.create ~capacity:1 ~policy:Sim.Bounded.Reject () in
  Sim.spawn sim (fun () ->
      ignore (Sim.Bounded.send q 1);
      Alcotest.(check string) "refused" "rejected"
        (match Sim.Bounded.send q 2 with `Rejected -> "rejected" | _ -> "other");
      Alcotest.(check (option int)) "queue untouched" (Some 1) (Sim.Bounded.try_recv q));
  Sim.run sim;
  check_int "one rejection" 1 (Sim.Bounded.rejected q)

(* Conservation: whatever interleaving of sends and receives runs, no
   item is created or lost —
   sent = delivered + dropped + rejected + length + waiting_senders. *)
let prop_bounded_conservation =
  let policy_of = function
    | 0 -> Sim.Bounded.Block
    | 1 -> Sim.Bounded.Drop_tail
    | 2 -> Sim.Bounded.Drop_head
    | _ -> Sim.Bounded.Reject
  in
  QCheck.Test.make ~name:"bounded queue conserves items under every policy" ~count:300
    QCheck.(triple (int_bound 3) (int_range 1 4) (list bool))
    (fun (p, capacity, ops) ->
      let policy = policy_of p in
      let sim = Sim.create () in
      let q = Sim.Bounded.create ~capacity ~policy () in
      List.iteri
        (fun i op ->
          Sim.schedule sim ~delay:(float_of_int i) (fun () ->
              Sim.spawn sim (fun () ->
                  if op then ignore (Sim.Bounded.send q i)
                  else ignore (Sim.Bounded.recv q))))
        ops;
      Sim.run sim;
      Sim.Bounded.length q <= Sim.Bounded.capacity q
      && Sim.Bounded.sent q
         = Sim.Bounded.delivered q + Sim.Bounded.dropped q + Sim.Bounded.rejected q
           + Sim.Bounded.length q + Sim.Bounded.waiting_senders q)

let test_resource_fifo_no_barging () =
  let sim = Sim.create () in
  let r = Sim.Resource.create ~capacity:1 in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () ->
        Sim.spawn sim (fun () ->
            Sim.Resource.with_resource r (fun () ->
                order := i :: !order;
                Sim.delay 100.0)))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "granted in arrival order" [ 1; 2; 3; 4; 5 ] (List.rev !order);
  check_int "all released" 0 (Sim.Resource.in_use r);
  check_int "none waiting" 0 (Sim.Resource.waiting r)

let test_resource_waiting_count () =
  let sim = Sim.create () in
  let r = Sim.Resource.create ~capacity:2 in
  for _ = 1 to 6 do
    Sim.spawn sim (fun () -> Sim.Resource.with_resource r (fun () -> Sim.delay 50.0))
  done;
  (* Sample between the t=0 acquisitions and the t=50 releases: two
     holders, four queued. *)
  let mid_waiting = ref (-1) and mid_in_use = ref (-1) in
  Sim.schedule sim ~delay:10.0 (fun () ->
      mid_waiting := Sim.Resource.waiting r;
      mid_in_use := Sim.Resource.in_use r);
  Sim.run sim;
  check_int "four queued mid-run" 4 !mid_waiting;
  check_int "two holders mid-run" 2 !mid_in_use;
  check_int "drained" 0 (Sim.Resource.waiting r)

(* try_take_n must never advance time and never leave the bucket
   negative, whatever mix of blocking and non-blocking takes ran
   before it. *)
let prop_try_take_n_never_blocks =
  QCheck.Test.make ~name:"try_take_n never blocks and never goes negative" ~count:300
    QCheck.(pair (float_range 1.0 1000.0) (list (pair bool (float_range 0.0 50.0))))
    (fun (rate, takes) ->
      let sim = Sim.create () in
      let tb = Token_bucket.create ~rate ~burst:(rate /. 10.0) in
      let ok = ref true in
      Sim.spawn sim (fun () ->
          List.iter
            (fun (blocking, n) ->
              if blocking then ignore (Token_bucket.take_n tb n)
              else begin
                let before = Sim.clock () in
                ignore (Token_bucket.try_take_n tb ~now:before n);
                ok := !ok && Sim.clock () = before;
                ok := !ok && Token_bucket.available tb ~now:(Sim.clock ()) >= 0.0
              end)
            takes);
      Sim.run sim;
      !ok)

(* Debt edge: after a blocking take dug the bucket into debt, the
   non-blocking path must refuse everything until the refill catches up,
   then grant again. *)
let test_try_take_n_debt_refill () =
  let sim = Sim.create () in
  let tb = Token_bucket.create ~rate:1000.0 ~burst:10.0 in
  Sim.spawn sim (fun () ->
      (* Burn the burst plus 10 of debt; take_n sleeps the deficit off. *)
      ignore (Token_bucket.take_n tb 20.0);
      check_bool "broke even, not positive" false
        (Token_bucket.try_take_n tb ~now:(Sim.clock ()) 1.0);
      (* One token refills every 1 ms at rate 1000/s. *)
      Sim.delay (Simtime.ms 5.0);
      check_bool "refilled tokens grant again" true
        (Token_bucket.try_take_n tb ~now:(Sim.clock ()) 5.0);
      check_bool "but not more than refilled" false
        (Token_bucket.try_take_n tb ~now:(Sim.clock ()) 1.0));
  Sim.run sim

let test_try_take_n_same_timestamp () =
  let sim = Sim.create () in
  let tb = Token_bucket.create ~rate:1000.0 ~burst:8.0 in
  Sim.spawn sim (fun () ->
      let now = Sim.clock () in
      (* Repeated probes at one timestamp see a monotonically shrinking
         bucket — no refill can sneak in between them. *)
      check_bool "first 4" true (Token_bucket.try_take_n tb ~now 4.0);
      check_bool "second 4" true (Token_bucket.try_take_n tb ~now 4.0);
      check_bool "empty now" false (Token_bucket.try_take_n tb ~now 1.0);
      check_float "available is zero" 0.0 (Token_bucket.available tb ~now));
  Sim.run sim

let test_try_take_n_unlimited () =
  let sim = Sim.create () in
  let tb = Token_bucket.unlimited () in
  Sim.spawn sim (fun () ->
      for _ = 1 to 10 do
        check_bool "always grants" true (Token_bucket.try_take_n tb ~now:(Sim.clock ()) 1e12)
      done);
  Sim.run sim;
  check_float "no time passed" 0.0 (Sim.now sim)

let overload_suites =
  [
    ( "engine.bounded",
      [
        Alcotest.test_case "FIFO across parked senders" `Quick test_bounded_fifo_order;
        Alcotest.test_case "no lost wakeups at capacity" `Quick test_bounded_no_lost_wakeups;
        Alcotest.test_case "drop-tail" `Quick test_bounded_drop_tail;
        Alcotest.test_case "drop-head" `Quick test_bounded_drop_head;
        Alcotest.test_case "reject" `Quick test_bounded_reject;
      ] );
    qsuite "engine.bounded.prop" [ prop_bounded_conservation ];
    ( "engine.resource",
      [
        Alcotest.test_case "FIFO, no barging" `Quick test_resource_fifo_no_barging;
        Alcotest.test_case "waiting count" `Quick test_resource_waiting_count;
      ] );
    ( "engine.token_bucket.shed",
      [
        Alcotest.test_case "debt then refill" `Quick test_try_take_n_debt_refill;
        Alcotest.test_case "same-timestamp probes" `Quick test_try_take_n_same_timestamp;
        Alcotest.test_case "unlimited" `Quick test_try_take_n_unlimited;
      ] );
    qsuite "engine.token_bucket.shed.prop" [ prop_try_take_n_never_blocks ];
  ]

let suites = suites @ overload_suites
