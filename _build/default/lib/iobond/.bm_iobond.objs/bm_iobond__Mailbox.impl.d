lib/iobond/mailbox.ml: Array Bm_engine Bm_hw Metrics Obs Pcie Sim Trace
