open Bm_engine

type timing = {
  post_ns : float;
  probe_ns : float;
  probe_accesses : int;
  load_ns : float;
  bytes_loaded : int;
  total_ns : float;
}

let read_chunk_bytes = 64 * 1024

(* Modern server firmware spends a few hundred ms in POST before
   reaching the boot device (fast-boot path). *)
let post_time_ns = 400e6

let load_image instance ~bytes ~queue_depth =
  let chunks = (bytes + read_chunk_bytes - 1) / read_chunk_bytes in
  let outstanding = Sim.Resource.create ~capacity:queue_depth in
  let done_ = Sim.Ivar.create () in
  let remaining = ref chunks in
  for _ = 1 to chunks do
    Sim.Resource.acquire outstanding;
    Sim.fork (fun () ->
        ignore (instance.Instance.blk ~op:`Read ~bytes_:read_chunk_bytes);
        Sim.Resource.release outstanding;
        decr remaining;
        if !remaining = 0 then Sim.Ivar.fill done_ ())
  done;
  Sim.Ivar.read done_

let run instance ~image ?(queue_depth = 8) () =
  let t0 = Sim.clock () in
  Sim.delay post_time_ns;
  let t1 = Sim.clock () in
  match instance.Instance.probe () with
  | Error e -> Error ("virtio probe failed: " ^ e)
  | Ok accesses ->
    let t2 = Sim.clock () in
    let bytes = Bm_cloud.Image.total_boot_bytes image in
    load_image instance ~bytes ~queue_depth;
    let t3 = Sim.clock () in
    Ok
      {
        post_ns = t1 -. t0;
        probe_ns = t2 -. t1;
        probe_accesses = accesses;
        load_ns = t3 -. t2;
        bytes_loaded = bytes;
        total_ns = t3 -. t0;
      }
