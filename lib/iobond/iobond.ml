open Bm_engine
open Bm_hw
open Bm_virtio

(* An attached device as the reset path sees it: replay the virtio
   status dance, then resynchronise its bridged queues. *)
type port = { reprobe : unit -> (unit, string) result; resyncs : (unit -> unit) list }

type t = {
  sim : Sim.t;
  profile : Profile.t;
  base_link : Pcie.t;
  net_link : Pcie.t;
  blk_link : Pcie.t;
  dma : Dma.t;
  mailbox : Mailbox.t;
  obs : Obs.t;
  fault : Fault.t;
  mutable ports : port list; (* reversed attach order *)
  mutable resets : int;
}

type net_port = {
  net_device : Virtio_net.t;
  net_tx : Packet.t Queue_bridge.t;
  net_rx : Packet.t Queue_bridge.t;
}

type blk_port = { blk_device : Virtio_blk.t; blk_queue : Virtio_blk.req Queue_bridge.t }

(* A firmware wedge ends in a device reset: once the wedge window
   clears (firmware reloaded), every attached virtio device replays the
   standard initialisation dance and its bridges resync from the shadow
   rings, which live in base-server memory and survived the wedge. *)
let handle_wedge t _ev =
  Sim.spawn t.sim (fun () ->
      Fault.block_until_clear t.fault Fault.Firmware_wedge;
      List.iter
        (fun p ->
          (match p.reprobe () with
          | Ok () -> ()
          | Error _ -> Metrics.incr_opt (Obs.metrics t.obs) "iobond.reset_probe_failures");
          List.iter (fun resync -> resync ()) p.resyncs)
        (List.rev t.ports);
      t.resets <- t.resets + 1;
      Metrics.incr_opt (Obs.metrics t.obs) "iobond.resets";
      Trace.instant_opt (Obs.trace t.obs) ~track:"iobond" "reset" ~now:(Sim.now t.sim))

let create ?(obs = Obs.none) ?(fault = Fault.none) sim ~profile ?dma_gbit_s () =
  let register_ns = Profile.register_ns profile in
  let base_link = Pcie.x8 ~obs ~fault sim ~register_ns in
  let gbit_s = Option.value dma_gbit_s ~default:(Profile.dma_gbit_s profile) in
  let t =
    {
      sim;
      profile;
      base_link;
      net_link = Pcie.x4 ~obs ~fault sim ~register_ns;
      blk_link = Pcie.x4 ~obs ~fault sim ~register_ns;
      dma = Dma.create ~obs ~fault sim ~gbit_s ~setup_ns:(Profile.dma_setup_ns profile) ();
      mailbox = Mailbox.create ~obs ~fault sim ~base_link;
      obs;
      fault;
      ports = [];
      resets = 0;
    }
  in
  Fault.subscribe fault Fault.Firmware_wedge (handle_wedge t);
  t

let profile t = t.profile
let mailbox t = t.mailbox
let base_link t = t.base_link
let net_link t = t.net_link
let blk_link t = t.blk_link
let dma t = t.dma

let pci_access_ns t = Profile.pci_emulation_ns t.profile

(* Emulated config access: the guest blocks for both register hops, and
   the access is signalled through the mailbox pair. *)
let on_pci_access t () =
  Mailbox.notify_pci_access t.mailbox;
  Metrics.incr_opt (Obs.metrics t.obs) "iobond.pci_emulations";
  Trace.span_opt (Obs.trace t.obs) ~track:"iobond.cfg" "pci_emulation"
    ~clock:(fun () -> Sim.now t.sim)
    (fun () -> Sim.delay (pci_access_ns t))

let attach_net t ?queue_size () =
  let device = Virtio_net.create ~obs:t.obs ?queue_size ~on_access:(on_pci_access t) () in
  let bridge name guest =
    Queue_bridge.create ~obs:t.obs ~fault:t.fault t.sim ~name ~guest ~dma:t.dma
      ~guest_link:t.net_link ~base_link:t.base_link ~mailbox:t.mailbox
  in
  let net_tx = bridge "net-tx" (Virtio_net.tx_ring device) in
  let net_rx = bridge "net-rx" (Virtio_net.rx_ring device) in
  Virtio_net.set_notify device
    ~tx:(fun () -> Queue_bridge.guest_notify net_tx)
    ~rx:(fun () -> Queue_bridge.guest_notify net_rx);
  Queue_bridge.set_guest_interrupt net_tx (fun () -> Virtio_net.fire_interrupt device);
  Queue_bridge.set_guest_interrupt net_rx (fun () -> Virtio_net.fire_interrupt device);
  t.ports <-
    {
      reprobe = (fun () -> Virtio_net.probe device);
      resyncs = [ (fun () -> Queue_bridge.resync net_tx); (fun () -> Queue_bridge.resync net_rx) ];
    }
    :: t.ports;
  { net_device = device; net_tx; net_rx }

let attach_blk t ?queue_size () =
  let device = Virtio_blk.create ~obs:t.obs ?queue_size ~on_access:(on_pci_access t) () in
  let blk_queue =
    Queue_bridge.create ~obs:t.obs ~fault:t.fault t.sim ~name:"blk"
      ~guest:(Virtio_blk.ring device) ~dma:t.dma ~guest_link:t.blk_link ~base_link:t.base_link
      ~mailbox:t.mailbox
  in
  Virtio_blk.set_notify device (fun () -> Queue_bridge.guest_notify blk_queue);
  Queue_bridge.set_guest_interrupt blk_queue (fun () -> Virtio_blk.fire_interrupt device);
  t.ports <-
    {
      reprobe = (fun () -> Virtio_blk.probe device);
      resyncs = [ (fun () -> Queue_bridge.resync blk_queue) ];
    }
    :: t.ports;
  { blk_device = device; blk_queue }

let attach_vga t =
  Virtio_pci.create ~kind:Virtio_pci.Vga ~num_queues:1 ~queue_size:2
    ~on_access:(on_pci_access t)

let max_guest_gbit_s t = Dma.gbit_s t.dma
let resets t = t.resets
