(** Minimum priority queue on [(time, sequence)] keys.

    A classic array-backed binary heap. Ties on [time] are broken by an
    insertion sequence number supplied by the caller, which makes event
    ordering — and therefore whole simulations — deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** [add q ~time ~seq v] inserts [v] with priority [(time, seq)]. *)

val peek : 'a t -> (float * int * 'a) option
(** [peek q] is the minimum element without removing it. *)

val pop : 'a t -> (float * int * 'a) option
(** [pop q] removes and returns the minimum element. *)

val clear : 'a t -> unit
