(* Tests for IO-Bond: shadow vrings, mailbox, DMA bridging. *)

open Bm_engine
open Bm_virtio
open Bm_iobond

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pkt ?(size = 64) ?(sent_at = 0.0) id =
  Packet.make ~id ~src:0 ~dst:1 ~size ~protocol:Packet.Udp ~sent_at ()

let test_profile_costs () =
  Alcotest.(check (float 1e-9)) "fpga access 1.6us" 1600.0 (Profile.pci_emulation_ns Profile.Fpga);
  Alcotest.(check (float 1e-9)) "asic access 0.4us" 400.0 (Profile.pci_emulation_ns Profile.Asic);
  Alcotest.(check (float 1e-9)) "asic hop is 75% less" 0.25
    (Profile.register_ns Profile.Asic /. Profile.register_ns Profile.Fpga)

(* Full tx path: guest xmit -> doorbell -> forward DMA -> hv pop ->
   complete -> flush -> backward DMA -> guest interrupt -> reap. *)
let test_tx_roundtrip () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let port = Iobond.attach_net iobond () in
  let dev = port.Iobond.net_device in
  let irq_at = ref nan in
  Virtio_net.set_interrupt dev (fun () -> irq_at := Sim.now sim);
  let hv_got = ref None in
  (* Guest process: send one packet. *)
  Sim.spawn sim (fun () -> ignore (Virtio_net.xmit dev (pkt 1)));
  (* Hypervisor PMD process: poll the tx bridge. *)
  Sim.spawn sim (fun () ->
      let rec poll () =
        match Queue_bridge.pop port.Iobond.net_tx with
        | Some req ->
          hv_got := Some req;
          Queue_bridge.complete port.Iobond.net_tx req ~written:0 ();
          Queue_bridge.flush port.Iobond.net_tx
        | None ->
          Sim.delay 100.0;
          poll ()
      in
      poll ());
  Sim.run ~until:1_000_000.0 sim;
  (match !hv_got with
  | Some req ->
    check_int "hv sees hdr+payload bytes" (12 + 64) req.Queue_bridge.out_bytes;
    check_int "packet id" 1 req.Queue_bridge.payload.Packet.id
  | None -> Alcotest.fail "request never reached the hypervisor side");
  check_bool "tx completion interrupt fired" true (Float.is_finite !irq_at);
  (* Doorbell hop (800ns) + DMA must push the event past 1us. *)
  check_bool "path has hardware latency" true (!irq_at > 1_000.0);
  check_int "guest reaps its descriptor" 1 (Virtio_net.reap_tx dev);
  check_bool "bridge invariants" true (Queue_bridge.check_invariants port.Iobond.net_tx = Ok ())

(* Rx path: hv injects a packet into a posted guest buffer. *)
let test_rx_payload_replacement () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let port = Iobond.attach_net iobond () in
  let dev = port.Iobond.net_device in
  let received = ref [] in
  Sim.spawn sim (fun () ->
      ignore (Virtio_net.refill_rx dev ~target:8);
      Queue_bridge.guest_notify port.Iobond.net_rx);
  Sim.spawn sim (fun () ->
      (* Wait for mirrored rx buffers, then deliver one packet. *)
      let rec wait () =
        match Queue_bridge.pop port.Iobond.net_rx with
        | Some req ->
          let p = pkt ~size:1400 99 in
          Queue_bridge.complete port.Iobond.net_rx req ~payload:p ~written:1400 ();
          Queue_bridge.flush port.Iobond.net_rx
        | None ->
          Sim.delay 100.0;
          wait ()
      in
      wait ());
  Virtio_net.set_interrupt dev (fun () -> received := Virtio_net.reap_rx dev);
  Sim.run ~until:1_000_000.0 sim;
  match !received with
  | [ p ] -> check_int "delivered packet" 99 p.Packet.id
  | l -> Alcotest.failf "expected 1 packet, got %d" (List.length l)

let test_batch_single_interrupt () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let port = Iobond.attach_net iobond () in
  let dev = port.Iobond.net_device in
  let irqs = ref 0 in
  Virtio_net.set_interrupt dev (fun () -> incr irqs);
  Sim.spawn sim (fun () ->
      for i = 1 to 16 do
        ignore (Virtio_net.xmit dev (pkt i))
      done);
  Sim.spawn sim (fun () ->
      Sim.delay 50_000.0;
      (* PMD drains the whole batch, then flushes once. *)
      let rec drain n =
        match Queue_bridge.pop port.Iobond.net_tx with
        | Some req ->
          Queue_bridge.complete port.Iobond.net_tx req ~written:0 ();
          drain (n + 1)
        | None -> n
      in
      let n = drain 0 in
      check_int "all 16 mirrored" 16 n;
      Queue_bridge.flush port.Iobond.net_tx);
  Sim.run ~until:1_000_000.0 sim;
  check_int "interrupt coalescing: one MSI for the batch" 1 !irqs;
  check_int "bridge completed 16" 16 (Queue_bridge.completed port.Iobond.net_tx)

let test_fifo_preserved_across_bridge () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let port = Iobond.attach_net iobond () in
  let dev = port.Iobond.net_device in
  let order = ref [] in
  Sim.spawn sim (fun () ->
      for i = 1 to 10 do
        ignore (Virtio_net.xmit dev (pkt i));
        Sim.delay 10.0
      done);
  Sim.spawn sim (fun () ->
      let rec poll seen =
        if seen < 10 then
          match Queue_bridge.pop port.Iobond.net_tx with
          | Some req ->
            order := req.Queue_bridge.payload.Packet.id :: !order;
            Queue_bridge.complete port.Iobond.net_tx req ~written:0 ();
            Queue_bridge.flush port.Iobond.net_tx;
            poll (seen + 1)
          | None ->
            Sim.delay 50.0;
            poll seen
      in
      poll 0);
  Sim.run ~until:10_000_000.0 sim;
  Alcotest.(check (list int)) "order preserved" (List.init 10 (fun i -> i + 1)) (List.rev !order)

let test_blk_bridge_roundtrip () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let port = Iobond.attach_blk iobond () in
  let dev = port.Iobond.blk_device in
  let latency = ref nan in
  Sim.spawn sim (fun () ->
      let req = Virtio_blk.make_req ~op:Virtio_blk.Read ~sector:0 ~bytes:4096 ~now:(Sim.clock ()) in
      check_bool "submitted" true (Virtio_blk.submit dev req);
      let done_at = Sim.Ivar.read req.Virtio_blk.done_ in
      latency := done_at -. req.Virtio_blk.submitted_at);
  Virtio_blk.set_interrupt dev (fun () -> ignore (Virtio_blk.reap dev));
  Sim.spawn sim (fun () ->
      let rec poll () =
        match Queue_bridge.pop port.Iobond.blk_queue with
        | Some req ->
          (* Storage takes 100us, then 4KB of read data flows back. *)
          Sim.delay 100_000.0;
          Queue_bridge.complete port.Iobond.blk_queue req ~written:4097 ();
          Queue_bridge.flush port.Iobond.blk_queue
        | None ->
          Sim.delay 500.0;
          poll ()
      in
      poll ());
  Sim.run ~until:10_000_000.0 sim;
  check_bool "latency > storage time" true (!latency > 100_000.0);
  check_bool "latency < storage + 20us overhead" true (!latency < 120_000.0)

let test_pci_probe_cost_fpga_vs_asic () =
  let probe_time profile =
    let sim = Sim.create () in
    let iobond = Iobond.create sim ~profile () in
    let port = Iobond.attach_net iobond () in
    let elapsed = ref nan in
    Sim.spawn sim (fun () ->
        let t0 = Sim.clock () in
        (match Virtio_net.probe port.Iobond.net_device with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        elapsed := Sim.clock () -. t0);
    Sim.run sim;
    (!elapsed, Virtio_pci.access_count (Virtio_net.pci port.Iobond.net_device))
  in
  let fpga_time, fpga_accesses = probe_time Profile.Fpga in
  let asic_time, asic_accesses = probe_time Profile.Asic in
  check_int "same access count" fpga_accesses asic_accesses;
  Alcotest.(check (float 1e-6)) "probe cost = accesses x 1.6us"
    (float_of_int fpga_accesses *. 1600.0) fpga_time;
  Alcotest.(check (float 1e-6)) "asic is 4x faster" 4.0 (fpga_time /. asic_time);
  (* Mailbox saw every forwarded access. *)
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let port = Iobond.attach_net iobond () in
  Sim.spawn sim (fun () -> ignore (Virtio_net.probe port.Iobond.net_device));
  Sim.run sim;
  check_int "mailbox notified per access"
    (Virtio_pci.access_count (Virtio_net.pci port.Iobond.net_device))
    (Mailbox.pci_access_count (Iobond.mailbox iobond))

let test_vga_attach () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let vga = Iobond.attach_vga iobond in
  Sim.spawn sim (fun () ->
      check_int "vga device id" 0x1050 (Virtio_pci.read vga Virtio_pci.Device_id));
  Sim.run sim;
  check_int "access costed" 1 (Virtio_pci.access_count vga)

let test_mailbox_tail_write_costs_hop () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let mailbox = Iobond.mailbox iobond in
  let ring = Mailbox.alloc_ring mailbox in
  let elapsed = ref nan in
  Sim.spawn sim (fun () ->
      let t0 = Sim.clock () in
      Mailbox.write_tail mailbox ring 42;
      elapsed := Sim.clock () -. t0);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "one register hop" 800.0 !elapsed;
  check_int "value latched" 42 (Mailbox.tail mailbox ring)

let test_dma_meters_links () =
  let sim = Sim.create () in
  let iobond = Iobond.create sim ~profile:Profile.Fpga () in
  let port = Iobond.attach_net iobond () in
  Sim.spawn sim (fun () -> ignore (Virtio_net.xmit port.Iobond.net_device (pkt ~size:1400 1)));
  Sim.spawn sim (fun () ->
      let rec poll () =
        match Queue_bridge.pop port.Iobond.net_tx with
        | Some req ->
          Queue_bridge.complete port.Iobond.net_tx req ~written:0 ();
          Queue_bridge.flush port.Iobond.net_tx
        | None ->
          Sim.delay 100.0;
          poll ()
      in
      poll ());
  Sim.run ~until:1_000_000.0 sim;
  (* Forward copy: 2 descs (32B) + 1412B payload; backward: 8B used. *)
  check_bool "x4 metered" true (Bm_hw.Pcie.bytes_moved (Iobond.net_link iobond) >= 1444.0);
  check_bool "x8 metered" true (Bm_hw.Pcie.bytes_moved (Iobond.base_link iobond) >= 1444.0)

let suites =
  [
    ( "iobond",
      [
        Alcotest.test_case "profile costs" `Quick test_profile_costs;
        Alcotest.test_case "tx roundtrip" `Quick test_tx_roundtrip;
        Alcotest.test_case "rx payload replacement" `Quick test_rx_payload_replacement;
        Alcotest.test_case "batch -> one interrupt" `Quick test_batch_single_interrupt;
        Alcotest.test_case "FIFO across bridge" `Quick test_fifo_preserved_across_bridge;
        Alcotest.test_case "blk bridge roundtrip" `Quick test_blk_bridge_roundtrip;
        Alcotest.test_case "probe cost FPGA vs ASIC" `Quick test_pci_probe_cost_fpga_vs_asic;
        Alcotest.test_case "vga console device" `Quick test_vga_attach;
        Alcotest.test_case "mailbox tail write" `Quick test_mailbox_tail_write_costs_hop;
        Alcotest.test_case "DMA meters PCIe links" `Quick test_dma_meters_links;
      ] );
  ]

(* Property: random interleavings of guest sends, backend pops/completes
   and flushes preserve the bridge + both ring invariants and conserve
   packets (everything sent is eventually completed exactly once). *)
let prop_bridge_random_ops =
  QCheck.Test.make ~name:"queue bridge invariants under random schedules" ~count:60
    QCheck.(pair (int_range 1 1000) (list_of_size (Gen.int_range 20 120) (int_range 0 99)))
    (fun (seed, ops) ->
      let sim = Sim.create () in
      let iobond = Iobond.create sim ~profile:Profile.Fpga () in
      let port = Iobond.attach_net iobond () in
      let dev = port.Iobond.net_device in
      let bridge = port.Iobond.net_tx in
      Virtio_net.set_interrupt dev (fun () -> ignore (Virtio_net.reap_tx dev));
      let rng = Bm_engine.Rng.create ~seed in
      let sent = ref 0 in
      Sim.spawn sim (fun () ->
          List.iter
            (fun op ->
              if op < 50 then begin
                if Virtio_net.xmit dev (pkt op) then incr sent
              end
              else if op < 85 then begin
                match Queue_bridge.pop bridge with
                | Some req ->
                  Queue_bridge.complete bridge req ~written:0 ();
                  Queue_bridge.flush bridge
                | None -> ()
              end
              else Sim.delay (Bm_engine.Rng.float rng 2_000.0))
            ops;
          (* Drain whatever is left. *)
          let rec drain () =
            Sim.delay 10_000.0;
            match Queue_bridge.pop bridge with
            | Some req ->
              Queue_bridge.complete bridge req ~written:0 ();
              Queue_bridge.flush bridge;
              drain ()
            | None -> if Queue_bridge.pending bridge > 0 then drain ()
          in
          drain ());
      Sim.run ~until:Simtime.(sec 1.0) sim;
      match Queue_bridge.check_invariants bridge with
      | Error e -> QCheck.Test.fail_report e
      | Ok () -> Queue_bridge.completed bridge = !sent)

let prop_suites =
  [ ("iobond.prop", List.map QCheck_alcotest.to_alcotest [ prop_bridge_random_ops ]) ]

let suites = suites @ prop_suites
