let accesses_per_ns = 0.5

let dilation_factor tlb ~virtualized ~working_set ~locality =
  let per_access =
    Bm_hw.Tlb.avg_overhead_ns tlb ~virtualized ~working_set_bytes:working_set ~locality
  in
  1.0 +. (per_access *. accesses_per_ns)

let vm_overhead tlb ~working_set ~locality =
  dilation_factor tlb ~virtualized:true ~working_set ~locality
  /. dilation_factor tlb ~virtualized:false ~working_set ~locality
  -. 1.0
