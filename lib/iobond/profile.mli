(** IO-Bond silicon profiles.

    The deployed IO-Bond is a low-cost FPGA: one PCI read/write from the
    bm-guest to the front-end takes 0.8 µs, and another 0.8 µs from
    IO-Bond to its mailbox registers, so an emulated PCI access costs a
    constant 1.6 µs (§3.4.3). The paper projects a 75%% reduction —
    0.8 µs → 0.2 µs per hop — for an ASIC implementation (§6). *)

type t = Fpga | Asic

val register_ns : t -> float
(** Latency of one PCI register hop. *)

val pci_emulation_ns : t -> float
(** Cost of one emulated PCI config access as seen by the guest: two
    hops (guest→IO-Bond, IO-Bond→mailbox). *)

val dma_gbit_s : t -> float
(** Internal DMA engine throughput (50 Gbit/s for both profiles —
    the paper's ASIC projection targets register latency, not DMA). *)

val dma_setup_ns : t -> float
(** Per-copy descriptor-fetch/doorbell overhead inside the engine. *)

val name : t -> string
val pp : Format.formatter -> t -> unit

(** {2 Bounded per-VF/per-queue metric labels}

    {!Vf} devices emit per-function and per-queue counters; these
    helpers keep the metric cardinality bounded regardless of how many
    functions a device exposes — indexes past the caps share one
    overflow bucket. *)

val max_labeled_vfs : int
(** Distinct VF labels before collapsing (8). *)

val max_labeled_queues : int
(** Distinct queue labels before collapsing (4). *)

val vf_label : int -> string
(** ["vf0"].."vf7"], else ["vf_other"]. *)

val queue_label : int -> string
(** ["q0"].."q3"], else ["q_other"]. *)
