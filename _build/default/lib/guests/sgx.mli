(** SGX enclaves on the bare-metal service (§6).

    "The current design of SGX does not work well in virtual machines …
    the KVM hypervisor and QEMU require special builds with the SGX SDK
    and the guest kernel requires additional drivers. We plan to add
    native support to SGX in BM-Hive so that users can directly migrate
    their SGX code to the bare-metal service without additional efforts."

    This module implements that plan: enclaves are created natively on a
    bm-guest or a physical machine; on a stock vm-guest creation is
    refused (matching the special-build requirement the paper cites). *)

type t

val epc_mb_per_socket : int
(** Enclave Page Cache available per socket (128 MB on the era's parts,
    ~93 MB usable). *)

val create : Instance.t -> name:string -> epc_mb:int -> (t, string) result
(** Allocate an enclave. Fails on a vm-guest, or when the requested EPC
    exceeds what the instance's sockets provide. *)

val name : t -> string
val epc_mb : t -> int

val ecall : t -> work_ns:float -> unit
(** Enter the enclave, run [work_ns] of computation, exit. Each
    transition costs ~8,000 cycles on the era's silicon; the work itself
    runs at native speed on the bm-guest's cores. Must be called from a
    simulation process. *)

val transitions : t -> int

val attest : t -> int
(** Produce a (toy) attestation quote binding the enclave name and its
    measurement — deterministic, so a verifier can check it. *)

val verify_quote : name:string -> quote:int -> bool
