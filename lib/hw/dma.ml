open Bm_engine

type t = {
  sim : Sim.t;
  gbit_s : float;
  setup_ns : float;
  engine : Sim.Resource.resource;
  mutable copies : int;
  mutable bytes_copied : float;
  obs : Obs.t;
  fault : Fault.t;
}

let create ?(obs = Obs.none) ?(fault = Fault.none) sim ?(gbit_s = 50.0) ?(setup_ns = 300.0) () =
  assert (gbit_s > 0.0 && setup_ns >= 0.0);
  {
    sim;
    gbit_s;
    setup_ns;
    engine = Sim.Resource.create ~capacity:1;
    copies = 0;
    bytes_copied = 0.0;
    obs;
    fault;
  }

let gbit_s t = t.gbit_s

(* Cut-through model: the copy streams through all three stages at the
   rate of the slowest one. The engine resource is held for the whole
   streaming duration, which makes the engine the aggregation point for
   concurrent flows — exactly the paper's "IO-Bond internal DMA
   throughput is around 50Gbps" cap on a guest's combined x4 links. *)
let copy t ~src ~dst ~bytes_ =
  assert (bytes_ >= 0);
  (* A stalled engine holds new descriptors at the doorbell; the copy
     proceeds once the engine resumes streaming. *)
  if Fault.is_active t.fault Fault.Dma_stall then begin
    Metrics.incr_opt (Obs.metrics t.obs) "hw.dma.stalls";
    Fault.block_until_clear t.fault Fault.Dma_stall
  end;
  let t0 = Sim.now t.sim in
  Trace.begin_span_opt (Obs.trace t.obs) ~track:"hw.dma" "copy" ~now:t0;
  Sim.delay t.setup_ns;
  let bottleneck = Float.min t.gbit_s (Float.min (Pcie.gbit_s src) (Pcie.gbit_s dst)) in
  Sim.Resource.with_resource t.engine (fun () ->
      Sim.delay (float_of_int bytes_ *. 8.0 /. bottleneck));
  Pcie.account src ~bytes_;
  Pcie.account dst ~bytes_;
  t.copies <- t.copies + 1;
  t.bytes_copied <- t.bytes_copied +. float_of_int bytes_;
  let t1 = Sim.now t.sim in
  Trace.end_span_opt (Obs.trace t.obs) ~track:"hw.dma" "copy" ~now:t1;
  Metrics.observe_opt (Obs.metrics t.obs) "hw.dma.copy_ns" (t1 -. t0);
  Metrics.incr_opt (Obs.metrics t.obs) ~by:(float_of_int bytes_) "hw.dma.bytes"

let copies t = t.copies
let bytes_copied t = t.bytes_copied
