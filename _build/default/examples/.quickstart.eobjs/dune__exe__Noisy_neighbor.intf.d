examples/noisy_neighbor.mli:
