open Bm_virtio

type flow = { f_src : int; f_dst : int; f_proto : int }

type t = {
  cap : int;
  table : (flow, unit) Hashtbl.t;
  order : flow Queue.t; (* installation order, for eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let fpga_forward_ns = 120.0

let create ?(capacity = 2048) () =
  assert (capacity > 0);
  {
    cap = capacity;
    table = Hashtbl.create capacity;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let occupancy t = Hashtbl.length t.table

let proto_id = function Packet.Udp -> 0 | Packet.Tcp -> 1 | Packet.Icmp -> 2

let flow_of (pkt : Packet.t) =
  { f_src = pkt.Packet.src; f_dst = pkt.Packet.dst; f_proto = proto_id pkt.Packet.protocol }

let classify t pkt =
  if Hashtbl.mem t.table (flow_of pkt) then begin
    t.hits <- t.hits + pkt.Packet.count;
    `Offloaded
  end
  else begin
    t.misses <- t.misses + pkt.Packet.count;
    `Slow_path
  end

let rec evict_to_fit t =
  if Hashtbl.length t.table >= t.cap then begin
    match Queue.take_opt t.order with
    | Some victim ->
      if Hashtbl.mem t.table victim then begin
        Hashtbl.remove t.table victim;
        t.evictions <- t.evictions + 1
      end;
      evict_to_fit t
    | None -> ()
  end

let install t pkt =
  let flow = flow_of pkt in
  if not (Hashtbl.mem t.table flow) then begin
    evict_to_fit t;
    Hashtbl.replace t.table flow ();
    Queue.add flow t.order
  end

let remove_flow t ~src ~dst =
  List.iter
    (fun f_proto ->
      let flow = { f_src = src; f_dst = dst; f_proto } in
      Hashtbl.remove t.table flow)
    [ 0; 1; 2 ]

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
