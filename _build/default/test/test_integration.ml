(* Cross-library integration tests: multi-tenant density, cross-substrate
   traffic, end-to-end failure behaviour. *)

open Bm_engine
open Bm_virtio
open Bm_guest
open Bm_hyp
open Bm_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Eight tenants on one base server, all doing I/O at once: the paper's
   density claim only holds if co-resident bm-guests don't corrupt or
   starve each other. *)
let test_eight_tenants_coexist () =
  let tb = Testbed.make ~seed:31 () in
  let server =
    Bm_hypervisor.create_server tb.Testbed.sim tb.Testbed.rng ~fabric:tb.Testbed.fabric
      ~storage:tb.Testbed.storage ~boards:8 ()
  in
  let guests =
    List.init 8 (fun i ->
        match Bm_hypervisor.provision server ~name:(Printf.sprintf "g%d" i) () with
        | Ok g -> g
        | Error e -> failwith e)
  in
  check_int "no board left" 0 (Bm_hypervisor.free_boards server);
  let completed = Array.make 8 0 in
  List.iteri
    (fun i g ->
      Sim.spawn tb.Testbed.sim (fun () ->
          for _ = 1 to 50 do
            ignore (g.Instance.blk ~op:`Read ~bytes_:4096);
            completed.(i) <- completed.(i) + 1
          done))
    guests;
  Testbed.run tb;
  Array.iteri (fun i n -> check_int (Printf.sprintf "tenant %d finished" i) 50 n) completed;
  (* Releasing one tenant frees exactly one board. *)
  Bm_hypervisor.release server ~name:"g3";
  check_int "board recycled" 1 (Bm_hypervisor.free_boards server)

(* A vm-guest talks to a bm-guest across the fabric: interoperability
   means the substrates share one network namespace. *)
let test_cross_substrate_traffic () =
  let tb = Testbed.make ~seed:32 () in
  let _, bm = Testbed.bm_guest tb in
  let _, vm = Testbed.vm_guest tb in
  let got = ref 0 in
  bm.Instance.set_rx_handler (fun pkt ->
      got := !got + pkt.Packet.count;
      (* echo back *)
      ignore
        (bm.Instance.send
           (Packet.make ~id:pkt.Packet.id ~src:bm.Instance.endpoint ~dst:pkt.Packet.src
              ~size:pkt.Packet.size ~protocol:Packet.Udp ~sent_at:(Sim.clock ()) ())));
  let echoed = ref 0 in
  vm.Instance.set_rx_handler (fun pkt -> echoed := !echoed + pkt.Packet.count);
  Sim.spawn tb.Testbed.sim (fun () ->
      for i = 1 to 20 do
        ignore
          (vm.Instance.send
             (Packet.make ~id:i ~src:vm.Instance.endpoint ~dst:bm.Instance.endpoint ~size:200
                ~protocol:Packet.Udp ~sent_at:(Sim.clock ()) ()))
      done);
  Sim.run ~until:Simtime.(ms 100.0) tb.Testbed.sim;
  check_int "vm->bm delivered" 20 !got;
  check_int "bm->vm echoed" 20 !echoed

(* RPC between a client on one server and a MariaDB bm-guest on another,
   while a second tenant floods its own network: rate limits must keep
   the tenants isolated. *)
let test_noisy_tenant_rate_isolated () =
  let tb = Testbed.make ~seed:33 () in
  let server, victim, noisy = Testbed.bm_pair tb in
  ignore server;
  (* The noisy tenant blasts UDP at its own 4M PPS limit toward a sink. *)
  let client = Testbed.client_box tb in
  let sink = ref 0 in
  client.Instance.set_rx_handler (fun pkt -> sink := !sink + pkt.Packet.count);
  Sim.spawn tb.Testbed.sim (fun () ->
      let rec blast i =
        if Sim.clock () < Simtime.ms 60.0 then begin
          ignore
            (noisy.Instance.send
               (Packet.small_udp ~id:i ~src:noisy.Instance.endpoint
                  ~dst:client.Instance.endpoint ~count:32 ~sent_at:(Sim.clock ()) ()));
          blast (i + 1)
        end
      in
      blast 0);
  (* Meanwhile the victim serves storage I/O. *)
  let lat = Stats.Summary.create () in
  Sim.spawn tb.Testbed.sim (fun () ->
      for _ = 1 to 300 do
        Stats.Summary.add lat (victim.Instance.blk ~op:`Read ~bytes_:4096)
      done);
  Sim.run ~until:Simtime.(ms 120.0) tb.Testbed.sim;
  check_int "victim completed all I/O" 300 (Stats.Summary.count lat);
  (* The victim's storage latency stays in the normal cloud band. *)
  check_bool "victim latency sane" true (Stats.Summary.mean lat < 400_000.0)

(* Full-stack RPC across substrates: vm client driving the bm MariaDB. *)
let test_vm_client_bm_database () =
  let tb = Testbed.make ~seed:34 () in
  let _, db = Testbed.bm_guest tb in
  let _, client = Testbed.vm_guest tb in
  Mariadb.serve tb.Testbed.sim (Rng.create ~seed:34) db ();
  let r =
    Mariadb.sysbench tb.Testbed.sim ~client ~server:db ~threads:32 ~pattern:Mariadb.Read_only
      ~duration:(Simtime.ms 50.0) ()
  in
  check_bool "queries flowed" true (r.Mariadb.queries > 1_000);
  check_bool "latency sub-10ms" true (r.Mariadb.avg_ms < 10.0)

(* Bridge invariants hold after a full application benchmark. *)
let test_bridge_invariants_after_load () =
  let tb = Testbed.make ~seed:35 () in
  let server_hv, server = Testbed.bm_guest tb in
  let client = Testbed.client_box tb in
  Nginx.serve server ();
  ignore (Nginx.ab tb.Testbed.sim ~client ~server ~concurrency:64 ~requests:2_000);
  ignore server_hv;
  match Bm_hypervisor.guest_board server_hv ~name:"bm0" with
  | None -> Alcotest.fail "board missing"
  | Some board ->
    let iobond = Board.iobond board in
    check_bool "dma moved traffic" true (Bm_hw.Dma.bytes_copied (Bm_iobond.Iobond.dma iobond) > 1e5);
    check_bool "mailbox saw doorbell traffic" true
      (Bm_iobond.Mailbox.tail_writes (Bm_iobond.Iobond.mailbox iobond) > 100)

(* The tap slow path really is slow: same traffic, far lower rate than
   the fast path (§3.4.2's justification for not deploying it). *)
let test_tap_vs_fast_path () =
  let sim = Sim.create () in
  let delivered = ref 0 in
  let tap = Bm_cloud.Tap.create sim ~deliver:(fun p -> delivered := !delivered + p.Packet.count) () in
  let meter = Stats.Meter.create () in
  Sim.spawn sim (fun () ->
      for i = 1 to 5_000 do
        Bm_cloud.Tap.send tap
          (Packet.small_udp ~id:i ~src:1 ~dst:2 ~count:8 ~sent_at:(Sim.clock ()) ());
        Stats.Meter.mark_n meter ~now:(Sim.clock ()) 8
      done);
  Sim.run sim;
  check_int "nothing lost" 40_000 !delivered;
  check_bool "far below the 3.2M fast path" true (Stats.Meter.rate meter < 500_000.0)

(* Releasing and re-provisioning a board gives a clean guest. *)
let test_board_recycling_clean_state () =
  let tb = Testbed.make ~seed:36 () in
  let server =
    Bm_hypervisor.create_server tb.Testbed.sim tb.Testbed.rng ~fabric:tb.Testbed.fabric
      ~storage:tb.Testbed.storage ~boards:1 ()
  in
  let g1 = Result.get_ok (Bm_hypervisor.provision server ~name:"first" ()) in
  Sim.spawn tb.Testbed.sim (fun () -> ignore (g1.Instance.blk ~op:`Write ~bytes_:4096));
  Testbed.run tb;
  Bm_hypervisor.release server ~name:"first";
  let g2 = Result.get_ok (Bm_hypervisor.provision server ~name:"second" ()) in
  check_bool "fresh endpoint" true (g2.Instance.endpoint <> g1.Instance.endpoint);
  let ok = ref false in
  Sim.spawn tb.Testbed.sim (fun () ->
      ignore (g2.Instance.blk ~op:`Read ~bytes_:4096);
      ok := true);
  Testbed.run tb;
  check_bool "recycled board serves I/O" true !ok

(* Over-draining and misuse of the hypervisor API fail cleanly. *)
let test_capacity_errors_are_clean () =
  let tb = Testbed.make ~seed:37 () in
  let server =
    Bm_hypervisor.create_server tb.Testbed.sim tb.Testbed.rng ~fabric:tb.Testbed.fabric
      ~storage:tb.Testbed.storage ~boards:2 ()
  in
  ignore (Result.get_ok (Bm_hypervisor.provision server ~name:"a" ()));
  ignore (Result.get_ok (Bm_hypervisor.provision server ~name:"b" ()));
  (match Bm_hypervisor.provision server ~name:"c" () with
  | Ok _ -> Alcotest.fail "third guest on two boards"
  | Error e -> check_bool "useful error" true (e <> ""));
  (* Releasing an unknown guest is a no-op, not a crash. *)
  Bm_hypervisor.release server ~name:"ghost";
  check_int "still two in use" 0 (Bm_hypervisor.free_boards server)

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "eight tenants coexist" `Quick test_eight_tenants_coexist;
        Alcotest.test_case "cross-substrate traffic" `Quick test_cross_substrate_traffic;
        Alcotest.test_case "noisy tenant isolated" `Quick test_noisy_tenant_rate_isolated;
        Alcotest.test_case "vm client, bm database" `Quick test_vm_client_bm_database;
        Alcotest.test_case "bridge invariants after load" `Quick test_bridge_invariants_after_load;
        Alcotest.test_case "tap vs fast path" `Quick test_tap_vs_fast_path;
        Alcotest.test_case "board recycling" `Quick test_board_recycling_clean_state;
        Alcotest.test_case "capacity errors" `Quick test_capacity_errors_are_clean;
      ] );
  ]
