lib/guests/guest_os.ml: Bm_virtio List Packet
