(* Closed-loop degradation policies. Each policy is a pure decision
   function over a per-window signal bundle plus a small mutable state
   (stage, calm/hold counters, shed set). The split into decide/confirm
   is what makes the hysteresis contract structural: decide proposes at
   most one stage move per call and records it as pending; the runner
   executes the actions (escalations under its Fault.Guard) and then
   confirms with the outcome. A failed guard run discards the pending
   move, so the stage can never change more than once per SLO window
   and never changes at all when the control plane refuses the work. *)

type kind = Ladder | Selective | Tiered | Congestion

let all = [ Ladder; Selective; Tiered; Congestion ]

let name = function
  | Ladder -> "ladder"
  | Selective -> "selective"
  | Tiered -> "tiered"
  | Congestion -> "congestion"

let of_name = function
  | "ladder" -> Some Ladder
  | "selective" -> Some Selective
  | "tiered" -> Some Tiered
  | "congestion" -> Some Congestion
  | _ -> None

type signals = {
  window : int;
  premium_pressure : float;
  all_pressure : float;
  distressed : (string * Slo.tier) list;
  suspects : string list;
  gold_p99_ms : float;
  offered_pps : (Slo.tier * float) list;
  failed_hosts : int list;
  spine_queued : int;
  spine_dropped : int;
  links : Bm_fabric.Fabric.pressure list;
  links_down : int;
  brownout : bool;
  breaker : Bm_engine.Fault.Guard.state;
}

let calm_signals ~window =
  {
    window;
    premium_pressure = 0.0;
    all_pressure = 0.0;
    distressed = [];
    suspects = [];
    gold_p99_ms = 0.0;
    offered_pps = [];
    failed_hosts = [];
    spine_queued = 0;
    spine_dropped = 0;
    links = [];
    links_down = 0;
    brownout = false;
    breaker = Bm_engine.Fault.Guard.Closed;
  }

type action =
  | Shed_tier of Slo.tier
  | Restore_tier of Slo.tier
  | Shed_tenants of string list
  | Restore_tenants of string list
  | Tier_ceiling of { tier : Slo.tier; pps : float }
  | Restore_tier_ceiling of Slo.tier
  | Host_ceiling of float
  | Restore_host_ceiling
  | Class_ceiling of { tier : Slo.tier; frac : float }
  | Restore_class_ceiling of Slo.tier
  | Drain_failed
  | Throttle_bulk of float
  | Restore_bulk

let action_name = function
  | Shed_tier t -> Printf.sprintf "shed_tier(%s)" (Slo.tier_name t)
  | Restore_tier t -> Printf.sprintf "restore_tier(%s)" (Slo.tier_name t)
  | Shed_tenants ts -> Printf.sprintf "shed_tenants(%d)" (List.length ts)
  | Restore_tenants ts -> Printf.sprintf "restore_tenants(%d)" (List.length ts)
  | Tier_ceiling { tier; pps } -> Printf.sprintf "tier_ceiling(%s,%.0f)" (Slo.tier_name tier) pps
  | Restore_tier_ceiling t -> Printf.sprintf "restore_tier_ceiling(%s)" (Slo.tier_name t)
  | Host_ceiling f -> Printf.sprintf "host_ceiling(%.2f)" f
  | Restore_host_ceiling -> "restore_host_ceiling"
  | Class_ceiling { tier; frac } ->
    Printf.sprintf "class_ceiling(%s,%.2f)" (Slo.tier_name tier) frac
  | Restore_class_ceiling t -> Printf.sprintf "restore_class_ceiling(%s)" (Slo.tier_name t)
  | Drain_failed -> "drain_failed"
  | Throttle_bulk f -> Printf.sprintf "throttle_bulk(%.2f)" f
  | Restore_bulk -> "restore_bulk"

type decision = Hold | Escalate of action list | Reapply of action list | Relax of action list

type t = {
  kind : kind;
  mutable stage : int;
  mutable max_stage : int;
  mutable calm : int;  (* consecutive calm windows *)
  mutable held : int;  (* windows since the last committed stage change *)
  mutable shed : string list;  (* tenants currently shed (committed) *)
  mutable pending : int;  (* proposed stage delta this window: -1/0/+1 *)
  mutable pending_shed : string list;
  mutable pending_restore : bool;  (* committing clears the shed set *)
  mutable last_dropped : int;  (* spine drop counter at the previous decide *)
}

(* Hysteresis: escalation and relaxation use distinct thresholds (a
   dead band between them accumulates no calm), and the newer policies
   additionally hold each stage for [min_hold] windows before moving
   again. The ladder keeps the legacy parameters exactly: raise at
   0.05, relax after 2 calm windows, no hold. *)
let raise_thr = 0.05
let relax_thr = 0.02
let min_hold = function Ladder -> 0 | Selective | Tiered | Congestion -> 2
let calm_windows = 2
let top_stage = 3

let create kind =
  {
    kind;
    stage = 0;
    max_stage = 0;
    calm = 0;
    held = min_hold kind;
    shed = [];
    pending = 0;
    pending_shed = [];
    pending_restore = false;
    last_dropped = 0;
  }

let kind t = t.kind
let stage t = t.stage
let max_stage t = t.max_stage
let shed_tenants t = t.shed

let escalate t actions =
  t.pending <- 1;
  Escalate actions

let relax t actions =
  t.pending <- -1;
  Relax actions

let fresh_suspects t s = List.filter (fun tn -> not (List.mem tn t.shed)) s.suspects

(* The legacy three-rung ladder, ported move for move: Bronze onto a
   tight Shed bucket, then the global host ceiling, then drain failed
   hosts; keep draining newly failed hosts once fully escalated. *)
let decide_ladder t s =
  let distress = s.premium_pressure >= raise_thr || s.failed_hosts <> [] in
  if distress then begin
    t.calm <- 0;
    if t.stage < top_stage then
      escalate t
        (match t.stage + 1 with
        | 1 -> [ Shed_tier Slo.Bronze ]
        | 2 -> [ Host_ceiling 0.88 ]
        | _ -> [ Drain_failed ])
    else if s.failed_hosts <> [] then Reapply [ Drain_failed ]
    else Hold
  end
  else begin
    t.calm <- t.calm + 1;
    if t.calm >= calm_windows && t.stage > 0 then
      relax t
        (match t.stage with
        | 1 -> [ Restore_tier Slo.Bronze ]
        | 2 -> [ Restore_host_ceiling ]
        | _ -> [])
    else Hold
  end

let decide_selective t s =
  let distress = s.premium_pressure >= raise_thr || s.failed_hosts <> [] in
  if distress then begin
    t.calm <- 0;
    if t.stage < top_stage && t.held >= min_hold t.kind then begin
      match t.stage + 1 with
      | 1 -> escalate t [ Drain_failed ]
      | 2 ->
        let fresh = fresh_suspects t s in
        t.pending_shed <- fresh;
        escalate t [ Shed_tenants fresh ]
      | _ -> escalate t [ Host_ceiling 0.88 ]
    end
    else if s.failed_hosts <> [] && t.stage >= 1 then Reapply [ Drain_failed ]
    else begin
      let fresh = fresh_suspects t s in
      if t.stage >= 2 && fresh <> [] then begin
        t.pending_shed <- fresh;
        Reapply [ Shed_tenants fresh ]
      end
      else Hold
    end
  end
  else begin
    if s.premium_pressure < relax_thr then t.calm <- t.calm + 1 else t.calm <- 0;
    if t.calm >= calm_windows && t.stage > 0 && t.held >= min_hold t.kind then begin
      match t.stage with
      | 3 -> relax t [ Restore_host_ceiling ]
      | 2 ->
        t.pending_restore <- true;
        relax t [ Restore_tenants t.shed ]
      | _ -> relax t []
    end
    else Hold
  end

(* Per-tier ceilings are fractions of the tier's offered rate in the
   window that triggered the move, so the same policy bites equally at
   quick and full fleet scale instead of hardcoding an absolute pps. *)
let tier_cap s tier frac =
  let offered = match List.assoc_opt tier s.offered_pps with Some r -> r | None -> 0.0 in
  Tier_ceiling { tier; pps = Float.max 1.0 (frac *. offered) }

let decide_tiered t s =
  let distress = s.premium_pressure >= raise_thr || s.failed_hosts <> [] in
  if distress then begin
    t.calm <- 0;
    if t.stage < top_stage && t.held >= min_hold t.kind then
      escalate t
        (match t.stage + 1 with
        | 1 ->
          [ tier_cap s Slo.Bronze 0.60; Class_ceiling { tier = Slo.Bronze; frac = 0.30 } ]
        | 2 -> [ Drain_failed ]
        | _ ->
          [
            tier_cap s Slo.Bronze 0.35;
            tier_cap s Slo.Silver 0.85;
            Class_ceiling { tier = Slo.Bronze; frac = 0.22 };
          ])
    else if s.failed_hosts <> [] && t.stage >= 2 then Reapply [ Drain_failed ]
    else Hold
  end
  else begin
    if s.premium_pressure < relax_thr then t.calm <- t.calm + 1 else t.calm <- 0;
    if t.calm >= calm_windows && t.stage > 0 && t.held >= min_hold t.kind then
      relax t
        (match t.stage with
        | 3 ->
          [
            tier_cap s Slo.Bronze 0.60;
            Restore_tier_ceiling Slo.Silver;
            Class_ceiling { tier = Slo.Bronze; frac = 0.30 };
          ]
        | 2 -> []
        | _ -> [ Restore_tier_ceiling Slo.Bronze; Restore_class_ceiling Slo.Bronze ])
    else Hold
  end

let decide_congestion t s =
  let drop_delta = s.spine_dropped - t.last_dropped in
  t.last_dropped <- s.spine_dropped;
  let congested = s.spine_queued >= 8 || drop_delta > 0 || s.gold_p99_ms > 0.25 in
  let distress = congested || s.failed_hosts <> [] || s.premium_pressure >= raise_thr in
  (* A drain is itself a fabric event: every evacuated guest streams its
     memory post-copy across the spine, and a drain launched into a
     saturated fabric trades the failed hosts' outage for a longer
     whole-fleet one. So the drain is the LAST rung, and it only fires
     when the spine has headroom for the storm. *)
  let headroom = s.spine_queued < 8 && drop_delta = 0 in
  if distress then begin
    t.calm <- 0;
    let next_rung =
      match t.stage + 1 with
      | 1 -> Some [ Throttle_bulk 0.0; Shed_tier Slo.Bronze ]
      | 2 -> Some [ Class_ceiling { tier = Slo.Bronze; frac = 0.25 } ]
      | _ -> if headroom && s.failed_hosts <> [] then Some [ Drain_failed ] else None
    in
    match next_rung with
    | Some actions when t.stage < top_stage && t.held >= min_hold t.kind ->
      escalate t actions
    | _ ->
      if s.failed_hosts <> [] && t.stage >= 3 && headroom then Reapply [ Drain_failed ]
      else Hold
  end
  else begin
    if s.premium_pressure < relax_thr then t.calm <- t.calm + 1 else t.calm <- 0;
    if t.calm >= calm_windows && t.stage > 0 && t.held >= min_hold t.kind then
      relax t
        (match t.stage with
        | 3 -> []
        | 2 -> [ Restore_class_ceiling Slo.Bronze ]
        | _ -> [ Restore_tier Slo.Bronze; Restore_bulk ])
    else Hold
  end

let decide t s =
  t.held <- t.held + 1;
  t.pending <- 0;
  t.pending_shed <- [];
  t.pending_restore <- false;
  match t.kind with
  | Ladder -> decide_ladder t s
  | Selective -> decide_selective t s
  | Tiered -> decide_tiered t s
  | Congestion -> decide_congestion t s

let confirm t ~ok =
  if ok then begin
    if t.pending_shed <> [] then t.shed <- List.sort_uniq compare (t.shed @ t.pending_shed);
    if t.pending_restore then t.shed <- [];
    if t.pending = 1 then begin
      t.stage <- t.stage + 1;
      t.max_stage <- max t.max_stage t.stage;
      t.held <- 0
    end
    else if t.pending = -1 then begin
      t.stage <- t.stage - 1;
      t.calm <- 0;
      t.held <- 0
    end
  end;
  t.pending <- 0;
  t.pending_shed <- [];
  t.pending_restore <- false

(* Which tenants share fate with the distressed premium tenants: every
   Bronze tenant with a guest on a seed host (a failed host, or any
   host of a distressed Gold/Silver tenant) or in a seed rack (same
   ToR). This is the shed set of the selective policy — colocated
   best-effort load, rather than the whole Bronze tier. *)
let blast_radius ~sched ~tor_of ~tier_of ~distressed ~failed_hosts =
  let premium_hosts =
    List.concat_map
      (fun (tn, tier) ->
        if tier = Slo.Bronze then [] else Scheduler.hosts_of_tenant sched ~tenant:tn)
      distressed
  in
  let seed_hosts = List.sort_uniq compare (failed_hosts @ premium_hosts) in
  let seed_racks = List.sort_uniq compare (List.map tor_of seed_hosts) in
  let colocated srv = List.mem srv seed_hosts || List.mem (tor_of srv) seed_racks in
  Scheduler.occupancy sched
  |> List.concat_map (fun (srv, n) ->
         if n > 0 && colocated srv then Scheduler.tenants_on_host sched ~server:srv else [])
  |> List.sort_uniq compare
  |> List.filter (fun tn -> tier_of tn = Slo.Bronze)
