(* Conservative parallel discrete-event simulation over [Sim.t] shards.

   The protocol is the synchronous conservative window scheme (YAWNS /
   CMB without null messages): every round,

     t_min = min over shards of next pending event time
     L     = min over conduits of lookahead
     w     = t_min + L

   and each shard executes its events with time < w — in parallel on up
   to [domains] OCaml domains, since within a window the shards share
   nothing. Any cross-shard message sent by an event in the window has
   arrival >= send_time + lookahead >= t_min + L = w, so it can only
   affect events at or after the window boundary: running the window
   concurrently is exact, not approximate. Messages buffer in per-shard
   outboxes during the window; the barrier merges them in (arrival,
   src_shard, src_seq) order — a total order, since src_seq is unique
   per source shard — and injects them into their destination agendas.
   Execution is therefore a pure function of the model, whatever the
   domain count: the schedule depends only on event timestamps and the
   deterministic merge, never on which domain ran what when.

   Progress: lookahead is required positive, so w > t_min and every
   round executes at least the events at t_min. Shrinking a conduit's
   lookahead mid-run (a failed spine link tightening the conservative
   bound to a shorter alternate path) shrinks the window but never
   wedges the loop. *)

type message = {
  arrival : float;
  src_shard : int;
  src_seq : int;
  dst_shard : int;
  fn : unit -> unit;
}

type shard = {
  sim : Sim.t;
  mutable outbox : message list;  (* reverse send order; sorted at the barrier *)
  mutable sent : int;  (* per-shard cross-message counter: the merge tiebreaker *)
}

type conduit = { c_src : int; c_dst : int; mutable lookahead_ns : float }

type t = {
  shards : shard array;
  mutable conduits : conduit list;
  mutable rounds : int;
  mutable cross_messages : int;
  mutable min_window_ns : float;
  mutable last_lookahead_ns : float;
}

type stats = {
  shards : int;
  rounds : int;
  cross_messages : int;
  min_window_ns : float;
  lookahead_ns : float;
}

let create ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  {
    shards = Array.init shards (fun _ -> { sim = Sim.create (); outbox = []; sent = 0 });
    conduits = [];
    rounds = 0;
    cross_messages = 0;
    min_window_ns = infinity;
    last_lookahead_ns = infinity;
  }

let shards (t : t) = Array.length t.shards

let check_shard (t : t) fn what i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg
      (Printf.sprintf "Shard.%s: %s shard %d out of range [0, %d)" fn what i
         (Array.length t.shards))

let sim (t : t) i =
  check_shard t "sim" "target" i;
  t.shards.(i).sim

let spawn t i body = Sim.spawn (sim t i) body

let conduit (t : t) ~src ~dst ~lookahead_ns =
  check_shard t "conduit" "source" src;
  check_shard t "conduit" "destination" dst;
  if src = dst then
    invalid_arg "Shard.conduit: src and dst must differ (local events need no conduit)";
  if not (lookahead_ns > 0.0) then
    invalid_arg "Shard.conduit: lookahead must be positive (zero lookahead cannot make progress)";
  let c = { c_src = src; c_dst = dst; lookahead_ns } in
  t.conduits <- c :: t.conduits;
  c

let lookahead (c : conduit) = c.lookahead_ns

let set_lookahead (c : conduit) ns =
  if not (ns > 0.0) then invalid_arg "Shard.set_lookahead: lookahead must be positive";
  c.lookahead_ns <- ns

let send (t : t) (c : conduit) ~delay fn =
  if not (delay >= c.lookahead_ns) then
    invalid_arg
      (Printf.sprintf "Shard.send: delay %g below conduit lookahead %g" delay c.lookahead_ns);
  let s = t.shards.(c.c_src) in
  s.sent <- s.sent + 1;
  s.outbox <-
    { arrival = Sim.now s.sim +. delay; src_shard = c.c_src; src_seq = s.sent;
      dst_shard = c.c_dst; fn }
    :: s.outbox

(* Persistent worker pool: [run] spawns its extra domains once and
   reuses them for every round — a per-round [Domain.spawn] costs on
   the order of 100 us, which would dwarf the window work itself on
   fine-grained models with many small windows. Each round the main
   domain publishes a new task generation under the mutex and
   broadcasts; workers claim shard indices off an atomic counter (so a
   shard is touched by exactly one domain per round), then decrement
   [remaining] and the last one signals the main domain. No observable
   depends on the (shard, domain) pairing: shards share nothing inside
   a window. *)
type pool = {
  m : Mutex.t;
  start : Condition.t;
  finish : Condition.t;
  mutable gen : int;
  mutable stop : bool;
  mutable task : int -> unit;
  mutable nshards : int;
  mutable remaining : int;  (* participants (workers + main) still draining *)
  next : int Atomic.t;
  mutable workers : unit Domain.t array;
}

let pool_drain p =
  let rec claim () =
    let i = Atomic.fetch_and_add p.next 1 in
    if i < p.nshards then begin
      p.task i;
      claim ()
    end
  in
  claim ();
  Mutex.lock p.m;
  p.remaining <- p.remaining - 1;
  if p.remaining = 0 then Condition.signal p.finish;
  Mutex.unlock p.m

let rec pool_worker p my_gen =
  Mutex.lock p.m;
  while (not p.stop) && p.gen = my_gen do
    Condition.wait p.start p.m
  done;
  let stop = p.stop and gen = p.gen in
  Mutex.unlock p.m;
  if not stop then begin
    pool_drain p;
    pool_worker p gen
  end

let pool_make ~workers =
  let p =
    {
      m = Mutex.create ();
      start = Condition.create ();
      finish = Condition.create ();
      gen = 0;
      stop = false;
      task = ignore;
      nshards = 0;
      remaining = 0;
      next = Atomic.make 0;
      workers = [||];
    }
  in
  p.workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> pool_worker p 0));
  p

let pool_stop p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.start;
  Mutex.unlock p.m;
  Array.iter Domain.join p.workers

(* Run [work] on every shard, on the pool if there is one. Exceptions
   are parked per shard and the lowest-index one re-raised at the
   barrier, so even failure is deterministic. *)
let parallel_each pool shards work =
  match pool with
  | None -> Array.iter work shards
  | Some p ->
    let n = Array.length shards in
    let errors = Array.make n None in
    Mutex.lock p.m;
    p.task <-
      (fun i ->
        try work shards.(i)
        with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
    p.nshards <- n;
    Atomic.set p.next 0;
    p.remaining <- Array.length p.workers + 1;
    p.gen <- p.gen + 1;
    Condition.broadcast p.start;
    Mutex.unlock p.m;
    pool_drain p;
    Mutex.lock p.m;
    while p.remaining > 0 do
      Condition.wait p.finish p.m
    done;
    Mutex.unlock p.m;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors

let min_lookahead (t : t) =
  List.fold_left (fun acc (c : conduit) -> Float.min acc c.lookahead_ns) infinity t.conduits

let next_event_time (t : t) =
  Array.fold_left (fun acc s -> Float.min acc (Sim.next_event_time s.sim)) infinity t.shards

(* Barrier: drain every outbox, sort by the total (arrival, src_shard,
   src_seq) key, inject into destination agendas. Collection order is
   irrelevant — the sort alone fixes the injection order, and injection
   order fixes the destination sequence numbers, hence execution order. *)
let exchange (t : t) =
  match
    Array.fold_left
      (fun acc s ->
        match s.outbox with
        | [] -> acc
        | msgs ->
          s.outbox <- [];
          List.rev_append msgs acc)
      [] t.shards
  with
  | [] -> ()
  | batch ->
    let batch =
      List.sort
        (fun a b ->
          match Float.compare a.arrival b.arrival with
          | 0 -> (
            match compare a.src_shard b.src_shard with
            | 0 -> compare a.src_seq b.src_seq
            | c -> c)
          | c -> c)
        batch
    in
    List.iter
      (fun m ->
        t.cross_messages <- t.cross_messages + 1;
        (* arrival >= window end = destination clock by the conservative
           bound; absolute-time injection keeps the exact timestamp the
           sender computed (a delay round-trip can be a ulp off). The max
           covers the one sub-ulp case: a window bumped to [succ t_min]
           can park the clock a ulp past an arrival that rounded down. *)
        let dst = t.shards.(m.dst_shard).sim in
        Sim.schedule_at dst ~time:(Float.max m.arrival (Sim.now dst)) m.fn)
      batch

let run ?(domains = 1) ?until (t : t) =
  let horizon = match until with Some u -> u | None -> infinity in
  let domains = max 1 (min domains (Array.length t.shards)) in
  let pool = if domains > 1 then Some (pool_make ~workers:(domains - 1)) else None in
  let each work = parallel_each pool t.shards work in
  Fun.protect
    ~finally:(fun () -> Option.iter pool_stop pool)
    (fun () ->
      let rec round () =
        let t_min = next_event_time t in
        if t_min < infinity && t_min <= horizon then begin
          let la = min_lookahead t in
          t.last_lookahead_ns <- la;
          t.rounds <- t.rounds + 1;
          if Float.is_finite la then begin
            (* If [la] is below the ulp of [t_min] the sum rounds back to
               [t_min] and a strict window would run nothing; bump to the
               next representable float so the round still makes progress. *)
            let w = t_min +. la in
            let w = if w > t_min then w else Float.succ t_min in
            t.min_window_ns <- Float.min t.min_window_ns la;
            if w <= horizon then
              (* Interior window: strictly-before-[w] semantics, clock parked
                 at the boundary where the next batch of arrivals lands. *)
              each (fun s -> Sim.run_window s.sim ~until:w)
            else
              (* Final window: w overshoots the horizon, so no message sent
                 here can arrive at or before it — running inclusively to the
                 horizon is safe and matches [Sim.run ~until]. *)
              each (fun s -> Sim.run ~until:horizon s.sim)
          end
          else
            (* No conduits (or all-infinite lookahead): the shards are fully
               independent; exhaust them (capped at the horizon if any). *)
            each (fun s ->
                match until with
                | Some u -> Sim.run ~until:u s.sim
                | None -> Sim.run s.sim);
          exchange t;
          round ()
        end
      in
      round ();
      (* Mirror [Sim.run ~until]: park every clock at the horizon. Nothing
         runs — the loop only exits once every pending event is past it. *)
      match until with
      | Some u ->
        Array.iter (fun s -> if Sim.now s.sim < u then Sim.run ~until:u s.sim) t.shards
      | None -> ())

let stats (t : t) =
  {
    shards = Array.length t.shards;
    rounds = t.rounds;
    cross_messages = t.cross_messages;
    min_window_ns = t.min_window_ns;
    lookahead_ns = t.last_lookahead_ns;
  }
