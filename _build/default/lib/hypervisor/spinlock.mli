(** Lock-holder preemption (§2.1, §5).

    "There are many other aspects of virtualization that contributes to
    performance overhead, such as the lock holder preemption (a vCPU is
    preempted while holding a lock)." A guest spinlock is cheap — until
    the vCPU holding it loses the physical CPU: every waiter then spins
    for the whole preemption slice. Co-scheduling and paravirtual
    spinlocks mitigate this on VMs; on a compute board it cannot happen.

    A [Spinlock.t] is a guest kernel spinlock: the critical section runs
    on the instance's cores, and — through the instance's [pause] hook —
    the holder can be preempted mid-section when the substrate allows it.
    Waiters burn CPU while they spin (that is the point of a spinlock). *)

type t

type stats = {
  acquisitions : int;
  total_spin_ns : float;  (** CPU burned by waiters *)
  worst_wait_ns : float;
}

val create : Bm_guest.Instance.t -> t

val critical_section : t -> work_ns:float -> unit
(** Take the lock, run [work_ns] of guest work (the holder may be
    preempted mid-section on a vm-guest), release. Must be called from a
    simulation process. *)

val stats : t -> stats
