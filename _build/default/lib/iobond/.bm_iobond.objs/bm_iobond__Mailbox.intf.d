lib/iobond/mailbox.mli: Bm_engine Bm_hw
