type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable size : int; dummy : 'a entry }

(* The sentinel entry fills every slot past [size] so a popped entry's
   closure (and everything it captures — whole fibers) becomes
   collectable immediately. Its [value] is never read: slots past [size]
   are only ever overwritten by [add]/[grow]. *)
let create () =
  let dummy = { time = nan; seq = min_int; value = Obj.magic () } in
  { heap = [||]; size = 0; dummy }

let length q = q.size
let is_empty q = q.size = 0
let capacity q = Array.length q.heap

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  if left < q.size then begin
    let right = left + 1 in
    let smallest = if right < q.size && lt q.heap.(right) q.heap.(left) then right else left in
    if lt q.heap.(smallest) q.heap.(i) then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

let grow q =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let heap' = Array.make capacity' q.dummy in
    Array.blit q.heap 0 heap' 0 q.size;
    q.heap <- heap'
  end

let add q ~time ~seq value =
  grow q;
  q.heap.(q.size) <- { time; seq; value };
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.time, e.seq, e.value)

let remove_min q e =
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  (* Null the vacated slot so the GC can reclaim the entry (fibers
     retained through popped closures were a genuine space leak). *)
  q.heap.(q.size) <- q.dummy;
  Some (e.time, e.seq, e.value)

let pop q = if q.size = 0 then None else remove_min q q.heap.(0)

let pop_if_le q ~time ~seq =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    if e.time < time || (e.time = time && e.seq <= seq) then remove_min q e else None

let clear q =
  (* Keep the backing array (steady-state simulations re-fill it at the
     same size), but drop every reference held in it. *)
  Array.fill q.heap 0 q.size q.dummy;
  q.size <- 0
