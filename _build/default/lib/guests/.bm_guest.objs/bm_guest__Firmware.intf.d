lib/guests/firmware.mli:
