(* Fabric performance benchmark: measures the host-side cost of the
   link-level network model — not simulated latencies — and writes the
   numbers to a JSON file (BENCH_fabric.json at the repo root is the
   committed baseline).

   Usage:
     fabric_bench.exe [--quick] [--seed N] [--out FILE]

   Three sections:
     forward   events/sec and bursts/sec of raw fabric forwarding across
               a leaf-spine topology (uniform random host pairs)
     ecmp      spine share spread of the flow hash over many flows
     xhost     wall-clock of the quick-scale xhost_rr experiment, run
               twice, with a structural-equality determinism check *)

open Bm_engine
module Fabric = Bm_fabric.Fabric
module Topology = Bm_fabric.Topology
module Packet = Bm_virtio.Packet

let quick = ref false
let seed = ref 2020
let out_file = ref "BENCH_fabric.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s -> seed := s
      | None ->
        prerr_endline "--seed expects an integer";
        exit 2);
      parse rest
    | "--out" :: f :: rest ->
      out_file := f;
      parse rest
    | a :: _ ->
      Printf.eprintf "unknown argument %S\n" a;
      prerr_endline "usage: fabric_bench.exe [--quick] [--seed N] [--out FILE]";
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* --- raw forwarding --------------------------------------------------- *)

(* [senders] fibers each push bursts between uniform random host pairs
   through an 8-host leaf-spine, paced just above the link rate so the
   queues stay busy without melting down. *)
let forward_bench ~bursts =
  let topo = Topology.clos ~hosts:8 ~tors:4 ~spines:2 () in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:!seed in
  let fab = Fabric.create sim (Rng.split rng) topo in
  let senders = 16 in
  let per_sender = bursts / senders in
  let next_id = ref 0 in
  for s = 1 to senders do
    let rng = Rng.split rng in
    Sim.spawn sim (fun () ->
        for _ = 1 to per_sender do
          let src_host = Rng.int rng 8 in
          let dst_host = (src_host + 1 + Rng.int rng 7) mod 8 in
          incr next_id;
          Fabric.send fab ~src_host ~dst_host
            ~deliver:(fun _ -> ())
            (Packet.make ~id:!next_id ~src:(s * 1000) ~dst:(s * 1000 + 1) ~size:1500
               ~protocol:Packet.Udp ~sent_at:(Sim.clock ()) ());
          Sim.delay 150.0
        done)
  done;
  let (), wall_s = time (fun () -> Sim.run sim) in
  let events = Sim.events_executed sim in
  ( float_of_int events /. wall_s,
    float_of_int (Fabric.delivered fab) /. wall_s,
    events,
    Fabric.delivered fab,
    Fabric.dropped fab,
    wall_s )

(* --- ECMP spread ------------------------------------------------------ *)

let ecmp_bench ~flows =
  let topo = Topology.clos ~hosts:4 ~tors:2 ~spines:4 () in
  let sim = Sim.create () in
  let fab = Fabric.create sim (Rng.create ~seed:!seed) topo in
  let shares = Array.make 4 0 in
  for f = 1 to flows do
    let names =
      Fabric.path_names fab ~src_host:0 ~dst_host:3
        (Packet.make ~id:f ~src:f ~dst:(f * 7) ~size:1500 ~protocol:Packet.Tcp ~sent_at:0.0 ())
    in
    List.iter
      (fun n ->
        for s = 0 to 3 do
          if n = Printf.sprintf "tor0->spine%d" s then shares.(s) <- shares.(s) + 1
        done)
      names
  done;
  let mx = Array.fold_left max 0 shares and mn = Array.fold_left min max_int shares in
  (shares, float_of_int mx /. float_of_int (max 1 mn))

(* --- cross-host experiment determinism -------------------------------- *)

let xhost_bench () =
  let run () = Bmhive.Experiments.run_one ~quick:true ~seed:!seed "xhost_rr" in
  let r1, wall1 = time run in
  let r2, wall2 = time run in
  (wall1, wall2, r1 = r2)

(* --- driver ----------------------------------------------------------- *)

let progress fmt = Printf.ksprintf (fun m -> prerr_endline ("[fabric_bench] " ^ m)) fmt

let () =
  let bursts = if !quick then 100_000 else 1_000_000 in
  progress "forward: %d bursts over 8 hosts / 4 tors / 2 spines" bursts;
  let eps, bps, events, delivered, dropped, fwd_s = forward_bench ~bursts in
  let flows = 10_000 in
  progress "ecmp: %d flows over 4 spines" flows;
  let shares, imbalance = ecmp_bench ~flows in
  progress "xhost_rr twice (quick)";
  let wall1, wall2, identical = xhost_bench () in
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"seed\": %d,\n" !seed;
  p "  \"quick\": %b,\n" !quick;
  p "  \"forward\": {\n";
  p "    \"bursts\": %d,\n" bursts;
  p "    \"events\": %d,\n" events;
  p "    \"delivered\": %d,\n" delivered;
  p "    \"dropped\": %d,\n" dropped;
  p "    \"wall_s\": %.4f,\n" fwd_s;
  p "    \"events_per_sec\": %.0f,\n" eps;
  p "    \"bursts_per_sec\": %.0f\n" bps;
  p "  },\n";
  p "  \"ecmp\": {\n";
  p "    \"flows\": %d,\n" flows;
  p "    \"spine_shares\": [%s],\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int shares)));
  p "    \"max_over_min\": %.3f\n" imbalance;
  p "  },\n";
  p "  \"xhost_rr\": {\n";
  p "    \"wall_s_run1\": %.4f,\n" wall1;
  p "    \"wall_s_run2\": %.4f,\n" wall2;
  p "    \"outcomes_identical\": %b\n" identical;
  p "  }\n";
  p "}\n";
  let oc = open_out !out_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf
    "fabric bench: %.0f events/s forwarding (%d dropped of %d); ecmp max/min %.2f; xhost_rr \
     deterministic: %b\n"
    eps dropped delivered imbalance identical;
  Printf.printf "written: %s\n" !out_file
