test/test_packed_ring.ml: Alcotest Bm_virtio Buffer Gen List Option Packed_ring Packet Printf QCheck QCheck_alcotest Queue Vring
