let check_stable ~lambda ~mu ~servers =
  if lambda <= 0.0 || mu <= 0.0 then invalid_arg "Queueing: rates must be positive";
  if lambda >= mu *. float_of_int servers then invalid_arg "Queueing: unstable (rho >= 1)"

let mm1_utilization ~lambda ~mu =
  check_stable ~lambda ~mu ~servers:1;
  lambda /. mu

let mm1_mean_queue_length ~lambda ~mu =
  let rho = mm1_utilization ~lambda ~mu in
  rho /. (1.0 -. rho)

let mm1_mean_sojourn ~lambda ~mu =
  check_stable ~lambda ~mu ~servers:1;
  1.0 /. (mu -. lambda)

let mm1_mean_wait ~lambda ~mu =
  let rho = mm1_utilization ~lambda ~mu in
  rho /. (mu -. lambda)

let mmc_erlang_c ~lambda ~mu ~c =
  if c < 1 then invalid_arg "Queueing: c >= 1";
  check_stable ~lambda ~mu ~servers:c;
  let a = lambda /. mu in
  let cf = float_of_int c in
  let rho = a /. cf in
  (* Sum a^k/k! for k < c, iteratively to stay stable. *)
  let rec partial k term acc =
    if k = c then (acc, term)
    else partial (k + 1) (term *. a /. float_of_int (k + 1)) (acc +. term)
  in
  let sum, ac_over_cfact = partial 0 1.0 0.0 in
  let tail = ac_over_cfact /. (1.0 -. rho) in
  tail /. (sum +. tail)

let mmc_mean_wait ~lambda ~mu ~c =
  let pw = mmc_erlang_c ~lambda ~mu ~c in
  pw /. ((float_of_int c *. mu) -. lambda)

let mg1_mean_wait ~lambda ~mean_service ~service_variance =
  if mean_service <= 0.0 then invalid_arg "Queueing: mean service must be positive";
  let mu = 1.0 /. mean_service in
  check_stable ~lambda ~mu ~servers:1;
  let rho = lambda /. mu in
  let cs2 = service_variance /. (mean_service *. mean_service) in
  (* Wq = (rho / (1 - rho)) * ((1 + Cs^2) / 2) * E[S] *)
  rho /. (1.0 -. rho) *. ((1.0 +. cs2) /. 2.0) *. mean_service

let littles_law_l ~lambda ~w = lambda *. w
