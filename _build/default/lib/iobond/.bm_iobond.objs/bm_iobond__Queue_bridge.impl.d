lib/iobond/queue_bridge.ml: Bm_engine Bm_hw Bm_virtio Dma List Mailbox Metrics Obs Pcie Sim Trace Vring
