type substrate = Bare_metal | Virtual

type server_kind =
  | Bm_server of { boards : int; board_threads : int }
  | Vm_server of { sellable_threads : int }

type placement = { server : int; substrate : substrate; threads : int }

type strategy = First_fit | Best_fit | Spread

type server = {
  id : int;
  kind : server_kind;
  ceiling : float;  (** per-host sellable fraction of capacity *)
  mutable used_boards : int;
  mutable used_threads : int;
  mutable failed : bool;
}

type record = { placement : placement; vcpus : int; image : Image.t; cls : string option }

type t = {
  mutable servers : server list;
  mutable next_id : int;
  instances : (string, record) Hashtbl.t;
  mutable admission_ceiling : float;
  mutable admission_rejections : int;
  (* Per-class admission: a class (e.g. an SLO tier) may be capped at a
     fraction of fleet thread capacity, the tiered counterpart of the
     single global ceiling. *)
  class_ceilings : (string, float) Hashtbl.t;
  class_used : (string, int) Hashtbl.t;  (* threads placed per class *)
  mutable class_rejections : int;
}

let create ?(admission_ceiling = 1.0) () =
  assert (admission_ceiling > 0.0 && admission_ceiling <= 1.0);
  {
    servers = [];
    next_id = 0;
    instances = Hashtbl.create 32;
    admission_ceiling;
    admission_rejections = 0;
    class_ceilings = Hashtbl.create 4;
    class_used = Hashtbl.create 4;
    class_rejections = 0;
  }

let set_admission_ceiling t c =
  assert (c > 0.0 && c <= 1.0);
  t.admission_ceiling <- c

let admission_ceiling t = t.admission_ceiling
let admission_rejections t = t.admission_rejections

let set_class_ceiling t ~cls c =
  if not (c > 0.0 && c <= 1.0) then
    invalid_arg "Control_plane.set_class_ceiling: ceiling must be in (0, 1]";
  Hashtbl.replace t.class_ceilings cls c

let clear_class_ceiling t ~cls = Hashtbl.remove t.class_ceilings cls
let class_ceiling t ~cls = Hashtbl.find_opt t.class_ceilings cls
let class_rejections t = t.class_rejections
let class_used_of t cls = Option.value ~default:0 (Hashtbl.find_opt t.class_used cls)

let class_charge t cls threads =
  match cls with
  | None -> ()
  | Some c -> Hashtbl.replace t.class_used c (class_used_of t c + threads)

let add_server ?(ceiling = 1.0) t kind =
  if not (ceiling > 0.0 && ceiling <= 1.0) then
    invalid_arg "Control_plane.add_server: ceiling must be in (0, 1]";
  let id = t.next_id in
  t.next_id <- id + 1;
  t.servers <-
    t.servers @ [ { id; kind; ceiling; used_boards = 0; used_threads = 0; failed = false } ];
  id

let find_server t id = List.find_opt (fun s -> s.id = id) t.servers

let fail_server t id =
  match find_server t id with
  | None -> invalid_arg "Control_plane.fail_server: unknown server"
  | Some s -> s.failed <- true

let restore_server t id =
  match find_server t id with
  | None -> invalid_arg "Control_plane.restore_server: unknown server"
  | Some s -> s.failed <- false

let server_failed t id = match find_server t id with Some s -> s.failed | None -> false

let server_ids t = List.map (fun s -> s.id) t.servers

(* Remaining capacity in the unit the strategy compares: free boards for
   bare metal, free threads for virtual. Failed servers offer none. *)
let headroom server ~substrate =
  if server.failed then 0
  else
    match (server.kind, substrate) with
    | Bm_server { boards; _ }, Bare_metal -> boards - server.used_boards
    | Vm_server { sellable_threads }, Virtual -> sellable_threads - server.used_threads
    | Bm_server _, Virtual | Vm_server _, Bare_metal -> 0

(* The per-host ceiling shrinks what each server will sell: a Bm base
   with [ceiling 0.9] and 16 boards sells at most 14, a Vm host with 88
   threads sells at most 79. Since sold threads never exceed
   [floor (ceiling * capacity)], per-host thread utilization never
   exceeds the ceiling. *)
let allowed_boards server boards = int_of_float (server.ceiling *. float_of_int boards)

let allowed_threads server threads = int_of_float (server.ceiling *. float_of_int threads)

let try_place_on server ~vcpus ~substrate =
  if server.failed then None
  else
    match (server.kind, substrate) with
  | Bm_server { boards; board_threads }, Bare_metal
    when server.used_boards < allowed_boards server boards && board_threads >= vcpus ->
    server.used_boards <- server.used_boards + 1;
    server.used_threads <- server.used_threads + board_threads;
    Some { server = server.id; substrate = Bare_metal; threads = board_threads }
  | Vm_server { sellable_threads }, Virtual
    when allowed_threads server sellable_threads - server.used_threads >= vcpus ->
    server.used_threads <- server.used_threads + vcpus;
    Some { server = server.id; substrate = Virtual; threads = vcpus }
  | (Bm_server _ | Vm_server _), (Bare_metal | Virtual) -> None

let capacity_of = function
  | Bm_server { boards; board_threads } -> boards * board_threads
  | Vm_server { sellable_threads } -> sellable_threads

let sellable_threads t =
  List.fold_left (fun acc s -> if s.failed then acc else acc + capacity_of s.kind) 0 t.servers

let used_threads t = List.fold_left (fun acc s -> acc + s.used_threads) 0 t.servers

let server_utilization t id =
  match find_server t id with
  | None -> 0.0
  | Some s ->
    let cap = capacity_of s.kind in
    if cap = 0 then 0.0 else float_of_int s.used_threads /. float_of_int cap

let server_ceiling t id = match find_server t id with Some s -> s.ceiling | None -> 1.0

(* Headroom-based admission: a placement that would push fleet thread
   utilization past the ceiling is refused even though the server could
   physically host it — production control planes keep slack for failure
   evacuation and load spikes rather than packing to 100%. *)
let over_ceiling t =
  t.admission_ceiling < 1.0
  && float_of_int (used_threads t)
     > (t.admission_ceiling *. float_of_int (sellable_threads t)) +. 1e-9

(* The per-class counterpart of [over_ceiling]: a class with a ceiling
   set may not hold more than that fraction of fleet thread capacity.
   Classless placements and classes without a ceiling are never over. *)
let over_class t ~cls ~threads =
  match cls with
  | None -> false
  | Some c -> (
    match Hashtbl.find_opt t.class_ceilings c with
    | None -> false
    | Some frac ->
      float_of_int (class_used_of t c + threads)
      > (frac *. float_of_int (sellable_threads t)) +. 1e-9)

let class_utilization t ~cls =
  let cap = sellable_threads t in
  if cap = 0 then 0.0 else float_of_int (class_used_of t cls) /. float_of_int cap

let undo_placement server placement =
  match placement.substrate with
  | Bare_metal ->
    server.used_boards <- server.used_boards - 1;
    server.used_threads <- server.used_threads - placement.threads
  | Virtual -> server.used_threads <- server.used_threads - placement.threads

let place t ~name ~vcpus ?prefer ?(strategy = First_fit) ?(avoid = []) ?cls ~image () =
  if Hashtbl.mem t.instances name then Error (name ^ " already placed")
  else begin
    let substrates = match prefer with Some s -> [ s ] | None -> [ Bare_metal; Virtual ] in
    let ceiling_hit = ref false in
    let class_hit = ref false in
    (* Order candidate servers by strategy: first-fit keeps declaration
       order; best-fit packs the fullest feasible server; spread
       balances onto the emptiest. [avoid] (anti-affinity) removes
       servers from consideration entirely. *)
    let eligible =
      match avoid with
      | [] -> t.servers
      | avoid -> List.filter (fun s -> not (List.mem s.id avoid)) t.servers
    in
    let candidates substrate =
      match strategy with
      | First_fit -> eligible
      | Best_fit ->
        List.stable_sort
          (fun a b -> compare (headroom a ~substrate) (headroom b ~substrate))
          eligible
      | Spread ->
        List.stable_sort
          (fun a b -> compare (headroom b ~substrate) (headroom a ~substrate))
          eligible
    in
    let rec scan = function
      | [] ->
        if !ceiling_hit then begin
          t.admission_rejections <- t.admission_rejections + 1;
          Error
            (Printf.sprintf "admission ceiling %.0f%% reached" (t.admission_ceiling *. 100.0))
        end
        else if !class_hit then begin
          t.class_rejections <- t.class_rejections + 1;
          Error
            (Printf.sprintf "class ceiling reached for %s"
               (Option.value ~default:"?" cls))
        end
        else Error "no capacity for request"
      | substrate :: rest ->
        let rec over_servers = function
          | [] -> scan rest
          | server :: others -> (
            match try_place_on server ~vcpus ~substrate with
            | Some placement ->
              if over_ceiling t then begin
                undo_placement server placement;
                ceiling_hit := true;
                over_servers others
              end
              else if over_class t ~cls ~threads:placement.threads then begin
                undo_placement server placement;
                class_hit := true;
                over_servers others
              end
              else begin
                Hashtbl.replace t.instances name { placement; vcpus; image; cls };
                class_charge t cls placement.threads;
                Ok placement
              end
            | None -> over_servers others)
        in
        over_servers (candidates substrate)
    in
    scan substrates
  end

let lookup t name = Option.map (fun r -> r.placement) (Hashtbl.find_opt t.instances name)

(* Retag a placed instance with a class, moving its threads between the
   class accounts. Lets a classifier installed after placement backfill
   class accounting for the existing fleet. Never refuses: ceilings
   bind on future placements, not on retags. *)
let reclassify t ~name ~cls =
  match Hashtbl.find_opt t.instances name with
  | None -> ()
  | Some r ->
    class_charge t r.cls (-r.placement.threads);
    class_charge t (Some cls) r.placement.threads;
    Hashtbl.replace t.instances name { r with cls = Some cls }

let release t name =
  match Hashtbl.find_opt t.instances name with
  | None -> ()
  | Some { placement; cls; _ } ->
    Hashtbl.remove t.instances name;
    class_charge t cls (-placement.threads);
    List.iter
      (fun server ->
        if server.id = placement.server then begin
          match placement.substrate with
          | Bare_metal ->
            server.used_boards <- server.used_boards - 1;
            server.used_threads <- server.used_threads - placement.threads
          | Virtual -> server.used_threads <- server.used_threads - placement.threads
        end)
      t.servers

let cold_migrate t ~name ~to_ =
  match Hashtbl.find_opt t.instances name with
  | None -> Error (name ^ " not placed")
  | Some { vcpus; image; placement; cls } ->
    if placement.substrate = to_ then Error "already on that substrate"
    else begin
      release t name;
      match place t ~name ~vcpus ~prefer:to_ ?cls ~image () with
      | Ok p -> Ok p
      | Error e ->
        (* Roll back: restore the previous placement. *)
        List.iter
          (fun server ->
            if server.id = placement.server then begin
              match placement.substrate with
              | Bare_metal ->
                server.used_boards <- server.used_boards + 1;
                server.used_threads <- server.used_threads + placement.threads
              | Virtual -> server.used_threads <- server.used_threads + placement.threads
            end)
          t.servers;
        Hashtbl.replace t.instances name { placement; vcpus; image; cls };
        class_charge t cls placement.threads;
        Error e
    end

(* Re-place every instance of a failed server, in name order so the
   outcome is deterministic. Each victim tries its own substrate first
   (a bm-guest whose board survived can live-migrate within the bm
   fleet; a vm restarts warm on another virtualization server), then
   falls back to the other substrate — the cold-migration path. *)
let evacuate t ~server ?(strategy = First_fit) () =
  fail_server t server;
  let victims =
    Hashtbl.fold
      (fun name r acc -> if r.placement.server = server then (name, r) :: acc else acc)
      t.instances []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.map
    (fun (name, { placement; vcpus; image; cls }) ->
      release t name;
      let try_sub sub = place t ~name ~vcpus ~prefer:sub ~strategy ?cls ~image () in
      let result =
        match try_sub placement.substrate with
        | Ok p -> Ok p
        | Error _ ->
          let other =
            match placement.substrate with Bare_metal -> Virtual | Virtual -> Bare_metal
          in
          try_sub other
      in
      (name, result))
    victims

let placements t =
  Hashtbl.fold (fun name r acc -> (name, r.placement) :: acc) t.instances []
  |> List.sort compare
