lib/workloads/redis_bench.mli: Bm_engine Bm_guest
