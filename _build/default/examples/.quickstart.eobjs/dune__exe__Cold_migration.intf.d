examples/cold_migration.mli:
