(** IO-Bond packet-processing offload (§6).

    "We plan to add more network-related functions in IO-Bond to offload
    the packet processing from the bm-hypervisor so that lower-cost CPUs
    can be used by the base." This module is that plan: a flow table in
    the FPGA. The first packet of a flow takes the slow path through the
    bm-hypervisor's PMD thread, which installs a rule; subsequent packets
    are classified and forwarded entirely in hardware, costing no base
    CPU (cf. the Azure SmartNIC design the paper cites). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] flow-table entries (default 2048 — FPGA TCAM-sized).
    Installation beyond capacity evicts the least recently installed
    rule. *)

val capacity : t -> int
val occupancy : t -> int

val classify : t -> Bm_virtio.Packet.t -> [ `Offloaded | `Slow_path ]
(** Look the packet's flow (src, dst, protocol) up; counts a hit or a
    miss. *)

val install : t -> Bm_virtio.Packet.t -> unit
(** Install the packet's flow after slow-path processing. Idempotent. *)

val remove_flow : t -> src:int -> dst:int -> unit
(** Invalidate a rule (e.g. after migration re-addressing). *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val fpga_forward_ns : float
(** In-FPGA per-packet pipeline cost for an offloaded packet (latency
    only — no base-core time). *)
