lib/cloud/tap.ml: Bm_engine Bm_virtio Packet Sim
