lib/hw/dma.ml: Bm_engine Float Pcie Sim
