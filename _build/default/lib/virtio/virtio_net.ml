open Bm_engine

let header_bytes = 12
let rx_buf_bytes = 1536

(* Placeholder payload for posted rx buffers; replaced by the device via
   [Vring.set_payload] before completion. *)
let dummy_packet = Packet.make ~id:(-1) ~src:(-1) ~dst:(-1) ~size:1 ~protocol:Packet.Udp ~sent_at:0.0 ()

type t = {
  pci : Virtio_pci.t;
  tx : Packet.t Vring.t;
  rx : Packet.t Vring.t;
  mutable notify_tx : unit -> unit;
  mutable notify_rx : unit -> unit;
  mutable interrupt : unit -> unit;
  mutable tx_sent : int;
  mutable rx_received : int;
  mutable tx_dropped : int;
  obs : Obs.t;
}

let create ?(obs = Obs.none) ?(queue_size = 256) ~on_access () =
  let tx = Vring.create ~size:queue_size in
  let rx = Vring.create ~size:queue_size in
  Vring.set_obs tx ~track:"virtio.net.tx" obs;
  Vring.set_obs rx ~track:"virtio.net.rx" obs;
  {
    pci = Virtio_pci.create ~kind:Virtio_pci.Net ~num_queues:2 ~queue_size ~on_access;
    tx;
    rx;
    notify_tx = ignore;
    notify_rx = ignore;
    interrupt = ignore;
    tx_sent = 0;
    rx_received = 0;
    tx_dropped = 0;
    obs;
  }

let pci t = t.pci
let tx_ring t = t.tx
let rx_ring t = t.rx

let set_notify t ~tx ~rx =
  t.notify_tx <- tx;
  t.notify_rx <- rx

let set_interrupt t f = t.interrupt <- f
let fire_interrupt t = t.interrupt ()

let probe t =
  match Virtio_pci.probe t.pci ~driver_features:Feature.default_net with
  | Ok (_features, _queues, _size) -> Ok ()
  | Error e -> Error e

let xmit t ?(indirect = false) pkt =
  match Vring.add t.tx ~indirect ~out:[ header_bytes; pkt.Packet.size ] ~in_:[] pkt with
  | Some _head ->
    t.tx_sent <- t.tx_sent + 1;
    Trace.instant_opt (Obs.trace t.obs) ~track:"virtio.net.tx" "kick" ~now:(Obs.now t.obs);
    t.notify_tx ();
    true
  | None ->
    t.tx_dropped <- t.tx_dropped + 1;
    Metrics.incr_opt (Obs.metrics t.obs) "virtio.net.tx_dropped";
    false

let refill_rx t ~target =
  let rec go added =
    (* Buffers usable by the device = outstanding minus completed-unreaped. *)
    if Vring.in_flight_requests t.rx - Vring.used_pending t.rx >= target then added
    else
      match Vring.add t.rx ~out:[] ~in_:[ header_bytes; rx_buf_bytes ] dummy_packet with
      | Some _ -> go (added + 1)
      | None -> added
  in
  go 0

let reap_tx t =
  let rec go n = match Vring.pop_used t.tx with Some _ -> go (n + 1) | None -> n in
  go 0

let reap_rx t =
  let rec go acc =
    match Vring.pop_used t.rx with
    | Some (pkt, _written) ->
      t.rx_received <- t.rx_received + 1;
      go (pkt :: acc)
    | None -> List.rev acc
  in
  let pkts = go [] in
  (match pkts with
  | [] -> ()
  | _ :: _ ->
    Metrics.mark_opt (Obs.metrics t.obs) ~n:(List.length pkts) "virtio.net.rx_pkts"
      ~now:(Obs.now t.obs));
  pkts

let tx_sent t = t.tx_sent
let rx_received t = t.rx_received
let tx_dropped t = t.tx_dropped
