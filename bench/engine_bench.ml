(* Engine performance benchmark: measures the host-side cost of the
   simulator itself — not simulated latencies — and writes the numbers
   to a JSON file (BENCH_engine.json at the repo root is the committed
   baseline).

   Usage:
     engine_bench.exe [--quick] [--seed N] [--out FILE]

   Four sections:
     hot_lane   events/sec of zero-delay self-rescheduling callbacks
                (FIFO hot lane) vs the same chains with a 1 ns delay
                (binary-heap lane)
     pmd_batch  wall-clock of a UDP PPS run between two bm-guests with
                the PMD drained one descriptor per fiber (batch=1, the
                bit-identical default) vs burst-of-32
     sweep      a 4-cell quick experiment sweep with --jobs 1 vs
                --jobs 4, including a structural-equality check of the
                outcomes
     cells      per-cell wall seconds at jobs=1

   Simulated results are unchanged by any of this except pmd_batch with
   batch>1, which legitimately serialises each burst (documented in
   DESIGN.md "Engine performance"). *)

open Bm_engine

let quick = ref false
let seed = ref 2020
let out_file = ref "BENCH_engine.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s -> seed := s
      | None ->
        prerr_endline "--seed expects an integer";
        exit 2);
      parse rest
    | "--out" :: f :: rest ->
      out_file := f;
      parse rest
    | a :: _ ->
      Printf.eprintf "unknown argument %S\n" a;
      prerr_endline "usage: engine_bench.exe [--quick] [--seed N] [--out FILE]";
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* --- hot lane vs heap ------------------------------------------------ *)

(* [chains] outstanding callbacks, each rescheduling itself with the
   given delay until the shared budget drains. delay=0 keeps every event
   in the FIFO hot lane; delay=1 ns forces every event through the
   binary heap at ~10k occupancy. *)
let lane_events_per_sec ~delay ~chains ~events =
  let sim = Sim.create () in
  let remaining = ref events in
  let rec cb () =
    if !remaining > 0 then begin
      decr remaining;
      Sim.schedule sim ~delay cb
    end
  in
  for _ = 1 to chains do
    Sim.schedule sim ~delay cb
  done;
  let (), dt = time (fun () -> Sim.run sim) in
  (float_of_int (Sim.events_executed sim) /. dt, Sim.events_executed sim, dt)

(* --- PMD batching ----------------------------------------------------- *)

let pmd_run ~batch ~duration =
  let tb = Bm_workload.Testbed.make ~seed:!seed () in
  let server =
    Bm_hyp.Bm_hypervisor.create_server ~obs:tb.Bm_workload.Testbed.obs tb.Bm_workload.Testbed.sim
      tb.Bm_workload.Testbed.rng ~fabric:tb.Bm_workload.Testbed.fabric
      ~storage:tb.Bm_workload.Testbed.storage ~batch ()
  in
  let unlimited = Bm_cloud.Limits.unlimited_net () in
  let g name =
    match Bm_hyp.Bm_hypervisor.provision server ~name ~net_limits:unlimited () with
    | Ok i -> i
    | Error e -> failwith e
  in
  let a = g "a" and b = g "b" in
  (* udp_pps drives Sim.run itself: call it from scheduler context.
     Sixteen senders of single-packet descriptors keep the shadow vring
     deep enough that the PMD's poll-tick bursts have something to
     coalesce. *)
  let r, wall_s =
    time (fun () ->
        Bm_workload.Netperf.udp_pps tb.Bm_workload.Testbed.sim ~src:a ~dst:b ~senders:16
          ~batch:1 ~duration ())
  in
  (r.Bm_workload.Netperf.received_pps, Sim.events_executed tb.Bm_workload.Testbed.sim, wall_s)

(* --- parallel sweep --------------------------------------------------- *)

let sweep_ids = [ "fig9"; "fig10"; "fig11"; "sec6" ]

let sweep ~jobs =
  time (fun () -> Bmhive.Experiments.run_many ~quick:true ~seed:!seed ~jobs sweep_ids)

let cell_seconds () =
  List.map
    (fun id ->
      let _, s = time (fun () -> Bmhive.Experiments.run_one ~quick:true ~seed:!seed id) in
      (id, s))
    sweep_ids

(* --- driver ----------------------------------------------------------- *)

let progress fmt = Printf.ksprintf (fun m -> prerr_endline ("[engine_bench] " ^ m)) fmt

let () =
  let chains = 10_000 in
  let events = if !quick then 200_000 else 2_000_000 in
  progress "hot lane: %d chains, %d events" chains events;
  let hot_eps, hot_events, hot_s = lane_events_per_sec ~delay:0.0 ~chains ~events in
  progress "heap lane";
  let heap_eps, heap_events, heap_s = lane_events_per_sec ~delay:1.0 ~chains ~events in
  let duration = if !quick then 2_000_000.0 else 20_000_000.0 in
  progress "pmd batch=1 (%.0f ms simulated)" (duration /. 1e6);
  let pps1, ev1, wall1 = pmd_run ~batch:1 ~duration in
  progress "pmd batch=32";
  let pps32, ev32, wall32 = pmd_run ~batch:32 ~duration in
  progress "sweep --jobs 1";
  let r1, sweep1_s = sweep ~jobs:1 in
  progress "sweep --jobs 4";
  let r4, sweep4_s = sweep ~jobs:4 in
  let identical = r1 = r4 in
  progress "per-cell timings";
  let cells = cell_seconds () in
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"seed\": %d,\n" !seed;
  p "  \"quick\": %b,\n" !quick;
  p "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"hot_lane\": {\n";
  p "    \"chains\": %d,\n" chains;
  p "    \"zero_delay\": { \"events\": %d, \"wall_s\": %.4f, \"events_per_sec\": %.0f },\n"
    hot_events hot_s hot_eps;
  p "    \"heap\": { \"events\": %d, \"wall_s\": %.4f, \"events_per_sec\": %.0f },\n" heap_events
    heap_s heap_eps;
  p "    \"speedup\": %.2f\n" (hot_eps /. heap_eps);
  p "  },\n";
  p "  \"pmd_batch\": {\n";
  p "    \"batch_1\": { \"received_pps\": %.0f, \"events\": %d, \"wall_s\": %.4f },\n" pps1 ev1
    wall1;
  p "    \"batch_32\": { \"received_pps\": %.0f, \"events\": %d, \"wall_s\": %.4f },\n" pps32 ev32
    wall32;
  p "    \"event_reduction\": %.2f,\n" (float_of_int ev1 /. float_of_int ev32);
  p "    \"wall_speedup\": %.2f\n" (wall1 /. wall32);
  p "  },\n";
  p "  \"sweep\": {\n";
  p "    \"ids\": [%s],\n" (String.concat ", " (List.map (Printf.sprintf "%S") sweep_ids));
  p "    \"jobs_1_wall_s\": %.4f,\n" sweep1_s;
  p "    \"jobs_4_wall_s\": %.4f,\n" sweep4_s;
  p "    \"wall_speedup\": %.2f,\n" (sweep1_s /. sweep4_s);
  p "    \"outcomes_identical\": %b\n" identical;
  p "  },\n";
  p "  \"cells\": {\n";
  List.iteri
    (fun i (id, s) ->
      p "    %S: %.4f%s\n" id s (if i = List.length cells - 1 then "" else ","))
    cells;
  p "  }\n";
  p "}\n";
  let oc = open_out !out_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "engine bench: hot lane %.2fx heap; pmd batch32 %.2fx wall; sweep --jobs 4 %.2fx \
                 (%d domain(s) recommended); outcomes identical: %b\n"
    (hot_eps /. heap_eps) (wall1 /. wall32) (sweep1_s /. sweep4_s)
    (Domain.recommended_domain_count ())
    identical;
  Printf.printf "written: %s\n" !out_file
