(** Conservative parallel discrete-event simulation across {!Sim.t}
    shards (hosts partitioned by rack, tenant, or any cut with latency
    between the parts).

    The scheme is the synchronous conservative window protocol (YAWNS):
    each round computes [t_min], the earliest pending event across all
    shards, and [w = t_min + L] where [L] is the minimum conduit
    lookahead; every shard then executes its events strictly before [w]
    — in parallel on up to [domains] OCaml domains, because within the
    window the shards share nothing. A cross-shard message sent inside
    the window arrives no earlier than its send time plus the conduit's
    lookahead, hence no earlier than [w]: parallel window execution is
    exact. At the barrier, buffered messages merge in [(arrival,
    src_shard, src_seq)] order — a total order — and are injected into
    destination agendas, so the whole run is byte-identical for any
    domain count, including [domains = 1].

    Lookahead is the model's honesty about physics: a Fabric link with
    propagation delay [d] between two shards yields a conduit with
    [lookahead_ns = d]. Positive lookahead also guarantees progress —
    every round executes at least the events at [t_min] — so shrinking
    a conduit's lookahead mid-run (a spine link going dark, leaving a
    slower alternate path as the bound) narrows windows but never
    deadlocks.

    Model discipline: state reachable from a shard's events must belong
    to that shard alone; cross-shard interaction goes through {!send}.
    The scheduler cannot check this — a shared mutable counter touched
    from two shards is a data race under [domains >= 2] and a silent
    determinism leak even under one. *)

type t
(** A sharded simulation: one {!Sim.t} per shard plus the conduit
    graph. *)

type conduit
(** A directed cross-shard edge with a positive lookahead: a promise
    that every message sent on it has [delay >= lookahead]. *)

val create : shards:int -> unit -> t
(** [create ~shards ()] makes [shards] independent simulators (at least
    one). Raises [Invalid_argument] otherwise. *)

val shards : t -> int

val sim : t -> int -> Sim.t
(** The [i]-th shard's simulator, for spawning processes and local
    scheduling. Raises [Invalid_argument] out of range. *)

val spawn : t -> int -> (unit -> unit) -> unit
(** [spawn t i body] is [Sim.spawn (sim t i) body]. *)

val conduit : t -> src:int -> dst:int -> lookahead_ns:float -> conduit
(** Declare a directed cross-shard edge. [lookahead_ns] must be
    strictly positive and [src <> dst] (local events need no conduit);
    raises [Invalid_argument] otherwise. *)

val lookahead : conduit -> float

val set_lookahead : conduit -> float -> unit
(** Retune a conduit's lookahead (still strictly positive), e.g. when a
    link failure reroutes traffic onto a path with different latency.
    Takes effect at the next window computation. *)

val send : t -> conduit -> delay:float -> (unit -> unit) -> unit
(** [send t c ~delay fn] schedules [fn] on the conduit's destination
    shard at [now src + delay]. Must be called from an event running on
    the source shard; [delay] must be [>= lookahead c] (raises
    [Invalid_argument] below it — an undeclared fast path would break
    the conservative bound). The message buffers in the source shard's
    outbox and is injected at the next barrier. *)

val run : ?domains:int -> ?until:float -> t -> unit
(** Run rounds of window-compute / parallel-execute / barrier-merge
    until every agenda drains or all pending events lie past [until]
    (absolute ns, inclusive — matching [Sim.run ~until], after which
    every shard clock is parked at [until]). [domains] (default 1, i.e.
    sequential) caps the OCaml domains used per window; output is
    byte-identical regardless of its value. *)

val next_event_time : t -> float
(** Earliest pending event across all shards ([infinity] if drained). *)

type stats = {
  shards : int;
  rounds : int;  (** windows executed *)
  cross_messages : int;  (** messages merged at barriers *)
  min_window_ns : float;
      (** narrowest lookahead that bounded a window ([infinity] if no
          bounded window ever ran) *)
  lookahead_ns : float;  (** min conduit lookahead at the last round *)
}

val stats : t -> stats
