let exit_multiplier = 20.0
let cpu_efficiency = 0.80
let io_efficiency = 0.25

let dilate_cpu natural = natural /. cpu_efficiency
let dilate_io natural = natural /. io_efficiency

(* One native exit (~10 us handled) becomes [exit_multiplier] exits of
   ~1.2 us average under nesting (most replayed exits are lightweight).
   Efficiency = useful time / (useful + exit time). *)
let derived_cpu_efficiency ~exit_rate_per_s =
  let nested_exit_cost_ns = exit_multiplier *. 1_200.0 in
  let overhead_per_s = exit_rate_per_s *. nested_exit_cost_ns in
  1e9 /. (1e9 +. overhead_per_s)
