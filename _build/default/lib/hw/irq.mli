(** Interrupt delivery.

    A bm-guest receives genuine MSI interrupts from IO-Bond (Fig. 6 step
    "get a MSI interrupt once Rx data arrived"); a vm-guest receives
    *injected* virtual interrupts, which cost a VM exit/entry round trip
    on top of the wire latency. The handler runs as a fresh simulation
    process after the delivery delay. *)

type t

val create :
  Bm_engine.Sim.t -> ?delivery_ns:float -> ?handler_ns:float -> unit -> t
(** [delivery_ns] (default 500): wire + LAPIC latency of one MSI.
    [handler_ns] (default 1500): kernel ISR + softirq cost charged to the
    receiving guest by the caller (exposed for that purpose). *)

val delivery_ns : t -> float
val handler_ns : t -> float
val raised_count : t -> int

val raise_irq : t -> handler:(unit -> unit) -> unit
(** Deliver one interrupt: after [delivery_ns], run [handler] as a new
    process. Callable from process or scheduler context. *)
