lib/engine/rng.mli:
