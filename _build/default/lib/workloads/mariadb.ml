open Bm_engine
open Bm_virtio
open Bm_guest

type pattern = Read_only | Write_only | Read_write

type result = { pattern : pattern; qps : float; avg_ms : float; p99_ms : float; queries : int }

(* Application-level request tag marking write queries (Rpc reserves
   tags < 8 for its own control traffic). *)
let write_tag = 8

let pattern_name = function
  | Read_only -> "read-only"
  | Write_only -> "write-only"
  | Read_write -> "read/write"

(* Serialised group commit: queries join the open batch; a single
   flusher writes the redo log (one flush in flight at a time, as a real
   redo log behaves) and wakes the whole batch. *)
type group_commit = {
  sim : Sim.t;
  instance : Instance.t;
  max_batch : int;
  flush_bytes : int;
  mutable batch : unit Sim.Ivar.ivar list;
  mutable flushing : bool;
}

(* Take up to [max_batch] waiters (oldest first) for one flush. *)
let take_batch gc =
  let all = List.rev gc.batch in
  let rec split i acc = function
    | rest when i = gc.max_batch -> (List.rev acc, List.rev rest)
    | [] -> (List.rev acc, [])
    | w :: rest -> split (i + 1) (w :: acc) rest
  in
  let batch, rest = split 0 [] all in
  gc.batch <- List.rev rest;
  batch

let rec flusher gc =
  match take_batch gc with
  | [] -> gc.flushing <- false
  | waiters ->
    ignore (gc.instance.Instance.blk ~op:`Write ~bytes_:gc.flush_bytes);
    (* The leader wakes the committed group on other cores. *)
    gc.instance.Instance.ipi ();
    List.iter (fun ivar -> Sim.Ivar.fill ivar ()) waiters;
    flusher gc

let join_commit gc =
  let ivar = Sim.Ivar.create () in
  gc.batch <- ivar :: gc.batch;
  if not gc.flushing then begin
    gc.flushing <- true;
    Sim.fork (fun () -> flusher gc)
  end;
  Sim.Ivar.read ivar

let serve sim rng instance ?(tables = 16) ?(rows_per_table = 1_000_000) ?(read_cpu_ns = 150_000.0)
    ?(write_cpu_ns = 95_000.0) ?(group_commit_max = 8) () =
  (* ~256 bytes per row of hot data: 16 tables x 1M rows ~ 4 GB pool. *)
  let working_set = float_of_int (tables * rows_per_table) *. 256.0 in
  let gc =
    {
      sim;
      instance;
      max_batch = group_commit_max;
      flush_bytes = 32 * 1024;
      batch = [];
      flushing = false;
    }
  in
  (* Row-lock stripes: a writer holds its stripe through the commit
     flush, so slower flushes (the vm path) keep locks held longer and
     delay the readers that hash to the same stripe — this is what makes
     the mixed workload's gap exceed the write-only one (Fig. 14). *)
  let stripes = Array.init 64 (fun _ -> Sim.Resource.create ~capacity:1) in
  let stripe_of req = stripes.(req.Packet.id mod Array.length stripes) in
  Rpc.attach_server instance ~service:(fun req ->
      (* A worker picks the query up from the connection thread. *)
      instance.Instance.ipi ();
      let is_write = req.Packet.tag = write_tag in
      ignore rng;
      if is_write then begin
        Sim.Resource.with_resource (stripe_of req) (fun () ->
            instance.Instance.exec_mem_ns ~working_set ~locality:0.80 write_cpu_ns;
            join_commit gc);
        { Rpc.reply_bytes = 64; reply_packets = 1 }
      end
      else begin
        Sim.Resource.with_resource (stripe_of req) (fun () ->
            instance.Instance.exec_mem_ns ~working_set ~locality:0.80 read_cpu_ns);
        { Rpc.reply_bytes = 512; reply_packets = 1 }
      end)

let sysbench sim ~client ~server ?(threads = 128) ~pattern ~duration () =
  let rpc = Rpc.create_client sim client in
  let rng = Rng.create ~seed:97 in
  let hist = Stats.Histogram.create ~lo:10_000.0 ~hi:1e10 () in
  let completed = ref 0 in
  let warmup = Simtime.ms 2.0 in
  let stop_at = Sim.now sim +. warmup +. duration in
  let pick_write () =
    match pattern with
    | Read_only -> false
    | Write_only -> true
    | Read_write -> Rng.bernoulli rng ~p:0.30
  in
  for i = 1 to threads do
    Sim.spawn sim (fun () ->
        Sim.delay (warmup +. (float_of_int i *. 10_000.0));
        let rec next () =
          if Sim.clock () < stop_at then begin
            let write = pick_write () in
            (match
               Rpc.call rpc ~dst:server.Instance.endpoint ~request_bytes:200
                 ~tag:(if write then write_tag else 0) ()
             with
            | `Reply latency ->
              Stats.Histogram.add hist latency;
              incr completed
            | `Timeout -> ());
            next ()
          end
        in
        next ())
  done;
  Sim.run ~until:(stop_at +. Simtime.ms 50.0) sim;
  {
    pattern;
    qps = float_of_int !completed /. Simtime.to_sec duration;
    avg_ms = Stats.Histogram.mean hist /. 1e6;
    p99_ms = Stats.Histogram.percentile hist 99.0 /. 1e6;
    queries = !completed;
  }
