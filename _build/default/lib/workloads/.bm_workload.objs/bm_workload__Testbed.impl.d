lib/workloads/testbed.ml: Blockstore Bm_cloud Bm_engine Bm_guest Bm_hw Bm_hyp Bm_hypervisor Kvm Obs Option Physical Preempt Rng Sim Vswitch
