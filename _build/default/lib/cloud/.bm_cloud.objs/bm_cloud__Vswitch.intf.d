lib/cloud/vswitch.mli: Bm_engine Bm_hw Bm_virtio
