lib/hypervisor/ept.ml: Bm_hw
