test/test_observability.ml: Alcotest Astring Bm_engine Bm_guest Bm_workload Bmhive Buffer Float Gen Hashtbl List Metrics Option Printf QCheck QCheck_alcotest Sim Stats String Testbed Trace
