(* Tests for the conservative sharded scheduler (Bm_engine.Shard).

   The workhorse is a synthetic host-partitioned traffic model whose
   observables are commutative (per-host packet counts and xor
   checksums over arrival timestamps), so they must come out
   byte-identical whatever the shard count, the domain count, or
   whether the plain sequential [Sim] runs the whole thing — the
   arrival times depend only on (src, dst) host pairs, never on the
   partitioning. *)

open Bm_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Synthetic traffic model *)

type plan = {
  hosts : int;
  base_lookahead : float;  (* min cross-host latency = conduit lookahead *)
  packets : (float * int) array array;  (* per src host: (send time, dst) *)
}

let make_plan ~seed ~hosts ~per_host =
  let rng = Rng.create ~seed in
  let packets =
    Array.init hosts (fun _ ->
        let r = Rng.split rng in
        Array.init per_host (fun _ ->
            let at = Rng.float r 1000.0 in
            let dst = Rng.int r hosts in
            (at, dst)))
  in
  { hosts; base_lookahead = 10.0; packets }

(* Pairwise latency depends only on host identities — NOT on the
   sharding — and never dips below the conduit lookahead. *)
let latency plan ~src ~dst =
  plan.base_lookahead +. float_of_int (((src * 7) + (dst * 13)) mod 23)

let mix time_bits tag =
  let x = Int64.add (Int64.mul 0x9E3779B97F4A7C15L time_bits) (Int64.of_int tag) in
  Int64.logxor x (Int64.shift_right_logical x 31)

type outcome = { counts : int array; sums : int64 array }

let record o ~dst ~src ~k ~now =
  o.counts.(dst) <- o.counts.(dst) + 1;
  o.sums.(dst) <- Int64.logxor o.sums.(dst) (mix (Int64.bits_of_float now) ((src * 1021) + k))

let outcome_equal a b = a.counts = b.counts && a.sums = b.sums

(* Reference: the whole fleet on one plain [Sim.t], no Shard involved. *)
let run_reference plan =
  let sim = Sim.create () in
  let o = { counts = Array.make plan.hosts 0; sums = Array.make plan.hosts 0L } in
  Array.iteri
    (fun src pkts ->
      Array.iteri
        (fun k (at, dst) ->
          Sim.schedule sim ~delay:at (fun () ->
              Sim.schedule sim
                ~delay:(latency plan ~src ~dst)
                (fun () -> record o ~dst ~src ~k ~now:(Sim.now sim))))
        pkts)
    plan.packets;
  Sim.run sim;
  o

(* The same model on [shards] shards (host h lives on shard h mod
   shards), full conduit mesh. [shrink] optionally halves every conduit
   lookahead at t=500 — the declared bound tightens but stays below
   every actual latency, so results must not move (only window sizes
   do). *)
let run_sharded ?(domains = 1) ?(shrink = false) ~shards plan =
  let t = Shard.create ~shards () in
  let o = { counts = Array.make plan.hosts 0; sums = Array.make plan.hosts 0L } in
  let shard_of h = h mod shards in
  let conduits =
    Array.init shards (fun a ->
        Array.init shards (fun b ->
            if a = b then None
            else Some (Shard.conduit t ~src:a ~dst:b ~lookahead_ns:plan.base_lookahead)))
  in
  Array.iteri
    (fun src pkts ->
      let src_sim = Shard.sim t (shard_of src) in
      Array.iteri
        (fun k (at, dst) ->
          Sim.schedule src_sim ~delay:at (fun () ->
              let lat = latency plan ~src ~dst in
              let deliver () =
                record o ~dst ~src ~k ~now:(Sim.now (Shard.sim t (shard_of dst)))
              in
              if shard_of dst = shard_of src then Sim.schedule src_sim ~delay:lat deliver
              else Shard.send t (Option.get conduits.(shard_of src).(shard_of dst)) ~delay:lat deliver))
        pkts)
    plan.packets;
  if shrink then begin
    Shard.run ~domains ~until:500.0 t;
    Array.iter
      (Array.iter (function
        | Some c -> Shard.set_lookahead c (plan.base_lookahead /. 2.0)
        | None -> ()))
      conduits
  end;
  Shard.run ~domains t;
  (o, Shard.stats t)

(* ------------------------------------------------------------------ *)
(* QCheck: byte-identical across shard counts, domain counts, and vs
   the plain sequential engine, on random traffic plans. *)

let prop_shard_identical =
  QCheck.Test.make ~name:"shards {1,2,4} x domains {1,2} == sequential Sim" ~count:40
    QCheck.(triple (int_range 2 12) (int_range 1 12) small_nat)
    (fun (hosts, per_host, seed) ->
      let plan = make_plan ~seed ~hosts ~per_host in
      let reference = run_reference plan in
      List.for_all
        (fun (shards, domains) ->
          let got, stats = run_sharded ~domains ~shards plan in
          outcome_equal reference got
          && stats.Shard.shards = shards
          && (shards > 1 || stats.Shard.cross_messages = 0))
        [ (1, 1); (2, 1); (2, 2); (4, 1); (4, 2) ])

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let soak_plan () = make_plan ~seed:2020 ~hosts:8 ~per_host:40

let test_shard_matches_reference () =
  let plan = soak_plan () in
  let reference = run_reference plan in
  let got1, stats1 = run_sharded ~shards:1 plan in
  let got4, stats4 = run_sharded ~shards:4 plan in
  check_bool "shards=1 == reference" true (outcome_equal reference got1);
  check_bool "shards=4 == reference" true (outcome_equal reference got4);
  check_int "shards=1 sends nothing cross-shard" 0 stats1.Shard.cross_messages;
  check_bool "shards=4 crosses" true (stats4.Shard.cross_messages > 0);
  check_bool "windows bounded by lookahead" true
    (stats4.Shard.min_window_ns = plan.base_lookahead)

let test_domains_dont_matter () =
  let plan = soak_plan () in
  let got1, _ = run_sharded ~shards:4 ~domains:1 plan in
  let got2, _ = run_sharded ~shards:4 ~domains:2 plan in
  let got4, _ = run_sharded ~shards:4 ~domains:4 plan in
  check_bool "domains=2 == domains=1" true (outcome_equal got1 got2);
  check_bool "domains=4 == domains=1" true (outcome_equal got1 got4)

let test_dark_link_shrinks_but_completes () =
  let plan = soak_plan () in
  let baseline, stats_a = run_sharded ~shards:4 plan in
  let shrunk, stats_b = run_sharded ~shards:4 ~shrink:true plan in
  (* The declared lookahead tightened mid-run; the conservative bound is
     still sound (actual latencies unchanged), so results are identical
     — only the windows narrow and the round count grows. *)
  check_bool "same outcome under shrunk lookahead" true (outcome_equal baseline shrunk);
  check_bool "windows narrowed" true
    (stats_b.Shard.min_window_ns = plan.base_lookahead /. 2.0);
  check_bool "more rounds, not a wedge" true (stats_b.Shard.rounds >= stats_a.Shard.rounds)

let test_run_until_parks_clocks () =
  let t = Shard.create ~shards:2 () in
  let hits = ref 0 in
  Sim.schedule (Shard.sim t 0) ~delay:100.0 (fun () -> incr hits);
  Sim.schedule (Shard.sim t 1) ~delay:900.0 (fun () -> incr hits);
  Shard.run ~until:500.0 t;
  check_int "only the early event ran" 1 !hits;
  Alcotest.(check (float 0.0)) "shard 0 clock" 500.0 (Sim.now (Shard.sim t 0));
  Alcotest.(check (float 0.0)) "shard 1 clock" 500.0 (Sim.now (Shard.sim t 1));
  Alcotest.(check (float 0.0)) "next event" 900.0 (Shard.next_event_time t);
  Shard.run t;
  check_int "rest runs on resume" 2 !hits

let test_validation () =
  let t = Shard.create ~shards:2 () in
  let raises f = try f () ; false with Invalid_argument _ -> true in
  check_bool "zero shards" true (raises (fun () -> ignore (Shard.create ~shards:0 ())));
  check_bool "self conduit" true
    (raises (fun () -> ignore (Shard.conduit t ~src:0 ~dst:0 ~lookahead_ns:1.0)));
  check_bool "zero lookahead" true
    (raises (fun () -> ignore (Shard.conduit t ~src:0 ~dst:1 ~lookahead_ns:0.0)));
  check_bool "out of range" true
    (raises (fun () -> ignore (Shard.conduit t ~src:0 ~dst:7 ~lookahead_ns:1.0)));
  let c = Shard.conduit t ~src:0 ~dst:1 ~lookahead_ns:5.0 in
  check_bool "send below lookahead" true
    (raises (fun () -> Shard.send t c ~delay:4.0 (fun () -> ())));
  check_bool "shrink to zero" true (raises (fun () -> Shard.set_lookahead c 0.0));
  Shard.set_lookahead c 2.5;
  Alcotest.(check (float 0.0)) "retuned" 2.5 (Shard.lookahead c)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "engine.shard",
      [
        Alcotest.test_case "matches sequential reference" `Quick test_shard_matches_reference;
        Alcotest.test_case "domain count is unobservable" `Quick test_domains_dont_matter;
        Alcotest.test_case "dark link shrinks lookahead, no wedge" `Quick
          test_dark_link_shrinks_but_completes;
        Alcotest.test_case "run ~until parks clocks" `Quick test_run_until_parks_clocks;
        Alcotest.test_case "argument validation" `Quick test_validation;
      ] );
    qsuite "engine.shard.prop" [ prop_shard_identical ];
  ]
