lib/engine/obs.ml: Metrics Sim Trace
