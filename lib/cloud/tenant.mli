(** Multi-tenant accounting: per-tenant quotas and fine-grain metering.

    The innabox multi-tenant design the roadmap points at wants strongly
    isolated per-tenant clusters with fine-grain metering and
    bare-metal-on-demand; the control plane's unit of isolation here is
    the quota (how much a tenant may hold) and the meter (what it has
    consumed). A tenant is admission state, not a datapath object: the
    {!Scheduler} checks {!admit} before placing and {!release} when an
    instance is freed, and the live fleet drives {!meter} as simulated
    time passes. Meters are mirrored into {!Bm_engine.Obs} counters
    (["cloud.tenant.<name>.guest_s" / ".bytes" / ".ios"]), so metric
    cardinality is bounded by the tenant count, never by run length. *)

type quota = {
  max_guests : int;  (** concurrent instances the tenant may hold *)
  max_vcpus : int;  (** concurrent vCPUs across those instances *)
}

val unlimited : quota

type t

val create : ?obs:Bm_engine.Obs.t -> name:string -> quota -> t

val name : t -> string
val quota : t -> quota

val admit : t -> vcpus:int -> (unit, string) result
(** Reserve one guest slot and [vcpus] vCPUs against the quota; the
    error names the exhausted dimension and counts as a rejection. *)

val release : t -> vcpus:int -> unit
(** Return one guest slot and [vcpus] vCPUs. Raises [Invalid_argument]
    if the tenant holds no guest (a release/admit imbalance). *)

val guests : t -> int
(** Guest slots currently held. *)

val vcpus : t -> int
val rejections : t -> int

val meter : t -> ?guest_ns:float -> ?bytes:float -> ?ios:float -> unit -> unit
(** Accumulate consumption: guest-nanoseconds of occupancy, bytes moved,
    I/O operations. Also bumps the mirrored [Obs] counters (guest time
    is recorded in seconds there). *)

val guest_seconds : t -> float
val bytes : t -> float
val ios : t -> float

val row : t -> string list
(** [name; guests; vcpus; guest-s; bytes; ios; rejections] — shaped for
    {!Report}-style tables. *)

val row_header : string list
