(** Memory-virtualization (EPT/two-dimensional paging) overhead.

    A TLB miss under nested paging walks both the guest page table and
    the EPT — up to 24 memory accesses versus 4 natively (§5, [31]).
    This module turns a workload's memory profile into the execution-time
    dilation a vm-guest experiences, using the shared {!Bm_hw.Tlb}
    model. *)

val accesses_per_ns : float
(** Memory accesses issued per ns of compute on the reference core
    (~one access every 2 ns for integer server code). *)

val dilation_factor :
  ?obs:Bm_engine.Obs.t ->
  Bm_hw.Tlb.t ->
  virtualized:bool ->
  working_set:float ->
  locality:float ->
  float
(** Multiplicative execution-time factor (≥ 1). For [virtualized:false]
    this is the native page-walk cost, already part of baseline
    performance; the vm overhead is the ratio of the two factors. With
    [obs], virtualized factors feed the ["hyp.ept.dilation"]
    histogram. *)

val vm_overhead :
  Bm_hw.Tlb.t -> working_set:float -> locality:float -> float
(** Fractional slowdown of a vm-guest versus native for this profile:
    [factor(virt)/factor(native) - 1]. *)
