open Bm_engine

(* Flag bits from the virtio 1.1 spec. *)
let f_next = 0x1
let f_write = 0x2
let f_avail = 1 lsl 7
let f_used = 1 lsl 15

type desc = { mutable addr : int; mutable len : int; mutable id : int; mutable flags : int }

type 'a chain = { id : int; out : (int * int) list; in_ : (int * int) list; payload : 'a }

type 'a slot = {
  mutable s_out : (int * int) list;
  mutable s_in : (int * int) list;
  mutable s_payload : 'a option;
  mutable s_ndesc : int;
  mutable s_popped : bool;
}

type 'a t = {
  size : int;
  ring : desc array;
  slots : 'a slot array; (* per buffer id *)
  mutable free_ids : int list;
  mutable free_slots : int;
  (* driver publish side *)
  mutable next_avail : int;
  mutable avail_wrap : bool;
  (* device consume side *)
  mutable next_peek : int;
  mutable peek_wrap : bool;
  (* device completion-write side *)
  mutable next_used_write : int;
  mutable used_write_wrap : bool;
  (* driver completion-read side *)
  mutable next_used_read : int;
  mutable used_read_wrap : bool;
  mutable added : int;
  mutable popped : int;
  mutable completed : int;
  mutable reclaimed : int;
  mutable next_addr : int;
  mutable obs : Obs.t;
  mutable track : string;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~size =
  if not (is_power_of_two size && size >= 2 && size <= 32768) then
    invalid_arg "Packed_ring.create: size must be a power of two in [2, 32768]";
  {
    size;
    ring = Array.init size (fun _ -> { addr = 0; len = 0; id = -1; flags = 0 });
    slots =
      Array.init size (fun _ ->
          { s_out = []; s_in = []; s_payload = None; s_ndesc = 0; s_popped = false });
    free_ids = List.init size (fun i -> i);
    free_slots = size;
    next_avail = 0;
    avail_wrap = true;
    next_peek = 0;
    peek_wrap = true;
    next_used_write = 0;
    used_write_wrap = true;
    next_used_read = 0;
    used_read_wrap = true;
    added = 0;
    popped = 0;
    completed = 0;
    reclaimed = 0;
    next_addr = 0x1000;
    obs = Obs.none;
    track = "virtio.packed";
  }

let set_obs t ~track obs =
  t.obs <- obs;
  t.track <- track

let size t = t.size
let num_free t = t.free_slots
let in_flight_requests t = t.added - t.reclaimed
let avail_pending t = t.added - t.popped
let used_pending t = t.completed - t.reclaimed

let alloc_addr t len =
  let a = t.next_addr in
  t.next_addr <- t.next_addr + ((len + 0xFFF) land lnot 0xFFF);
  a

(* Wrap-aware flag encoding: a descriptor is driver-available when
   AVAIL = wrap and USED = inverse(wrap); device-used when both equal the
   device's used wrap counter. *)
let avail_flags ~wrap = if wrap then f_avail else f_used
let used_flags ~wrap = if wrap then f_avail lor f_used else 0

let is_avail flags ~wrap =
  (flags land f_avail <> 0) = wrap && (flags land f_used <> 0) = not wrap

let is_used flags ~wrap = (flags land f_avail <> 0) = wrap && (flags land f_used <> 0) = wrap

let advance t index wrap n =
  let i = index + n in
  if i >= t.size then (i - t.size, not wrap) else (i, wrap)

let add t ~out ~in_ payload =
  let nsegs = List.length out + List.length in_ in
  if nsegs = 0 then invalid_arg "Packed_ring.add: at least one segment required";
  if nsegs > t.free_slots then None
  else
    match t.free_ids with
    | [] -> None
    | id :: rest ->
      t.free_ids <- rest;
      let out_segs = List.map (fun len -> (alloc_addr t len, len)) out in
      let in_segs = List.map (fun len -> (alloc_addr t len, len)) in_ in
      let segs =
        List.map (fun s -> (false, s)) out_segs @ List.map (fun s -> (true, s)) in_segs
      in
      List.iteri
        (fun k (write, (addr, len)) ->
          let slot_index = (t.next_avail + k) mod t.size in
          (* The wrap counter flips for slots past the ring boundary. *)
          let wrap = if t.next_avail + k >= t.size then not t.avail_wrap else t.avail_wrap in
          let d = t.ring.(slot_index) in
          d.addr <- addr;
          d.len <- len;
          d.id <- id;
          d.flags <-
            avail_flags ~wrap
            lor (if write then f_write else 0)
            lor if k < nsegs - 1 then f_next else 0)
        segs;
      let slot = t.slots.(id) in
      slot.s_out <- out_segs;
      slot.s_in <- in_segs;
      slot.s_payload <- Some payload;
      slot.s_ndesc <- nsegs;
      slot.s_popped <- false;
      t.free_slots <- t.free_slots - nsegs;
      let next, wrap = advance t t.next_avail t.avail_wrap nsegs in
      t.next_avail <- next;
      t.avail_wrap <- wrap;
      t.added <- t.added + 1;
      Trace.instant_opt (Obs.trace t.obs) ~track:t.track "add" ~now:(Obs.now t.obs);
      Metrics.incr_opt (Obs.metrics t.obs) "virtio.packed.add";
      Some id

let pop_avail t =
  let d = t.ring.(t.next_peek) in
  if not (is_avail d.flags ~wrap:t.peek_wrap) then None
  else begin
    let id = d.id in
    let slot = t.slots.(id) in
    (match slot.s_payload with
    | None -> invalid_arg "Packed_ring.pop_avail: corrupted descriptor id"
    | Some _ -> ());
    slot.s_popped <- true;
    let next, wrap = advance t t.next_peek t.peek_wrap slot.s_ndesc in
    t.next_peek <- next;
    t.peek_wrap <- wrap;
    t.popped <- t.popped + 1;
    match slot.s_payload with
    | Some payload -> Some { id; out = slot.s_out; in_ = slot.s_in; payload }
    | None -> None
  end

let set_payload t ~id payload =
  let slot = t.slots.(id) in
  match slot.s_payload with
  | None -> invalid_arg "Packed_ring.set_payload: id not outstanding"
  | Some _ -> slot.s_payload <- Some payload

let push_used t ~id ~written =
  let slot = t.slots.(id) in
  if not slot.s_popped then invalid_arg "Packed_ring.push_used: id not popped";
  slot.s_popped <- false;
  let d = t.ring.(t.next_used_write) in
  d.id <- id;
  d.len <- written;
  d.flags <- used_flags ~wrap:t.used_write_wrap;
  let next, wrap = advance t t.next_used_write t.used_write_wrap slot.s_ndesc in
  t.next_used_write <- next;
  t.used_write_wrap <- wrap;
  t.completed <- t.completed + 1;
  Trace.instant_opt (Obs.trace t.obs) ~track:t.track "used" ~now:(Obs.now t.obs);
  Metrics.incr_opt (Obs.metrics t.obs) "virtio.packed.used"

let pop_used t =
  let d = t.ring.(t.next_used_read) in
  if not (is_used d.flags ~wrap:t.used_read_wrap) then None
  else begin
    let id = d.id in
    let written = d.len in
    let slot = t.slots.(id) in
    match slot.s_payload with
    | None -> invalid_arg "Packed_ring.pop_used: stale used entry"
    | Some payload ->
      slot.s_payload <- None;
      t.free_slots <- t.free_slots + slot.s_ndesc;
      t.free_ids <- id :: t.free_ids;
      let next, wrap = advance t t.next_used_read t.used_read_wrap slot.s_ndesc in
      t.next_used_read <- next;
      t.used_read_wrap <- wrap;
      t.reclaimed <- t.reclaimed + 1;
      slot.s_ndesc <- 0;
      Some (payload, written)
  end

let check_invariants t =
  let live_descs =
    Array.fold_left
      (fun acc s -> if s.s_payload <> None then acc + s.s_ndesc else acc)
      0 t.slots
  in
  if t.free_slots + live_descs <> t.size then
    Error
      (Printf.sprintf "descriptor leak: free=%d live=%d size=%d" t.free_slots live_descs t.size)
  else if List.length t.free_ids + (t.added - t.reclaimed) <> t.size then
    Error "buffer id leak"
  else if t.popped > t.added || t.completed > t.popped || t.reclaimed > t.completed then
    Error "counter ordering violated"
  else Ok ()
