(** Deterministic datacenter network fabric.

    The layer between per-server vswitches that the single-server model
    short-circuits: hosts attach to ToR switches, ToRs to a spine tier
    ({!Topology}), and every directed edge is a store-and-forward link
    with finite bandwidth, propagation latency and a bounded drop-tail
    FIFO ({!Bm_engine.Sim.Bounded}), so congestion shows up as queueing
    delay first and loss second — not as an analytic rate cap.

    Multi-path routing is hash-based ECMP: a flow (src endpoint, dst
    endpoint, protocol, tag) hashes to one spine via a seed drawn from
    the fabric's RNG at construction, so path choice is stable for the
    life of a flow, identical across runs of the same seed, and spread
    across spines between flows. Packets of one flow therefore never
    reorder; different flows contend only where their paths share links.

    Everything runs on the simulation agenda: same seed + same topology
    + same offered traffic ⇒ bit-identical delivery order. *)

module Topology = Topology

type t

val create : ?obs:Bm_engine.Obs.t -> Bm_engine.Sim.t -> Bm_engine.Rng.t -> Topology.t -> t
(** Build the link graph and spawn one drain process per link. The RNG
    seeds the ECMP hash (one draw; the generator is not retained). With
    [obs], each link records its queue depth (histogram
    ["fabric.link.<name>.depth"] and a trace counter on track
    ["fabric.<name>"]), delivered bytes (meter
    ["fabric.link.<name>.bytes"]) and drops (counter
    ["fabric.link.<name>.dropped"]), plus fabric-wide
    ["fabric.injected"] / ["fabric.delivered"] / ["fabric.dropped"]
    counters. Recording is pure observation. *)

val topology : t -> Topology.t

val attach : t -> int
(** Claim the next free host port, in call order (deterministic): the
    first attach is host 0. Raises [Invalid_argument] once every host
    of the topology is taken. *)

val hosts_attached : t -> int

val link_names : t -> string list
(** Every directed link name, in the {!link_stats} order. *)

val fail_link : t -> name:string -> unit
(** Take one directed link down: every burst subsequently offered to it
    is dropped there (counted on the link and fabric-wide, [on_drop]
    fires) until {!repair_link}. Bursts already queued on the link when
    it fails continue to drain — the failure cuts admission, not work in
    flight, so accounting stays conservative. ECMP does {e not} route
    around a failed link: flows hashed onto it keep dying, which is
    exactly the blast radius a game-day scenario wants to measure.
    Idempotent; raises [Invalid_argument] on an unknown name. *)

val repair_link : t -> name:string -> unit
(** Bring a failed link back. Idempotent. *)

val link_up : t -> name:string -> bool

val links_down : t -> int
(** Directed links currently failed. *)

val send :
  t ->
  src_host:int ->
  dst_host:int ->
  ?on_drop:(Bm_virtio.Packet.t -> unit) ->
  deliver:(Bm_virtio.Packet.t -> unit) ->
  Bm_virtio.Packet.t ->
  unit
(** Inject a burst at [src_host]'s uplink; [deliver] fires (in scheduler
    context) when the last hop's propagation completes. A burst that
    meets a full queue at any hop is dropped there, counted on that
    link, and reported to [on_drop] (also scheduler context) — exactly
    once, since drop-tail discards the arriving burst. Never blocks, so
    it is safe from both process and scheduler context.
    [src_host = dst_host] delivers immediately (no wire). Raises
    [Invalid_argument] for hosts outside the topology. *)

val path_names : t -> src_host:int -> dst_host:int -> Bm_virtio.Packet.t -> string list
(** The link names the given burst would traverse (ECMP-resolved). *)

val path_latency_ns : t -> src_host:int -> dst_host:int -> bytes:int -> float
(** Uncongested one-way latency of a [bytes]-sized burst between two
    hosts: the sum of per-link serialization and propagation along the
    path. Independent of the ECMP choice (spine links are uniform). *)

val path_capacity_gbit_s : t -> src_host:int -> dst_host:int -> float
(** Bottleneck bandwidth of the path (min link rate). *)

val injected : t -> int
(** Wire packets accepted by {!send} (burst-weighted). *)

val delivered : t -> int

val dropped : t -> int
(** Wire packets lost to full queues, over all links. *)

type link_stat = {
  name : string;  (** e.g. ["host0->tor0"], ["tor1->spine0"] *)
  gbit_s : float;
  utilization : float;  (** busy serialization time / elapsed time *)
  depth_p99 : float;  (** p99 of enqueue-time queue depth (min bucket 1) *)
  sent_bursts : int;  (** bursts offered to this link's queue (incl. dropped) *)
  delivered_bursts : int;  (** bursts serialized and forwarded *)
  dropped_bursts : int;  (** bursts drop-tailed at this link's queue *)
  delivered_pkts : int;
  dropped_pkts : int;
  queued : int;  (** bursts still in the queue *)
}

val link_stats : t -> now:float -> link_stat list
(** One entry per directed link, in a fixed order (host uplinks, host
    downlinks, ToR→spine, spine→ToR). Each link conserves
    [sent_bursts = delivered_bursts + dropped_bursts + queued]; at
    quiescence [queued = 0]. *)

val absorb : t -> from:t -> unit
(** [absorb t ~from] folds a quiesced replica's traffic counters into
    [t]: fabric-wide injected/delivered/dropped plus per-link packet,
    byte and busy-time sums. The sharded fleet serve runs its east-west
    flows on per-shard fabric replicas (same topology and ECMP seed,
    own simulator each) and folds the tallies back, so fabric-wide
    accounting matches a single-fabric run exactly in the drop-free
    regime the fleet experiments assert. Queue-depth histograms and
    burst-queue conservation counters are per-queue-instance state and
    are deliberately not folded. Raises [Invalid_argument] on a
    topology mismatch. *)

type pressure = {
  link : string;
  spine : bool;  (** ToR→spine or spine→ToR (the shared tier) *)
  queued_bursts : int;  (** bursts in the egress queue right now *)
  dropped_pkts_total : int;  (** cumulative drop counter *)
}

val queue_pressure : t -> pressure list
(** The congestion signal a closed-loop degradation policy samples
    every SLO window: instantaneous queue depth plus the cumulative
    drop counter per directed link, in the {!link_stats} order. Pure
    observation (no histogram scans, no simulation operations), cheap
    enough to poll at window granularity. *)
