type t = { now : unit -> float; trace : Trace.t option; metrics : Metrics.t option }

let none = { now = (fun () -> 0.0); trace = None; metrics = None }
let create ?trace ?metrics ~now () = { now; trace; metrics }
let of_sim ?trace ?metrics sim = { now = (fun () -> Sim.now sim); trace; metrics }
let now t = t.now ()
let clock t = t.now
let trace t = t.trace
let metrics t = t.metrics
let enabled t = t.trace <> None || t.metrics <> None
