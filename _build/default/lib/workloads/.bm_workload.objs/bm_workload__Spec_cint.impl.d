lib/workloads/spec_cint.ml: Bm_engine Bm_guest Instance List Sim
