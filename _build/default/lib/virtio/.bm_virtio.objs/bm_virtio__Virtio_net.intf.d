lib/virtio/virtio_net.mli: Packet Virtio_pci Vring
