lib/hw/pcie.mli: Bm_engine
