lib/iobond/profile.ml: Format
