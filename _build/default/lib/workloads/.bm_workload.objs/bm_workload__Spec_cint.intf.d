lib/workloads/spec_cint.mli: Bm_engine Bm_guest
