(* Tests for the datacenter fabric: topology validation, ECMP path
   selection, idle-path latency arithmetic, drop-tail accounting, and
   the three headline properties — run-to-run determinism, per-link
   conservation, and the on-host fast path staying byte-identical when
   a topology is attached. *)

open Bm_engine
open Bm_virtio
module Fabric = Bm_fabric.Fabric
module Topology = Bm_fabric.Topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_pkt ?(count = 1) ?(size = 1500) ?(protocol = Packet.Udp) ?(tag = 0) ~src ~dst id =
  Packet.make ~id ~src ~dst ~size ~count ~protocol ~tag ~sent_at:0.0 ()

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_validation () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "hosts < tors" true (raises (fun () -> Topology.clos ~hosts:2 ~tors:3 ~spines:1 ()));
  check_bool "no spine behind 2 tors" true
    (raises (fun () -> Topology.clos ~hosts:4 ~tors:2 ~spines:0 ()));
  check_bool "zero hosts" true (raises (fun () -> Topology.clos ~hosts:0 ~tors:0 ~spines:0 ()));
  let t = Topology.two_host () in
  check_int "two_host hosts" 2 t.Topology.hosts;
  check_int "two_host tors" 1 t.Topology.tors;
  check_int "two_host spines" 0 t.Topology.spines

let test_topology_tor_blocks () =
  let t = Topology.clos ~hosts:6 ~tors:3 ~spines:1 () in
  Alcotest.(check (list int))
    "contiguous blocks" [ 0; 0; 1; 1; 2; 2 ]
    (List.init 6 (fun h -> Topology.tor_of t ~host:h))

let test_topology_spec_roundtrip () =
  (match Topology.parse_spec "two_host" with
  | Ok t -> check_int "preset hosts" 2 t.Topology.hosts
  | Error e -> Alcotest.fail e);
  (match Topology.parse_spec "hosts=4,tors=2,spines=2,spine_gbit=10,queue=32" with
  | Ok t ->
    check_int "hosts" 4 t.Topology.hosts;
    check_int "queue" 32 t.Topology.spine_link.Topology.queue_capacity;
    (* render must parse back to the same topology *)
    (match Topology.parse_spec (Topology.render t) with
    | Ok t' -> check_bool "render/parse roundtrip" true (t = t')
    | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  check_bool "bad key rejected" true
    (match Topology.parse_spec "hosts=4,frobs=2" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Fabric mechanics *)

let test_attach_order_and_exhaustion () =
  let sim = Sim.create () in
  let fab = Fabric.create sim (Rng.create ~seed:1) (Topology.two_host ()) in
  check_int "first port" 0 (Fabric.attach fab);
  check_int "second port" 1 (Fabric.attach fab);
  check_int "attached" 2 (Fabric.hosts_attached fab);
  match Fabric.attach fab with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attach beyond the topology accepted"

let test_same_host_is_free () =
  let sim = Sim.create () in
  let fab = Fabric.create sim (Rng.create ~seed:1) (Topology.two_host ()) in
  let at = ref nan in
  Sim.spawn sim (fun () ->
      Sim.delay 500.0;
      Fabric.send fab ~src_host:0 ~dst_host:0
        ~deliver:(fun _ -> at := Sim.now sim)
        (mk_pkt ~src:1 ~dst:2 1));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "delivered at send time" 500.0 !at;
  check_int "no wire traffic" 0 (Fabric.injected fab)

(* An idle fabric delivers exactly at the analytic path latency — the
   store-and-forward pipeline degenerates to a sum of per-link
   serialization + propagation when nothing queues. *)
let idle_latency topo ~src_host ~dst_host =
  let sim = Sim.create () in
  let fab = Fabric.create sim (Rng.create ~seed:3) topo in
  let at = ref nan in
  Sim.spawn sim (fun () ->
      Fabric.send fab ~src_host ~dst_host
        ~deliver:(fun _ -> at := Sim.now sim)
        (mk_pkt ~src:10 ~dst:20 1));
  Sim.run sim;
  (!at, Fabric.path_latency_ns fab ~src_host ~dst_host ~bytes:1500)

let test_idle_latency_matches_analytic () =
  let measured, expected = idle_latency (Topology.two_host ()) ~src_host:0 ~dst_host:1 in
  Alcotest.(check (float 1e-6)) "same-tor path" expected measured;
  let measured, expected =
    idle_latency (Topology.clos ~hosts:4 ~tors:2 ~spines:2 ()) ~src_host:0 ~dst_host:3
  in
  Alcotest.(check (float 1e-6)) "cross-tor path" expected measured

let test_ecmp_stable_and_spread () =
  let topo = Topology.clos ~hosts:4 ~tors:2 ~spines:4 () in
  let sim = Sim.create () in
  let fab = Fabric.create sim (Rng.create ~seed:42) topo in
  let flow = mk_pkt ~protocol:Packet.Tcp ~src:7 ~dst:9 1 in
  let p0 = Fabric.path_names fab ~src_host:0 ~dst_host:3 flow in
  check_int "cross-tor path has 4 hops" 4 (List.length p0);
  for _ = 1 to 10 do
    check_bool "flow keeps its path" true
      (Fabric.path_names fab ~src_host:0 ~dst_host:3 flow = p0)
  done;
  (* same seed => same salt => same choice in a fresh fabric *)
  let fab' = Fabric.create (Sim.create ()) (Rng.create ~seed:42) topo in
  check_bool "seed reproduces the path" true
    (Fabric.path_names fab' ~src_host:0 ~dst_host:3 flow = p0);
  (* distinct flows spread over every spine *)
  let used = Array.make 4 false in
  for f = 1 to 256 do
    let names =
      Fabric.path_names fab ~src_host:0 ~dst_host:3
        (mk_pkt ~protocol:Packet.Tcp ~src:f ~dst:(f * 13) ~tag:(f mod 5) f)
    in
    List.iter
      (fun n ->
        for s = 0 to 3 do
          if n = Printf.sprintf "tor0->spine%d" s then used.(s) <- true
        done)
      names
  done;
  check_bool "all spines used" true (Array.for_all Fun.id used);
  (* same-tor traffic never climbs to the spine *)
  check_int "same-tor path has 2 hops" 2
    (List.length (Fabric.path_names fab ~src_host:0 ~dst_host:1 flow))

let test_drop_tail_accounting () =
  let sim = Sim.create () in
  let topo = Topology.two_host ~queue_capacity:2 () in
  let fab = Fabric.create sim (Rng.create ~seed:5) topo in
  let delivered = ref 0 and dropped = ref 0 in
  Sim.spawn sim (fun () ->
      for i = 1 to 50 do
        Fabric.send fab ~src_host:0 ~dst_host:1
          ~on_drop:(fun _ -> incr dropped)
          ~deliver:(fun _ -> incr delivered)
          (mk_pkt ~src:1 ~dst:2 i)
      done);
  Sim.run sim;
  check_bool "queue of 2 sheds a 50-burst blast" true (!dropped > 0);
  check_int "on_drop fires once per loss" !dropped (Fabric.dropped fab);
  check_int "deliver fires for the rest" !delivered (Fabric.delivered fab);
  check_int "conservation" (Fabric.injected fab) (Fabric.delivered fab + Fabric.dropped fab)

let test_fabric_metrics_and_trace () =
  let sim = Sim.create () in
  let metrics = Metrics.create () in
  let trace = Trace.create () in
  let obs = Obs.of_sim ~trace ~metrics sim in
  let fab =
    Fabric.create ~obs sim (Rng.create ~seed:5) (Topology.two_host ~queue_capacity:2 ())
  in
  Sim.spawn sim (fun () ->
      for i = 1 to 50 do
        Fabric.send fab ~src_host:0 ~dst_host:1 ~deliver:(fun _ -> ()) (mk_pkt ~src:1 ~dst:2 i)
      done);
  Sim.run sim;
  check_int "fabric.injected counter" (Fabric.injected fab)
    (int_of_float (Metrics.counter_value metrics "fabric.injected"));
  check_int "fabric.delivered counter" (Fabric.delivered fab)
    (int_of_float (Metrics.counter_value metrics "fabric.delivered"));
  check_int "fabric.dropped counter" (Fabric.dropped fab)
    (int_of_float (Metrics.counter_value metrics "fabric.dropped"));
  check_bool "per-link drop counter" true
    (Metrics.counter_value metrics "fabric.link.host0->tor0.dropped" > 0.0);
  check_bool "drop instants traced" true
    (Trace.count trace ~track:"fabric.host0->tor0" ~name:"drop" () > 0)

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Shared generator: a topology shape plus a traffic schedule, split
   round-robin over three sender fibers so the agenda interleaves. *)
let topo_arb =
  QCheck.(quad (int_range 2 6) (int_range 1 3) (int_range 1 3) (int_range 1 16))

let sends_arb =
  QCheck.(
    list_of_size (Gen.int_range 1 60) (quad small_nat small_nat (int_bound 23) (int_bound 10)))

let build_topo (hosts, tors, spines, queue) =
  Topology.clos ~hosts ~tors:(min tors hosts) ~spines ~queue_capacity:queue ()

let lanes n sends =
  let a = Array.make n [] in
  List.iteri (fun i x -> a.(i mod n) <- (i, x) :: a.(i mod n)) sends;
  List.filter (fun l -> l <> []) (Array.to_list (Array.map List.rev a))

(* Drive [sends] through a fresh fabric; returns the fabric, the final
   simulation time, and the full (kind, id, time) event log. *)
let run_traffic ~seed topo sends =
  let sim = Sim.create () in
  let fab = Fabric.create sim (Rng.create ~seed) topo in
  let hosts = topo.Topology.hosts in
  let log = ref [] in
  let record kind id = log := (kind, id, Sim.now sim) :: !log in
  List.iteri
    (fun lane sends ->
      Sim.spawn sim (fun () ->
          List.iter
            (fun (i, (s, d, sz, gap)) ->
              Fabric.send fab ~src_host:(s mod hosts) ~dst_host:(d mod hosts)
                ~on_drop:(fun p -> record `Drop p.Packet.id)
                ~deliver:(fun p -> record `Del p.Packet.id)
                (mk_pkt
                   ~size:(64 + (64 * sz))
                   ~src:(1000 + (lane * 100) + s)
                   ~dst:(2000 + d)
                   ((lane * 1000) + i));
              Sim.delay (float_of_int gap *. 40.0))
            sends))
    (lanes 3 sends);
  Sim.run sim;
  (fab, Sim.now sim, List.rev !log)

(* (a) Same seed + same topology + same offered traffic => the entire
   event log — ids, drop/deliver outcomes, and timestamps — repeats. *)
let prop_determinism =
  QCheck.Test.make ~name:"same seed + topology => identical delivery order" ~count:50
    (QCheck.pair topo_arb sends_arb)
    (fun (shape, sends) ->
      let topo = build_topo shape in
      let _, t1, l1 = run_traffic ~seed:11 topo sends in
      let _, t2, l2 = run_traffic ~seed:11 topo sends in
      t1 = t2 && l1 = l2)

(* (b) Every wire packet is accounted for: fabric-wide
   injected = delivered + dropped, per link
   sent = delivered + dropped + queued with empty queues at
   quiescence, and the per-link drop counts sum to the fabric total. *)
let prop_conservation =
  QCheck.Test.make ~name:"injected = delivered + dropped, per link and fabric-wide" ~count:50
    (QCheck.pair topo_arb sends_arb)
    (fun (shape, sends) ->
      let topo = build_topo shape in
      let fab, now, log = run_traffic ~seed:7 topo sends in
      let hosts = topo.Topology.hosts in
      let cross =
        List.length
          (List.filter (fun (s, d, _, _) -> s mod hosts <> d mod hosts) sends)
      in
      let dels = List.length (List.filter (fun (k, _, _) -> k = `Del) log) in
      let drops = List.length (List.filter (fun (k, _, _) -> k = `Drop) log) in
      let stats = Fabric.link_stats fab ~now in
      Fabric.injected fab = cross
      && Fabric.injected fab = Fabric.delivered fab + Fabric.dropped fab
      && Fabric.delivered fab + (List.length sends - cross) = dels
      && Fabric.dropped fab = drops
      && Fabric.dropped fab
         = List.fold_left (fun acc s -> acc + s.Fabric.dropped_pkts) 0 stats
      && List.for_all
           (fun s ->
             s.Fabric.queued = 0
             && s.Fabric.sent_bursts
                = s.Fabric.delivered_bursts + s.Fabric.dropped_bursts + s.Fabric.queued)
           stats)

(* (c) Attaching a topology must not perturb the on-host fast path:
   traffic between endpoints of one vswitch produces the identical
   (port, id, time) arrival log with and without a fabric behind it. *)
let onhost_log ~with_net sends =
  let sim = Sim.create () in
  let net =
    if with_net then
      Some (Fabric.create sim (Rng.create ~seed:99) (Topology.two_host ()))
    else None
  in
  let fabric = Bm_cloud.Vswitch.create_fabric sim ?net () in
  let cores = Bm_hw.Cores.create sim ~spec:Bm_hw.Cpu_spec.base_server_e5 () in
  let vs = Bm_cloud.Vswitch.create sim ~fabric ~cores () in
  let log = ref [] in
  let a = Bm_cloud.Vswitch.register vs ~deliver:(fun p -> log := (0, p.Packet.id, Sim.now sim) :: !log) in
  let b = Bm_cloud.Vswitch.register vs ~deliver:(fun p -> log := (1, p.Packet.id, Sim.now sim) :: !log) in
  Sim.spawn sim (fun () ->
      List.iteri
        (fun i (flip, sz, gap) ->
          let src, dst = if flip then (b, a) else (a, b) in
          Bm_cloud.Vswitch.send vs (mk_pkt ~size:(64 + (64 * sz)) ~src ~dst i);
          Sim.delay (float_of_int gap *. 25.0))
        sends);
  Sim.run sim;
  List.rev !log

let prop_onhost_unchanged =
  QCheck.Test.make ~name:"on-host traffic byte-identical with a fabric attached" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 50) (triple bool (int_bound 23) (int_bound 10)))
    (fun sends -> onhost_log ~with_net:false sends = onhost_log ~with_net:true sends)

(* Same claim one layer up: a full guest-to-guest workload on one
   server measures identically whether or not the testbed models a
   fabric behind it (the fabric has its own RNG stream and the co-
   resident path never touches a wire). *)
let test_testbed_onhost_unchanged () =
  let rr topology =
    let tb = Bm_workload.Testbed.make ~seed:77 ?topology () in
    let _, g1, g2 = Bm_workload.Testbed.bm_pair tb in
    Bm_workload.Netperf.tcp_rr tb.Bm_workload.Testbed.sim ~src:g1 ~dst:g2 ~count:200 ()
  in
  check_bool "bm_pair tcp_rr identical with a topology attached" true
    (rr None = rr (Some (Topology.two_host ())))

let suites =
  [
    ( "fabric.topology",
      [
        Alcotest.test_case "clos validation" `Quick test_topology_validation;
        Alcotest.test_case "tor blocks" `Quick test_topology_tor_blocks;
        Alcotest.test_case "spec roundtrip" `Quick test_topology_spec_roundtrip;
      ] );
    ( "fabric.links",
      [
        Alcotest.test_case "attach order + exhaustion" `Quick test_attach_order_and_exhaustion;
        Alcotest.test_case "same-host is free" `Quick test_same_host_is_free;
        Alcotest.test_case "idle latency analytic" `Quick test_idle_latency_matches_analytic;
        Alcotest.test_case "ecmp stable + spread" `Quick test_ecmp_stable_and_spread;
        Alcotest.test_case "drop-tail accounting" `Quick test_drop_tail_accounting;
        Alcotest.test_case "metrics + trace" `Quick test_fabric_metrics_and_trace;
        Alcotest.test_case "testbed on-host unchanged" `Quick test_testbed_onhost_unchanged;
      ] );
    ( "fabric.prop",
      List.map QCheck_alcotest.to_alcotest
        [ prop_determinism; prop_conservation; prop_onhost_unchanged ] );
  ]
