(** Virtio feature bits (the subset this reproduction exercises).

    Feature negotiation follows the virtio spec: the device offers a bit
    set, the driver acknowledges a subset, and the device accepts or
    rejects the result. *)

type t = int
(** A feature bit set. *)

val indirect_desc : t
(** VIRTIO_F_RING_INDIRECT_DESC: chained requests may live in an indirect
    table, consuming a single ring slot. *)

val event_idx : t
(** VIRTIO_F_RING_EVENT_IDX: interrupt/notification suppression. *)

val version_1 : t
(** VIRTIO_F_VERSION_1: modern device. *)

val mrg_rxbuf : t
(** VIRTIO_NET_F_MRG_RXBUF: merged receive buffers. *)

val csum_offload : t
(** VIRTIO_NET_F_CSUM. *)

val default_net : t
(** Features offered by the virtio-net devices in this repository. *)

val default_blk : t

val contains : t -> t -> bool
(** [contains set bits] is true when every bit of [bits] is in [set]. *)

val intersect : t -> t -> t
val union : t -> t -> t
val pp : Format.formatter -> t -> unit
