type t = {
  vendor_key : int;
  mutable version : string;
  mutable updates : int;
  mutable rejected : int;
}

let create ~vendor_key ~version = { vendor_key; version; updates = 0; rejected = 0 }

let version t = t.version
let update_count t = t.updates
let rejected_count t = t.rejected

(* FNV-1a over the payload, keyed by mixing the key into the state. This
   stands in for the RSA verification of the real boards. *)
let sign ~key ~payload =
  let h = ref (0xcbf29ce48422232 lxor key) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    payload;
  !h land max_int

let update t ~version ~payload ~signature =
  if sign ~key:t.vendor_key ~payload = signature then begin
    t.version <- version;
    t.updates <- t.updates + 1;
    Ok ()
  end
  else begin
    t.rejected <- t.rejected + 1;
    Error "firmware signature verification failed"
  end
