type t = {
  model : string;
  base_ghz : float;
  turbo_ghz : float;
  cores : int;
  threads : int;
  single_thread_mark : float;
  l3_mb : float;
  mem_channels : int;
  mem_mt_s : int;
  tdp_w : float;
}

(* Single-thread marks are normalised to Xeon E5-2682 v4 = 1.0, using the
   ratios the paper quotes from cpubenchmark.net: E3-1240 v6 = 1.31×
   E5-2682 v4 (§4.2) and i7-8086K = 1.6× E5-2699 v4 (§1). *)

let xeon_e5_2682_v4 =
  {
    model = "Xeon E5-2682 v4";
    base_ghz = 2.5;
    turbo_ghz = 3.0;
    cores = 16;
    threads = 32;
    single_thread_mark = 1.0;
    l3_mb = 40.0;
    mem_channels = 4;
    mem_mt_s = 2400;
    tdp_w = 120.0;
  }

let xeon_e5_2699_v4 =
  {
    model = "Xeon E5-2699 v4";
    base_ghz = 2.2;
    turbo_ghz = 3.6;
    cores = 22;
    threads = 44;
    single_thread_mark = 1.05;
    l3_mb = 55.0;
    mem_channels = 4;
    mem_mt_s = 2400;
    tdp_w = 145.0;
  }

let xeon_e5_2650_v4 =
  {
    model = "Xeon E5-2650 v4";
    base_ghz = 2.2;
    turbo_ghz = 2.9;
    cores = 12;
    threads = 24;
    single_thread_mark = 0.95;
    l3_mb = 30.0;
    mem_channels = 4;
    mem_mt_s = 2400;
    tdp_w = 105.0;
  }

let xeon_platinum_8163 =
  {
    model = "Xeon Platinum 8163";
    base_ghz = 2.5;
    turbo_ghz = 3.1;
    cores = 24;
    threads = 48;
    single_thread_mark = 1.08;
    l3_mb = 33.0;
    mem_channels = 6;
    mem_mt_s = 2666;
    (* custom cloud SKU: the paper's W/vCPU figures imply ~135 W *)
    tdp_w = 135.0;
  }

let xeon_e3_1240_v6 =
  {
    model = "Xeon E3-1240 v6";
    base_ghz = 3.7;
    turbo_ghz = 4.1;
    cores = 4;
    threads = 8;
    single_thread_mark = 1.31;
    l3_mb = 8.0;
    mem_channels = 2;
    mem_mt_s = 2400;
    tdp_w = 72.0;
  }

let core_i7_8086k =
  {
    model = "Core i7-8086K";
    base_ghz = 4.0;
    turbo_ghz = 5.0;
    cores = 6;
    threads = 12;
    single_thread_mark = 1.68;
    l3_mb = 12.0;
    mem_channels = 2;
    mem_mt_s = 2666;
    tdp_w = 95.0;
  }

let core_i7_8700 =
  {
    model = "Core i7-8700";
    base_ghz = 3.2;
    turbo_ghz = 4.6;
    cores = 6;
    threads = 12;
    single_thread_mark = 1.55;
    l3_mb = 12.0;
    mem_channels = 2;
    mem_mt_s = 2666;
    tdp_w = 65.0;
  }

let atom_c3558 =
  {
    model = "Atom C3558";
    base_ghz = 2.2;
    turbo_ghz = 2.2;
    cores = 4;
    threads = 4;
    single_thread_mark = 0.35;
    l3_mb = 8.0;
    mem_channels = 2;
    mem_mt_s = 2400;
    tdp_w = 16.0;
  }

let base_server_e5 =
  {
    model = "Xeon E5 (base board, 16 cores)";
    base_ghz = 2.5;
    turbo_ghz = 2.5;
    cores = 16;
    threads = 32;
    single_thread_mark = 1.0;
    l3_mb = 40.0;
    mem_channels = 4;
    mem_mt_s = 2400;
    tdp_w = 115.0;
  }

let all =
  [
    xeon_e5_2682_v4;
    xeon_e5_2699_v4;
    xeon_e5_2650_v4;
    xeon_platinum_8163;
    xeon_e3_1240_v6;
    core_i7_8086k;
    core_i7_8700;
    atom_c3558;
    base_server_e5;
  ]

let find model = List.find_opt (fun spec -> spec.model = model) all

let peak_mem_bw_gb_s spec =
  float_of_int spec.mem_channels *. float_of_int spec.mem_mt_s *. 8.0 /. 1000.0

let cycles_ns _spec ~ghz cycles = cycles /. ghz

let pp fmt spec =
  Format.fprintf fmt "%s (%dC/%dT @ %.1fGHz, %.0fW)" spec.model spec.cores spec.threads
    spec.base_ghz spec.tdp_w
