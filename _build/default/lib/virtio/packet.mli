(** Network packets flowing through the simulated data paths. *)

type protocol = Udp | Tcp | Icmp

type t = {
  id : int;
  src : int;  (** endpoint id of the sender *)
  dst : int;  (** endpoint id of the receiver *)
  size : int;  (** bytes on the wire, headers included — aggregate of the burst *)
  count : int;  (** number of wire packets this value represents (batch
                   aggregation, as PMD/NAPI paths process packets in
                   bursts; keeps multi-MPPS simulations tractable) *)
  protocol : protocol;
  tag : int;  (** application-level discriminator (0 = data; RPC layers
                 use it for control traffic like SYN/FIN) *)
  sent_at : float;  (** simulated timestamp at creation *)
}

val make :
  id:int -> src:int -> dst:int -> size:int -> ?count:int -> ?tag:int -> protocol:protocol ->
  sent_at:float -> unit -> t
(** [size] is the aggregate wire size of the whole burst; [count]
    defaults to 1, [tag] to 0. *)

val udp_header_bytes : int
(** Ethernet + IP + UDP headers: 14 + 20 + 8 = 42 bytes. *)

val tcp_header_bytes : int
(** Ethernet + IP + TCP headers: 14 + 20 + 20 = 54 bytes. *)

val small_udp : id:int -> src:int -> dst:int -> ?count:int -> sent_at:float -> unit -> t
(** The paper's PPS test packet: headers plus one byte of payload (§4.3);
    [count] of them aggregated as one burst. *)

val pp : Format.formatter -> t -> unit
