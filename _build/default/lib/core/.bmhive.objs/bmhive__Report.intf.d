lib/core/report.mli: Bm_engine
