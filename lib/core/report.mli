(** Plain-text tables for experiment output. *)

val table : ?title:string -> header:string list -> string list list -> string
(** Render an aligned ASCII table. *)

val print : ?title:string -> header:string list -> string list list -> unit

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string
val si : float -> string
(** Engineering notation: 3.2M, 25.0K, 14.7. *)

val pct : float -> string
(** [pct 0.0417] = "4.2%". *)

val check : paper:string -> measured:string -> ok:bool -> string list -> string list
(** Append paper-vs-measured columns and a ✓/✗ marker to a row. *)

val fabric_table : ?title:string -> Bm_fabric.Fabric.t -> now:float -> string
(** Per-link table for the datacenter fabric: utilization (serialization
    busy time over elapsed time up to [now]), queue depth p99, delivered
    and dropped wire packets, bursts still queued. *)

val tenant_table : ?title:string -> Bm_cloud.Tenant.t list -> string
(** Per-tenant accounting ({!Bm_cloud.Tenant.row}): guests, vCPUs,
    guest-seconds, bytes, IOPS, quota rejections. *)

val slo_scorecard : ?title:string -> Bm_cloud.Slo.tenant_score list -> string
(** Per-tenant SLO scorecard ({!Bm_cloud.Slo.row}): tier, resolutions,
    aggregate availability / p99 / goodput, compliant windows, met/MISS.
    The game-day determinism smoke diffs this string byte-for-byte. *)

val vf_table : ?title:string -> Bm_iobond.Vf.dev -> string
(** Per-VF table for an SR-IOV device ({!Bm_iobond.Vf.stats_rows}):
    state, owner, weight, queues, accepted / delivered / rejected,
    in-flight, bytes moved. *)

val metrics_table :
  ?title:string ->
  ?fabric:Bm_fabric.Fabric.t ->
  ?vf:Bm_iobond.Vf.dev ->
  ?now:float ->
  Bm_engine.Metrics.t ->
  string
(** Render a metrics snapshot as an aligned table (one row per
    registered counter/histogram/meter, sorted by name). With [fabric],
    a {!fabric_table} as of [now] (default 0) follows, so [--metrics]
    output covers the network layer; with [vf], a {!vf_table} of the
    device follows likewise. *)
