lib/hypervisor/bm_hypervisor.mli: Bm_cloud Bm_engine Bm_guest Bm_hw Bm_iobond
