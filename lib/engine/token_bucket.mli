(** Token-bucket rate limiter.

    Cloud instances rate-limit network PPS, network bandwidth and storage
    IOPS with token buckets (§4.1 of the paper). Tokens refill continuously
    at [rate] per second up to [burst]; a request for [n] tokens that
    cannot be satisfied immediately returns the simulated time at which it
    can proceed (lazy refill — no periodic events needed). *)

type t

val create : rate:float -> burst:float -> t
(** [create ~rate ~burst]: [rate] tokens per simulated second, bucket
    capacity [burst] tokens. The bucket starts full. *)

val unlimited : unit -> t
(** A limiter that never delays. *)

val is_unlimited : t -> bool
val rate : t -> float

val reserve : t -> now:float -> float -> float
(** [reserve t ~now n] consumes [n] tokens and returns the absolute time
    at which the consumer may proceed (≥ [now]). Consumers are expected to
    [Sim.delay] until that time; ordering fairness comes from the caller
    issuing reservations in order. *)

val available : t -> now:float -> float
(** [available t ~now] refills lazily and returns the number of tokens
    spendable right now (never negative; [infinity] when unlimited). Use
    it to probe several buckets atomically before consuming from any. *)

val try_take_n : t -> now:float -> float -> bool
(** [try_take_n t ~now n] consumes [n] tokens iff at least [n] are
    available after a lazy refill, else leaves the bucket untouched and
    returns [false]. Never blocks and never takes the balance negative —
    the shedding counterpart of {!reserve}'s unbounded debt. *)

val take : t -> float
(** [take t] = [reserve] for one token from inside a simulation process,
    followed by the corresponding delay; returns the wait imposed. *)

val take_n : t -> float -> float
(** [take_n t n]: as {!take} for [n] tokens. *)
