(** Qualitative comparison of the three cloud services (Table 1).

    The cells are derived from model properties rather than hard-coded
    prose: whether tenants share caches determines side-channel exposure,
    who holds platform control determines provider security, density
    comes from the placement model, and the performance column from the
    virtualization mechanisms each service pays. *)

type service = Vm_based | Single_tenant_bm | Bm_hive

type properties = {
  service : service;
  shares_cpu_caches : bool;  (** co-tenant data in the same L3 *)
  software_isolation_only : bool;
  tenant_controls_platform : bool;  (** unfettered firmware/BMC access *)
  cpu_mem_virtualized : bool;
  io_paravirtualized : bool;
  guests_per_server : int;
  firmware_signed : bool;
}

val properties : service -> properties

val side_channel_exposed : properties -> bool
(** Cross-tenant side channels require co-residence on shared
    micro-architectural state. *)

val provider_secure : properties -> bool
(** The provider keeps control of firmware and platform. *)

val service_name : service -> string

val rows : unit -> string list list
(** Table 1 as printable rows: service, security, isolation,
    performance, density. *)
