type instrument =
  | Counter of { mutable value : float }
  | Histogram of Stats.Histogram.t
  | Meter of Stats.Meter.t

type t = {
  table : (string, instrument) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
}

let create () = { table = Hashtbl.create 64; order = [] }
let names t = List.rev t.order
let is_empty t = t.order = []

let kind_name = function
  | Counter _ -> "counter"
  | Histogram _ -> "histogram"
  | Meter _ -> "meter"

let wrong_kind name got want =
  invalid_arg (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name got) want)

let find_or_register t name make =
  match Hashtbl.find_opt t.table name with
  | Some i -> i
  | None ->
    let i = make () in
    Hashtbl.replace t.table name i;
    t.order <- name :: t.order;
    i

let incr t ?(by = 1.0) name =
  match find_or_register t name (fun () -> Counter { value = 0.0 }) with
  | Counter c -> c.value <- c.value +. by
  | i -> wrong_kind name i "counter"

let observe t ?lo ?hi ?precision name v =
  match
    find_or_register t name (fun () -> Histogram (Stats.Histogram.create ?lo ?hi ?precision ()))
  with
  | Histogram h -> Stats.Histogram.add h v
  | i -> wrong_kind name i "histogram"

let mark t ?(n = 1) name ~now =
  match find_or_register t name (fun () -> Meter (Stats.Meter.create ())) with
  | Meter m -> Stats.Meter.mark_n m ~now n
  | i -> wrong_kind name i "meter"

let counter_value t name =
  match Hashtbl.find_opt t.table name with Some (Counter c) -> c.value | _ -> 0.0

let histogram t name =
  match Hashtbl.find_opt t.table name with Some (Histogram h) -> Some h | _ -> None

let meter t name =
  match Hashtbl.find_opt t.table name with Some (Meter m) -> Some m | _ -> None

(* Option-sink variants: exact no-ops without a registry installed. *)

let incr_opt o ?by name = match o with Some t -> incr t ?by name | None -> ()

let observe_opt o ?lo ?hi ?precision name v =
  match o with Some t -> observe t ?lo ?hi ?precision name v | None -> ()

let mark_opt o ?n name ~now = match o with Some t -> mark t ?n name ~now | None -> ()

type summary =
  | Counter_total of float
  | Histogram_summary of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
      p999 : float;
      max : float;
    }
  | Meter_rate of { count : int; per_s : float }

let summarize = function
  | Counter c -> Counter_total c.value
  | Histogram h ->
    Histogram_summary
      {
        count = Stats.Histogram.count h;
        mean = Stats.Histogram.mean h;
        p50 = Stats.Histogram.percentile h 50.0;
        p99 = Stats.Histogram.percentile h 99.0;
        p999 = Stats.Histogram.percentile h 99.9;
        max = Stats.Histogram.max h;
      }
  | Meter m -> Meter_rate { count = Stats.Meter.count m; per_s = Stats.Meter.rate m }

let snapshot t = List.map (fun name -> (name, summarize (Hashtbl.find t.table name))) (names t)

let merge a b =
  let out = create () in
  let absorb src =
    List.iter
      (fun name ->
        let i = Hashtbl.find src.table name in
        match (Hashtbl.find_opt out.table name, i) with
        | None, Counter c ->
          ignore (find_or_register out name (fun () -> Counter { value = c.value }))
        | None, Histogram h ->
          ignore (find_or_register out name (fun () -> Histogram (Stats.Histogram.copy h)))
        | None, Meter m ->
          ignore (find_or_register out name (fun () -> Meter (Stats.Meter.copy m)))
        | Some (Counter oc), Counter c -> oc.value <- oc.value +. c.value
        | Some (Histogram oh), Histogram h ->
          Hashtbl.replace out.table name (Histogram (Stats.Histogram.merge oh h))
        | Some (Meter om), Meter m ->
          Hashtbl.replace out.table name (Meter (Stats.Meter.merge om m))
        | Some other, i -> wrong_kind name other (kind_name i))
      (names src)
  in
  absorb a;
  absorb b;
  out

let table_header = [ "metric"; "kind"; "count"; "total/mean"; "p50"; "p99"; "p99.9"; "max" ]

let fnum v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 || (Float.abs v < 0.01 && v <> 0.0) then Printf.sprintf "%.3e" v
  else Printf.sprintf "%.2f" v

let rows t =
  List.map
    (fun (name, s) ->
      match s with
      | Counter_total v -> [ name; "counter"; "-"; fnum v; "-"; "-"; "-"; "-" ]
      | Histogram_summary h ->
        [
          name;
          "histogram";
          string_of_int h.count;
          fnum h.mean;
          fnum h.p50;
          fnum h.p99;
          fnum h.p999;
          fnum h.max;
        ]
      | Meter_rate m ->
        [ name; "meter"; string_of_int m.count; fnum m.per_s ^ "/s"; "-"; "-"; "-"; "-" ])
    (List.sort (fun (a, _) (b, _) -> compare a b) (snapshot t))

let render t =
  let rows = rows t in
  let all = table_header :: rows in
  let ncols = List.length table_header in
  let width c =
    List.fold_left (fun w row -> Stdlib.max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  String.concat "\n" (List.map line all) ^ "\n"
