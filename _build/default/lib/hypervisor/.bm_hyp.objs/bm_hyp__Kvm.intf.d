lib/hypervisor/kvm.mli: Bm_cloud Bm_engine Bm_guest Bm_hw Preempt Vmexit
