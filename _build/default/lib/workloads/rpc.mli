(** Request/response plumbing over instance network endpoints.

    The application benchmarks (NGINX, MariaDB, Redis) are all
    request/response services; this module provides the shared client
    and server machinery: the server half dispatches each arriving
    request into a fresh guest process that runs a user-supplied service
    function and transmits the reply burst; the client half matches
    replies to outstanding calls by packet id and wakes the caller. *)

type reply = {
  reply_bytes : int;  (** payload bytes of the reply (headers added per packet) *)
  reply_packets : int;  (** wire packets the reply occupies *)
}

val attach_server :
  Bm_guest.Instance.t ->
  service:(Bm_virtio.Packet.t -> reply) ->
  unit
(** Install the service on the instance's rx handler. [service] runs in a
    guest process {e before} reply transmission; perform CPU/memory/disk
    work inside it via the instance's own closures. *)

type client

val create_client : Bm_engine.Sim.t -> Bm_guest.Instance.t -> client
(** Take over the instance's rx handler for reply dispatch. One client
    per instance; many concurrent {!call}s per client. *)

val call :
  client ->
  dst:int ->
  ?request_bytes:int ->
  ?request_packets:int ->
  ?handshake:bool ->
  ?tag:int ->
  unit ->
  [ `Reply of float | `Timeout ]
(** Perform one call and return its latency in ns. With [handshake] (TCP
    accept, default false) an extra round trip and connection teardown
    packets are added — the KeepAlive-off behaviour of the NGINX test.
    Lost packets are retransmitted with a 100 ms RTO; [`Timeout] after 8
    attempts. [tag] (default 0; values ≥ 8 are free for applications) is
    visible to the server's service function — a poor man's request
    header. *)

val calls_completed : client -> int
val retransmits : client -> int
