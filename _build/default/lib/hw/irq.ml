open Bm_engine

type t = {
  sim : Sim.t;
  delivery_ns : float;
  handler_ns : float;
  mutable raised : int;
}

let create sim ?(delivery_ns = 500.0) ?(handler_ns = 1500.0) () =
  assert (delivery_ns >= 0.0 && handler_ns >= 0.0);
  { sim; delivery_ns; handler_ns; raised = 0 }

let delivery_ns t = t.delivery_ns
let handler_ns t = t.handler_ns
let raised_count t = t.raised

let raise_irq t ~handler =
  t.raised <- t.raised + 1;
  Sim.schedule t.sim ~delay:t.delivery_ns (fun () -> Sim.spawn t.sim handler)
