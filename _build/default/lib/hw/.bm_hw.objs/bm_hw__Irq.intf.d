lib/hw/irq.mli: Bm_engine
