lib/hypervisor/ept.ml: Bm_engine Bm_hw Metrics Obs
