lib/hw/cpu_spec.mli: Format
