lib/workloads/testbed.mli: Bm_cloud Bm_engine Bm_guest Bm_hyp Bm_iobond
