type t = Fpga | Asic

let register_ns = function Fpga -> 800.0 | Asic -> 200.0
let pci_emulation_ns t = 2.0 *. register_ns t
let dma_gbit_s = function Fpga | Asic -> 50.0
let dma_setup_ns = function Fpga -> 250.0 | Asic -> 100.0
let name = function Fpga -> "FPGA" | Asic -> "ASIC"
let pp fmt t = Format.pp_print_string fmt (name t)
