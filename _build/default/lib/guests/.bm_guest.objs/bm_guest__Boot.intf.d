lib/guests/boot.mli: Bm_cloud Instance
