(** Set-associative last-level cache with per-line owner tracking.

    Used to demonstrate the shared-resource interference that motivates
    BM-Hive (§2.1: "a malicious VM can substantially slow-down other
    co-resident VMs by repeatedly flushing the shared (L3) CPU cache"),
    and its absence when guests own their hardware. Addresses are byte
    addresses; replacement is LRU within a set. *)

type t

type owner = int
(** Opaque tenant identifier for occupancy accounting. *)

val create : size_kb:int -> ways:int -> line_bytes:int -> t
(** [create ~size_kb ~ways ~line_bytes]: [size_kb × 1024] bytes total,
    [ways]-way associative. [size_kb × 1024] must be divisible by
    [ways × line_bytes]. *)

val sets : t -> int
val ways : t -> int
val line_bytes : t -> int

val access : t -> owner:owner -> int -> [ `Hit | `Miss ]
(** [access t ~owner addr] touches the line containing [addr]: returns
    whether it hit, installing/refreshing the line for [owner]. *)

val occupancy : t -> owner:owner -> float
(** Fraction of valid lines currently owned by [owner]. *)

val hit_ratio : t -> owner:owner -> float
(** Lifetime hit ratio of [owner]'s accesses; [nan] if none. *)

val reset_stats : t -> unit

val thrash : t -> owner:owner -> unit
(** Touch every line of every set once — the cache-flushing attack of
    §2.1 expressed as occupancy. *)
