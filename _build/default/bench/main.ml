(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     bench/main.exe                 run every experiment (full scale)
     bench/main.exe fig12 fig13     run selected experiments
     bench/main.exe --quick         reduced scale (CI-sized)
     bench/main.exe --list          list experiment ids
     bench/main.exe --bechamel      bechamel micro-benchmarks of the
                                    (quick-scale) experiment runs *)

let usage () =
  print_endline "usage: main.exe [--quick] [--seed N] [--list] [--bechamel] [experiment ids...]"

(* One bechamel Test.make per table/figure: measures the wall-clock cost
   of the (quick-scale) experiment regeneration itself, so regressions in
   simulator performance show up as bench regressions. *)
let bechamel_suite seed =
  let open Bechamel in
  let tests =
    List.map
      (fun spec ->
        Test.make ~name:spec.Bmhive.Experiments.id
          (Staged.stage (fun () ->
               ignore (spec.Bmhive.Experiments.run ~quick:true ~seed))))
      Bmhive.Experiments.all
  in
  Test.make_grouped ~name:"experiments" tests

let run_bechamel seed =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances (bechamel_suite seed) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun label ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "%-36s %12.3f ms/run\n" label (est /. 1e6)
      | Some [] | None -> Printf.printf "%-36s (no estimate)\n" label)
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let bechamel = List.mem "--bechamel" args in
  let rec seed_of = function
    | "--seed" :: v :: _ -> int_of_string v
    | _ :: rest -> seed_of rest
    | [] -> 2020
  in
  let seed = seed_of args in
  let positional =
    List.filter
      (fun a -> (not (String.length a > 1 && a.[0] = '-')) && a <> string_of_int seed)
      args
  in
  if List.mem "--help" args then usage ()
  else if List.mem "--list" args then
    List.iter
      (fun s ->
        Printf.printf "%-10s %-10s %s\n" s.Bmhive.Experiments.id s.Bmhive.Experiments.paper_ref
          s.Bmhive.Experiments.title)
      Bmhive.Experiments.all
  else if bechamel then run_bechamel seed
  else begin
    let targets = if positional = [] then Bmhive.Experiments.ids () else positional in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun id ->
        match Bmhive.Experiments.run_one ~quick ~seed id with
        | Ok outcome -> Bmhive.Experiments.print_outcome outcome
        | Error e ->
          prerr_endline e;
          exit 1)
      targets;
    Printf.printf "\n%d experiment(s) in %.1fs (%s scale, seed %d)\n" (List.length targets)
      (Unix.gettimeofday () -. t0)
      (if quick then "quick" else "full")
      seed
  end
