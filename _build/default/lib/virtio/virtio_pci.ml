type register =
  | Vendor_id
  | Device_id
  | Device_features
  | Driver_features
  | Device_status
  | Queue_select
  | Queue_size
  | Queue_addr
  | Queue_notify
  | Isr_status
  | Config of int

type kind = Net | Blk | Vga

(* Device status bits, per the virtio spec. *)
let s_acknowledge = 0x1
let s_driver = 0x2
let s_driver_ok = 0x4
let s_features_ok = 0x8
let s_failed = 0x80

let vendor_id_virtio = 0x1AF4

let device_id = function Net -> 0x1000 | Blk -> 0x1001 | Vga -> 0x1050

type t = {
  kind : kind;
  num_queues : int;
  queue_size : int;
  device_features : Feature.t;
  on_access : unit -> unit;
  mutable accesses : int;
  mutable status : int;
  mutable driver_features : Feature.t;
  mutable selected_queue : int;
  mutable queue_addrs : int array;
  mutable notify_count : int;
}

let create ~kind ~num_queues ~queue_size ~on_access =
  assert (num_queues > 0 && queue_size > 0);
  let device_features =
    match kind with Net -> Feature.default_net | Blk -> Feature.default_blk | Vga -> 0
  in
  {
    kind;
    num_queues;
    queue_size;
    device_features;
    on_access;
    accesses = 0;
    status = 0;
    driver_features = 0;
    selected_queue = 0;
    queue_addrs = Array.make num_queues 0;
    notify_count = 0;
  }

let kind t = t.kind
let access_count t = t.accesses

let touch t =
  t.accesses <- t.accesses + 1;
  t.on_access ()

let read t reg =
  touch t;
  match reg with
  | Vendor_id -> vendor_id_virtio
  | Device_id -> device_id t.kind
  | Device_features -> t.device_features
  | Driver_features -> t.driver_features
  | Device_status -> t.status
  | Queue_select -> t.selected_queue
  | Queue_size -> if t.selected_queue < t.num_queues then t.queue_size else 0
  | Queue_addr -> t.queue_addrs.(t.selected_queue)
  | Queue_notify -> t.notify_count
  | Isr_status -> 0
  | Config offset -> offset land 0xFF

let write t reg v =
  touch t;
  match reg with
  | Device_status ->
    if v = 0 then begin
      (* Device reset. *)
      t.status <- 0;
      t.driver_features <- 0;
      t.selected_queue <- 0;
      Array.fill t.queue_addrs 0 t.num_queues 0
    end
    else begin
      (* FEATURES_OK is only accepted when the driver subset is valid. *)
      let v =
        if v land s_features_ok <> 0 && not (Feature.contains t.device_features t.driver_features)
        then (v land lnot s_features_ok) lor s_failed
        else v
      in
      t.status <- v
    end
  | Driver_features -> t.driver_features <- v
  | Queue_select ->
    if v < 0 || v >= t.num_queues then invalid_arg "Virtio_pci: queue out of range";
    t.selected_queue <- v
  | Queue_addr -> t.queue_addrs.(t.selected_queue) <- v
  | Queue_notify -> t.notify_count <- t.notify_count + 1
  | Vendor_id | Device_id | Device_features | Queue_size | Isr_status | Config _ ->
    invalid_arg "Virtio_pci: write to read-only register"

let driver_ok t = t.status land s_driver_ok <> 0
let negotiated_features t = Feature.intersect t.device_features t.driver_features

let probe t ~driver_features =
  write t Device_status 0;
  let vendor = read t Vendor_id in
  if vendor <> vendor_id_virtio then Error (Printf.sprintf "unexpected vendor 0x%04X" vendor)
  else begin
    ignore (read t Device_id);
    write t Device_status s_acknowledge;
    write t Device_status (s_acknowledge lor s_driver);
    let offered = read t Device_features in
    let accepted = Feature.intersect offered driver_features in
    write t Driver_features accepted;
    write t Device_status (s_acknowledge lor s_driver lor s_features_ok);
    let status = read t Device_status in
    if status land s_features_ok = 0 then Error "device rejected features"
    else begin
      (* Discover and configure every queue. *)
      let sizes = ref [] in
      for q = 0 to t.num_queues - 1 do
        write t Queue_select q;
        let size = read t Queue_size in
        sizes := size :: !sizes;
        write t Queue_addr (0x100000 * (q + 1))
      done;
      write t Device_status (s_acknowledge lor s_driver lor s_features_ok lor s_driver_ok);
      match !sizes with
      | [] -> Error "no queues"
      | size :: _ -> Ok (accepted, t.num_queues, size)
    end
  end
