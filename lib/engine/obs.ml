type t = { now : unit -> float; trace : Trace.t option; metrics : Metrics.t option }

let none = { now = (fun () -> 0.0); trace = None; metrics = None }
let create ?trace ?metrics ~now () = { now; trace; metrics }
let of_sim ?trace ?metrics sim = { now = (fun () -> Sim.now sim); trace; metrics }
let now t = t.now ()
let clock t = t.now
let trace t = t.trace
let metrics t = t.metrics
let enabled t = t.trace <> None || t.metrics <> None

let watch_bounded t ~track q =
  if enabled t then
    Sim.Bounded.set_probe q (fun ev ~depth ->
        Trace.counter_opt t.trace ~track "depth" ~now:(t.now ()) (float_of_int depth);
        match ev with
        | `Drop -> Metrics.incr_opt t.metrics (track ^ ".dropped")
        | `Reject -> Metrics.incr_opt t.metrics (track ^ ".rejected")
        | `Enqueue | `Deliver -> ())
