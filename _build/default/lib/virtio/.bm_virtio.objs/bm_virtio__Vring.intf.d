lib/virtio/vring.mli:
