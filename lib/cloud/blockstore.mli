(** SPDK-style cloud block storage (§3.4.2).

    Guests access SSD-backed storage across the datacenter network
    ("In the cloud, storage is normally accessed through the network",
    §4.3). A request pays: the network round trip, queueing at the
    storage node (bounded server-side parallelism), and the SSD service
    time — log-normally distributed with a rare heavy tail (background
    flash management), which is what makes the p99.9 experiments
    interesting. *)

type kind = Cloud_ssd | Local_ssd

type t

val create :
  ?obs:Bm_engine.Obs.t ->
  Bm_engine.Sim.t ->
  Bm_engine.Rng.t ->
  kind:kind ->
  ?parallelism:int ->
  ?queue_capacity:int ->
  unit ->
  t
(** Defaults: [parallelism] 128 requests in service concurrently for
    [Cloud_ssd] (a distributed backend), 16 for [Local_ssd];
    [queue_capacity] 512 requests may wait for a server beyond those in
    service — deep enough that well-behaved workloads never see it, small
    enough that floods fail fast instead of queueing without bound. With
    [obs], each request samples server occupancy as a [queue_depth]
    counter on the ["cloud.blockstore"] track and feeds the
    ["cloud.blockstore.serve_ns"] latency histogram and the
    ["cloud.blockstore.served"] / ["cloud.blockstore.rejected"]
    counters. *)

val kind : t -> kind

val serve : t -> op:[ `Read | `Write | `Flush ] -> bytes_:int -> [ `Served | `Rejected ]
(** Block the calling process for the whole storage round trip. When the
    admission queue is full on arrival at the storage node, the request
    is refused after the front half of the network round trip
    ([`Rejected]) — the storage analogue of ECN/EBUSY, which clients
    (e.g. {!Bm_workload.Fio}) may retry with backoff. *)

val served : t -> int
val rejected : t -> int
val queue_capacity : t -> int

val mean_service_ns : t -> op:[ `Read | `Write | `Flush ] -> float
(** The configured median service time (excluding queueing/tail), for
    documentation and tests. *)
