lib/virtio/virtio_blk.mli: Bm_engine Virtio_pci Vring
