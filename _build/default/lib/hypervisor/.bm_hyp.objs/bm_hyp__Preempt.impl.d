lib/hypervisor/preempt.ml: Bm_engine Float Rng Sim
