open Bm_engine
open Bm_guest

type injected = {
  sim : Sim.t;
  base : Instance.t;
  wrapped : Instance.t;
  tlb : Bm_hw.Tlb.t;
}

(* Inserting the layer shadows the guest's page tables: a brief stall. *)
let insertion_stall_ns = 50e6

let inject sim rng base =
  match base.Instance.kind with
  | Instance.Virtual -> Error "already virtualized"
  | Instance.Physical -> Error "not a cloud instance"
  | Instance.Bare_metal _ ->
    Sim.delay insertion_stall_ns;
    let tlb = Bm_hw.Tlb.create () in
    let preempt = Preempt.create sim rng ~mode:Preempt.Exclusive ~host_load:0.3 () in
    (* The thin layer adds EPT-style paging and occasional traps on what
       used to be a native guest. *)
    let wrapped =
      {
        base with
        Instance.kind = Instance.Virtual;
        exec_ns = (fun natural -> base.Instance.exec_ns (natural *. 1.02));
        exec_mem_ns =
          (fun ~working_set ~locality natural ->
            let factor = Ept.dilation_factor tlb ~virtualized:true ~working_set ~locality in
            base.Instance.exec_ns (natural *. factor));
        pause = (fun () -> Preempt.maybe_steal preempt);
      }
    in
    Ok { sim; base; wrapped; tlb }

let as_instance t = t.wrapped

type migration_stats = {
  precopy_rounds : int;
  bytes_copied : float;
  blackout_ns : float;
  total_ns : float;
}

let max_rounds = 12
let target_blackout_ns = 10e6

let migrate (t : injected) ?(link_gb_s = 12.5) ~dirty_rate_gb_s ~mem_gb () =
  ignore t.base;
  if dirty_rate_gb_s < 0.0 || mem_gb <= 0 then Error "bad migration parameters"
  else if dirty_rate_gb_s >= link_gb_s then
    Error "guest dirties memory faster than the link can copy: will never converge"
  else begin
    let t0 = Sim.clock () in
    let link_b_ns = link_gb_s in
    (* Iterative pre-copy: each round copies what the previous round left
       dirty; dirtying continues while copying. *)
    let rec rounds n remaining copied =
      let copy_ns = remaining /. link_b_ns in
      Sim.delay copy_ns;
      let copied = copied +. remaining in
      let dirtied = copy_ns *. dirty_rate_gb_s in
      if dirtied /. link_b_ns <= target_blackout_ns || n + 1 >= max_rounds then (n + 1, dirtied, copied)
      else rounds (n + 1) dirtied copied
    in
    let total_bytes = float_of_int mem_gb *. 1e9 in
    let precopy_rounds, remainder, copied = rounds 0 total_bytes 0.0 in
    (* Stop-and-copy blackout for the final remainder. *)
    let blackout_ns = remainder /. link_b_ns in
    Sim.delay blackout_ns;
    Ok
      {
        precopy_rounds;
        bytes_copied = copied +. remainder;
        blackout_ns;
        total_ns = Sim.clock () -. t0;
      }
  end
