lib/workloads/redis_bench.ml: Bm_engine Bm_guest Bm_virtio Float Instance List Packet Rpc Sim Simtime Stats
