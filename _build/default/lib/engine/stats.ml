module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let count = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int count) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count /. float_of_int count)
      in
      {
        count;
        mean;
        m2;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        total = a.total +. b.total;
      }
    end

  let pp fmt t =
    Format.fprintf fmt "n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g" t.count (mean t) (stddev t)
      t.min t.max
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    ratio : float;
    log_ratio : float;
    buckets : int array;
    mutable count : int;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create ?(lo = 1.0) ?(hi = 1e12) ?(precision = 0.01) () =
    assert (lo > 0.0 && hi > lo && precision > 0.0);
    let ratio = 1.0 +. precision in
    let log_ratio = log ratio in
    let nbuckets = int_of_float (ceil (log (hi /. lo) /. log_ratio)) + 1 in
    {
      lo;
      hi;
      ratio;
      log_ratio;
      buckets = Array.make nbuckets 0;
      count = 0;
      total = 0.0;
      min = infinity;
      max = neg_infinity;
    }

  let index t v =
    if v <= t.lo then 0
    else begin
      let i = int_of_float (log (v /. t.lo) /. t.log_ratio) in
      Stdlib.min i (Array.length t.buckets - 1)
    end

  let add_n t v n =
    let i = index t v in
    t.buckets.(i) <- t.buckets.(i) + n;
    t.count <- t.count + n;
    t.total <- t.total +. (v *. float_of_int n);
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v

  let add t v = add_n t v 1
  let count t = t.count
  let mean t = if t.count = 0 then nan else t.total /. float_of_int t.count
  let min t = t.min
  let max t = t.max

  (* Representative value of bucket [i]: geometric midpoint of its bounds. *)
  let bucket_value t i = t.lo *. (t.ratio ** (float_of_int i +. 0.5))

  let percentile t p =
    assert (p >= 0.0 && p <= 100.0);
    if t.count = 0 then nan
    else begin
      let rank = p /. 100.0 *. float_of_int t.count in
      let rank = Float.max rank 1.0 in
      let rec scan i seen =
        if i >= Array.length t.buckets then Float.min t.max (bucket_value t (i - 1))
        else begin
          let seen = seen + t.buckets.(i) in
          if float_of_int seen >= rank then
            (* Clamp to the observed extrema so tiny histograms stay sane. *)
            Float.max t.min (Float.min t.max (bucket_value t i))
          else scan (i + 1) seen
        end
      in
      scan 0 0
    end

  let merge a b =
    assert (a.lo = b.lo && a.ratio = b.ratio && Array.length a.buckets = Array.length b.buckets);
    let merged = create ~lo:a.lo ~hi:a.hi ~precision:(a.ratio -. 1.0) () in
    Array.iteri (fun i n -> merged.buckets.(i) <- n + b.buckets.(i)) a.buckets;
    merged.count <- a.count + b.count;
    merged.total <- a.total +. b.total;
    merged.min <- Float.min a.min b.min;
    merged.max <- Float.max a.max b.max;
    merged

  let copy t = { t with buckets = Array.copy t.buckets }

  let pp fmt t =
    Format.fprintf fmt "n=%d mean=%.3g p50=%.3g p99=%.3g p99.9=%.3g" t.count (mean t)
      (percentile t 50.0) (percentile t 99.0) (percentile t 99.9)
end

module Meter = struct
  type t = { mutable count : int; mutable first : float; mutable last : float }

  let create () = { count = 0; first = nan; last = nan }

  let mark_n t ~now n =
    if t.count = 0 then t.first <- now;
    t.last <- now;
    t.count <- t.count + n

  let mark t ~now = mark_n t ~now 1
  let count t = t.count

  let rate t =
    let span = t.last -. t.first in
    if t.count < 2 || span <= 0.0 then nan else float_of_int t.count /. (span /. 1e9)

  let copy t = { t with count = t.count }

  let merge a b =
    if a.count = 0 then copy b
    else if b.count = 0 then copy a
    else
      {
        count = a.count + b.count;
        first = Float.min a.first b.first;
        last = Float.max a.last b.last;
      }
end
