module Topology = Topology
open Bm_engine
module Packet = Bm_virtio.Packet

(* A burst in flight: the links it still has to cross after the one it
   is queued on, and the continuations to fire at the far end. *)
type job = {
  pkt : Packet.t;
  mutable rest : link list;
  deliver : Packet.t -> unit;
  on_drop : (Packet.t -> unit) option;
}

and link = {
  name : string;
  params : Topology.link_params;
  queue : job Sim.Bounded.bounded;
  depth : Stats.Histogram.t;
  mutable up : bool;  (* a down link drops everything offered to it *)
  mutable busy_ns : float;  (* time spent serializing bursts *)
  mutable delivered_pkts : int;
  mutable dropped_pkts : int;
  mutable delivered_bytes : int;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  seed : int64;  (* ECMP hash salt, drawn once at create *)
  host_up : link array;  (* host h -> tor_of h *)
  host_down : link array;  (* tor_of h -> host h *)
  tor_up : link array array;  (* tor_up.(tor).(spine) *)
  spine_down : link array array;  (* spine_down.(spine).(tor) *)
  created_at : float;
  mutable attached : int;
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  obs : Obs.t;
}

let topology t = t.topo
let injected t = t.injected
let delivered t = t.delivered
let dropped t = t.dropped
let hosts_attached t = t.attached

let all_links t =
  Array.to_list t.host_up @ Array.to_list t.host_down
  @ List.concat_map Array.to_list (Array.to_list t.tor_up)
  @ List.concat_map Array.to_list (Array.to_list t.spine_down)

let serialize_ns (p : Topology.link_params) bytes = float_of_int bytes *. 8.0 /. p.gbit_s

let drop_at fab link job =
  let m = Obs.metrics fab.obs in
  link.dropped_pkts <- link.dropped_pkts + job.pkt.count;
  fab.dropped <- fab.dropped + job.pkt.count;
  Metrics.incr_opt m ("fabric.link." ^ link.name ^ ".dropped");
  Metrics.incr_opt m ~by:(float_of_int job.pkt.count) "fabric.dropped";
  Trace.instant_opt (Obs.trace fab.obs) ~track:("fabric." ^ link.name) "drop"
    ~now:(Obs.now fab.obs);
  match job.on_drop with None -> () | Some f -> f job.pkt

(* Hand a job to a link's egress queue. Drop_tail send never blocks, so
   this is safe from both process and scheduler context; a full queue —
   or a failed link — drops the arriving burst right here (counted,
   traced, reported). *)
let offer fab link job =
  if not link.up then drop_at fab link job
  else
    match Sim.Bounded.send link.queue job with
    | `Sent ->
      let m = Obs.metrics fab.obs in
      let d = float_of_int (Sim.Bounded.length link.queue) in
      Stats.Histogram.add link.depth d;
      Metrics.observe_opt m ~lo:1.0 ~hi:1e4 ("fabric.link." ^ link.name ^ ".depth") d;
      Trace.counter_opt (Obs.trace fab.obs) ~track:("fabric." ^ link.name) "depth"
        ~now:(Obs.now fab.obs) d
    | `Dropped -> drop_at fab link job
    | `Rejected -> assert false (* Drop_tail never rejects *)

let arrive fab job =
  match job.rest with
  | [] ->
    fab.delivered <- fab.delivered + job.pkt.count;
    Metrics.incr_opt (Obs.metrics fab.obs) ~by:(float_of_int job.pkt.count)
      "fabric.delivered";
    job.deliver job.pkt
  | next :: rest ->
    job.rest <- rest;
    offer fab next job

(* One drain process per link: hold the line for the head burst's
   serialization time, then let propagation run concurrently with the
   next burst's serialization (store-and-forward pipelining). *)
let drain_link fab link =
  let rec loop () =
    let job = Sim.Bounded.recv link.queue in
    let wire = serialize_ns link.params job.pkt.size in
    Sim.delay wire;
    link.busy_ns <- link.busy_ns +. wire;
    link.delivered_pkts <- link.delivered_pkts + job.pkt.count;
    link.delivered_bytes <- link.delivered_bytes + job.pkt.size;
    Metrics.mark_opt (Obs.metrics fab.obs) ~n:job.pkt.size
      ("fabric.link." ^ link.name ^ ".bytes")
      ~now:(Sim.clock ());
    Sim.schedule fab.sim ~delay:link.params.latency_ns (fun () -> arrive fab job);
    loop ()
  in
  Sim.spawn fab.sim loop

let mk_link name params =
  {
    name;
    params;
    queue =
      Sim.Bounded.create ~capacity:params.Topology.queue_capacity
        ~policy:Sim.Bounded.Drop_tail ();
    depth = Stats.Histogram.create ~lo:1.0 ~hi:1e4 ();
    up = true;
    busy_ns = 0.0;
    delivered_pkts = 0;
    dropped_pkts = 0;
    delivered_bytes = 0;
  }

let create ?(obs = Obs.none) sim rng (topo : Topology.t) =
  let host_up =
    Array.init topo.hosts (fun h ->
        mk_link
          (Printf.sprintf "host%d->tor%d" h (Topology.tor_of topo ~host:h))
          topo.host_link)
  in
  let host_down =
    Array.init topo.hosts (fun h ->
        mk_link
          (Printf.sprintf "tor%d->host%d" (Topology.tor_of topo ~host:h) h)
          topo.host_link)
  in
  let tor_up =
    Array.init topo.tors (fun tr ->
        Array.init topo.spines (fun s ->
            mk_link (Printf.sprintf "tor%d->spine%d" tr s) topo.spine_link))
  in
  let spine_down =
    Array.init topo.spines (fun s ->
        Array.init topo.tors (fun tr ->
            mk_link (Printf.sprintf "spine%d->tor%d" s tr) topo.spine_link))
  in
  let t =
    {
      sim;
      topo;
      seed = Rng.bits64 rng;
      host_up;
      host_down;
      tor_up;
      spine_down;
      created_at = Sim.now sim;
      attached = 0;
      injected = 0;
      delivered = 0;
      dropped = 0;
      obs;
    }
  in
  List.iter (drain_link t) (all_links t);
  t

(* --- link failure and repair --------------------------------------- *)

let link_names t = List.map (fun l -> l.name) (all_links t)

let find_link t name =
  match List.find_opt (fun l -> l.name = name) (all_links t) with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Fabric: unknown link %S" name)

let set_link t name up =
  let l = find_link t name in
  if l.up <> up then begin
    l.up <- up;
    Metrics.incr_opt (Obs.metrics t.obs)
      ("fabric.link." ^ name ^ if up then ".repaired" else ".failed");
    Trace.instant_opt (Obs.trace t.obs) ~track:("fabric." ^ name)
      (if up then "repair" else "fail")
      ~now:(Obs.now t.obs)
  end

let fail_link t ~name = set_link t name false
let repair_link t ~name = set_link t name true
let link_up t ~name = (find_link t name).up
let links_down t = List.length (List.filter (fun l -> not l.up) (all_links t))

let attach t =
  if t.attached >= t.topo.hosts then
    invalid_arg
      (Printf.sprintf "Fabric.attach: all %d hosts of the topology are taken" t.topo.hosts);
  let h = t.attached in
  t.attached <- t.attached + 1;
  h

(* SplitMix64 finalizer, applied as a hash: equal flow tuples map to
   equal spines for a given salt, so a flow never reorders across
   paths while distinct flows spread over the spine tier. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let protocol_int = function Packet.Udp -> 0 | Packet.Tcp -> 1 | Packet.Icmp -> 2

let ecmp_spine t (pkt : Packet.t) =
  let h = ref t.seed in
  let feed v = h := mix64 (Int64.add !h (Int64.of_int v)) in
  feed pkt.src;
  feed pkt.dst;
  feed (protocol_int pkt.protocol);
  feed pkt.tag;
  Int64.to_int (Int64.rem (Int64.logand !h Int64.max_int) (Int64.of_int t.topo.spines))

let check_host t what h =
  if h < 0 || h >= t.topo.hosts then
    invalid_arg (Printf.sprintf "Fabric: %s host %d out of range [0, %d)" what h t.topo.hosts)

let path t ~src_host ~dst_host pkt =
  check_host t "source" src_host;
  check_host t "destination" dst_host;
  let ts = Topology.tor_of t.topo ~host:src_host
  and td = Topology.tor_of t.topo ~host:dst_host in
  if ts = td then [ t.host_up.(src_host); t.host_down.(dst_host) ]
  else begin
    let spine = ecmp_spine t pkt in
    [
      t.host_up.(src_host);
      t.tor_up.(ts).(spine);
      t.spine_down.(spine).(td);
      t.host_down.(dst_host);
    ]
  end

let path_names t ~src_host ~dst_host pkt =
  List.map (fun l -> l.name) (path t ~src_host ~dst_host pkt)

let send t ~src_host ~dst_host ?on_drop ~deliver (pkt : Packet.t) =
  if src_host = dst_host then begin
    check_host t "source" src_host;
    deliver pkt
  end
  else
    match path t ~src_host ~dst_host pkt with
    | [] -> assert false
    | first :: rest ->
      t.injected <- t.injected + pkt.count;
      Metrics.incr_opt (Obs.metrics t.obs) ~by:(float_of_int pkt.count) "fabric.injected";
      offer t first { pkt; rest; deliver; on_drop }

let path_latency_ns t ~src_host ~dst_host ~bytes =
  check_host t "source" src_host;
  check_host t "destination" dst_host;
  if src_host = dst_host then 0.0
  else begin
    let per (p : Topology.link_params) = serialize_ns p bytes +. p.latency_ns in
    let ts = Topology.tor_of t.topo ~host:src_host
    and td = Topology.tor_of t.topo ~host:dst_host in
    if ts = td then 2.0 *. per t.topo.host_link
    else (2.0 *. per t.topo.host_link) +. (2.0 *. per t.topo.spine_link)
  end

let path_capacity_gbit_s t ~src_host ~dst_host =
  check_host t "source" src_host;
  check_host t "destination" dst_host;
  if src_host = dst_host then infinity
  else begin
    let ts = Topology.tor_of t.topo ~host:src_host
    and td = Topology.tor_of t.topo ~host:dst_host in
    if ts = td then t.topo.host_link.gbit_s
    else Float.min t.topo.host_link.gbit_s t.topo.spine_link.gbit_s
  end

type link_stat = {
  name : string;
  gbit_s : float;
  utilization : float;
  depth_p99 : float;
  sent_bursts : int;
  delivered_bursts : int;
  dropped_bursts : int;
  delivered_pkts : int;
  dropped_pkts : int;
  queued : int;
}

let link_stat ~elapsed (l : link) =
  {
    name = l.name;
    gbit_s = l.params.gbit_s;
    utilization = (if elapsed > 0.0 then l.busy_ns /. elapsed else 0.0);
    depth_p99 =
      (if Stats.Histogram.count l.depth = 0 then 0.0
       else Stats.Histogram.percentile l.depth 99.0);
    sent_bursts = Sim.Bounded.sent l.queue;
    delivered_bursts = Sim.Bounded.delivered l.queue;
    dropped_bursts = Sim.Bounded.dropped l.queue;
    delivered_pkts = l.delivered_pkts;
    dropped_pkts = l.dropped_pkts;
    queued = Sim.Bounded.length l.queue;
  }

let link_stats t ~now =
  let elapsed = now -. t.created_at in
  List.map (link_stat ~elapsed) (all_links t)

(* Fold a quiesced replica's counters into this fabric: the sharded
   fleet serve runs its east-west flows on per-shard replicas (same
   topology, same ECMP seed, own simulator each) and merges the tallies
   back so fabric-wide accounting reads as if one fabric carried it
   all. Wire-level sums — packets, bytes, busy serialization time — are
   per-flow quantities, so the folded totals match a single-fabric run
   exactly whenever the phase is contention-free across replicas (the
   drop-free regime the fleet experiments assert). Queue-depth
   histograms and burst-queue conservation counters stay per-replica:
   they describe a queue instance, not traffic, and folding them would
   double-book the invariant [sent = delivered + dropped + queued]. *)
let absorb t ~from =
  if t.topo <> from.topo then invalid_arg "Fabric.absorb: topology mismatch";
  t.injected <- t.injected + from.injected;
  t.delivered <- t.delivered + from.delivered;
  t.dropped <- t.dropped + from.dropped;
  List.iter2
    (fun (a : link) (b : link) ->
      a.busy_ns <- a.busy_ns +. b.busy_ns;
      a.delivered_pkts <- a.delivered_pkts + b.delivered_pkts;
      a.dropped_pkts <- a.dropped_pkts + b.dropped_pkts;
      a.delivered_bytes <- a.delivered_bytes + b.delivered_bytes)
    (all_links t) (all_links from)

type pressure = {
  link : string;
  spine : bool;
  queued_bursts : int;
  dropped_pkts_total : int;
}

(* The cheap congestion signal a closed-loop policy polls every SLO
   window: current queue depth and the cumulative drop counter per
   link, in the fixed link_stats order. Unlike link_stats this scans no
   histograms, so sampling it every window costs a list walk. *)
let queue_pressure t =
  let of_link ~spine (l : link) =
    {
      link = l.name;
      spine;
      queued_bursts = Sim.Bounded.length l.queue;
      dropped_pkts_total = l.dropped_pkts;
    }
  in
  let host = List.map (of_link ~spine:false) in
  let spine = List.map (of_link ~spine:true) in
  host (Array.to_list t.host_up)
  @ host (Array.to_list t.host_down)
  @ spine (List.concat_map Array.to_list (Array.to_list t.tor_up))
  @ spine (List.concat_map Array.to_list (Array.to_list t.spine_down))
