(** Deterministic fault injection and recovery combinators.

    Production BM-Hive stays sellable because its failure modes are
    bounded: boards, FPGAs and base servers fail, and §3.4's shadow-ring
    machinery plus the control plane's migrations exist to recover from
    them. This module makes those failures first-class in the
    simulation: a {!plan} schedules typed fault events at simulated
    times, an injector ({!t}) opens/closes fault windows on the agenda
    and notifies subscribers, and {!Guard} provides the
    timeout/retry-with-backoff/circuit-breaker semantics the datapath
    wraps its fallible operations in.

    Everything is a pure function of the plan's seed: same seed + same
    spec ⇒ the same events at the same times ⇒ bit-identical recovery
    behaviour, so MTTR and blackout numbers are regression-testable. *)

(** {2 Fault taxonomy} *)

type kind =
  | Link_down  (** PCIe link drops and retrains; traffic stalls *)
  | Dma_stall  (** IO-Bond's internal DMA engine stops streaming *)
  | Mailbox_drop  (** mailbox register writes are lost in the window *)
  | Firmware_wedge
      (** the IO-Bond firmware wedges; a device reset replays the
          virtio status dance and resumes from the shadow rings *)
  | Pmd_crash  (** a bm-hypervisor backend process dies and respawns *)
  | Server_failure  (** the base server fails; victims must evacuate *)
  | Fabric_link_down
      (** a datacenter fabric link goes dark; traffic offered to it is
          dropped until repair. The single-host datapath ignores this
          kind — fleet-level consumers ({!Bmhive.Scenario}) subscribe
          and map each window onto a {!Bm_fabric.Fabric} link. *)
  | Vf_stall
      (** a virtual function's queue pair stops draining (the SR-IOV
          analogue of [Dma_stall]); submissions wait out the window *)
  | Vf_reassign_timeout
      (** the device's VF reassignment doorbell wedges: an in-flight
          reassignment's drain step stalls for the window, stretching
          the blackout. Recovery is Guard-wrapped in {!Bm_iobond.Vf}. *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

val default_duration_ns : kind -> float
(** How long a window of this kind stays open unless the plan says
    otherwise. [Server_failure] is permanent ([infinity]). *)

(** {2 Fault plans} *)

type event = { kind : kind; at : float; duration_ns : float }

type plan = { seed : int; horizon_ns : float; events : event list }
(** [events] sorted by time (ties broken by kind order), all within
    [\[0, horizon_ns)]. *)

val no_faults : plan

val make_plan : seed:int -> ?horizon_ns:float -> (kind * int) list -> plan
(** [make_plan ~seed counts] draws [count] event start times per kind,
    uniformly over [horizon_ns] (default 2 ms of simulated time), from a
    SplitMix64 stream seeded with [seed]. Durations are the per-kind
    defaults. Deterministic: equal inputs give equal plans. *)

val parse_spec : string -> (plan, string) result
(** Parse a ["<seed>:<spec>"] command-line fault plan, where <spec> is a
    comma-separated list of [kind=count] pairs (kind names as printed by
    {!kind_name}), optionally including [horizon=<ns>]. The word
    [default] stands for one or two events of every recoverable kind.
    Examples: ["42:link_down=2,firmware_wedge=1"], ["7:default"]. *)

val render_plan : plan -> string
(** One line per event — used by tests and the determinism smoke. *)

(** {2 Injector} *)

type t
(** A per-run injector: owns the plan's windows and subscriber lists.
    Components hold a [t] (default {!none}) and either poll
    {!is_active}/{!block_until_clear} at their injection points or
    {!subscribe} to crash-style events. *)

val none : t
(** The null injector: never active, subscriptions are dropped,
    {!block_until_clear} returns immediately. Keeping it the default
    means a fault-free run is bit-identical to the seed behaviour. *)

val create : ?obs:Obs.t -> Sim.t -> plan -> t
(** With [obs], every injected event emits an instant on the ["fault"]
    track and bumps ["fault.injected.<kind>"]. *)

val arm : t -> unit
(** Schedule every event of the plan on the simulation agenda: at
    [event.at] the window opens (subscribers fire, in subscription
    order); it closes [duration_ns] later. Every window additionally
    emits a terminal {e recovery} event at
    [min (at +. duration_ns) horizon_ns] — so a window that ends exactly
    at the plan horizon, or one that would outlive it (including the
    permanent [Server_failure] windows), is still reported recovered at
    the horizon and availability accounting stays conservative.
    Idempotent. *)

val subscribe : t -> kind -> (event -> unit) -> unit
(** Called from scheduler context when a window of [kind] opens. *)

val is_active : t -> kind -> bool
(** Is a window of [kind] open at the current simulated time? *)

val active_until : t -> kind -> float
(** End of the currently open window ([neg_infinity] when closed). *)

val block_until_clear : t -> kind -> unit
(** From a process: if a window of [kind] is open, sleep until it
    closes (windows opening meanwhile extend the wait). No-op when
    clear — the fault-free fast path costs one array read. *)

val injected : t -> int
(** Events whose windows have opened so far. *)

val recovered : t -> int
(** Windows reported recovered so far (natural close or terminal
    recovery at the plan horizon). At or past the horizon,
    [recovered = injected]: no window is ever left unaccounted. *)

val summary : t -> string
(** One line of recovered/injected accounting, total and per kind —
    the fault summary the game-day scorecard embeds. *)

val plan_of : t -> plan

(** {2 Guarded operations}

    Timeout, bounded retry with exponential backoff, and a circuit
    breaker over simulated fallible operations. *)

module Guard : sig
  type policy = {
    timeout_ns : float;  (** per-attempt timeout; [infinity] disables *)
    max_attempts : int;  (** total tries per {!run} (≥ 1) *)
    backoff_ns : float;  (** sleep before the first retry *)
    backoff_mult : float;  (** exponential growth per retry *)
    backoff_max_ns : float;
        (** backoff ceiling — caps every sleep of the schedule,
            including the first one when [backoff_ns] exceeds it *)
    circuit_threshold : int;
        (** consecutive exhausted {!run}s that open the circuit;
            [0] disables the breaker *)
    circuit_cooldown_ns : float;  (** open-state duration *)
  }

  val default_policy : policy
  (** No timeout, 4 attempts, 500 ns backoff doubling to 8 µs cap,
      breaker off. *)

  type g

  val create : ?obs:Obs.t -> ?policy:policy -> Sim.t -> name:string -> g
  (** With [obs], retries/timeouts/rejections count under
      ["fault.guard.<name>."]. *)

  val run : g -> (unit -> ('a, string) result) -> ('a, string) result
  (** Run the operation under the policy, from process context. Each
      attempt is bounded by [timeout_ns]; failed attempts back off
      exponentially; after [max_attempts] failures the error is
      returned and (once [circuit_threshold] consecutive runs have
      failed) the circuit opens, rejecting immediately until the
      cooldown elapses. A success on the first attempt performs no
      simulation operations at all, so guarding a healthy path leaves
      its timing untouched.

      A timed-out attempt is {e not} cancelled — the simulator has no
      preemption — so its side effects may still land later; guarded
      operations must therefore be idempotent (register writes of
      absolute values, exactly-once completion publication). *)

  val with_timeout : Sim.t -> timeout_ns:float -> (unit -> 'a) -> ('a, [ `Timeout ]) result
  (** Race the operation against a deadline, from process context. The
      loser is abandoned, not cancelled. *)

  val retries : g -> int
  val timeouts : g -> int
  val circuit_opens : g -> int
  val circuit_open : g -> bool
  (** Is the breaker currently rejecting? *)

  type state =
    | Closed  (** normal operation: runs go through *)
    | Open  (** breaker tripped, cooldown pending: runs are rejected *)
    | Half_open
        (** cooldown elapsed after a trip: the next run probes; a
            success closes the breaker, an exhausted run re-opens it *)

  val state : g -> state
  (** The breaker's tri-state, so policies and tests can observe it
      directly instead of inferring it from retry counts. [Half_open]
      requires the breaker to be enabled ([circuit_threshold > 0]). *)

  val state_name : state -> string
  (** ["closed"] / ["open"] / ["half_open"]. *)
end
