(** Online statistics used throughout the benchmarks.

    [Summary] is a Welford accumulator (mean/variance/min/max);
    [Histogram] is an HDR-style log-bucketed histogram giving percentile
    estimates with bounded relative error; [Meter] counts events per unit
    of simulated time. *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** Mean of the observations; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val merge : t -> t -> t
  (** [merge a b] is a summary of the union of both observation sets. *)

  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  type t

  val create : ?lo:float -> ?hi:float -> ?precision:float -> unit -> t
  (** [create ~lo ~hi ~precision ()] covers values in [\[lo, hi\]] with
      geometric buckets of relative width [precision] (default 1%%).
      Values outside the range are clamped into the edge buckets.
      Defaults: [lo] = 1 (ns), [hi] = 1e12 (1000 s). *)

  val add : t -> float -> unit
  val add_n : t -> float -> int -> unit
  (** [add_n t v n] records [n] observations of value [v]. *)

  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]]. Returns the representative
      value of the bucket containing the requested rank; [nan] when empty. *)

  val merge : t -> t -> t
  val copy : t -> t
  (** Independent histogram with the same geometry and contents. *)

  val pp : Format.formatter -> t -> unit
end

module Meter : sig
  type t

  val create : unit -> t
  val mark : t -> now:float -> unit
  val mark_n : t -> now:float -> int -> unit
  val count : t -> int

  val rate : t -> float
  (** Events per simulated second over the observation span, i.e.
      [count / (last - first)]. [nan] with fewer than two marks. *)

  val copy : t -> t

  val merge : t -> t -> t
  (** Counts add; the observation span covers both inputs. *)
end
