(** Virtio block device (front-end view).

    Requests follow the virtio-blk layout: a 16-byte header descriptor,
    the data segments, and a 1-byte status descriptor — so a 4 KB read is
    a 3-descriptor chain (or one indirect slot). Completion is conveyed
    to the submitting process through an ivar carried in the payload. *)

type op = Read | Write | Flush

type req = {
  op : op;
  sector : int;
  bytes : int;
  submitted_at : float;
  mutable failed : bool;
      (** set by the backend before completion when the request was
          refused downstream (storage admission queue full); the guest
          sees a completed-with-error request it may retry *)
  done_ : float Bm_engine.Sim.Ivar.ivar;
      (** filled with the completion timestamp when the request is reaped *)
}

type t

val sector_bytes : int

val create : ?obs:Bm_engine.Obs.t -> ?queue_size:int -> on_access:(unit -> unit) -> unit -> t
(** [queue_size] defaults to 128, virtio-blk's classic depth. With
    [obs], the ring traces on ["virtio.blk"] and submissions/reaps are
    counted and metered. *)

val pci : t -> Virtio_pci.t
val ring : t -> req Vring.t

val set_notify : t -> (unit -> unit) -> unit
val set_interrupt : t -> (unit -> unit) -> unit
val fire_interrupt : t -> unit

val probe : t -> (unit, string) result

val make_req : op:op -> sector:int -> bytes:int -> now:float -> req

val submit : t -> ?indirect:bool -> req -> bool
(** Queue a request and notify; [false] if the ring is full. *)

val reap : t -> int
(** Reap completions, filling each request's [done_] ivar with the
    current time; returns the number reaped. *)

val submitted : t -> int
val completed : t -> int
