lib/cloud/limits.ml: Bm_engine Float Token_bucket
