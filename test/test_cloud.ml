(* Tests for the cloud substrate: limits, vswitch, storage, images,
   tap path, control plane. *)

open Bm_engine
open Bm_virtio
open Bm_cloud

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let mk_pkt ?(count = 1) ?(size = 64) ~src ~dst id =
  Packet.make ~id ~src ~dst ~size ~count ~protocol:Packet.Udp ~sent_at:0.0 ()

let cores_of sim = Bm_hw.Cores.create sim ~spec:Bm_hw.Cpu_spec.base_server_e5 ()

(* ------------------------------------------------------------------ *)
(* Limits *)

let test_limits_pps_cap () =
  let sim = Sim.create () in
  let limits = Limits.cloud_net () in
  let meter = Stats.Meter.create () in
  Sim.spawn sim (fun () ->
      (* Offer 8M pps in bursts of 32: should pass at 4M. *)
      for _ = 1 to 50_000 do
        ignore (Limits.net_admit limits ~packets:32 ~bytes_:(32 * 64));
        Stats.Meter.mark_n meter ~now:(Sim.clock ()) 32
      done);
  Sim.run sim;
  let rate = Stats.Meter.rate meter in
  check_bool "~4M pps" true (Float.abs (rate -. 4e6) /. 4e6 < 0.02)

let test_limits_bandwidth_cap () =
  let sim = Sim.create () in
  let limits = Limits.cloud_net () in
  let meter = Stats.Meter.create () in
  Sim.spawn sim (fun () ->
      (* 1500B packets: the 10 Gbit/s bucket binds before the PPS one. *)
      for _ = 1 to 30_000 do
        ignore (Limits.net_admit limits ~packets:8 ~bytes_:(8 * 1500));
        Stats.Meter.mark_n meter ~now:(Sim.clock ()) (8 * 1500)
      done);
  Sim.run sim;
  let byte_rate = Stats.Meter.rate meter in
  check_bool "~10Gbit/s" true (Float.abs ((byte_rate *. 8.0) -. 10e9) /. 10e9 < 0.02)

let test_limits_iops_cap () =
  let sim = Sim.create () in
  let limits = Limits.cloud_blk () in
  let meter = Stats.Meter.create () in
  Sim.spawn sim (fun () ->
      for _ = 1 to 50_000 do
        ignore (Limits.blk_admit limits ~bytes_:4096);
        Stats.Meter.mark meter ~now:(Sim.clock ())
      done);
  Sim.run sim;
  let rate = Stats.Meter.rate meter in
  check_bool "~25K IOPS" true (Float.abs (rate -. 25e3) /. 25e3 < 0.02)

let test_limits_unlimited () =
  let sim = Sim.create () in
  let limits = Limits.unlimited_net () in
  Sim.spawn sim (fun () ->
      for _ = 1 to 1000 do
        ignore (Limits.net_admit limits ~packets:1000 ~bytes_:1_000_000)
      done;
      check_float "no time passed" 0.0 (Sim.clock ()));
  Sim.run sim

(* ------------------------------------------------------------------ *)
(* Vswitch *)

let test_vswitch_local_delivery () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let got = ref [] in
  let a = Vswitch.register vs ~deliver:(fun pkt -> got := pkt :: !got) in
  let b = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Sim.spawn sim (fun () -> Vswitch.send vs (mk_pkt ~src:b ~dst:a 1));
  Sim.run sim;
  check_int "delivered" 1 (List.length !got);
  check_int "forwarded counter" 1 (Vswitch.forwarded vs)

let test_vswitch_hop_latency () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) ~hop_ns:5_000.0 () in
  let arrival = ref nan in
  let a = Vswitch.register vs ~deliver:(fun _ -> arrival := Sim.now sim) in
  let b = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Sim.spawn sim (fun () -> Vswitch.send vs (mk_pkt ~src:b ~dst:a 1));
  Sim.run sim;
  check_bool "hop adds >= 5us" true (!arrival >= 5_000.0)

let test_vswitch_cross_server () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim ~gbit_s:100.0 ~rtt_ns:10_000.0 () in
  let vs1 = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let vs2 = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let arrival = ref nan in
  let a = Vswitch.register vs1 ~deliver:(fun _ -> ()) in
  let b = Vswitch.register vs2 ~deliver:(fun _ -> arrival := Sim.now sim) in
  Sim.spawn sim (fun () -> Vswitch.send vs1 (mk_pkt ~src:a ~dst:b 1));
  Sim.run sim;
  check_bool "crossed fabric with rtt" true (!arrival >= 10_000.0);
  check_int "peer forwarded" 1 (Vswitch.forwarded vs2)

let test_vswitch_unknown_drops () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let a = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Sim.spawn sim (fun () -> Vswitch.send vs (mk_pkt ~src:a ~dst:9999 1));
  Sim.run sim;
  check_int "dropped" 1 (Vswitch.dropped vs)

(* Unknown destinations are not silent: they land in a dedicated
   counter, a named metric, and a trace instant, on top of the total. *)
let test_vswitch_unknown_drop_observability () =
  let sim = Sim.create () in
  let metrics = Metrics.create () in
  let trace = Trace.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs =
    Vswitch.create sim ~obs:(Obs.of_sim ~trace ~metrics sim) ~fabric ~cores:(cores_of sim) ()
  in
  let a = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Sim.spawn sim (fun () ->
      Vswitch.send vs (mk_pkt ~count:3 ~src:a ~dst:9999 1);
      Vswitch.send vs (mk_pkt ~src:a ~dst:8888 2));
  Sim.run sim;
  check_int "unknown_dropped counter" 4 (Vswitch.unknown_dropped vs);
  check_int "total dropped includes unknown" 4 (Vswitch.dropped vs);
  check_int "named metric" 4
    (int_of_float (Metrics.counter_value metrics "cloud.vswitch.unknown_dst_dropped"));
  check_int "trace instants" 2 (Trace.count trace ~track:"cloud.vswitch" ~name:"unknown_dst" ())

let test_vswitch_unregister () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let got = ref 0 in
  let a = Vswitch.register vs ~deliver:(fun _ -> incr got) in
  let b = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Vswitch.unregister vs a;
  Sim.spawn sim (fun () -> Vswitch.send vs (mk_pkt ~src:b ~dst:a 1));
  Sim.run sim;
  check_int "no delivery" 0 !got;
  check_int "dropped after unregister" 1 (Vswitch.dropped vs)

(* ------------------------------------------------------------------ *)
(* Blockstore *)

let run_store_latencies ~kind ~op ~n =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let store = Blockstore.create sim rng ~kind () in
  let hist = Stats.Histogram.create ~lo:1_000.0 ~hi:1e10 () in
  Sim.spawn sim (fun () ->
      for _ = 1 to n do
        let t0 = Sim.clock () in
        ignore (Blockstore.serve store ~op ~bytes_:4096);
        Stats.Histogram.add hist (Sim.clock () -. t0)
      done);
  Sim.run sim;
  hist

let test_store_cloud_latency_scale () =
  let hist = run_store_latencies ~kind:Blockstore.Cloud_ssd ~op:`Read ~n:2000 in
  let avg = Stats.Histogram.mean hist in
  (* ~40us rtt + ~60us media + transfer: around 100-130us. *)
  check_bool "avg in cloud band" true (avg > 80_000.0 && avg < 180_000.0);
  let p999 = Stats.Histogram.percentile hist 99.9 in
  check_bool "tail exists" true (p999 > 1.5 *. avg)

let test_store_local_faster () =
  let cloud = run_store_latencies ~kind:Blockstore.Cloud_ssd ~op:`Read ~n:1000 in
  let local = run_store_latencies ~kind:Blockstore.Local_ssd ~op:`Read ~n:1000 in
  check_bool "local beats cloud" true
    (Stats.Histogram.mean local < Stats.Histogram.mean cloud);
  check_bool "local ~50us" true (Stats.Histogram.mean local < 80_000.0)

let test_store_parallelism_queues () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:6 in
  let store = Blockstore.create sim rng ~kind:Blockstore.Local_ssd ~parallelism:1 () in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Sim.spawn sim (fun () ->
        ignore (Blockstore.serve store ~op:`Read ~bytes_:4096);
        done_at := Sim.now sim :: !done_at)
  done;
  Sim.run sim;
  match List.sort compare !done_at with
  | [ t1; t2; t3 ] ->
    check_bool "serialised" true (t2 > t1 +. 10_000.0 && t3 > t2 +. 10_000.0)
  | _ -> Alcotest.fail "expected 3 completions"

(* ------------------------------------------------------------------ *)
(* Image *)

let test_image_boot_bytes () =
  let img = Image.centos7 in
  check_int "total = parts" (img.Image.bootloader_bytes + img.Image.kernel_bytes + img.Image.initrd_bytes)
    (Image.total_boot_bytes img);
  check_bool "kernel version recorded" true (img.Image.kernel_version = "3.10.0-514.26.2.el7")

let test_image_store () =
  let store = Image.Store.create () in
  Image.Store.add store Image.centos7;
  Image.Store.add store (Image.make ~name:"ubuntu-18.04" ~kernel_version:"4.15" ());
  check_bool "find hit" true (Image.Store.find store "centos-7" <> None);
  check_bool "find miss" true (Image.Store.find store "windows" = None);
  check_int "two images" 2 (List.length (Image.Store.names store))

(* ------------------------------------------------------------------ *)
(* Tap slow path *)

let test_tap_slow_path () =
  let sim = Sim.create () in
  let delivered = ref 0 in
  let tap = Tap.create sim ~deliver:(fun pkt -> delivered := !delivered + pkt.Packet.count) () in
  check_bool "tap ceiling ~333Kpps" true (Tap.max_pps tap < 500_000.0);
  let meter = Stats.Meter.create () in
  Sim.spawn sim (fun () ->
      for i = 1 to 2_000 do
        Tap.send tap (mk_pkt ~src:1 ~dst:2 ~count:4 i);
        Stats.Meter.mark_n meter ~now:(Sim.clock ()) 4
      done);
  Sim.run sim;
  check_int "all delivered" 8_000 !delivered;
  (* Far slower than the DPDK path's millions of pps. *)
  check_bool "slow" true (Stats.Meter.rate meter < 400_000.0)

(* ------------------------------------------------------------------ *)
(* Control plane *)

let test_place_bm_takes_whole_board () =
  let cp = Control_plane.create () in
  let _ = Control_plane.add_server cp (Control_plane.Bm_server { boards = 2; board_threads = 32 }) in
  (match Control_plane.place cp ~name:"g1" ~vcpus:8 ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
  | Ok p ->
    check_bool "bare metal" true (p.Control_plane.substrate = Control_plane.Bare_metal);
    check_int "whole board threads" 32 p.Control_plane.threads
  | Error e -> Alcotest.fail e);
  check_int "used = board" 32 (Control_plane.used_threads cp)

let test_place_vm_exact_threads () =
  let cp = Control_plane.create () in
  let _ = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
  (match Control_plane.place cp ~name:"v1" ~vcpus:8 ~prefer:Control_plane.Virtual ~image:Image.centos7 () with
  | Ok p -> check_int "exact" 8 p.Control_plane.threads
  | Error e -> Alcotest.fail e);
  check_int "used" 8 (Control_plane.used_threads cp)

let test_place_capacity_exhaustion () =
  let cp = Control_plane.create () in
  let _ = Control_plane.add_server cp (Control_plane.Bm_server { boards = 2; board_threads = 32 }) in
  let ok name =
    match Control_plane.place cp ~name ~vcpus:32 ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
    | Ok _ -> true
    | Error _ -> false
  in
  check_bool "1st board" true (ok "a");
  check_bool "2nd board" true (ok "b");
  check_bool "3rd rejected" false (ok "c");
  Control_plane.release cp "a";
  check_bool "after release" true (ok "d")

let test_place_board_too_small () =
  let cp = Control_plane.create () in
  let _ = Control_plane.add_server cp (Control_plane.Bm_server { boards = 16; board_threads = 8 }) in
  match Control_plane.place cp ~name:"big" ~vcpus:32 ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
  | Ok _ -> Alcotest.fail "8HT board accepted a 32 vCPU guest"
  | Error _ -> ()

let test_cold_migration_roundtrip () =
  let cp = Control_plane.create () in
  let _ = Control_plane.add_server cp (Control_plane.Bm_server { boards = 1; board_threads = 32 }) in
  let _ = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
  (match Control_plane.place cp ~name:"g" ~vcpus:16 ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* bm -> vm *)
  (match Control_plane.cold_migrate cp ~name:"g" ~to_:Control_plane.Virtual with
  | Ok p ->
    check_bool "now virtual" true (p.Control_plane.substrate = Control_plane.Virtual);
    check_int "vm threads" 16 p.Control_plane.threads
  | Error e -> Alcotest.fail e);
  (* board freed: a second bm guest fits *)
  (match Control_plane.place cp ~name:"g2" ~vcpus:32 ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("board not freed: " ^ e));
  (* vm -> bm now fails (board taken) and rolls back *)
  (match Control_plane.cold_migrate cp ~name:"g" ~to_:Control_plane.Bare_metal with
  | Ok _ -> Alcotest.fail "migration should fail, no free board"
  | Error _ -> ());
  match Control_plane.lookup cp "g" with
  | Some p -> check_bool "rollback kept vm placement" true (p.Control_plane.substrate = Control_plane.Virtual)
  | None -> Alcotest.fail "instance lost by failed migration"

let test_density_table1 () =
  (* One rack slot of each: a BM-Hive server sells 16x32 HT, a vm server
     88 HT — the density column of Table 1. *)
  let cp = Control_plane.create () in
  let _ = Control_plane.add_server cp (Control_plane.Bm_server { boards = 16; board_threads = 32 }) in
  let _ = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
  check_int "sellable" (16 * 32 + 88) (Control_plane.sellable_threads cp)

let prop_place_release_conserves =
  QCheck.Test.make ~name:"place/release conserves used_threads" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 32))
    (fun sizes ->
      let cp = Control_plane.create () in
      let _ = Control_plane.add_server cp (Control_plane.Bm_server { boards = 8; board_threads = 32 }) in
      let _ = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
      let placed =
        List.filteri
          (fun i vcpus ->
            match Control_plane.place cp ~name:(string_of_int i) ~vcpus ~image:Bm_cloud.Image.centos7 () with
            | Ok _ -> true
            | Error _ -> false)
          sizes
      in
      ignore placed;
      List.iteri (fun i _ -> Control_plane.release cp (string_of_int i)) sizes;
      Control_plane.used_threads cp = 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "cloud.limits",
      [
        Alcotest.test_case "4M PPS cap" `Quick test_limits_pps_cap;
        Alcotest.test_case "10Gbit cap" `Quick test_limits_bandwidth_cap;
        Alcotest.test_case "25K IOPS cap" `Quick test_limits_iops_cap;
        Alcotest.test_case "unlimited" `Quick test_limits_unlimited;
      ] );
    ( "cloud.vswitch",
      [
        Alcotest.test_case "local delivery" `Quick test_vswitch_local_delivery;
        Alcotest.test_case "hop latency" `Quick test_vswitch_hop_latency;
        Alcotest.test_case "cross-server" `Quick test_vswitch_cross_server;
        Alcotest.test_case "unknown dst drops" `Quick test_vswitch_unknown_drops;
        Alcotest.test_case "unknown dst observability" `Quick
          test_vswitch_unknown_drop_observability;
        Alcotest.test_case "unregister" `Quick test_vswitch_unregister;
      ] );
    ( "cloud.blockstore",
      [
        Alcotest.test_case "cloud latency scale" `Quick test_store_cloud_latency_scale;
        Alcotest.test_case "local faster" `Quick test_store_local_faster;
        Alcotest.test_case "parallelism queues" `Quick test_store_parallelism_queues;
      ] );
    ( "cloud.image",
      [
        Alcotest.test_case "boot bytes" `Quick test_image_boot_bytes;
        Alcotest.test_case "store" `Quick test_image_store;
      ] );
    ( "cloud.tap", [ Alcotest.test_case "slow path" `Quick test_tap_slow_path ] );
    ( "cloud.control_plane",
      [
        Alcotest.test_case "bm takes whole board" `Quick test_place_bm_takes_whole_board;
        Alcotest.test_case "vm exact threads" `Quick test_place_vm_exact_threads;
        Alcotest.test_case "capacity exhaustion" `Quick test_place_capacity_exhaustion;
        Alcotest.test_case "board too small" `Quick test_place_board_too_small;
        Alcotest.test_case "cold migration" `Quick test_cold_migration_roundtrip;
        Alcotest.test_case "Table 1 density" `Quick test_density_table1;
      ] );
    qsuite "cloud.control_plane.prop" [ prop_place_release_conserves ];
  ]

(* Placement strategies. *)
let test_strategies_differ () =
  let setup () =
    let cp = Control_plane.create () in
    let s1 = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
    let s2 = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
    (* Pre-load server 1 so headrooms differ. *)
    (match Control_plane.place cp ~name:"preload" ~vcpus:60 ~prefer:Control_plane.Virtual ~image:Image.centos7 () with
    | Ok p -> check_int "preload on s1" s1 p.Control_plane.server
    | Error e -> Alcotest.fail e);
    (cp, s1, s2)
  in
  let place_with strategy =
    let cp, s1, s2 = setup () in
    match
      Control_plane.place cp ~name:"x" ~vcpus:8 ~prefer:Control_plane.Virtual ~strategy
        ~image:Image.centos7 ()
    with
    | Ok p -> (p.Control_plane.server, s1, s2)
    | Error e -> Alcotest.fail e
  in
  let first, s1, _ = place_with Control_plane.First_fit in
  check_int "first-fit takes s1" s1 first;
  let best, s1', _ = place_with Control_plane.Best_fit in
  check_int "best-fit packs the fuller s1" s1' best;
  let spread, _, s2'' = place_with Control_plane.Spread in
  check_int "spread balances onto s2" s2'' spread

let test_best_fit_avoids_stranding () =
  (* Two bm servers with differently sized boards: best-fit should put a
     small guest on the small-board server, keeping big boards free. *)
  let cp = Control_plane.create () in
  let small = Control_plane.add_server cp (Control_plane.Bm_server { boards = 1; board_threads = 8 }) in
  let big = Control_plane.add_server cp (Control_plane.Bm_server { boards = 1; board_threads = 32 }) in
  ignore big;
  (* Both feasible for 8 vCPUs; first-fit would also pick [small] here,
     so force the interesting case: declaration order big-first. *)
  let cp2 = Control_plane.create () in
  let big2 = Control_plane.add_server cp2 (Control_plane.Bm_server { boards = 1; board_threads = 32 }) in
  let small2 = Control_plane.add_server cp2 (Control_plane.Bm_server { boards = 1; board_threads = 8 }) in
  ignore big2;
  (match Control_plane.place cp2 ~name:"tiny" ~vcpus:4 ~prefer:Control_plane.Bare_metal
           ~strategy:Control_plane.First_fit ~image:Image.centos7 () with
  | Ok p -> check_int "first-fit burns the 32HT board" 32 p.Control_plane.threads
  | Error e -> Alcotest.fail e);
  ignore small2;
  (match Control_plane.place cp ~name:"tiny" ~vcpus:4 ~prefer:Control_plane.Bare_metal
           ~strategy:Control_plane.Best_fit ~image:Image.centos7 () with
  | Ok p ->
    check_int "best-fit uses the 8HT board" 8 p.Control_plane.threads;
    check_int "on the small server" small p.Control_plane.server
  | Error e -> Alcotest.fail e)

let strategy_suites =
  [
    ( "cloud.control_plane.strategies",
      [
        Alcotest.test_case "strategies differ" `Quick test_strategies_differ;
        Alcotest.test_case "best-fit avoids stranding" `Quick test_best_fit_avoids_stranding;
      ] );
  ]

let suites = suites @ strategy_suites

(* vhost-user protocol state machine (§3.4.2). *)
let test_vhost_standard_handshake () =
  let b = Vhost_user.create () in
  (match Vhost_user.standard_handshake b ~driver_features:Bm_virtio.Feature.default_net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "ring 0 enabled" true (Vhost_user.ring_enabled b 0);
  check_bool "ring 1 enabled" true (Vhost_user.ring_enabled b 1);
  check_bool "features recorded" true (Vhost_user.negotiated_features b <> None);
  check_bool "many messages" true (Vhost_user.messages_handled b > 10)

let test_vhost_ordering_enforced () =
  let b = Vhost_user.create () in
  (* Features before owner: rejected. *)
  (match Vhost_user.handle b (Vhost_user.Set_features 0) with
  | Ok _ -> Alcotest.fail "accepted SET_FEATURES before SET_OWNER"
  | Error _ -> ());
  (match Vhost_user.handle b Vhost_user.Set_owner with
  | Ok Vhost_user.Ack -> ()
  | _ -> Alcotest.fail "SET_OWNER failed");
  (* Vring setup before the memory table: rejected. *)
  (match Vhost_user.handle b (Vhost_user.Set_vring_num { index = 0; size = 256 }) with
  | Ok _ -> Alcotest.fail "accepted VRING_NUM before MEM_TABLE"
  | Error _ -> ());
  (* Enabling an unconfigured ring: rejected. *)
  ignore (Vhost_user.handle b (Vhost_user.Set_features 0));
  ignore (Vhost_user.handle b (Vhost_user.Set_mem_table { regions = 1 }));
  match Vhost_user.handle b (Vhost_user.Set_vring_enable { index = 0; enabled = true }) with
  | Ok _ -> Alcotest.fail "enabled an unconfigured ring"
  | Error _ -> ()

let test_vhost_feature_subset () =
  let b = Vhost_user.create ~backend_features:0xF0 () in
  ignore (Vhost_user.handle b Vhost_user.Set_owner);
  match Vhost_user.handle b (Vhost_user.Set_features 0x10F) with
  | Ok _ -> Alcotest.fail "accepted features outside the offer"
  | Error _ -> (
    match Vhost_user.handle b (Vhost_user.Set_features 0xF0) with
    | Ok Vhost_user.Ack -> ()
    | _ -> Alcotest.fail "rejected a legal subset")

let test_vhost_mem_table_invalidates_rings () =
  let b = Vhost_user.create () in
  (match Vhost_user.standard_handshake b ~driver_features:Bm_virtio.Feature.default_net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Re-mapping guest memory (ballooning, migration-in) kills ring state. *)
  ignore (Vhost_user.handle b (Vhost_user.Set_mem_table { regions = 3 }));
  check_bool "rings disabled after remap" false (Vhost_user.ring_enabled b 0);
  match Vhost_user.handle b (Vhost_user.Set_vring_enable { index = 0; enabled = true }) with
  | Ok _ -> Alcotest.fail "stale ring re-enabled without reconfiguration"
  | Error _ -> ()

let test_vhost_get_vring_base_stops () =
  let b = Vhost_user.create () in
  (match Vhost_user.standard_handshake b ~driver_features:0 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Vhost_user.handle b (Vhost_user.Get_vring_base { index = 1 }) with
  | Ok (Vhost_user.Vring_base 0) -> ()
  | _ -> Alcotest.fail "expected base 0");
  check_bool "ring stopped" false (Vhost_user.ring_enabled b 1);
  check_bool "other ring untouched" true (Vhost_user.ring_enabled b 0)

let vhost_suites =
  [
    ( "cloud.vhost_user",
      [
        Alcotest.test_case "standard handshake" `Quick test_vhost_standard_handshake;
        Alcotest.test_case "ordering enforced" `Quick test_vhost_ordering_enforced;
        Alcotest.test_case "feature subset" `Quick test_vhost_feature_subset;
        Alcotest.test_case "mem table invalidates rings" `Quick test_vhost_mem_table_invalidates_rings;
        Alcotest.test_case "GET_VRING_BASE stops ring" `Quick test_vhost_get_vring_base_stops;
      ] );
  ]

let suites = suites @ vhost_suites

(* ------------------------------------------------------------------ *)
(* Control-plane error paths and server-failure evacuation *)

let mixed_fleet () =
  let cp = Control_plane.create () in
  let bm0 = Control_plane.add_server cp (Control_plane.Bm_server { boards = 2; board_threads = 16 }) in
  let bm1 = Control_plane.add_server cp (Control_plane.Bm_server { boards = 2; board_threads = 16 }) in
  let vm = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 32 }) in
  (cp, bm0, bm1, vm)

let test_fleet_full_placement_fails () =
  let cp, _, _, _ = mixed_fleet () in
  for i = 0 to 3 do
    match Control_plane.place cp ~name:(Printf.sprintf "bm%d" i) ~vcpus:16
            ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  (match Control_plane.place cp ~name:"overflow" ~vcpus:16 ~prefer:Control_plane.Bare_metal
           ~image:Image.centos7 () with
  | Ok _ -> Alcotest.fail "placed on a full bm fleet"
  | Error _ -> ());
  (* The error left no partial state behind: freeing one board admits it. *)
  Control_plane.release cp "bm0";
  match Control_plane.place cp ~name:"overflow" ~vcpus:16 ~prefer:Control_plane.Bare_metal
          ~image:Image.centos7 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("fleet not recovered after release: " ^ e)

let test_cold_migrate_unknown_instance () =
  let cp, _, _, _ = mixed_fleet () in
  match Control_plane.cold_migrate cp ~name:"ghost" ~to_:Control_plane.Virtual with
  | Ok _ -> Alcotest.fail "migrated an instance that was never placed"
  | Error _ -> check_int "no capacity consumed" 0 (Control_plane.used_threads cp)

let test_release_idempotent () =
  let cp, _, _, _ = mixed_fleet () in
  (match Control_plane.place cp ~name:"g" ~vcpus:4 ~prefer:Control_plane.Virtual
           ~image:Image.centos7 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Control_plane.release cp "g";
  check_int "freed" 0 (Control_plane.used_threads cp);
  (* A second release of the same name, and of a never-placed name, must
     not drive the accounting negative. *)
  Control_plane.release cp "g";
  Control_plane.release cp "never-placed";
  check_int "still zero" 0 (Control_plane.used_threads cp)

let test_fail_server_unknown () =
  let cp, _, _, _ = mixed_fleet () in
  match Control_plane.fail_server cp 99 with
  | () -> Alcotest.fail "unknown server accepted"
  | exception Invalid_argument _ -> ()

let evacuate_with strategy =
  let cp, bm0, bm1, vm = mixed_fleet () in
  for i = 0 to 1 do
    match Control_plane.place cp ~name:(Printf.sprintf "bm%d" i) ~vcpus:16
            ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  let outcomes = Control_plane.evacuate cp ~server:bm0 ~strategy () in
  check_int "both victims handled" 2 (List.length outcomes);
  check_bool "server marked failed" true (Control_plane.server_failed cp bm0);
  List.iter
    (fun (name, result) ->
      match result with
      | Error e -> Alcotest.fail (name ^ " stranded: " ^ e)
      | Ok p ->
        check_bool (name ^ " left the failed server") true (p.Control_plane.server <> bm0);
        check_bool (name ^ " stayed bare-metal") true
          (p.Control_plane.substrate = Control_plane.Bare_metal))
    outcomes;
  (* The failed server sells nothing; the survivors sell everything. *)
  check_int "capacity excludes the dead server" (2 * 16 + 32) (Control_plane.sellable_threads cp);
  ignore bm1;
  ignore vm

let test_evacuate_first_fit () = evacuate_with Control_plane.First_fit
let test_evacuate_best_fit () = evacuate_with Control_plane.Best_fit
let test_evacuate_spread () = evacuate_with Control_plane.Spread

let test_evacuate_overflow_cold_migrates () =
  (* Four victims, two spare boards: two survive bare-metal, two take
     the cold-migration path onto the vm substrate. *)
  let cp = Control_plane.create () in
  let victim = Control_plane.add_server cp (Control_plane.Bm_server { boards = 4; board_threads = 16 }) in
  let _spare = Control_plane.add_server cp (Control_plane.Bm_server { boards = 2; board_threads = 16 }) in
  let _vm = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
  for i = 0 to 3 do
    match Control_plane.place cp ~name:(Printf.sprintf "bm%d" i) ~vcpus:16
            ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  let outcomes = Control_plane.evacuate cp ~server:victim () in
  let on sub =
    List.length
      (List.filter (function _, Ok p -> p.Control_plane.substrate = sub | _, Error _ -> false)
         outcomes)
  in
  check_int "two stay bare-metal" 2 (on Control_plane.Bare_metal);
  check_int "two cold-migrate" 2 (on Control_plane.Virtual)

let failure_suites =
  [
    ( "cloud.control_plane.failures",
      [
        Alcotest.test_case "fleet full" `Quick test_fleet_full_placement_fails;
        Alcotest.test_case "cold_migrate unknown" `Quick test_cold_migrate_unknown_instance;
        Alcotest.test_case "release idempotent" `Quick test_release_idempotent;
        Alcotest.test_case "fail_server unknown" `Quick test_fail_server_unknown;
        Alcotest.test_case "evacuate first-fit" `Quick test_evacuate_first_fit;
        Alcotest.test_case "evacuate best-fit" `Quick test_evacuate_best_fit;
        Alcotest.test_case "evacuate spread" `Quick test_evacuate_spread;
        Alcotest.test_case "evacuate overflow cold-migrates" `Quick
          test_evacuate_overflow_cold_migrates;
      ] );
  ]

let suites = suites @ failure_suites

(* ------------------------------------------------------------------ *)
(* Overload control: stale delivery, egress drops, storage admission,
   placement ceiling, shedding limiters *)

(* Regression: a packet in flight when its destination unregisters must
   be dropped at delivery time, not handed to the stale endpoint's
   closure. The endpoint captured at send time is re-checked against the
   registration table when the hop delay expires. *)
let test_vswitch_stale_delivery_dropped () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let got = ref 0 in
  let a = Vswitch.register vs ~deliver:(fun _ -> incr got) in
  let b = Vswitch.register vs ~deliver:(fun _ -> ()) in
  (* Send at t=0: the switch CPU cost (~300 ns) runs first, then the
     burst sits in the egress queue for the 5 us hop. Unregistering at
     t=2 us lands squarely inside that in-flight window. *)
  Sim.spawn sim (fun () -> Vswitch.send vs (mk_pkt ~src:b ~dst:a 1));
  Sim.schedule sim ~delay:2_000.0 (fun () -> Vswitch.unregister vs a);
  Sim.run sim;
  check_int "stale closure never ran" 0 !got;
  check_int "counted as stale" 1 (Vswitch.stale_dropped vs);
  check_int "included in total drops" 1 (Vswitch.dropped vs)

(* A tenant that replaces the departed one must not receive the old
   tenant's in-flight packet either. *)
let test_vswitch_stale_not_delivered_to_successor () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) () in
  let old_got = ref 0 and new_got = ref 0 in
  let a = Vswitch.register vs ~deliver:(fun _ -> incr old_got) in
  let b = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Sim.spawn sim (fun () -> Vswitch.send vs (mk_pkt ~src:b ~dst:a 1));
  Sim.schedule sim ~delay:2_000.0 (fun () ->
      Vswitch.unregister vs a;
      ignore (Vswitch.register vs ~deliver:(fun _ -> incr new_got)));
  Sim.run sim;
  check_int "old closure never ran" 0 !old_got;
  check_int "new tenant not handed old packet" 0 !new_got;
  check_int "stale drop" 1 (Vswitch.stale_dropped vs)

let test_vswitch_egress_overflow_drops () =
  let sim = Sim.create () in
  let fabric = Vswitch.create_fabric sim () in
  let vs = Vswitch.create sim ~fabric ~cores:(cores_of sim) ~egress_capacity:4 () in
  let got = ref 0 in
  let a = Vswitch.register vs ~deliver:(fun _ -> incr got) in
  let b = Vswitch.register vs ~deliver:(fun _ -> ()) in
  Sim.spawn sim (fun () ->
      (* 10 sends back-to-back at one instant: only 4 fit in flight. *)
      for i = 1 to 10 do
        Vswitch.send vs (mk_pkt ~src:b ~dst:a i)
      done);
  Sim.run sim;
  check_int "capacity delivered" 4 !got;
  check_int "overflow dropped" 6 (Vswitch.egress_dropped vs);
  check_int "total drops" 6 (Vswitch.dropped vs)

let test_blockstore_rejects_over_queue () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  (* One server slot, one queue slot: of three simultaneous requests,
     one serves, one queues, one is refused at admission. *)
  let store = Blockstore.create sim rng ~kind:Blockstore.Local_ssd ~parallelism:1 ~queue_capacity:1 () in
  let served = ref 0 and rejected = ref 0 in
  for _ = 1 to 3 do
    Sim.spawn sim (fun () ->
        match Blockstore.serve store ~op:`Read ~bytes_:4096 with
        | `Served -> incr served
        | `Rejected -> incr rejected)
  done;
  Sim.run sim;
  check_int "two eventually served" 2 !served;
  check_int "one refused" 1 !rejected;
  check_int "counter matches" 1 (Blockstore.rejected store)

(* A rejected request still pays the network round trip to the storage
   node — refusal is not free, but it is bounded (no service time). *)
let test_blockstore_rejection_costs_rtt_only () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  let store = Blockstore.create sim rng ~kind:Blockstore.Cloud_ssd ~parallelism:1 ~queue_capacity:1 () in
  let reject_latency = ref nan in
  for _ = 1 to 3 do
    Sim.spawn sim (fun () ->
        let t0 = Sim.clock () in
        match Blockstore.serve store ~op:`Read ~bytes_:4096 with
        | `Served -> ()
        | `Rejected -> reject_latency := Sim.clock () -. t0)
  done;
  Sim.run sim;
  let service = Blockstore.mean_service_ns store ~op:`Read in
  check_bool "refusal latency is bounded" true
    (Float.is_finite !reject_latency && !reject_latency < service)

let test_control_plane_admission_ceiling () =
  let cp = Control_plane.create ~admission_ceiling:0.5 () in
  let _ = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
  let place name vcpus =
    Control_plane.place cp ~name ~vcpus ~prefer:Control_plane.Virtual ~image:Image.centos7 ()
  in
  (* 44 of 88 threads is exactly the ceiling; the next request tips over. *)
  (match place "ok" 44 with Ok _ -> () | Error e -> Alcotest.fail e);
  (match place "over" 8 with
  | Ok _ -> Alcotest.fail "placed above the admission ceiling"
  | Error e -> check_bool "names the ceiling" true (Astring.String.is_infix ~affix:"ceiling" e));
  check_int "rejection counted" 1 (Control_plane.admission_rejections cp);
  (* Raising the ceiling re-admits the same request. *)
  Control_plane.set_admission_ceiling cp 1.0;
  (match place "over" 8 with Ok _ -> () | Error e -> Alcotest.fail e);
  check_int "no new rejection" 1 (Control_plane.admission_rejections cp)

let test_limits_shed_never_blocks () =
  let sim = Sim.create () in
  let limits = Limits.cloud_net ~policy:Limits.Shed () in
  let admitted = ref 0 and refused = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to 1000 do
        if Limits.net_admit limits ~packets:64 ~bytes_:(64 * 64) then incr admitted
        else incr refused
      done);
  Sim.run sim;
  (* Everything ran at t=0: the burst allowance admits, the rest shed,
     and nobody waited. *)
  check_float "no time passed" 0.0 (Sim.now sim);
  check_bool "burst admitted" true (!admitted > 0);
  check_bool "excess refused" true (!refused > 0);
  check_int "shed counter" (64 * !refused) (Limits.net_shed limits)

(* Shed admission is atomic across the PPS and bandwidth buckets: a
   burst refused by one limit must not drain the other. *)
let test_limits_shed_atomic_across_buckets () =
  let sim = Sim.create () in
  (* 1000 pps, effectively unlimited bandwidth. *)
  let limits = Limits.custom_net ~policy:Limits.Shed ~pps:1000.0 ~gbit_s:1000.0 () in
  Sim.spawn sim (fun () ->
      (* The PPS burst is 2: a 64-packet burst always fails the PPS
         bucket; repeating it must leave the bandwidth bucket full. *)
      for _ = 1 to 100 do
        ignore (Limits.net_admit limits ~packets:64 ~bytes_:1_000_000)
      done;
      (* A conforming single packet still gets through: the bandwidth
         bucket was never charged by the refused bursts. *)
      check_bool "small burst admitted" true (Limits.net_admit limits ~packets:1 ~bytes_:1_000_000));
  Sim.run sim

let overload_suites =
  [
    ( "cloud.vswitch.overload",
      [
        Alcotest.test_case "stale delivery dropped" `Quick test_vswitch_stale_delivery_dropped;
        Alcotest.test_case "stale not given to successor" `Quick
          test_vswitch_stale_not_delivered_to_successor;
        Alcotest.test_case "egress overflow drops" `Quick test_vswitch_egress_overflow_drops;
      ] );
    ( "cloud.blockstore.admission",
      [
        Alcotest.test_case "rejects over queue" `Quick test_blockstore_rejects_over_queue;
        Alcotest.test_case "rejection costs rtt only" `Quick test_blockstore_rejection_costs_rtt_only;
      ] );
    ( "cloud.control_plane.ceiling",
      [ Alcotest.test_case "utilization ceiling" `Quick test_control_plane_admission_ceiling ] );
    ( "cloud.limits.shed",
      [
        Alcotest.test_case "never blocks" `Quick test_limits_shed_never_blocks;
        Alcotest.test_case "atomic across buckets" `Quick test_limits_shed_atomic_across_buckets;
      ] );
  ]

let suites = suites @ overload_suites
