lib/cloud/control_plane.ml: Hashtbl Image List Option
