(** Standard experiment topologies (§4.1).

    Builders for the configurations the paper's evaluation uses: a
    bm-guest on a BM-Hive server, a vm-guest on a dual-socket host,
    co-resident pairs of each (the Fig. 9/10 setups), the physical
    baseline, and a fat client box on its own switch for load
    generation. *)

type t = {
  sim : Bm_engine.Sim.t;
  rng : Bm_engine.Rng.t;
  fabric : Bm_cloud.Vswitch.fabric;
  net : Bm_fabric.Fabric.t option;  (** link-level network, when modelled *)
  storage : Bm_cloud.Blockstore.t;
  obs : Bm_engine.Obs.t;
  fault : Bm_engine.Fault.t;
}

val make :
  ?seed:int ->
  ?storage_kind:Bm_cloud.Blockstore.kind ->
  ?storage_queue:int ->
  ?trace:Bm_engine.Trace.t ->
  ?metrics:Bm_engine.Metrics.t ->
  ?faults:Bm_engine.Fault.plan ->
  ?topology:Bm_fabric.Topology.t ->
  unit ->
  t
(** [trace]/[metrics] become the testbed's observability context [obs],
    threaded into every component the builders below create. Omitting
    both keeps the datapath sink-free (zero recording cost). [faults]
    builds and arms a fault injector from the plan, threaded the same
    way; omitting it leaves the null injector, whose runs are
    bit-identical to a fault-free build. [storage_queue] overrides the
    blockstore's admission-queue capacity (for overload experiments).
    [topology] instantiates a link-level {!Bm_fabric.Fabric} (seeded
    independently of the main RNG chain, so no-topology runs are
    untouched) and routes cross-server traffic over it; each server
    built afterwards claims the next host port, and building more
    servers than the topology has hosts raises — note {!client_box}
    consumes a port too. *)

val bm_server :
  ?profile:Bm_iobond.Profile.t ->
  ?boards:int ->
  ?vfs:int ->
  ?vf_queues:int ->
  t ->
  Bm_hyp.Bm_hypervisor.server

val bm_guest :
  ?profile:Bm_iobond.Profile.t ->
  ?net_limits:Bm_cloud.Limits.net ->
  ?blk_limits:Bm_cloud.Limits.blk ->
  ?vfs:int ->
  ?vf_queues:int ->
  ?datapath:Bm_iobond.Vf.datapath ->
  ?name:string ->
  t ->
  Bm_hyp.Bm_hypervisor.server * Bm_guest.Instance.t
(** [datapath] (default [Vring]) selects the guest's net path; [vfs] /
    [vf_queues] size the server's SR-IOV pool (see
    {!Bm_hyp.Bm_hypervisor.create_server}). *)

val bm_pair :
  ?profile:Bm_iobond.Profile.t ->
  ?net_limits:Bm_cloud.Limits.net ->
  t ->
  Bm_hyp.Bm_hypervisor.server * Bm_guest.Instance.t * Bm_guest.Instance.t
(** Two bm-guests co-resident on one base server (Fig. 9 topology). *)

val vm_host : ?vfs:int -> ?vf_queues:int -> t -> Bm_hyp.Kvm.host

val vm_guest :
  ?net_limits:Bm_cloud.Limits.net ->
  ?blk_limits:Bm_cloud.Limits.blk ->
  ?vcpus:int ->
  ?host_load:float ->
  ?pinning:Bm_hyp.Preempt.mode ->
  ?vfs:int ->
  ?vf_queues:int ->
  ?datapath:Bm_iobond.Vf.datapath ->
  ?name:string ->
  t ->
  Bm_hyp.Kvm.host * Bm_guest.Instance.t
(** [datapath] (default [Vring]) selects the VM's net path; [vfs] /
    [vf_queues] size the host's VFIO-capable NIC. *)

val vm_pair :
  ?net_limits:Bm_cloud.Limits.net ->
  ?vcpus:int ->
  t ->
  Bm_hyp.Kvm.host * Bm_guest.Instance.t * Bm_guest.Instance.t
(** Two vm-guests on one dual-socket host with headroom for both. *)

val physical : ?name:string -> ?sockets:int -> t -> Bm_guest.Instance.t
val client_box : ?name:string -> t -> Bm_guest.Instance.t
val run : ?until:float -> t -> unit
