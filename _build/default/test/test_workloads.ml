(* Tests for the workload models: each runs a miniature version of the
   paper's benchmark and checks the structural/shape invariants. *)

open Bm_engine
open Bm_guest
open Bm_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Testbed *)

let test_testbed_topologies () =
  let tb = Testbed.make ~seed:1 () in
  let _, a, b = Testbed.bm_pair tb in
  check_bool "distinct endpoints" true (a.Instance.endpoint <> b.Instance.endpoint);
  check_bool "both bare metal" true
    (a.Instance.kind = Instance.Bare_metal Bm_iobond.Profile.Fpga
    && b.Instance.kind = Instance.Bare_metal Bm_iobond.Profile.Fpga);
  let tb2 = Testbed.make ~seed:1 () in
  let _, v1, v2 = Testbed.vm_pair tb2 in
  check_bool "both virtual" true (v1.Instance.kind = Instance.Virtual && v2.Instance.kind = Instance.Virtual)

(* ------------------------------------------------------------------ *)
(* Rpc *)

let test_rpc_roundtrip_and_handshake () =
  let tb = Testbed.make ~seed:2 () in
  let _, server = Testbed.bm_guest tb in
  let client = Testbed.client_box tb in
  Rpc.attach_server server ~service:(fun _ -> { Rpc.reply_bytes = 100; reply_packets = 1 });
  let rpc = Rpc.create_client tb.Testbed.sim client in
  let plain = ref nan and with_hs = ref nan in
  Sim.spawn tb.Testbed.sim (fun () ->
      (match Rpc.call rpc ~dst:server.Instance.endpoint () with
      | `Reply l -> plain := l
      | `Timeout -> Alcotest.fail "plain call timed out");
      (match Rpc.call rpc ~dst:server.Instance.endpoint ~handshake:true () with
      | `Reply l -> with_hs := l
      | `Timeout -> Alcotest.fail "handshake call timed out"));
  Testbed.run tb;
  check_bool "latency positive" true (!plain > 1_000.0);
  (* The handshake adds a full extra round trip. *)
  check_bool "handshake costlier" true (!with_hs > !plain *. 1.5);
  check_int "both completed" 2 (Rpc.calls_completed rpc)

let test_rpc_tag_visible_to_service () =
  let tb = Testbed.make ~seed:2 () in
  let _, server = Testbed.bm_guest tb in
  let client = Testbed.client_box tb in
  let seen = ref [] in
  Rpc.attach_server server ~service:(fun req ->
      seen := req.Bm_virtio.Packet.tag :: !seen;
      { Rpc.reply_bytes = 8; reply_packets = 1 });
  let rpc = Rpc.create_client tb.Testbed.sim client in
  Sim.spawn tb.Testbed.sim (fun () ->
      ignore (Rpc.call rpc ~dst:server.Instance.endpoint ~tag:9 ());
      ignore (Rpc.call rpc ~dst:server.Instance.endpoint ()));
  Testbed.run tb;
  Alcotest.(check (list int)) "tags" [ 0; 9 ] !seen

(* ------------------------------------------------------------------ *)
(* Netperf *)

let test_udp_pps_limited () =
  let tb = Testbed.make ~seed:3 () in
  let _, a, b = Testbed.bm_pair tb in
  let r = Netperf.udp_pps tb.Testbed.sim ~src:a ~dst:b ~senders:4 ~batch:32 ~duration:(Simtime.ms 60.0) () in
  (* 4 senders offer ~6M; the 4M PPS bucket must bind (a little burst
     credit leaks in at the start of the window). *)
  check_bool "limited to ~4M" true (r.Netperf.received_pps < 4.5e6 && r.Netperf.received_pps > 3.2e6)

let test_udp_pps_unrestricted_exceeds_limit () =
  let tb = Testbed.make ~seed:3 () in
  let _, a, b = Testbed.bm_pair ~net_limits:(Bm_cloud.Limits.unlimited_net ()) tb in
  let r = Netperf.udp_pps tb.Testbed.sim ~src:a ~dst:b ~senders:12 ~batch:64 ~duration:(Simtime.ms 10.0) () in
  (* §4.3: 16M PPS once the limit is lifted. *)
  check_bool "far above 4M" true (r.Netperf.received_pps > 10e6)

let test_tcp_stream_hits_bandwidth_cap () =
  let tb = Testbed.make ~seed:4 () in
  let _, a, b = Testbed.bm_pair tb in
  let r = Netperf.tcp_stream tb.Testbed.sim ~src:a ~dst:b ~duration:(Simtime.ms 40.0) () in
  check_bool "~10Gbit wire" true (Float.abs (r.Netperf.gbit_s -. 10.0) < 1.2);
  check_bool "payload < wire" true (r.Netperf.payload_gbit_s < r.Netperf.gbit_s)

(* ------------------------------------------------------------------ *)
(* Sockperf *)

let test_sockperf_paths () =
  let lat path =
    let tb = Testbed.make ~seed:5 () in
    let _, a, b = Testbed.bm_pair tb in
    Sockperf.ping_pong tb.Testbed.sim ~a ~b ~path ~count:200 ()
  in
  let kernel = lat Sockperf.Kernel in
  let dpdk = lat Sockperf.Dpdk in
  check_int "all pings answered" 200 kernel.Sockperf.samples;
  check_bool "microsecond scale" true (kernel.Sockperf.avg_us > 3.0 && kernel.Sockperf.avg_us < 50.0);
  check_bool "dpdk cheaper than kernel" true (dpdk.Sockperf.avg_us < kernel.Sockperf.avg_us)

let test_sockperf_dpdk_vm_beats_bm () =
  (* Fig. 10: with the kernel bypassed, the vm's shorter path wins. *)
  let bm =
    let tb = Testbed.make ~seed:5 () in
    let _, a, b = Testbed.bm_pair tb in
    Sockperf.ping_pong tb.Testbed.sim ~a ~b ~path:Sockperf.Dpdk ~count:200 ()
  in
  let vm =
    let tb = Testbed.make ~seed:5 () in
    let _, a, b = Testbed.vm_pair tb in
    Sockperf.ping_pong tb.Testbed.sim ~a ~b ~path:Sockperf.Dpdk ~count:200 ()
  in
  check_bool "vm dpdk faster" true (vm.Sockperf.avg_us < bm.Sockperf.avg_us)

(* ------------------------------------------------------------------ *)
(* Fio *)

let test_fio_saturates_iops_limit () =
  let tb = Testbed.make ~seed:6 () in
  let _, g = Testbed.bm_guest tb in
  let r = Fio.run tb.Testbed.sim (Rng.create ~seed:6) g ~duration:(Simtime.ms 200.0) () in
  check_bool "~25K IOPS" true (Float.abs (r.Fio.iops -. 25e3) /. 25e3 < 0.1);
  check_bool "latency ordering" true (r.Fio.avg_us <= r.Fio.p99_us && r.Fio.p99_us <= r.Fio.p999_us)

let test_fio_bm_tail_beats_vm () =
  let run make =
    let tb = Testbed.make ~seed:6 () in
    let g = make tb in
    Fio.run tb.Testbed.sim (Rng.create ~seed:6) g ~duration:(Simtime.ms 400.0) ()
  in
  let bm = run (fun tb -> snd (Testbed.bm_guest tb)) in
  let vm = run (fun tb -> snd (Testbed.vm_guest tb)) in
  check_bool "bm avg better" true (bm.Fio.avg_us < vm.Fio.avg_us);
  check_bool "bm p99.9 much better" true (vm.Fio.p999_us > 1.5 *. bm.Fio.p999_us)

(* ------------------------------------------------------------------ *)
(* Stream / Spec *)

let test_stream_kernels () =
  let tb = Testbed.make ~seed:7 () in
  let _, g = Testbed.bm_guest tb in
  let results = Stream.run tb.Testbed.sim g ~elements:10_000_000 ~runs:2 () in
  check_int "four kernels" 4 (List.length results);
  List.iter
    (fun r ->
      (* E5-2682 v4: 4ch DDR4-2400 = 76.8 GB/s peak, ~65 effective. *)
      check_bool (Stream.kernel_name r.Stream.kernel) true
        (r.Stream.best_gb_s > 55.0 && r.Stream.best_gb_s < 77.0);
      check_bool "best >= avg" true (r.Stream.best_gb_s >= r.Stream.avg_gb_s -. 1e-6))
    results

let test_spec_ordering () =
  let run make =
    let tb = Testbed.make ~seed:8 () in
    Spec_cint.run tb.Testbed.sim (make tb)
  in
  let phys = run (fun tb -> Testbed.physical tb) in
  let bm = run (fun tb -> snd (Testbed.bm_guest tb)) in
  let vm = run (fun tb -> snd (Testbed.vm_guest tb)) in
  let bm_rel = Spec_cint.relative ~baseline:phys bm in
  let vm_rel = Spec_cint.relative ~baseline:phys vm in
  let geo l = List.assoc "geomean" l in
  check_bool "bm ~4% above physical" true (Float.abs (geo bm_rel -. 1.04) < 0.01);
  check_bool "vm below physical" true (geo vm_rel < 1.0);
  check_bool "vm above 0.90" true (geo vm_rel > 0.90);
  (* mcf (TLB-hostile) must lose more than hmmer (cache-resident). *)
  let vm_of b = List.assoc b vm_rel in
  check_bool "mcf worst-case" true (vm_of "mcf" < vm_of "hmmer")

(* ------------------------------------------------------------------ *)
(* Applications *)

let test_nginx_bm_beats_vm () =
  let run make =
    let tb = Testbed.make ~seed:9 () in
    let server = make tb in
    let client = Testbed.client_box tb in
    Nginx.serve server ();
    Nginx.ab tb.Testbed.sim ~client ~server ~concurrency:200 ~requests:4_000
  in
  let bm = run (fun tb -> snd (Testbed.bm_guest tb)) in
  let vm = run (fun tb -> snd (Testbed.vm_guest tb)) in
  check_int "bm completed all" 4_000 bm.Nginx.requests;
  check_int "vm completed all" 4_000 vm.Nginx.requests;
  let adv = (bm.Nginx.rps /. vm.Nginx.rps) -. 1.0 in
  check_bool "bm 30-90% ahead" true (adv > 0.30 && adv < 0.90);
  check_bool "bm responds faster" true (bm.Nginx.avg_ms < vm.Nginx.avg_ms)

let test_mariadb_patterns () =
  let run make pattern =
    let tb = Testbed.make ~seed:10 () in
    let server = make tb in
    let client = Testbed.client_box tb in
    Mariadb.serve tb.Testbed.sim (Rng.create ~seed:10) server ();
    Mariadb.sysbench tb.Testbed.sim ~client ~server ~pattern ~duration:(Simtime.ms 150.0) ()
  in
  let bm_ro = run (fun tb -> snd (Testbed.bm_guest tb)) Mariadb.Read_only in
  let vm_ro = run (fun tb -> snd (Testbed.vm_guest tb)) Mariadb.Read_only in
  let bm_wo = run (fun tb -> snd (Testbed.bm_guest tb)) Mariadb.Write_only in
  let vm_wo = run (fun tb -> snd (Testbed.vm_guest tb)) Mariadb.Write_only in
  let ro_adv = (bm_ro.Mariadb.qps /. vm_ro.Mariadb.qps) -. 1.0 in
  let wo_adv = (bm_wo.Mariadb.qps /. vm_wo.Mariadb.qps) -. 1.0 in
  check_bool "read-only ~15%" true (ro_adv > 0.08 && ro_adv < 0.35);
  check_bool "write-only larger gap" true (wo_adv > ro_adv);
  check_bool "bm read QPS ~200K band" true
    (bm_ro.Mariadb.qps > 140e3 && bm_ro.Mariadb.qps < 280e3);
  check_bool "writes slower than reads" true (bm_wo.Mariadb.qps < bm_ro.Mariadb.qps)

let test_redis_single_threaded_and_gap () =
  let run make =
    let tb = Testbed.make ~seed:11 () in
    let server = make tb in
    let client = Testbed.client_box tb in
    Redis_bench.serve tb.Testbed.sim server ();
    Redis_bench.benchmark tb.Testbed.sim ~client ~server ~clients:500 ~requests:5_000 ()
  in
  let bm = run (fun tb -> snd (Testbed.bm_guest tb)) in
  let vm = run (fun tb -> snd (Testbed.vm_guest tb)) in
  (* Single-threaded server: ~100-200K RPS, not millions. *)
  check_bool "single-thread scale" true (bm.Redis_bench.rps > 80e3 && bm.Redis_bench.rps < 250e3);
  let adv = (bm.Redis_bench.rps /. vm.Redis_bench.rps) -. 1.0 in
  check_bool "bm 15-50% ahead" true (adv > 0.15 && adv < 0.50)

let test_boot_workload_integration () =
  (* End-to-end: provision, boot, then serve traffic — the §3.2 scenario. *)
  let tb = Testbed.make ~seed:12 () in
  let _, g = Testbed.bm_guest tb in
  let booted = ref None in
  Sim.spawn tb.Testbed.sim (fun () ->
      booted := Some (Boot.run g ~image:Bm_cloud.Image.centos7 ()));
  Testbed.run tb;
  (match !booted with
  | Some (Ok t) ->
    check_bool "boot in seconds" true (t.Boot.total_ns > Simtime.ms 400.0 && t.Boot.total_ns < Simtime.sec 10.0);
    check_bool "image fully read" true (t.Boot.bytes_loaded = Bm_cloud.Image.total_boot_bytes Bm_cloud.Image.centos7)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "boot never finished")

let suites =
  [
    ( "workloads.testbed",
      [ Alcotest.test_case "topologies" `Quick test_testbed_topologies ] );
    ( "workloads.rpc",
      [
        Alcotest.test_case "roundtrip + handshake" `Quick test_rpc_roundtrip_and_handshake;
        Alcotest.test_case "tag visible" `Quick test_rpc_tag_visible_to_service;
      ] );
    ( "workloads.netperf",
      [
        Alcotest.test_case "PPS limited" `Quick test_udp_pps_limited;
        Alcotest.test_case "unrestricted PPS" `Quick test_udp_pps_unrestricted_exceeds_limit;
        Alcotest.test_case "TCP bandwidth cap" `Quick test_tcp_stream_hits_bandwidth_cap;
      ] );
    ( "workloads.sockperf",
      [
        Alcotest.test_case "paths ordering" `Quick test_sockperf_paths;
        Alcotest.test_case "dpdk: vm beats bm" `Quick test_sockperf_dpdk_vm_beats_bm;
      ] );
    ( "workloads.fio",
      [
        Alcotest.test_case "saturates IOPS limit" `Quick test_fio_saturates_iops_limit;
        Alcotest.test_case "bm tail beats vm" `Quick test_fio_bm_tail_beats_vm;
      ] );
    ( "workloads.stream",
      [ Alcotest.test_case "kernel bandwidths" `Quick test_stream_kernels ] );
    ( "workloads.spec", [ Alcotest.test_case "relative ordering" `Quick test_spec_ordering ] );
    ( "workloads.apps",
      [
        Alcotest.test_case "nginx gap" `Quick test_nginx_bm_beats_vm;
        Alcotest.test_case "mariadb patterns" `Quick test_mariadb_patterns;
        Alcotest.test_case "redis single-threaded" `Quick test_redis_single_threaded_and_gap;
        Alcotest.test_case "boot then serve" `Quick test_boot_workload_integration;
      ] );
  ]
