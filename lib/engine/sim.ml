exception Not_in_simulation
exception Stopped

type t = {
  mutable time : float;
  mutable seq : int;
  agenda : (unit -> unit) Pqueue.t;
  (* Hot lane: zero-delay events (every Fork, Suspend resume, spawn and
     Bounded wakeup) run at the current time, so they never need the
     heap — a FIFO preserves their (time, seq) order exactly. The seq
     counter stays global across both lanes, so interleaving with heap
     events at the same timestamp is bit-identical to the all-heap
     scheduler. *)
  now_lane : (int * (unit -> unit)) Queue.t;
  mutable executed : int;
  mutable stopped : bool;
}

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Clock : float Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Fork : (unit -> unit) -> unit Effect.t

let create () =
  {
    time = 0.0;
    seq = 0;
    agenda = Pqueue.create ();
    now_lane = Queue.create ();
    executed = 0;
    stopped = false;
  }

let now t = t.time
let events_executed t = t.executed
let pending_events t = Pqueue.length t.agenda + Queue.length t.now_lane

let schedule t ~delay f =
  (* An explicit raise, not an assert: the guard must survive builds
     that compile assertions out (matches the Delay effect's behavior).
     The negated comparison also rejects a NaN delay. *)
  if not (delay >= 0.0) then invalid_arg "Sim.schedule: delay must be non-negative";
  t.seq <- t.seq + 1;
  if delay = 0.0 then Queue.add (t.seq, f) t.now_lane
  else Pqueue.add t.agenda ~time:(t.time +. delay) ~seq:t.seq f

(* Run [body] as a fiber, interpreting the blocking effects against [t]. *)
let rec exec : t -> (unit -> unit) -> unit =
 fun t body ->
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> if e == Stopped then () else raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
            Some
              (fun (k : (a, unit) continuation) ->
                if d < 0.0 then discontinue k (Invalid_argument "Sim.delay: negative")
                else schedule t ~delay:d (fun () -> continue k ()))
          | Clock -> Some (fun (k : (a, unit) continuation) -> continue k t.time)
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = ref false in
                let resume v =
                  if !resumed then invalid_arg "Sim.suspend: resumed twice";
                  resumed := true;
                  schedule t ~delay:0.0 (fun () -> continue k v)
                in
                register resume)
          | Fork body' ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule t ~delay:0.0 (fun () -> exec t body');
                continue k ())
          | _ -> None);
    }

let spawn t body = schedule t ~delay:0.0 (fun () -> exec t body)

let run ?until t =
  t.stopped <- false;
  let horizon = match until with Some u -> u | None -> infinity in
  (* Every pending hot-lane event runs at the current time (zero-delay
     scheduling can only target "now", and the lane always drains before
     the clock advances), so the next event is either the lane's head or
     a heap event at the same instant with a smaller seq. *)
  let rec loop () =
    if not t.stopped then begin
      match Queue.peek_opt t.now_lane with
      | Some (lane_seq, _) ->
        (match Pqueue.pop_if_le t.agenda ~time:t.time ~seq:lane_seq with
        | Some (time, _, f) ->
          t.time <- time;
          t.executed <- t.executed + 1;
          f ()
        | None ->
          let _, f = Queue.pop t.now_lane in
          t.executed <- t.executed + 1;
          f ());
        loop ()
      | None -> (
        match Pqueue.pop_if_le t.agenda ~time:horizon ~seq:max_int with
        | Some (time, _, f) ->
          t.time <- time;
          t.executed <- t.executed + 1;
          f ();
          loop ()
        | None -> ())
    end
  in
  loop ();
  match until with
  | Some u when t.time < u && not t.stopped -> t.time <- u
  | _ -> ()

let stop t =
  t.stopped <- true;
  Pqueue.clear t.agenda;
  Queue.clear t.now_lane

let delay d =
  try Effect.perform (Delay d) with Effect.Unhandled _ -> raise Not_in_simulation

let clock () = try Effect.perform Clock with Effect.Unhandled _ -> raise Not_in_simulation

let suspend register =
  try Effect.perform (Suspend register) with Effect.Unhandled _ -> raise Not_in_simulation

let fork body =
  try Effect.perform (Fork body) with Effect.Unhandled _ -> raise Not_in_simulation

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a ivar = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill iv v =
    match iv.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      iv.state <- Full v;
      List.iter (fun resume -> resume v) (List.rev waiters)

  let read iv =
    match iv.state with
    | Full v -> v
    | Empty _ ->
      suspend (fun resume ->
          match iv.state with
          | Full v -> resume v
          | Empty waiters -> iv.state <- Empty (resume :: waiters))

  let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false
  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None
end

module Channel = struct
  type 'a channel = { items : 'a Queue.t; waiters : ('a -> unit) Queue.t }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let send ch v =
    match Queue.take_opt ch.waiters with
    | Some resume -> resume v
    | None -> Queue.add v ch.items

  let recv ch =
    match Queue.take_opt ch.items with
    | Some v -> v
    | None -> suspend (fun resume -> Queue.add resume ch.waiters)

  let try_recv ch = Queue.take_opt ch.items
  let length ch = Queue.length ch.items
end

module Bounded = struct
  type policy = Block | Drop_tail | Drop_head | Reject

  type probe_event = [ `Enqueue | `Deliver | `Drop | `Reject ]

  type 'a bounded = {
    capacity : int;
    policy : policy;
    items : 'a Queue.t;
    receivers : ('a -> unit) Queue.t;
    (* Senders parked under [Block]; their value is not yet in [items]. *)
    parked : ('a * (unit -> unit)) Queue.t;
    mutable sent : int;
    mutable delivered : int;
    mutable dropped : int;
    mutable rejected : int;
    mutable probe : (probe_event -> depth:int -> unit) option;
  }

  let create ~capacity ~policy () =
    if capacity <= 0 then invalid_arg "Sim.Bounded.create: capacity must be positive";
    {
      capacity;
      policy;
      items = Queue.create ();
      receivers = Queue.create ();
      parked = Queue.create ();
      sent = 0;
      delivered = 0;
      rejected = 0;
      dropped = 0;
      probe = None;
    }

  let capacity q = q.capacity
  let policy q = q.policy
  let length q = Queue.length q.items
  let sent q = q.sent
  let delivered q = q.delivered
  let dropped q = q.dropped
  let rejected q = q.rejected
  let waiting_senders q = Queue.length q.parked
  let set_probe q f = q.probe <- Some f

  let note q ev =
    match q.probe with None -> () | Some f -> f ev ~depth:(Queue.length q.items)

  let enqueue q v =
    Queue.add v q.items;
    note q `Enqueue

  let note_delivered q =
    q.delivered <- q.delivered + 1;
    note q `Deliver

  let send q v =
    q.sent <- q.sent + 1;
    match Queue.take_opt q.receivers with
    | Some resume ->
      (* Direct handoff: a receiver is parked, so the queue is empty. *)
      note_delivered q;
      resume v;
      `Sent
    | None ->
      if Queue.length q.items < q.capacity then begin
        enqueue q v;
        `Sent
      end
      else begin
        match q.policy with
        | Block ->
          (* Backpressure: park until a receiver frees a slot. The slot
             transfer (enqueue) happens on the receiver side so FIFO
             order is preserved. *)
          suspend (fun resume -> Queue.add (v, fun () -> resume ()) q.parked);
          `Sent
        | Drop_tail ->
          q.dropped <- q.dropped + 1;
          note q `Drop;
          `Dropped
        | Drop_head ->
          (* Evict the oldest queued item to make room for the newest. *)
          ignore (Queue.take_opt q.items);
          q.dropped <- q.dropped + 1;
          note q `Drop;
          enqueue q v;
          `Sent
        | Reject ->
          q.rejected <- q.rejected + 1;
          note q `Reject;
          `Rejected
      end

  (* After a slot frees, move the oldest parked sender's item in and wake it. *)
  let unpark q =
    match Queue.take_opt q.parked with
    | Some (v, wake) ->
      enqueue q v;
      wake ()
    | None -> ()

  let recv q =
    match Queue.take_opt q.items with
    | Some v ->
      note_delivered q;
      unpark q;
      v
    | None ->
      (* items empty implies no parked senders (capacity > 0). *)
      suspend (fun resume -> Queue.add resume q.receivers)

  let try_recv q =
    match Queue.take_opt q.items with
    | Some v ->
      note_delivered q;
      unpark q;
      Some v
    | None -> None
end

module Resource = struct
  type waiter = { amount : int; resume : unit -> unit }

  type resource = { capacity : int; mutable used : int; queue : waiter Queue.t }

  let create ~capacity =
    assert (capacity > 0);
    { capacity; used = 0; queue = Queue.create () }

  let capacity r = r.capacity
  let in_use r = r.used
  let waiting r = Queue.length r.queue

  (* Grant waiters strictly in FIFO order: stop at the first waiter that
     does not fit, even if a later, smaller one would (no barging). *)
  let rec grant r =
    match Queue.peek_opt r.queue with
    | Some w when r.used + w.amount <= r.capacity ->
      ignore (Queue.pop r.queue);
      r.used <- r.used + w.amount;
      w.resume ();
      grant r
    | Some _ | None -> ()

  let acquire ?(n = 1) r =
    assert (n > 0 && n <= r.capacity);
    if Queue.is_empty r.queue && r.used + n <= r.capacity then r.used <- r.used + n
    else
      suspend (fun resume -> Queue.add { amount = n; resume = (fun () -> resume ()) } r.queue)

  let release ?(n = 1) r =
    assert (n > 0);
    r.used <- r.used - n;
    assert (r.used >= 0);
    grant r

  let with_resource ?(n = 1) r f =
    acquire ~n r;
    match f () with
    | v ->
      release ~n r;
      v
    | exception e ->
      release ~n r;
      raise e
end
