(** Host-task preemption of vCPUs (§2.1, Fig. 1).

    "On a busy server, it could take the full load of 8 to 10 CPU cores
    for the hypervisor to serve I/Os and other requests from the VMs. The
    tasks of the hypervisor and the host OS can preempt the execution of
    the guest VMs." Pinned ("exclusive") vCPUs are preempted roughly an
    order of magnitude less than shareable ones.

    Two views of the same model:
    - {!maybe_steal} injects actual pauses into a running vm-guest at
      request boundaries (this is what creates the p99.9 latency tails in
      the fio and application benchmarks);
    - {!sample_window_fraction} draws the fraction of a telemetry window a
      VM spends preempted, for the 20,000-VM Fig. 1 Monte-Carlo. *)

type mode = Shared | Exclusive

type t

val create :
  ?obs:Bm_engine.Obs.t ->
  Bm_engine.Sim.t ->
  Bm_engine.Rng.t ->
  mode:mode ->
  ?host_load:float ->
  unit ->
  t
(** [host_load] ∈ [\[0, 1\]] (default 0.5) scales interference: the
    fraction of the reserved host cores kept busy serving I/O. With
    [obs], each steal spans the ["hyp.preempt"] track and feeds the
    ["hyp.preempt.stolen_ns"] histogram. *)

val mode : t -> mode

val maybe_steal : t -> unit
(** Call at a request boundary: with the configured probability the
    vCPU loses the CPU for one scheduling slice (exponential body,
    Pareto tail). No-op most of the time. *)

val stolen_ns : t -> float
(** Total time stolen through {!maybe_steal}. *)

val steals : t -> int

val sample_window_fraction : Bm_engine.Rng.t -> mode:mode -> host_load:float -> float
(** Draw one VM×window preemption fraction (unitless, 0–1). Calibrated
    so a 20,000-VM fleet at typical load reproduces Fig. 1: shared p99
    ≈ 2–4%%, p99.9 ≈ 2–10%%; exclusive ≈ 0.2%% / 0.5%%. *)
