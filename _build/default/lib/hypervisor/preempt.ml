open Bm_engine

type mode = Shared | Exclusive

type t = {
  sim : Sim.t;
  rng : Rng.t;
  mode : mode;
  host_load : float;
  steal_p : float; (* probability a request boundary loses the CPU *)
  slice_ns : float; (* mean stolen slice *)
  mutable stolen_ns : float;
  mutable steals : int;
  obs : Obs.t;
}

(* A shareable vCPU at 50% host load is preempted at boundaries with
   ~0.4% probability for a mean ~30 us slice — about 1% of wall time for
   a service issuing ~30k requests/s, the body of Fig. 1's distribution.
   Pinned vCPUs only lose the CPU to unavoidable host work (~10x less). *)
let params_of ~mode ~host_load =
  match mode with
  | Shared -> (0.008 *. host_load, 30_000.0)
  | Exclusive -> (0.0008 *. host_load, 15_000.0)

let create ?(obs = Obs.none) sim rng ~mode ?(host_load = 0.5) () =
  assert (host_load >= 0.0 && host_load <= 1.0);
  let steal_p, slice_ns = params_of ~mode ~host_load in
  { sim; rng; mode; host_load; steal_p; slice_ns; stolen_ns = 0.0; steals = 0; obs }

let mode t = t.mode

let maybe_steal t =
  if Rng.bernoulli t.rng ~p:t.steal_p then begin
    let body = Rng.exponential t.rng ~mean:t.slice_ns in
    (* 2% of steals hit a long host task: heavy (Pareto) tail. *)
    let tail =
      if Rng.bernoulli t.rng ~p:0.02 then Rng.pareto t.rng ~scale:(4.0 *. t.slice_ns) ~shape:1.6
      else 0.0
    in
    let pause = body +. tail in
    t.stolen_ns <- t.stolen_ns +. pause;
    t.steals <- t.steals + 1;
    Metrics.observe_opt (Obs.metrics t.obs) "hyp.preempt.stolen_ns" pause;
    Trace.begin_span_opt (Obs.trace t.obs) ~track:"hyp.preempt" "steal" ~now:(Sim.now t.sim);
    Sim.delay pause;
    Trace.end_span_opt (Obs.trace t.obs) ~track:"hyp.preempt" "steal" ~now:(Sim.now t.sim)
  end

let stolen_ns t = t.stolen_ns
let steals t = t.steals

(* Fig. 1 calibration. The figure shows shared p99 between ~2% and ~4%
   and p99.9 between ~2% and ~10% as host load swings over the day: the
   tail widens with load. A lognormal with a load-dependent shape
   reproduces that: at load 0.3, p99 ~ 2% / p99.9 ~ 3%; at load 0.8,
   p99 ~ 4% / p99.9 ~ 10%. Exclusive (pinned) VMs sit near 0.2% / 0.5%
   with little load sensitivity. *)
let sample_window_fraction rng ~mode ~host_load =
  let sample =
    match mode with
    | Shared ->
      let sigma = 0.5 +. (0.7 *. host_load) in
      Rng.lognormal rng ~median:0.0036 ~sigma
    | Exclusive ->
      let median = 1.2e-4 *. (0.7 +. (0.6 *. host_load)) in
      Rng.lognormal rng ~median ~sigma:1.2
  in
  Float.min 1.0 sample
