lib/virtio/vring.ml: Array Bm_engine List Metrics Obs Printf Trace
