examples/quickstart.ml: Bm_cloud Bm_engine Bm_guest Bm_hyp Bm_workload Boot Instance Printf Sim Simtime Stats Testbed
