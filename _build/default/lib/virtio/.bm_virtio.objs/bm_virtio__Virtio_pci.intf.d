lib/virtio/virtio_pci.mli: Feature
