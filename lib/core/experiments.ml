open Bm_engine
open Bm_guest
open Bm_hyp
open Bm_workload

type outcome = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

type fleet_opts = { fleet_hosts : int option; fleet_guests : int option; fleet_tenants : int option }

let default_fleet = { fleet_hosts = None; fleet_guests = None; fleet_tenants = None }

type vf_opts = {
  vf_count : int option;  (* --vfs: SR-IOV functions per device/pool *)
  vf_datapath : Bm_iobond.Vf.datapath option;  (* --datapath *)
}

let default_vf = { vf_count = None; vf_datapath = None }

type spec = {
  id : string;
  title : string;
  paper_ref : string;
  run :
    scenario:string option ->
    policy:string option ->
    fleet:fleet_opts ->
    vf:vf_opts ->
    faults:Fault.plan option ->
    trace:Trace.t option ->
    metrics:Metrics.t option ->
    topo:Bm_fabric.Topology.t option ->
    shards:int ->
    quick:bool ->
    seed:int ->
    outcome;
}

let within ~tolerance ~target value =
  Float.abs (value -. target) /. Float.abs target <= tolerance

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let run_table1 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace:_ ~metrics:_ ~topo:_ ~shards:_ ~quick:_ ~seed:_ =
  {
    id = "table1";
    title = "Table 1: comparison of three cloud services";
    header = [ "service"; "security"; "isolation"; "performance"; "density" ];
    rows = Comparison.rows ();
    notes = [ "Cells derived from model properties (see Bmhive.Comparison)." ];
  }

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let run_table2 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace:_ ~metrics:_ ~topo:_ ~shards:_ ~quick ~seed =
  let vms = if quick then 30_000 else 300_000 in
  let rng = Rng.create ~seed in
  let s = Fleet.survey_exits rng ~vms in
  let row threshold paper measured =
    Report.check
      ~paper:(Report.pct paper)
      ~measured:(Report.pct measured)
      ~ok:(within ~tolerance:0.5 ~target:paper measured)
      [ threshold ]
  in
  {
    id = "table2";
    title = "Table 2: VM exits per second per vCPU across the fleet";
    header = [ "# of VM exits"; "paper"; "measured"; "band" ];
    rows =
      [
        row "> 10K/s" 0.0382 s.Fleet.over_10k;
        row "> 50K/s" 0.0037 s.Fleet.over_50k;
        row "> 100K/s" 0.0013 s.Fleet.over_100k;
      ];
    notes = [ Printf.sprintf "Monte-Carlo over %d VMs with the Fleet workload mixture." vms ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 1 *)

let run_fig1 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace:_ ~metrics:_ ~topo:_ ~shards:_ ~quick ~seed =
  let vms = if quick then 2_000 else 20_000 in
  let hours = if quick then 8 else 24 in
  let rng = Rng.create ~seed in
  let windows = Fleet.survey_preemption rng ~vms ~hours in
  let rows =
    List.map
      (fun w ->
        [
          string_of_int w.Fleet.hour;
          Report.pct (Fleet.diurnal_load ~hour:w.Fleet.hour);
          Report.pct w.Fleet.shared_p99;
          Report.pct w.Fleet.shared_p999;
          Report.pct w.Fleet.exclusive_p99;
          Report.pct w.Fleet.exclusive_p999;
        ])
      windows
  in
  let max_of f = List.fold_left (fun acc w -> Float.max acc (f w)) 0.0 windows in
  let min_of f = List.fold_left (fun acc w -> Float.min acc (f w)) 1.0 windows in
  {
    id = "fig1";
    title = "Fig. 1: VM preemption percentiles over a day (20K VMs)";
    header = [ "hour"; "host load"; "shared p99"; "shared p99.9"; "excl p99"; "excl p99.9" ];
    rows;
    notes =
      [
        Printf.sprintf "shared p99 range %s..%s (paper ~2%%..4%%)"
          (Report.pct (min_of (fun w -> w.Fleet.shared_p99)))
          (Report.pct (max_of (fun w -> w.Fleet.shared_p99)));
        Printf.sprintf "shared p99.9 range %s..%s (paper ~2%%..10%%)"
          (Report.pct (min_of (fun w -> w.Fleet.shared_p999)))
          (Report.pct (max_of (fun w -> w.Fleet.shared_p999)));
        Printf.sprintf "exclusive ~%s / %s (paper ~0.2%% / 0.5%%)"
          (Report.pct (max_of (fun w -> w.Fleet.exclusive_p99)))
          (Report.pct (max_of (fun w -> w.Fleet.exclusive_p999)));
      ];
  }

(* ------------------------------------------------------------------ *)
(* Table 3 *)

let run_table3 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace:_ ~metrics:_ ~topo:_ ~shards:_ ~quick:_ ~seed:_ =
  let rows =
    List.map
      (fun i ->
        [
          i.Instances.name;
          i.Instances.cpu.Bm_hw.Cpu_spec.model;
          string_of_int i.Instances.vcpus;
          string_of_int i.Instances.mem_gb ^ "GB";
          Report.si i.Instances.net_pps ^ "pps / " ^ Report.f1 i.Instances.net_gbit_s ^ "Gbit";
          Report.si i.Instances.storage_iops ^ " IOPS";
          string_of_int i.Instances.max_boards_per_server;
        ])
      Instances.catalogue
  in
  {
    id = "table3";
    title = "Table 3: bare-metal instances available in the cloud";
    header = [ "instance"; "CPU"; "vCPU"; "memory"; "network limit"; "storage limit"; "boards/server" ];
    rows;
    notes = [];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 7: SPEC CINT2006 *)

let run_fig7 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick:_ ~seed =
  let spec_on make =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let inst = make tb in
    Spec_cint.run tb.Testbed.sim inst
  in
  let physical = spec_on (fun tb -> Testbed.physical tb) in
  let bm = spec_on (fun tb -> snd (Testbed.bm_guest tb)) in
  let vm = spec_on (fun tb -> snd (Testbed.vm_guest tb)) in
  let bm_rel = Spec_cint.relative ~baseline:physical bm in
  let vm_rel = Spec_cint.relative ~baseline:physical vm in
  let rows =
    List.map
      (fun (bench, bm_score) ->
        let vm_score = List.assoc bench vm_rel in
        [ bench; "1.000"; Printf.sprintf "%.3f" bm_score; Printf.sprintf "%.3f" vm_score ])
      bm_rel
  in
  let geo l = List.assoc "geomean" l in
  {
    id = "fig7";
    title = "Fig. 7: SPEC CINT2006 relative performance (physical = 1)";
    header = [ "benchmark"; "physical"; "bm-guest"; "vm-guest" ];
    rows;
    notes =
      [
        Printf.sprintf "geomean: bm %.3f (paper ~1.04), vm %.3f (paper ~0.96)" (geo bm_rel)
          (geo vm_rel);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 8: STREAM *)

let run_fig8 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let elements = if quick then 20_000_000 else 200_000_000 in
  let runs = if quick then 3 else 10 in
  let stream_on make =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let inst = make tb in
    Stream.run tb.Testbed.sim inst ~elements ~runs ()
  in
  (* 16 STREAM threads stay on one NUMA node: single-socket baseline. *)
  let physical = stream_on (fun tb -> Testbed.physical ~sockets:1 tb) in
  let bm = stream_on (fun tb -> snd (Testbed.bm_guest tb)) in
  let vm = stream_on (fun tb -> snd (Testbed.vm_guest tb)) in
  let find kernel results = List.find (fun r -> r.Stream.kernel = kernel) results in
  let rows =
    List.map
      (fun kernel ->
        let p = find kernel physical and b = find kernel bm and v = find kernel vm in
        [
          Stream.kernel_name kernel;
          Report.f1 p.Stream.best_gb_s;
          Report.f1 b.Stream.best_gb_s;
          Report.f1 v.Stream.best_gb_s;
          Report.pct (v.Stream.best_gb_s /. b.Stream.best_gb_s);
        ])
      [ Stream.Copy; Stream.Scale; Stream.Add; Stream.Triad ]
  in
  {
    id = "fig8";
    title = "Fig. 8: STREAM 16-thread bandwidth (GB/s, best of runs)";
    header = [ "kernel"; "physical"; "bm-guest"; "vm-guest"; "vm/bm" ];
    rows;
    notes = [ "Paper: bm ~= physical; vm reaches ~98% of bm under load." ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 9: UDP PPS *)

let run_fig9 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 40.0 else Simtime.ms 400.0 in
  let pps_of pair =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let src, dst = pair tb in
    Netperf.udp_pps tb.Testbed.sim ~src ~dst ~senders:2 ~batch:32 ~duration ()
  in
  let bm = pps_of (fun tb -> let _, a, b = Testbed.bm_pair tb in (a, b)) in
  let vm = pps_of (fun tb -> let _, a, b = Testbed.vm_pair tb in (a, b)) in
  let row name (r : Netperf.pps_result) =
    [
      name;
      Report.si r.Netperf.received_pps;
      Report.si r.Netperf.offered_pps;
      Report.si r.Netperf.jitter_pps;
    ]
  in
  {
    id = "fig9";
    title = "Fig. 9: UDP packet receive rate between co-resident guests";
    header = [ "guest"; "received PPS"; "offered PPS"; "jitter (sd)" ];
    rows = [ row "bm-guest" bm; row "vm-guest" vm ];
    notes =
      [
        "Paper: both exceed 3.2M PPS under the 4M limit; vm slightly ahead with less jitter.";
        Printf.sprintf "measured: bm %s, vm %s" (Report.si bm.Netperf.received_pps)
          (Report.si vm.Netperf.received_pps);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 10: latency *)

let run_fig10 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let count = if quick then 400 else 2000 in
  let lat pair path =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let a, b = pair tb in
    Sockperf.ping_pong tb.Testbed.sim ~a ~b ~path ~count ()
  in
  let bm_pair tb = let _, a, b = Testbed.bm_pair tb in (a, b) in
  let vm_pair tb = let _, a, b = Testbed.vm_pair tb in (a, b) in
  let row name path =
    let bm = lat bm_pair path and vm = lat vm_pair path in
    [
      name;
      Report.f1 bm.Sockperf.avg_us;
      Report.f1 vm.Sockperf.avg_us;
      Report.f1 bm.Sockperf.p99_us;
      Report.f1 vm.Sockperf.p99_us;
    ]
  in
  {
    id = "fig10";
    title = "Fig. 10: 64B UDP / ping latency (us, one-way)";
    header = [ "path"; "bm avg"; "vm avg"; "bm p99"; "vm p99" ];
    rows =
      [
        row "sockperf (kernel)" Sockperf.Kernel;
        row "DPDK (bypass)" Sockperf.Dpdk;
        row "ICMP ping" Sockperf.Icmp;
      ];
    notes =
      [
        "Paper: kernel-stack latency almost identical; with DPDK the vm-guest is slightly";
        "better because the BM-Hive path crosses three PCIe buses.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 11: storage latency *)

let run_fig11 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 300.0 else Simtime.sec 4.0 in
  let fio_on make pattern =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let inst = make tb in
    Fio.run tb.Testbed.sim (Rng.create ~seed:(seed + 7)) inst ~pattern ~duration ()
  in
  let bm p = fio_on (fun tb -> snd (Testbed.bm_guest tb)) p in
  let vm p = fio_on (fun tb -> snd (Testbed.vm_guest tb)) p in
  let row name pattern =
    let b = bm pattern and v = vm pattern in
    [
      name;
      Report.f1 b.Fio.avg_us;
      Report.f1 v.Fio.avg_us;
      Report.f1 (v.Fio.avg_us /. b.Fio.avg_us);
      Report.f1 b.Fio.p999_us;
      Report.f1 v.Fio.p999_us;
      Report.f1 (v.Fio.p999_us /. b.Fio.p999_us);
      Report.si b.Fio.iops;
      Report.si v.Fio.iops;
    ]
  in
  {
    id = "fig11";
    title = "Fig. 11: fio 4KB random storage latency (us) at the 25K IOPS limit";
    header =
      [ "pattern"; "bm avg"; "vm avg"; "vm/bm"; "bm p99.9"; "vm p99.9"; "vm/bm"; "bm IOPS"; "vm IOPS" ];
    rows = [ row "randread" Fio.Randread; row "randwrite" Fio.Randwrite ];
    notes =
      [
        "Paper: both saturate 25K IOPS; bm ~25% faster on average and ~3x better p99.9 (randread).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 12: NGINX *)

let nginx_rps_at tb ~server ~concurrency ~requests =
  let client = Testbed.client_box tb in
  Nginx.serve server ();
  Nginx.ab tb.Testbed.sim ~client ~server ~concurrency ~requests

let run_fig12 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let concurrencies = if quick then [ 100; 400 ] else [ 50; 100; 200; 400; 800 ] in
  let per_level = if quick then 60 else 150 in
  let run_level make concurrency =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let server = make tb in
    nginx_rps_at tb ~server ~concurrency ~requests:(concurrency * per_level)
  in
  let rows =
    List.map
      (fun c ->
        let bm = run_level (fun tb -> snd (Testbed.bm_guest tb)) c in
        let vm = run_level (fun tb -> snd (Testbed.vm_guest tb)) c in
        [
          string_of_int c;
          Report.si bm.Nginx.rps;
          Report.si vm.Nginx.rps;
          Report.pct ((bm.Nginx.rps /. vm.Nginx.rps) -. 1.0);
          Report.f2 bm.Nginx.avg_ms;
          Report.f2 vm.Nginx.avg_ms;
        ])
      concurrencies
  in
  {
    id = "fig12";
    title = "Fig. 12: NGINX requests/s vs client concurrency (KeepAlive off)";
    header = [ "clients"; "bm RPS"; "vm RPS"; "bm adv"; "bm ms/req"; "vm ms/req" ];
    rows;
    notes =
      [ "Paper: bm serves ~50-60% more requests/s; ~30% shorter response time per request." ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 13/14: MariaDB *)

let sysbench_on ?trace ?metrics ~seed ~pattern ~duration make =
  let tb = Testbed.make ~seed ?trace ?metrics () in
  let server = make tb in
  let client = Testbed.client_box tb in
  Mariadb.serve tb.Testbed.sim (Rng.create ~seed:(seed + 13)) server ();
  Mariadb.sysbench tb.Testbed.sim ~client ~server ~pattern ~duration ()

let run_mariadb ~id ~title ~patterns ~paper_notes ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 200.0 else Simtime.sec 2.0 in
  let rows =
    List.map
      (fun pattern ->
        let bm =
          sysbench_on ?trace ?metrics ~seed ~pattern ~duration (fun tb ->
              snd (Testbed.bm_guest tb))
        in
        let vm =
          sysbench_on ?trace ?metrics ~seed ~pattern ~duration (fun tb ->
              snd (Testbed.vm_guest tb))
        in
        [
          Mariadb.pattern_name pattern;
          Report.si bm.Mariadb.qps;
          Report.si vm.Mariadb.qps;
          Report.pct ((bm.Mariadb.qps /. vm.Mariadb.qps) -. 1.0);
          Report.f2 bm.Mariadb.avg_ms;
          Report.f2 vm.Mariadb.avg_ms;
        ])
      patterns
  in
  {
    id;
    title;
    header = [ "pattern"; "bm QPS"; "vm QPS"; "bm adv"; "bm ms"; "vm ms" ];
    rows;
    notes = paper_notes;
  }

let run_fig13 = run_mariadb ~id:"fig13" ~title:"Fig. 13: MariaDB read-only (sysbench, 128 threads)"
    ~patterns:[ Mariadb.Read_only ]
    ~paper_notes:[ "Paper: bm 195K QPS vs vm 170K QPS (+14.7%)." ]

let run_fig14 =
  run_mariadb ~id:"fig14" ~title:"Fig. 14: MariaDB write-only and read/write (sysbench)"
    ~patterns:[ Mariadb.Write_only; Mariadb.Read_write ]
    ~paper_notes:[ "Paper: bm +42% on write-only, +55% on read/write mixed." ]

(* ------------------------------------------------------------------ *)
(* Fig. 15/16: Redis *)

let redis_on ?trace ?metrics ~seed make ~clients ~value_bytes ~requests =
  let tb = Testbed.make ~seed ?trace ?metrics () in
  let server = make tb in
  let client = Testbed.client_box tb in
  Redis_bench.serve tb.Testbed.sim server ();
  Redis_bench.benchmark tb.Testbed.sim ~client ~server ~clients ~value_bytes ~requests ()

let run_fig15 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let clients_list = if quick then [ 1000; 4000 ] else [ 1000; 2000; 4000; 7000; 10000 ] in
  let requests = if quick then 8_000 else 40_000 in
  let rows =
    List.map
      (fun clients ->
        let bm =
          redis_on ?trace ?metrics ~seed
            (fun tb -> snd (Testbed.bm_guest tb))
            ~clients ~value_bytes:64 ~requests
        in
        let vm =
          redis_on ?trace ?metrics ~seed
            (fun tb -> snd (Testbed.vm_guest tb))
            ~clients ~value_bytes:64 ~requests
        in
        [
          string_of_int clients;
          Report.si bm.Redis_bench.rps;
          Report.si vm.Redis_bench.rps;
          Report.pct ((bm.Redis_bench.rps /. vm.Redis_bench.rps) -. 1.0);
        ])
      clients_list
  in
  {
    id = "fig15";
    title = "Fig. 15: Redis requests/s vs number of clients (GET, 64B)";
    header = [ "clients"; "bm RPS"; "vm RPS"; "bm adv" ];
    rows;
    notes = [ "Paper: bm 20-40% more requests/s across 1K..10K clients." ];
  }

let run_fig16 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let sizes = if quick then [ 4; 1024 ] else [ 4; 16; 64; 256; 1024; 4096 ] in
  let requests = if quick then 8_000 else 40_000 in
  let results =
    List.map
      (fun value_bytes ->
        let bm =
          redis_on ?trace ?metrics ~seed
            (fun tb -> snd (Testbed.bm_guest tb))
            ~clients:1000 ~value_bytes ~requests
        in
        let vm =
          redis_on ?trace ?metrics ~seed
            (fun tb -> snd (Testbed.vm_guest tb))
            ~clients:1000 ~value_bytes ~requests
        in
        (value_bytes, bm, vm))
      sizes
  in
  let rows =
    List.map
      (fun (value_bytes, bm, vm) ->
        [
          string_of_int value_bytes ^ "B";
          Report.si bm.Redis_bench.rps;
          Report.si vm.Redis_bench.rps;
          Report.pct ((bm.Redis_bench.rps /. vm.Redis_bench.rps) -. 1.0);
        ])
      results
  in
  (* Curve smoothness: mean absolute second difference over the mean —
     zero for any straight trend, large for a wobbly curve. *)
  let roughness take =
    let xs = List.map (fun (_, bm, vm) -> take bm vm) results in
    let rec second_diffs = function
      | a :: (b :: c :: _ as rest) -> Float.abs (a -. (2.0 *. b) +. c) :: second_diffs rest
      | _ -> []
    in
    let diffs = second_diffs xs in
    let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
    List.fold_left ( +. ) 0.0 diffs /. float_of_int (max 1 (List.length diffs)) /. mean
  in
  let bm_cv = roughness (fun bm _ -> bm.Redis_bench.rps) in
  let vm_cv = roughness (fun _ vm -> vm.Redis_bench.rps) in
  {
    id = "fig16";
    title = "Fig. 16: Redis requests/s vs value size (GET, 1000 clients)";
    header = [ "value"; "bm RPS"; "vm RPS"; "bm adv" ];
    rows;
    notes =
      [
        Printf.sprintf
          "curve roughness across sizes: bm %s, vm %s (paper: bm higher and more stable)"
          (Report.pct bm_cv) (Report.pct vm_cv);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2.3: nested virtualization *)

let run_sec2_3 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let exec_time nested =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let host = Testbed.vm_host tb in
    let config = { (Kvm.default_config ~name:"vm") with Kvm.nested; host_load = 0.0 } in
    let vm = Kvm.create_vm host config in
    let elapsed = ref nan in
    Sim.spawn tb.Testbed.sim (fun () ->
        let t0 = Sim.clock () in
        vm.Instance.exec_ns 10e6;
        elapsed := Sim.clock () -. t0);
    Testbed.run tb;
    !elapsed
  in
  let io_lat nested =
    let tb = Testbed.make ~seed ~storage_kind:Bm_cloud.Blockstore.Local_ssd ?trace ?metrics () in
    let host = Testbed.vm_host tb in
    let config =
      {
        (Kvm.default_config ~name:"vm") with
        Kvm.nested;
        host_load = 0.0;
        blk_limits = Bm_cloud.Limits.unlimited_blk ();
      }
    in
    let vm = Kvm.create_vm host config in
    let duration = if quick then Simtime.ms 100.0 else Simtime.ms 500.0 in
    let r = Fio.run tb.Testbed.sim (Rng.create ~seed) vm ~jobs:16 ~iodepth:8 ~duration () in
    r.Fio.iops
  in
  let t_plain = exec_time false and t_nested = exec_time true in
  let iops_plain = io_lat false and iops_nested = io_lat true in
  let cpu_eff = t_plain /. t_nested in
  {
    id = "sec2_3";
    title = "S2.3: nested virtualization efficiency vs plain vm-guest";
    header = [ "metric"; "plain vm"; "nested vm"; "nested/plain"; "paper" ];
    rows =
      [
        [ "CPU work (same job)"; "1.00"; Report.f2 (t_nested /. t_plain); Report.pct cpu_eff; "~80%" ];
        [
          "fio IOPS (CPU-path bound)";
          Report.si iops_plain;
          Report.si iops_nested;
          Report.pct (iops_nested /. iops_plain);
          "~25% for I/O-intensive";
        ];
      ];
    notes =
      [
        Printf.sprintf "Mechanistic check: %.0f exits/s/vCPU -> %.0f%% efficiency"
          8_000.0
          (100.0 *. Nested.derived_cpu_efficiency ~exit_rate_per_s:8_000.0);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §3.5: cost efficiency *)

let run_sec3_5 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace:_ ~metrics:_ ~topo:_ ~shards:_ ~quick:_ ~seed:_ =
  let d = Cost_model.density () in
  let vm_w = Cost_model.vm_watts_per_vcpu () in
  let bm_w = Cost_model.bm_single_board_watts_per_vcpu () in
  {
    id = "sec3_5";
    title = "S3.5: cost efficiency (density, power, price)";
    header = [ "metric"; "vm-based server"; "BM-Hive"; "paper" ];
    rows =
      [
        [
          "sellable HT per rack slot";
          string_of_int d.Cost_model.vm_sellable_ht;
          string_of_int d.Cost_model.bm_sellable_ht;
          "88 vs 256";
        ];
        [ "TDP W/vCPU (96HT shape)"; Report.f2 vm_w; Report.f2 bm_w; "3.06 vs 3.17" ];
        [ "relative sell price"; "1.00"; Report.f2 Cost_model.price_ratio_bm_over_vm; "bm 10% lower" ];
      ];
    notes =
      [
        Printf.sprintf "density ratio %.2fx" (Cost_model.sellable_ht_per_rack_ratio ());
      ];
  }

(* ------------------------------------------------------------------ *)
(* §4.3 network: TCP throughput + unrestricted PPS *)

let run_sec4_3net ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 30.0 else Simtime.ms 300.0 in
  (* Cross-server throughput at the 10 Gbit/s cap. *)
  let tcp make =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let a, b = make tb in
    Netperf.tcp_stream tb.Testbed.sim ~src:a ~dst:b ~duration ()
  in
  let bm_cross tb =
    let s1 = Testbed.bm_server tb in
    let s2 = Testbed.bm_server tb in
    let g server name =
      match Bm_hyp.Bm_hypervisor.provision server ~name () with
      | Ok i -> i
      | Error e -> failwith e
    in
    (g s1 "a", g s2 "b")
  in
  let vm_cross tb =
    let h1 = Testbed.vm_host tb in
    let h2 = Testbed.vm_host tb in
    (Kvm.create_vm h1 (Kvm.default_config ~name:"a"), Kvm.create_vm h2 (Kvm.default_config ~name:"b"))
  in
  let bm_tp = tcp bm_cross in
  let vm_tp = tcp vm_cross in
  (* Unrestricted PPS on the bm pair. *)
  let tb = Testbed.make ~seed ?trace ?metrics () in
  let unlimited = Bm_cloud.Limits.unlimited_net () in
  let _, a, b = Testbed.bm_pair ~net_limits:unlimited tb in
  let free =
    Netperf.udp_pps tb.Testbed.sim ~src:a ~dst:b ~senders:12 ~batch:64
      ~duration:(if quick then Simtime.ms 20.0 else Simtime.ms 200.0)
      ()
  in
  {
    id = "sec4_3net";
    title = "S4.3: TCP throughput at the limit; unrestricted PPS";
    header = [ "metric"; "bm-guest"; "vm-guest"; "paper" ];
    rows =
      [
        [
          "TCP payload throughput (Gbit/s)";
          Report.f2 bm_tp.Netperf.payload_gbit_s;
          Report.f2 vm_tp.Netperf.payload_gbit_s;
          "9.6 vs 9.59";
        ];
        [ "unrestricted UDP PPS"; Report.si free.Netperf.received_pps; "-"; "16M (limit lifted)" ];
      ];
    notes =
      [
        Printf.sprintf "wire rates: bm %.2f / vm %.2f Gbit/s (the token bucket meters the wire)"
          bm_tp.Netperf.gbit_s vm_tp.Netperf.gbit_s;
      ];
  }

(* ------------------------------------------------------------------ *)
(* §4.3 storage: unrestricted local SSD *)

let run_sec4_3blk ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 100.0 else Simtime.ms 800.0 in
  let unlimited () = Bm_cloud.Limits.unlimited_blk () in
  let small make =
    let tb = Testbed.make ~seed ~storage_kind:Bm_cloud.Blockstore.Local_ssd ?trace ?metrics () in
    let inst = make tb in
    Fio.run tb.Testbed.sim (Rng.create ~seed) inst ~jobs:8 ~iodepth:2 ~block_bytes:4096
      ~pattern:Fio.Randread ~duration ()
  in
  let big make =
    let tb = Testbed.make ~seed ~storage_kind:Bm_cloud.Blockstore.Local_ssd ?trace ?metrics () in
    let inst = make tb in
    Fio.run tb.Testbed.sim (Rng.create ~seed) inst ~jobs:8 ~iodepth:4 ~block_bytes:(256 * 1024)
      ~pattern:Fio.Randread ~duration ()
  in
  let bm_mk tb = snd (Testbed.bm_guest ~blk_limits:(unlimited ()) tb) in
  let vm_mk tb = snd (Testbed.vm_guest ~blk_limits:(unlimited ()) tb) in
  let bm_small = small bm_mk and vm_small = small vm_mk in
  let bm_big = big bm_mk and vm_big = big vm_mk in
  let bw r block = r.Fio.iops *. float_of_int block /. 1e9 in
  {
    id = "sec4_3blk";
    title = "S4.3: unrestricted local-SSD performance";
    header = [ "metric"; "bm-guest"; "vm-guest"; "bm adv"; "paper" ];
    rows =
      [
        [
          "4KB randread IOPS";
          Report.si bm_small.Fio.iops;
          Report.si vm_small.Fio.iops;
          Report.pct ((bm_small.Fio.iops /. vm_small.Fio.iops) -. 1.0);
          "+50%";
        ];
        [
          "256KB read bandwidth (GB/s)";
          Report.f2 (bw bm_big (256 * 1024));
          Report.f2 (bw vm_big (256 * 1024));
          Report.pct ((bw bm_big (256 * 1024) /. bw vm_big (256 * 1024)) -. 1.0);
          "+100%";
        ];
        [ "4KB average latency (us)"; Report.f1 bm_small.Fio.avg_us; Report.f1 vm_small.Fio.avg_us; "-"; "bm ~60us" ];
      ];
    notes = [];
  }

(* ------------------------------------------------------------------ *)
(* §6: ASIC IO-Bond ablation *)

let run_sec6 ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let probe profile =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let _, inst = Testbed.bm_guest ~profile tb in
    let time = ref nan and accesses = ref 0 in
    Sim.spawn tb.Testbed.sim (fun () ->
        let t0 = Sim.clock () in
        (match inst.Instance.probe () with
        | Ok n -> accesses := n
        | Error e -> failwith e);
        time := Sim.clock () -. t0);
    Testbed.run tb;
    (!time, !accesses)
  in
  let lat profile =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let _, a, b = Testbed.bm_pair ~profile tb in
    let count = if quick then 300 else 1500 in
    (Sockperf.ping_pong tb.Testbed.sim ~a ~b ~path:Sockperf.Kernel ~count ()).Sockperf.avg_us
  in
  let fpga_probe, accesses = probe Bm_iobond.Profile.Fpga in
  let asic_probe, _ = probe Bm_iobond.Profile.Asic in
  let fpga_lat = lat Bm_iobond.Profile.Fpga in
  let asic_lat = lat Bm_iobond.Profile.Asic in
  {
    id = "sec6";
    title = "S6: IO-Bond FPGA vs projected ASIC";
    header = [ "metric"; "FPGA"; "ASIC"; "paper" ];
    rows =
      [
        [ "PCI register hop (us)"; "0.8"; "0.2"; "0.8 -> 0.2 (75% cut)" ];
        [
          Printf.sprintf "virtio probe, %d accesses (us)" accesses;
          Report.f1 (fpga_probe /. 1e3);
          Report.f1 (asic_probe /. 1e3);
          "4x faster config path";
        ];
        [ "UDP one-way latency (us)"; Report.f1 fpga_lat; Report.f1 asic_lat; "shorter data path" ];
      ];
    notes = [];
  }

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out. *)

(* How much does IO-Bond's register latency matter? Sweep the per-hop
   cost (the FPGA -> ASIC axis, extended) against the two things it
   touches: the emulated config path and end-to-end message latency. *)
let run_ablation_reg ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let count = if quick then 200 else 1000 in
  let probe_and_lat profile =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let _, inst = Testbed.bm_guest ~profile tb in
    let probe_us = ref nan in
    Sim.spawn tb.Testbed.sim (fun () ->
        let t0 = Sim.clock () in
        (match inst.Instance.probe () with Ok _ -> () | Error e -> failwith e);
        probe_us := (Sim.clock () -. t0) /. 1e3);
    Testbed.run tb;
    let tb2 = Testbed.make ~seed ?trace ?metrics () in
    let _, a, b = Testbed.bm_pair ~profile tb2 in
    let lat = Sockperf.ping_pong tb2.Testbed.sim ~a ~b ~path:Sockperf.Kernel ~count () in
    (!probe_us, lat.Sockperf.avg_us)
  in
  let fpga_probe, fpga_lat = probe_and_lat Bm_iobond.Profile.Fpga in
  let asic_probe, asic_lat = probe_and_lat Bm_iobond.Profile.Asic in
  {
    id = "ablation_reg";
    title = "Ablation: IO-Bond register-hop latency (config path vs data path)";
    header = [ "profile"; "hop (us)"; "virtio probe (us)"; "UDP one-way (us)" ];
    rows =
      [
        [ "FPGA"; "0.8"; Report.f1 fpga_probe; Report.f1 fpga_lat ];
        [ "ASIC"; "0.2"; Report.f1 asic_probe; Report.f1 asic_lat ];
      ];
    notes =
      [
        "The config path scales with the hop 1:1; the data path only carries the";
        "doorbell and tail-register hops, so cutting the hop 4x buys far less there —";
        "why the paper runs production on the cheap FPGA.";
      ];
  }

(* How big must the DMA engine be? The paper picked 50 Gbit/s; sweep it
   against unrestricted guest throughput. *)
let run_ablation_dma ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 15.0 else Simtime.ms 80.0 in
  let tput dma_gbit_s =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let server =
      Bm_hyp.Bm_hypervisor.create_server ~obs:tb.Testbed.obs tb.Testbed.sim tb.Testbed.rng
        ~fabric:tb.Testbed.fabric ~storage:tb.Testbed.storage ~dma_gbit_s ()
    in
    let unlimited = Bm_cloud.Limits.unlimited_net () in
    let g name =
      match Bm_hyp.Bm_hypervisor.provision server ~name ~net_limits:unlimited () with
      | Ok i -> i
      | Error e -> failwith e
    in
    let a = g "a" and b = g "b" in
    let r =
      Netperf.tcp_stream tb.Testbed.sim ~src:a ~dst:b ~connections:32
        ~message_bytes:8192 ~duration ()
    in
    r.Netperf.gbit_s
  in
  let rows =
    List.map
      (fun g -> [ Printf.sprintf "%.0f Gbit/s" g; Report.f2 (tput g) ])
      [ 12.5; 25.0; 50.0; 100.0 ]
  in
  {
    id = "ablation_dma";
    title = "Ablation: IO-Bond DMA engine sizing vs unrestricted guest throughput";
    header = [ "engine"; "achieved wire Gbit/s" ];
    rows;
    notes =
      [
        "Throughput tracks the engine until the x4 device links (32 Gbit/s each, x8";
        "uplink) take over — 50 Gbit/s is the knee, matching the paper's choice.";
      ];
  }

(* How much do batched doorbells/PMD bursts buy? Sweep the burst size the
   guest stack hands to virtio. *)
let run_ablation_batch ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 15.0 else Simtime.ms 80.0 in
  let pps batch =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let _, a, b = Testbed.bm_pair ~net_limits:(Bm_cloud.Limits.unlimited_net ()) tb in
    let r = Netperf.udp_pps tb.Testbed.sim ~src:a ~dst:b ~senders:8 ~batch ~duration () in
    r.Netperf.received_pps
  in
  let rows =
    List.map (fun b -> [ string_of_int b; Report.si (pps b) ]) [ 1; 4; 16; 64 ]
  in
  {
    id = "ablation_batch";
    title = "Ablation: PMD/driver burst size vs unrestricted PPS";
    header = [ "burst"; "received PPS" ];
    rows;
    notes =
      [
        "Small bursts pay the per-chain DMA setup and doorbell amortisation; the";
        "multi-MPPS results of S4.3 need the batching every real PMD path uses.";
      ];
  }

(* S6's offload plan: with IO-Bond classifying flows, known traffic
   bypasses the bm-hypervisor's PMD entirely. Measure PPS and base-core
   utilization with and without it. *)
let run_ablation_offload ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 15.0 else Simtime.ms 80.0 in
  let run offload =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let server =
      Bm_hyp.Bm_hypervisor.create_server ~obs:tb.Testbed.obs tb.Testbed.sim tb.Testbed.rng
        ~fabric:tb.Testbed.fabric ~storage:tb.Testbed.storage ()
    in
    let unlimited = Bm_cloud.Limits.unlimited_net () in
    let g name =
      match Bm_hyp.Bm_hypervisor.provision server ~name ~net_limits:unlimited ~offload () with
      | Ok i -> i
      | Error e -> failwith e
    in
    let a = g "a" and b = g "b" in
    let r = Netperf.udp_pps tb.Testbed.sim ~src:a ~dst:b ~senders:10 ~batch:64 ~duration () in
    let base_util =
      Bm_hw.Cores.utilization (Bm_hyp.Bm_hypervisor.base_cores server)
        ~now:(Sim.now tb.Testbed.sim)
    in
    let hit_rate =
      match Bm_hyp.Bm_hypervisor.offload_table server ~name:"a" with
      | Some ot ->
        let total = Bm_iobond.Offload.hits ot + Bm_iobond.Offload.misses ot in
        if total = 0 then 0.0
        else float_of_int (Bm_iobond.Offload.hits ot) /. float_of_int total
      | None -> 0.0
    in
    (r.Netperf.received_pps, base_util, hit_rate)
  in
  let pps_off, util_off, _ = run false in
  let pps_on, util_on, hit_rate = run true in
  {
    id = "ablation_offload";
    title = "Ablation: IO-Bond flow offload (S6 plan) vs PMD-only backend";
    header = [ "backend"; "received PPS"; "base-core util"; "flow hit rate" ];
    rows =
      [
        [ "PMD only (deployed)"; Report.si pps_off; Report.pct util_off; "-" ];
        [ "IO-Bond offload (S6)"; Report.si pps_on; Report.pct util_on; Report.pct hit_rate ];
      ];
    notes =
      [
        "Offloaded flows skip the bm-hypervisor's per-packet CPU: the base server";
        "could use a lower-cost CPU, which is exactly the stated motivation in S6.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Availability under injected faults *)

(* [workers] guest fibers issue sequential 4 KiB reads until the plan
   horizon, then the run drains to quiescence, so every request issued
   before the horizon completes. Completion times, ascending. *)
let read_stream tb inst ~workers ~horizon_ns =
  let completions = ref [] in
  for _ = 1 to workers do
    Sim.spawn tb.Testbed.sim (fun () ->
        while Sim.clock () < horizon_ns do
          ignore (inst.Instance.blk ~op:`Read ~bytes_:4096);
          completions := Sim.clock () :: !completions
        done)
  done;
  Testbed.run tb;
  List.sort compare !completions

let gaps_of = function
  | [] | [ _ ] -> []
  | first :: rest ->
    let rec go prev acc = function
      | [] -> List.rev acc
      | x :: tl -> go x ((x -. prev) :: acc) tl
    in
    go first [] rest

let percentile xs p =
  match xs with
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (p *. float_of_int n)))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Time to recover from one fault event: the delay from the window
   opening to the next completion the guest observes. *)
let mttr_of (plan : Fault.plan) completions =
  List.filter_map
    (fun (e : Fault.event) ->
      List.find_opt (fun c -> c >= e.Fault.at) completions
      |> Option.map (fun c -> c -. e.Fault.at))
    plan.Fault.events

let run_availability ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let workers = if quick then 2 else 4 in
  let plan =
    match faults with
    | Some p -> p
    | None ->
      (* The recoverable kinds; Server_failure is the control plane's
         problem and is covered by the evacuation table below. *)
      Fault.make_plan ~seed
        [
          (Fault.Link_down, 2);
          (Fault.Dma_stall, 2);
          (Fault.Mailbox_drop, 2);
          (Fault.Firmware_wedge, 1);
          (Fault.Pmd_crash, 1);
        ]
  in
  let horizon = plan.Fault.horizon_ns in
  let run_bm ?faults () =
    let tb = Testbed.make ~seed ?trace ?metrics ?faults () in
    let _server, inst = Testbed.bm_guest tb in
    read_stream tb inst ~workers ~horizon_ns:horizon
  in
  let run_vm ?faults () =
    let tb = Testbed.make ~seed ?trace ?metrics ?faults () in
    let _host, inst = Testbed.vm_guest tb in
    read_stream tb inst ~workers ~horizon_ns:horizon
  in
  let clean_bm = run_bm () in
  let clean_vm = run_vm () in
  let goodput fault clean =
    float_of_int (List.length fault) /. float_of_int (max 1 (List.length clean))
  in
  (* One row per fault kind present in the plan: a fresh testbed runs
     the same workload under just that kind's events, so the recovery
     cost of each mechanism is visible in isolation. *)
  let kinds =
    List.filter
      (fun k -> List.exists (fun (e : Fault.event) -> e.Fault.kind = k) plan.Fault.events)
      Fault.all_kinds
  in
  let kind_rows =
    List.map
      (fun kind ->
        let sub =
          {
            plan with
            Fault.events =
              List.filter (fun (e : Fault.event) -> e.Fault.kind = kind) plan.Fault.events;
          }
        in
        let completions = run_bm ~faults:sub () in
        let gaps = gaps_of completions in
        [
          Fault.kind_name kind;
          string_of_int (List.length sub.Fault.events);
          Report.f1 (mean (mttr_of sub completions) /. 1e3);
          Report.f1 (percentile gaps 0.99 /. 1e3);
          Report.f1 (percentile gaps 1.0 /. 1e3);
          Report.pct (goodput completions clean_bm);
        ])
      kinds
  in
  (* The full plan at once, bm vs vm: the paper's density argument only
     holds if a board full of faults degrades no worse than a host. *)
  let fault_bm = run_bm ~faults:plan () in
  let fault_vm = run_vm ~faults:plan () in
  let combined_row name fault clean =
    let gaps = gaps_of fault in
    [
      name;
      string_of_int (List.length plan.Fault.events);
      Report.f1 (mean (mttr_of plan fault) /. 1e3);
      Report.f1 (percentile gaps 0.99 /. 1e3);
      Report.f1 (percentile gaps 1.0 /. 1e3);
      Report.pct (goodput fault clean);
    ]
  in
  (* Base-server failure: measure the blackout a surviving board's
     live migration would pay, for the notes below. *)
  let live_blackout_ns =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let _server, inst = Testbed.bm_guest tb in
    let stats = ref None in
    Sim.spawn tb.Testbed.sim (fun () ->
        match Live_migration.inject tb.Testbed.sim (Rng.split tb.Testbed.rng) inst with
        | Error _ -> ()
        | Ok injected -> (
          match Live_migration.migrate injected ~dirty_rate_gb_s:1.0 ~mem_gb:16 () with
          | Error _ -> ()
          | Ok s -> stats := Some s.Live_migration.blackout_ns));
    Testbed.run tb;
    !stats
  in
  {
    id = "availability";
    title = "Availability: MTTR, blackout and goodput under injected faults";
    header = [ "fault plan"; "events"; "avg MTTR (us)"; "p99 gap (us)"; "max gap (us)"; "goodput" ];
    rows =
      kind_rows
      @ [
          combined_row "all faults (bm-guest)" fault_bm clean_bm;
          combined_row "all faults (vm-guest)" fault_vm clean_vm;
        ];
    notes =
      [
        Printf.sprintf "plan: %d events over %.1f ms (seed %d); goodput = completions vs clean run"
          (List.length plan.Fault.events) (horizon /. 1e6) plan.Fault.seed;
        (match live_blackout_ns with
        | Some b ->
          Printf.sprintf
            "server failure: surviving boards live-migrate with %.1f ms blackout (S6 prototype);"
            (b /. 1e6)
        | None -> "server failure: live migration unavailable;");
        "dead boards evacuate via the control plane -- see the evacuation experiment.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Evacuation after a base-server failure *)

let run_evacuation ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace:_ ~metrics:_ ~topo:_ ~shards:_ ~quick:_ ~seed:_ =
  let open Bm_cloud in
  let strategies =
    [
      (Control_plane.First_fit, "first-fit");
      (Control_plane.Best_fit, "best-fit");
      (Control_plane.Spread, "spread");
    ]
  in
  let rows =
    List.map
      (fun (strategy, label) ->
        (* A small mixed fleet: the failed base holds four bm-guests;
           the rest of the fleet has two spare boards and one
           virtualization server, so evacuation must split victims
           across the bm fleet and the cold-migration path. *)
        let cp = Control_plane.create () in
        let victim_server =
          Control_plane.add_server cp (Control_plane.Bm_server { boards = 4; board_threads = 16 })
        in
        let _spare =
          Control_plane.add_server cp (Control_plane.Bm_server { boards = 2; board_threads = 16 })
        in
        let _vm =
          Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 })
        in
        let image = Image.centos7 in
        for i = 0 to 3 do
          match
            Control_plane.place cp
              ~name:(Printf.sprintf "bm%d" i)
              ~vcpus:16 ~prefer:Control_plane.Bare_metal ~image ()
          with
          | Ok _ -> ()
          | Error e -> failwith e
        done;
        let outcomes = Control_plane.evacuate cp ~server:victim_server ~strategy () in
        let count p = List.length (List.filter p outcomes) in
        let to_bm =
          count (function
            | _, Ok { Control_plane.substrate = Control_plane.Bare_metal; _ } -> true
            | _ -> false)
        and to_vm =
          count (function
            | _, Ok { Control_plane.substrate = Control_plane.Virtual; _ } -> true
            | _ -> false)
        and stranded = count (function _, Error _ -> true | _ -> false) in
        [
          label;
          string_of_int (List.length outcomes);
          string_of_int to_bm;
          string_of_int to_vm;
          string_of_int stranded;
        ])
      strategies
  in
  {
    id = "evacuation";
    title = "Evacuation: re-placing victims of a base-server failure";
    header = [ "strategy"; "victims"; "-> bm board"; "-> vm (cold)"; "stranded" ];
    rows;
    notes =
      [
        "Fleet: failed base (4 boards, all sold) + spare base (2 boards) + 1 vm server.";
        "Victims re-place bare-metal first; overflow cold-migrates to the vm substrate (S3.1).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Overload: offered load beyond the Table 3 limits, bounded vs blocking *)

(* Sweep offered load from 0.5x to 4x of the paper's rate limits (4M PPS
   / 10 Gbit/s network, 25K IOPS / 300 MB/s storage) with an open-loop
   generator. "blocking" is the legacy admission everywhere: limiters
   queue into token-bucket debt and the blockstore queue is effectively
   unbounded, so overload turns into unbounded waiting. "bounded" turns
   on the overload controls this repo adds: shedding limiters, a small
   storage admission queue, drop-tail backlogs. The acceptance shape is
   the hockey stick — bounded goodput stays at the ceiling with flat
   latency while blocking latency diverges with the backlog. *)
let run_overload ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let open Bm_cloud in
  let net_duration = if quick then Simtime.ms 8.0 else Simtime.ms 60.0 in
  let blk_duration = if quick then Simtime.ms 40.0 else Simtime.ms 250.0 in
  let multipliers = [ 0.5; 1.0; 2.0; 4.0 ] in
  let net_ceiling = 4e6 and blk_ceiling = 25e3 in
  let policy_name bounded = if bounded then "bounded" else "blocking" in
  let kind_name = function `Bm -> "bm" | `Vm -> "vm" in
  let net_run ?faults kind bounded mult =
    let policy = if bounded then Limits.Shed else Limits.Block in
    let limits = Limits.cloud_net ~policy () in
    let tb = Testbed.make ~seed ?trace ?metrics ?faults () in
    let src, dst =
      match kind with
      | `Bm ->
        let _, a, b = Testbed.bm_pair ~net_limits:limits tb in
        (a, b)
      | `Vm ->
        let _, a, b = Testbed.vm_pair ~net_limits:limits tb in
        (a, b)
    in
    Overload.udp_flood tb.Testbed.sim ~src ~dst ~offered_pps:(mult *. net_ceiling)
      ~duration:net_duration ()
  in
  let blk_run ?faults kind bounded mult =
    let policy = if bounded then Limits.Shed else Limits.Block in
    let blk_limits = Limits.cloud_blk ~policy () in
    (* Bounded keeps the blockstore admission queue short; blocking gets
       a queue deep enough that admission never refuses (the pre-PR
       behaviour, where the backlog hides inside the storage service). *)
    let storage_queue = if bounded then 64 else 1_000_000 in
    let tb = Testbed.make ~seed ~storage_queue ?trace ?metrics ?faults () in
    let inst =
      match kind with
      | `Bm -> snd (Testbed.bm_guest ~blk_limits tb)
      | `Vm -> snd (Testbed.vm_guest ~blk_limits tb)
    in
    Overload.blk_flood tb.Testbed.sim ~inst ~offered_iops:(mult *. blk_ceiling)
      ~duration:blk_duration ()
  in
  let net_results =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun bounded ->
            List.map (fun m -> ((kind, bounded, m), net_run kind bounded m)) multipliers)
          [ false; true ])
      [ `Bm; `Vm ]
  in
  let blk_results =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun bounded ->
            List.map (fun m -> ((kind, bounded, m), blk_run kind bounded m)) multipliers)
          [ false; true ])
      [ `Bm; `Vm ]
  in
  let net_row ?(label_extra = "") ((kind, bounded, mult), (r : Overload.net_result)) =
    [
      "net " ^ kind_name kind ^ label_extra;
      policy_name bounded;
      Printf.sprintf "%.1fx" mult;
      Report.si r.Overload.offered_pps;
      Report.si r.Overload.goodput_pps;
      Report.si (float_of_int r.Overload.shed);
      Report.f1 r.Overload.p50_us;
      Report.f1 r.Overload.p99_us;
      Report.f1 r.Overload.max_lag_ms;
    ]
  in
  let blk_row ?(label_extra = "") ((kind, bounded, mult), (r : Overload.blk_result)) =
    [
      "blk " ^ kind_name kind ^ label_extra;
      policy_name bounded;
      Printf.sprintf "%.1fx" mult;
      Report.si r.Overload.offered_iops;
      Report.si r.Overload.goodput_iops;
      Report.si (float_of_int r.Overload.rejected);
      Report.f1 r.Overload.blk_p50_us;
      Report.f1 r.Overload.blk_p99_us;
      Report.f1 r.Overload.blk_max_lag_ms;
    ]
  in
  (* Combined faults + overload soak: the same 2x flood with the fault
     plan armed, on the bounded bm datapath — overload control and
     failure recovery composing, not interfering. *)
  let soak_rows =
    match faults with
    | None -> []
    | Some plan ->
      [
        net_row ~label_extra:"+faults" ((`Bm, true, 2.0), net_run ~faults:plan `Bm true 2.0);
        blk_row ~label_extra:"+faults" ((`Bm, true, 2.0), blk_run ~faults:plan `Bm true 2.0);
      ]
  in
  let net_at bounded = List.assoc (`Bm, bounded, 4.0) net_results in
  let blk_at bounded = List.assoc (`Bm, bounded, 4.0) blk_results in
  {
    id = "overload";
    title = "Overload: goodput and schedule latency, 0.5x-4x the rate limits";
    header =
      [ "path"; "admission"; "load"; "offered/s"; "goodput/s"; "refused"; "p50 us"; "p99 us"; "lag ms" ];
    rows = List.map net_row net_results @ List.map blk_row blk_results @ soak_rows;
    notes =
      [
        "Ceilings (Table 3): net 4M PPS / 10 Gbit/s; blk 25K IOPS / 300 MB/s.";
        "Latency is measured against each packet's intended (open-loop) send time.";
        Printf.sprintf
          "net bm at 4x: bounded goodput %s pps (p99 %s us); blocking p99 %s us, %s ms behind schedule"
          (Report.si (net_at true).Overload.goodput_pps)
          (Report.f1 (net_at true).Overload.p99_us)
          (Report.f1 (net_at false).Overload.p99_us)
          (Report.f1 (net_at false).Overload.max_lag_ms);
        Printf.sprintf
          "blk bm at 4x: bounded goodput %s IOPS (p99 %s us); blocking p99 %s us"
          (Report.si (blk_at true).Overload.goodput_iops)
          (Report.f1 (blk_at true).Overload.blk_p99_us)
          (Report.f1 (blk_at false).Overload.blk_p99_us);
        (match faults with
        | Some _ -> "soak rows: same flood with the fault plan armed (recovery under pressure)."
        | None -> "pass --faults SEED:SPEC to add the combined faults+overload soak rows.");
      ];
  }

(* ------------------------------------------------------------------ *)
(* Cross-host experiments: traffic over the link-level fabric *)

module Fabric = Bm_fabric.Fabric
module Topology = Bm_fabric.Topology
module Packet = Bm_virtio.Packet

(* One bm-guest on each of two base servers; with a topology in the
   testbed the servers claim fabric ports 0 and 1 in creation order. *)
let xhost_bm_pair tb =
  let s1 = Testbed.bm_server tb in
  let s2 = Testbed.bm_server tb in
  let g server name =
    match Bm_hypervisor.provision server ~name () with Ok i -> i | Error e -> failwith e
  in
  (g s1 "a", g s2 "b")

let xhost_vm_pair tb =
  let h1 = Testbed.vm_host tb in
  let h2 = Testbed.vm_host tb in
  (Kvm.create_vm h1 (Kvm.default_config ~name:"a"), Kvm.create_vm h2 (Kvm.default_config ~name:"b"))

(* Background load injected straight into the fabric (pseudo endpoints,
   so it contends in the link queues without consuming guest or vswitch
   resources): every [period] a train of [train] bursts, until a stop
   time — the on/off pattern that builds and drains queues. *)
let background_trains sim net ~src_host ~dst_host ~burst_bytes ~burst_count ~train ~period ~until
    =
  let next_id = ref 0 in
  Sim.spawn sim (fun () ->
      let rec tick () =
        if Sim.clock () < until then begin
          for _ = 1 to train do
            incr next_id;
            Fabric.send net ~src_host ~dst_host
              ~deliver:(fun _ -> ())
              (Packet.make ~id:!next_id ~src:0x6f00 ~dst:0x6f01 ~size:burst_bytes
                 ~count:burst_count ~tag:1 ~protocol:Packet.Udp ~sent_at:(Sim.clock ()) ())
          done;
          Sim.delay period;
          tick ()
        end
      in
      tick ())

let hottest_link net ~now =
  List.fold_left
    (fun acc (s : Fabric.link_stat) ->
      match acc with
      | Some (a : Fabric.link_stat) when a.utilization >= s.utilization -> acc
      | _ -> Some s)
    None
    (Fabric.link_stats net ~now)

let link_note net ~now =
  match hottest_link net ~now with
  | None -> "fabric: no links"
  | Some s ->
    Printf.sprintf "hottest link %s: util %s, depth p99 %s, delivered %s, dropped %s" s.name
      (Report.pct s.utilization) (Report.f1 s.depth_p99)
      (Report.si (float_of_int s.delivered_pkts))
      (Report.si (float_of_int s.dropped_pkts))

let run_xhost_rr ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo ~shards:_ ~quick ~seed =
  let count = if quick then 400 else 2000 in
  let rr tb (a, b) = Netperf.tcp_rr tb.Testbed.sim ~src:a ~dst:b ~count () in
  (* On-host baseline: the pre-fabric fast path, same server. *)
  let tb0 = Testbed.make ~seed ?trace ?metrics () in
  let _, a0, b0 = Testbed.bm_pair tb0 in
  let on_host = rr tb0 (a0, b0) in
  (* Cross-host over an idle leaf-spine: hosts in different racks. *)
  let topo_idle = Option.value topo ~default:(Topology.clos ~hosts:2 ~tors:2 ~spines:2 ()) in
  let tb1 = Testbed.make ~seed ?trace ?metrics ~topology:topo_idle () in
  let bm_pair1 = xhost_bm_pair tb1 in
  let idle = rr tb1 bm_pair1 in
  let net1 = Option.get tb1.Testbed.net in
  (* Same racks, one undersized spine, on/off cross traffic sharing the
     request path: queueing delay without drops (trains of 30 bursts
     stay under the 64-burst queues). *)
  let topo_hot = Topology.clos ~hosts:2 ~tors:2 ~spines:1 ~spine_gbit_s:10.0 () in
  let tb2 = Testbed.make ~seed ?trace ?metrics ~topology:topo_hot () in
  let bm_pair2 = xhost_bm_pair tb2 in
  let net2 = Option.get tb2.Testbed.net in
  background_trains tb2.Testbed.sim net2 ~src_host:0 ~dst_host:1 ~burst_bytes:15_000
    ~burst_count:10 ~train:30 ~period:(Simtime.us 500.0)
    ~until:(if quick then Simtime.ms 150.0 else Simtime.ms 600.0);
  let hot = rr tb2 bm_pair2 in
  (* vm-guests across the same idle fabric. *)
  let tb3 = Testbed.make ~seed ?trace ?metrics ~topology:topo_idle () in
  let vm_pair = xhost_vm_pair tb3 in
  let vm_idle = rr tb3 vm_pair in
  (* An uncongested transaction pays, on top of the on-host RTT, the
     wire path both ways plus the remote vswitch's per-packet cost both
     ways — nothing else. *)
  let wire_bytes = 64 + Packet.tcp_header_bytes in
  let expected_delta_us =
    (2.0 *. (Fabric.path_latency_ns net1 ~src_host:0 ~dst_host:1 ~bytes:wire_bytes +. 300.0))
    /. 1e3
  in
  let measured_delta_us = idle.Netperf.rtt_p50_us -. on_host.Netperf.rtt_p50_us in
  let row label (r : Netperf.rr_result) =
    [
      label;
      string_of_int r.Netperf.transactions;
      Report.si r.Netperf.per_s;
      Report.f1 r.Netperf.rtt_p50_us;
      Report.f1 r.Netperf.rtt_p99_us;
      Report.f1 r.Netperf.rtt_p999_us;
    ]
  in
  {
    id = "xhost_rr";
    title = "Cross-host netperf TCP_RR over the leaf-spine fabric";
    header = [ "config"; "tx"; "tx/s"; "p50 us"; "p99 us"; "p99.9 us" ];
    rows =
      [
        row "bm on-host" on_host;
        row "bm cross-host, idle spine" idle;
        row "bm cross-host, hot spine" hot;
        row "vm cross-host, idle spine" vm_idle;
        Report.check
          ~paper:(Report.f1 expected_delta_us)
          ~measured:(Report.f1 measured_delta_us)
          ~ok:
            (within ~tolerance:0.1 ~target:expected_delta_us measured_delta_us)
          [ "idle RTT delta vs on-host (us)"; "-"; "-" ];
        Report.check ~paper:">= 2x idle"
          ~measured:(Report.f1 hot.Netperf.rtt_p99_us)
          ~ok:(hot.Netperf.rtt_p99_us >= 2.0 *. idle.Netperf.rtt_p99_us)
          [ "hot-spine p99 inflation (us)"; "-"; "-" ];
      ];
    notes =
      [
        Printf.sprintf "idle topology: %s" (Topology.render (Fabric.topology net1));
        Printf.sprintf "expected idle delta = 2 x (one-way path latency + remote vswitch cost)";
        Printf.sprintf "hot spine: %s" (link_note net2 ~now:(Sim.now tb2.Testbed.sim));
      ];
  }

let run_xhost_stream ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo ~shards:_ ~quick ~seed =
  let duration = if quick then Simtime.ms 30.0 else Simtime.ms 300.0 in
  let stream tb (a, b) = Netperf.tcp_stream tb.Testbed.sim ~src:a ~dst:b ~duration () in
  let topo_idle = Option.value topo ~default:(Topology.clos ~hosts:2 ~tors:2 ~spines:2 ()) in
  let bm_cell topology =
    let tb = Testbed.make ~seed ?trace ?metrics ~topology () in
    let pair = xhost_bm_pair tb in
    let r = stream tb pair in
    (r, Option.get tb.Testbed.net, Sim.now tb.Testbed.sim)
  in
  let idle, net_idle, now_idle = bm_cell topo_idle in
  (* The guests' 10 Gbit/s cap funnelled through a 5 Gbit/s spine: the
     ToR uplink queue fills and drop-tails — loss, not backpressure. *)
  let hot, net_hot, now_hot =
    bm_cell (Topology.clos ~hosts:2 ~tors:2 ~spines:1 ~spine_gbit_s:5.0 ())
  in
  let vm_idle =
    let tb = Testbed.make ~seed ?trace ?metrics ~topology:topo_idle () in
    let pair = xhost_vm_pair tb in
    stream tb pair
  in
  let row label (r : Netperf.throughput_result) =
    [
      label;
      Report.f2 r.Netperf.payload_gbit_s;
      Report.f2 r.Netperf.gbit_s;
      Report.si (float_of_int r.Netperf.messages);
    ]
  in
  {
    id = "xhost_stream";
    title = "Cross-host TCP throughput: idle vs oversubscribed spine";
    header = [ "config"; "payload gbit/s"; "wire gbit/s"; "messages" ];
    rows =
      [
        row "bm cross-host, idle spine" idle;
        row "bm cross-host, 5G spine" hot;
        row "vm cross-host, idle spine" vm_idle;
        Report.check ~paper:"~9.6 (rate cap)"
          ~measured:(Report.f2 idle.Netperf.payload_gbit_s)
          ~ok:(idle.Netperf.payload_gbit_s >= 8.5)
          [ "idle spine carries the rate cap" ];
        Report.check ~paper:"< 5.0 + drops"
          ~measured:(Report.f2 hot.Netperf.payload_gbit_s)
          ~ok:(hot.Netperf.payload_gbit_s < 5.0 && Fabric.dropped net_hot > 0)
          [ "oversubscribed spine sheds load" ];
      ];
    notes =
      [
        Printf.sprintf "idle: %s" (link_note net_idle ~now:now_idle);
        Printf.sprintf "hot:  %s" (link_note net_hot ~now:now_hot);
        Printf.sprintf "hot fabric conservation: injected %d = delivered %d + dropped %d"
          (Fabric.injected net_hot) (Fabric.delivered net_hot) (Fabric.dropped net_hot);
      ];
  }

let run_xhost_migrate ~scenario:_ ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo ~shards:_ ~quick ~seed =
  let mem_gb = if quick then 4 else 16 in
  let dirty = 2.0 in
  let migrate_in tb bm via =
    let out = ref None in
    Sim.spawn tb.Testbed.sim (fun () ->
        match Live_migration.inject tb.Testbed.sim (Rng.create ~seed:(seed + 1)) bm with
        | Error e -> failwith e
        | Ok inj -> (
          match Live_migration.migrate inj ?via ~dirty_rate_gb_s:dirty ~mem_gb () with
          | Error e -> failwith e
          | Ok s -> out := Some s));
    Testbed.run tb;
    Option.get !out
  in
  (* Analytic dedicated link — the pre-fabric model. *)
  let analytic =
    let tb = Testbed.make ~seed ?trace ?metrics () in
    let _, bm = Testbed.bm_guest tb in
    migrate_in tb bm None
  in
  let fabric_cell ~flood =
    let topology = Option.value topo ~default:(Topology.two_host ()) in
    let tb = Testbed.make ~seed ?trace ?metrics ~topology () in
    let _, bm = Testbed.bm_guest tb in
    let net = Option.get tb.Testbed.net in
    if flood then
      (* ~50% of the uplink in 1 MB bursts, alongside the pre-copy. *)
      background_trains tb.Testbed.sim net ~src_host:0 ~dst_host:1 ~burst_bytes:1_000_000
        ~burst_count:1 ~train:1 ~period:(Simtime.us 160.0)
        ~until:(if quick then Simtime.sec 1.5 else Simtime.sec 5.0);
    migrate_in tb bm (Some (net, 0, 1))
  in
  let idle = fabric_cell ~flood:false in
  let contended = fabric_cell ~flood:true in
  let row label (s : Live_migration.migration_stats) =
    [
      label;
      string_of_int s.Live_migration.precopy_rounds;
      Report.f2 (s.Live_migration.bytes_copied /. 1e9);
      Report.f2 (s.Live_migration.blackout_ns /. 1e6);
      Report.f2 (s.Live_migration.total_ns /. 1e9);
    ]
  in
  {
    id = "xhost_migrate";
    title = "Live migration over the fabric: idle vs contended uplink";
    header = [ "config"; "rounds"; "copied GB"; "blackout ms"; "total s" ];
    rows =
      [
        row "dedicated link (analytic)" analytic;
        row "fabric, idle" idle;
        row "fabric, contended uplink" contended;
        Report.check ~paper:"= analytic"
          ~measured:(Report.f2 (idle.Live_migration.total_ns /. 1e9))
          ~ok:
            (within ~tolerance:0.1 ~target:analytic.Live_migration.total_ns
               idle.Live_migration.total_ns)
          [ "idle fabric matches dedicated link"; "-" ];
        Report.check ~paper:"> idle"
          ~measured:(Report.f2 (contended.Live_migration.total_ns /. 1e9))
          ~ok:(contended.Live_migration.total_ns > 1.2 *. idle.Live_migration.total_ns)
          [ "contention stretches the copy"; "-" ];
      ];
    notes =
      [
        Printf.sprintf "%d GB at %.1f GB/s dirty rate; pre-copy in 1 MB chunks, window 16"
          mem_gb dirty;
        "contended cell: 1 MB background burst every 160 us on the same uplink (~50% duty)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Fleet scale: the live fleet simulation *)

let run_fleet_scale ~scenario:_ ~policy:_ ~fleet ~vf:_ ~faults:_ ~trace ~metrics ~topo ~shards ~quick ~seed =
  let base = if quick then Fleet.Live.quick_config else Fleet.Live.default_config in
  let cfg =
    {
      base with
      Fleet.Live.hosts = Option.value fleet.fleet_hosts ~default:base.Fleet.Live.hosts;
      guests = Option.value fleet.fleet_guests ~default:base.Fleet.Live.guests;
      tenants = Option.value fleet.fleet_tenants ~default:base.Fleet.Live.tenants;
    }
  in
  let live = Fleet.Live.build ?trace ?metrics ?topo ~seed cfg in
  let sched = Fleet.Live.scheduler live in
  let cp = Bm_cloud.Scheduler.control_plane sched in
  let net = Fleet.Live.fabric live in
  Fleet.Live.serve ~shards live ~duration_ns:(Simtime.ms (if quick then 2.0 else 10.0));
  (* Fail the busiest host, drain it through the fabric, repair it,
     then rebalance — the full maintenance cycle. *)
  let victim_host =
    fst
      (List.fold_left
         (fun (bh, bc) (h, c) -> if c > bc then (h, c) else (bh, bc))
         (0, -1)
         (Bm_cloud.Scheduler.occupancy sched))
  in
  let evac = Fleet.Live.evacuate live ~server:victim_host in
  let recovered = Fleet.Live.restore live ~server:victim_host in
  let moves = Bm_cloud.Scheduler.rebalance sched () in
  Fleet.Live.serve ~shards live ~duration_ns:(Simtime.ms (if quick then 1.0 else 2.0));
  let survey = Fleet.Live.exit_survey live (Rng.create ~seed:(seed + 1)) in
  let placed_now = List.length (Bm_cloud.Scheduler.assignments sched) in
  let stranded_now = List.length (Bm_cloud.Scheduler.stranded sched) in
  let max_util =
    List.fold_left
      (fun acc id -> Float.max acc (Bm_cloud.Control_plane.server_utilization cp id))
      0.0
      (Bm_cloud.Control_plane.server_ids cp)
  in
  let violations = Bm_cloud.Scheduler.anti_affinity_violations sched in
  {
    id = "fleet_scale";
    title =
      Printf.sprintf "Fleet scale: %d guests on %d fabric-attached hosts (%d tenants)" cfg.guests
        cfg.hosts cfg.tenants;
    header = [ "property"; "expect"; "measured"; "band" ];
    rows =
      [
        Report.check
          ~paper:(string_of_int cfg.guests)
          ~measured:(string_of_int (Fleet.Live.placed live))
          ~ok:(Fleet.Live.placed live = cfg.guests)
          [ "all guests placed at build" ];
        Report.check ~paper:"0"
          ~measured:(string_of_int (List.length violations))
          ~ok:(violations = [])
          [ "anti-affinity violations" ];
        Report.check
          ~paper:(Printf.sprintf "<= %s" (Report.pct cfg.Fleet.Live.host_ceiling))
          ~measured:(Report.pct max_util)
          ~ok:(max_util <= cfg.Fleet.Live.host_ceiling +. 1e-9)
          [ "max per-host utilization" ];
        Report.check ~paper:"0 stranded"
          ~measured:(Printf.sprintf "%d/%d re-placed" evac.Fleet.Live.replaced evac.Fleet.Live.victims)
          ~ok:(evac.Fleet.Live.stranded = 0 && evac.Fleet.Live.replaced = evac.Fleet.Live.victims)
          [ "mass evacuation" ];
        Report.check ~paper:"0"
          ~measured:(string_of_int (Fabric.dropped net))
          ~ok:(Fabric.dropped net = 0)
          [ "fabric drops (flows + pre-copy)" ];
        Report.check
          ~paper:(string_of_int cfg.guests)
          ~measured:(Printf.sprintf "%d placed + %d stranded" placed_now stranded_now)
          ~ok:(placed_now + stranded_now = cfg.guests)
          [ "guest conservation" ];
        Report.check ~paper:"3.82%"
          ~measured:(Report.pct survey.Fleet.over_10k)
          ~ok:(within ~tolerance:0.5 ~target:0.0382 survey.Fleet.over_10k)
          [ "Table 2 > 10K exits/s, live population" ];
      ];
    notes =
      [
        Printf.sprintf "topology: %s" (Bm_fabric.Topology.render (Fabric.topology net));
        Printf.sprintf "serve: %d east-west bursts; fabric injected %d = delivered %d + dropped %d"
          (Fleet.Live.flow_bursts live) (Fabric.injected net) (Fabric.delivered net)
          (Fabric.dropped net);
        Printf.sprintf "evacuated host %d: %d victims, %.1f GB pre-copied in %.1f ms" victim_host
          evac.Fleet.Live.victims
          (float_of_int evac.Fleet.Live.bytes_streamed /. 1e9)
          (evac.Fleet.Live.stream_ns /. 1e6);
        Printf.sprintf "restore recovered %d stranded; rebalance moved %d guests" recovered
          (List.length moves);
        Printf.sprintf "live Table 2 tail: > 50K %s (paper 0.37%%), > 100K %s (paper 0.13%%)"
          (Report.pct survey.Fleet.over_50k) (Report.pct survey.Fleet.over_100k);
        Report.tenant_table ~title:"tenant metering (first 5)"
          (List.filteri (fun i _ -> i < 5) (Bm_cloud.Scheduler.tenants sched));
      ];
  }

(* ------------------------------------------------------------------ *)
(* Game day: composed fault timeline + degradation ladder + SLO scores *)

let policy_kind ~experiment policy =
  match policy with
  | None -> Bm_cloud.Policy.Ladder
  | Some name -> (
    match Bm_cloud.Policy.of_name name with
    | Some kind -> kind
    | None ->
      invalid_arg
        (Printf.sprintf "%s: unknown policy %S (try: %s)" experiment name
           (String.concat ", " (List.map Bm_cloud.Policy.name Bm_cloud.Policy.all))))

let run_game_day ~scenario ~policy ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards ~quick ~seed =
  let spec =
    match scenario with
    | Some s -> (
      match Scenario.parse_spec s with
      | Ok spec -> spec
      | Error e -> invalid_arg (Printf.sprintf "game_day: %s" e))
    | None -> Scenario.default_spec ~seed ()
  in
  let kind = policy_kind ~experiment:"game_day" policy in
  let cfg = if quick then Fleet.Live.quick_config else Fleet.Live.default_config in
  (* The same timeline twice: open loop, then with the degradation
     policy closed around it. The scorecard delta is the experiment.
     The two arms share nothing (each builds its own fleet from the
     spec), so [--shards >= 2] runs them on two domains; results join
     in input order, byte-identical to the sequential sweep. *)
  let off, on =
    match
      Parallel.map
        ~jobs:(min shards 2)
        (fun degrade ->
          if degrade then Scenario.run ?trace ?metrics ~degrade:true ~policy:kind ~fleet:cfg spec
          else Scenario.run ?trace ?metrics ~degrade:false ~fleet:cfg spec)
        [ false; true ]
    with
    | [ off; on ] -> (off, on)
    | _ -> assert false
  in
  let by_tier tier (o : Scenario.outcome) =
    List.filter (fun (s : Bm_cloud.Slo.tenant_score) -> s.Bm_cloud.Slo.tier = tier) o.Scenario.scores
  in
  let met scores = List.length (List.filter (fun (s : Bm_cloud.Slo.tenant_score) -> s.Bm_cloud.Slo.met) scores) in
  let tier_row tier =
    let o = by_tier tier off and n = by_tier tier on in
    [
      Bm_cloud.Slo.tier_name tier;
      string_of_int (List.length n);
      Printf.sprintf "%d/%d" (met o) (List.length o);
      Printf.sprintf "%d/%d" (met n) (List.length n);
    ]
  in
  let improved =
    List.exists
      (fun tier -> met (by_tier tier on) > met (by_tier tier off))
      [ Bm_cloud.Slo.Gold; Bm_cloud.Slo.Silver; Bm_cloud.Slo.Bronze ]
  in
  {
    id = "game_day";
    title = "Game day: composed faults, degradation ladder, SLO scorecard";
    header = [ "tier"; "tenants"; "SLO met (open loop)"; "SLO met (degradation)" ];
    rows =
      [
        tier_row Bm_cloud.Slo.Gold;
        tier_row Bm_cloud.Slo.Silver;
        tier_row Bm_cloud.Slo.Bronze;
        Report.check ~paper:"degradation helps"
          ~measured:(Printf.sprintf "%d -> %d tenants met" off.Scenario.met on.Scenario.met)
          ~ok:improved
          [ "some tier gains SLO compliance" ];
      ];
    notes =
      [
        Scenario.render spec;
        off.Scenario.scorecard;
        on.Scenario.scorecard;
        Printf.sprintf "degradation %s: max stage %d, %d stage actions, %d guard retries"
          on.Scenario.policy on.Scenario.max_stage on.Scenario.stage_actions
          on.Scenario.guard_retries;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Policy race: every degradation policy over the same seeded timeline *)

(* The same scenario seed (victims, fault times, traffic arrivals) for
   every entrant, so the table differences are pure policy: which levers
   each pulled, and what that bought per tier. Rows are ranked by total
   SLOs met, Gold met breaking ties; the open-loop row is the floor. *)
let run_policy_race ~scenario ~policy:_ ~fleet:_ ~vf:_ ~faults:_ ~trace ~metrics ~topo:_ ~shards ~quick ~seed =
  let spec =
    match scenario with
    | Some s -> (
      match Scenario.parse_spec s with
      | Ok spec -> spec
      | Error e -> invalid_arg (Printf.sprintf "policy_race: %s" e))
    | None -> Scenario.default_spec ~seed ()
  in
  let cfg = if quick then Fleet.Live.quick_config else Fleet.Live.default_config in
  (* One independent arm per entrant (plus the open-loop floor), each
     building its own fleet from the same seeded spec: [--shards >= 2]
     races them across that many domains, joined in input order. *)
  let open_loop, entrants =
    match
      Parallel.map ~jobs:(min shards (1 + List.length Bm_cloud.Policy.all))
        (function
          | None -> Scenario.run ?trace ?metrics ~degrade:false ~fleet:cfg spec
          | Some kind -> Scenario.run ?trace ?metrics ~degrade:true ~policy:kind ~fleet:cfg spec)
        (None :: List.map Option.some Bm_cloud.Policy.all)
    with
    | open_loop :: entrants -> (open_loop, entrants)
    | [] -> assert false
  in
  let by_tier tier (o : Scenario.outcome) =
    List.filter
      (fun (s : Bm_cloud.Slo.tenant_score) -> s.Bm_cloud.Slo.tier = tier)
      o.Scenario.scores
  in
  let met scores =
    List.length (List.filter (fun (s : Bm_cloud.Slo.tenant_score) -> s.Bm_cloud.Slo.met) scores)
  in
  let gold_met o = met (by_tier Bm_cloud.Slo.Gold o) in
  let tier_cell tier o =
    let ss = by_tier tier o in
    Printf.sprintf "%d/%d" (met ss) (List.length ss)
  in
  let row label (o : Scenario.outcome) =
    [
      label;
      string_of_int o.Scenario.met;
      tier_cell Bm_cloud.Slo.Gold o;
      tier_cell Bm_cloud.Slo.Silver o;
      tier_cell Bm_cloud.Slo.Bronze o;
      string_of_int o.Scenario.max_stage;
      string_of_int o.Scenario.stage_actions;
      string_of_int o.Scenario.evacuated_guests;
    ]
  in
  let ranked =
    List.stable_sort
      (fun (a : Scenario.outcome) b ->
        match compare b.Scenario.met a.Scenario.met with
        | 0 -> compare (gold_met b) (gold_met a)
        | c -> c)
      entrants
  in
  let best = List.hd ranked in
  let ladder =
    List.find (fun (o : Scenario.outcome) -> o.Scenario.policy = "ladder") entrants
  in
  {
    id = "policy_race";
    title = "Policy race: every degradation policy on the same seeded game day";
    header =
      [ "policy"; "SLO met"; "gold"; "silver"; "bronze"; "max stage"; "actions"; "evacuated" ];
    rows =
      (row "open loop" open_loop :: List.map (fun o -> row o.Scenario.policy o) ranked)
      @ [
          Report.check ~paper:">= ladder"
            ~measured:
              (Printf.sprintf "%s: %d met (ladder %d)" best.Scenario.policy best.Scenario.met
                 ladder.Scenario.met)
            ~ok:(best.Scenario.met >= ladder.Scenario.met)
            [ "winner at least matches the ladder"; "-"; "-"; "-"; "-" ];
        ];
    notes =
      Scenario.render spec
      :: Printf.sprintf "ranking: SLOs met, Gold met breaking ties; same seed for every row"
      :: open_loop.Scenario.scorecard
      :: List.map (fun (o : Scenario.outcome) -> o.Scenario.scorecard) ranked;
  }

(* ------------------------------------------------------------------ *)
(* SR-IOV virtual functions: scale sweep, hot-reassignment, ablation *)

module Vf = Bm_iobond.Vf

let percentile_of sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

(* One guest per VF, Poisson arrivals per queue, raw device — the
   arbitration model in isolation, before any hypervisor is involved. *)
let run_vf_scale ~scenario:_ ~policy:_ ~fleet:_ ~vf ~faults ~trace ~metrics ~topo:_ ~shards ~quick ~seed =
  let vfs_list =
    match vf.vf_count with Some n -> [ n ] | None -> if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ]
  in
  let queues_list = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let per_vf = if quick then 300 else 1500 in
  let cells = List.concat_map (fun v -> List.map (fun q -> (v, q)) queues_list) vfs_list in
  let run_cell (vfs, queues) =
    let tb = Testbed.make ~seed ?trace ?metrics ?faults () in
    let dev =
      Vf.create_device ~obs:tb.Testbed.obs ~fault:tb.Testbed.fault tb.Testbed.sim
        ~profile:Bm_iobond.Profile.Fpga ~vfs ~queues_per_vf:queues ()
    in
    let lats = ref [] and delivered = ref 0 and rejected = ref 0 in
    let t_last = ref 0.0 in
    for v = 0 to vfs - 1 do
      let f =
        match Vf.attach dev ~owner:(Printf.sprintf "guest%d" v) () with
        | Ok f -> f
        | Error e -> failwith e
      in
      let rng = Rng.split tb.Testbed.rng in
      Sim.spawn tb.Testbed.sim (fun () ->
          for i = 0 to per_vf - 1 do
            Sim.delay (Rng.exponential rng ~mean:900.0);
            match
              Vf.submit f ~queue:(i mod queues) ~bytes_:1500 ~deliver:(fun c ->
                  incr delivered;
                  t_last := Float.max !t_last c.Vf.c_completed_ns;
                  lats := (c.Vf.c_completed_ns -. c.Vf.c_submitted_ns) :: !lats)
            with
            | `Submitted _ -> ()
            | `Rejected -> incr rejected
          done)
    done;
    Testbed.run tb;
    let sorted = Array.of_list (List.sort compare !lats) in
    let gbit =
      if !t_last > 0.0 then 8.0 *. 1500.0 *. float_of_int !delivered /. !t_last else 0.0
    in
    [
      string_of_int vfs;
      string_of_int queues;
      string_of_int (vfs * per_vf);
      string_of_int !delivered;
      string_of_int !rejected;
      Report.f2 gbit;
      Report.f2 (percentile_of sorted 0.50 /. 1e3);
      Report.f2 (percentile_of sorted 0.99 /. 1e3);
    ]
  in
  (* Cells share nothing — each builds its own testbed — so [--shards]
     fans them across domains; the input-order join keeps the table
     byte-identical at any width. *)
  let rows = Parallel.map ~jobs:shards run_cell cells in
  {
    id = "vf_scale";
    title = "VF scale: guests x queues throughput/latency sweep";
    header = [ "vfs"; "queues"; "offered"; "delivered"; "rejected"; "gbit/s"; "p50 us"; "p99 us" ];
    rows;
    notes =
      [
        "One guest per VF, equal weights: per-VF share = device rate / active VFs.";
        "1500B frames, Poisson arrivals (mean 900ns) per VF across its queue pairs.";
      ];
  }

(* Hot-reassignment under load: seqno bookkeeping proves no completion
   is lost or duplicated across the ownership swaps; the device's
   blackout log gives the distribution. *)
let run_vf_reassign ~scenario:_ ~policy:_ ~fleet:_ ~vf ~faults ~trace ~metrics ~topo:_ ~shards:_ ~quick ~seed =
  let vfs = max 2 (Option.value vf.vf_count ~default:4) in
  let rounds = if quick then 8 else 32 in
  let per_vf = if quick then 400 else 1600 in
  let tb = Testbed.make ~seed ?trace ?metrics ?faults () in
  let dev =
    Vf.create_device ~obs:tb.Testbed.obs ~fault:tb.Testbed.fault tb.Testbed.sim
      ~profile:Bm_iobond.Profile.Fpga ~vfs ~queues_per_vf:2 ()
  in
  let handles =
    Array.init vfs (fun v ->
        match Vf.attach dev ~owner:(Printf.sprintf "tenant%d" v) () with
        | Ok f -> f
        | Error e -> failwith e)
  in
  let submitted = Hashtbl.create 4096 and got = Hashtbl.create 4096 in
  let dups = ref 0 and rejected = ref 0 in
  Array.iteri
    (fun v f ->
      let rng = Rng.split tb.Testbed.rng in
      Sim.spawn tb.Testbed.sim (fun () ->
          for i = 0 to per_vf - 1 do
            Sim.delay (Rng.exponential rng ~mean:1200.0);
            match
              Vf.submit f ~queue:(i mod 2) ~bytes_:1500 ~deliver:(fun c ->
                  let key = (c.Vf.c_vf, c.Vf.c_queue, c.Vf.c_seq) in
                  if Hashtbl.mem got key then incr dups else Hashtbl.replace got key ())
            with
            | `Submitted seq -> Hashtbl.replace submitted (v, i mod 2, seq) ()
            | `Rejected -> incr rejected
          done))
    handles;
  let reassign_errors = ref 0 in
  Sim.spawn tb.Testbed.sim (fun () ->
      for r = 1 to rounds do
        Sim.delay 15_000.0;
        let f = handles.(r mod vfs) in
        match Vf.reassign f ~owner:(Printf.sprintf "tenant%d_r%d" (r mod vfs) r) with
        | Ok _ -> ()
        | Error _ -> incr reassign_errors
      done);
  Testbed.run tb;
  let blackouts = Vf.blackouts dev in
  let n_black = List.length blackouts in
  let sorted = Array.of_list (List.sort compare blackouts) in
  let sum = List.fold_left ( +. ) 0.0 blackouts in
  let avg = if n_black > 0 then sum /. float_of_int n_black else 0.0 in
  let lost =
    Hashtbl.fold (fun k () acc -> if Hashtbl.mem got k then acc else acc + 1) submitted 0
  in
  let conservation =
    match Vf.check_conservation dev with Ok () -> "ok" | Error e -> e
  in
  let total_submitted = Hashtbl.length submitted in
  {
    id = "vf_reassign";
    title = "VF hot-reassignment: blackout distribution under load";
    header = [ "check"; "paper"; "measured"; "band" ];
    rows =
      [
        Report.check
          ~paper:(string_of_int rounds)
          ~measured:(string_of_int (Vf.reassignments dev))
          ~ok:(Vf.reassignments dev = rounds - !reassign_errors)
          [ "reassignments completed" ];
        Report.check ~paper:"finite"
          ~measured:
            (Printf.sprintf "min %s avg %s p99 %s max %s us"
               (Report.f2 (percentile_of sorted 0.0 /. 1e3))
               (Report.f2 (avg /. 1e3))
               (Report.f2 (percentile_of sorted 0.99 /. 1e3))
               (Report.f2 (percentile_of sorted 1.0 /. 1e3)))
          ~ok:(n_black = Vf.reassignments dev && List.for_all Float.is_finite blackouts)
          [ "blackout window" ];
        Report.check ~paper:"0"
          ~measured:(string_of_int lost)
          ~ok:(lost = 0)
          [ "completions lost across swaps" ];
        Report.check ~paper:"0"
          ~measured:(string_of_int !dups)
          ~ok:(!dups = 0)
          [ "completions duplicated" ];
        Report.check ~paper:"ok" ~measured:conservation ~ok:(conservation = "ok")
          [ "device conservation" ];
      ];
    notes =
      [
        Printf.sprintf "%d VFs, %d reassignment rounds; %d descriptors accepted, %d rejected \
                        during blackouts (visible, not lost)"
          vfs rounds total_submitted !rejected;
        "Rejections during a drain are the SVFF blackout made visible: the submitter sees \
         `Rejected instead of silent loss.";
      ];
  }

(* The paper's Fig. 9/10 co-resident pairs, re-run per datapath: the
   shadow-vring poll loop against direct assignment, bm and vm. *)
let run_vf_ablation ~scenario:_ ~policy:_ ~fleet:_ ~vf ~faults ~trace ~metrics ~topo:_ ~shards ~quick ~seed =
  let datapaths =
    match vf.vf_datapath with Some d -> [ d ] | None -> Vf.all_datapaths
  in
  let vfs = Option.value vf.vf_count ~default:8 in
  let duration = if quick then Simtime.ms 30.0 else Simtime.ms 300.0 in
  let pings = if quick then 300 else 1500 in
  let bm_pair dp tb =
    let server = Testbed.bm_server ~vfs tb in
    let prov name =
      match Bm_hypervisor.provision server ~name ~datapath:dp () with
      | Ok i -> i
      | Error e -> failwith e
    in
    (prov "bm0", prov "bm1")
  in
  let vm_pair dp tb =
    let host = Testbed.vm_host ~vfs tb in
    let mk name =
      Kvm.create_vm host { (Kvm.default_config ~name) with Kvm.vcpus = 16; datapath = dp }
    in
    (mk "vm0", mk "vm1")
  in
  let cells = List.concat_map (fun dp -> [ (`Bm, dp); (`Vm, dp) ]) datapaths in
  let run_cell (sub, dp) =
    let pair tb = match sub with `Bm -> bm_pair dp tb | `Vm -> vm_pair dp tb in
    let tb1 = Testbed.make ~seed ?trace ?metrics ?faults () in
    let a, b = pair tb1 in
    let pps = Netperf.udp_pps tb1.Testbed.sim ~src:a ~dst:b ~senders:2 ~batch:32 ~duration () in
    let tb2 = Testbed.make ~seed ?trace ?metrics ?faults () in
    let a2, b2 = pair tb2 in
    let lat = Sockperf.ping_pong tb2.Testbed.sim ~a:a2 ~b:b2 ~path:Sockperf.Kernel ~count:pings () in
    [
      (match sub with `Bm -> "bm-guest" | `Vm -> "vm-guest");
      Vf.datapath_name dp;
      Report.si pps.Netperf.received_pps;
      Report.si pps.Netperf.jitter_pps;
      string_of_int pps.Netperf.dropped;
      Report.f2 lat.Sockperf.avg_us;
      Report.f2 lat.Sockperf.p99_us;
    ]
  in
  (* Each cell builds two private testbeds; [--shards] fans the cells
     out and the input-order join keeps the scorecard byte-identical. *)
  let rows = Parallel.map ~jobs:shards run_cell cells in
  {
    id = "vf_ablation";
    title = "Datapath ablation: shadow-vring vs passthrough vs VF-sliced";
    header = [ "guest"; "datapath"; "UDP PPS"; "jitter"; "dropped"; "ping avg us"; "ping p99 us" ];
    rows;
    notes =
      [
        "Workloads: netperf UDP PPS and sockperf kernel-path latency between co-resident \
         guests at Table-3 limits (the Fig. 9/10 pairs).";
        "vring crosses the poll loop; passthrough pins a whole device; vf slices one shared \
         device with weighted DMA arbitration.";
      ];
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "table1"; title = "Service comparison"; paper_ref = "Table 1"; run = run_table1 };
    { id = "table2"; title = "Fleet VM-exit survey"; paper_ref = "Table 2"; run = run_table2 };
    { id = "fig1"; title = "VM preemption percentiles"; paper_ref = "Fig. 1"; run = run_fig1 };
    { id = "table3"; title = "Instance catalogue"; paper_ref = "Table 3"; run = run_table3 };
    { id = "fig7"; title = "SPEC CINT2006"; paper_ref = "Fig. 7"; run = run_fig7 };
    { id = "fig8"; title = "STREAM bandwidth"; paper_ref = "Fig. 8"; run = run_fig8 };
    { id = "fig9"; title = "UDP PPS"; paper_ref = "Fig. 9"; run = run_fig9 };
    { id = "fig10"; title = "UDP/ping latency"; paper_ref = "Fig. 10"; run = run_fig10 };
    { id = "fig11"; title = "Storage latency"; paper_ref = "Fig. 11"; run = run_fig11 };
    { id = "fig12"; title = "NGINX"; paper_ref = "Fig. 12"; run = run_fig12 };
    { id = "fig13"; title = "MariaDB read-only"; paper_ref = "Fig. 13"; run = run_fig13 };
    { id = "fig14"; title = "MariaDB writes"; paper_ref = "Fig. 14"; run = run_fig14 };
    { id = "fig15"; title = "Redis vs clients"; paper_ref = "Fig. 15"; run = run_fig15 };
    { id = "fig16"; title = "Redis vs value size"; paper_ref = "Fig. 16"; run = run_fig16 };
    { id = "sec2_3"; title = "Nested virtualization"; paper_ref = "S2.3"; run = run_sec2_3 };
    { id = "sec3_5"; title = "Cost efficiency"; paper_ref = "S3.5"; run = run_sec3_5 };
    { id = "sec4_3net"; title = "TCP + unrestricted PPS"; paper_ref = "S4.3"; run = run_sec4_3net };
    { id = "sec4_3blk"; title = "Unrestricted local SSD"; paper_ref = "S4.3"; run = run_sec4_3blk };
    { id = "sec6"; title = "ASIC ablation"; paper_ref = "S6"; run = run_sec6 };
    { id = "ablation_reg"; title = "Register-hop ablation"; paper_ref = "design"; run = run_ablation_reg };
    { id = "ablation_dma"; title = "DMA sizing ablation"; paper_ref = "design"; run = run_ablation_dma };
    { id = "ablation_batch"; title = "Burst-size ablation"; paper_ref = "design"; run = run_ablation_batch };
    { id = "ablation_offload"; title = "Flow-offload ablation"; paper_ref = "S6"; run = run_ablation_offload };
    { id = "availability"; title = "Goodput under faults"; paper_ref = "robustness"; run = run_availability };
    { id = "overload"; title = "Overload control"; paper_ref = "robustness"; run = run_overload };
    { id = "evacuation"; title = "Server-failure evacuation"; paper_ref = "S3.1"; run = run_evacuation };
    { id = "xhost_rr"; title = "Cross-host TCP_RR"; paper_ref = "S2/S5 fleet"; run = run_xhost_rr };
    { id = "xhost_stream"; title = "Cross-host TCP throughput"; paper_ref = "S2/S5 fleet"; run = run_xhost_stream };
    { id = "xhost_migrate"; title = "Migration over the fabric"; paper_ref = "S6 + fleet"; run = run_xhost_migrate };
    { id = "fleet_scale"; title = "Live fleet at scale"; paper_ref = "S2/S3 fleet"; run = run_fleet_scale };
    { id = "game_day"; title = "Game-day composite scenario"; paper_ref = "robustness"; run = run_game_day };
    { id = "policy_race"; title = "Degradation-policy race"; paper_ref = "robustness"; run = run_policy_race };
    { id = "vf_scale"; title = "VF scale sweep"; paper_ref = "S5 SR-IOV"; run = run_vf_scale };
    { id = "vf_reassign"; title = "VF hot-reassignment"; paper_ref = "S5 SR-IOV"; run = run_vf_reassign };
    { id = "vf_ablation"; title = "Datapath ablation"; paper_ref = "S5 SR-IOV"; run = run_vf_ablation };
  ]

let find id = List.find_opt (fun s -> s.id = id) all
let ids () = List.map (fun s -> s.id) all

(* Trace/metrics sinks are single mutable buffers shared by every cell;
   recording from several domains would race, so their presence forces a
   sequential sweep. Cells themselves share nothing: each builds its own
   simulator, RNG and testbed from the seed. *)
let effective_jobs ~trace ~metrics jobs =
  if trace <> None || metrics <> None then 1 else max 1 jobs

(* Same reasoning one level down: intra-run sharding replays callbacks
   that feed the shared sinks, so trace/metrics force a sequential run
   inside each experiment too. Output is byte-identical either way —
   sharding only changes which domain executes what. *)
let effective_shards ~trace ~metrics shards =
  if trace <> None || metrics <> None then 1 else max 1 shards

let run_one ?(quick = false) ?(seed = 2020) ?(fleet = default_fleet) ?(vf = default_vf) ?scenario
    ?policy ?faults ?trace ?metrics ?topo ?(shards = 1) id =
  let shards = effective_shards ~trace ~metrics shards in
  match find id with
  | None -> Error (Printf.sprintf "unknown experiment %S (try: %s)" id (String.concat ", " (ids ())))
  | Some spec ->
    Ok (spec.run ~scenario ~policy ~fleet ~vf ~faults ~trace ~metrics ~topo ~shards ~quick ~seed)

let run_many ?(quick = false) ?(seed = 2020) ?(fleet = default_fleet) ?(vf = default_vf) ?scenario
    ?policy ?faults ?trace ?metrics ?topo ?(jobs = 1) ?(shards = 1) targets =
  let specs =
    List.map
      (fun id ->
        match find id with
        | Some spec -> Ok spec
        | None ->
          Error
            (Printf.sprintf "unknown experiment %S (try: %s)" id (String.concat ", " (ids ()))))
      targets
  in
  let jobs = effective_jobs ~trace ~metrics jobs in
  let shards = effective_shards ~trace ~metrics shards in
  Parallel.map ~jobs
    (fun spec ->
      match spec with
      | Error _ as e -> e
      | Ok spec ->
        Ok (spec.run ~scenario ~policy ~fleet ~vf ~faults ~trace ~metrics ~topo ~shards ~quick ~seed))
    specs
  |> List.map2 (fun id r -> (id, r)) targets

let run_all ?(quick = false) ?(seed = 2020) ?(fleet = default_fleet) ?(vf = default_vf) ?scenario
    ?policy ?faults ?trace ?metrics ?topo ?(jobs = 1) ?(shards = 1) () =
  let jobs = effective_jobs ~trace ~metrics jobs in
  let shards = effective_shards ~trace ~metrics shards in
  Parallel.map ~jobs
    (fun spec -> spec.run ~scenario ~policy ~fleet ~vf ~faults ~trace ~metrics ~topo ~shards ~quick ~seed)
    all

let print_outcome (o : outcome) =
  print_endline "";
  Report.print ~title:o.title ~header:o.header o.rows;
  List.iter (fun n -> print_endline ("  note: " ^ n)) o.notes
