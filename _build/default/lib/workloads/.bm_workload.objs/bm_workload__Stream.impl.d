lib/workloads/stream.ml: Bm_engine Bm_guest Float Instance List Sim
