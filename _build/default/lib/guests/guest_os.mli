(** Guest kernel cost model.

    Both bm-guests and vm-guests run the same image and the same kernel
    (§4.2), so the stack costs below apply to both; the substrates differ
    only in what happens underneath the virtio drivers. Values are
    calibrated for the evaluation kernel (3.10-era CentOS 7) on the Xeon
    E5-2682 v4. *)

type t = {
  syscall_ns : float;  (** user/kernel crossing *)
  udp_tx_ns : float;  (** per-packet UDP send path (sendto → driver) *)
  udp_rx_ns : float;  (** per-packet UDP receive path (softirq → recv) *)
  tcp_tx_ns : float;
  tcp_rx_ns : float;
  irq_entry_ns : float;  (** interrupt handler entry/exit *)
  blk_submit_ns : float;  (** block layer submit path *)
  blk_complete_ns : float;
  dpdk_tx_ns : float;  (** kernel-bypass per-packet cost (§4.3's DPDK tool) *)
  dpdk_rx_ns : float;
}

val default : t
(** The evaluation kernel: CentOS 7's 3.10.0-514.26.2.el7 (§4.2). *)

val centos7_3_10 : t
val ubuntu18_4_19 : t
val modern_5_4 : t

val catalogue : (string * t) list
(** Kernel-version → cost profile. *)

val for_kernel : string -> t option


val net_tx_ns : t -> kind:Bm_virtio.Packet.protocol -> count:int -> float
(** Stack cost of transmitting a burst. *)

val net_rx_ns : t -> kind:Bm_virtio.Packet.protocol -> count:int -> float

val dpdk_tx_ns_of : t -> count:int -> float
val dpdk_rx_ns_of : t -> count:int -> float
