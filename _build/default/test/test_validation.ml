(* Simulator validation against closed-form queueing theory: the engine
   that produces every reported number must reproduce M/M/1, M/M/c and
   M/G/1 results when driven as those queues. *)

open Bm_engine

let check_bool = Alcotest.(check bool)

let within ?(tol = 0.06) expected actual =
  Float.abs (actual -. expected) /. expected <= tol

(* Simulate a queue: Poisson arrivals at [lambda]/s into a [servers]-wide
   station; service times drawn by [draw_service] (seconds). Returns
   (mean sojourn s, mean wait s, mean number-in-system). *)
let simulate_queue ~seed ~lambda ~servers ~draw_service ~customers =
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let arrivals = Rng.split rng in
  let services = Rng.split rng in
  let station = Sim.Resource.create ~capacity:servers in
  let sojourn = Stats.Summary.create () in
  let wait = Stats.Summary.create () in
  let area = ref 0.0 in
  let in_system = ref 0 in
  let last_change = ref 0.0 in
  let record delta =
    let now = Sim.now sim in
    area := !area +. (float_of_int !in_system *. (now -. !last_change));
    last_change := now;
    in_system := !in_system + delta
  in
  Sim.spawn sim (fun () ->
      for _ = 1 to customers do
        Sim.delay (Rng.exponential arrivals ~mean:(1e9 /. lambda));
        Sim.fork (fun () ->
            record 1;
            let t0 = Sim.clock () in
            Sim.Resource.acquire station;
            Stats.Summary.add wait (Sim.clock () -. t0);
            Sim.delay (draw_service services *. 1e9);
            Sim.Resource.release station;
            record (-1);
            Stats.Summary.add sojourn (Sim.clock () -. t0))
      done);
  Sim.run sim;
  let total = Sim.now sim in
  ( Stats.Summary.mean sojourn /. 1e9,
    Stats.Summary.mean wait /. 1e9,
    !area /. total )

let test_mm1_matches_theory () =
  let lambda = 800.0 and mu = 1000.0 in
  let w_theory = Queueing.mm1_mean_sojourn ~lambda ~mu in
  let wq_theory = Queueing.mm1_mean_wait ~lambda ~mu in
  let l_theory = Queueing.mm1_mean_queue_length ~lambda ~mu in
  let w, wq, l =
    simulate_queue ~seed:101 ~lambda ~servers:1
      ~draw_service:(fun r -> Rng.exponential r ~mean:(1.0 /. mu))
      ~customers:60_000
  in
  check_bool "W matches 1/(mu-lambda)" true (within w_theory w);
  check_bool "Wq matches rho/(mu-lambda)" true (within wq_theory wq);
  check_bool "L matches rho/(1-rho)" true (within ~tol:0.08 l_theory l);
  (* Little's law on the simulated values themselves. *)
  check_bool "L = lambda W (simulated)" true (within ~tol:0.08 (lambda *. w) l)

let test_mmc_matches_theory () =
  let lambda = 2_500.0 and mu = 1000.0 and c = 4 in
  let wq_theory = Queueing.mmc_mean_wait ~lambda ~mu ~c in
  let _, wq, _ =
    simulate_queue ~seed:102 ~lambda ~servers:c
      ~draw_service:(fun r -> Rng.exponential r ~mean:(1.0 /. mu))
      ~customers:60_000
  in
  check_bool "M/M/4 Wq matches Erlang C" true (within ~tol:0.10 wq_theory wq)

let test_mg1_deterministic_service () =
  (* Deterministic service (M/D/1): P-K with zero variance — half the
     M/M/1 wait. *)
  let lambda = 700.0 and mean_service = 1.0 /. 1000.0 in
  let wq_theory = Queueing.mg1_mean_wait ~lambda ~mean_service ~service_variance:0.0 in
  let _, wq, _ =
    simulate_queue ~seed:103 ~lambda ~servers:1
      ~draw_service:(fun _ -> mean_service)
      ~customers:60_000
  in
  check_bool "M/D/1 Wq matches P-K" true (within ~tol:0.08 wq_theory wq);
  let mm1 = Queueing.mm1_mean_wait ~lambda ~mu:(1.0 /. mean_service) in
  check_bool "deterministic halves the wait" true (within ~tol:0.02 (mm1 /. 2.0) wq_theory)

let test_formulas_sanity () =
  (* Erlang C degenerates to rho for c = 1. *)
  let lambda = 600.0 and mu = 1000.0 in
  check_bool "ErlangC(c=1) = rho" true
    (within ~tol:1e-9 (lambda /. mu) (Queueing.mmc_erlang_c ~lambda ~mu ~c:1));
  (* More servers, less waiting. *)
  check_bool "monotone in c" true
    (Queueing.mmc_mean_wait ~lambda:2500.0 ~mu:1000.0 ~c:8
    < Queueing.mmc_mean_wait ~lambda:2500.0 ~mu:1000.0 ~c:4);
  Alcotest.check_raises "unstable rejected" (Invalid_argument "Queueing: unstable (rho >= 1)")
    (fun () -> ignore (Queueing.mm1_mean_sojourn ~lambda:2.0 ~mu:1.0))

let suites =
  [
    ( "engine.validation",
      [
        Alcotest.test_case "M/M/1 vs theory" `Quick test_mm1_matches_theory;
        Alcotest.test_case "M/M/4 vs Erlang C" `Quick test_mmc_matches_theory;
        Alcotest.test_case "M/D/1 vs P-K" `Quick test_mg1_deterministic_service;
        Alcotest.test_case "formula sanity" `Quick test_formulas_sanity;
      ] );
  ]
