(** Bounded domain pool for independent work items.

    Experiment cells are pure functions of their seeds: each builds its
    own [Sim.t], [Rng.t] and testbed, shares no mutable state with its
    siblings, and returns a printable outcome. That makes a sweep
    embarrassingly parallel — the only requirement for determinism is
    that results are joined back in input order, which {!map}
    guarantees. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the number of cores the
    runtime believes it can use. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains (including the calling one). Results are returned in input
    order regardless of completion order, so output is identical for
    any [jobs]. If any application raises, the first raised exception
    (in input order) is re-raised after all domains join. [jobs <= 1]
    runs sequentially on the calling domain with no domain spawned. *)
