open Bm_engine
open Bm_virtio

type t = {
  sim : Sim.t;
  per_packet_ns : float;
  queue : Sim.Resource.resource;
  deliver : Packet.t -> unit;
  mutable sent : int;
}

let create sim ?(per_packet_ns = 3000.0) ~deliver () =
  { sim; per_packet_ns; queue = Sim.Resource.create ~capacity:1; deliver; sent = 0 }

let send t pkt =
  Sim.Resource.with_resource t.queue (fun () ->
      Sim.delay (t.per_packet_ns *. float_of_int pkt.Packet.count));
  t.sent <- t.sent + pkt.Packet.count;
  t.deliver pkt

let sent t = t.sent
let max_pps t = 1e9 /. t.per_packet_ns
