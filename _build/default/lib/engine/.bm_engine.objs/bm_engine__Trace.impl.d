lib/engine/trace.ml: Array Buffer List Printf
