lib/engine/metrics.mli: Stats
