lib/hw/cpu_spec.ml: Format List
