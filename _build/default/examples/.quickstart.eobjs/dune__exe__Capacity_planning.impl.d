examples/capacity_planning.ml: Bm_cloud Bm_engine Bmhive Control_plane Image Printf Rng
