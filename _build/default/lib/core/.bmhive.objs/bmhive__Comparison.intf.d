lib/core/comparison.mli:
