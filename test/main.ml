let () =
  Alcotest.run "bmhive"
    (List.concat [ Test_engine.suites; Test_shard.suites; Test_validation.suites; Test_hw.suites; Test_virtio.suites; Test_packed_ring.suites; Test_iobond.suites; Test_cloud.suites; Test_fabric.suites; Test_hypervisor.suites; Test_workloads.suites; Test_core.suites; Test_integration.suites; Test_extensions.suites; Test_observability.suites; Test_faults.suites; Test_scheduler.suites; Test_scenario.suites; Test_policy.suites; Test_vf.suites ])
