lib/workloads/rpc.mli: Bm_engine Bm_guest Bm_virtio
