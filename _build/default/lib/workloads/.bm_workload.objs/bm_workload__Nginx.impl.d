lib/workloads/nginx.ml: Bm_engine Bm_guest Float Instance Rpc Sim Simtime Stats
