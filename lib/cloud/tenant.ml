open Bm_engine

type quota = { max_guests : int; max_vcpus : int }

let unlimited = { max_guests = max_int; max_vcpus = max_int }

type t = {
  name : string;
  quota : quota;
  metrics : Metrics.t option;
  mutable guests : int;
  mutable vcpus : int;
  mutable rejections : int;
  mutable guest_ns : float;
  mutable bytes : float;
  mutable ios : float;
}

let create ?(obs = Obs.none) ~name quota =
  if quota.max_guests < 0 || quota.max_vcpus < 0 then
    invalid_arg "Tenant.create: negative quota";
  {
    name;
    quota;
    metrics = Obs.metrics obs;
    guests = 0;
    vcpus = 0;
    rejections = 0;
    guest_ns = 0.0;
    bytes = 0.0;
    ios = 0.0;
  }

let name t = t.name
let quota t = t.quota

let admit t ~vcpus =
  if vcpus <= 0 then invalid_arg "Tenant.admit: vcpus must be positive";
  if t.guests >= t.quota.max_guests then begin
    t.rejections <- t.rejections + 1;
    Metrics.incr_opt t.metrics ("cloud.tenant." ^ t.name ^ ".rejected");
    Error (Printf.sprintf "tenant %s at guest quota (%d)" t.name t.quota.max_guests)
  end
  else if t.vcpus + vcpus > t.quota.max_vcpus then begin
    t.rejections <- t.rejections + 1;
    Metrics.incr_opt t.metrics ("cloud.tenant." ^ t.name ^ ".rejected");
    Error (Printf.sprintf "tenant %s at vCPU quota (%d)" t.name t.quota.max_vcpus)
  end
  else begin
    t.guests <- t.guests + 1;
    t.vcpus <- t.vcpus + vcpus;
    Ok ()
  end

let release t ~vcpus =
  if t.guests <= 0 || t.vcpus < vcpus then
    invalid_arg ("Tenant.release: " ^ t.name ^ " released more than it admitted");
  t.guests <- t.guests - 1;
  t.vcpus <- t.vcpus - vcpus

let guests t = t.guests
let vcpus t = t.vcpus
let rejections t = t.rejections

let meter t ?(guest_ns = 0.0) ?(bytes = 0.0) ?(ios = 0.0) () =
  t.guest_ns <- t.guest_ns +. guest_ns;
  t.bytes <- t.bytes +. bytes;
  t.ios <- t.ios +. ios;
  match t.metrics with
  | None -> ()
  | Some m ->
    if guest_ns > 0.0 then Metrics.incr m ~by:(guest_ns /. 1e9) ("cloud.tenant." ^ t.name ^ ".guest_s");
    if bytes > 0.0 then Metrics.incr m ~by:bytes ("cloud.tenant." ^ t.name ^ ".bytes");
    if ios > 0.0 then Metrics.incr m ~by:ios ("cloud.tenant." ^ t.name ^ ".ios")

let guest_seconds t = t.guest_ns /. 1e9
let bytes t = t.bytes
let ios t = t.ios

let row_header = [ "tenant"; "guests"; "vcpus"; "guest-s"; "bytes"; "ios"; "rejected" ]

let row t =
  [
    t.name;
    string_of_int t.guests;
    string_of_int t.vcpus;
    Printf.sprintf "%.2f" (guest_seconds t);
    Printf.sprintf "%.0f" t.bytes;
    Printf.sprintf "%.0f" t.ios;
    string_of_int t.rejections;
  ]
