examples/trading.mli:
