open Bm_engine
open Bm_hw

type t = {
  sim : Sim.t;
  base_link : Pcie.t;
  mutable heads : int array;
  mutable tails : int array;
  mutable rings : int;
  mutable pci_accesses : int;
  mutable tail_writes : int;
  obs : Obs.t;
}

let create ?(obs = Obs.none) sim ~base_link =
  {
    sim;
    base_link;
    heads = Array.make 8 0;
    tails = Array.make 8 0;
    rings = 0;
    pci_accesses = 0;
    tail_writes = 0;
    obs;
  }

let ring_count t = t.rings

let grow arr n = if n <= Array.length arr then arr else Array.append arr (Array.make n 0)

let alloc_ring t =
  let i = t.rings in
  t.rings <- t.rings + 1;
  t.heads <- grow t.heads t.rings;
  t.tails <- grow t.tails t.rings;
  i

let check t i = if i < 0 || i >= t.rings then invalid_arg "Mailbox: bad ring index"

let head t i =
  check t i;
  t.heads.(i)

let set_head t i v =
  check t i;
  t.heads.(i) <- v

let tail t i =
  check t i;
  t.tails.(i)

let write_tail t i v =
  check t i;
  Trace.instant_opt (Obs.trace t.obs) ~track:"iobond.mailbox" "tail_write" ~now:(Sim.now t.sim);
  Metrics.incr_opt (Obs.metrics t.obs) "iobond.mailbox.tail_writes";
  Pcie.register_access t.base_link;
  t.tails.(i) <- v;
  t.tail_writes <- t.tail_writes + 1

let notify_pci_access t =
  Metrics.incr_opt (Obs.metrics t.obs) "iobond.mailbox.pci_accesses";
  t.pci_accesses <- t.pci_accesses + 1

let pci_access_count t = t.pci_accesses
let tail_writes t = t.tail_writes
