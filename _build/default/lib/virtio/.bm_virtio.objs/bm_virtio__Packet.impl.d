lib/virtio/packet.ml: Format
