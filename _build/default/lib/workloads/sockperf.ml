open Bm_engine
open Bm_virtio
open Bm_guest

type result = { samples : int; avg_us : float; p50_us : float; p99_us : float; p999_us : float }

type path = Kernel | Dpdk | Icmp

let ping_pong sim ~a ~b ~path ?(count = 2000) ?(payload_bytes = 64) () =
  let protocol = match path with Icmp -> Packet.Icmp | Kernel | Dpdk -> Packet.Udp in
  let poll = path = Dpdk in
  a.Instance.set_poll_mode poll;
  b.Instance.set_poll_mode poll;
  let send (inst : Instance.t) pkt =
    match path with
    | Dpdk -> inst.Instance.send_dpdk pkt
    | Kernel | Icmp -> inst.Instance.send pkt
  in
  let size = payload_bytes + Packet.udp_header_bytes in
  (* The responder echoes every ping straight back. *)
  b.Instance.set_rx_handler (fun pkt ->
      ignore
        (send b
           (Packet.make ~id:pkt.Packet.id ~src:b.Instance.endpoint ~dst:pkt.Packet.src ~size
              ~protocol ~sent_at:pkt.Packet.sent_at ())));
  let hist = Stats.Histogram.create ~lo:100.0 ~hi:1e9 ~precision:0.005 () in
  let pong = ref None in
  a.Instance.set_rx_handler (fun pkt ->
      match !pong with
      | Some ivar ->
        pong := None;
        Sim.Ivar.fill ivar pkt
      | None -> ());
  Sim.spawn sim (fun () ->
      for i = 1 to count do
        let ivar = Sim.Ivar.create () in
        pong := Some ivar;
        let t0 = Sim.clock () in
        ignore
          (send a
             (Packet.make ~id:i ~src:a.Instance.endpoint ~dst:b.Instance.endpoint ~size ~protocol
                ~sent_at:t0 ()));
        ignore (Sim.Ivar.read ivar : Packet.t);
        let rtt = Sim.clock () -. t0 in
        Stats.Histogram.add hist (rtt /. 2.0)
      done);
  Sim.run sim;
  {
    samples = Stats.Histogram.count hist;
    avg_us = Stats.Histogram.mean hist /. 1e3;
    p50_us = Stats.Histogram.percentile hist 50.0 /. 1e3;
    p99_us = Stats.Histogram.percentile hist 99.0 /. 1e3;
    p999_us = Stats.Histogram.percentile hist 99.9 /. 1e3;
  }
