test/test_core.ml: Alcotest Astring Bm_cloud Bm_engine Bm_hw Bmhive Comparison Cost_model Experiments Float Instances List Report Result String
