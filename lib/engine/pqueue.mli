(** Minimum priority queue on [(time, sequence)] keys.

    An array-backed binary heap in structure-of-arrays layout: times in
    a flat unboxed float array, sequence numbers in an int array, and
    payloads in a third — so {!add} and {!pop_min} allocate nothing.
    Ties on [time] are broken by an insertion sequence number supplied
    by the caller, which makes event ordering — and therefore whole
    simulations — deterministic.

    Slots beyond the live size are nulled out, so popped values (event
    closures, i.e. whole fibers) never outlive their pop. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array capacity (exposed for tests and benchmarks). *)

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** [add q ~time ~seq v] inserts [v] with priority [(time, seq)].
    Allocation-free except when the backing arrays double. *)

(** {2 Zero-allocation accessors — the simulator's inner loop}

    All three are undefined on an empty queue; check {!length} first. *)

val min_time : 'a t -> float
(** Time of the minimum element. Small enough to inline cross-module,
    so the float stays unboxed at a comparison use site. *)

val min_seq : 'a t -> int
(** Sequence number of the minimum element. *)

val min_le : 'a t -> time:float -> seq:int -> bool
(** [min_le q ~time ~seq] is true iff the minimum key is [<= (time,
    seq)] lexicographically — the run-loop's pop guard, without
    materializing an option or boxing a float. *)

val pop_min : 'a t -> 'a
(** Remove the minimum element and return its payload alone (read
    {!min_time} first if the caller needs the timestamp). *)

(** {2 Boxed convenience API} *)

val peek : 'a t -> (float * int * 'a) option
(** [peek q] is the minimum element without removing it. *)

val pop : 'a t -> (float * int * 'a) option
(** [pop q] removes and returns the minimum element. *)

val pop_if_le : 'a t -> time:float -> seq:int -> (float * int * 'a) option
(** [pop_if_le q ~time ~seq] removes and returns the minimum element iff
    its key is [<= (time, seq)]. [None] otherwise. *)

val clear : 'a t -> unit
(** Drop every element. Keeps the backing arrays' capacity (a cleared
    simulation agenda is usually refilled to the same size) but releases
    every held reference. *)
