lib/engine/sim.ml: Effect List Pqueue Queue
