(** IO-Bond's internal DMA engine.

    The engine copies buffers between the compute-board memory and the
    bm-hypervisor's shadow rings, crossing one PCIe link on each side.
    Its internal throughput is ~50 Gbit/s (§3.4.3), so the end-to-end
    copy rate of one flow is min(link-in, engine, link-out); we model the
    engine as its own serialised stage with cut-through chunking so
    concurrent flows share it fairly. *)

type t

val create :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  ?gbit_s:float ->
  ?setup_ns:float ->
  unit ->
  t
(** Default [gbit_s] 50 (paper), [setup_ns] 300 (descriptor fetch and
    doorbell processing per copy). With [obs], copies emit spans on the
    ["hw.dma"] track and feed the ["hw.dma.copy_ns"] latency histogram
    and ["hw.dma.bytes"] counter. With [fault], a [Dma_stall] window
    holds new copies at the doorbell until the engine resumes
    (["hw.dma.stalls"]). *)

val gbit_s : t -> float

val copy : t -> src:Pcie.t -> dst:Pcie.t -> bytes_:int -> unit
(** [copy t ~src ~dst ~bytes_] moves a buffer across [src], through the
    engine, and across [dst]; blocks until the last byte lands. *)

val copies : t -> int
val bytes_copied : t -> float
