lib/workloads/fio.mli: Bm_engine Bm_guest
