(** Redis + redis-benchmark model (Fig. 15/16).

    "we … configured the server with 10M random key-value entries. In
    each test, we queried the server 1M times to get/set the data."
    Redis is single-threaded: every command serialises through one event
    loop doing hash lookups over a large, randomly-accessed heap — the
    worst case for EPT walks — so the vm-guest loses 20–40%% and shows
    visibly less stable throughput (its single thread is the one being
    preempted and cache-disturbed). *)

type op = Get | Set

type result = {
  clients : int;
  value_bytes : int;
  rps : float;
  avg_us : float;
  p99_us : float;
  stability : float;  (** stddev / mean of per-20ms throughput samples *)
}

val serve :
  Bm_engine.Sim.t ->
  Bm_guest.Instance.t ->
  ?keys:int ->
  ?base_cpu_ns:float ->
  unit ->
  unit
(** Install the Redis service: [keys] (default 10M) sized heap,
    [base_cpu_ns] (default 5.5 µs) per command on the single thread. *)

val benchmark :
  Bm_engine.Sim.t ->
  client:Bm_guest.Instance.t ->
  server:Bm_guest.Instance.t ->
  ?clients:int ->
  ?value_bytes:int ->
  ?op:op ->
  requests:int ->
  unit ->
  result
(** redis-benchmark: [clients] concurrent connections (default 1000)
    issuing [requests] commands of [value_bytes] values (default 64). *)
