type link_params = { gbit_s : float; latency_ns : float; queue_capacity : int }

type t = {
  hosts : int;
  tors : int;
  spines : int;
  host_link : link_params;
  spine_link : link_params;
}

let check_link_params what { gbit_s; latency_ns; queue_capacity } =
  if not (gbit_s > 0.0) then invalid_arg (Printf.sprintf "Topology: %s gbit_s must be > 0" what);
  if not (latency_ns >= 0.0) then
    invalid_arg (Printf.sprintf "Topology: %s latency_ns must be >= 0" what);
  if queue_capacity < 1 then
    invalid_arg (Printf.sprintf "Topology: %s queue_capacity must be >= 1" what)

let clos ~hosts ~tors ~spines ?(host_gbit_s = 100.0) ?(spine_gbit_s = 100.0)
    ?(host_latency_ns = 1_000.0) ?(spine_latency_ns = 4_000.0) ?(queue_capacity = 64) () =
  if hosts < 1 then invalid_arg "Topology.clos: hosts must be >= 1";
  if tors < 1 then invalid_arg "Topology.clos: tors must be >= 1";
  if hosts < tors then invalid_arg "Topology.clos: need at least one host per ToR";
  if spines < 0 then invalid_arg "Topology.clos: spines must be >= 0";
  if spines = 0 && tors > 1 then
    invalid_arg "Topology.clos: a multi-ToR topology needs at least one spine";
  let host_link = { gbit_s = host_gbit_s; latency_ns = host_latency_ns; queue_capacity } in
  let spine_link = { gbit_s = spine_gbit_s; latency_ns = spine_latency_ns; queue_capacity } in
  check_link_params "host link" host_link;
  check_link_params "spine link" spine_link;
  { hosts; tors; spines; host_link; spine_link }

let two_host ?(gbit_s = 100.0) ?(latency_ns = 1_000.0) ?(queue_capacity = 64) () =
  clos ~hosts:2 ~tors:1 ~spines:0 ~host_gbit_s:gbit_s ~spine_gbit_s:gbit_s
    ~host_latency_ns:latency_ns ~spine_latency_ns:latency_ns ~queue_capacity ()

let for_hosts ?(hosts_per_tor = 32) ?spine_gbit_s ~hosts () =
  if hosts < 1 then invalid_arg "Topology.for_hosts: hosts must be >= 1";
  if hosts_per_tor < 1 then invalid_arg "Topology.for_hosts: hosts_per_tor must be >= 1";
  let tors = min hosts ((hosts + hosts_per_tor - 1) / hosts_per_tor) in
  let spines = if tors = 1 then 0 else max 2 ((tors + 3) / 4) in
  clos ~hosts ~tors ~spines ?spine_gbit_s ()

let tor_of t ~host =
  if host < 0 || host >= t.hosts then invalid_arg "Topology.tor_of: host out of range";
  host * t.tors / t.hosts

let parse_spec spec =
  if String.trim spec = "two_host" then Ok (two_host ())
  else begin
    let hosts = ref 2
    and tors = ref 1
    and spines = ref 0
    and host_gbit = ref 100.0
    and spine_gbit = ref 100.0
    and host_lat_us = ref 1.0
    and spine_lat_us = ref 4.0
    and queue = ref 64 in
    let spines_given = ref false in
    let parse_pair err pair =
      match err with
      | Some _ -> err
      | None -> (
        match String.index_opt pair '=' with
        | None -> Some (Printf.sprintf "expected key=value, got %S" pair)
        | Some i -> (
          let key = String.sub pair 0 i in
          let v = String.sub pair (i + 1) (String.length pair - i - 1) in
          let int_into r =
            match int_of_string_opt v with
            | Some n ->
              r := n;
              None
            | None -> Some (Printf.sprintf "%s expects an integer, got %S" key v)
          in
          let float_into r =
            match float_of_string_opt v with
            | Some f ->
              r := f;
              None
            | None -> Some (Printf.sprintf "%s expects a number, got %S" key v)
          in
          match key with
          | "hosts" -> int_into hosts
          | "tors" -> int_into tors
          | "spines" ->
            spines_given := true;
            int_into spines
          | "host_gbit" -> float_into host_gbit
          | "spine_gbit" -> float_into spine_gbit
          | "host_lat_us" -> float_into host_lat_us
          | "spine_lat_us" -> float_into spine_lat_us
          | "queue" -> int_into queue
          | _ ->
            Some
              (Printf.sprintf
                 "unknown topology key %S (expected hosts, tors, spines, host_gbit, spine_gbit, \
                  host_lat_us, spine_lat_us, queue)"
                 key)))
    in
    let err =
      List.fold_left parse_pair None
        (String.split_on_char ',' spec |> List.map String.trim
        |> List.filter (fun s -> s <> ""))
    in
    match err with
    | Some e -> Error e
    | None -> (
      (* A multi-ToR spec without an explicit spine count gets one spine
         per ToR, the non-blocking default. *)
      if (not !spines_given) && !tors > 1 then spines := !tors;
      try
        Ok
          (clos ~hosts:!hosts ~tors:!tors ~spines:!spines ~host_gbit_s:!host_gbit
             ~spine_gbit_s:!spine_gbit
             ~host_latency_ns:(!host_lat_us *. 1e3)
             ~spine_latency_ns:(!spine_lat_us *. 1e3)
             ~queue_capacity:!queue ())
      with Invalid_argument m -> Error m)
  end

let render t =
  Printf.sprintf
    "hosts=%d,tors=%d,spines=%d,host_gbit=%g,spine_gbit=%g,host_lat_us=%g,spine_lat_us=%g,queue=%d"
    t.hosts t.tors t.spines t.host_link.gbit_s t.spine_link.gbit_s
    (t.host_link.latency_ns /. 1e3)
    (t.spine_link.latency_ns /. 1e3)
    t.host_link.queue_capacity
