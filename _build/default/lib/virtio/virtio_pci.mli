(** Virtio-over-PCI transport: config space and device initialisation.

    Models the register interface a guest uses to discover, configure and
    drive a virtio device (§3.4.1: "The FPGA logic in IO-Bond emulates a
    PCI interface (i.e., PCI configure space, BAR0, BAR1, PCIe Cap, etc)
    for each virtio device"). Every register access invokes the
    transport's cost hook — for IO-Bond that is a 1.6 µs forwarded access
    (0.8 µs guest→FPGA plus 0.8 µs FPGA→mailbox, §3.4.3); for a vm-guest
    it is a trapped access handled by the vm-hypervisor.

    The {!probe} function performs the spec's initialisation sequence and
    reports how many register accesses it took, which the §6 experiment
    uses to quantify FPGA vs ASIC response time. *)

type register =
  | Vendor_id
  | Device_id
  | Device_features
  | Driver_features
  | Device_status
  | Queue_select
  | Queue_size
  | Queue_addr
  | Queue_notify
  | Isr_status
  | Config of int  (** device-specific config space, by offset *)

type kind = Net | Blk | Vga

type t

val create : kind:kind -> num_queues:int -> queue_size:int -> on_access:(unit -> unit) -> t
(** [on_access] is called once per register read/write — the transport
    charges its latency there. *)

val kind : t -> kind
val access_count : t -> int

val read : t -> register -> int
val write : t -> register -> int -> unit

val driver_ok : t -> bool
(** True once the driver completed initialisation ([DRIVER_OK] set). *)

val negotiated_features : t -> Feature.t

val probe : t -> driver_features:Feature.t -> (Feature.t * int * int, string) result
(** [probe t ~driver_features] runs the standard virtio initialisation
    dance (reset, ACKNOWLEDGE, DRIVER, feature negotiation, queue
    discovery, FEATURES_OK, DRIVER_OK). On success returns
    [(features, num_queues, queue_size)]. *)

val vendor_id_virtio : int
(** 0x1AF4, Red Hat / virtio. *)

val device_id : kind -> int
