lib/hypervisor/vmexit.mli: Bm_engine Format
