(** sockperf-3.5 / ping latency models (Fig. 10).

    64-byte UDP ping-pong through the default kernel stack, through a
    DPDK kernel-bypass path, and ICMP ping. Reports the one-way message
    latency distribution (sockperf convention: RTT/2). *)

type result = {
  samples : int;
  avg_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

type path = Kernel | Dpdk | Icmp

val ping_pong :
  Bm_engine.Sim.t ->
  a:Bm_guest.Instance.t ->
  b:Bm_guest.Instance.t ->
  path:path ->
  ?count:int ->
  ?payload_bytes:int ->
  unit ->
  result
(** [count] pings (default 2000) of [payload_bytes] (default 64). *)
