(** Catalogue of the processor SKUs that appear in the paper.

    The paper's compute boards ship Xeon E5/E3, Core i7 and Atom parts
    (§3.3); the vm-based servers use dual high-core-count Xeons (§3.5);
    the base server is a 16-core E5 (§3.3). Single-thread marks follow the
    CPU Mark data the paper cites [8]: Core i7-8086K ≈ 1.6× Xeon
    E5-2699 v4, Xeon E3-1240 v6 ≈ 1.31× Xeon E5-2682 v4 (§4.2). *)

type t = {
  model : string;
  base_ghz : float;  (** base clock, GHz *)
  turbo_ghz : float;  (** max single-core turbo, GHz *)
  cores : int;  (** physical cores per socket *)
  threads : int;  (** hardware threads per socket *)
  single_thread_mark : float;  (** relative single-thread performance, E5-2682 v4 = 1.0 *)
  l3_mb : float;
  mem_channels : int;
  mem_mt_s : int;  (** memory speed in MT/s *)
  tdp_w : float;
}

val xeon_e5_2682_v4 : t
(** The SKU used for all head-to-head experiments in §4. *)

val xeon_e5_2699_v4 : t
val xeon_e5_2650_v4 : t
(** 12-core part; a pair of these approximates the paper's dual
    24-core/48HT vm-based server when doubled — see {!Cost_model}. *)

val xeon_platinum_8163 : t
(** 24-core part: two sockets = the 96HT vm-based server of §3.5. *)

val xeon_e3_1240_v6 : t
val core_i7_8086k : t
val core_i7_8700 : t
val atom_c3558 : t
val base_server_e5 : t
(** The simplified 16-core base-board Xeon of a BM-Hive server (§3.3). *)

val all : t list

val find : string -> t option
(** Lookup by [model] name. *)

val peak_mem_bw_gb_s : t -> float
(** Theoretical per-socket memory bandwidth: channels × MT/s × 8 bytes. *)

val cycles_ns : t -> ghz:float -> float -> float
(** [cycles_ns spec ~ghz cycles] is the wall time in ns for [cycles]
    cycles at clock [ghz]. *)

val pp : Format.formatter -> t -> unit
