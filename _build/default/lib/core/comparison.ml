type service = Vm_based | Single_tenant_bm | Bm_hive

type properties = {
  service : service;
  shares_cpu_caches : bool;
  software_isolation_only : bool;
  tenant_controls_platform : bool;
  cpu_mem_virtualized : bool;
  io_paravirtualized : bool;
  guests_per_server : int;
  firmware_signed : bool;
}

let properties = function
  | Vm_based ->
    {
      service = Vm_based;
      shares_cpu_caches = true;
      software_isolation_only = true;
      tenant_controls_platform = false;
      cpu_mem_virtualized = true;
      io_paravirtualized = true;
      guests_per_server = 88 / 2 (* small VMs *);
      firmware_signed = true;
    }
  | Single_tenant_bm ->
    {
      service = Single_tenant_bm;
      shares_cpu_caches = false;
      software_isolation_only = false;
      tenant_controls_platform = true;
      cpu_mem_virtualized = false;
      io_paravirtualized = false;
      guests_per_server = 1;
      firmware_signed = false;
    }
  | Bm_hive ->
    {
      service = Bm_hive;
      shares_cpu_caches = false;
      software_isolation_only = false;
      tenant_controls_platform = false;
      cpu_mem_virtualized = false;
      io_paravirtualized = true;
      guests_per_server = 16;
      firmware_signed = true;
    }

let side_channel_exposed p = p.shares_cpu_caches

let provider_secure p = (not p.tenant_controls_platform) && p.firmware_signed

let service_name = function
  | Vm_based -> "VM-based cloud"
  | Single_tenant_bm -> "Single-tenant bare-metal"
  | Bm_hive -> "BM-Hive"

let security_cell p =
  if side_channel_exposed p then "side-channel/DoS exposure from resource sharing"
  else if not (provider_secure p) then "tenant has unfettered platform access"
  else "no shared uarch state; signed firmware"

let isolation_cell p =
  if p.software_isolation_only then "software-enforced, weakened by sharing"
  else if p.tenant_controls_platform then "strong but moot (tenant owns the box)"
  else "strong hardware isolation per compute board"

let performance_cell p =
  match (p.cpu_mem_virtualized, p.io_paravirtualized) with
  | true, _ -> "CPU/memory/I/O virtualization overhead"
  | false, true -> "native CPU+memory; paravirt I/O with minor overhead"
  | false, false -> "native"

let density_cell p =
  match p.guests_per_server with
  | 1 -> "one user per server (high cost)"
  | n when n >= 40 -> Printf.sprintf "very high (~%d via over-provisioning)" n
  | n -> Printf.sprintf "high (up to %d bm-guests per server)" n

let rows () =
  List.map
    (fun s ->
      let p = properties s in
      [ service_name s; security_cell p; isolation_cell p; performance_cell p; density_cell p ])
    [ Vm_based; Single_tenant_bm; Bm_hive ]
