examples/trading.ml: Bm_engine Bm_guest Bm_hw Bm_hyp Bm_workload Instance Printf Sim Stats Testbed
