lib/iobond/queue_bridge.mli: Bm_engine Bm_hw Bm_virtio Mailbox
