lib/cloud/vhost_user.mli:
