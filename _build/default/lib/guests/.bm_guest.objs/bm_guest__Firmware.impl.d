lib/guests/firmware.ml: Char String
