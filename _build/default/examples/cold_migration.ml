(* Interoperability & cold migration (§3.1, §3.2).

   "Interoperability requires that a bm-guest can be run in a VM as
   well. We call this feature cold migration." One image, one control
   plane, two substrates: the instance boots on a compute board, is
   stopped, re-placed on a virtualization server, and boots again from
   the same image — then migrates back.

     dune exec examples/cold_migration.exe *)

open Bm_engine
open Bm_cloud
open Bm_guest
open Bm_workload

let boot_on tb instance =
  let timing = ref None in
  Sim.spawn tb.Testbed.sim (fun () -> timing := Some (Boot.run instance ~image:Image.centos7 ()));
  Testbed.run tb;
  match !timing with
  | Some (Ok t) -> t
  | Some (Error e) -> failwith e
  | None -> failwith "boot did not finish"

let show tag (p : Control_plane.placement) =
  Printf.printf "%-18s server=%d substrate=%s threads=%d\n" tag p.Control_plane.server
    (match p.Control_plane.substrate with
    | Control_plane.Bare_metal -> "bare-metal"
    | Control_plane.Virtual -> "virtual")
    p.Control_plane.threads

let () =
  (* Fleet: one BM-Hive server, one virtualization server. *)
  let cp = Control_plane.create () in
  let _bm_id = Control_plane.add_server cp (Control_plane.Bm_server { boards = 8; board_threads = 32 }) in
  let _vm_id = Control_plane.add_server cp (Control_plane.Vm_server { sellable_threads = 88 }) in
  Printf.printf "fleet capacity: %d sellable HT\n\n" (Control_plane.sellable_threads cp);

  (* Place on bare metal first. *)
  (match Control_plane.place cp ~name:"app" ~vcpus:32 ~prefer:Control_plane.Bare_metal ~image:Image.centos7 () with
  | Ok p -> show "placed:" p
  | Error e -> failwith e);

  (* Boot as a bm-guest and measure. *)
  let tb = Testbed.make ~seed:21 () in
  let _, bm = Testbed.bm_guest tb in
  let bm_boot = boot_on tb bm in
  Printf.printf "bm-guest boot: %s (probe %d accesses via IO-Bond @1.6us)\n"
    (Simtime.to_string bm_boot.Boot.total_ns)
    bm_boot.Boot.probe_accesses;

  (* Cold-migrate to the virtualization substrate. *)
  (match Control_plane.cold_migrate cp ~name:"app" ~to_:Control_plane.Virtual with
  | Ok p -> show "migrated:" p
  | Error e -> failwith e);

  let tb2 = Testbed.make ~seed:21 () in
  let _, vm = Testbed.vm_guest tb2 in
  let vm_boot = boot_on tb2 vm in
  Printf.printf "vm-guest boot: %s (same image; probe %d accesses via trapped config @10us)\n"
    (Simtime.to_string vm_boot.Boot.total_ns)
    vm_boot.Boot.probe_accesses;

  (* And back to bare metal. *)
  (match Control_plane.cold_migrate cp ~name:"app" ~to_:Control_plane.Bare_metal with
  | Ok p -> show "migrated back:" p
  | Error e -> failwith e);

  assert (vm_boot.Boot.bytes_loaded = bm_boot.Boot.bytes_loaded);
  Printf.printf "\nsame %d-byte image booted on both substrates; fleet now uses %d HT\n"
    bm_boot.Boot.bytes_loaded (Control_plane.used_threads cp)
