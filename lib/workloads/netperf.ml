open Bm_engine
open Bm_virtio
open Bm_guest

type pps_result = {
  offered_pps : float;
  received_pps : float;
  jitter_pps : float;
  dropped : int;
}

let udp_pps sim ~src ~dst ?(senders = 4) ?(batch = 32) ~duration () =
  let received = ref 0 in
  let offered = ref 0 in
  let dropped = ref 0 in
  let interval = Simtime.ms 10.0 in
  let interval_counts = ref [] in
  let current = ref 0 in
  dst.Instance.set_rx_handler (fun pkt ->
      received := !received + pkt.Packet.count;
      current := !current + pkt.Packet.count);
  (* Sample per-interval receive rates for the jitter estimate. *)
  Sim.spawn sim (fun () ->
      let rec tick () =
        Sim.delay interval;
        interval_counts := !current :: !interval_counts;
        current := 0;
        tick ()
      in
      tick ());
  let stop_at = Sim.now sim +. duration in
  let next_id = ref 0 in
  for _ = 1 to senders do
    Sim.spawn sim (fun () ->
        let rec blast () =
          if Sim.clock () < stop_at then begin
            incr next_id;
            let pkt =
              Packet.small_udp ~id:!next_id ~src:src.Instance.endpoint
                ~dst:dst.Instance.endpoint ~count:batch ~sent_at:(Sim.clock ()) ()
            in
            offered := !offered + batch;
            if not (src.Instance.send pkt) then dropped := !dropped + batch;
            blast ()
          end
        in
        blast ())
  done;
  Sim.run ~until:(stop_at +. Simtime.ms 5.0) sim;
  let seconds = Simtime.to_sec duration in
  let rates = List.map (fun c -> float_of_int c /. Simtime.to_sec interval) !interval_counts in
  let jitter =
    match rates with
    | [] | [ _ ] -> 0.0
    | rates ->
      let s = Stats.Summary.create () in
      (* Drop the first and last partial intervals. *)
      let trimmed = List.filteri (fun i _ -> i > 0 && i < List.length rates - 1) rates in
      List.iter (Stats.Summary.add s) (if trimmed = [] then rates else trimmed);
      Stats.Summary.stddev s
  in
  {
    offered_pps = float_of_int !offered /. seconds;
    received_pps = float_of_int !received /. seconds;
    jitter_pps = jitter;
    dropped = !dropped;
  }

type rr_result = {
  transactions : int;
  per_s : float;
  rtt_avg_us : float;
  rtt_p50_us : float;
  rtt_p99_us : float;
  rtt_p999_us : float;
  rtt_min_us : float;
}

(* netperf TCP_RR: one synchronous request/response transaction at a
   time, full round-trip measured at the client (unlike sockperf, which
   halves it into one-way latency). *)
let tcp_rr sim ~src ~dst ?(count = 2000) ?(request_bytes = 64) ?(response_bytes = 64) () =
  let req_size = request_bytes + Packet.tcp_header_bytes in
  let resp_size = response_bytes + Packet.tcp_header_bytes in
  dst.Instance.set_rx_handler (fun pkt ->
      ignore
        (dst.Instance.send
           (Packet.make ~id:pkt.Packet.id ~src:dst.Instance.endpoint ~dst:pkt.Packet.src
              ~size:resp_size ~protocol:Packet.Tcp ~sent_at:pkt.Packet.sent_at ())));
  let hist = Stats.Histogram.create ~lo:100.0 ~hi:1e9 ~precision:0.005 () in
  let pending = ref None in
  src.Instance.set_rx_handler (fun pkt ->
      match !pending with
      | Some ivar ->
        pending := None;
        Sim.Ivar.fill ivar pkt
      | None -> ());
  let started = Sim.now sim in
  let finished = ref started in
  Sim.spawn sim (fun () ->
      for i = 1 to count do
        let ivar = Sim.Ivar.create () in
        pending := Some ivar;
        let t0 = Sim.clock () in
        ignore
          (src.Instance.send
             (Packet.make ~id:i ~src:src.Instance.endpoint ~dst:dst.Instance.endpoint
                ~size:req_size ~protocol:Packet.Tcp ~sent_at:t0 ()));
        ignore (Sim.Ivar.read ivar : Packet.t);
        Stats.Histogram.add hist (Sim.clock () -. t0)
      done;
      finished := Sim.clock ());
  Sim.run sim;
  let elapsed = !finished -. started in
  {
    transactions = Stats.Histogram.count hist;
    per_s =
      (if elapsed > 0.0 then float_of_int (Stats.Histogram.count hist) /. elapsed *. 1e9
       else 0.0);
    rtt_avg_us = Stats.Histogram.mean hist /. 1e3;
    rtt_p50_us = Stats.Histogram.percentile hist 50.0 /. 1e3;
    rtt_p99_us = Stats.Histogram.percentile hist 99.0 /. 1e3;
    rtt_p999_us = Stats.Histogram.percentile hist 99.9 /. 1e3;
    rtt_min_us = Stats.Histogram.min hist /. 1e3;
  }

type throughput_result = { gbit_s : float; payload_gbit_s : float; messages : int }

let tcp_stream sim ~src ~dst ?(connections = 64) ?(message_bytes = 1400) ~duration () =
  let received_bytes = ref 0 in
  let payload_bytes = ref 0 in
  let messages = ref 0 in
  let stop_at = Sim.now sim +. duration in
  dst.Instance.set_rx_handler (fun pkt ->
      (* Only arrivals inside the measurement window count. *)
      if Sim.now sim <= stop_at then begin
        received_bytes := !received_bytes + pkt.Packet.size;
        payload_bytes :=
          !payload_bytes + pkt.Packet.size - (Packet.tcp_header_bytes * pkt.Packet.count);
        messages := !messages + pkt.Packet.count
      end);
  let next_id = ref 0 in
  (* Each connection streams messages back-to-back; a burst of 8 messages
     per send models TSO-style batching. *)
  let burst = 8 in
  for _ = 1 to connections do
    Sim.spawn sim (fun () ->
        let rec stream () =
          if Sim.clock () < stop_at then begin
            incr next_id;
            let size = (message_bytes + Packet.tcp_header_bytes) * burst in
            let pkt =
              Packet.make ~id:!next_id ~src:src.Instance.endpoint ~dst:dst.Instance.endpoint
                ~size ~count:burst ~protocol:Packet.Tcp ~sent_at:(Sim.clock ()) ()
            in
            ignore (src.Instance.send pkt);
            stream ()
          end
        in
        stream ())
  done;
  Sim.run ~until:(stop_at +. Simtime.ms 5.0) sim;
  {
    gbit_s = float_of_int !received_bytes *. 8.0 /. duration;
    payload_gbit_s = float_of_int !payload_bytes *. 8.0 /. duration;
    messages = !messages;
  }
