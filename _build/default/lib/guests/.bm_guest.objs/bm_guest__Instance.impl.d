lib/guests/instance.ml: Bm_hw Bm_iobond Bm_virtio Guest_os
