open Bm_hw

let epc_mb_per_socket = 93

type t = {
  instance : Instance.t;
  name : string;
  epc_mb : int;
  mutable transitions : int;
}

(* EENTER/EEXIT cost ~8k cycles each way on the era's parts. *)
let transition_cycles = 2.0 *. 8_000.0

let create instance ~name ~epc_mb =
  match instance.Instance.kind with
  | Instance.Virtual ->
    Error "SGX on a vm-guest requires a special KVM/QEMU build and guest drivers (see paper S6)"
  | Instance.Bare_metal _ | Instance.Physical ->
    let sockets =
      max 1 (Cores.thread_count instance.Instance.cores / instance.Instance.spec.Cpu_spec.threads)
    in
    let available = sockets * epc_mb_per_socket in
    if epc_mb <= 0 then Error "enclave size must be positive"
    else if epc_mb > available then
      Error (Printf.sprintf "EPC exhausted: requested %dMB, %dMB available" epc_mb available)
    else Ok { instance; name; epc_mb; transitions = 0 }

let name t = t.name
let epc_mb t = t.epc_mb

let ecall t ~work_ns =
  assert (work_ns >= 0.0);
  t.transitions <- t.transitions + 1;
  let ghz = Cores.ghz t.instance.Instance.cores in
  t.instance.Instance.exec_ns ((transition_cycles /. ghz) +. work_ns)

let transitions t = t.transitions

(* Toy MRENCLAVE: a keyed digest of the enclave name. *)
let measurement name = Firmware.sign ~key:0x5158 ~payload:name

let attest t = measurement t.name
let verify_quote ~name ~quote = measurement name = quote
