type t = {
  rate : float; (* tokens per second; infinity = unlimited *)
  burst : float;
  mutable tokens : float;
  mutable updated : float; (* last refill timestamp, ns *)
}

let create ~rate ~burst =
  assert (rate > 0.0 && burst > 0.0);
  { rate; burst; tokens = burst; updated = 0.0 }

let unlimited () = { rate = infinity; burst = infinity; tokens = infinity; updated = 0.0 }

let is_unlimited t = t.rate = infinity
let rate t = t.rate

let refill t ~now =
  if now > t.updated then begin
    let elapsed_s = (now -. t.updated) /. 1e9 in
    t.tokens <- Float.min t.burst (t.tokens +. (elapsed_s *. t.rate));
    t.updated <- now
  end

let reserve t ~now n =
  if is_unlimited t then now
  else begin
    refill t ~now;
    t.tokens <- t.tokens -. n;
    if t.tokens >= 0.0 then now
    else
      (* Debt of [-tokens]: ready once the deficit has refilled. *)
      now +. (-.t.tokens /. t.rate *. 1e9)
  end

let available t ~now =
  if is_unlimited t then infinity
  else begin
    refill t ~now;
    Float.max 0.0 t.tokens
  end

let try_take_n t ~now n =
  if is_unlimited t then true
  else begin
    refill t ~now;
    if t.tokens >= n then begin
      t.tokens <- t.tokens -. n;
      true
    end
    else false
  end

let take_n t n =
  let now = Sim.clock () in
  let ready = reserve t ~now n in
  let wait = ready -. now in
  if wait > 0.0 then Sim.delay wait;
  wait

let take t = take_n t 1.0
