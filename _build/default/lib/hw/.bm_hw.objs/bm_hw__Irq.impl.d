lib/hw/irq.ml: Bm_engine Sim
