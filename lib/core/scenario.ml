open Bm_engine
open Bm_hyp
module Fabric = Bm_fabric.Fabric
module Packet = Bm_virtio.Packet
module Slo = Bm_cloud.Slo
module Limits = Bm_cloud.Limits
module Scheduler = Bm_cloud.Scheduler
module Cp = Bm_cloud.Control_plane
module Policy = Bm_cloud.Policy
module Topology = Bm_fabric.Topology

(* --- timeline DSL --------------------------------------------------- *)

type action =
  | Traffic of float
  | Host_fail of { victim : int; duration_ns : float }
  | Link_fail of { victim : int; duration_ns : float }
  | Congest of { duration_ns : float }
  | Evacuate of { victim : int }
  | Brownout of { duration_ns : float }
  | Vf_stall of { duration_ns : float }
  | Vf_wedge of { duration_ns : float }

type entry = { at : float; action : action }

type timeline = entry list

let at t action = [ { at = t; action } ]

let every ~period_ns ~until_ns ?(start_ns = 0.0) action =
  if not (period_ns > 0.0) then invalid_arg "Scenario.every: period_ns must be > 0";
  let rec go t acc = if t < until_ns then go (t +. period_ns) ({ at = t; action } :: acc) else List.rev acc in
  go start_ns []

let ramp ?(steps = 8) ~from_ns ~until_ns ~lo ~hi () =
  if steps < 2 then invalid_arg "Scenario.ramp: steps must be >= 2";
  if not (until_ns > from_ns) then invalid_arg "Scenario.ramp: empty span";
  let span = until_ns -. from_ns in
  List.init steps (fun k ->
      let f = float_of_int k /. float_of_int steps in
      let scale = lo +. ((hi -. lo) *. sin (Float.pi *. f)) in
      { at = from_ns +. (f *. span); action = Traffic scale })

(* --- specs ---------------------------------------------------------- *)

type spec = { seed : int; horizon_ns : float; timeline : entry list }

let default_horizon_ns = 2e6
let windows = 24

let make ~seed ?(horizon_ns = default_horizon_ns) timeline =
  if not (horizon_ns > 0.0) then invalid_arg "Scenario.make: horizon must be > 0";
  List.iter
    (fun e ->
      if not (e.at >= 0.0 && e.at < horizon_ns) then
        invalid_arg "Scenario.make: entry outside [0, horizon)")
    timeline;
  { seed; horizon_ns; timeline = List.stable_sort (fun a b -> compare a.at b.at) timeline }

(* The committed game day. Fractions of the horizon are chosen so the
   ladder has windows to detect, escalate (through a brownout that
   makes its first attempt fail) and recover well before the end:
   without degradation the host failures blanket over half the scored
   windows, with it they cost a handful. *)
let default_timeline h =
  List.concat
    [
      ramp ~from_ns:0.0 ~until_ns:h ~lo:0.6 ~hi:1.5 ();
      at (0.22 *. h) (Host_fail { victim = 0; duration_ns = 0.60 *. h });
      at (0.26 *. h) (Host_fail { victim = 1; duration_ns = 0.55 *. h });
      at (0.23 *. h) (Brownout { duration_ns = 0.06 *. h });
      at (0.35 *. h) (Link_fail { victim = 0; duration_ns = 0.25 *. h });
      at (0.45 *. h) (Congest { duration_ns = 0.15 *. h });
      at (0.80 *. h) (Evacuate { victim = 2 });
    ]

let default_spec ?(horizon_ns = default_horizon_ns) ~seed () =
  make ~seed ~horizon_ns (default_timeline horizon_ns)

(* --- string form ---------------------------------------------------- *)

let describe = function
  | Traffic s -> Printf.sprintf "traffic x%.2f" s
  | Host_fail { victim; duration_ns } ->
    Printf.sprintf "host-fail victim=%d duration=%.0fns" victim duration_ns
  | Link_fail { victim; duration_ns } ->
    Printf.sprintf "link-fail victim=%d duration=%.0fns" victim duration_ns
  | Congest { duration_ns } -> Printf.sprintf "congest duration=%.0fns" duration_ns
  | Evacuate { victim } -> Printf.sprintf "evacuate victim=%d" victim
  | Brownout { duration_ns } -> Printf.sprintf "brownout duration=%.0fns" duration_ns
  | Vf_stall { duration_ns } -> Printf.sprintf "vf-stall duration=%.0fns" duration_ns
  | Vf_wedge { duration_ns } -> Printf.sprintf "vf-wedge duration=%.0fns" duration_ns

let render spec =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "scenario seed=%d horizon_ns=%.0f\n" spec.seed spec.horizon_ns);
  List.iter
    (fun e -> Buffer.add_string b (Printf.sprintf "  %10.0f  %s\n" e.at (describe e.action)))
    spec.timeline;
  Buffer.contents b

let parse_spec s =
  match String.index_opt s ':' with
  | None -> Error "scenario spec must look like <seed>:<spec>"
  | Some i -> (
    let seed_s = String.sub s 0 i in
    let body = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt seed_s with
    | None -> Error (Printf.sprintf "bad scenario seed %S" seed_s)
    | Some seed -> (
      let tokens =
        String.split_on_char ',' body |> List.map String.trim
        |> List.filter (fun t -> t <> "")
      in
      if tokens = [] then Error "empty scenario spec"
      else begin
        let use_default = ref false in
        let horizon = ref default_horizon_ns in
        let ramp_opt = ref None in
        let hosts = ref 0 and links = ref 0 and congests = ref 0 in
        let evacs = ref 0 and brownouts = ref 0 in
        let vfstalls = ref 0 and vfwedges = ref 0 in
        let err = ref None in
        let int_of v tok = match int_of_string_opt v with
          | Some n when n >= 0 -> Some n
          | _ -> err := Some (Printf.sprintf "bad count in %S" tok); None
        in
        List.iter
          (fun tok ->
            if !err = None then
              match String.index_opt tok '=' with
              | None ->
                if tok = "default" then use_default := true
                else err := Some (Printf.sprintf "unknown scenario token %S" tok)
              | Some j -> (
                let k = String.sub tok 0 j in
                let v = String.sub tok (j + 1) (String.length tok - j - 1) in
                match k with
                | "hosts" -> Option.iter (fun n -> hosts := n) (int_of v tok)
                | "links" -> Option.iter (fun n -> links := n) (int_of v tok)
                | "congest" -> Option.iter (fun n -> congests := n) (int_of v tok)
                | "evac" -> Option.iter (fun n -> evacs := n) (int_of v tok)
                | "brownout" -> Option.iter (fun n -> brownouts := n) (int_of v tok)
                | "vfstall" -> Option.iter (fun n -> vfstalls := n) (int_of v tok)
                | "vfwedge" -> Option.iter (fun n -> vfwedges := n) (int_of v tok)
                | "horizon" -> (
                  match float_of_string_opt v with
                  | Some h when h > 0.0 -> horizon := h
                  | _ -> err := Some (Printf.sprintf "bad horizon in %S" tok))
                | "ramp" -> (
                  match String.split_on_char '-' v with
                  | [ lo; hi ] -> (
                    match (float_of_string_opt lo, float_of_string_opt hi) with
                    | Some lo, Some hi when lo >= 0.0 && hi >= lo -> ramp_opt := Some (lo, hi)
                    | _ -> err := Some (Printf.sprintf "bad ramp in %S" tok))
                  | _ -> err := Some (Printf.sprintf "bad ramp in %S" tok))
                | _ -> err := Some (Printf.sprintf "unknown scenario token %S" tok)))
          tokens;
        match !err with
        | Some e -> Error e
        | None ->
          let h = !horizon in
          (* One SplitMix64 stream per action kind, split in a fixed
             order: adding events of one kind never moves another's. *)
          let root = Rng.create ~seed in
          let host_rng = Rng.split root in
          let link_rng = Rng.split root in
          let congest_rng = Rng.split root in
          let evac_rng = Rng.split root in
          let brown_rng = Rng.split root in
          (* New kinds split after the historical five, so old specs
             keep their exact event times. *)
          let vfstall_rng = Rng.split root in
          let vfwedge_rng = Rng.split root in
          let band rng lo hi = Rng.uniform rng ~lo:(lo *. h) ~hi:(hi *. h) in
          let tl = ref (if !use_default then default_timeline h else []) in
          let add e = tl := !tl @ e in
          Option.iter (fun (lo, hi) -> add (ramp ~from_ns:0.0 ~until_ns:h ~lo ~hi ())) !ramp_opt;
          for k = 0 to !hosts - 1 do
            add (at (band host_rng 0.15 0.45) (Host_fail { victim = k; duration_ns = 0.55 *. h }))
          done;
          for k = 0 to !links - 1 do
            add (at (band link_rng 0.25 0.55) (Link_fail { victim = k; duration_ns = 0.25 *. h }))
          done;
          for _ = 1 to !congests do
            add (at (band congest_rng 0.30 0.60) (Congest { duration_ns = 0.15 *. h }))
          done;
          for k = 0 to !evacs - 1 do
            add (at (band evac_rng 0.65 0.90) (Evacuate { victim = !hosts + k }))
          done;
          for _ = 1 to !brownouts do
            add (at (band brown_rng 0.20 0.50) (Brownout { duration_ns = 0.06 *. h }))
          done;
          for _ = 1 to !vfstalls do
            add (at (band vfstall_rng 0.25 0.60) (Vf_stall { duration_ns = 0.04 *. h }))
          done;
          for _ = 1 to !vfwedges do
            add (at (band vfwedge_rng 0.30 0.65) (Vf_wedge { duration_ns = 0.05 *. h }))
          done;
          Ok (make ~seed ~horizon_ns:h !tl)
      end))

(* --- running -------------------------------------------------------- *)

type outcome = {
  degrade : bool;
  policy : string;
  scores : Slo.tenant_score list;
  met : int;
  missed : int;
  delivered : int;
  failed : int;
  shed : int;
  max_stage : int;
  stage_actions : int;
  guard_retries : int;
  breaker_opens : int;
  evacuated_guests : int;
  evac_bytes : int;
  sim_events : int;
  fault_summary : string;
  scorecard : string;
}

let tier_index = function Slo.Gold -> 0 | Slo.Silver -> 1 | Slo.Bronze -> 2

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let run ?trace ?metrics ?(degrade = true) ?(policy = Policy.Ladder) ?(fleet = Fleet.Live.default_config) spec =
  let t = Fleet.Live.build ?trace ?metrics ~seed:spec.seed fleet in
  let sim = Fleet.Live.sim t in
  let fab = Fleet.Live.fabric t in
  let sched = Fleet.Live.scheduler t in
  let cp = Scheduler.control_plane sched in
  let obs = Obs.create ?trace ?metrics ~now:(fun () -> Sim.now sim) () in
  let horizon = spec.horizon_ns in
  let window_ns = horizon /. float_of_int windows in
  (* Scenario randomness is split off its own root so it never shares a
     stream with the fleet's construction draws. *)
  let root = Rng.create ~seed:(spec.seed lxor 0x5ced1a) in
  let traffic_rng = Rng.split root in
  let victim_rng = Rng.split root in
  let link_rng = Rng.split root in

  (* Tenants and their SLOs: tiers round-robin over the sorted names. *)
  let tenant_names =
    List.sort compare (List.map Bm_cloud.Tenant.name (Scheduler.tenants sched))
    |> Array.of_list
  in
  let slo = Slo.create ~obs ~now:(fun () -> Sim.now sim) ~window_ns () in
  Array.iteri
    (fun i name -> Slo.declare slo ~tenant:name ~tier:(Slo.tier_of_index i) ())
    tenant_names;
  let tier_of_tenant = Hashtbl.create (Array.length tenant_names) in
  Array.iteri
    (fun i name -> Hashtbl.replace tier_of_tenant name (Slo.tier_of_index i))
    tenant_names;
  let tenant_tier tn =
    Option.value ~default:Slo.Bronze (Hashtbl.find_opt tier_of_tenant tn)
  in
  (* Tag every placement with its tenant's tier so per-class admission
     ceilings (the tiered policy's lever) can bind on evacuations and
     retries; placements made while the fleet was built are backfilled.
     Pure host-side accounting — no simulation operations. *)
  Scheduler.set_classifier sched (fun req ->
      Option.map Slo.tier_name (Hashtbl.find_opt tier_of_tenant req.Scheduler.tenant));
  List.iter
    (fun (name, _) ->
      match Scheduler.request_of sched name with
      | None -> ()
      | Some req ->
        Option.iter
          (fun tier -> Cp.reclassify cp ~name ~cls:(Slo.tier_name tier))
          (Hashtbl.find_opt tier_of_tenant req.Scheduler.tenant))
    (Scheduler.assignments sched);

  (* Per-tenant hot working sets (the first eight placed guests, in name
     order): traffic concentrates on them zipf-style, so a host failure
     that takes a hot guest down is a visible outage, not background
     noise diluted over thousands of idle instances. *)
  let assignments = Scheduler.assignments sched in
  let endpoint = Hashtbl.create (2 * List.length assignments) in
  List.iteri (fun i (name, _) -> Hashtbl.replace endpoint name (i + 1)) assignments;
  let hot_lists = Hashtbl.create 64 in
  List.iter
    (fun (name, _) ->
      match Scheduler.request_of sched name with
      | None -> ()
      | Some req ->
        let cur = Option.value (Hashtbl.find_opt hot_lists req.Scheduler.tenant) ~default:[] in
        if List.length cur < 8 then Hashtbl.replace hot_lists req.Scheduler.tenant (cur @ [ name ]))
    assignments;
  let hot_sets =
    Array.map
      (fun tn -> Array.of_list (Option.value (Hashtbl.find_opt hot_lists tn) ~default:[]))
      tenant_names
  in

  (* Victim tables. Game days aim at the blast radius: host victim [k]
     is the host of tenant [k]'s hottest guest (first distinct hosts in
     tenant order), the remaining hosts follow in a seeded shuffle.
     Link victims are a seeded shuffle of the ToR-to-spine links. *)
  let host_victims =
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let add h =
      if h >= 0 && h < fleet.Fleet.Live.hosts && not (Hashtbl.mem seen h) then begin
        Hashtbl.replace seen h ();
        out := h :: !out
      end
    in
    Array.iter
      (fun hot -> if Array.length hot > 0 then
          Option.iter add (Fleet.Live.guest_host t hot.(0)))
      hot_sets;
    let rest = Array.init fleet.Fleet.Live.hosts (fun i -> i) in
    shuffle victim_rng rest;
    Array.iter add rest;
    Array.of_list (List.rev !out)
  in
  let link_victims =
    let names =
      List.filter
        (fun n ->
          match String.index_opt n '>' with
          | Some i -> i + 6 <= String.length n && String.sub n (i + 1) 5 = "spine"
          | None -> false)
        (Fabric.link_names fab)
      |> List.sort compare |> Array.of_list
    in
    shuffle link_rng names;
    names
  in

  (* Compile the fault actions into one Fault plan, so injection and
     recovery bookkeeping (terminal recovery at the horizon included)
     is shared with every other fault consumer. Victims ride alongside
     in per-kind queues, consumed in window-open order — which matches
     the plan's time order. *)
  let host_q = Queue.create () and link_q = Queue.create () in
  let events =
    List.filter_map
      (fun e ->
        match e.action with
        | Host_fail { victim; duration_ns } ->
          Queue.add victim host_q;
          Some { Fault.kind = Fault.Server_failure; at = e.at; duration_ns }
        | Link_fail { victim; duration_ns } ->
          Queue.add victim link_q;
          Some { Fault.kind = Fault.Fabric_link_down; at = e.at; duration_ns }
        | Brownout { duration_ns } ->
          Some { Fault.kind = Fault.Pmd_crash; at = e.at; duration_ns }
        | Vf_stall { duration_ns } ->
          Some { Fault.kind = Fault.Vf_stall; at = e.at; duration_ns }
        | Vf_wedge { duration_ns } ->
          Some { Fault.kind = Fault.Vf_reassign_timeout; at = e.at; duration_ns }
        | Traffic _ | Congest _ | Evacuate _ -> None)
      spec.timeline
  in
  let inj = Fault.create ~obs sim { Fault.seed = spec.seed; horizon_ns = horizon; events } in
  let hosts_down = ref 0 and links_down = ref 0 and brownout = ref 0 in
  Fault.subscribe inj Fault.Server_failure (fun e ->
      match Queue.take_opt host_q with
      | None -> ()
      | Some k ->
        let v = host_victims.(k mod Array.length host_victims) in
        if not (Cp.server_failed cp v) then begin
          Cp.fail_server cp v;
          incr hosts_down;
          Metrics.incr_opt (Obs.metrics obs) "scenario.host_failed";
          Sim.schedule sim ~delay:e.Fault.duration_ns (fun () ->
              if Cp.server_failed cp v then begin
                Cp.restore_server cp v;
                ignore (Scheduler.retry_stranded sched)
              end)
        end);
  Fault.subscribe inj Fault.Fabric_link_down (fun e ->
      match Queue.take_opt link_q with
      | None -> ()
      | Some k ->
        if Array.length link_victims > 0 then begin
          let name = link_victims.(k mod Array.length link_victims) in
          incr links_down;
          Fabric.fail_link fab ~name;
          Sim.schedule sim ~delay:e.Fault.duration_ns (fun () -> Fabric.repair_link fab ~name)
        end);
  Fault.subscribe inj Fault.Pmd_crash (fun e ->
      incr brownout;
      Sim.schedule sim ~delay:e.Fault.duration_ns (fun () -> decr brownout));

  (* Per-tier admission: roomy Block buckets in normal operation; a
     policy's Shed_tier action swaps a tier onto a tight Shed bucket,
     the paper's fail-fast limiter doing the refusing. [tenant_net]
     holds per-tenant overrides (Shed_tenants); empty unless a policy
     sheds selectively, so the lookup costs one host-side miss. *)
  let roomy () = Limits.custom_net ~policy:Limits.Block ~pps:1e9 ~gbit_s:1e4 () in
  let tight () = Limits.custom_net ~policy:Limits.Shed ~pps:4e3 ~gbit_s:1e4 () in
  let tier_net = [| roomy (); roomy (); roomy () |] in
  let tenant_net : (string, Limits.net) Hashtbl.t = Hashtbl.create 8 in

  (* Open-loop traffic: each tick, every tenant offers requests between
     hot guests (zipf source, distinct destination), scaled by the
     diurnal multiplier and its tier weight. A request resolves exactly
     once: shed at admission, failed when either end's host is down or
     the fabric drops it, delivered with its measured latency. *)
  let scale = ref 1.0 in
  let next_pkt = ref 0 in
  (* Per-tier offered-request counters (host-side bookkeeping, not
     simulation state): the policy's offered_pps signal reads the
     per-window delta. *)
  let tier_offered_counts = Array.make 3 0 in
  let tier_offered_last = Array.make 3 0 in
  let issue ti =
    let hot = hot_sets.(ti) in
    let nh = Array.length hot in
    if nh > 0 then begin
      let tname = tenant_names.(ti) in
      let tier = Slo.tier_of_index ti in
      tier_offered_counts.(tier_index tier) <- tier_offered_counts.(tier_index tier) + 1;
      let si = Rng.zipf traffic_rng ~n:nh ~s:1.1 in
      let di = if nh = 1 then si else (si + 1 + Rng.int traffic_rng (nh - 1)) mod nh in
      let src_g = hot.(si) and dst_g = hot.(di) in
      let size = 16_384 and count = 4 in
      let bytes = size * count in
      let bucket =
        match Hashtbl.find_opt tenant_net tname with
        | Some b -> b
        | None -> tier_net.(tier_index tier)
      in
      if not (Limits.net_admit bucket ~packets:count ~bytes_:bytes) then
        Slo.shed slo ~tenant:tname ~bytes
      else
        match (Fleet.Live.guest_host t src_g, Fleet.Live.guest_host t dst_g) with
        | Some sh, Some dh when not (Cp.server_failed cp sh || Cp.server_failed cp dh) ->
          incr next_pkt;
          let pkt =
            Packet.make ~id:!next_pkt
              ~src:(Hashtbl.find endpoint src_g)
              ~dst:(Hashtbl.find endpoint dst_g)
              ~size ~count ~protocol:Packet.Tcp ~sent_at:(Sim.now sim) ()
          in
          Fabric.send fab ~src_host:sh ~dst_host:dh
            ~on_drop:(fun _ -> Slo.fail slo ~tenant:tname ~bytes)
            ~deliver:(fun p ->
              Slo.deliver slo ~tenant:tname ~bytes
                ~latency_ns:(Float.max 0.0 (Sim.now sim -. p.Packet.sent_at)))
            pkt
        | _ -> Slo.fail slo ~tenant:tname ~bytes
    end
  in
  let ticks_per_window = 4 in
  let tick_ns = window_ns /. float_of_int ticks_per_window in
  Sim.spawn sim (fun () ->
      for _ = 1 to windows * ticks_per_window do
        Array.iteri
          (fun ti _ ->
            let weight =
              match Slo.tier_of_index ti with Slo.Gold -> 1.5 | Slo.Silver -> 1.0 | Slo.Bronze -> 0.75
            in
            let n = int_of_float (Float.round (2.0 *. weight *. !scale)) in
            for _ = 1 to n do
              issue ti
            done)
          tenant_names;
        Sim.delay tick_ns
      done);

  (* Metering: one accounting tick per window, through the fleet's own
     metering path. *)
  Sim.spawn sim (fun () ->
      for _ = 1 to windows do
        Sim.delay window_ns;
        Fleet.Live.meter_tick t ~tick_ns:window_ns
      done);

  (* Cross-rack congestion trains: pseudo endpoints with distinct tags
     so ECMP spreads them over every spine; contends in the link queues
     without consuming guest resources. *)
  let bulk_scale = ref 1.0 in
  let congest ~until_ns =
    let src_host = 0 and dst_host = fleet.Fleet.Live.hosts - 1 in
    for tag = 0 to 3 do
      Sim.spawn sim (fun () ->
          let rec tick () =
            if Sim.clock () < until_ns then begin
              (* Throttle_bulk scales the per-tick burst count; 1.0 is
                 exactly the legacy four bursts. *)
              for _ = 1 to int_of_float (Float.round (4.0 *. !bulk_scale)) do
                incr next_pkt;
                Fabric.send fab ~src_host ~dst_host
                  ~deliver:(fun _ -> ())
                  (Packet.make ~id:!next_pkt ~src:(0x6f00 + tag) ~dst:(0x6f80 + tag)
                     ~size:65_536 ~count:43 ~tag ~protocol:Packet.Udp ~sent_at:(Sim.clock ()) ())
              done;
              Sim.delay (window_ns /. 16.0);
              tick ()
            end
          in
          tick ())
    done
  in

  (* Post-copy evacuation: placement switches instantly (drain), memory
     streams to the new hosts in the background with a small in-flight
     window — the emergency counterpart of Fleet.Live.evacuate's
     pre-copy stream. *)
  let evacuated_guests = ref 0 and evac_bytes = ref 0 in
  let stream_from ~src moves =
    let chunk = fleet.Fleet.Live.chunk_mb * 1024 * 1024 in
    let work = Queue.create () in
    List.iter
      (fun (dst, bytes) ->
        let rec split r =
          if r > 0 then begin
            Queue.add (dst, min chunk r) work;
            split (r - chunk)
          end
        in
        split bytes)
      moves;
    let rec pump () =
      match Queue.take_opt work with
      | None -> ()
      | Some (dst, size) ->
        if src = dst then begin
          evac_bytes := !evac_bytes + size;
          pump ()
        end
        else begin
          incr next_pkt;
          Fabric.send fab ~src_host:src ~dst_host:dst
            ~on_drop:(fun _ -> pump ())
            ~deliver:(fun p ->
              evac_bytes := !evac_bytes + p.Packet.size;
              pump ())
            (Packet.make ~id:!next_pkt ~src:0x7000 ~dst:0x7001 ~size
               ~count:(max 1 (size / 1500)) ~protocol:Packet.Tcp ~sent_at:(Sim.now sim) ())
        end
    in
    for _ = 1 to 8 do
      pump ()
    done
  in
  let evacuate_host server =
    let results = Scheduler.drain sched ~server in
    let moves =
      List.filter_map
        (fun (name, r) ->
          match r with
          | Error _ -> None
          | Ok p ->
            let req = Option.get (Scheduler.request_of sched name) in
            Some (p.Cp.server, req.Scheduler.mem_gb * 1024 * 1024 * 1024))
        results
    in
    evacuated_guests := !evacuated_guests + List.length moves;
    Metrics.incr_opt (Obs.metrics obs) ~by:(float_of_int (List.length moves))
      "scenario.evacuated_guests";
    if moves <> [] then stream_from ~src:server moves
  in

  (* The degradation policy. Escalations run under a Guard: brownouts
     make the control-plane action fail, the guard retries with
     backoff, and the breaker defers the policy to the next window
     rather than hammering a browned-out control plane. Relaxations
     undo host-side state and run unguarded, exactly as the legacy
     ladder's undo did. *)
  let guard =
    Fault.Guard.create ~obs
      ~policy:
        {
          Fault.Guard.default_policy with
          max_attempts = 3;
          backoff_ns = 1_000.0;
          backoff_mult = 4.0;
          backoff_max_ns = 16_000.0;
          circuit_threshold = 2;
          circuit_cooldown_ns = window_ns;
        }
      sim ~name:(Policy.name policy)
  in
  let pol = Policy.create policy in
  let stage_actions = ref 0 in
  let base_ceiling = Cp.admission_ceiling cp in
  let failed_busy () =
    List.filter_map
      (fun (srv, n) -> if n > 0 && Cp.server_failed cp srv then Some srv else None)
      (Scheduler.occupancy sched)
  in
  let apply_action = function
    | Policy.Shed_tier tier -> tier_net.(tier_index tier) <- tight ()
    | Policy.Restore_tier tier -> tier_net.(tier_index tier) <- roomy ()
    | Policy.Shed_tenants ts -> List.iter (fun tn -> Hashtbl.replace tenant_net tn (tight ())) ts
    | Policy.Restore_tenants ts -> List.iter (fun tn -> Hashtbl.remove tenant_net tn) ts
    | Policy.Tier_ceiling { tier; pps } -> tier_net.(tier_index tier) <- Limits.ceiling_net ~pps ()
    | Policy.Restore_tier_ceiling tier -> tier_net.(tier_index tier) <- roomy ()
    | Policy.Host_ceiling f -> Cp.set_admission_ceiling cp (Float.max 0.5 (base_ceiling *. f))
    | Policy.Restore_host_ceiling -> Cp.set_admission_ceiling cp base_ceiling
    | Policy.Class_ceiling { tier; frac } -> Cp.set_class_ceiling cp ~cls:(Slo.tier_name tier) frac
    | Policy.Restore_class_ceiling tier -> Cp.clear_class_ceiling cp ~cls:(Slo.tier_name tier)
    | Policy.Drain_failed -> List.iter evacuate_host (failed_busy ())
    | Policy.Throttle_bulk f -> bulk_scale := f
    | Policy.Restore_bulk -> bulk_scale := 1.0
  in
  let guarded actions =
    Fault.Guard.run guard (fun () ->
        if !brownout > 0 then Error "control-plane brownout"
        else begin
          List.iter apply_action actions;
          Ok ()
        end)
  in
  let note_stage () =
    Trace.instant_opt (Obs.trace obs) ~track:"scenario"
      (Printf.sprintf "stage=%d" (Policy.stage pol)) ~now:(Sim.now sim)
  in
  (* One signal bundle per closed window: pure reads only (SLO window
     cells, scheduler occupancy, fabric queue depths), so assembling it
     never perturbs the simulation. *)
  let topo = Fabric.topology fab in
  let tor_of h = if h >= 0 && h < fleet.Fleet.Live.hosts then Topology.tor_of topo ~host:h else -1 - h in
  let signals w =
    let distressed = Slo.window_misses slo ~window:w () in
    let failed = failed_busy () in
    let links = Fabric.queue_pressure fab in
    let spine_queued, spine_dropped =
      List.fold_left
        (fun (q, d) (p : Fabric.pressure) ->
          if p.Fabric.spine then (q + p.Fabric.queued_bursts, d + p.Fabric.dropped_pkts_total)
          else (q, d))
        (0, 0) links
    in
    {
      Policy.window = w;
      (* The policy listens to the tiers it protects: deliberately
         shedding Bronze must not read back as sustained distress. *)
      premium_pressure = Slo.window_pressure slo ~tiers:[ Slo.Gold; Slo.Silver ] ~window:w ();
      all_pressure = Slo.window_pressure slo ~window:w ();
      distressed;
      suspects =
        Policy.blast_radius ~sched ~tor_of ~tier_of:tenant_tier ~distressed
          ~failed_hosts:failed;
      gold_p99_ms = Slo.window_tier_p99 slo ~tier:Slo.Gold ~window:w;
      offered_pps =
        List.map
          (fun tier ->
            let i = tier_index tier in
            let d = tier_offered_counts.(i) - tier_offered_last.(i) in
            tier_offered_last.(i) <- tier_offered_counts.(i);
            (tier, float_of_int d *. 1e9 /. window_ns))
          [ Slo.Gold; Slo.Silver; Slo.Bronze ];
      failed_hosts = failed;
      spine_queued;
      spine_dropped;
      links;
      links_down = Fabric.links_down fab;
      brownout = !brownout > 0;
      breaker = Fault.Guard.state guard;
    }
  in
  if degrade then
    Sim.spawn sim (fun () ->
        for w = 0 to windows - 1 do
          Sim.delay window_ns;
          match Policy.decide pol (signals w) with
          | Policy.Hold -> Policy.confirm pol ~ok:true
          | Policy.Escalate actions -> (
            match guarded actions with
            | Ok () ->
              Policy.confirm pol ~ok:true;
              incr stage_actions;
              Metrics.incr_opt (Obs.metrics obs) "scenario.stage_up";
              note_stage ()
            | Error _ -> Policy.confirm pol ~ok:false)
          | Policy.Reapply actions -> (
            match guarded actions with
            | Ok () ->
              Policy.confirm pol ~ok:true;
              incr stage_actions
            | Error _ -> Policy.confirm pol ~ok:false)
          | Policy.Relax actions ->
            List.iter apply_action actions;
            Policy.confirm pol ~ok:true;
            Metrics.incr_opt (Obs.metrics obs) "scenario.stage_down";
            note_stage ()
        done);

  (* Schedule the non-fault timeline entries and run. *)
  List.iter
    (fun e ->
      match e.action with
      | Traffic s -> Sim.schedule sim ~delay:e.at (fun () -> scale := s)
      | Congest { duration_ns } ->
        Sim.schedule sim ~delay:e.at (fun () -> congest ~until_ns:(e.at +. duration_ns))
      | Evacuate { victim } ->
        Sim.schedule sim ~delay:e.at (fun () ->
            Sim.spawn sim (fun () ->
                let v = host_victims.(victim mod Array.length host_victims) in
                match
                  Fault.Guard.run guard (fun () ->
                      if !brownout > 0 then Error "control-plane brownout"
                      else begin
                        evacuate_host v;
                        Ok ()
                      end)
                with
                | Ok () ->
                  (* Planned maintenance: the host comes back shortly
                     and stranded guests get another chance. *)
                  Sim.schedule sim ~delay:(0.1 *. horizon) (fun () ->
                      if Cp.server_failed cp v then begin
                        Cp.restore_server cp v;
                        ignore (Scheduler.retry_stranded sched)
                      end)
                | Error _ -> ()))
      | Host_fail _ | Link_fail _ | Brownout _ | Vf_stall _ | Vf_wedge _ -> ())
    spec.timeline;
  Fault.arm inj;
  Sim.run sim;

  (* Score and render. *)
  let scores = Slo.scores slo ~until_ns:horizon in
  let met = List.length (List.filter (fun (s : Slo.tenant_score) -> s.Slo.met) scores) in
  let total = List.length scores in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 scores in
  let delivered = sum (fun (s : Slo.tenant_score) -> s.Slo.delivered) in
  let failed = sum (fun (s : Slo.tenant_score) -> s.Slo.failed) in
  let shed = sum (fun (s : Slo.tenant_score) -> s.Slo.shed_count) in
  let fault_summary = Fault.summary inj in
  let scorecard =
    Report.slo_scorecard
      ~title:
        (Printf.sprintf "game-day scorecard: seed %d, degradation %s" spec.seed
           (if degrade then "on" else "off"))
      scores
    ^ Printf.sprintf "\nSLO met: %d/%d tenants (%d delivered, %d failed, %d shed)\n" met total
        delivered failed shed
    ^ fault_summary ^ "\n"
    ^ Printf.sprintf "%s: max stage %d, %d stage actions, %d guard retries, %d breaker opens\n"
        (Policy.name policy) (Policy.max_stage pol) !stage_actions (Fault.Guard.retries guard)
        (Fault.Guard.circuit_opens guard)
    ^ Printf.sprintf "blast radius: %d hosts failed, %d links failed, %d guests evacuated, %s bytes streamed post-copy\n"
        !hosts_down !links_down !evacuated_guests
        (Report.si (float_of_int !evac_bytes))
  in
  {
    degrade;
    policy = Policy.name policy;
    scores;
    met;
    missed = total - met;
    delivered;
    failed;
    shed;
    max_stage = Policy.max_stage pol;
    stage_actions = !stage_actions;
    guard_retries = Fault.Guard.retries guard;
    breaker_opens = Fault.Guard.circuit_opens guard;
    evacuated_guests = !evacuated_guests;
    evac_bytes = !evac_bytes;
    sim_events = Sim.events_executed sim;
    fault_summary;
    scorecard;
  }
