lib/hw/dma.ml: Bm_engine Float Metrics Obs Pcie Sim Trace
