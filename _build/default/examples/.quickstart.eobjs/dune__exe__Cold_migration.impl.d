examples/cold_migration.ml: Bm_cloud Bm_engine Bm_guest Bm_workload Boot Control_plane Image Printf Sim Simtime Testbed
