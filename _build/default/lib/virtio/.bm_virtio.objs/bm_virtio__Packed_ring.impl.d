lib/virtio/packed_ring.ml: Array List Printf
