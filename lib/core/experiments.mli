(** Registry of reproducible experiments — one per table/figure of the
    paper plus the numbered in-text results.

    Each experiment builds its own simulated testbed (fresh simulator,
    deterministic seed), runs the corresponding workload, and returns a
    printable table with paper-vs-measured columns where the paper
    reports concrete numbers. [quick] shrinks durations/population sizes
    so the whole suite stays fast in tests; headline numbers in
    EXPERIMENTS.md come from full runs. *)

type outcome = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

type fleet_opts = {
  fleet_hosts : int option;  (** override the fleet's host count *)
  fleet_guests : int option;  (** override the guest population *)
  fleet_tenants : int option;  (** override the tenant count *)
}
(** Size overrides for the fleet-scale experiments ([fleet_scale]);
    [None] fields keep the experiment's quick/full default. Other
    experiments ignore them. *)

val default_fleet : fleet_opts
(** All [None]. *)

type vf_opts = {
  vf_count : int option;
      (** [--vfs]: virtual functions per SR-IOV device/pool in the
          [vf_*] experiments; [None] keeps each experiment's default *)
  vf_datapath : Bm_iobond.Vf.datapath option;
      (** [--datapath]: restrict [vf_ablation] to one datapath column;
          [None] runs all three. Other experiments ignore it. *)
}
(** Knobs for the SR-IOV experiments ([vf_scale], [vf_reassign],
    [vf_ablation]); everything else ignores them. *)

val default_vf : vf_opts
(** All [None]. *)

type spec = {
  id : string;
  title : string;
  paper_ref : string;  (** table/figure/section in the paper *)
  run :
    scenario:string option ->
    policy:string option ->
    fleet:fleet_opts ->
    vf:vf_opts ->
    faults:Bm_engine.Fault.plan option ->
    trace:Bm_engine.Trace.t option ->
    metrics:Bm_engine.Metrics.t option ->
    topo:Bm_fabric.Topology.t option ->
    shards:int ->
    quick:bool ->
    seed:int ->
    outcome;
      (** [trace]/[metrics] are threaded into every testbed the experiment
          builds. Recording is pure observation: results are bit-identical
          with and without sinks attached. [faults] arms a fault plan in
          those testbeds; experiments that model no failure semantics
          ignore it. [topo] overrides the fabric topology in the
          cross-host experiments ([xhost_*]) and the fleet experiments;
          single-server experiments ignore it. [fleet] resizes the
          fleet-scale experiments. [scenario] is the raw
          ["SEED:SPEC"] string of [--scenario], consumed by the
          [game_day] and [policy_race] experiments
          ({!Scenario.parse_spec}); everything else ignores it.
          [policy] names the degradation policy ({!Bm_cloud.Policy.of_name})
          the [game_day] experiment closes the loop with — default
          ["ladder"]; [policy_race] runs every policy regardless.
          [shards] enables intra-run parallelism where an experiment
          supports it: [fleet_scale] carries its east-west flow phase
          on that many fabric replicas ({!Fleet.Live.serve}), while
          [game_day] and [policy_race] run their independent scenario
          arms on up to that many domains; every other experiment
          ignores it. Output is byte-identical for any [shards].
          Same seed + same plan ⇒ bit-identical outcome. *)
}

val all : spec list
val find : string -> spec option
val ids : unit -> string list

val run_one :
  ?quick:bool ->
  ?seed:int ->
  ?fleet:fleet_opts ->
  ?vf:vf_opts ->
  ?scenario:string ->
  ?policy:string ->
  ?faults:Bm_engine.Fault.plan ->
  ?trace:Bm_engine.Trace.t ->
  ?metrics:Bm_engine.Metrics.t ->
  ?topo:Bm_fabric.Topology.t ->
  ?shards:int ->
  string ->
  (outcome, string) result
(** [shards] (default 1) is passed to the experiment for intra-run
    parallelism (see {!spec}); like [jobs] in {!run_many}, a [trace] or
    [metrics] sink forces it back to 1. *)

val run_many :
  ?quick:bool ->
  ?seed:int ->
  ?fleet:fleet_opts ->
  ?vf:vf_opts ->
  ?scenario:string ->
  ?policy:string ->
  ?faults:Bm_engine.Fault.plan ->
  ?trace:Bm_engine.Trace.t ->
  ?metrics:Bm_engine.Metrics.t ->
  ?topo:Bm_fabric.Topology.t ->
  ?jobs:int ->
  ?shards:int ->
  string list ->
  (string * (outcome, string) result) list
(** Run the named experiments, up to [jobs] (default 1) at a time on
    separate domains ({!Parallel.map}); results come back in argument
    order, so output is byte-identical for any [jobs]. Unknown ids
    surface as [Error] without aborting the rest. Because [trace] and
    [metrics] sinks are shared mutable buffers, passing either forces
    [jobs = 1] (and [shards = 1] likewise). *)

val run_all :
  ?quick:bool ->
  ?seed:int ->
  ?fleet:fleet_opts ->
  ?vf:vf_opts ->
  ?scenario:string ->
  ?policy:string ->
  ?faults:Bm_engine.Fault.plan ->
  ?trace:Bm_engine.Trace.t ->
  ?metrics:Bm_engine.Metrics.t ->
  ?topo:Bm_fabric.Topology.t ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  outcome list
(** Every registered experiment, same parallelism contract as
    {!run_many}. *)

val print_outcome : outcome -> unit
