(** IO-Bond: the FPGA (or ASIC) bridging one compute board to the base.

    One IO-Bond instance serves one bm-guest (§3.3). It exposes a PCIe x4
    interface each for the virtio network and storage devices on the
    compute-board side, backed by a PCIe x8 interface to the
    bm-hypervisor, with a ~50 Gbit/s internal DMA engine (§3.4.3).
    Emulated PCI config accesses are forwarded through the mailbox pair
    at a constant cost of two register hops.

    Use {!attach_net}/{!attach_blk} to instantiate virtio devices whose
    queues are bridged through shadow vrings; the returned ports give the
    guest side (the virtio device) and the hypervisor side (the queue
    bridges). *)

type t

type net_port = {
  net_device : Bm_virtio.Virtio_net.t;
  net_tx : Bm_virtio.Packet.t Queue_bridge.t;
  net_rx : Bm_virtio.Packet.t Queue_bridge.t;
}

type blk_port = {
  blk_device : Bm_virtio.Virtio_blk.t;
  blk_queue : Bm_virtio.Virtio_blk.req Queue_bridge.t;
}

val create :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  profile:Profile.t ->
  ?dma_gbit_s:float ->
  unit ->
  t
(** [dma_gbit_s] overrides the profile's 50 Gbit/s engine — used by the
    DMA-sizing ablation. [obs] is threaded into the links, DMA engine,
    mailbox, bridges and attached virtio devices; emulated PCI config
    accesses additionally span on the ["iobond.cfg"] track. [fault] is
    threaded the same way; additionally the IO-Bond subscribes to
    [Firmware_wedge]: when the wedge window clears, it performs a device
    reset — every attached virtio device replays the initialisation
    status dance and its bridges {!Queue_bridge.resync} from the shadow
    rings (which live in base-server memory and survive), so in-flight
    requests are re-posted exactly once (["iobond.resets"]). *)

val profile : t -> Profile.t
val mailbox : t -> Mailbox.t
val base_link : t -> Bm_hw.Pcie.t
val net_link : t -> Bm_hw.Pcie.t
val blk_link : t -> Bm_hw.Pcie.t
val dma : t -> Bm_hw.Dma.t

val attach_net : t -> ?queue_size:int -> unit -> net_port
(** Create the virtio-net device: PCI accesses cost
    [Profile.pci_emulation_ns]; tx/rx kicks ring the bridge doorbells. *)

val attach_blk : t -> ?queue_size:int -> unit -> blk_port

val attach_vga : t -> Bm_virtio.Virtio_pci.t
(** The console device (§3.4.2 mentions a VGA device for users to reach
    the bm-guest console). Config-space only. *)

val pci_access_ns : t -> float
(** Guest-visible cost of one emulated PCI access (1.6 µs on the FPGA,
    0.4 µs projected for the ASIC). *)

val max_guest_gbit_s : t -> float
(** Upper bound of a guest's combined I/O bandwidth: the DMA engine's
    50 Gbit/s (§3.4.3). *)

val resets : t -> int
(** Device resets performed after firmware wedges. *)
