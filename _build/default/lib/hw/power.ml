type component = Cpu of Cpu_spec.t * int | Fpga of int | Fixed of string * float

(* Intel Arria 10 class device under I/O-forwarding load. *)
let fpga_tdp_w = 20.0

let component_w = function
  | Cpu (spec, sockets) -> spec.Cpu_spec.tdp_w *. float_of_int sockets
  | Fpga n -> fpga_tdp_w *. float_of_int n
  | Fixed (_, w) -> w

let total_w components = List.fold_left (fun acc c -> acc +. component_w c) 0.0 components

let watts_per_vcpu ~components ~sellable_vcpus =
  assert (sellable_vcpus > 0);
  total_w components /. float_of_int sellable_vcpus
