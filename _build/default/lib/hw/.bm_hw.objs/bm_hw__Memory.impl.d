lib/hw/memory.ml: Bm_engine Cpu_spec Float List Sim
