open Bm_engine
open Bm_guest

type pattern = Randread | Randwrite | Randrw

type result = { iops : float; avg_us : float; p99_us : float; p999_us : float; completed : int }

let run sim rng instance ?(jobs = 8) ?(block_bytes = 4096) ?(pattern = Randread) ?(iodepth = 4)
    ~duration () =
  let hist = Stats.Histogram.create ~lo:1_000.0 ~hi:1e10 ~precision:0.01 () in
  let completed = ref 0 in
  let stop_at = Sim.now sim +. duration in
  let pick_op () =
    match pattern with
    | Randread -> `Read
    | Randwrite -> `Write
    | Randrw -> if Rng.bool rng then `Read else `Write
  in
  for _ = 1 to jobs * iodepth do
    Sim.spawn sim (fun () ->
        let rec issue () =
          if Sim.clock () < stop_at then begin
            let lat = instance.Instance.blk ~op:(pick_op ()) ~bytes_:block_bytes in
            Stats.Histogram.add hist lat;
            incr completed;
            issue ()
          end
        in
        issue ())
  done;
  Sim.run ~until:(stop_at +. Simtime.ms 20.0) sim;
  {
    iops = float_of_int !completed /. Simtime.to_sec duration;
    avg_us = Stats.Histogram.mean hist /. 1e3;
    p99_us = Stats.Histogram.percentile hist 99.0 /. 1e3;
    p999_us = Stats.Histogram.percentile hist 99.9 /. 1e3;
    completed = !completed;
  }
