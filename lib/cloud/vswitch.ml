open Bm_engine
open Bm_hw
open Bm_virtio

type endpoint = { deliver : Packet.t -> unit; mutable inflight : int }

type t = {
  sim : Sim.t;
  fabric : fabric;
  cores : Cores.t;
  per_packet_ns : float;
  hop_ns : float;
  egress_capacity : int;
  local : (int, endpoint) Hashtbl.t;
  mutable forwarded : int;
  mutable dropped : int;
  mutable egress_dropped : int;
  mutable stale_dropped : int;
  mutable queued : int; (* bursts in flight between schedule and delivery *)
  obs : Obs.t;
}

and fabric = {
  fsim : Sim.t;
  nic_gbit_s : float;
  rtt_ns : float;
  routes : (int, t) Hashtbl.t; (* endpoint -> owning switch *)
  mutable next_endpoint : int;
}

let create_fabric sim ?(gbit_s = 100.0) ?(rtt_ns = 10_000.0) () =
  { fsim = sim; nic_gbit_s = gbit_s; rtt_ns; routes = Hashtbl.create 64; next_endpoint = 1 }

let create ?(obs = Obs.none) sim ~fabric ~cores ?(per_packet_ns = 300.0) ?(hop_ns = 5_000.0)
    ?(egress_capacity = 256) () =
  assert (egress_capacity > 0);
  {
    sim;
    fabric;
    cores;
    per_packet_ns;
    hop_ns;
    egress_capacity;
    local = Hashtbl.create 16;
    forwarded = 0;
    dropped = 0;
    egress_dropped = 0;
    stale_dropped = 0;
    queued = 0;
    obs;
  }

let note_queue_depth t =
  Trace.counter_opt (Obs.trace t.obs) ~track:"cloud.vswitch" "queue_depth" ~now:(Sim.now t.sim)
    (float_of_int t.queued)

let note_drop t (pkt : Packet.t) =
  t.dropped <- t.dropped + pkt.Packet.count;
  Metrics.incr_opt (Obs.metrics t.obs) ~by:(float_of_int pkt.Packet.count) "cloud.vswitch.dropped"

let note_egress_drop t (pkt : Packet.t) =
  t.dropped <- t.dropped + pkt.Packet.count;
  t.egress_dropped <- t.egress_dropped + pkt.Packet.count;
  Metrics.incr_opt (Obs.metrics t.obs) ~by:(float_of_int pkt.Packet.count)
    "cloud.vswitch.egress_dropped"

let note_stale_drop t (pkt : Packet.t) =
  t.dropped <- t.dropped + pkt.Packet.count;
  t.stale_dropped <- t.stale_dropped + pkt.Packet.count;
  Metrics.incr_opt (Obs.metrics t.obs) ~by:(float_of_int pkt.Packet.count)
    "cloud.vswitch.stale_dropped"

let register t ~deliver =
  let addr = t.fabric.next_endpoint in
  t.fabric.next_endpoint <- addr + 1;
  Hashtbl.replace t.local addr { deliver; inflight = 0 };
  Hashtbl.replace t.fabric.routes addr t;
  addr

let unregister t addr =
  Hashtbl.remove t.local addr;
  Hashtbl.remove t.fabric.routes addr

let switch_cpu t (pkt : Packet.t) =
  Cores.execute_ns t.cores (t.per_packet_ns *. float_of_int pkt.Packet.count)

(* Local delivery is asynchronous: the burst sits in the destination's
   egress queue for [hop_ns] and the handler runs decoupled from the
   sender's process. The per-destination queue is bounded (drop-tail),
   and the endpoint is re-checked at delivery time: a burst in flight
   towards an endpoint that unregisters before the hop completes is a
   drop, not a delivery to the dead endpoint. *)
let deliver_local t pkt =
  match Hashtbl.find_opt t.local pkt.Packet.dst with
  | Some ep when ep.inflight >= t.egress_capacity -> note_egress_drop t pkt
  | Some ep ->
    t.forwarded <- t.forwarded + pkt.Packet.count;
    Metrics.mark_opt (Obs.metrics t.obs) ~n:pkt.Packet.count "cloud.vswitch.pps"
      ~now:(Sim.now t.sim);
    ep.inflight <- ep.inflight + 1;
    t.queued <- t.queued + 1;
    note_queue_depth t;
    Sim.schedule t.sim ~delay:t.hop_ns (fun () ->
        ep.inflight <- ep.inflight - 1;
        t.queued <- t.queued - 1;
        note_queue_depth t;
        match Hashtbl.find_opt t.local pkt.Packet.dst with
        | Some ep' when ep' == ep -> ep.deliver pkt
        | Some _ | None -> note_stale_drop t pkt)
  | None -> note_drop t pkt

let send t pkt =
  switch_cpu t pkt;
  if Hashtbl.mem t.local pkt.Packet.dst then deliver_local t pkt
  else
    match Hashtbl.find_opt t.fabric.routes pkt.Packet.dst with
    | None -> note_drop t pkt
    | Some peer ->
      (* NIC serialisation + propagation, then the peer switch's own
         forwarding cost in a process of its own. *)
      let wire_ns = float_of_int pkt.Packet.size *. 8.0 /. t.fabric.nic_gbit_s in
      Sim.delay wire_ns;
      Sim.schedule t.sim ~delay:t.fabric.rtt_ns (fun () ->
          Sim.spawn peer.sim (fun () ->
              switch_cpu peer pkt;
              deliver_local peer pkt))

(* Hardware-switched injection (an offload engine forwarding on behalf
   of a guest): same delivery semantics, no switch CPU charged. *)
let forward_hw t pkt =
  if Hashtbl.mem t.local pkt.Packet.dst then deliver_local t pkt
  else
    match Hashtbl.find_opt t.fabric.routes pkt.Packet.dst with
    | None -> note_drop t pkt
    | Some peer ->
      let wire_ns = float_of_int pkt.Packet.size *. 8.0 /. t.fabric.nic_gbit_s in
      Sim.schedule t.sim ~delay:(wire_ns +. t.fabric.rtt_ns) (fun () ->
          Sim.spawn peer.sim (fun () -> deliver_local peer pkt))

let forwarded t = t.forwarded
let dropped t = t.dropped
let egress_dropped t = t.egress_dropped
let stale_dropped t = t.stale_dropped
