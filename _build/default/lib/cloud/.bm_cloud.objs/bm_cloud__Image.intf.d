lib/cloud/image.mli:
