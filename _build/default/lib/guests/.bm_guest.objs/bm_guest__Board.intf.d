lib/guests/board.mli: Bm_engine Bm_hw Bm_iobond Firmware
