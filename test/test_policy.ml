(* Tests for the pluggable degradation-policy engine: registry
   round-trips, the legacy ladder's rung order, the decide/confirm
   hysteresis contract (at most one stage move per window, guard
   failures discard the pending move, calm tails always walk the stage
   back to zero — as QCheck properties over seeded signal storms),
   blast-radius computation over a real scheduler, the empty-window
   exclusion in SLO window pressure, and the guard backoff cap and
   breaker tri-state the policies observe. *)

open Bm_engine
module Policy = Bm_cloud.Policy
module Slo = Bm_cloud.Slo
module Cp = Bm_cloud.Control_plane
module Scheduler = Bm_cloud.Scheduler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry () =
  check_int "four policies" 4 (List.length Policy.all);
  check_string "fixed order" "ladder,selective,tiered,congestion"
    (String.concat "," (List.map Policy.name Policy.all));
  List.iter
    (fun k ->
      check_bool (Policy.name k ^ " round-trips") true (Policy.of_name (Policy.name k) = Some k))
    Policy.all;
  check_bool "unknown name rejected" true (Policy.of_name "panic" = None)

(* ------------------------------------------------------------------ *)
(* Ladder rungs and the guard-failure discard *)

let hot ~window =
  { (Policy.calm_signals ~window) with Policy.premium_pressure = 0.5; failed_hosts = [ 0 ] }

let test_ladder_rungs () =
  let p = Policy.create Policy.Ladder in
  let expect_escalate w actions =
    (match Policy.decide p (hot ~window:w) with
    | Policy.Escalate got ->
      check_string
        (Printf.sprintf "rung %d actions" (Policy.stage p + 1))
        (String.concat ";" (List.map Policy.action_name actions))
        (String.concat ";" (List.map Policy.action_name got))
    | _ -> Alcotest.fail "expected Escalate under distress");
    Policy.confirm p ~ok:true
  in
  expect_escalate 0 [ Policy.Shed_tier Slo.Bronze ];
  expect_escalate 1 [ Policy.Host_ceiling 0.88 ];
  expect_escalate 2 [ Policy.Drain_failed ];
  check_int "fully escalated" 3 (Policy.stage p);
  (* At top stage the ladder keeps draining newly failed hosts without
     moving the stage. *)
  (match Policy.decide p (hot ~window:3) with
  | Policy.Reapply [ Policy.Drain_failed ] -> Policy.confirm p ~ok:true
  | _ -> Alcotest.fail "expected Reapply [Drain_failed] at top stage");
  check_int "reapply holds the stage" 3 (Policy.stage p);
  check_int "max stage recorded" 3 (Policy.max_stage p)

let test_guard_failure_discards () =
  List.iter
    (fun kind ->
      let p = Policy.create kind in
      (* A brownout makes the runner's guard give up: confirm ~ok:false
         must discard the pending escalation entirely. *)
      (match Policy.decide p (hot ~window:0) with
      | Policy.Escalate _ -> Policy.confirm p ~ok:false
      | _ -> Alcotest.fail (Policy.name kind ^ ": expected Escalate under distress"));
      check_int (Policy.name kind ^ ": stage unchanged after guard failure") 0 (Policy.stage p);
      check_int (Policy.name kind ^ ": nothing recorded") 0 (Policy.max_stage p);
      (* The same window's distress re-proposes next window. *)
      (match Policy.decide p (hot ~window:1) with
      | Policy.Escalate _ -> Policy.confirm p ~ok:true
      | _ -> Alcotest.fail (Policy.name kind ^ ": expected retry after discard"));
      check_int (Policy.name kind ^ ": commits once the guard succeeds") 1 (Policy.stage p))
    Policy.all

(* ------------------------------------------------------------------ *)
(* Hysteresis properties (QCheck) *)

(* Decode one generated window: a signal bundle plus whether the
   guarded actions "ran". Storm codes sweep pressure, failed hosts,
   spine queues and gold p99 through and past every threshold. *)
let storm_signals ~window code =
  let base = Policy.calm_signals ~window in
  {
    base with
    Policy.premium_pressure = float_of_int (code mod 5) *. 0.04;
    all_pressure = float_of_int (code mod 7) *. 0.05;
    failed_hosts = (if code mod 3 = 0 then [ code mod 11 ] else []);
    suspects = (if code mod 4 = 0 then [ Printf.sprintf "t%02d" (code mod 8) ] else []);
    spine_queued = code mod 13;
    spine_dropped = code * 3 mod 29;
    gold_p99_ms = float_of_int (code mod 4) *. 0.11;
    offered_pps = [ (Slo.Gold, 1e4); (Slo.Silver, 2e4); (Slo.Bronze, 3e4) ];
  }

let prop_one_stage_move_per_window =
  QCheck.Test.make ~name:"at most one stage move per window, stage within bounds" ~count:200
    QCheck.(pair (int_range 0 3) (small_list (pair (int_range 0 100) bool)))
    (fun (kind_ix, windows) ->
      let p = Policy.create (List.nth Policy.all kind_ix) in
      List.for_all
        (fun (i, (code, ok)) ->
          let before = Policy.stage p in
          (match Policy.decide p (storm_signals ~window:i code) with
          | Policy.Hold | Policy.Relax _ -> Policy.confirm p ~ok:true
          | Policy.Escalate _ | Policy.Reapply _ -> Policy.confirm p ~ok)
          ;
          let after = Policy.stage p in
          abs (after - before) <= 1 && after >= 0 && after <= 3)
        (List.mapi (fun i w -> (i, w)) windows))

let prop_calm_tail_relaxes_to_zero =
  QCheck.Test.make ~name:"a calm tail walks every policy back to stage 0" ~count:100
    QCheck.(pair (int_range 0 3) (small_list (int_range 0 100)))
    (fun (kind_ix, storm) ->
      let p = Policy.create (List.nth Policy.all kind_ix) in
      List.iteri
        (fun i code ->
          match Policy.decide p (storm_signals ~window:i code) with
          | Policy.Hold | Policy.Relax _ -> Policy.confirm p ~ok:true
          | Policy.Escalate _ | Policy.Reapply _ -> Policy.confirm p ~ok:(code mod 2 = 0))
        storm;
      (* Worst case per relax step: min_hold (2) + calm_windows (2)
         windows; 3 stages + slack. *)
      for i = 0 to 23 do
        match Policy.decide p (Policy.calm_signals ~window:(List.length storm + i)) with
        | Policy.Hold | Policy.Relax _ -> Policy.confirm p ~ok:true
        | Policy.Escalate _ | Policy.Reapply _ ->
          QCheck.Test.fail_report "escalated on calm signals"
      done;
      Policy.stage p = 0 && Policy.shed_tenants p = [])

(* ------------------------------------------------------------------ *)
(* Blast radius over a real scheduler *)

let test_blast_radius () =
  let cp = Cp.create () in
  for _ = 1 to 3 do
    ignore (Cp.add_server cp (Cp.Vm_server { sellable_threads = 8 }))
  done;
  let sched = Scheduler.create cp in
  List.iter
    (fun tn -> Scheduler.register_tenant sched (Bm_cloud.Tenant.create ~name:tn Bm_cloud.Tenant.unlimited))
    [ "g0"; "b0"; "b1"; "b2" ];
  let place name tenant vcpus =
    match Scheduler.place sched (Scheduler.request ~name ~tenant ~vcpus ()) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (name ^ ": " ^ e)
  in
  (* g0+b0 share host 0; b1 fills host 1; b2 lands on host 2. *)
  place "g0-0" "g0" 6;
  place "b0-0" "b0" 2;
  place "b1-0" "b1" 6;
  place "b2-0" "b2" 6;
  let tier_of tn = if tn = "g0" then Slo.Gold else Slo.Bronze in
  let radius ~tor_of ~distressed ~failed_hosts =
    Policy.blast_radius ~sched ~tor_of ~tier_of ~distressed ~failed_hosts
  in
  check_string "colocated bronze only" "b0"
    (String.concat ","
       (radius ~tor_of:(fun h -> h) ~distressed:[ ("g0", Slo.Gold) ] ~failed_hosts:[]));
  check_string "failed host seeds its bronze" "b0,b2"
    (String.concat ","
       (radius ~tor_of:(fun h -> h) ~distressed:[ ("g0", Slo.Gold) ] ~failed_hosts:[ 2 ]));
  check_string "rack fate-sharing pulls in the neighbour" "b0,b1"
    (String.concat ","
       (radius ~tor_of:(fun h -> h / 2) ~distressed:[ ("g0", Slo.Gold) ] ~failed_hosts:[]));
  check_string "distressed bronze seeds nothing" ""
    (String.concat ","
       (radius ~tor_of:(fun h -> h) ~distressed:[ ("b1", Slo.Bronze) ] ~failed_hosts:[]))

(* ------------------------------------------------------------------ *)
(* Window pressure: the empty-window exclusion *)

let test_window_pressure_empty_window () =
  let clock = ref 0.0 in
  let slo = Slo.create ~now:(fun () -> !clock) ~window_ns:100.0 () in
  List.iter (fun tn -> Slo.declare slo ~tenant:tn ~tier:Slo.Gold ()) [ "a"; "b"; "c" ];
  (* Window 0: only "a" resolves traffic, and it fails. Idle tenants
     must not dilute the denominator: pressure is 1/1, not 1/3. *)
  Slo.fail slo ~tenant:"a" ~bytes:100;
  Alcotest.(check (float 1e-9))
    "idle tenants excluded from the denominator" 1.0
    (Slo.window_pressure slo ~window:0 ());
  (* Window 1: nothing resolved anywhere — zero pressure, not NaN. *)
  Alcotest.(check (float 1e-9))
    "fully empty window reads zero" 0.0
    (Slo.window_pressure slo ~window:1 ());
  check_int "no misses in an empty window" 0
    (List.length (Slo.window_misses slo ~window:1 ()));
  (* Window 2: one ok, one missing — half the active tenants. *)
  clock := 250.0;
  Slo.deliver slo ~tenant:"b" ~bytes:100 ~latency_ns:10.0;
  Slo.fail slo ~tenant:"a" ~bytes:100;
  Alcotest.(check (float 1e-9))
    "only active tenants counted" 0.5
    (Slo.window_pressure slo ~window:2 ())

(* ------------------------------------------------------------------ *)
(* Guard backoff cap and breaker tri-state *)

let test_guard_backoff_cap () =
  let sim = Sim.create () in
  let policy =
    {
      Fault.Guard.default_policy with
      Fault.Guard.max_attempts = 3;
      backoff_ns = 1e6;
      backoff_mult = 4.0;
      backoff_max_ns = 1_000.0;
      circuit_threshold = 0;
    }
  in
  let g = Fault.Guard.create ~policy sim ~name:"cap" in
  let elapsed = ref nan in
  Sim.spawn sim (fun () ->
      let t0 = Sim.clock () in
      (match Fault.Guard.run g (fun () -> Error "always") with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "operation cannot succeed");
      elapsed := Sim.clock () -. t0);
  Sim.run sim;
  (* Both sleeps of the schedule (1 ms, then 4 ms) clamp to the 1 µs
     cap — including the first one. *)
  Alcotest.(check (float 1e-9)) "every backoff clamped to the cap" 2_000.0 !elapsed;
  check_int "two retries" 2 (Fault.Guard.retries g)

let test_guard_breaker_states () =
  let sim = Sim.create () in
  let policy =
    {
      Fault.Guard.default_policy with
      Fault.Guard.max_attempts = 1;
      circuit_threshold = 2;
      circuit_cooldown_ns = 500.0;
    }
  in
  let g = Fault.Guard.create ~policy sim ~name:"states" in
  let states = ref [] in
  let note () = states := Fault.Guard.state_name (Fault.Guard.state g) :: !states in
  Sim.spawn sim (fun () ->
      note ();
      ignore (Fault.Guard.run g (fun () -> Error "down"));
      note ();
      ignore (Fault.Guard.run g (fun () -> Error "down"));
      note ();
      Sim.delay 600.0;
      note ();
      (match Fault.Guard.run g (fun () -> Ok ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("probe should pass: " ^ e));
      note ());
  Sim.run sim;
  check_string "closed -> open -> half_open -> closed"
    "closed,closed,open,half_open,closed"
    (String.concat "," (List.rev !states));
  check_int "one trip recorded" 1 (Fault.Guard.circuit_opens g)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "policy.engine",
      [
        Alcotest.test_case "registry round-trips" `Quick test_registry;
        Alcotest.test_case "legacy ladder rungs" `Quick test_ladder_rungs;
        Alcotest.test_case "guard failure discards pending" `Quick test_guard_failure_discards;
        Alcotest.test_case "blast radius" `Quick test_blast_radius;
        Alcotest.test_case "window pressure empty-window exclusion" `Quick
          test_window_pressure_empty_window;
      ] );
    ( "policy.hysteresis.prop",
      List.map QCheck_alcotest.to_alcotest
        [ prop_one_stage_move_per_window; prop_calm_tail_relaxes_to_zero ] );
    ( "policy.guard",
      [
        Alcotest.test_case "backoff cap" `Quick test_guard_backoff_cap;
        Alcotest.test_case "breaker tri-state" `Quick test_guard_breaker_states;
      ] );
  ]
