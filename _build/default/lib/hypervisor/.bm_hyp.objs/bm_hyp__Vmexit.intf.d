lib/hypervisor/vmexit.mli: Format
