lib/workloads/sockperf.ml: Bm_engine Bm_guest Bm_virtio Instance Packet Sim Stats
