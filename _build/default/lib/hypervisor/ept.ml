open Bm_engine

let accesses_per_ns = 0.5

let dilation_factor ?obs tlb ~virtualized ~working_set ~locality =
  let per_access =
    Bm_hw.Tlb.avg_overhead_ns tlb ~virtualized ~working_set_bytes:working_set ~locality
  in
  let factor = 1.0 +. (per_access *. accesses_per_ns) in
  (match obs with
  | Some obs when virtualized ->
    (* Factors cluster just above 1, so the default histogram floor of
       1 ns would collapse them into one bucket. *)
    Metrics.observe_opt (Obs.metrics obs) ~lo:0.5 ~hi:64.0 ~precision:0.001 "hyp.ept.dilation"
      factor
  | _ -> ());
  factor

let vm_overhead tlb ~working_set ~locality =
  dilation_factor tlb ~virtualized:true ~working_set ~locality
  /. dilation_factor tlb ~virtualized:false ~working_set ~locality
  -. 1.0
