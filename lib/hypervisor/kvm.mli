(** The vm-hypervisor: a KVM/QEMU-class host (§2, Fig. 2 left).

    A host reserves a slice of its hardware threads for the hypervisor
    and host OS (8 HT, §3.5) — that slice runs the vhost-user poll-mode
    backends and the DPDK vswitch. Guests get dedicated vCPU pools
    (high-end instances are pinned, §2.1) but still pay the
    virtualization mechanisms: trapped config accesses, EPT page walks on
    memory-intensive work, interrupt injection on the I/O completion
    path, extra CPU copies on the storage path, and host-task
    preemption. *)

type host

type params = {
  cpu_overhead : float;  (** residual dilation of pure CPU work (world switches) *)
  mem_tax : float;  (** memory-bandwidth tax under load (§4.2: vm ≈ 98%) *)
  vhost_pkt_ns : float;  (** vhost-user per-packet service cost on host cores *)
  vblk_req_ns : float;  (** vhost-blk per-request service cost *)
  vblk_sched_ns : float;
      (** host block-layer + event-loop scheduling latency per request
          (eventfd wake-up on submit, completion softirq on the way back) *)
  vblk_hiccup_p : float;  (** probability of a host block-layer stall per request *)
  vblk_hiccup_scale_ns : float;  (** Pareto scale of such a stall *)
  copy_gb_s : float;  (** CPU memcpy bandwidth for the storage data copies *)
  injection_ns : float;  (** guest-side cost of one injected interrupt (exit+entry) *)
}

val default_params : params

val create_host :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  Bm_engine.Rng.t ->
  fabric:Bm_cloud.Vswitch.fabric ->
  storage:Bm_cloud.Blockstore.t ->
  ?spec:Bm_hw.Cpu_spec.t ->
  ?sockets:int ->
  ?params:params ->
  ?batch:int ->
  ?vfs:int ->
  ?vf_queues:int ->
  unit ->
  host
(** Default host: two sockets of Xeon E5-2682 v4 (the §4.2 comparison
    server), 8 HT reserved for the hypervisor. With [fault], a
    [Pmd_crash] event kills the vhost worker threads for its dead-time;
    they respawn and drain the shared-memory rings from where they left
    off (["hyp.vm.vhost_crashes"] / ["hyp.vm.vhost_respawns"]).

    [batch] (default 1) is the vhost poll-tick burst: each backend drain
    pulls up to [batch] descriptors per worker fiber, charging the same
    per-descriptor simulated costs but one host-side scheduler event per
    burst. At the default the drain stays hint-driven and the event
    schedule is bit-identical to the unbatched engine; at [batch > 1]
    the worker sleeps a 1 µs poll tick between bursts so descriptors
    accumulate into them. Raises [Invalid_argument] if [batch < 1].

    [vfs] (default 8) and [vf_queues] (default 2) size the host's
    VFIO-capable SR-IOV NIC (an ASIC part), created on first use by a
    VM whose [vm_config.datapath] asks for direct assignment. *)

val vswitch : host -> Bm_cloud.Vswitch.t
val sellable_threads : host -> int
val service_cores : host -> Bm_hw.Cores.t

(** {2 SR-IOV pool} *)

val vf_capacity : host -> int
val vf_free : host -> int

val vf_fallbacks : host -> int
(** [Sliced] VMs that found the pool exhausted and fell back to vhost. *)

val vf_pool_device : host -> Bm_iobond.Vf.dev option

type vm_config = {
  name : string;
  vcpus : int;
  mem_gb : int;
  pinning : Preempt.mode;
  host_load : float;  (** busyness of the host's service cores *)
  net_limits : Bm_cloud.Limits.net;
  blk_limits : Bm_cloud.Limits.blk;
  nested : bool;  (** run the user's own hypervisor inside (§2.3) *)
  halt_polling : bool;
      (** KVM's halt-polling (on by default, as deployed): polls for wake
          conditions before descheduling an idle vCPU, avoiding a host
          scheduling round trip on every interrupt delivery (§5) *)
  datapath : Bm_iobond.Vf.datapath;
      (** net path: [Vring] (default) is virtio/vhost; [Passthrough]
          pins a whole SR-IOV device (VFIO), [Sliced] one VF of the
          host NIC — both skip the vhost workers, tx doorbells stop
          exiting, and completions inject directly. Falls back to
          [Vring] when the pool is exhausted (see {!vf_fallbacks}). *)
}

val default_config : name:string -> vm_config
(** 32 vCPUs, 64 GB, exclusive pinning, cloud-standard limits. *)

val create_vm : host -> vm_config -> Bm_guest.Instance.t
(** Provision a vm-guest: builds its vCPU pool, virtio devices, vhost
    backend threads, and returns the uniform instance handle. *)

val exit_counters : host -> name:string -> Vmexit.counters option
(** Per-VM exit telemetry. *)

val preempt_of : host -> name:string -> Preempt.t option

val vm_datapath : host -> name:string -> Bm_iobond.Vf.datapath option
(** The net datapath the VM actually got (after any fallback). *)

val vm_vf : host -> name:string -> Bm_iobond.Vf.vf option
(** The VM's assigned virtual function, for hot-reassignment. *)
