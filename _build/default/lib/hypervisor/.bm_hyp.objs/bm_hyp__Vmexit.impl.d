lib/hypervisor/vmexit.ml: Array Bm_engine Format List Metrics Obs Trace
