test/test_iobond.ml: Alcotest Bm_engine Bm_hw Bm_iobond Bm_virtio Float Gen Iobond List Mailbox Packet Profile QCheck QCheck_alcotest Queue_bridge Sim Simtime Virtio_blk Virtio_net Virtio_pci
