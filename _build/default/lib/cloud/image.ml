type t = {
  name : string;
  bootloader_bytes : int;
  kernel_bytes : int;
  initrd_bytes : int;
  kernel_version : string;
}

let make ~name ?(bootloader_bytes = 1 lsl 20) ?(kernel_bytes = 6 lsl 20) ?(initrd_bytes = 20 lsl 20)
    ~kernel_version () =
  { name; bootloader_bytes; kernel_bytes; initrd_bytes; kernel_version }

let centos7 = make ~name:"centos-7" ~kernel_version:"3.10.0-514.26.2.el7" ()

let total_boot_bytes t = t.bootloader_bytes + t.kernel_bytes + t.initrd_bytes

module Store = struct
  type image = t
  type nonrec t = (string, t) Hashtbl.t

  let create () = Hashtbl.create 8
  let add t image = Hashtbl.replace t image.name image
  let find t name = Hashtbl.find_opt t name
  let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t []
end
