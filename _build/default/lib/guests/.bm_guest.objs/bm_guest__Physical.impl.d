lib/guests/physical.ml: Blockstore Bm_cloud Bm_engine Bm_hw Bm_virtio Cores Cpu_spec Guest_os Instance Memory Sim Tlb Vswitch
