lib/engine/token_bucket.mli:
