(** The bare-metal instance catalogue (Table 3).

    Instance families differ in the compute board's CPU; the last column
    is the maximum number of such boards one BM-Hive server takes, which
    "depends on the server's power supply, internal space, and I/O
    performance" (§4.1). Rate limits follow §4.1/§4.3. *)

type t = {
  name : string;
  cpu : Bm_hw.Cpu_spec.t;
  sockets : int;
  vcpus : int;
  mem_gb : int;
  net_pps : float;
  net_gbit_s : float;
  storage_iops : float;
  storage_mb_s : float;
  max_boards_per_server : int;
}

val catalogue : t list

val find : string -> t option

val eval_instance : t
(** The Xeon E5-2682 v4 instance every §4 experiment uses. *)

val high_frequency : t
(** The Xeon E3-1240 v6 instance (31%% faster single-thread, §4.2). *)

val net_limits : t -> Bm_cloud.Limits.net
val blk_limits : t -> Bm_cloud.Limits.blk

val pp : Format.formatter -> t -> unit
