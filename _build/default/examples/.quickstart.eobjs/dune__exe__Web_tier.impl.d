examples/web_tier.ml: Bm_guest Bm_workload Instance List Nginx Printf Testbed
