lib/hw/memory.mli: Bm_engine Cpu_spec
