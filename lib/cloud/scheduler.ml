open Bm_engine
module Vf = Bm_iobond.Vf

type request = {
  name : string;
  tenant : string;
  vcpus : int;
  mem_gb : int;
  prefer : Control_plane.substrate option;
  group : string option;
  datapath : Vf.datapath;
}

let request ~name ~tenant ~vcpus ?mem_gb ?prefer ?group ?(datapath = Vf.Vring) () =
  if vcpus <= 0 then invalid_arg "Scheduler.request: vcpus must be positive";
  let mem_gb = match mem_gb with Some m -> m | None -> 2 * vcpus in
  { name; tenant; vcpus; mem_gb; prefer; group; datapath }

type guest = {
  req : request;
  mutable placement : Control_plane.placement option;
  mutable granted : Vf.datapath option;
      (* the datapath the current placement actually got: [Some Vring]
         for a VF request that hit an exhausted host (fell over to the
         shadow-vring path), [None] while unplaced *)
}

type t = {
  cp : Control_plane.t;
  strategy : Control_plane.strategy;
  metrics : Metrics.t option;
  tenants : (string, Tenant.t) Hashtbl.t;
  guests : (string, guest) Hashtbl.t;
  groups : (string, (int, int) Hashtbl.t) Hashtbl.t;  (* group -> host -> members *)
  vfs_per_host : int;
  vf_caps : (int, int) Hashtbl.t;  (* per-host override of [vfs_per_host] *)
  vf_used : (int, int) Hashtbl.t;  (* host -> VFs handed out *)
  mutable vf_fallback_count : int;
  mutable classifier : request -> string option;
      (* placement class per request, for per-class admission ceilings *)
}

let create ?(obs = Obs.none) ?(strategy = Control_plane.First_fit) ?(vfs_per_host = 8) cp =
  if vfs_per_host < 0 then invalid_arg "Scheduler.create: vfs_per_host must be >= 0";
  {
    cp;
    strategy;
    metrics = Obs.metrics obs;
    tenants = Hashtbl.create 16;
    guests = Hashtbl.create 1024;
    groups = Hashtbl.create 64;
    vfs_per_host;
    vf_caps = Hashtbl.create 16;
    vf_used = Hashtbl.create 64;
    vf_fallback_count = 0;
    classifier = (fun _ -> None);
  }

let control_plane t = t.cp
let set_classifier t f = t.classifier <- f

let register_tenant t tenant =
  let name = Tenant.name tenant in
  if Hashtbl.mem t.tenants name then
    invalid_arg ("Scheduler.register_tenant: duplicate tenant " ^ name);
  Hashtbl.replace t.tenants name tenant

let tenant t name = Hashtbl.find_opt t.tenants name

let tenants t =
  Hashtbl.fold (fun _ tn acc -> tn :: acc) t.tenants []
  |> List.sort (fun a b -> compare (Tenant.name a) (Tenant.name b))

(* --- anti-affinity bookkeeping ------------------------------------- *)

let group_hosts t = function
  | None -> []
  | Some g -> (
    match Hashtbl.find_opt t.groups g with
    | None -> []
    | Some hosts ->
      Hashtbl.fold (fun host n acc -> if n > 0 then host :: acc else acc) hosts []
      |> List.sort compare)

let group_add t group host =
  match group with
  | None -> ()
  | Some g ->
    let hosts =
      match Hashtbl.find_opt t.groups g with
      | Some h -> h
      | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.replace t.groups g h;
        h
    in
    Hashtbl.replace hosts host (1 + Option.value ~default:0 (Hashtbl.find_opt hosts host))

let group_remove t group host =
  match group with
  | None -> ()
  | Some g -> (
    match Hashtbl.find_opt t.groups g with
    | None -> ()
    | Some hosts -> (
      match Hashtbl.find_opt hosts host with
      | None -> ()
      | Some 1 -> Hashtbl.remove hosts host
      | Some n -> Hashtbl.replace hosts host (n - 1)))

(* --- VF accounting --------------------------------------------------- *)

(* The scheduler counts virtual functions the way it counts vCPUs: a
   per-host budget, spent at placement time. It never touches the
   hypervisor's pool device — it only promises a datapath; the
   hypervisor grants the actual function when the guest is provisioned
   (and applies the same fallback if reality disagrees). *)

let vf_capacity t ~server =
  match Hashtbl.find_opt t.vf_caps server with Some c -> c | None -> t.vfs_per_host

let set_vf_capacity t ~server ~vfs =
  if vfs < 0 then invalid_arg "Scheduler.set_vf_capacity: vfs must be >= 0";
  Hashtbl.replace t.vf_caps server vfs

let vf_in_use t ~server = Option.value ~default:0 (Hashtbl.find_opt t.vf_used server)
let vf_free t ~server = vf_capacity t ~server - vf_in_use t ~server
let vf_fallbacks t = t.vf_fallback_count

(* Decide the datapath a fresh placement on [server] gets, spending a
   VF credit when the request wants one and the host still has one. *)
let vf_grant t g server =
  let granted =
    match g.req.datapath with
    | Vf.Vring -> Vf.Vring
    | (Vf.Passthrough | Vf.Sliced) as want ->
      if vf_free t ~server > 0 then (
        Hashtbl.replace t.vf_used server (1 + vf_in_use t ~server);
        Metrics.incr_opt t.metrics "cloud.sched.vf_granted";
        want)
      else (
        t.vf_fallback_count <- t.vf_fallback_count + 1;
        Metrics.incr_opt t.metrics "cloud.sched.vf_fallbacks";
        Vf.Vring)
  in
  g.granted <- Some granted

(* Return the credit when a guest leaves [server] (release, drain,
   rebalance move). *)
let vf_revoke t g server =
  (match g.granted with
  | Some (Vf.Passthrough | Vf.Sliced) ->
    Hashtbl.replace t.vf_used server (max 0 (vf_in_use t ~server - 1))
  | Some Vf.Vring | None -> ());
  g.granted <- None

(* --- placement ------------------------------------------------------ *)

(* First-fit-decreasing order: biggest request first so the small ones
   fill the gaps; names break ties, so the order — and therefore the
   whole assignment — is a function of the request list alone. *)
let ffd_order reqs =
  List.stable_sort
    (fun a b ->
      match compare b.vcpus a.vcpus with 0 -> compare a.name b.name | c -> c)
    reqs

let try_place_cp t req ~substrates =
  let avoid = group_hosts t req.group in
  let rec go = function
    | [] -> Error "no capacity for request"
    | prefer :: rest -> (
      match
        Control_plane.place t.cp ~name:req.name ~vcpus:req.vcpus ?prefer
          ~strategy:t.strategy ~avoid ?cls:(t.classifier req) ~image:Image.centos7 ()
      with
      | Ok p -> Ok p
      | Error e -> if rest = [] then Error e else go rest)
  in
  go substrates

let substrates_of req =
  match req.prefer with Some s -> [ Some s ] | None -> [ None ]

let place t req =
  if Hashtbl.mem t.guests req.name then Error (req.name ^ " already scheduled")
  else
    match Hashtbl.find_opt t.tenants req.tenant with
    | None -> Error ("unknown tenant " ^ req.tenant)
    | Some tn -> (
      match Tenant.admit tn ~vcpus:req.vcpus with
      | Error e ->
        Metrics.incr_opt t.metrics "cloud.sched.rejected";
        Error e
      | Ok () -> (
        match try_place_cp t req ~substrates:(substrates_of req) with
        | Ok p ->
          let g = { req; placement = Some p; granted = None } in
          Hashtbl.replace t.guests req.name g;
          group_add t req.group p.Control_plane.server;
          vf_grant t g p.Control_plane.server;
          Metrics.incr_opt t.metrics "cloud.sched.placed";
          Ok p
        | Error e ->
          Tenant.release tn ~vcpus:req.vcpus;
          Metrics.incr_opt t.metrics "cloud.sched.rejected";
          Error e))

let place_batch t reqs =
  List.map (fun req -> (req.name, place t req)) (ffd_order reqs)

let release t name =
  match Hashtbl.find_opt t.guests name with
  | None -> ()
  | Some g ->
    (match g.placement with
    | Some p ->
      group_remove t g.req.group p.Control_plane.server;
      vf_revoke t g p.Control_plane.server;
      Control_plane.release t.cp name
    | None -> ());
    (match Hashtbl.find_opt t.tenants g.req.tenant with
    | Some tn -> Tenant.release tn ~vcpus:g.req.vcpus
    | None -> ());
    Hashtbl.remove t.guests name

(* --- evacuation and rebalance --------------------------------------- *)

(* Re-place one already-admitted guest (its quota is held); the victim's
   own substrate is tried first, then the other — the cold-migration
   fallback of {!Control_plane.evacuate}. *)
let replace_guest t g ~first =
  let substrates =
    match first with
    | Some Control_plane.Bare_metal -> [ Some Control_plane.Bare_metal; Some Control_plane.Virtual ]
    | Some Control_plane.Virtual -> [ Some Control_plane.Virtual; Some Control_plane.Bare_metal ]
    | None -> substrates_of g.req
  in
  match try_place_cp t g.req ~substrates with
  | Ok p ->
    g.placement <- Some p;
    group_add t g.req.group p.Control_plane.server;
    vf_grant t g p.Control_plane.server;
    Ok p
  | Error e -> Error e

let drain t ~server =
  Control_plane.fail_server t.cp server;
  let victims =
    Hashtbl.fold
      (fun _ g acc ->
        match g.placement with
        | Some p when p.Control_plane.server = server -> g :: acc
        | Some _ | None -> acc)
      t.guests []
    |> List.map (fun g -> g.req)
    |> ffd_order
    |> List.map (fun req -> Hashtbl.find t.guests req.name)
  in
  (* Release every victim first so the re-placement sees the drained
     host's anti-affinity slots as free. *)
  let old_substrate =
    List.map
      (fun g ->
        let p = Option.get g.placement in
        group_remove t g.req.group p.Control_plane.server;
        vf_revoke t g p.Control_plane.server;
        Control_plane.release t.cp g.req.name;
        g.placement <- None;
        (g, p.Control_plane.substrate))
      victims
  in
  List.map
    (fun (g, substrate) ->
      let result = replace_guest t g ~first:(Some substrate) in
      (match result with
      | Ok _ -> Metrics.incr_opt t.metrics "cloud.sched.evacuated"
      | Error _ -> Metrics.incr_opt t.metrics "cloud.sched.stranded");
      (g.req.name, result))
    old_substrate

let stranded_guests t =
  Hashtbl.fold (fun _ g acc -> if g.placement = None then g :: acc else acc) t.guests []
  |> List.map (fun g -> g.req)
  |> ffd_order
  |> List.map (fun req -> Hashtbl.find t.guests req.name)

let retry_stranded t =
  List.map
    (fun g ->
      let result = replace_guest t g ~first:None in
      (match result with
      | Ok _ -> Metrics.incr_opt t.metrics "cloud.sched.evacuated"
      | Error _ -> ());
      (g.req.name, result))
    (stranded_guests t)

let rebalance t ?(max_moves = 64) ?(band = 0.05) () =
  let ids = Control_plane.server_ids t.cp in
  let util id = Control_plane.server_utilization t.cp id in
  let mean =
    match ids with
    | [] -> 0.0
    | ids -> List.fold_left (fun acc id -> acc +. util id) 0.0 ids /. float_of_int (List.length ids)
  in
  let ceiling = mean +. band in
  let moves = ref [] and budget = ref max_moves in
  List.iter
    (fun donor ->
      let continue_ = ref true in
      while !continue_ && !budget > 0 && util donor > ceiling do
        (* Smallest guest first: many cheap moves beat one big one. *)
        let candidates =
          Hashtbl.fold
            (fun _ g acc ->
              match g.placement with
              | Some p when p.Control_plane.server = donor -> g :: acc
              | Some _ | None -> acc)
            t.guests []
          |> List.sort (fun a b ->
                 match compare a.req.vcpus b.req.vcpus with
                 | 0 -> compare a.req.name b.req.name
                 | c -> c)
        in
        match candidates with
        | [] -> continue_ := false
        | g :: _ -> (
          let p = Option.get g.placement in
          group_remove t g.req.group p.Control_plane.server;
          vf_revoke t g p.Control_plane.server;
          Control_plane.release t.cp g.req.name;
          g.placement <- None;
          let avoid = donor :: group_hosts t g.req.group in
          match
            Control_plane.place t.cp ~name:g.req.name ~vcpus:g.req.vcpus
              ~prefer:p.Control_plane.substrate ~strategy:Control_plane.Spread ~avoid
              ?cls:(t.classifier g.req) ~image:Image.centos7 ()
          with
          | Ok p' ->
            g.placement <- Some p';
            group_add t g.req.group p'.Control_plane.server;
            vf_grant t g p'.Control_plane.server;
            Metrics.incr_opt t.metrics "cloud.sched.moves";
            moves := (g.req.name, donor, p'.Control_plane.server) :: !moves;
            decr budget
          | Error _ ->
            (* Nowhere better — put it back where it was and stop
               draining this donor. *)
            (match replace_guest t g ~first:(Some p.Control_plane.substrate) with
            | Ok _ -> ()
            | Error _ -> Metrics.incr_opt t.metrics "cloud.sched.stranded");
            continue_ := false)
      done)
    ids;
  List.rev !moves

(* --- views ----------------------------------------------------------- *)

let lookup t name =
  match Hashtbl.find_opt t.guests name with Some g -> g.placement | None -> None

let request_of t name =
  match Hashtbl.find_opt t.guests name with Some g -> Some g.req | None -> None

let granted_datapath t name =
  match Hashtbl.find_opt t.guests name with Some g -> g.granted | None -> None

let check_vf_accounting t =
  (* Recompute per-host VF consumption from the placed guests and
     compare with the incremental counters. *)
  let truth = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ g ->
      match (g.placement, g.granted) with
      | Some p, Some (Vf.Passthrough | Vf.Sliced) ->
        let s = p.Control_plane.server in
        Hashtbl.replace truth s (1 + Option.value ~default:0 (Hashtbl.find_opt truth s))
      | Some _, (Some Vf.Vring | None) -> ()
      | None, Some _ -> failwith "Scheduler: unplaced guest holds a VF grant"
      | None, None -> ())
    t.guests;
  Control_plane.server_ids t.cp
  |> List.iter (fun server ->
         let counted = vf_in_use t ~server in
         let actual = Option.value ~default:0 (Hashtbl.find_opt truth server) in
         if counted <> actual then
           failwith
             (Printf.sprintf "Scheduler: host %d counts %d VFs in use, ground truth %d" server
                counted actual);
         if counted > vf_capacity t ~server then
           failwith
             (Printf.sprintf "Scheduler: host %d has %d VFs in use over capacity %d" server
                counted (vf_capacity t ~server)))

let assignments t =
  Hashtbl.fold
    (fun name g acc -> match g.placement with Some p -> (name, p) :: acc | None -> acc)
    t.guests []
  |> List.sort compare

let stranded t =
  Hashtbl.fold (fun name g acc -> if g.placement = None then name :: acc else acc) t.guests []
  |> List.sort compare

let guest_count t = Hashtbl.length t.guests

let guests_on t ~server =
  Hashtbl.fold
    (fun name g acc ->
      match g.placement with
      | Some p when p.Control_plane.server = server -> name :: acc
      | Some _ | None -> acc)
    t.guests []
  |> List.sort compare

(* Sorted-distinct helper for the blast-radius views below. *)
let sort_uniq_list l = List.sort_uniq compare l

let hosts_of_tenant t ~tenant =
  Hashtbl.fold
    (fun _ g acc ->
      match g.placement with
      | Some p when g.req.tenant = tenant -> p.Control_plane.server :: acc
      | Some _ | None -> acc)
    t.guests []
  |> sort_uniq_list

let tenants_on_host t ~server =
  Hashtbl.fold
    (fun _ g acc ->
      match g.placement with
      | Some p when p.Control_plane.server = server -> g.req.tenant :: acc
      | Some _ | None -> acc)
    t.guests []
  |> sort_uniq_list

let occupancy t =
  let counts = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ g ->
      match g.placement with
      | Some p ->
        Hashtbl.replace counts p.Control_plane.server
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.Control_plane.server))
      | None -> ())
    t.guests;
  List.map
    (fun id -> (id, Option.value ~default:0 (Hashtbl.find_opt counts id)))
    (Control_plane.server_ids t.cp)

let anti_affinity_violations t =
  let by_group_host = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ g ->
      match (g.req.group, g.placement) with
      | Some grp, Some p ->
        let key = (grp, p.Control_plane.server) in
        Hashtbl.replace by_group_host key
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_group_host key))
      | _ -> ())
    t.guests;
  Hashtbl.fold (fun (grp, host) n acc -> if n > 1 then (grp, host) :: acc else acc) by_group_host []
  |> List.sort compare
