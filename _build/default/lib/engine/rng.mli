(** Deterministic, splittable pseudo-random number generator.

    Implemented as SplitMix64. Every simulation component owns its own
    stream (obtained by {!split}), so adding a component or reordering
    draws in one component never perturbs the random sequence seen by
    another — a property the reproduction experiments rely on. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t

val bits64 : t -> int64
(** [bits64 t] is the next 64 uniformly random bits. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : t -> median:float -> sigma:float -> float
(** Log-normal parameterised by its median ([exp mu]) and shape [sigma]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto with minimum [scale] and tail index [shape] (> 0). *)

val bernoulli : t -> p:float -> bool
(** [true] with probability [p]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[0, n)] with exponent [s], by inversion on a
    precomputed-free approximation (rejection-inversion). Suitable for the
    skewed key popularity used by the Redis workload. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
