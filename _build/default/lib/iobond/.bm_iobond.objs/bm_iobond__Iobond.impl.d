lib/iobond/iobond.ml: Bm_engine Bm_hw Bm_virtio Dma Mailbox Metrics Obs Option Packet Pcie Profile Queue_bridge Sim Trace Virtio_blk Virtio_net Virtio_pci
