lib/guests/guest_os.mli: Bm_virtio
