lib/hypervisor/live_migration.mli: Bm_engine Bm_guest
