(* bmhive — command-line front end for the BM-Hive reproduction.

   Subcommands:
     list                      experiment registry
     run <id>... [--quick]     regenerate tables/figures
     catalogue                 Table 3 instance families
     demo                      provision + boot + a little traffic
*)

open Cmdliner

let quick_arg =
  let doc = "Run at reduced scale (CI-sized populations and durations)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let seed_arg =
  let doc = "Deterministic seed for every simulation." in
  Arg.(value & opt int 2020 & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc =
    "Record the datapath as Chrome trace_event JSON into $(docv) (open in chrome://tracing \
     or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Collect datapath metrics and print the summary table after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let faults_arg =
  let doc =
    "Arm a deterministic fault plan in every testbed, as $(i,SEED):$(i,SPEC) where SPEC is \
     $(b,default) or comma-separated $(i,kind)=$(i,count) pairs (kinds: link_down, dma_stall, \
     mailbox_drop, firmware_wedge, pmd_crash, server_failure, fabric_link_down, vf_stall, \
     vf_reassign_timeout), optionally with horizon=$(i,NS). Example: \
     42:link_down=2,firmware_wedge=1."
  in
  let fault_conv =
    Arg.conv ~docv:"SEED:SPEC"
      ( (fun s -> match Bm_engine.Fault.parse_spec s with Ok p -> Ok p | Error e -> Error (`Msg e)),
        fun ppf p -> Format.pp_print_string ppf (Bm_engine.Fault.render_plan p) )
  in
  Arg.(value & opt (some fault_conv) None & info [ "faults" ] ~docv:"SEED:SPEC" ~doc)

let scenario_arg =
  let doc =
    "Game-day scenario timeline for the $(b,game_day) experiment, as $(i,SEED):$(i,SPEC) where \
     SPEC is $(b,default) or comma-separated $(i,key)=$(i,value) pairs (keys: hosts, links, \
     congest, evac, brownout, vfstall, vfwedge, ramp=$(i,lo)-$(i,hi), horizon=$(i,NS)). Example: \
     42:hosts=2,links=1,congest=1,evac=1. Other experiments ignore it."
  in
  let scenario_conv =
    Arg.conv ~docv:"SEED:SPEC"
      ( (fun s ->
          match Bmhive.Scenario.parse_spec s with Ok _ -> Ok s | Error e -> Error (`Msg e)),
        Format.pp_print_string )
  in
  Arg.(value & opt (some scenario_conv) None & info [ "scenario" ] ~docv:"SEED:SPEC" ~doc)

let policy_arg =
  let doc =
    "Degradation policy the $(b,game_day) experiment closes the loop with: $(b,ladder) \
     (default, the legacy three-stage ladder), $(b,selective) (blast-radius-aware shedding), \
     $(b,tiered) (per-tier admission ceilings) or $(b,congestion) (spine-queue / gold-p99 \
     aware). The $(b,policy_race) experiment runs all four regardless."
  in
  let policy_conv =
    Arg.conv ~docv:"NAME"
      ( (fun s ->
          match Bm_cloud.Policy.of_name s with
          | Some _ -> Ok s
          | None ->
            Error
              (`Msg
                (Printf.sprintf "unknown policy %S (try: %s)" s
                   (String.concat ", " (List.map Bm_cloud.Policy.name Bm_cloud.Policy.all))))),
        Format.pp_print_string )
  in
  Arg.(value & opt (some policy_conv) None & info [ "policy" ] ~docv:"NAME" ~doc)

let topology_arg =
  let doc =
    "Fabric topology for the cross-host experiments ($(b,xhost_rr), $(b,xhost_stream), \
     $(b,xhost_migrate)): the preset $(b,two_host), or comma-separated $(i,key)=$(i,value) \
     pairs (keys: hosts, tors, spines, host_gbit, spine_gbit, host_lat_us, spine_lat_us, \
     queue). Example: hosts=4,tors=2,spines=2,spine_gbit=10."
  in
  let topo_conv =
    Arg.conv ~docv:"SPEC"
      ( (fun s ->
          match Bm_fabric.Topology.parse_spec s with Ok t -> Ok t | Error e -> Error (`Msg e)),
        fun ppf t -> Format.pp_print_string ppf (Bm_fabric.Topology.render t) )
  in
  Arg.(value & opt (some topo_conv) None & info [ "topology" ] ~docv:"SPEC" ~doc)

let hosts_arg =
  let doc = "Fleet size for the fleet-scale experiments ($(b,fleet_scale)): number of hosts." in
  Arg.(value & opt (some int) None & info [ "hosts" ] ~docv:"N" ~doc)

let guests_arg =
  let doc = "Guest population for the fleet-scale experiments." in
  Arg.(value & opt (some int) None & info [ "guests" ] ~docv:"N" ~doc)

let tenants_arg =
  let doc = "Tenant count for the fleet-scale experiments." in
  Arg.(value & opt (some int) None & info [ "tenants" ] ~docv:"N" ~doc)

let vfs_arg =
  let doc =
    "Virtual functions per SR-IOV device/pool in the VF experiments ($(b,vf_scale), \
     $(b,vf_reassign), $(b,vf_ablation)); each experiment's default otherwise."
  in
  Arg.(value & opt (some int) None & info [ "vfs" ] ~docv:"N" ~doc)

let datapath_arg =
  let doc =
    "Restrict the $(b,vf_ablation) experiment to one guest datapath: $(b,vring) (the \
     shadow-vring poll loop), $(b,passthrough) (whole-device assignment) or $(b,vf) (one \
     sliced virtual function); all three when omitted."
  in
  let dp_conv =
    Arg.conv ~docv:"NAME"
      ( (fun s ->
          match Bm_iobond.Vf.datapath_of_name s with
          | Some d -> Ok d
          | None ->
            Error (`Msg (Printf.sprintf "unknown datapath %S (try: vring, passthrough, vf)" s))),
        fun ppf d -> Format.pp_print_string ppf (Bm_iobond.Vf.datapath_name d) )
  in
  Arg.(value & opt (some dp_conv) None & info [ "datapath" ] ~docv:"NAME" ~doc)

let jobs_arg =
  let doc =
    "Run up to $(docv) experiment cells concurrently on separate domains (0 = one per \
     recommended core). Results are joined in argument order, so output is byte-identical \
     for any value. Ignored (forced to 1) when $(b,--trace) or $(b,--metrics) is active."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Intra-run parallelism on up to $(docv) domains (0 = one per recommended core): \
     $(b,fleet_scale) partitions its east-west flow phase across that many fabric shards, \
     $(b,game_day) and $(b,policy_race) race their independent scenario arms. Output is \
     byte-identical for any value. Ignored (forced to 1) when $(b,--trace) or \
     $(b,--metrics) is active."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-10s %-9s %s\n" s.Bmhive.Experiments.id s.Bmhive.Experiments.paper_ref
          s.Bmhive.Experiments.title)
      Bmhive.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List every reproducible experiment (one per table/figure).")
    Term.(const run $ const ())

(* --- run ------------------------------------------------------------ *)

let run_cmd =
  let ids_arg =
    let doc = "Experiment ids (see $(b,list)); all when omitted." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run quick seed scenario policy faults topo hosts guests tenants vfs datapath trace_file
      metrics_wanted jobs shards ids =
    if jobs < 0 then invalid_arg "--jobs must be non-negative";
    if shards < 0 then invalid_arg "--shards must be non-negative";
    let jobs = if jobs = 0 then Bmhive.Parallel.default_jobs () else jobs in
    let shards = if shards = 0 then Bmhive.Parallel.default_jobs () else shards in
    let fleet =
      Bmhive.Experiments.{ fleet_hosts = hosts; fleet_guests = guests; fleet_tenants = tenants }
    in
    let vf = Bmhive.Experiments.{ vf_count = vfs; vf_datapath = datapath } in
    let trace = Option.map (fun _ -> Bm_engine.Trace.create ()) trace_file in
    let metrics = if metrics_wanted then Some (Bm_engine.Metrics.create ()) else None in
    let targets = if ids = [] then Bmhive.Experiments.ids () else ids in
    let finish () =
      (match metrics with
      | Some m when not (Bm_engine.Metrics.is_empty m) ->
        print_endline "";
        print_endline (Bmhive.Report.metrics_table ~title:"datapath metrics" m)
      | Some _ | None -> ());
      match (trace_file, trace) with
      | Some file, Some t ->
        let oc = open_out file in
        output_string oc (Bm_engine.Trace.export_json t);
        close_out oc;
        Printf.printf "\ntrace: %d event(s) written to %s\n"
          (List.length (Bm_engine.Trace.events t))
          file
      | _ -> ()
    in
    let rec go = function
      | [] ->
        finish ();
        `Ok ()
      | (_id, result) :: rest -> (
        match result with
        | Ok outcome ->
          Bmhive.Experiments.print_outcome outcome;
          go rest
        | Error e -> `Error (false, e))
    in
    go
      (Bmhive.Experiments.run_many ~quick ~seed ~fleet ~vf ?scenario ?policy ?faults ?topo ?trace
         ?metrics ~jobs ~shards targets)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate the paper's tables and figures from the simulation.")
    Term.(
      ret
        (const run $ quick_arg $ seed_arg $ scenario_arg $ policy_arg $ faults_arg $ topology_arg
       $ hosts_arg $ guests_arg $ tenants_arg $ vfs_arg $ datapath_arg $ trace_arg $ metrics_arg
       $ jobs_arg $ shards_arg $ ids_arg))

(* --- catalogue ------------------------------------------------------ *)

let catalogue_cmd =
  let run () =
    List.iter
      (fun i -> Format.printf "%a@." Bmhive.Instances.pp i)
      Bmhive.Instances.catalogue
  in
  Cmd.v (Cmd.info "catalogue" ~doc:"Print the bare-metal instance catalogue (Table 3).")
    Term.(const run $ const ())

(* --- demo ----------------------------------------------------------- *)

let demo_cmd =
  let run seed =
    let open Bm_engine in
    let open Bm_workload in
    let tb = Testbed.make ~seed () in
    let server = Testbed.bm_server tb in
    (match Bm_hyp.Bm_hypervisor.provision server ~name:"demo" () with
    | Error e -> `Error (false, e)
    | Ok guest ->
      Sim.spawn tb.Testbed.sim (fun () ->
          match Bm_guest.Boot.run guest ~image:Bm_cloud.Image.centos7 () with
          | Error e -> failwith e
          | Ok t ->
            Printf.printf "booted %s on a compute board in %s\n"
              Bm_cloud.Image.centos7.Bm_cloud.Image.name
              (Simtime.to_string t.Bm_guest.Boot.total_ns);
            let lat = ref 0.0 in
            for _ = 1 to 100 do
              lat := !lat +. guest.Bm_guest.Instance.blk ~op:`Read ~bytes_:4096
            done;
            Printf.printf "cloud storage: %.0fus avg over 100 reads\n" (!lat /. 100.0 /. 1e3));
      Testbed.run tb;
      print_endline "demo done.";
      `Ok ())
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Provision a bm-guest, boot it, and run a little I/O.")
    Term.(ret (const run $ seed_arg))

let () =
  let doc = "BM-Hive (ASPLOS '20) reproduction: high-density multi-tenant bare-metal cloud" in
  let info = Cmd.info "bmhive" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; catalogue_cmd; demo_cmd ]))
