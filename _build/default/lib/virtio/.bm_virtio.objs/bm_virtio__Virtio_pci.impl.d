lib/virtio/virtio_pci.ml: Array Feature Printf
