test/test_cloud.ml: Alcotest Blockstore Bm_cloud Bm_engine Bm_hw Bm_virtio Control_plane Float Gen Image Limits List Packet QCheck QCheck_alcotest Rng Sim Stats Tap Vhost_user Vswitch
