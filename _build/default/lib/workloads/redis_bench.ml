open Bm_engine
open Bm_virtio
open Bm_guest

type op = Get | Set

type result = {
  clients : int;
  value_bytes : int;
  rps : float;
  avg_us : float;
  p99_us : float;
  stability : float;
}

let set_tag = 9

let serve sim instance ?(keys = 10_000_000) ?(base_cpu_ns = 5_500.0) () =
  (* ~120 bytes of dict entry + sds overhead per key, plus values. *)
  let working_set = float_of_int keys *. 160.0 in
  let event_loop = Sim.Resource.create ~capacity:1 in
  ignore sim;
  (* On a vm-guest every value is copied an extra time through the vhost
     path; how that copy lands in the shared LLC depends on the value
     size, perturbing the guest's hash-walk locality — the size-dependent
    fluctuation of Fig. 16 ("likely caused by the cache"). Bare metal
     has no such copy, so its curve stays smooth. *)
  let cache_wobble value_bytes =
    match instance.Instance.kind with
    | Instance.Virtual ->
      let h = (value_bytes * 2654435761) land 0xFFFF in
      1.0 +. (0.08 *. float_of_int h /. 65535.0)
    | Instance.Bare_metal _ | Instance.Physical -> 1.0
  in
  Rpc.attach_server instance ~service:(fun req ->
      let value_bytes = max 4 (req.Packet.size - Packet.tcp_header_bytes - 64) in
      (* Single-threaded: all commands serialise through the event loop.
         Hash lookups walk a random slice of the heap (locality 0.2);
         value copy costs scale with size. *)
      Sim.Resource.with_resource event_loop (fun () ->
          let copy_ns = float_of_int value_bytes /. 16.0 in
          instance.Instance.exec_mem_ns ~working_set ~locality:0.20
            ((base_cpu_ns +. copy_ns) *. cache_wobble value_bytes));
      let reply_bytes = if req.Packet.tag = set_tag then 8 else value_bytes in
      { Rpc.reply_bytes; reply_packets = max 1 ((reply_bytes + 1447) / 1448) })

let benchmark sim ~client ~server ?(clients = 1000) ?(value_bytes = 64) ?(op = Get) ~requests () =
  let rpc = Rpc.create_client sim client in
  let hist = Stats.Histogram.create ~lo:1_000.0 ~hi:1e10 () in
  let remaining = ref requests in
  let completed = ref 0 in
  let window = ref 0 in
  let samples = ref [] in
  let t_first = ref nan in
  let t_end = ref nan in
  (* Throughput stability samples every 20 ms. *)
  Sim.spawn sim (fun () ->
      let rec tick () =
        Sim.delay (Simtime.ms 20.0);
        if !remaining > 0 then begin
          samples := !window :: !samples;
          window := 0;
          tick ()
        end
      in
      tick ());
  let tag = match op with Get -> 0 | Set -> set_tag in
  for i = 1 to clients do
    Sim.spawn sim (fun () ->
        (* redis-benchmark establishes connections gradually; a
           synchronized multi-thousand-client volley is not a workload
           any NIC survives without drops. *)
        Sim.delay (Simtime.ms 2.0 +. (float_of_int i *. 10_000.0));
        let rec next () =
          if !remaining > 0 then begin
            decr remaining;
            (match
               Rpc.call rpc ~dst:server.Instance.endpoint ~request_bytes:(64 + value_bytes) ~tag ()
             with
            | `Reply latency ->
              Stats.Histogram.add hist latency;
              incr completed;
              incr window;
              if Float.is_nan !t_first then t_first := Sim.clock ();
              t_end := Sim.clock ()
            | `Timeout -> ());
            next ()
          end
        in
        next ())
  done;
  Sim.run sim;
  let elapsed = Float.max 1.0 (!t_end -. !t_first) in
  let stability =
    match !samples with
    | [] | [ _ ] -> 0.0
    | samples ->
      let s = Stats.Summary.create () in
      List.iter (fun c -> Stats.Summary.add s (float_of_int c)) samples;
      if Stats.Summary.mean s > 0.0 then Stats.Summary.stddev s /. Stats.Summary.mean s else 0.0
  in
  {
    clients;
    value_bytes;
    rps = float_of_int !completed /. Simtime.to_sec elapsed;
    avg_us = Stats.Histogram.mean hist /. 1e3;
    p99_us = Stats.Histogram.percentile hist 99.0 /. 1e3;
    stability;
  }
