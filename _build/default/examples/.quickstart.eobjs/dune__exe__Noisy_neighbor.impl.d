examples/noisy_neighbor.ml: Bm_engine Bm_guest Bm_hw Bm_iobond Board Cache Cpu_spec Firmware Printf
