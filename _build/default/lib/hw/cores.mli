(** Execution on a pool of hardware threads.

    A [Cores.t] models the logical CPUs of one socket (or a slice of one)
    as a FIFO-admission resource: a job acquires a hardware thread, burns
    cycles at the effective clock, and releases the thread. An optional
    per-job overhead hook lets virtualization layers inflate execution
    time (VM exits, EPT walks) without the workload code knowing. *)

type t

val create : Bm_engine.Sim.t -> spec:Cpu_spec.t -> ?threads:int -> ?ghz:float -> unit -> t
(** [create sim ~spec ()] is a pool with [threads] hardware threads
    (default [spec.threads]) clocked at [ghz] (default [spec.base_ghz]). *)

val spec : t -> Cpu_spec.t
val ghz : t -> float
val thread_count : t -> int
val busy : t -> int
(** Number of hardware threads currently executing a job. *)

val set_dilation : t -> (float -> float) -> unit
(** [set_dilation t f] installs a hook mapping natural execution time (ns)
    to actual time; used to model virtualization overhead. Default is the
    identity. *)

val execute_cycles : t -> float -> unit
(** [execute_cycles t c] runs a job of [c] cycles: blocks until a thread
    is free, then for the dilated execution time. Must be called from a
    simulation process. *)

val execute_ns : t -> float -> unit
(** As {!execute_cycles} but the job length is given in ns of natural
    execution time at full speed. *)

val busy_wait : t -> float -> unit
(** Occupy a hardware thread for exactly the given time without dilation
    (poll loops, spinning). *)

val utilization : t -> now:float -> float
(** Fraction of thread-time spent executing since creation. *)
