lib/hypervisor/ept.mli: Bm_hw
