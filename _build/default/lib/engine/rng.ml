type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

(* Take the top 53 bits for a uniform double in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  assert (bound > 0.0);
  unit_float t *. bound

let int t bound =
  assert (bound > 0);
  (* 62 random bits fit a non-negative native int on 64-bit platforms. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  bits mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi = lo +. (unit_float t *. (hi -. lo))

let exponential t ~mean =
  let u = unit_float t in
  -.mean *. log (1.0 -. u)

let normal t ~mean ~stddev =
  (* Box–Muller; one value per call keeps the stream simple to reason about. *)
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~median ~sigma =
  let g = normal t ~mean:0.0 ~stddev:sigma in
  median *. exp g

let pareto t ~scale ~shape =
  assert (shape > 0.0);
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))

let bernoulli t ~p = unit_float t < p

(* Rejection-inversion sampling for the Zipf distribution (Hörmann &
   Derflinger). Exact for all n and s without precomputing a CDF. *)
let zipf t ~n ~s =
  assert (n > 0);
  if n = 1 then 0
  else begin
    let nf = float_of_int n in
    let h x = if s = 1.0 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv x = if s = 1.0 then exp x else ((1.0 -. s) *. x) ** (1.0 /. (1.0 -. s)) in
    let hx0 = h 0.5 -. 1.0 in
    let hn = h (nf +. 0.5) in
    let rec draw () =
      let u = hx0 +. (unit_float t *. (hn -. hx0)) in
      let x = h_inv u in
      let k = Float.round x in
      let k = Float.max 1.0 (Float.min nf k) in
      if u >= h (k +. 0.5) -. (k ** -.s) then int_of_float k - 1 else draw ()
    in
    draw ()
  end

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
