lib/workloads/netperf.mli: Bm_engine Bm_guest
