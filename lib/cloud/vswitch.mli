(** DPDK-style poll-mode virtual switch (§3.4.2).

    One vswitch instance runs per physical server, forwarding packets
    between local endpoints and, through a {!Fabric}, across the
    datacenter network. All processing is user-space poll-mode: each
    forwarded burst costs switch CPU on the server's service cores, and
    there are no interrupts on the switch path.

    Endpoints are integers (they appear as [Packet.src]/[Packet.dst]).
    Delivery invokes the endpoint's handler in a fresh process. *)

type t

type fabric

val create_fabric :
  Bm_engine.Sim.t -> ?gbit_s:float -> ?rtt_ns:float -> ?net:Bm_fabric.Fabric.t -> unit -> fabric
(** The physical datacenter network: servers attach via [gbit_s] NICs
    (default 100, §3.4.3) with [rtt_ns] one-way latency (default 10 µs).
    With [net], cross-server traffic is carried by the link-level
    {!Bm_fabric.Fabric} model (ToR/spine topology, per-link queues,
    ECMP) instead of the flat wire: each subsequently created vswitch
    claims the next host port of the topology, so {!create} raises
    [Invalid_argument] once every port is taken — size the topology to
    the number of servers. *)

val net : fabric -> Bm_fabric.Fabric.t option
(** The link-level network carrying cross-server traffic, if any. *)

val create :
  ?obs:Bm_engine.Obs.t ->
  Bm_engine.Sim.t ->
  fabric:fabric ->
  cores:Bm_hw.Cores.t ->
  ?per_packet_ns:float ->
  ?hop_ns:float ->
  ?egress_capacity:int ->
  unit ->
  t
(** [create sim ~fabric ~cores ()] — [cores] are the server's service
    cores (hypervisor/base cores); [per_packet_ns] is the vswitch cost of
    one packet (default 300 ns, a DPDK-class forwarding cost); [hop_ns]
    (default 5 µs) is the queueing/traversal latency of one switch hop,
    applied asynchronously so it adds latency, not sender backpressure.
    Each destination has a bounded egress queue of [egress_capacity]
    bursts (default 256): a burst arriving for a destination whose queue
    is full is dropped at the tail and counted in {!egress_dropped}. A
    burst whose destination unregisters while the burst is in flight is
    dropped at delivery time and counted in {!stale_dropped}; delivery
    never reaches a dead endpoint. With [obs], in-flight burst depth is
    sampled as a [queue_depth] counter on the ["cloud.vswitch"] track,
    forwarded packets feed the ["cloud.vswitch.pps"] meter and drops the
    ["cloud.vswitch.dropped"] / ["cloud.vswitch.unknown_dst_dropped"] /
    ["cloud.vswitch.egress_dropped"] / ["cloud.vswitch.stale_dropped"]
    counters; a burst for an unknown destination additionally emits an
    [unknown_dst] instant on the ["cloud.vswitch"] trace track. *)

val host : t -> int option
(** This server's port in the link-level network, when one is modelled. *)

val register : t -> deliver:(Bm_virtio.Packet.t -> unit) -> int
(** Attach an endpoint; returns its address. [deliver] receives each
    arriving burst (called in scheduler context — it should hand off to a
    process quickly). *)

val unregister : ?evacuated:bool -> t -> int -> unit
(** Detach an endpoint. With [evacuated] (default [false]) the address
    is retired by a migration/evacuation: bursts still in flight towards
    it are counted under {!evac_stale_dropped} (metric
    ["cloud.vswitch.evac_stale_dropped"]) instead of
    {!unknown_dropped}, so SLO scorecards can separate migration noise
    from genuinely black-holed addresses. Endpoint addresses are never
    reused, so the retired set only grows with migrations. *)

val send : t -> Bm_virtio.Packet.t -> unit
(** Forward a burst to [Packet.dst]. Must be called from a process:
    charges switch CPU, crosses the fabric when the destination lives on
    another server, and drops the burst if the destination is unknown. *)

val forward_hw : t -> Bm_virtio.Packet.t -> unit
(** Inject a burst already switched in hardware (an offload engine acting
    for a guest): delivers like {!send} but charges no switch CPU and
    never blocks. Callable from process or scheduler context. *)

val forwarded : t -> int
(** Total wire packets forwarded (burst-weighted). *)

val dropped : t -> int
(** All drops (unknown destination + egress overflow + stale delivery). *)

val unknown_dropped : t -> int
(** Packets dropped because the destination address resolved to no
    endpoint anywhere (subset of {!dropped}). *)

val egress_dropped : t -> int
(** Packets dropped at a full per-destination egress queue. *)

val stale_dropped : t -> int
(** Packets dropped because the destination unregistered mid-flight. *)

val evac_stale_dropped : t -> int
(** Packets dropped because the destination address was retired by an
    evacuation ([unregister ~evacuated:true]) — migration noise, kept
    out of {!unknown_dropped}. *)
