open Bm_engine

type xfer = { mutable remaining : float; (* bytes *) done_ : unit Sim.Ivar.ivar }

type t = {
  sim : Sim.t;
  peak : float; (* bytes per ns, aggregate *)
  per_stream : float; (* bytes per ns, single-stream ceiling *)
  mutable tax : float;
  mutable active : xfer list;
  mutable last_update : float;
  mutable version : int;
}

let gb_s_to_bytes_ns gb = gb (* 1 GB/s = 1e9 B / 1e9 ns = 1 B/ns *)

let create sim ~peak_gb_s ?(per_stream_gb_s = 14.0) ?(efficiency = 0.85) () =
  assert (peak_gb_s > 0.0 && per_stream_gb_s > 0.0 && efficiency > 0.0 && efficiency <= 1.0);
  {
    sim;
    peak = gb_s_to_bytes_ns (peak_gb_s *. efficiency);
    per_stream = gb_s_to_bytes_ns per_stream_gb_s;
    tax = 0.0;
    active = [];
    last_update = 0.0;
    version = 0;
  }

let of_spec sim spec = create sim ~peak_gb_s:(Cpu_spec.peak_mem_bw_gb_s spec) ()

let peak_gb_s t = t.peak
let active_streams t = List.length t.active
let set_tax t f = t.tax <- f

(* Current fair share per stream, in bytes/ns, after the virtualization tax. *)
let share t =
  match t.active with
  | [] -> 0.0
  | active ->
    let n = float_of_int (List.length active) in
    Float.min t.per_stream (t.peak /. n) /. (1.0 +. t.tax)

(* Advance all in-flight transfers to the current instant. *)
let update t =
  let now = Sim.now t.sim in
  let elapsed = now -. t.last_update in
  if elapsed > 0.0 then begin
    let s = share t in
    List.iter (fun x -> x.remaining <- x.remaining -. (elapsed *. s)) t.active;
    t.last_update <- now
  end

let rec reschedule t =
  t.version <- t.version + 1;
  match t.active with
  | [] -> ()
  | active ->
    let s = share t in
    let min_remaining = List.fold_left (fun acc x -> Float.min acc x.remaining) infinity active in
    let eta = Float.max 0.0 (min_remaining /. s) in
    let version = t.version in
    Sim.schedule t.sim ~delay:eta (fun () -> if t.version = version then complete t)

and complete t =
  update t;
  let eps = 1e-6 in
  let finished, running = List.partition (fun x -> x.remaining <= eps) t.active in
  t.active <- running;
  List.iter (fun x -> Sim.Ivar.fill x.done_ ()) finished;
  reschedule t

let transfer t ~bytes_ =
  assert (bytes_ >= 0.0);
  if bytes_ > 0.0 then begin
    update t;
    let x = { remaining = bytes_; done_ = Sim.Ivar.create () } in
    t.active <- x :: t.active;
    reschedule t;
    Sim.Ivar.read x.done_
  end

let measured_bw_gb_s _t ~bytes_ ~elapsed_ns = if elapsed_ns <= 0.0 then nan else bytes_ /. elapsed_ns
