(** Per-instance I/O rate limits (§4.1).

    "The Xeon E5-2682 instance is limited to 4M packets per second (PPS)
    and 10Gbit/s in bandwidth for network access and 25K I/O per second
    (IOPS) for storage access" — plus 300 MB/s of storage bandwidth
    (§4.3). Limits are token buckets with a small burst allowance, as
    production limiters behave. *)

type net = { pps : Bm_engine.Token_bucket.t; net_bw : Bm_engine.Token_bucket.t }

type blk = { iops : Bm_engine.Token_bucket.t; blk_bw : Bm_engine.Token_bucket.t }

val cloud_net : unit -> net
(** 4M PPS, 10 Gbit/s. *)

val cloud_blk : unit -> blk
(** 25K IOPS, 300 MB/s. *)

val unlimited_net : unit -> net
val unlimited_blk : unit -> blk

val custom_net : pps:float -> gbit_s:float -> net
val custom_blk : iops:float -> mb_s:float -> blk

val net_admit : net -> packets:int -> bytes_:int -> unit
(** Block the calling process until the burst conforms to both limits. *)

val blk_admit : blk -> bytes_:int -> unit
(** Block until one request of [bytes_] conforms. *)
