lib/virtio/feature.ml: Format List String
