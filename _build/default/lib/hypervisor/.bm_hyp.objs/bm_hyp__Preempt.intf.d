lib/hypervisor/preempt.mli: Bm_engine
