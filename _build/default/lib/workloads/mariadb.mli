(** MariaDB + sysbench OLTP model (Fig. 13/14).

    "The test database for MariaDB contained 16 tables, each with 1
    million records. We used sysbench-1.0.17 with 128 threads." Reads are
    buffer-pool lookups (memory-bound, where EPT overhead bites); writes
    go through a group-committed, {e serialised} redo-log flush to cloud
    storage — the mechanism that amplifies the vm-guest's storage-latency
    disadvantage into the large write-side QPS gaps of Fig. 14. *)

type pattern = Read_only | Write_only | Read_write

type result = {
  pattern : pattern;
  qps : float;
  avg_ms : float;
  p99_ms : float;
  queries : int;
}

val pattern_name : pattern -> string

val serve :
  Bm_engine.Sim.t ->
  Bm_engine.Rng.t ->
  Bm_guest.Instance.t ->
  ?tables:int ->
  ?rows_per_table:int ->
  ?read_cpu_ns:float ->
  ?write_cpu_ns:float ->
  ?group_commit_max:int ->
  unit ->
  unit
(** Install the database service. Defaults: 16 tables × 1M rows (a ~4 GB
    buffer pool), 150 µs per read query, 95 µs per write query, redo
    flushes batched up to 8 queries (innodb-style group commit). *)

val sysbench :
  Bm_engine.Sim.t ->
  client:Bm_guest.Instance.t ->
  server:Bm_guest.Instance.t ->
  ?threads:int ->
  pattern:pattern ->
  duration:float ->
  unit ->
  result
(** sysbench with the paper's 128 threads by default. [Read_write] is
    the OLTP mix (~70%% reads). *)
