(** SR-IOV virtual functions over the IO-Bond DMA engine.

    The paper's IO-Bond gives every guest exactly one shadow-vring
    virtio path mediated by the bm-hypervisor poll loop, and its §5
    discussion asks what that mediation costs against direct device
    assignment. This module supplies the comparison point: a physical
    function ({!dev}) exposes [N] virtual functions, each with its own
    queue pair, a weighted share of the device's DMA bandwidth, and a
    bounded completion ring. Completions are delivered straight into
    the guest's handler at device latency — no poll loop, no shadow
    mirror — which is the passthrough datapath of the [vf_ablation]
    experiment.

    VFs have a lifecycle FSM (free → attached → draining →
    reassigning) supporting hot-plug/unplug and SVFF-style
    hot-reassignment between guests: a reassignment first drains the
    VF's in-flight work to the old owner (nothing is lost or
    duplicated — sequence numbers keep climbing across the swap), then
    replays the device configuration under a {!Bm_engine.Fault.Guard}
    (a [Vf_reassign_timeout] window stretches it), and the whole
    blackout is measured.

    Everything is seed-deterministic: arbitration is a pure function
    of the transfer start times, attach picks the lowest free index,
    and all waiting happens on the simulation agenda. With [?obs] the
    device emits bounded-cardinality per-VF/per-queue metrics (labels
    from {!Profile.vf_label}/{!Profile.queue_label}). *)

open Bm_engine

(** {2 Datapath selection}

    Shared vocabulary for the per-guest datapath choice, used by the
    hypervisors, the scheduler, the experiments and the CLI. *)

type datapath =
  | Vring  (** the paper's shadow-vring virtio path through the poll loop *)
  | Passthrough  (** exclusive whole-device assignment at device latency *)
  | Sliced  (** one VF of a shared device: arbitration + bounded queues *)

val all_datapaths : datapath list
val datapath_name : datapath -> string
val datapath_of_name : string -> datapath option

(** {2 Lifecycle FSM} *)

type state =
  | Free
  | Attached
  | Draining  (** in-flight work completing to the old owner *)
  | Reassigning  (** drained; device configuration replaying *)

val state_name : state -> string

(** {2 Completions} *)

type completion = {
  c_vf : int;  (** VF index on its device *)
  c_queue : int;
  c_seq : int;  (** per-(VF, queue) monotonic sequence number *)
  c_owner : string;  (** owner at submit time: drains go to the old owner *)
  c_bytes : int;
  c_submitted_ns : float;
  c_completed_ns : float;
}

(** {2 Devices and virtual functions} *)

type dev
type vf

val create_device :
  ?obs:Obs.t ->
  ?fault:Fault.t ->
  Sim.t ->
  profile:Profile.t ->
  ?gbit_s:float ->
  ?vfs:int ->
  ?queues_per_vf:int ->
  ?queue_depth:int ->
  ?cq_depth:int ->
  unit ->
  dev
(** A physical function with [vfs] virtual functions (default 8, max
    {!Profile.max_labeled_vfs} × 8 = 64), [queues_per_vf] queue pairs
    each (default 2), descriptor rings of [queue_depth] entries
    (default 256) and completion rings of [cq_depth] entries (default
    256, [Block] policy — a slow consumer backpressures the device
    instead of losing completions). [gbit_s] defaults to the profile's
    DMA rate and is shared by weighted arbitration. Creation spawns
    the per-queue device engines parked on their empty rings, so an
    unused device adds no events to the agenda. *)

val total_vfs : dev -> int
val free_vfs : dev -> int
val gbit_s : dev -> float

val attach : dev -> owner:string -> ?weight:float -> unit -> (vf, string) result
(** Claim the lowest-indexed free VF for [owner] with the given
    arbitration [weight] (default 1.0, must be positive). Fails when
    every VF is attached. *)

val detach : vf -> unit
(** Hot-unplug: drain in-flight work to the owner, then return the VF
    to the free pool. Must run in a simulation process. Idempotent on
    a free VF. *)

val reassign : vf -> owner:string -> (float, string) result
(** SVFF-style hot-reassignment: reject new submissions, drain
    in-flight completions to the old owner, replay the device
    configuration under a Guard (retry with backoff; a
    [Vf_reassign_timeout] fault window stretches the step), then hand
    the VF to [owner]. Returns the measured blackout in ns — the
    window during which the VF accepted work from nobody. Sequence
    numbers are preserved across the swap, so completions are neither
    lost nor duplicated. Must run in a simulation process; fails on a
    VF that is free or already mid-transition. *)

val id : vf -> int
val owner : vf -> string option
val state : vf -> state
val weight : vf -> float
val queues : vf -> int

val submit :
  vf -> queue:int -> bytes_:int -> deliver:(completion -> unit) -> [ `Submitted of int | `Rejected ]
(** Post one descriptor on [queue]. Non-blocking; returns the assigned
    sequence number, or [`Rejected] when the VF is not [Attached]
    (detached, draining or reassigning — the blackout is visible, not
    silent) or the descriptor ring is full. The device engine later
    charges the DMA setup cost, streams the bytes at this VF's current
    arbitrated share ([gbit_s × weight / Σ active weights], fixed at
    transfer start), and delivers the completion by calling [deliver]
    from scheduler context at device latency. [deliver] must not
    block; guest-side costs (IRQ entry, stack) belong to the
    callback's own accounting. A [Vf_stall] fault window parks the
    engine, not the submitter. *)

(** {2 Accounting} *)

val accepted : vf -> int
(** Descriptors accepted ([`Submitted]) over the VF's lifetime. *)

val delivered : vf -> int
(** Completions handed to [deliver] callbacks. *)

val rejected : vf -> int
(** Submissions refused (ring full or VF not attached). *)

val in_flight : vf -> int
(** [accepted - delivered]: descriptors queued, streaming, or waiting
    in the completion ring. *)

val queue_accepted : vf -> int array
(** Per-queue accepted counts, index = queue. *)

val bytes_moved : vf -> float

val reassignments : dev -> int
val blackouts : dev -> float list
(** Measured blackout of every completed reassignment, oldest first. *)

val check_conservation : dev -> (unit, string) result
(** Structural invariants: every VF is in exactly one state, free +
    in-use = total, and per VF [accepted = delivered + in_flight] with
    [in_flight = 0] whenever the VF is quiescent ([Free]). *)

val stats_header : string list

val stats_rows : dev -> string list list
(** One row per VF — id, state, owner, weight, queue-pair count,
    accepted/delivered/rejected/in-flight, bytes — for
    {!Bmhive.Report.metrics_table}'s per-VF section. *)
