lib/workloads/stream.mli: Bm_engine Bm_guest
