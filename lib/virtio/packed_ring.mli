(** Virtio 1.1 packed virtqueue.

    The packed ring replaces the split ring's three structures with a
    single descriptor ring: the driver publishes chains by writing
    descriptors whose AVAIL/USED flag bits encode its wrap counter, and
    the device completes by overwriting a slot with a used descriptor
    (buffer id + written length) and skipping the chain's slots. One
    cache line carries both directions — the reason hardware
    implementations (like an IO-Bond ASIC, §6) prefer it.

    The interface deliberately mirrors {!Vring} so the two can be checked
    against each other; the paper-era deployment uses split rings, and
    the packed ring is exercised by the ring-format ablation. *)

type 'a t

type 'a chain = {
  id : int;  (** buffer id — the token completion uses *)
  out : (int * int) list;
  in_ : (int * int) list;
  payload : 'a;
}

val create : size:int -> 'a t
(** [size] descriptors, a power of two in [\[2, 32768\]]. *)

val set_obs : 'a t -> track:string -> Bm_engine.Obs.t -> unit
(** As {!Vring.set_obs}: instants on [track], counters
    ["virtio.packed.add"]/["virtio.packed.used"]. *)

val size : 'a t -> int
val num_free : 'a t -> int
(** Free descriptor slots. *)

val in_flight_requests : 'a t -> int

(** {2 Driver side} *)

val add : 'a t -> out:int list -> in_:int list -> 'a -> int option
(** Publish a chain of one descriptor per segment; returns its buffer
    id, or [None] when the ring cannot hold it. *)

val pop_used : 'a t -> ('a * int) option
(** Reclaim the oldest unseen used entry (completion order). *)

val used_pending : 'a t -> int

(** {2 Device side} *)

val avail_pending : 'a t -> int
val pop_avail : 'a t -> 'a chain option
val set_payload : 'a t -> id:int -> 'a -> unit
val push_used : 'a t -> id:int -> written:int -> unit
(** Completions may be out of order with respect to {!pop_avail}. *)

val check_invariants : 'a t -> (unit, string) result
