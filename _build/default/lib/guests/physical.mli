(** Physical-machine baseline (§4.2).

    The paper compares bm-guests and vm-guests against a raw two-socket
    physical server ("the physical machine had two sockets of this CPU
    and 384GB of RAM"). Execution is native: no exit dilation, native
    page walks, untaxed memory; network and storage go straight to the
    cloud substrate with the same kernel stack costs. *)

val create :
  Bm_engine.Sim.t ->
  name:string ->
  ?spec:Bm_hw.Cpu_spec.t ->
  ?sockets:int ->
  ?vswitch:Bm_cloud.Vswitch.t ->
  ?storage:Bm_cloud.Blockstore.t ->
  unit ->
  Instance.t
(** Defaults: Xeon E5-2682 v4 × 2 sockets. Without [vswitch], [send]
    reports a drop; without [storage], [blk] raises. *)
