(* Tests for the observability layer: histogram properties, trace
   correctness (including Chrome trace_event JSON export), the metrics
   registry, and the determinism guarantee — instrumentation is pure
   recording, so a run with sinks installed is bit-identical to one
   without. *)

open Bm_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Stats.Histogram properties *)

let values_arb = QCheck.(list_of_size Gen.(1 -- 120) (float_range 0.5 5e9))

let close_rel a b =
  if a = b then true
  else Float.abs (a -. b) /. Float.max (Float.abs a) (Float.abs b) < 1e-9

let prop_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles are monotone in p" ~count:200
    QCheck.(pair values_arb (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (vs, (p, q)) ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) vs;
      let lo = Float.min p q and hi = Float.max p q in
      Stats.Histogram.percentile h lo <= Stats.Histogram.percentile h hi)

let prop_merge_is_combined_stream =
  QCheck.Test.make ~name:"histogram merge == histogram of combined stream" ~count:200
    QCheck.(pair values_arb (list (float_range 0.5 5e9)))
    (fun (l1, l2) ->
      let h1 = Stats.Histogram.create () and h2 = Stats.Histogram.create () in
      let combined = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h1) l1;
      List.iter (Stats.Histogram.add h2) l2;
      List.iter (Stats.Histogram.add combined) (l1 @ l2);
      let m = Stats.Histogram.merge h1 h2 in
      Stats.Histogram.count m = Stats.Histogram.count combined
      && Stats.Histogram.min m = Stats.Histogram.min combined
      && Stats.Histogram.max m = Stats.Histogram.max combined
      && Stats.Histogram.percentile m 50.0 = Stats.Histogram.percentile combined 50.0
      && Stats.Histogram.percentile m 99.0 = Stats.Histogram.percentile combined 99.0
      && close_rel (Stats.Histogram.mean m) (Stats.Histogram.mean combined))

let prop_percentile_within_observed =
  QCheck.Test.make ~name:"percentiles stay within observed extrema despite clamping" ~count:200
    (* Values far outside the [10, 1000] geometry get clamped into edge
       buckets; reported percentiles must still lie inside the raw
       observation range. *)
    QCheck.(pair (list_of_size Gen.(1 -- 80) (float_range 1e-3 1e6)) (float_range 0.0 100.0))
    (fun (vs, p) ->
      let h = Stats.Histogram.create ~lo:10.0 ~hi:1000.0 () in
      List.iter (Stats.Histogram.add h) vs;
      let v = Stats.Histogram.percentile h p in
      v >= Stats.Histogram.min h && v <= Stats.Histogram.max h)

let prop_below_lo_collapses =
  QCheck.Test.make ~name:"all observations below lo collapse to the max observation" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 80) (float_range 1e-3 9.9)) (float_range 0.0 100.0))
    (fun (vs, p) ->
      let h = Stats.Histogram.create ~lo:10.0 ~hi:1000.0 () in
      List.iter (Stats.Histogram.add h) vs;
      Stats.Histogram.percentile h p = Stats.Histogram.max h)

let prop_add_n_equals_repeated_add =
  QCheck.Test.make ~name:"add_n t v n == n repetitions of add t v" ~count:200
    QCheck.(pair (float_range 0.5 1e9) (int_range 1 50))
    (fun (v, n) ->
      let bulk = Stats.Histogram.create () and loop = Stats.Histogram.create () in
      Stats.Histogram.add_n bulk v n;
      for _ = 1 to n do
        Stats.Histogram.add loop v
      done;
      Stats.Histogram.count bulk = Stats.Histogram.count loop
      && Stats.Histogram.min bulk = Stats.Histogram.min loop
      && Stats.Histogram.max bulk = Stats.Histogram.max loop
      && Stats.Histogram.percentile bulk 50.0 = Stats.Histogram.percentile loop 50.0
      && close_rel (Stats.Histogram.mean bulk) (Stats.Histogram.mean loop))

(* ------------------------------------------------------------------ *)
(* Trace correctness *)

let test_span_ends_on_exception () =
  let t = Trace.create () in
  let clock = ref 0.0 in
  let tick () = clock := !clock +. 1.0; !clock in
  (try
     Trace.span t ~track:"x" "work" ~clock:tick (fun () -> failwith "boom")
   with Failure _ -> ());
  match Trace.events t with
  | [ b; e ] ->
    check_bool "begin" true (b.Trace.kind = `Begin);
    check_bool "end" true (e.Trace.kind = `End);
    check_bool "ordered" true (b.Trace.at < e.Trace.at)
  | evs -> Alcotest.failf "expected exactly begin+end, got %d events" (List.length evs)

let test_ring_buffer_dropped () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.instant t ~track:"x" (Printf.sprintf "e%d" i) ~now:(float_of_int i)
  done;
  check_int "dropped is exact" 12 (Trace.dropped t);
  let evs = Trace.events t in
  check_int "capacity events retained" 8 (List.length evs);
  (* The survivors are the newest 8, oldest first. *)
  Alcotest.(check string) "oldest survivor" "e13" (List.hd evs).Trace.name;
  Alcotest.(check string) "newest survivor" "e20" (List.nth evs 7).Trace.name

(* A minimal recursive-descent JSON parser — just enough to prove the
   export is well-formed without depending on a JSON library. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      String.iter expect word;
      value
    in
    let string_body () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'u' ->
            (* skip the four hex digits; the decoded rune is irrelevant here *)
            advance ();
            advance ();
            advance ();
            advance ();
            Buffer.add_char buf '?'
          | Some c -> Buffer.add_char buf c
          | None -> fail "bad escape");
          advance ();
          go ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((key, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((key, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
      | Some '"' -> Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
end

let sample_trace () =
  let t = Trace.create () in
  Trace.begin_span t ~track:"iobond.tx" "forward" ~now:100.0;
  Trace.instant t ~track:"hw.pcie" "doorbell \"quoted\"\n" ~now:150.0;
  Trace.counter t ~track:"iobond.tx" "pending" ~now:200.0 3.0;
  Trace.end_span t ~track:"iobond.tx" "forward" ~now:400.0;
  Trace.instant t ~track:"hw.pcie" "irq" ~now:500.0;
  t

let test_export_json_valid () =
  let t = sample_trace () in
  let parsed = Json.parse (Trace.export_json t) in
  let events =
    match Json.member "traceEvents" parsed with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  (* 5 recorded events + one thread_name metadata record per track. *)
  check_int "event count" 7 (List.length events);
  List.iter
    (fun e ->
      check_bool "has name" true (Json.member "name" e <> None);
      check_bool "has ph" true (Json.member "ph" e <> None);
      check_bool "has pid" true (Json.member "pid" e <> None))
    events;
  let phases =
    List.filter_map
      (fun e -> match Json.member "ph" e with Some (Json.Str p) -> Some p | _ -> None)
      events
  in
  Alcotest.(check (list string)) "phases in order" [ "B"; "i"; "C"; "E"; "i"; "M"; "M" ] phases;
  let counter_arg =
    List.find_map
      (fun e ->
        match (Json.member "ph" e, Json.member "args" e) with
        | Some (Json.Str "C"), Some args -> Json.member "value" args
        | _ -> None)
      events
  in
  check_bool "counter carries value" true (counter_arg = Some (Json.Num 3.0))

let test_export_json_monotone_per_track () =
  let t = sample_trace () in
  let parsed = Json.parse (Trace.export_json t) in
  let events =
    match Json.member "traceEvents" parsed with Some (Json.Arr evs) -> evs | _ -> []
  in
  let last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match (Json.member "ph" e, Json.member "tid" e, Json.member "ts" e) with
      | Some (Json.Str "M"), _, _ -> ()
      | _, Some (Json.Num tid), Some (Json.Num ts) ->
        let prev = Option.value (Hashtbl.find_opt last tid) ~default:neg_infinity in
        check_bool "ts monotone per track" true (ts >= prev);
        Hashtbl.replace last tid ts
      | _ -> Alcotest.fail "event missing tid/ts")
    events;
  check_bool "saw both tracks" true (Hashtbl.length last = 2)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.incr m ~by:4.0 "a.count";
  Metrics.observe m "a.lat_ns" 100.0;
  Metrics.observe m "a.lat_ns" 300.0;
  Metrics.mark m "a.pps" ~now:0.0;
  Metrics.mark m ~n:9 "a.pps" ~now:1e9;
  check_float "counter" 5.0 (Metrics.counter_value m "a.count");
  (match Metrics.histogram m "a.lat_ns" with
  | Some h -> check_int "histogram count" 2 (Stats.Histogram.count h)
  | None -> Alcotest.fail "histogram not registered");
  (match Metrics.meter m "a.pps" with
  | Some meter ->
    check_int "meter count" 10 (Stats.Meter.count meter);
    check_float "meter rate" 10.0 (Stats.Meter.rate meter)
  | None -> Alcotest.fail "meter not registered");
  Alcotest.(check (list string))
    "registration order" [ "a.count"; "a.lat_ns"; "a.pps" ] (Metrics.names m)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~by:2.0 "c";
  Metrics.incr b ~by:3.0 "c";
  Metrics.observe a "h" 10.0;
  Metrics.observe b "h" 1000.0;
  Metrics.mark a "m" ~now:0.0;
  Metrics.mark b "m" ~now:2e9;
  let merged = Metrics.merge a b in
  check_float "counters add" 5.0 (Metrics.counter_value merged "c");
  (match Metrics.histogram merged "h" with
  | Some h ->
    check_int "histogram count" 2 (Stats.Histogram.count h);
    check_float "histogram min" 10.0 (Stats.Histogram.min h);
    check_float "histogram max" 1000.0 (Stats.Histogram.max h)
  | None -> Alcotest.fail "merged histogram missing");
  (match Metrics.meter merged "m" with
  | Some meter -> check_int "meter counts add" 2 (Stats.Meter.count meter)
  | None -> Alcotest.fail "merged meter missing");
  (* Inputs are untouched. *)
  check_float "input a intact" 2.0 (Metrics.counter_value a "c");
  check_float "input b intact" 3.0 (Metrics.counter_value b "c")

let test_metrics_merge_wrong_kind () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "x";
  Metrics.observe b "x" 1.0;
  check_bool "wrong-kind merge raises" true
    (match Metrics.merge a b with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_render_shape () =
  let m = Metrics.create () in
  Metrics.incr m "z.c";
  Metrics.observe m "a.h" 42.0;
  let rows = Metrics.rows m in
  check_int "one row per instrument" 2 (List.length rows);
  List.iter
    (fun row -> check_int "row width matches header" (List.length Metrics.table_header) (List.length row))
    rows;
  (* Sorted by name: the histogram "a.h" precedes the counter "z.c". *)
  Alcotest.(check string) "sorted first" "a.h" (List.hd (List.hd rows));
  check_bool "render non-empty" true (String.length (Metrics.render m) > 0)

(* ------------------------------------------------------------------ *)
(* Determinism: tracing must not perturb simulation results. *)

let test_tracing_preserves_determinism () =
  let run ?trace ?metrics () =
    match Bmhive.Experiments.run_one ~quick:true ~seed:11 ?trace ?metrics "ablation_reg" with
    | Ok outcome -> outcome
    | Error e -> Alcotest.fail e
  in
  let bare = run () in
  let t1 = Trace.create () and m1 = Metrics.create () in
  let traced1 = run ~trace:t1 ~metrics:m1 () in
  let t2 = Trace.create () and m2 = Metrics.create () in
  let traced2 = run ~trace:t2 ~metrics:m2 () in
  check_bool "results identical with tracing off vs on" true (bare = traced1);
  check_bool "results identical across traced runs" true (traced1 = traced2);
  check_bool "trace non-empty" true (Trace.events t1 <> []);
  check_bool "event streams identical" true (Trace.events t1 = Trace.events t2);
  check_bool "metrics non-empty" true (not (Metrics.is_empty m1));
  (* compare with [compare]: meter rates can be nan, and nan <> nan *)
  check_bool "metric snapshots identical" true
    (compare (Metrics.snapshot m1) (Metrics.snapshot m2) = 0)

(* ------------------------------------------------------------------ *)
(* End-to-end: sinks observe the vm datapath and the bm datapath. *)

let test_vm_datapath_metrics () =
  let open Bm_workload in
  let trace = Trace.create () in
  let metrics = Metrics.create () in
  let tb = Testbed.make ~seed:5 ~trace ~metrics () in
  let _host, vm = Testbed.vm_guest tb in
  Sim.spawn tb.Testbed.sim (fun () ->
      for _ = 1 to 20 do
        ignore (vm.Bm_guest.Instance.blk ~op:`Read ~bytes_:4096)
      done);
  Testbed.run tb;
  check_bool "blockstore served all requests" true
    (Metrics.counter_value metrics "cloud.blockstore.served" >= 20.0);
  (match Metrics.histogram metrics "cloud.blockstore.serve_ns" with
  | Some h -> check_bool "serve latencies recorded" true (Stats.Histogram.count h >= 20)
  | None -> Alcotest.fail "no blockstore latency histogram");
  (* Each completion is delivered by an injected interrupt (§2 exit tax). *)
  check_bool "injection exits counted" true
    (Metrics.counter_value metrics "hyp.vmexit.injection" > 0.0);
  check_bool "trace saw events" true (Trace.events trace <> [])

let test_bm_datapath_covers_layers () =
  let trace = Trace.create () in
  let metrics = Metrics.create () in
  (match
     Bmhive.Experiments.run_one ~quick:true ~seed:3 ~trace ~metrics "ablation_batch"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let names = Metrics.names metrics in
  let covered prefix = List.exists (fun n -> Astring.String.is_prefix ~affix:prefix n) names in
  List.iter
    (fun prefix -> check_bool ("metrics from " ^ prefix) true (covered prefix))
    [ "iobond."; "hw."; "virtio."; "cloud."; "hyp." ];
  let tracks =
    List.sort_uniq compare (List.map (fun e -> e.Trace.track) (Trace.events trace))
  in
  check_bool "multiple trace tracks" true (List.length tracks >= 3)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    qsuite "observability.histogram.prop"
      [
        prop_percentile_monotone;
        prop_merge_is_combined_stream;
        prop_percentile_within_observed;
        prop_below_lo_collapses;
        prop_add_n_equals_repeated_add;
      ];
    ( "observability.trace",
      [
        Alcotest.test_case "span ends on exception" `Quick test_span_ends_on_exception;
        Alcotest.test_case "ring buffer drop accounting" `Quick test_ring_buffer_dropped;
        Alcotest.test_case "export_json is valid JSON" `Quick test_export_json_valid;
        Alcotest.test_case "export_json ts monotone per track" `Quick
          test_export_json_monotone_per_track;
      ] );
    ( "observability.metrics",
      [
        Alcotest.test_case "counters, histograms, meters" `Quick test_metrics_basics;
        Alcotest.test_case "merge" `Quick test_metrics_merge;
        Alcotest.test_case "merge rejects kind mismatch" `Quick test_metrics_merge_wrong_kind;
        Alcotest.test_case "table rows" `Quick test_metrics_render_shape;
      ] );
    ( "observability.determinism",
      [
        Alcotest.test_case "tracing does not perturb results" `Slow
          test_tracing_preserves_determinism;
      ] );
    ( "observability.datapath",
      [
        Alcotest.test_case "vm storage path records" `Quick test_vm_datapath_metrics;
        Alcotest.test_case "bm path covers all layers" `Slow test_bm_datapath_covers_layers;
      ] );
  ]
