test/test_extensions.ml: Alcotest Astring Bm_engine Bm_guest Bm_hyp Bm_hypervisor Bm_iobond Bm_virtio Bm_workload Float Instance Live_migration Result Rng Sgx Sim Simtime Testbed
