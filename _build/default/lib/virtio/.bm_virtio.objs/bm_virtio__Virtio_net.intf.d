lib/virtio/virtio_net.mli: Bm_engine Packet Virtio_pci Vring
