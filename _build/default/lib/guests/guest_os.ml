open Bm_virtio

type t = {
  syscall_ns : float;
  udp_tx_ns : float;
  udp_rx_ns : float;
  tcp_tx_ns : float;
  tcp_rx_ns : float;
  irq_entry_ns : float;
  blk_submit_ns : float;
  blk_complete_ns : float;
  dpdk_tx_ns : float;
  dpdk_rx_ns : float;
}

(* A 3.10-era kernel moves ~1.2-1.5 Mpps/core through the UDP socket
   path; netperf-style tests with several flows and irq spreading reach
   past 3 Mpps (§4.3: both guests exceeded 3.2M PPS under a 4M limit). *)
let centos7_3_10 =
  {
    syscall_ns = 150.0;
    udp_tx_ns = 650.0;
    udp_rx_ns = 700.0;
    tcp_tx_ns = 900.0;
    tcp_rx_ns = 950.0;
    irq_entry_ns = 800.0;
    blk_submit_ns = 1_500.0;
    blk_complete_ns = 1_200.0;
    dpdk_tx_ns = 60.0;
    dpdk_rx_ns = 60.0;
  }

(* 4.19-era kernels: blk-mq everywhere and cheaper socket paths, but
   Spectre/Meltdown mitigations make user/kernel crossings costlier. *)
let ubuntu18_4_19 =
  {
    syscall_ns = 350.0;
    udp_tx_ns = 600.0;
    udp_rx_ns = 640.0;
    tcp_tx_ns = 820.0;
    tcp_rx_ns = 860.0;
    irq_entry_ns = 900.0;
    blk_submit_ns = 1_100.0;
    blk_complete_ns = 900.0;
    dpdk_tx_ns = 60.0;
    dpdk_rx_ns = 60.0;
  }

(* 5.4-era: io_uring-class block paths, retpoline-optimised entry. *)
let modern_5_4 =
  {
    syscall_ns = 250.0;
    udp_tx_ns = 560.0;
    udp_rx_ns = 600.0;
    tcp_tx_ns = 760.0;
    tcp_rx_ns = 800.0;
    irq_entry_ns = 850.0;
    blk_submit_ns = 800.0;
    blk_complete_ns = 650.0;
    dpdk_tx_ns = 55.0;
    dpdk_rx_ns = 55.0;
  }

let catalogue =
  [ ("3.10.0-514.26.2.el7", centos7_3_10); ("4.19", ubuntu18_4_19); ("5.4", modern_5_4) ]

let for_kernel version =
  List.assoc_opt version catalogue

(* The evaluation image's kernel (§4.2). *)
let default = centos7_3_10

let per_packet_tx t = function
  | Packet.Udp -> t.udp_tx_ns
  | Packet.Tcp -> t.tcp_tx_ns
  | Packet.Icmp -> t.udp_tx_ns

let per_packet_rx t = function
  | Packet.Udp -> t.udp_rx_ns
  | Packet.Tcp -> t.tcp_rx_ns
  | Packet.Icmp -> t.udp_rx_ns

let net_tx_ns t ~kind ~count = per_packet_tx t kind *. float_of_int count
let net_rx_ns t ~kind ~count = per_packet_rx t kind *. float_of_int count
let dpdk_tx_ns_of t ~count = t.dpdk_tx_ns *. float_of_int count
let dpdk_rx_ns_of t ~count = t.dpdk_rx_ns *. float_of_int count
