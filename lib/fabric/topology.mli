(** Datacenter network topologies for the {!Fabric} model.

    A topology is a two-tier Clos: hosts attach to top-of-rack (ToR)
    switches, ToRs attach to a spine tier. Every edge is a pair of
    unidirectional links with bandwidth, propagation latency and a
    bounded FIFO queue (drop-tail). Hosts are assigned to ToRs in
    contiguous blocks ({!tor_of}), so host 0 and host [hosts-1] are
    always in different racks when [tors > 1]. *)

type link_params = {
  gbit_s : float;  (** serialization bandwidth, Gbit/s (= bits/ns) *)
  latency_ns : float;  (** one-way propagation/forwarding latency *)
  queue_capacity : int;  (** egress FIFO depth, in bursts (drop-tail) *)
}

type t = private {
  hosts : int;
  tors : int;
  spines : int;  (** 0 allowed only with a single ToR *)
  host_link : link_params;  (** host <-> ToR edges, both directions *)
  spine_link : link_params;  (** ToR <-> spine edges, both directions *)
}

val clos :
  hosts:int ->
  tors:int ->
  spines:int ->
  ?host_gbit_s:float ->
  ?spine_gbit_s:float ->
  ?host_latency_ns:float ->
  ?spine_latency_ns:float ->
  ?queue_capacity:int ->
  unit ->
  t
(** [clos ~hosts ~tors ~spines ()] — defaults: 100 Gbit/s host links
    (the paper's NIC, §3.4.3) with 1 µs latency, 100 Gbit/s spine links
    with 4 µs latency, queues of 64 bursts. Raises [Invalid_argument]
    unless [hosts >= tors >= 1] and [spines >= 1] (or [spines = 0] with
    a single ToR). Shrink [spine_gbit_s] below the sum of host offered
    load to model an oversubscribed spine. *)

val two_host : ?gbit_s:float -> ?latency_ns:float -> ?queue_capacity:int -> unit -> t
(** The minimal form: two hosts under one ToR, no spine — the smallest
    topology on which traffic crosses a wire. *)

val for_hosts : ?hosts_per_tor:int -> ?spine_gbit_s:float -> hosts:int -> unit -> t
(** Auto-size a Clos for a fleet of [hosts] hosts: racks of up to
    [hosts_per_tor] (default 32) hosts, and — past one rack — a spine
    tier of [max 2 (ceil (tors / 4))] switches, the mild (4:1 worst
    case) oversubscription of a production pod. Link parameters take
    the {!clos} defaults. This is how the fleet-scale experiments turn
    a [--hosts N] knob into a topology. *)

val tor_of : t -> host:int -> int
(** Block assignment: host [h] lives under ToR [h * tors / hosts]. *)

val parse_spec : string -> (t, string) result
(** Parse a command-line topology spec. Either the preset [two_host] or
    comma-separated [key=value] pairs: [hosts], [tors], [spines]
    (integers), [host_gbit], [spine_gbit] (Gbit/s), [host_lat_us],
    [spine_lat_us] (µs), [queue] (bursts). Unspecified keys take the
    {!clos} defaults. Example:
    [hosts=4,tors=2,spines=2,spine_gbit=10,queue=32]. *)

val render : t -> string
(** One-line description, parseable by {!parse_spec}. *)
