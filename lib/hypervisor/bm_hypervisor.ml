open Bm_engine
open Bm_hw
open Bm_virtio
open Bm_iobond
open Bm_cloud
open Bm_guest

type params = { pmd_pkt_ns : float; pmd_blk_ns : float; bm_cpu_bonus : float }

let default_params = { pmd_pkt_ns = 220.0; pmd_blk_ns = 1_800.0; bm_cpu_bonus = 0.04 }

type bridge_controls = { bridge_pause : unit -> unit; bridge_resume : unit -> unit }

type guest_state = {
  instance : Instance.t;
  board : Board.t;
  rx_drops : int ref;
  bridges : bridge_controls list;
  offload : Offload.t option;
  rekick : unit -> unit; (* re-arm backend work hints after a respawn *)
  mutable backend_version : int;
  datapath : Vf.datapath; (* the net path this guest actually got *)
  vf : Vf.vf option;
}

type server = {
  sim : Sim.t;
  rng : Rng.t;
  params : params;
  batch : int;
  profile : Profile.t;
  base_cores : Cores.t;
  vswitch : Vswitch.t;
  storage : Blockstore.t;
  board_pool : Board.t array;
  obs : Obs.t;
  fault : Fault.t;
  pmd_alive : bool ref;
  mutable pmd_crashes : int;
  mutable guests : (string * guest_state) list;
  vf_total : int;
  vf_queues : int;
  mutable vf_pool : Vf.dev option; (* created on first VF attachment *)
  mutable vf_fallbacks : int;
}

let create_server ?(obs = Obs.none) ?(fault = Fault.none) sim rng ~fabric ~storage
    ?(profile = Profile.Fpga) ?(board_spec = Cpu_spec.xeon_e5_2682_v4) ?(board_mem_gb = 64)
    ?(boards = 8) ?dma_gbit_s ?(params = default_params) ?(batch = 1) ?(vfs = 8)
    ?(vf_queues = 2) () =
  if boards < 1 || boards > 16 then invalid_arg "Bm_hypervisor: 1..16 boards per server (§3.3)";
  if batch < 1 then invalid_arg "Bm_hypervisor: batch must be >= 1";
  if vfs < 1 then invalid_arg "Bm_hypervisor: vfs must be >= 1";
  if vf_queues < 1 then invalid_arg "Bm_hypervisor: vf_queues must be >= 1";
  let base_cores = Cores.create sim ~spec:Cpu_spec.base_server_e5 () in
  let t =
    {
      sim;
      rng;
      params;
      batch;
      profile;
      base_cores;
      vswitch = Vswitch.create ~obs sim ~fabric ~cores:base_cores ();
      storage;
      board_pool =
        Array.init boards (fun id ->
            Board.create ~obs ~fault sim ~id ~spec:board_spec ~mem_gb:board_mem_gb ~profile
              ?dma_gbit_s ());
      obs;
      fault;
      pmd_alive = ref true;
      pmd_crashes = 0;
      guests = [];
      vf_total = vfs;
      vf_queues;
      vf_pool = None;
      vf_fallbacks = 0;
    }
  in
  (* The per-guest backend processes are ordinary user-space processes:
     a crash kills them and the supervisor respawns them after the
     event's dead-time. Queue state lives in the shadow vrings, so the
     respawned process drains from exactly where its predecessor
     stopped; the rekick replays each guest's work hints. *)
  Fault.subscribe fault Fault.Pmd_crash (fun ev ->
      if !(t.pmd_alive) then begin
        t.pmd_alive := false;
        t.pmd_crashes <- t.pmd_crashes + 1;
        Metrics.incr_opt (Obs.metrics obs) "hyp.bm.pmd_crashes";
        Trace.instant_opt (Obs.trace obs) ~track:"hyp.bm" "pmd_crash" ~now:(Sim.now sim);
        Sim.schedule sim ~delay:ev.Fault.duration_ns (fun () ->
            t.pmd_alive := true;
            Metrics.incr_opt (Obs.metrics obs) "hyp.bm.pmd_respawns";
            Trace.instant_opt (Obs.trace obs) ~track:"hyp.bm" "pmd_respawn" ~now:(Sim.now sim);
            List.iter (fun (_, g) -> g.rekick ()) t.guests)
      end);
  t

let vswitch t = t.vswitch
let base_cores t = t.base_cores
let boards t = t.board_pool
let profile t = t.profile

let free_boards t =
  Array.fold_left (fun acc b -> if Board.power b = Board.Off then acc + 1 else acc) 0 t.board_pool

(* The server's SR-IOV pool is created on first use, so a fleet that
   never asks for a VF datapath schedules exactly the events it always
   did — seed behaviour is bit-identical. *)
let vf_pool_dev t =
  match t.vf_pool with
  | Some d -> d
  | None ->
    let d =
      Vf.create_device ~obs:t.obs ~fault:t.fault t.sim ~profile:t.profile ~vfs:t.vf_total
        ~queues_per_vf:t.vf_queues ()
    in
    t.vf_pool <- Some d;
    d

let vf_capacity t = t.vf_total
let vf_free t = match t.vf_pool with None -> t.vf_total | Some d -> Vf.free_vfs d
let vf_fallbacks t = t.vf_fallbacks
let vf_pool_device t = t.vf_pool

(* Net rings sized like a multiqueue device (8 queues x 256). *)
let net_queue_size = 2048
let rx_buffer_target = 1536

(* Per-guest backend queues are bounded: the rx backlog holds bursts
   delivered by the vswitch that the PMD has not yet pumped into guest
   buffers (drop-tail, like a real NIC queue), and work hints coalesce
   into a single pending doorbell. *)
let rx_backlog_capacity = 512

(* Poll-loop iteration period of the batched backend drain. At
   [batch = 1] the drain is purely hint-driven (zero simulated cost,
   bit-identical to the historical schedule); at [batch > 1] the
   backend behaves like a real poll-mode driver instead: it sleeps one
   tick between bursts, which is what lets descriptors accumulate into
   bursts worth coalescing. *)
let poll_tick_ns = 1_000.0

(* Backend fibers park here while their process is dead; the poll
   period only costs anything during a crash window. *)
let wait_pmd_alive t =
  while not !(t.pmd_alive) do
    Sim.delay 10_000.0
  done

let provision t ~name ?(net_limits = Limits.cloud_net ()) ?(blk_limits = Limits.cloud_blk ())
    ?(offload = false) ?(datapath = Vf.Vring) () =
  if List.mem_assoc name t.guests then Error (name ^ " already provisioned")
  else
    match Array.find_opt (fun b -> Board.power b = Board.Off) t.board_pool with
    | None -> Error "no free compute board"
    | Some board ->
      Board.power_on board;
      let sim = t.sim in
      let p = t.params in
      let os = Guest_os.default in
      let spec = Board.spec board in
      let cores = Board.cores board in
      let memory = Board.memory board in
      let tlb = Tlb.create () in
      let iobond = Board.iobond board in
      let net_port = Iobond.attach_net iobond ~queue_size:net_queue_size () in
      let blk_port = Iobond.attach_blk iobond () in
      let net = net_port.Iobond.net_device in
      let blkdev = blk_port.Iobond.blk_device in
      let rx_handler = ref (fun (_ : Packet.t) -> ()) in
      let rx_drops = ref 0 in
      let poll_mode = ref false in
      let offload_table = if offload then Some (Offload.create ()) else None in

      (* SR-IOV attachment: passthrough gets a whole device to itself,
         a slice comes from the server's shared pool; an exhausted pool
         falls back to the shadow-vring path (the scheduler's failover)
         and the fallback is counted, not silent. *)
      let vf_attached =
        match datapath with
        | Vf.Vring -> None
        | Vf.Passthrough ->
          let dev =
            Vf.create_device ~obs:t.obs ~fault:t.fault sim ~profile:t.profile ~vfs:1
              ~queues_per_vf:t.vf_queues ()
          in
          (match Vf.attach dev ~owner:name () with Ok vf -> Some vf | Error _ -> None)
        | Vf.Sliced -> (
          match Vf.attach (vf_pool_dev t) ~owner:name () with
          | Ok vf -> Some vf
          | Error _ ->
            t.vf_fallbacks <- t.vf_fallbacks + 1;
            Metrics.incr_opt (Obs.metrics t.obs) "hyp.bm.vf_fallbacks";
            None)
      in
      let effective_datapath = if Option.is_none vf_attached then Vf.Vring else datapath in

      (* Guest-side interrupt handlers: genuine MSIs, no exits. *)
      Virtio_net.set_interrupt net (fun () ->
          Sim.spawn sim (fun () ->
              (* Interrupt context preempts: it does not queue behind
                 saturated application threads. *)
              if !poll_mode then Sim.delay 500.0 (* PMD poll pickup *)
              else Sim.delay os.Guest_os.irq_entry_ns;
              ignore (Virtio_net.reap_tx net);
              let pkts = Virtio_net.reap_rx net in
              if Virtio_net.refill_rx net ~target:rx_buffer_target > 0 then
                Queue_bridge.guest_notify net_port.Iobond.net_rx;
              List.iter
                (fun pkt ->
                  let count = pkt.Packet.count in
                  let stack_ns =
                    if !poll_mode then Guest_os.dpdk_rx_ns_of os ~count
                    else Guest_os.net_rx_ns os ~kind:pkt.Packet.protocol ~count
                  in
                  Cores.execute_ns cores stack_ns;
                  !rx_handler pkt)
                pkts));
      Virtio_blk.set_interrupt blkdev (fun () ->
          Sim.spawn sim (fun () ->
              Sim.delay os.Guest_os.irq_entry_ns;
              ignore (Virtio_blk.reap blkdev)));

      (* The bm-hypervisor's device glue talks vhost-user to the cloud
         backends, same as the vm path (§3.4.2). *)
      let bring_up features =
        let backend = Vhost_user.create ~backend_features:features () in
        match Vhost_user.standard_handshake backend ~driver_features:features with
        | Ok () -> backend
        | Error e -> failwith ("vhost-user handshake failed: " ^ e)
      in
      let _vhost_net = bring_up Feature.default_net in
      let _vhost_blk = bring_up Feature.default_blk in
      (* Per-guest bm-hypervisor backend process: net tx. The hint queue
         has capacity 1: a doorbell rung while one is already pending
         coalesces into it (the drain loop will see the new work). *)
      let tx_hint = Sim.Bounded.create ~capacity:1 ~policy:Sim.Bounded.Drop_tail () in
      Queue_bridge.set_work_hint net_port.Iobond.net_tx (fun () ->
          ignore (Sim.Bounded.send tx_hint ()));
      (* One tx request: an offloaded flow never touches the base cores —
         the FPGA pipeline forwards it into the fabric (S6). *)
      let process_tx req =
        let pkt = req.Queue_bridge.payload in
        match Option.map (fun ot -> (ot, Offload.classify ot pkt)) offload_table with
        | Some (_, `Offloaded) ->
          Metrics.incr_opt (Obs.metrics t.obs) "hyp.bm.offload_hits";
          Sim.delay (Offload.fpga_forward_ns *. float_of_int pkt.Packet.count);
          Queue_bridge.complete net_port.Iobond.net_tx req ~written:0 ();
          Queue_bridge.flush net_port.Iobond.net_tx;
          Vswitch.forward_hw t.vswitch pkt
        | Some (ot, `Slow_path) ->
          Metrics.incr_opt (Obs.metrics t.obs) "hyp.bm.offload_misses";
          Metrics.mark_opt (Obs.metrics t.obs) ~n:pkt.Packet.count "hyp.bm.pmd_pkts"
            ~now:(Sim.now sim);
          Cores.execute_ns t.base_cores (p.pmd_pkt_ns *. float_of_int pkt.Packet.count);
          Offload.install ot pkt;
          Queue_bridge.complete net_port.Iobond.net_tx req ~written:0 ();
          Queue_bridge.flush net_port.Iobond.net_tx;
          Vswitch.send t.vswitch pkt
        | None ->
          Metrics.mark_opt (Obs.metrics t.obs) ~n:pkt.Packet.count "hyp.bm.pmd_pkts"
            ~now:(Sim.now sim);
          Cores.execute_ns t.base_cores (p.pmd_pkt_ns *. float_of_int pkt.Packet.count);
          Queue_bridge.complete net_port.Iobond.net_tx req ~written:0 ();
          Queue_bridge.flush net_port.Iobond.net_tx;
          Vswitch.send t.vswitch pkt
      in
      Sim.spawn sim (fun () ->
          let rec loop () =
            Sim.Bounded.recv tx_hint;
            wait_pmd_alive t;
            (* Bursts fan out to PMD workers (multiqueue), one worker
               fiber — one host-side event — per poll-tick burst of up
               to [t.batch] descriptors (at the default batch of 1 this
               is the historical one-event-per-descriptor schedule). *)
            let rec drain () =
              match Queue_bridge.pop_batch net_port.Iobond.net_tx ~max:t.batch with
              | [] -> ()
              | reqs ->
                Sim.fork (fun () -> List.iter process_tx reqs);
                if t.batch > 1 then Sim.delay poll_tick_ns;
                drain ()
            in
            if t.batch > 1 then Sim.delay poll_tick_ns;
            drain ();
            loop ()
          in
          loop ());

      (* Net rx: vswitch delivery into a bounded backlog, then into posted
         guest buffers. A backlog overflow is a NIC-queue drop. *)
      let rx_chan =
        Sim.Bounded.create ~capacity:rx_backlog_capacity ~policy:Sim.Bounded.Drop_tail ()
      in
      Obs.watch_bounded t.obs ~track:"hyp.bm.rx_backlog" rx_chan;
      let endpoint =
        match vf_attached with
        | None ->
          Vswitch.register t.vswitch ~deliver:(fun pkt -> ignore (Sim.Bounded.send rx_chan pkt))
        | Some vf ->
          (* Direct assignment: the device DMAs into guest buffers and
             interrupts the guest itself — the PMD never sees the
             packet. A ring-full or mid-reassignment window is a NIC
             drop, same as the vring path's backlog overflow. *)
          let rxq = ref 0 in
          Vswitch.register t.vswitch ~deliver:(fun pkt ->
              let q = !rxq in
              rxq := (q + 1) mod Vf.queues vf;
              let deliver _c =
                Sim.spawn sim (fun () ->
                    if !poll_mode then Sim.delay 500.0 (* PMD poll pickup *)
                    else Sim.delay os.Guest_os.irq_entry_ns;
                    let count = pkt.Packet.count in
                    let stack_ns =
                      if !poll_mode then Guest_os.dpdk_rx_ns_of os ~count
                      else Guest_os.net_rx_ns os ~kind:pkt.Packet.protocol ~count
                    in
                    Cores.execute_ns cores stack_ns;
                    !rx_handler pkt)
              in
              match Vf.submit vf ~queue:q ~bytes_:pkt.Packet.size ~deliver with
              | `Submitted _ -> ()
              | `Rejected ->
                rx_drops := !rx_drops + pkt.Packet.count;
                Metrics.incr_opt (Obs.metrics t.obs)
                  ~by:(float_of_int pkt.Packet.count)
                  "hyp.bm.rx_drops")
      in
      let process_rx pkt =
        Cores.execute_ns t.base_cores (p.pmd_pkt_ns *. float_of_int pkt.Packet.count);
        match Queue_bridge.pop net_port.Iobond.net_rx with
        | Some req ->
          Queue_bridge.complete net_port.Iobond.net_rx req ~payload:pkt
            ~written:pkt.Packet.size ();
          Queue_bridge.flush net_port.Iobond.net_rx
        | None ->
          rx_drops := !rx_drops + pkt.Packet.count;
          Metrics.incr_opt (Obs.metrics t.obs) ~by:(float_of_int pkt.Packet.count)
            "hyp.bm.rx_drops"
      in
      Sim.spawn sim (fun () ->
          let rec loop () =
            let pkt = Sim.Bounded.recv rx_chan in
            wait_pmd_alive t;
            (* Opportunistically drain the backlog burst behind the first
               packet (never blocking), one worker fiber per burst. At
               batch > 1, wait out a poll tick first so the burst has
               arrivals to coalesce. *)
            if t.batch > 1 then Sim.delay poll_tick_ns;
            let rec burst n acc =
              if n >= t.batch then List.rev acc
              else
                match Sim.Bounded.try_recv rx_chan with
                | Some p -> burst (n + 1) (p :: acc)
                | None -> List.rev acc
            in
            let pkts = pkt :: burst 1 [] in
            Sim.fork (fun () -> List.iter process_rx pkts);
            loop ()
          in
          loop ());

      (* Blk backend: SPDK-style, one in-flight task per request. *)
      let blk_hint = Sim.Bounded.create ~capacity:1 ~policy:Sim.Bounded.Drop_tail () in
      Queue_bridge.set_work_hint blk_port.Iobond.blk_queue (fun () ->
          ignore (Sim.Bounded.send blk_hint ()));
      let process_blk req =
        let vreq = req.Queue_bridge.payload in
        Trace.begin_span_opt (Obs.trace t.obs) ~track:"hyp.bm" "blk_request"
          ~now:(Sim.now sim);
        Cores.execute_ns t.base_cores p.pmd_blk_ns;
        let op =
          match vreq.Virtio_blk.op with
          | Virtio_blk.Read -> `Read
          | Virtio_blk.Write -> `Write
          | Virtio_blk.Flush -> `Flush
        in
        (match Blockstore.serve t.storage ~op ~bytes_:vreq.Virtio_blk.bytes with
        | `Served -> ()
        | `Rejected ->
          (* Storage admission queue full: complete the request
             with an error status so the guest can retry. *)
          vreq.Virtio_blk.failed <- true;
          Metrics.incr_opt (Obs.metrics t.obs) "hyp.bm.blk_rejected");
        Trace.end_span_opt (Obs.trace t.obs) ~track:"hyp.bm" "blk_request" ~now:(Sim.now sim);
        let written =
          match vreq.Virtio_blk.op with
          | Virtio_blk.Read -> vreq.Virtio_blk.bytes + 1
          | Virtio_blk.Write | Virtio_blk.Flush -> 1
        in
        Queue_bridge.complete blk_port.Iobond.blk_queue req ~written ();
        Queue_bridge.flush blk_port.Iobond.blk_queue
      in
      Sim.spawn sim (fun () ->
          let rec loop () =
            Sim.Bounded.recv blk_hint;
            wait_pmd_alive t;
            let rec drain () =
              match Queue_bridge.pop_batch blk_port.Iobond.blk_queue ~max:t.batch with
              | [] -> ()
              | reqs ->
                Sim.fork (fun () -> List.iter process_blk reqs);
                if t.batch > 1 then Sim.delay poll_tick_ns;
                drain ()
            in
            if t.batch > 1 then Sim.delay poll_tick_ns;
            drain ();
            loop ()
          in
          loop ());

      (* Native execution, with the paper's ~4% board bonus. *)
      let cpu_factor = 1.0 /. (1.0 +. p.bm_cpu_bonus) in
      let exec_ns natural = Cores.execute_ns cores (natural *. cpu_factor) in
      let exec_mem_ns ~working_set ~locality natural =
        (* Native single-level page walks — no EPT on bare metal. *)
        let factor = Ept.dilation_factor tlb ~virtualized:false ~working_set ~locality in
        Cores.execute_ns cores (natural *. cpu_factor *. factor)
      in
      (* A doorbell to IO-Bond is an uncached MMIO store to the FPGA BAR:
         ~300 ns of CPU stall per kick (a vm kick is a plain store into
         shared memory). *)
      let doorbell_cpu_ns = 300.0 in
      let net_shed pkt =
        Metrics.incr_opt (Obs.metrics t.obs) ~by:(float_of_int pkt.Packet.count)
          "hyp.bm.net_shed";
        false
      in
      let send pkt =
        Cores.execute_ns cores
          (Guest_os.net_tx_ns os ~kind:pkt.Packet.protocol ~count:pkt.Packet.count
          +. doorbell_cpu_ns);
        if Limits.net_admit net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size then
          Virtio_net.xmit net pkt
        else net_shed pkt
      in
      let send_dpdk pkt =
        Cores.execute_ns cores
          (Guest_os.dpdk_tx_ns_of os ~count:pkt.Packet.count +. doorbell_cpu_ns);
        if Limits.net_admit net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size then
          Virtio_net.xmit net pkt
        else net_shed pkt
      in
      (* On a VF datapath the doorbell rings the device directly: the
         descriptor streams at the VF's arbitrated DMA share and the
         device forwards it into the fabric in hardware — the poll loop
         and the base cores are skipped entirely. *)
      let send, send_dpdk =
        match vf_attached with
        | None -> (send, send_dpdk)
        | Some vf ->
          let txq = ref 0 in
          let vf_xmit pkt =
            let q = !txq in
            txq := (q + 1) mod Vf.queues vf;
            match
              Vf.submit vf ~queue:q ~bytes_:pkt.Packet.size ~deliver:(fun _ ->
                  Vswitch.forward_hw t.vswitch pkt)
            with
            | `Submitted _ -> true
            | `Rejected ->
              Metrics.incr_opt (Obs.metrics t.obs)
                ~by:(float_of_int pkt.Packet.count)
                "hyp.bm.vf_tx_rejects";
              false
          in
          ( (fun pkt ->
              Cores.execute_ns cores
                (Guest_os.net_tx_ns os ~kind:pkt.Packet.protocol ~count:pkt.Packet.count
                +. doorbell_cpu_ns);
              if Limits.net_admit net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size
              then vf_xmit pkt
              else net_shed pkt),
            fun pkt ->
              Cores.execute_ns cores
                (Guest_os.dpdk_tx_ns_of os ~count:pkt.Packet.count +. doorbell_cpu_ns);
              if Limits.net_admit net_limits ~packets:pkt.Packet.count ~bytes_:pkt.Packet.size
              then vf_xmit pkt
              else net_shed pkt )
      in
      let blk_attempt ~op ~bytes_ =
        Cores.execute_ns cores os.Guest_os.blk_submit_ns;
        if not (Limits.blk_admit blk_limits ~bytes_) then begin
          Metrics.incr_opt (Obs.metrics t.obs) "hyp.bm.blk_shed";
          Cores.execute_ns cores os.Guest_os.blk_complete_ns;
          Error `Limited
        end
        else begin
          (* Completion latency (fio's clat): measured after admission. *)
          let t0 = Sim.clock () in
          let vop =
            match op with
            | `Read -> Virtio_blk.Read
            | `Write -> Virtio_blk.Write
            | `Flush -> Virtio_blk.Flush
          in
          let req = Virtio_blk.make_req ~op:vop ~sector:0 ~bytes:bytes_ ~now:(Sim.clock ()) in
          if not (Virtio_blk.submit blkdev req) then begin
            Sim.delay 1_000.0;
            Cores.execute_ns cores os.Guest_os.blk_complete_ns;
            Error (`Busy (Sim.clock () -. t0))
          end
          else begin
            ignore (Sim.Ivar.read req.Virtio_blk.done_);
            Cores.execute_ns cores os.Guest_os.blk_complete_ns;
            let lat = Sim.clock () -. t0 in
            if req.Virtio_blk.failed then Error (`Rejected lat) else Ok lat
          end
        end
      in
      let blk ~op ~bytes_ =
        match blk_attempt ~op ~bytes_ with
        | Ok lat | Error (`Busy lat) | Error (`Rejected lat) -> lat
        | Error `Limited -> 0.0
      in
      let blk_try ~op ~bytes_ =
        match blk_attempt ~op ~bytes_ with
        | Ok lat -> Ok lat
        | Error `Limited -> Error `Limited
        | Error (`Busy _) -> Error `Busy
        | Error (`Rejected _) -> Error `Rejected
      in
      let probe () =
        match Virtio_net.probe net with
        | Error e -> Error e
        | Ok () -> (
          match Virtio_blk.probe blkdev with
          | Error e -> Error e
          | Ok () ->
            Ok
              (Virtio_pci.access_count (Virtio_net.pci net)
              + Virtio_pci.access_count (Virtio_blk.pci blkdev)))
      in
      let instance =
        {
          Instance.name;
          kind = Instance.Bare_metal t.profile;
          spec;
          endpoint;
          cores;
          memory;
          os;
          exec_ns;
          exec_mem_ns;
          mem_stream = (fun ~bytes_ -> Memory.transfer memory ~bytes_);
          send;
          send_dpdk;
          set_rx_handler = (fun h -> rx_handler := h);
          blk;
          blk_try;
          probe;
          pause = (fun () -> ());
          ipi = (fun () -> Cores.execute_ns cores 1_000.0);
          set_poll_mode = (fun b -> poll_mode := b);
          timer_arm = (fun () -> Cores.execute_ns cores 100.0);
        }
      in
      let controls q =
        {
          bridge_pause = (fun () -> Queue_bridge.pause q);
          bridge_resume = (fun () -> Queue_bridge.resume q);
        }
      in
      let bridges =
        [
          controls net_port.Iobond.net_tx;
          controls net_port.Iobond.net_rx;
          { bridge_pause = (fun () -> Queue_bridge.pause blk_port.Iobond.blk_queue);
            bridge_resume = (fun () -> Queue_bridge.resume blk_port.Iobond.blk_queue) };
        ]
      in
      let rekick () =
        if Queue_bridge.pending net_port.Iobond.net_tx > 0 then
          ignore (Sim.Bounded.send tx_hint ());
        if Queue_bridge.pending blk_port.Iobond.blk_queue > 0 then
          ignore (Sim.Bounded.send blk_hint ())
      in
      t.guests <-
        ( name,
          {
            instance;
            board;
            rx_drops;
            bridges;
            offload = offload_table;
            rekick;
            backend_version = 1;
            datapath = effective_datapath;
            vf = vf_attached;
          } )
        :: t.guests;
      (* Post the initial rx buffers and mirror them into the shadow ring. *)
      Sim.spawn sim (fun () ->
          if Virtio_net.refill_rx net ~target:rx_buffer_target > 0 then
            Queue_bridge.guest_notify net_port.Iobond.net_rx);
      Ok instance

let release t ~name =
  match List.assoc_opt name t.guests with
  | None -> ()
  | Some state ->
    (* Hot-unplug drains the VF's in-flight work on the agenda before
       returning it to the pool; the board frees immediately. *)
    (match state.vf with
    | Some vf -> Sim.spawn t.sim (fun () -> Vf.detach vf)
    | None -> ());
    Board.power_off state.board;
    t.guests <- List.remove_assoc name t.guests

let guest_datapath t ~name =
  Option.map (fun s -> s.datapath) (List.assoc_opt name t.guests)

let guest_vf t ~name = Option.bind (List.assoc_opt name t.guests) (fun s -> s.vf)

let guest_board t ~name = Option.map (fun s -> s.board) (List.assoc_opt name t.guests)

let rx_no_buffer_drops t ~name =
  match List.assoc_opt name t.guests with Some s -> !(s.rx_drops) | None -> 0

let offload_table t ~name =
  match List.assoc_opt name t.guests with Some s -> s.offload | None -> None

let backend_version t ~name =
  match List.assoc_opt name t.guests with Some s -> s.backend_version | None -> 0

let pmd_alive t = !(t.pmd_alive)
let pmd_crashes t = t.pmd_crashes

(* Orthus-style live upgrade (§6): the bm-hypervisor is an ordinary
   user-space process per guest and all queue state lives in the shared
   shadow vrings, so upgrading is: pause the bridges, let the new
   process map the rings (the handover blackout), bump the version,
   resume. Requests issued during the blackout accumulate in the shadow
   rings and are drained on resume; the guest never notices beyond a
   latency blip. Must be called from a simulation process. *)
let live_upgrade t ~name ?(handover_ns = 200_000.0) () =
  match List.assoc_opt name t.guests with
  | None -> Error (name ^ " not provisioned")
  | Some state ->
    Trace.begin_span_opt (Obs.trace t.obs) ~track:"hyp.bm" "live_upgrade" ~now:(Sim.now t.sim);
    List.iter (fun b -> b.bridge_pause ()) state.bridges;
    Sim.delay handover_ns;
    state.backend_version <- state.backend_version + 1;
    List.iter (fun b -> b.bridge_resume ()) state.bridges;
    Trace.end_span_opt (Obs.trace t.obs) ~track:"hyp.bm" "live_upgrade" ~now:(Sim.now t.sim);
    Metrics.incr_opt (Obs.metrics t.obs) "hyp.bm.live_upgrades";
    Ok state.backend_version
