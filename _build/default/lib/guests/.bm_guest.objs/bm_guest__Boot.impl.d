lib/guests/boot.ml: Bm_cloud Bm_engine Instance Sim
