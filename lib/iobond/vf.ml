open Bm_engine
open Bm_hw

(* ------------------------------------------------------------------ *)
(* Datapath vocabulary *)

type datapath = Vring | Passthrough | Sliced

let all_datapaths = [ Vring; Passthrough; Sliced ]

let datapath_name = function Vring -> "vring" | Passthrough -> "passthrough" | Sliced -> "vf"

let datapath_of_name s =
  List.find_opt (fun d -> datapath_name d = s) all_datapaths

(* ------------------------------------------------------------------ *)
(* FSM *)

type state = Free | Attached | Draining | Reassigning

let state_name = function
  | Free -> "free"
  | Attached -> "attached"
  | Draining -> "draining"
  | Reassigning -> "reassigning"

type completion = {
  c_vf : int;
  c_queue : int;
  c_seq : int;
  c_owner : string;
  c_bytes : int;
  c_submitted_ns : float;
  c_completed_ns : float;
}

type desc = {
  d_queue : int;
  d_seq : int;
  d_owner : string;
  d_bytes : int;
  d_submitted_ns : float;
  d_deliver : completion -> unit;
}

type vf = {
  vf_id : int;
  dev : dev;
  mutable vstate : state;
  mutable vowner : string option;
  mutable vweight : float;
  rings : desc Sim.Bounded.bounded array; (* descriptor ring per queue *)
  cq : desc Sim.Bounded.bounded; (* completion ring, Block: no loss *)
  next_seq : int array;
  q_accepted : int array;
  mutable accepted : int;
  mutable delivered : int;
  mutable rejected : int;
  mutable streaming : int; (* 0 or 1: per-VF transfers are serialized *)
  mutable bytes_moved : float;
  slice : Sim.Resource.resource;
}

and dev = {
  sim : Sim.t;
  profile : Profile.t;
  link : Pcie.t;
  total_gbit_s : float;
  setup_ns : float;
  mutable functions : vf array;
  mutable active_weight : float; (* Σ weights of VFs currently streaming *)
  mutable reassignments : int;
  mutable blackouts_rev : float list;
  guard : Fault.Guard.g;
  obs : Obs.t;
  fault : Fault.t;
}

(* How long the drain step sleeps between in-flight checks, and the
   register traffic a reassignment/unplug replays: a reassignment is a
   function-level reset plus re-mapping (8 emulated hops), an unplug
   half that. *)
let drain_poll_ns = 200.0
let reassign_config_hops = 4.0
let detach_config_hops = 2.0

let metric dev what = "iobond.vf." ^ Profile.name dev.profile ^ "." ^ what

let per_vf_metric vf_id ~queue what =
  "iobond.vf." ^ Profile.vf_label vf_id ^ "." ^ Profile.queue_label queue ^ "." ^ what

(* The device engine for one (VF, queue): pop a descriptor, wait out
   any stall window, then stream the bytes at this VF's arbitrated
   share of the device bandwidth. Transfers of one VF are serialized
   through its slice, so a VF contributes its weight to the active sum
   at most once; the share is fixed at transfer start (a deterministic
   GPS approximation — concurrent transfers started earlier keep the
   rate they were granted). *)
let rec engine_loop d vf ring =
  let desc = Sim.Bounded.recv ring in
  if Fault.is_active d.fault Fault.Vf_stall then begin
    Metrics.incr_opt (Obs.metrics d.obs) (metric d "stalls");
    Fault.block_until_clear d.fault Fault.Vf_stall
  end;
  Sim.delay d.setup_ns;
  Sim.Resource.with_resource vf.slice (fun () ->
      vf.streaming <- 1;
      d.active_weight <- d.active_weight +. vf.vweight;
      let rate = d.total_gbit_s *. vf.vweight /. d.active_weight in
      Sim.delay (float_of_int desc.d_bytes *. 8.0 /. rate);
      d.active_weight <- d.active_weight -. vf.vweight;
      vf.streaming <- 0);
  Pcie.account d.link ~bytes_:desc.d_bytes;
  vf.bytes_moved <- vf.bytes_moved +. float_of_int desc.d_bytes;
  (match Sim.Bounded.send vf.cq desc with
  | `Sent -> ()
  | `Dropped | `Rejected -> assert false (* Block policy never loses *));
  engine_loop d vf ring

(* Completion dispatch for one VF: completions leave the bounded ring
   in order and go straight to the submitter's callback — the
   passthrough property: no poll loop between device and guest. *)
let rec dispatch_loop d vf =
  let desc = Sim.Bounded.recv vf.cq in
  let c =
    {
      c_vf = vf.vf_id;
      c_queue = desc.d_queue;
      c_seq = desc.d_seq;
      c_owner = desc.d_owner;
      c_bytes = desc.d_bytes;
      c_submitted_ns = desc.d_submitted_ns;
      c_completed_ns = Sim.now d.sim;
    }
  in
  desc.d_deliver c;
  vf.delivered <- vf.delivered + 1;
  Metrics.incr_opt (Obs.metrics d.obs) (per_vf_metric vf.vf_id ~queue:desc.d_queue "completions");
  Metrics.observe_opt (Obs.metrics d.obs) (metric d "lat_ns")
    (c.c_completed_ns -. c.c_submitted_ns);
  dispatch_loop d vf

let create_device ?(obs = Obs.none) ?(fault = Fault.none) sim ~profile ?gbit_s ?(vfs = 8)
    ?(queues_per_vf = 2) ?(queue_depth = 256) ?(cq_depth = 256) () =
  if vfs < 1 || vfs > 8 * Profile.max_labeled_vfs then
    invalid_arg "Vf.create_device: 1..64 virtual functions";
  if queues_per_vf < 1 then invalid_arg "Vf.create_device: queues_per_vf must be >= 1";
  if queue_depth < 1 || cq_depth < 1 then invalid_arg "Vf.create_device: ring depth must be >= 1";
  let total_gbit_s = Option.value gbit_s ~default:(Profile.dma_gbit_s profile) in
  if total_gbit_s <= 0.0 then invalid_arg "Vf.create_device: gbit_s must be positive";
  let d =
    {
      sim;
      profile;
      link = Pcie.x8 ~obs ~fault sim ~register_ns:(Profile.register_ns profile);
      total_gbit_s;
      setup_ns = Profile.dma_setup_ns profile;
      functions = [||];
      active_weight = 0.0;
      reassignments = 0;
      blackouts_rev = [];
      guard =
        Fault.Guard.create ~obs sim ~name:"vf_reassign"
          ~policy:
            {
              Fault.Guard.default_policy with
              Fault.Guard.max_attempts = 6;
              backoff_ns = 2_000.0;
              backoff_max_ns = 32_000.0;
            };
      obs;
      fault;
    }
  in
  d.functions <-
    Array.init vfs (fun vf_id ->
        {
          vf_id;
          dev = d;
          vstate = Free;
          vowner = None;
          vweight = 1.0;
          rings =
            Array.init queues_per_vf (fun _ ->
                Sim.Bounded.create ~capacity:queue_depth ~policy:Sim.Bounded.Reject ());
          cq = Sim.Bounded.create ~capacity:cq_depth ~policy:Sim.Bounded.Block ();
          next_seq = Array.make queues_per_vf 0;
          q_accepted = Array.make queues_per_vf 0;
          accepted = 0;
          delivered = 0;
          rejected = 0;
          streaming = 0;
          bytes_moved = 0.0;
          slice = Sim.Resource.create ~capacity:1;
        });
  Array.iter
    (fun vf ->
      Array.iter (fun ring -> Sim.spawn sim (fun () -> engine_loop d vf ring)) vf.rings;
      Sim.spawn sim (fun () -> dispatch_loop d vf))
    d.functions;
  d

let total_vfs d = Array.length d.functions
let gbit_s d = d.total_gbit_s

let free_vfs d =
  Array.fold_left (fun acc vf -> if vf.vstate = Free then acc + 1 else acc) 0 d.functions

let id vf = vf.vf_id
let owner vf = vf.vowner
let state vf = vf.vstate
let weight vf = vf.vweight
let queues vf = Array.length vf.rings
let accepted vf = vf.accepted
let delivered vf = vf.delivered
let rejected vf = vf.rejected
let in_flight vf = vf.accepted - vf.delivered
let queue_accepted vf = Array.copy vf.q_accepted
let bytes_moved vf = vf.bytes_moved
let reassignments d = d.reassignments
let blackouts d = List.rev d.blackouts_rev

let attach d ~owner ?(weight = 1.0) () =
  if weight <= 0.0 then invalid_arg "Vf.attach: weight must be positive";
  match Array.find_opt (fun vf -> vf.vstate = Free) d.functions with
  | None -> Error "no free virtual function"
  | Some vf ->
    vf.vstate <- Attached;
    vf.vowner <- Some owner;
    vf.vweight <- weight;
    Metrics.incr_opt (Obs.metrics d.obs) (metric d "attach");
    Trace.instant_opt (Obs.trace d.obs) ~track:"iobond.vf"
      ("attach.vf" ^ string_of_int vf.vf_id)
      ~now:(Sim.now d.sim);
    Ok vf

let submit vf ~queue ~bytes_ ~deliver =
  if queue < 0 || queue >= Array.length vf.rings then invalid_arg "Vf.submit: no such queue";
  if bytes_ < 0 then invalid_arg "Vf.submit: negative size";
  let d = vf.dev in
  match vf.vstate with
  | Free | Draining | Reassigning ->
    vf.rejected <- vf.rejected + 1;
    Metrics.incr_opt (Obs.metrics d.obs) (metric d "blackout_rejects");
    `Rejected
  | Attached -> (
    let seq = vf.next_seq.(queue) in
    let desc =
      {
        d_queue = queue;
        d_seq = seq;
        d_owner = (match vf.vowner with Some o -> o | None -> "");
        d_bytes = bytes_;
        d_submitted_ns = Sim.now d.sim;
        d_deliver = deliver;
      }
    in
    match Sim.Bounded.send vf.rings.(queue) desc with
    | `Sent ->
      vf.next_seq.(queue) <- seq + 1;
      vf.accepted <- vf.accepted + 1;
      vf.q_accepted.(queue) <- vf.q_accepted.(queue) + 1;
      Metrics.incr_opt (Obs.metrics d.obs) (per_vf_metric vf.vf_id ~queue "accepted");
      `Submitted seq
    | `Rejected | `Dropped ->
      vf.rejected <- vf.rejected + 1;
      Metrics.incr_opt (Obs.metrics d.obs) (metric d "ring_full");
      `Rejected)

(* Wait (on the agenda) until every accepted descriptor has been
   delivered; submissions are already being rejected by the FSM state,
   so the wait is finite. *)
let drain vf =
  while in_flight vf > 0 do
    Sim.delay drain_poll_ns
  done

let config_replay d ~hops = Sim.delay (hops *. Profile.pci_emulation_ns d.profile)

let detach vf =
  let d = vf.dev in
  match vf.vstate with
  | Free -> ()
  | Draining | Reassigning -> invalid_arg "Vf.detach: reassignment in progress"
  | Attached ->
    vf.vstate <- Draining;
    drain vf;
    config_replay d ~hops:detach_config_hops;
    vf.vstate <- Free;
    vf.vowner <- None;
    Metrics.incr_opt (Obs.metrics d.obs) (metric d "detach");
    Trace.instant_opt (Obs.trace d.obs) ~track:"iobond.vf"
      ("detach.vf" ^ string_of_int vf.vf_id)
      ~now:(Sim.now d.sim)

let reassign vf ~owner:new_owner =
  let d = vf.dev in
  match vf.vstate with
  | Free -> Error "Vf.reassign: function is free (attach instead)"
  | Draining | Reassigning -> Error "Vf.reassign: already mid-transition"
  | Attached ->
    let t0 = Sim.now d.sim in
    Trace.begin_span_opt (Obs.trace d.obs) ~track:"iobond.vf" "reassign" ~now:t0;
    vf.vstate <- Draining;
    drain vf;
    vf.vstate <- Reassigning;
    (* Replay the device configuration for the new owner under the
       Guard: while a [Vf_reassign_timeout] window is open the doorbell
       is wedged, attempts fail and back off; if the whole schedule is
       exhausted inside the window, fall back to waiting the window out
       — recovery is guaranteed either way, only the blackout grows. *)
    let configure () =
      if Fault.is_active d.fault Fault.Vf_reassign_timeout then
        Error "vf reassign doorbell wedged"
      else begin
        config_replay d ~hops:reassign_config_hops;
        Ok ()
      end
    in
    (match Fault.Guard.run d.guard configure with
    | Ok () -> ()
    | Error _ ->
      Fault.block_until_clear d.fault Fault.Vf_reassign_timeout;
      config_replay d ~hops:reassign_config_hops);
    vf.vowner <- Some new_owner;
    vf.vstate <- Attached;
    let blackout = Sim.now d.sim -. t0 in
    d.reassignments <- d.reassignments + 1;
    d.blackouts_rev <- blackout :: d.blackouts_rev;
    Metrics.incr_opt (Obs.metrics d.obs) (metric d "reassignments");
    Metrics.observe_opt (Obs.metrics d.obs) (metric d "blackout_ns") blackout;
    Trace.end_span_opt (Obs.trace d.obs) ~track:"iobond.vf" "reassign" ~now:(Sim.now d.sim);
    Ok blackout

let check_conservation d =
  let total = Array.length d.functions in
  let free = free_vfs d in
  let in_use =
    Array.fold_left (fun acc vf -> if vf.vstate <> Free then acc + 1 else acc) 0 d.functions
  in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if free + in_use <> total then err "vf pool leak: %d free + %d in use <> %d total" free in_use total
  else
    Array.fold_left
      (fun acc vf ->
        match acc with
        | Error _ as e -> e
        | Ok () ->
          let queued = Array.fold_left (fun n r -> n + Sim.Bounded.length r) 0 vf.rings in
          let structural = queued + Sim.Bounded.length vf.cq + vf.streaming in
          let ring_drops =
            Array.fold_left (fun n r -> n + Sim.Bounded.dropped r) 0 vf.rings
            + Sim.Bounded.dropped vf.cq
          in
          if ring_drops <> 0 then err "vf%d: %d ring drops (rings must never lose)" vf.vf_id ring_drops
          else if in_flight vf <> structural then
            err "vf%d: in-flight %d <> %d queued+cq+streaming" vf.vf_id (in_flight vf) structural
          else if vf.vstate = Free && in_flight vf <> 0 then
            err "vf%d: free with %d in flight" vf.vf_id (in_flight vf)
          else if vf.vstate = Free && vf.vowner <> None then err "vf%d: free but owned" vf.vf_id
          else if vf.vstate <> Free && vf.vowner = None then
            err "vf%d: %s but ownerless" vf.vf_id (state_name vf.vstate)
          else Ok ())
      (Ok ()) d.functions

let stats_header =
  [ "vf"; "state"; "owner"; "weight"; "queues"; "accepted"; "delivered"; "rejected"; "in flight"; "bytes" ]

let stats_rows d =
  Array.to_list
    (Array.map
       (fun vf ->
         [
           string_of_int vf.vf_id;
           state_name vf.vstate;
           (match vf.vowner with Some o -> o | None -> "-");
           Printf.sprintf "%.1f" vf.vweight;
           string_of_int (Array.length vf.rings);
           string_of_int vf.accepted;
           string_of_int vf.delivered;
           string_of_int vf.rejected;
           string_of_int (in_flight vf);
           Printf.sprintf "%.0f" vf.bytes_moved;
         ])
       d.functions)
