lib/cloud/image.ml: Hashtbl
