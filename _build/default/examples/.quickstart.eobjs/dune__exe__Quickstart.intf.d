examples/quickstart.mli:
