(* Quickstart: bring up a BM-Hive server, rent a bm-guest, boot it from
   the cloud image store, and run some I/O through the full stack.

     dune exec examples/quickstart.exe *)

open Bm_engine
open Bm_guest
open Bm_workload

let () =
  (* A simulated world: one datacenter fabric, SSD-backed cloud storage. *)
  let tb = Testbed.make ~seed:42 () in

  (* A BM-Hive base server with 8 compute boards, and one tenant. *)
  let server = Testbed.bm_server tb in
  let guest =
    match Bm_hyp.Bm_hypervisor.provision server ~name:"tenant-a" () with
    | Ok instance -> instance
    | Error e -> failwith e
  in
  Printf.printf "provisioned %s on %s (%d boards left)\n" guest.Instance.name
    (Instance.kind_name guest)
    (Bm_hyp.Bm_hypervisor.free_boards server);

  (* Boot the same VM image any vm-guest would use (§3.2): the EFI
     firmware probes the IO-Bond virtio devices and streams the
     bootloader + kernel from remote storage over virtio-blk. *)
  Sim.spawn tb.Testbed.sim (fun () ->
      match Boot.run guest ~image:Bm_cloud.Image.centos7 () with
      | Error e -> failwith e
      | Ok t ->
        Printf.printf "booted %s in %s (POST %s, virtio probe %s/%d accesses, image load %s)\n"
          Bm_cloud.Image.centos7.Bm_cloud.Image.name
          (Simtime.to_string t.Boot.total_ns)
          (Simtime.to_string t.Boot.post_ns)
          (Simtime.to_string t.Boot.probe_ns)
          t.Boot.probe_accesses
          (Simtime.to_string t.Boot.load_ns);

        (* Run 2,000 random 4 KiB reads against cloud storage. *)
        let hist = Stats.Histogram.create ~lo:1_000.0 ~hi:1e9 () in
        for _ = 1 to 2_000 do
          Stats.Histogram.add hist (guest.Instance.blk ~op:`Read ~bytes_:4096)
        done;
        Printf.printf "storage: avg %.0fus p99 %.0fus p99.9 %.0fus\n"
          (Stats.Histogram.mean hist /. 1e3)
          (Stats.Histogram.percentile hist 99.0 /. 1e3)
          (Stats.Histogram.percentile hist 99.9 /. 1e3);

        (* And a burst of CPU + memory work at native speed. *)
        let t0 = Sim.clock () in
        guest.Instance.exec_mem_ns ~working_set:512e6 ~locality:0.8 10e6;
        Printf.printf "10ms of compute took %s (native, no VM exits)\n"
          (Simtime.to_string (Sim.clock () -. t0)));
  Testbed.run tb;
  print_endline "quickstart done."
