(* Tests for the hardware substrate models. *)

open Bm_engine
open Bm_hw

let check_float = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let in_sim f =
  let sim = Sim.create () in
  let result = ref None in
  Sim.spawn sim (fun () -> result := Some (f sim));
  Sim.run sim;
  match !result with Some v -> v | None -> Alcotest.fail "simulation did not finish"

(* ------------------------------------------------------------------ *)
(* Cpu_spec *)

let test_spec_catalogue () =
  check_bool "catalogue non-trivial" true (List.length Cpu_spec.all >= 8);
  (match Cpu_spec.find "Xeon E5-2682 v4" with
  | Some spec ->
    check_int "cores" 16 spec.Cpu_spec.cores;
    check_int "threads" 32 spec.Cpu_spec.threads
  | None -> Alcotest.fail "E5-2682 v4 missing");
  Alcotest.(check (option reject)) "unknown absent" None (Cpu_spec.find "Pentium 60")

let test_spec_single_thread_ratios () =
  (* §4.2: E3-1240 v6 is 31% faster single-core than E5-2682 v4;
     §1: i7-8086K is 1.6x of E5-2699 v4. *)
  let mark spec = spec.Cpu_spec.single_thread_mark in
  check_float "E3 vs E5-2682" 1.31 (mark Cpu_spec.xeon_e3_1240_v6 /. mark Cpu_spec.xeon_e5_2682_v4);
  check_bool "i7 vs E5-2699 ~1.6x" true
    (mark Cpu_spec.core_i7_8086k /. mark Cpu_spec.xeon_e5_2699_v4 >= 1.55)

let test_spec_mem_bw () =
  (* 4 channels x 2400 MT/s x 8 B = 76.8 GB/s *)
  check_float "E5-2682 peak bw" 76.8 (Cpu_spec.peak_mem_bw_gb_s Cpu_spec.xeon_e5_2682_v4)

(* ------------------------------------------------------------------ *)
(* Cores *)

let test_cores_execution_time () =
  let elapsed =
    in_sim (fun sim ->
        let cores = Cores.create sim ~spec:Cpu_spec.xeon_e5_2682_v4 () in
        let t0 = Sim.clock () in
        (* 2.5e9 cycles at 2.5 GHz = 1 s *)
        Cores.execute_cycles cores 2.5e9;
        Sim.clock () -. t0)
  in
  check_float "1s of cycles" 1e9 elapsed

let test_cores_contention () =
  let elapsed =
    in_sim (fun sim ->
        let cores = Cores.create sim ~spec:Cpu_spec.xeon_e5_2682_v4 ~threads:2 () in
        let done_ = Sim.Ivar.create () in
        let remaining = ref 4 in
        for _ = 1 to 4 do
          Sim.fork (fun () ->
              Cores.execute_ns cores 100.0;
              decr remaining;
              if !remaining = 0 then Sim.Ivar.fill done_ ())
        done;
        Sim.Ivar.read done_;
        Sim.clock ())
  in
  (* 4 jobs x 100ns on 2 threads = 200ns *)
  check_float "two waves" 200.0 elapsed

let test_cores_dilation () =
  let elapsed =
    in_sim (fun sim ->
        let cores = Cores.create sim ~spec:Cpu_spec.xeon_e5_2682_v4 () in
        Cores.set_dilation cores (fun natural -> natural *. 1.5);
        let t0 = Sim.clock () in
        Cores.execute_ns cores 100.0;
        Sim.clock () -. t0)
  in
  check_float "50% overhead" 150.0 elapsed

let test_cores_utilization () =
  in_sim (fun sim ->
      let cores = Cores.create sim ~spec:Cpu_spec.xeon_e5_2682_v4 ~threads:1 () in
      Cores.execute_ns cores 500.0;
      Sim.delay 500.0;
      check_float "50% busy" 0.5 (Cores.utilization cores ~now:(Sim.clock ())))

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_single_stream () =
  let elapsed =
    in_sim (fun sim ->
        let mem = Memory.create sim ~peak_gb_s:80.0 ~per_stream_gb_s:10.0 ~efficiency:1.0 () in
        let t0 = Sim.clock () in
        Memory.transfer mem ~bytes_:10e9;
        Sim.clock () -. t0)
  in
  (* Single stream capped at 10 GB/s: 10 GB in 1 s. *)
  check_float "per-stream cap" 1e9 elapsed

let test_memory_fair_share () =
  let times =
    in_sim (fun sim ->
        let mem = Memory.create sim ~peak_gb_s:20.0 ~per_stream_gb_s:20.0 ~efficiency:1.0 () in
        let finished = ref [] in
        let done_ = Sim.Ivar.create () in
        for i = 1 to 2 do
          Sim.fork (fun () ->
              Memory.transfer mem ~bytes_:10e9;
              finished := (i, Sim.clock ()) :: !finished;
              if List.length !finished = 2 then Sim.Ivar.fill done_ ())
        done;
        Sim.Ivar.read done_;
        List.rev_map snd !finished)
  in
  (* Two 10GB transfers sharing 20 GB/s finish together at t = 1s. *)
  List.iter (fun t -> check_float "both at 1s" 1e9 t) times

let test_memory_latecomer () =
  (* Stream A (20GB) starts alone at 20GB/s; stream B (5GB) joins at
     t=0.5s. From then both run at 10GB/s; B finishes at 1.0s, A has 5GB
     left, accelerates to 20GB/s, finishes at 1.25s. *)
  let result =
    in_sim (fun sim ->
        let mem = Memory.create sim ~peak_gb_s:20.0 ~per_stream_gb_s:20.0 ~efficiency:1.0 () in
        let t_a = ref 0.0 and t_b = ref 0.0 in
        let done_ = Sim.Ivar.create () in
        Sim.fork (fun () ->
            Memory.transfer mem ~bytes_:20e9;
            t_a := Sim.clock ();
            if !t_b > 0.0 then Sim.Ivar.fill done_ ());
        Sim.fork (fun () ->
            Sim.delay 0.5e9;
            Memory.transfer mem ~bytes_:5e9;
            t_b := Sim.clock ();
            if !t_a > 0.0 then Sim.Ivar.fill done_ ());
        Sim.Ivar.read done_;
        (!t_a, !t_b))
  in
  let t_a, t_b = result in
  Alcotest.(check (float 1e3)) "B at 1.0s" 1.0e9 t_b;
  Alcotest.(check (float 1e3)) "A at 1.25s" 1.25e9 t_a

let test_memory_tax () =
  let elapsed =
    in_sim (fun sim ->
        let mem = Memory.create sim ~peak_gb_s:10.0 ~per_stream_gb_s:10.0 ~efficiency:1.0 () in
        Memory.set_tax mem 0.25;
        let t0 = Sim.clock () in
        Memory.transfer mem ~bytes_:10e9;
        Sim.clock () -. t0)
  in
  check_float "25% tax" 1.25e9 elapsed

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_hit_after_miss () =
  let c = Cache.create ~size_kb:64 ~ways:4 ~line_bytes:64 in
  Alcotest.(check bool) "first access misses" true (Cache.access c ~owner:1 0x1000 = `Miss);
  Alcotest.(check bool) "second access hits" true (Cache.access c ~owner:1 0x1000 = `Hit);
  Alcotest.(check bool) "same line hits" true (Cache.access c ~owner:1 0x103F = `Hit);
  Alcotest.(check bool) "next line misses" true (Cache.access c ~owner:1 0x1040 = `Miss)

let test_cache_lru_eviction () =
  let c = Cache.create ~size_kb:1 ~ways:2 ~line_bytes:64 in
  (* 1KB, 2 ways, 64B lines -> 8 sets. Fill one set's 2 ways, then a third
     tag evicts the LRU. *)
  let sets = Cache.sets c in
  check_int "sets" 8 sets;
  let addr tag = tag * sets * 64 in
  ignore (Cache.access c ~owner:1 (addr 1));
  ignore (Cache.access c ~owner:1 (addr 2));
  ignore (Cache.access c ~owner:1 (addr 1));
  (* tag2 is now LRU *)
  ignore (Cache.access c ~owner:1 (addr 3));
  Alcotest.(check bool) "tag1 survives" true (Cache.access c ~owner:1 (addr 1) = `Hit);
  Alcotest.(check bool) "tag2 evicted" true (Cache.access c ~owner:1 (addr 2) = `Miss)

let test_cache_thrash_interference () =
  let c = Cache.create ~size_kb:256 ~ways:8 ~line_bytes:64 in
  (* Victim warms a working set and enjoys hits. *)
  let victim_ws = List.init 512 (fun i -> i * 64) in
  List.iter (fun a -> ignore (Cache.access c ~owner:1 a)) victim_ws;
  Cache.reset_stats c;
  List.iter (fun a -> ignore (Cache.access c ~owner:1 a)) victim_ws;
  check_float "victim alone hits" 1.0 (Cache.hit_ratio c ~owner:1);
  (* Attacker thrashes the whole cache; the victim's next pass misses. *)
  Cache.thrash c ~owner:2;
  Cache.reset_stats c;
  List.iter (fun a -> ignore (Cache.access c ~owner:1 a)) victim_ws;
  check_bool "victim hits destroyed" true (Cache.hit_ratio c ~owner:1 < 0.1);
  check_bool "attacker occupies cache" true (Cache.occupancy c ~owner:2 > 0.4)

let prop_cache_occupancy_sums_to_one =
  QCheck.Test.make ~name:"cache occupancies of all owners sum to ~1" ~count:50
    QCheck.(list_of_size (Gen.int_range 50 500) (pair (int_range 0 3) (int_range 0 100000)))
    (fun accesses ->
      let c = Cache.create ~size_kb:16 ~ways:4 ~line_bytes:64 in
      List.iter (fun (owner, addr) -> ignore (Cache.access c ~owner addr)) accesses;
      let total =
        List.fold_left (fun acc o -> acc +. Cache.occupancy c ~owner:o) 0.0 [ 0; 1; 2; 3 ]
      in
      Float.abs (total -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Tlb *)

let test_tlb_reach () =
  let tlb = Tlb.create ~entries:1536 ~page_kb:4 () in
  check_float "reach 6MB" (1536.0 *. 4096.0) (Tlb.reach_bytes tlb);
  check_float "fits: no misses" 0.0 (Tlb.miss_rate tlb ~working_set_bytes:1e6 ~locality:0.0)

let test_tlb_virtualized_walk_costlier () =
  let tlb = Tlb.create () in
  let native = Tlb.walk_ns tlb ~virtualized:false in
  let virt = Tlb.walk_ns tlb ~virtualized:true in
  check_float "2D walk 6x native" 6.0 (virt /. native)

let test_tlb_overhead_grows_with_ws () =
  let tlb = Tlb.create () in
  let ov ws = Tlb.avg_overhead_ns tlb ~virtualized:true ~working_set_bytes:ws ~locality:0.5 in
  check_bool "monotone in ws" true (ov 1e7 < ov 1e8 && ov 1e8 < ov 1e9)

let test_tlb_huge_pages_help () =
  let small = Tlb.create ~huge_pages:false () in
  let huge = Tlb.create ~huge_pages:true () in
  let ws = 1e9 in
  check_bool "huge pages reduce misses" true
    (Tlb.miss_rate huge ~working_set_bytes:ws ~locality:0.0
    < Tlb.miss_rate small ~working_set_bytes:ws ~locality:0.0)

(* ------------------------------------------------------------------ *)
(* Pcie / Dma *)

let test_pcie_register_latency () =
  let elapsed =
    in_sim (fun sim ->
        let link = Pcie.x4 sim ~register_ns:800.0 in
        let t0 = Sim.clock () in
        Pcie.register_access link;
        Sim.clock () -. t0)
  in
  check_float "0.8us per access (FPGA)" 800.0 elapsed

let test_pcie_transfer_bandwidth () =
  let elapsed =
    in_sim (fun sim ->
        let link = Pcie.x4 sim ~register_ns:800.0 in
        let t0 = Sim.clock () in
        Pcie.transfer link ~bytes_:4096;
        Sim.clock () -. t0)
  in
  (* 4096B at 32 Gbit/s = 1024 ns *)
  check_float "x4 serialisation" 1024.0 elapsed

let test_pcie_concurrent_flows_share () =
  let elapsed =
    in_sim (fun sim ->
        let link = Pcie.x8 sim ~register_ns:800.0 in
        let done_ = Sim.Ivar.create () in
        let remaining = ref 2 in
        for _ = 1 to 2 do
          Sim.fork (fun () ->
              Pcie.transfer link ~bytes_:8192;
              decr remaining;
              if !remaining = 0 then Sim.Ivar.fill done_ ())
        done;
        Sim.Ivar.read done_;
        Sim.clock ())
  in
  (* 16KB total at 64 Gbit/s = 2048 ns; chunked FIFO sharing. *)
  check_float "wire serialises both" 2048.0 elapsed

let test_dma_bottleneck_rate () =
  let elapsed =
    in_sim (fun sim ->
        let guest_link = Pcie.x4 sim ~register_ns:800.0 in
        let base_link = Pcie.x8 sim ~register_ns:800.0 in
        let dma = Dma.create sim ~gbit_s:50.0 ~setup_ns:0.0 () in
        let t0 = Sim.clock () in
        Dma.copy dma ~src:guest_link ~dst:base_link ~bytes_:40_000;
        Sim.clock () -. t0)
  in
  (* Bottleneck is the x4 at 32 Gbit/s: 40kB = 10,000 ns. *)
  check_float "x4-bound copy" 10_000.0 elapsed;
  ()

let test_dma_engine_cap () =
  (* Two flows over distinct x4 links share the 50 Gbit/s engine: 2 x
     40kB = 80kB at 50 Gbit/s = 12.8 us (not 10 us as two free x4s
     would allow). *)
  let elapsed =
    in_sim (fun sim ->
        let base_link = Pcie.x8 sim ~register_ns:800.0 in
        let dma = Dma.create sim ~gbit_s:50.0 ~setup_ns:0.0 () in
        let done_ = Sim.Ivar.create () in
        let remaining = ref 2 in
        for _ = 1 to 2 do
          Sim.fork (fun () ->
              let link = Pcie.x4 sim ~register_ns:800.0 in
              Dma.copy dma ~src:link ~dst:base_link ~bytes_:40_000;
              decr remaining;
              if !remaining = 0 then Sim.Ivar.fill done_ ())
        done;
        Sim.Ivar.read done_;
        Sim.clock ())
  in
  check_bool "engine caps combined rate" true (elapsed >= 12_500.0)

(* ------------------------------------------------------------------ *)
(* Irq / Power *)

let test_irq_delivery () =
  let fired_at =
    in_sim (fun sim ->
        let irq = Irq.create sim ~delivery_ns:500.0 () in
        let at = ref nan in
        Sim.delay 100.0;
        Irq.raise_irq irq ~handler:(fun () -> at := Sim.clock ());
        Sim.delay 10_000.0;
        !at)
  in
  check_float "delivered after 500ns" 600.0 fired_at

let test_power_vm_server () =
  (* §3.5: vm-based server = dual 24-core (96HT) CPUs, 88HT sellable,
     ~3.06 W/vCPU. *)
  let components = [ Power.Cpu (Cpu_spec.xeon_platinum_8163, 2) ] in
  let w = Power.watts_per_vcpu ~components ~sellable_vcpus:88 in
  check_bool "close to paper's 3.06" true (Float.abs (w -. 3.06) < 0.8)

let test_power_bmhive_single_board () =
  (* Single 96HT board + FPGA + base CPU: paper says 3.17 W/vCPU. *)
  let components =
    [
      Power.Cpu (Cpu_spec.xeon_platinum_8163, 2);
      Power.Fpga 1;
      Power.Cpu (Cpu_spec.base_server_e5, 1);
    ]
  in
  let w = Power.watts_per_vcpu ~components ~sellable_vcpus:96 in
  check_bool "close to paper's 3.17" true (Float.abs (w -. 3.17) < 1.7);
  let vm_w = Power.watts_per_vcpu ~components:[ Power.Cpu (Cpu_spec.xeon_platinum_8163, 2) ] ~sellable_vcpus:88 in
  check_bool "bm slightly above vm" true (w > vm_w)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "hw.cpu_spec",
      [
        Alcotest.test_case "catalogue" `Quick test_spec_catalogue;
        Alcotest.test_case "single-thread ratios" `Quick test_spec_single_thread_ratios;
        Alcotest.test_case "memory bandwidth" `Quick test_spec_mem_bw;
      ] );
    ( "hw.cores",
      [
        Alcotest.test_case "execution time" `Quick test_cores_execution_time;
        Alcotest.test_case "contention" `Quick test_cores_contention;
        Alcotest.test_case "dilation hook" `Quick test_cores_dilation;
        Alcotest.test_case "utilization" `Quick test_cores_utilization;
      ] );
    ( "hw.memory",
      [
        Alcotest.test_case "per-stream cap" `Quick test_memory_single_stream;
        Alcotest.test_case "fair share" `Quick test_memory_fair_share;
        Alcotest.test_case "latecomer dynamics" `Quick test_memory_latecomer;
        Alcotest.test_case "virtualization tax" `Quick test_memory_tax;
      ] );
    ( "hw.cache",
      [
        Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "thrash interference" `Quick test_cache_thrash_interference;
      ] );
    qsuite "hw.cache.prop" [ prop_cache_occupancy_sums_to_one ];
    ( "hw.tlb",
      [
        Alcotest.test_case "reach" `Quick test_tlb_reach;
        Alcotest.test_case "2D walk cost" `Quick test_tlb_virtualized_walk_costlier;
        Alcotest.test_case "overhead grows with ws" `Quick test_tlb_overhead_grows_with_ws;
        Alcotest.test_case "huge pages" `Quick test_tlb_huge_pages_help;
      ] );
    ( "hw.pcie",
      [
        Alcotest.test_case "register latency" `Quick test_pcie_register_latency;
        Alcotest.test_case "transfer bandwidth" `Quick test_pcie_transfer_bandwidth;
        Alcotest.test_case "concurrent flows share wire" `Quick test_pcie_concurrent_flows_share;
      ] );
    ( "hw.dma",
      [
        Alcotest.test_case "bottleneck rate" `Quick test_dma_bottleneck_rate;
        Alcotest.test_case "engine caps aggregate" `Quick test_dma_engine_cap;
      ] );
    ( "hw.irq",
      [ Alcotest.test_case "delivery latency" `Quick test_irq_delivery ] );
    ( "hw.power",
      [
        Alcotest.test_case "vm server W/vCPU" `Quick test_power_vm_server;
        Alcotest.test_case "bm-hive W/vCPU" `Quick test_power_bmhive_single_board;
      ] );
  ]
