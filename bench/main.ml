(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     bench/main.exe                 run every experiment (full scale)
     bench/main.exe fig12 fig13     run selected experiments
     bench/main.exe --quick         reduced scale (CI-sized)
     bench/main.exe --seed N        deterministic seed (default 2020)
     bench/main.exe --trace FILE    write a Chrome trace_event JSON of the run
     bench/main.exe --metrics       print the datapath metrics table afterwards
     bench/main.exe --faults S:SPEC deterministic fault plan, e.g. 42:default
                                    or 7:link_down=2,firmware_wedge=1
     bench/main.exe --scenario S:SPEC
                                    game-day scenario timeline for the
                                    game_day experiment, e.g. 42:default
                                    or 7:hosts=2,links=1,congest=1,evac=1
     bench/main.exe --policy NAME   degradation policy for the game_day
                                    experiment: ladder (default),
                                    selective, tiered or congestion
     bench/main.exe --jobs N        run up to N experiment cells on parallel
                                    domains (0 = all cores); output is
                                    byte-identical for any N
     bench/main.exe --shards N      intra-run parallelism (0 = all cores):
                                    fleet_scale partitions its flow phase
                                    across N fabric shards; game_day and
                                    policy_race race their scenario arms
                                    on N domains; output is byte-identical
                                    for any N
     bench/main.exe --topology SPEC fabric topology for the cross-host
                                    experiments: two_host or key=value
                                    pairs (hosts, tors, spines,
                                    host_gbit, spine_gbit, host_lat_us,
                                    spine_lat_us, queue)
     bench/main.exe --hosts N       fleet size for the fleet-scale
     bench/main.exe --guests N      experiments (fleet_scale); defaults
     bench/main.exe --tenants N     to the quick/full config
     bench/main.exe --vfs N         SR-IOV functions per device/pool in the
                                    vf_* experiments
     bench/main.exe --datapath D    restrict vf_ablation to one datapath:
                                    vring, passthrough or vf
     bench/main.exe --list          list experiment ids
     bench/main.exe --bechamel      bechamel micro-benchmarks of the
                                    (quick-scale) experiment runs *)

let usage () =
  print_endline
    "usage: main.exe [--quick] [--seed N] [--trace FILE] [--metrics] [--faults SEED:SPEC] \
     [--scenario SEED:SPEC] [--policy NAME] [--jobs N] [--shards N] [--topology SPEC] [--hosts N] \
     [--guests N] [--tenants N] [--vfs N] [--datapath D] [--list] [--bechamel] [experiment ids...]"

type options = {
  quick : bool;
  seed : int;
  trace_file : string option;
  metrics : bool;
  faults : Bm_engine.Fault.plan option;
  scenario : string option;
  policy : string option;
  topo : Bm_fabric.Topology.t option;
  fleet : Bmhive.Experiments.fleet_opts;
  vf : Bmhive.Experiments.vf_opts;
  jobs : int;
  shards : int;
  list : bool;
  bechamel : bool;
  help : bool;
  targets : string list;
}

let default_options =
  {
    quick = false;
    seed = 2020;
    trace_file = None;
    metrics = false;
    faults = None;
    scenario = None;
    policy = None;
    topo = None;
    fleet = Bmhive.Experiments.default_fleet;
    vf = Bmhive.Experiments.default_vf;
    jobs = 1;
    shards = 1;
    list = false;
    bechamel = false;
    help = false;
    targets = [];
  }

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; usage (); exit 2) fmt

(* A proper recursive parser: flags consume their own values, everything
   else is a positional experiment id (so "--seed 7 fig7" no longer
   swallows positionals that happen to spell the seed). *)
let rec parse opts = function
  | [] -> { opts with targets = List.rev opts.targets }
  | "--quick" :: rest -> parse { opts with quick = true } rest
  | "--metrics" :: rest -> parse { opts with metrics = true } rest
  | "--list" :: rest -> parse { opts with list = true } rest
  | "--bechamel" :: rest -> parse { opts with bechamel = true } rest
  | ("--help" | "-h") :: rest -> parse { opts with help = true } rest
  | "--seed" :: v :: rest -> (
    match int_of_string_opt v with
    | Some seed -> parse { opts with seed } rest
    | None -> fail "--seed expects an integer, got %S" v)
  | [ "--seed" ] -> fail "--seed expects a value"
  | "--trace" :: file :: rest -> parse { opts with trace_file = Some file } rest
  | [ "--trace" ] -> fail "--trace expects a file name"
  | "--faults" :: spec :: rest -> (
    match Bm_engine.Fault.parse_spec spec with
    | Ok plan -> parse { opts with faults = Some plan } rest
    | Error e -> fail "--faults: %s" e)
  | [ "--faults" ] -> fail "--faults expects <seed>:<spec>"
  | "--scenario" :: spec :: rest -> (
    match Bmhive.Scenario.parse_spec spec with
    | Ok _ -> parse { opts with scenario = Some spec } rest
    | Error e -> fail "--scenario: %s" e)
  | [ "--scenario" ] -> fail "--scenario expects <seed>:<spec> (e.g. 42:default)"
  | "--policy" :: name :: rest -> (
    match Bm_cloud.Policy.of_name name with
    | Some _ -> parse { opts with policy = Some name } rest
    | None ->
      fail "--policy: unknown policy %S (try: %s)" name
        (String.concat ", " (List.map Bm_cloud.Policy.name Bm_cloud.Policy.all)))
  | [ "--policy" ] -> fail "--policy expects a name (ladder, selective, tiered, congestion)"
  | "--topology" :: spec :: rest -> (
    match Bm_fabric.Topology.parse_spec spec with
    | Ok topo -> parse { opts with topo = Some topo } rest
    | Error e -> fail "--topology: %s" e)
  | [ "--topology" ] -> fail "--topology expects a spec (e.g. two_host or hosts=4,tors=2)"
  | (("--hosts" | "--guests" | "--tenants") as flag) :: v :: rest -> (
    match int_of_string_opt v with
    | Some n when n > 0 ->
      let fleet =
        match flag with
        | "--hosts" -> { opts.fleet with Bmhive.Experiments.fleet_hosts = Some n }
        | "--guests" -> { opts.fleet with Bmhive.Experiments.fleet_guests = Some n }
        | _ -> { opts.fleet with Bmhive.Experiments.fleet_tenants = Some n }
      in
      parse { opts with fleet } rest
    | Some _ | None -> fail "%s expects a positive integer, got %S" flag v)
  | [ ("--hosts" | "--guests" | "--tenants") as flag ] -> fail "%s expects a value" flag
  | "--vfs" :: v :: rest -> (
    match int_of_string_opt v with
    | Some n when n > 0 ->
      parse { opts with vf = { opts.vf with Bmhive.Experiments.vf_count = Some n } } rest
    | Some _ | None -> fail "--vfs expects a positive integer, got %S" v)
  | [ "--vfs" ] -> fail "--vfs expects a value"
  | "--datapath" :: name :: rest -> (
    match Bm_iobond.Vf.datapath_of_name name with
    | Some d ->
      parse { opts with vf = { opts.vf with Bmhive.Experiments.vf_datapath = Some d } } rest
    | None -> fail "--datapath: unknown datapath %S (try: vring, passthrough, vf)" name)
  | [ "--datapath" ] -> fail "--datapath expects a name (vring, passthrough, vf)"
  | "--jobs" :: v :: rest -> (
    match int_of_string_opt v with
    | Some 0 -> parse { opts with jobs = Bmhive.Parallel.default_jobs () } rest
    | Some jobs when jobs > 0 -> parse { opts with jobs } rest
    | Some _ | None -> fail "--jobs expects a non-negative integer, got %S" v)
  | [ "--jobs" ] -> fail "--jobs expects a value"
  | "--shards" :: v :: rest -> (
    match int_of_string_opt v with
    | Some 0 -> parse { opts with shards = Bmhive.Parallel.default_jobs () } rest
    | Some shards when shards > 0 -> parse { opts with shards } rest
    | Some _ | None -> fail "--shards expects a non-negative integer, got %S" v)
  | [ "--shards" ] -> fail "--shards expects a value"
  | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> fail "unknown flag %S" arg
  | id :: rest -> parse { opts with targets = id :: opts.targets } rest

(* One bechamel Test.make per table/figure: measures the wall-clock cost
   of the (quick-scale) experiment regeneration itself, so regressions in
   simulator performance show up as bench regressions. *)
let bechamel_suite seed =
  let open Bechamel in
  let tests =
    List.map
      (fun spec ->
        Test.make ~name:spec.Bmhive.Experiments.id
          (Staged.stage (fun () ->
               ignore
                 (spec.Bmhive.Experiments.run ~scenario:None ~policy:None
                    ~fleet:Bmhive.Experiments.default_fleet ~vf:Bmhive.Experiments.default_vf
                    ~faults:None ~trace:None ~metrics:None ~topo:None ~shards:1 ~quick:true ~seed))))
      Bmhive.Experiments.all
  in
  Test.make_grouped ~name:"experiments" tests

let run_bechamel seed =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances (bechamel_suite seed) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun label ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "%-36s %12.3f ms/run\n" label (est /. 1e6)
      | Some [] | None -> Printf.printf "%-36s (no estimate)\n" label)
    results

let () =
  let opts = parse default_options (List.tl (Array.to_list Sys.argv)) in
  if opts.help then usage ()
  else if opts.list then
    List.iter
      (fun s ->
        Printf.printf "%-10s %-10s %s\n" s.Bmhive.Experiments.id s.Bmhive.Experiments.paper_ref
          s.Bmhive.Experiments.title)
      Bmhive.Experiments.all
  else if opts.bechamel then run_bechamel opts.seed
  else begin
    let trace = Option.map (fun _ -> Bm_engine.Trace.create ()) opts.trace_file in
    let metrics = if opts.metrics then Some (Bm_engine.Metrics.create ()) else None in
    let targets = if opts.targets = [] then Bmhive.Experiments.ids () else opts.targets in
    let t0 = Unix.gettimeofday () in
    (* Cells run on up to --jobs domains; results come back in argument
       order, so stdout is byte-identical whatever the job count. *)
    List.iter
      (fun (_id, result) ->
        match result with
        | Ok outcome -> Bmhive.Experiments.print_outcome outcome
        | Error e ->
          prerr_endline e;
          exit 1)
      (Bmhive.Experiments.run_many ~quick:opts.quick ~seed:opts.seed ~fleet:opts.fleet
         ~vf:opts.vf ?scenario:opts.scenario ?policy:opts.policy ?faults:opts.faults ?trace
         ?metrics ?topo:opts.topo ~jobs:opts.jobs ~shards:opts.shards targets);
    (match metrics with
    | Some m when not (Bm_engine.Metrics.is_empty m) ->
      print_endline "";
      print_endline (Bmhive.Report.metrics_table ~title:"datapath metrics" m)
    | Some _ | None -> ());
    (match (opts.trace_file, trace) with
    | Some file, Some t ->
      let oc = open_out file in
      output_string oc (Bm_engine.Trace.export_json t);
      close_out oc;
      Printf.printf "\ntrace: %d event(s) written to %s (open in chrome://tracing)\n"
        (List.length (Bm_engine.Trace.events t))
        file
    | _ -> ());
    Printf.printf "\n%d experiment(s) in %.1fs (%s scale, seed %d)\n" (List.length targets)
      (Unix.gettimeofday () -. t0)
      (if opts.quick then "quick" else "full")
      opts.seed
  end
