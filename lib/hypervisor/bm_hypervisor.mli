(** The bm-hypervisor: a BM-Hive base server (§3.2–3.4, Fig. 2 right).

    The base is a simplified 16-core Xeon server. The bm-hypervisor is a
    user-space process per guest (§3.2: "Every bm-hypervisor process
    provides service to one bm-guest only for better isolation") that
    polls the guest's IO-Bond shadow rings and bridges them to the DPDK
    vswitch and the SPDK cloud storage. It never virtualizes CPU or
    memory — guests run natively on their compute boards — and it only
    talks to guests through the virtio rings, never through hypercalls. *)

type server

type params = {
  pmd_pkt_ns : float;  (** backend per-packet service cost on base cores *)
  pmd_blk_ns : float;  (** backend per-block-request service cost *)
  bm_cpu_bonus : float;  (** §4.2: bm boards measured ~4%% faster than the
                             reference physical server (different
                             manufacturer/configuration) *)
}

val default_params : params

val create_server :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  Bm_engine.Rng.t ->
  fabric:Bm_cloud.Vswitch.fabric ->
  storage:Bm_cloud.Blockstore.t ->
  ?profile:Bm_iobond.Profile.t ->
  ?board_spec:Bm_hw.Cpu_spec.t ->
  ?board_mem_gb:int ->
  ?boards:int ->
  ?dma_gbit_s:float ->
  ?params:params ->
  ?batch:int ->
  ?vfs:int ->
  ?vf_queues:int ->
  unit ->
  server
(** Default server: FPGA IO-Bond, 8 Xeon E5-2682 v4 boards with 64 GB
    (the head-to-head configuration of §4; a server takes up to 16
    boards, §3.3). [obs] is threaded into the vswitch, every board's
    IO-Bond, and the backend loops (["hyp.bm"] track; offload, PMD and
    rx-drop metrics). [fault] is threaded into every board's IO-Bond;
    additionally the server subscribes to [Pmd_crash]: the per-guest
    backend processes die for the event's dead-time, then respawn and
    drain from where the shadow vrings left off (["hyp.bm.pmd_crashes"]
    / ["hyp.bm.pmd_respawns"]).

    [batch] (default 1) is the PMD poll-tick burst: each backend drain
    pulls up to [batch] descriptors per worker fiber, charging the same
    per-descriptor simulated costs but paying one host-side scheduler
    event per burst instead of one per descriptor. At the default of 1
    the drain stays hint-driven and the event schedule — and therefore
    every simulated latency — is bit-identical to the unbatched engine.
    At [batch > 1] the backend models a real poll-mode driver: it sleeps
    a 1 µs poll tick between bursts so descriptors accumulate into them,
    trading up to one tick of added latency per request for coalesced
    host-side events (see [bench/engine_bench.ml]). Raises
    [Invalid_argument] if [batch < 1].

    [vfs] (default 8) and [vf_queues] (default 2) size the server's
    SR-IOV pool: one shared physical function whose virtual functions
    guests provisioned with [~datapath:Sliced] attach to. The pool
    device is created on first use, so a server that never hands out a
    VF schedules exactly the events it always did. *)

val vswitch : server -> Bm_cloud.Vswitch.t
val base_cores : server -> Bm_hw.Cores.t
val boards : server -> Bm_guest.Board.t array
val free_boards : server -> int
val profile : server -> Bm_iobond.Profile.t

val provision :
  server ->
  name:string ->
  ?net_limits:Bm_cloud.Limits.net ->
  ?blk_limits:Bm_cloud.Limits.blk ->
  ?offload:bool ->
  ?datapath:Bm_iobond.Vf.datapath ->
  unit ->
  (Bm_guest.Instance.t, string) result
(** Power on a free compute board, attach its IO-Bond virtio devices,
    start the per-guest backend process, and return the instance handle.
    Limits default to the cloud-standard ones (§4.1). With [offload]
    (default false), IO-Bond classifies tx flows and forwards known ones
    entirely in hardware (§6).

    [datapath] (default [Vring]) selects the guest's net path:
    [Passthrough] assigns a whole SR-IOV device exclusively,
    [Sliced] attaches one virtual function of the server's shared pool
    (weighted DMA arbitration, bounded per-VF rings). Both deliver
    completions directly into the guest at device latency, skipping
    the bm-hypervisor poll loop; block I/O stays on the shadow-vring
    path either way. When the pool is exhausted, [Sliced] falls back
    to [Vring] (see {!vf_fallbacks}); {!guest_datapath} reports the
    path actually granted. *)

val release : server -> name:string -> unit
(** Power the board off and return it to the free pool. A VF-backed
    guest's function is hot-unplugged (drained on the agenda, then
    freed for the next attachment). *)

val guest_board : server -> name:string -> Bm_guest.Board.t option

(** {2 SR-IOV pool} *)

val vf_capacity : server -> int
(** Virtual functions the server's shared pool can hand out. *)

val vf_free : server -> int
(** Currently unattached pool VFs (the full capacity before first use). *)

val vf_fallbacks : server -> int
(** [Sliced] provisions that found the pool exhausted and fell back to
    the shadow-vring path. *)

val vf_pool_device : server -> Bm_iobond.Vf.dev option
(** The shared pool device, once something attached to it — for the
    per-VF report table and the reassignment experiments. *)

val guest_datapath : server -> name:string -> Bm_iobond.Vf.datapath option
(** The net datapath the guest actually got (after any fallback). *)

val guest_vf : server -> name:string -> Bm_iobond.Vf.vf option
(** The guest's virtual function, for SVFF-style hot-reassignment. *)

val offload_table : server -> name:string -> Bm_iobond.Offload.t option
(** The guest's flow-offload engine when provisioned with [~offload]. *)

val rx_no_buffer_drops : server -> name:string -> int
(** Packets dropped because the guest had no posted rx buffers. *)

val backend_version : server -> name:string -> int
(** Version of the guest's bm-hypervisor backend process (1 at
    provisioning; bumped by {!live_upgrade}). 0 if unknown. *)

val pmd_alive : server -> bool
(** Are the per-guest backend processes currently running? [false] only
    inside an injected [Pmd_crash] dead-time. *)

val pmd_crashes : server -> int
(** Injected backend-process crashes handled so far. *)

val live_upgrade : server -> name:string -> ?handover_ns:float -> unit -> (int, string) result
(** Orthus-style live upgrade of a guest's bm-hypervisor process (§6):
    pause the queue bridges, hand the shadow-ring state to the new
    process (a [handover_ns] blackout, default 200 µs), resume. In-flight
    and newly issued requests survive in the shadow rings. Returns the
    new backend version. Must be called from a simulation process. *)
