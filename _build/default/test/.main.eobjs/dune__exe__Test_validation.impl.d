test/test_validation.ml: Alcotest Bm_engine Float Queueing Rng Sim Stats
