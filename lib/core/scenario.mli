(** Game-day scenario engine: composed fault timelines over a live
    fleet, graceful degradation, and per-tenant SLO scorecards.

    Production game days rehearse the bad afternoon: traffic ramps
    toward the diurnal peak while hosts die, a spine link goes dark,
    background load congests the fabric, and the control plane browns
    out exactly when the operators need it. This module scripts that
    afternoon as a {e seeded, deterministic timeline} over one
    {!Bm_hyp.Fleet.Live} run and scores every tenant against its
    declared SLO ({!Bm_cloud.Slo}).

    A {!timeline} is built from the {!at} / {!every} / {!ramp}
    combinators (or parsed from the [--scenario SEED:SPEC] command-line
    form, {!parse_spec}). The runner compiles fault actions into a
    {!Bm_engine.Fault} plan — host failures become [Server_failure]
    windows, fabric-link failures become [Fabric_link_down] windows
    mapped onto real {!Bm_fabric.Fabric} spine links, control-plane
    brownouts become [Pmd_crash] windows — so fault bookkeeping
    (injection counts, terminal recovery at the horizon, the fault
    summary) is shared with every other fault consumer in the tree.

    {b Degradation policies.} With [degrade:true] a monitor fiber runs
    one {!Bm_cloud.Policy} at window boundaries: it assembles a
    per-window signal bundle (SLO window pressure and misses, failed
    hosts, fabric queue pressure, brownout and breaker state — pure
    reads, never simulation operations), asks the policy to decide,
    and executes the returned actions. The default [Ladder] policy
    reproduces the legacy three-stage ladder bit-identically:

    + shed the lowest tier — Bronze tenants' traffic is pushed through a
      tight {!Bm_cloud.Limits} [Shed] token bucket;
    + tighten the global admission ceiling
      ({!Bm_cloud.Control_plane.set_admission_ceiling});
    + evacuate failed hosts ({!Bm_cloud.Scheduler.drain}, post-copy:
      placement switches instantly, memory streams over the fabric in
      the background).

    The other policies pull different levers: [Selective] sheds only
    the Bronze tenants colocated with the distressed premium tenants
    ({!Bm_cloud.Policy.blast_radius}); [Tiered] applies graduated
    per-tier admission ceilings plus a Bronze placement-class cap
    ({!Bm_cloud.Control_plane.set_class_ceiling}); [Congestion] reacts
    to spine-queue depth and Gold p99 by throttling background bulk
    flows and draining early.

    Every escalation runs under a {!Bm_engine.Fault.Guard} (retry,
    exponential backoff, circuit breaker): a control-plane brownout
    makes the stage action fail, the guard retries, and the breaker
    defers the policy to the next window rather than hammering a
    browned-out control plane — and a failed escalation discards the
    stage move entirely (decide/confirm). Calm windows walk each
    policy back down, undoing each stage in reverse, with per-policy
    hysteresis (distinct raise/relax thresholds and a minimum hold).

    Determinism: same [spec] + same fleet config + same [degrade] +
    same [policy] ⇒ byte-identical {!outcome.scorecard}. All scenario
    randomness comes from SplitMix64 streams split off the spec seed;
    observability never perturbs the run. *)

(** {2 Timeline DSL} *)

type action =
  | Traffic of float
      (** Set the open-loop traffic multiplier (diurnal scale). *)
  | Host_fail of { victim : int; duration_ns : float }
      (** Fail victim host [victim] (see {e victim resolution} below)
          for [duration_ns], then restore it. Guests stay placed on the
          dead host — and their traffic fails — until the degradation
          ladder (or a {!Evacuate} entry) drains it. *)
  | Link_fail of { victim : int; duration_ns : float }
      (** Take the [victim]-th spine link dark for [duration_ns]:
          traffic offered to it drops (ECMP does not route around). *)
  | Congest of { duration_ns : float }
      (** Cross-rack background burst trains sharing the spine for
          [duration_ns]: queueing delay first, loss second. *)
  | Evacuate of { victim : int }
      (** Planned maintenance: drain victim host [victim] now (guests
          re-place immediately, memory streams post-copy), restore the
          host and retry stranded guests shortly after. *)
  | Brownout of { duration_ns : float }
      (** Control-plane brownout: ladder stage actions fail while the
          window is open — the {!Bm_engine.Fault.Guard} machinery earns
          its keep. *)
  | Vf_stall of { duration_ns : float }
      (** SR-IOV virtual functions stop draining for [duration_ns]
          (compiled to {!Bm_engine.Fault.Vf_stall}): VF-backed guests
          see their queue pairs freeze, then pick up where they left
          off. *)
  | Vf_wedge of { duration_ns : float }
      (** The device's VF-reassignment doorbell wedges for
          [duration_ns] (compiled to
          {!Bm_engine.Fault.Vf_reassign_timeout}): hot-reassignments
          attempted inside the window retry under the
          {!Bm_engine.Fault.Guard} and stretch their blackout. *)

type entry = { at : float; action : action }

type timeline = entry list

val at : float -> action -> timeline
(** A single entry at absolute simulated time [at] (ns). *)

val every : period_ns:float -> until_ns:float -> ?start_ns:float -> action -> timeline
(** The action at [start_ns] (default 0), [start_ns + period_ns], …,
    strictly before [until_ns]. *)

val ramp : ?steps:int -> from_ns:float -> until_ns:float -> lo:float -> hi:float -> unit -> timeline
(** A diurnal traffic ramp: [steps] (default 8) {!Traffic} entries
    tracing a half-sine from [lo] up to [hi] and back down over
    [\[from_ns, until_ns)]. *)

(** {2 Scenario specs} *)

type spec = {
  seed : int;
  horizon_ns : float;
  timeline : entry list;  (** sorted by time, ties in submission order *)
}

val default_horizon_ns : float
(** 2 ms of simulated time — matching {!Bm_engine.Fault.make_plan}. *)

val windows : int
(** SLO scoring windows per scenario (24): the ladder gets enough
    boundaries to escalate, act and de-escalate within one horizon. *)

val make : seed:int -> ?horizon_ns:float -> timeline -> spec
(** Sort the timeline (stable) and validate every entry lies within
    [\[0, horizon_ns)]. Raises [Invalid_argument] otherwise. *)

val default_spec : ?horizon_ns:float -> seed:int -> unit -> spec
(** The committed game day: a 0.6→1.5 diurnal ramp, two host failures
    (victims 0 and 1) at 22%% and 26%% of the horizon lasting over half
    of it, one spine-link failure, one congestion episode, one
    control-plane brownout overlapping the ladder's first escalation,
    and one planned maintenance evacuation (victim 2) at 80%%. *)

val parse_spec : string -> (spec, string) result
(** Parse a ["<seed>:<spec>"] command-line scenario, where <spec> is a
    comma-separated list of tokens:

    - [default] — the {!default_spec} timeline;
    - [hosts=<n>] / [links=<n>] / [congest=<n>] / [evac=<n>] /
      [brownout=<n>] / [vfstall=<n>] / [vfwedge=<n>] — [n] events of
      that kind at seeded times;
    - [ramp=<lo>-<hi>] — a diurnal ramp between the two multipliers;
    - [horizon=<ns>] — override the horizon.

    Event times are drawn per kind from SplitMix64 streams split off
    the seed, so adding events of one kind never moves another kind's
    times. Examples: ["42:default"],
    ["7:hosts=2,links=1,congest=1,ramp=0.5-2.0"]. *)

val render : spec -> string
(** One line per entry (plus a header) — committed by the determinism
    tests and the CI smoke. *)

(** {2 Running} *)

type outcome = {
  degrade : bool;
  policy : string;  (** {!Bm_cloud.Policy.name} of the policy that ran *)
  scores : Bm_cloud.Slo.tenant_score list;
  met : int;  (** tenants meeting their SLO *)
  missed : int;
  delivered : int;  (** requests delivered fleet-wide *)
  failed : int;
  shed : int;
  max_stage : int;  (** highest policy stage reached (0 = never) *)
  stage_actions : int;  (** successful guarded stage transitions *)
  guard_retries : int;
  breaker_opens : int;
  evacuated_guests : int;  (** ladder + maintenance re-placements *)
  evac_bytes : int;  (** post-copy memory streamed over the fabric *)
  sim_events : int;
      (** simulation events executed — the scenario bench's events/s
          numerator *)
  fault_summary : string;  (** {!Bm_engine.Fault.summary} of the run *)
  scorecard : string;
      (** {!Report.slo_scorecard} plus the fault and ladder summary
          lines: the byte-identical artefact the CI smoke diffs. *)
}

val run :
  ?trace:Bm_engine.Trace.t ->
  ?metrics:Bm_engine.Metrics.t ->
  ?degrade:bool ->
  ?policy:Bm_cloud.Policy.kind ->
  ?fleet:Bm_hyp.Fleet.Live.config ->
  spec ->
  outcome
(** Build a {!Bm_hyp.Fleet.Live} fleet seeded with [spec.seed]
    ([fleet] defaults to {!Bm_hyp.Fleet.Live.default_config}), declare
    every tenant's SLO (tiers round-robin Gold/Silver/Bronze), arm the
    compiled fault plan, spawn the traffic, metering and monitor
    fibers, run to quiescence and score
    [windows] rolling windows over the horizon.

    {e Victim resolution}: host victim [k] is the host of the [k]-th
    tenant's hottest guest (distinct hosts, in tenant order) — game
    days aim at the blast radius, not at random — falling back to
    seeded distinct hosts once tenants run out. Link victim [k] is the
    [k]-th ToR→spine link in a seeded shuffle.

    [degrade] (default [true]) enables the degradation policy —
    [policy] (default [Ladder]) picks which one; with [degrade:false]
    the same timeline runs open-loop, which is exactly the comparison
    the [game_day] experiment prints. *)
