open Bm_engine

type kind = Cloud_ssd | Local_ssd

type params = {
  net_rtt_ns : float; (* network round trip to the storage node; 0 for local *)
  read_median_ns : float;
  write_median_ns : float;
  sigma : float; (* lognormal shape *)
  tail_p : float; (* probability of a background-management stall *)
  tail_scale_ns : float; (* Pareto scale of the stall *)
  per_kb_ns : float; (* transfer time per KB at the device *)
}

(* Cloud SSD: ~100 us median reads dominated by the network + replica
   path. Local NVMe: ~50 us ("The average latency is only 60 us", §4.3,
   measured through the whole local path). *)
let params_of = function
  | Cloud_ssd ->
    {
      net_rtt_ns = 40_000.0;
      read_median_ns = 60_000.0;
      write_median_ns = 75_000.0;
      sigma = 0.30;
      tail_p = 0.0006;
      tail_scale_ns = 150_000.0;
      per_kb_ns = 250.0;
    }
  | Local_ssd ->
    {
      net_rtt_ns = 0.0;
      read_median_ns = 45_000.0;
      write_median_ns = 30_000.0;
      sigma = 0.25;
      tail_p = 0.0008;
      tail_scale_ns = 120_000.0;
      per_kb_ns = 150.0;
    }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  kind : kind;
  params : params;
  servers : Sim.Resource.resource;
  queue_capacity : int;
  mutable served : int;
  mutable rejected : int;
  obs : Obs.t;
}

let create ?(obs = Obs.none) sim rng ~kind ?parallelism ?(queue_capacity = 512) () =
  let parallelism =
    match parallelism with
    | Some n -> n
    | None -> ( match kind with Cloud_ssd -> 128 | Local_ssd -> 16)
  in
  assert (queue_capacity > 0);
  {
    sim;
    rng;
    kind;
    params = params_of kind;
    servers = Sim.Resource.create ~capacity:parallelism;
    queue_capacity;
    served = 0;
    rejected = 0;
    obs;
  }

let kind t = t.kind

let media_time t ~op ~bytes_ =
  let p = t.params in
  let median = match op with `Read -> p.read_median_ns | `Write | `Flush -> p.write_median_ns in
  let base = Rng.lognormal t.rng ~median ~sigma:p.sigma in
  let tail =
    if Rng.bernoulli t.rng ~p:p.tail_p then Rng.pareto t.rng ~scale:p.tail_scale_ns ~shape:1.5
    else 0.0
  in
  base +. tail +. (p.per_kb_ns *. float_of_int bytes_ /. 1024.0)

let serve t ~op ~bytes_ =
  let p = t.params in
  let t0 = Sim.now t.sim in
  Trace.counter_opt (Obs.trace t.obs) ~track:"cloud.blockstore" "queue_depth" ~now:t0
    (float_of_int (Sim.Resource.in_use t.servers + Sim.Resource.waiting t.servers));
  Sim.delay (p.net_rtt_ns /. 2.0);
  if Sim.Resource.waiting t.servers >= t.queue_capacity then begin
    (* The storage node's admission queue is full: fail the request after
       the front half of the round trip, drawing no service randomness,
       so the client sees a fast, deterministic EBUSY. *)
    t.rejected <- t.rejected + 1;
    Metrics.incr_opt (Obs.metrics t.obs) "cloud.blockstore.rejected";
    Sim.delay (p.net_rtt_ns /. 2.0);
    `Rejected
  end
  else begin
    Sim.Resource.with_resource t.servers (fun () -> Sim.delay (media_time t ~op ~bytes_));
    Sim.delay (p.net_rtt_ns /. 2.0);
    t.served <- t.served + 1;
    Metrics.incr_opt (Obs.metrics t.obs) "cloud.blockstore.served";
    Metrics.observe_opt (Obs.metrics t.obs) "cloud.blockstore.serve_ns" (Sim.now t.sim -. t0);
    `Served
  end

let served t = t.served
let rejected t = t.rejected
let queue_capacity t = t.queue_capacity

let mean_service_ns t ~op =
  match op with
  | `Read -> t.params.read_median_ns
  | `Write | `Flush -> t.params.write_median_ns
