lib/hw/power.ml: Cpu_spec List
