(* Noisy neighbor & platform security: why multi-tenancy needs hardware
   isolation (§2.1, §2.2, Table 1).

   Part 1 — cache interference: on a vm host, tenants share the L3; an
   attacker that "repeatedly flushes the shared (L3) CPU cache with its
   own data" (§2.1) destroys a co-resident victim's hit rate. On BM-Hive
   each guest owns its board's cache: the same attack touches nothing.

   Part 2 — firmware protection: a bm-guest is powerful, but the board's
   firmware only accepts vendor-signed updates (§1), so even a malicious
   bare-metal tenant cannot persist below the OS.

     dune exec examples/noisy_neighbor.exe *)

open Bm_hw
open Bm_guest

let victim_pass cache ~owner working_set_lines =
  Cache.reset_stats cache;
  for i = 0 to working_set_lines - 1 do
    ignore (Cache.access cache ~owner (i * Cache.line_bytes cache))
  done;
  Cache.hit_ratio cache ~owner

let () =
  print_endline "=== Part 1: shared-L3 interference ===";
  (* 40 MB L3 of the Xeon E5-2682 v4, 20-way. *)
  let shared_l3 = Cache.create ~size_kb:(40 * 1024) ~ways:20 ~line_bytes:64 in
  let victim = 1 and attacker = 2 in
  let ws = 100_000 (* ~6.4 MB working set *) in
  (* Warm up, then measure the victim alone. *)
  ignore (victim_pass shared_l3 ~owner:victim ws);
  let alone = victim_pass shared_l3 ~owner:victim ws in
  (* Attacker thrashes the cache between victim passes. *)
  Cache.thrash shared_l3 ~owner:attacker;
  let attacked = victim_pass shared_l3 ~owner:victim ws in
  Printf.printf "vm host, shared L3:   victim hit rate %.0f%% alone -> %.0f%% under attack\n"
    (100.0 *. alone) (100.0 *. attacked);
  Printf.printf "                      attacker occupies %.0f%% of the cache\n"
    (100.0 *. Cache.occupancy shared_l3 ~owner:attacker);

  (* BM-Hive: victim and attacker each own a board-private L3. *)
  let own_l3 = Cache.create ~size_kb:(40 * 1024) ~ways:20 ~line_bytes:64 in
  let other_l3 = Cache.create ~size_kb:(40 * 1024) ~ways:20 ~line_bytes:64 in
  ignore (victim_pass own_l3 ~owner:victim ws);
  let before = victim_pass own_l3 ~owner:victim ws in
  Cache.thrash other_l3 ~owner:attacker;
  let after = victim_pass own_l3 ~owner:victim ws in
  Printf.printf "BM-Hive, own boards:  victim hit rate %.0f%% -> %.0f%% (attack lands elsewhere)\n"
    (100.0 *. before) (100.0 *. after);

  print_endline "\n=== Part 2: signed firmware ===";
  let sim = Bm_engine.Sim.create () in
  let board =
    Board.create sim ~id:0 ~spec:Cpu_spec.xeon_e5_2682_v4 ~mem_gb:64
      ~profile:Bm_iobond.Profile.Fpga ()
  in
  let fw = Board.firmware board in
  Printf.printf "board firmware: v%s\n" (Firmware.version fw);
  (* A malicious tenant forges an update with its own key... *)
  let payload = "implant v666" in
  let forged = Firmware.sign ~key:0xBAD5EED ~payload in
  (match Firmware.update fw ~version:"666" ~payload ~signature:forged with
  | Ok () -> print_endline "  !!! forged update accepted — isolation broken"
  | Error e -> Printf.printf "  forged update rejected: %s\n" e);
  (* ...while the provider's signed update applies. *)
  let real = Firmware.sign ~key:Board.vendor_key ~payload:"official 1.1.0" in
  (match Firmware.update fw ~version:"1.1.0" ~payload:"official 1.1.0" ~signature:real with
  | Ok () -> Printf.printf "  vendor update applied: now v%s\n" (Firmware.version fw)
  | Error e -> Printf.printf "  !!! vendor update rejected: %s\n" e);
  Printf.printf "  rejected updates so far: %d\n" (Firmware.rejected_count fw)
