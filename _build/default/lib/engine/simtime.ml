type t = float

let ns x = x
let us x = x *. 1e3
let ms x = x *. 1e6
let sec x = x *. 1e9
let minutes x = x *. 60e9
let hours x = x *. 3600e9
let to_ns t = t
let to_us t = t /. 1e3
let to_ms t = t /. 1e6
let to_sec t = t /. 1e9

let pp fmt t =
  let a = Float.abs t in
  if a < 1e3 then Format.fprintf fmt "%.0fns" t
  else if a < 1e6 then Format.fprintf fmt "%.2fus" (to_us t)
  else if a < 1e9 then Format.fprintf fmt "%.2fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t
