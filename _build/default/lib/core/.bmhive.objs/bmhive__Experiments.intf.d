lib/core/experiments.mli:
