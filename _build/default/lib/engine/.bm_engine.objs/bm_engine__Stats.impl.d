lib/engine/stats.ml: Array Float Format Stdlib
