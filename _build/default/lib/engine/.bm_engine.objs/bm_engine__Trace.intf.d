lib/engine/trace.mli:
