(** Closed-form queueing results used to validate the simulator.

    The discrete-event engine underpins every number this repository
    reports, so its queueing behaviour is checked against theory: an
    M/M/1 queue simulated with {!Sim} must reproduce these formulas
    (see the [engine.validation] test suite). All times are in the same
    unit as the rates' inverse. *)

val mm1_utilization : lambda:float -> mu:float -> float
(** ρ = λ/μ. Requires λ < μ. *)

val mm1_mean_queue_length : lambda:float -> mu:float -> float
(** L = ρ/(1−ρ), customers in system. *)

val mm1_mean_sojourn : lambda:float -> mu:float -> float
(** W = 1/(μ−λ), time in system. *)

val mm1_mean_wait : lambda:float -> mu:float -> float
(** Wq = ρ/(μ−λ), time in queue before service. *)

val mmc_erlang_c : lambda:float -> mu:float -> c:int -> float
(** Probability an arrival waits in an M/M/c queue (Erlang C). *)

val mmc_mean_wait : lambda:float -> mu:float -> c:int -> float
(** Mean queueing delay in an M/M/c queue. *)

val mg1_mean_wait : lambda:float -> mean_service:float -> service_variance:float -> float
(** Pollaczek–Khinchine: mean wait of an M/G/1 queue. *)

val littles_law_l : lambda:float -> w:float -> float
(** L = λW. *)
