(* Game-day scenario engine benchmark: host-side cost of running the
   composed default scenario (ramp + host/link failures + congestion +
   brownout + evacuation) over a live fleet, open-loop and with the
   degradation ladder, plus spec-parsing throughput and a double-run
   determinism check. Writes BENCH_scenario.json (repo root holds the
   committed baseline).

   Usage:
     scenario_bench.exe [--quick] [--seed N] [--out FILE]

   Sections:
     open_loop   events/sec of the default scenario with degrade:false
     ladder      events/sec with the degradation ladder engaged
     policies    events/sec and SLOs met for every degradation policy
     parse       parse_spec calls/sec on a representative spec string
     determinism scorecards of two identical ladder runs compared *)

module Scenario = Bmhive.Scenario
module Fleet = Bm_hyp.Fleet
module Policy = Bm_cloud.Policy

let quick = ref false
let seed = ref 2020
let out_file = ref "BENCH_scenario.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s -> seed := s
      | None ->
        prerr_endline "--seed expects an integer";
        exit 2);
      parse rest
    | "--out" :: f :: rest ->
      out_file := f;
      parse rest
    | a :: _ ->
      Printf.eprintf "unknown argument %S\n" a;
      prerr_endline "usage: scenario_bench.exe [--quick] [--seed N] [--out FILE]";
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let fleet () = if !quick then Fleet.Live.quick_config else Fleet.Live.default_config

let run_bench ?policy ~degrade () =
  let spec = Scenario.default_spec ~seed:!seed () in
  let o, wall_s = time (fun () -> Scenario.run ~degrade ?policy ~fleet:(fleet ()) spec) in
  (o, wall_s, float_of_int o.Scenario.sim_events /. wall_s)

let parse_bench ~calls =
  let spec_s = "7:hosts=2,links=1,congest=1,evac=1,brownout=1,ramp=0.5-2.0" in
  let (), wall_s =
    time (fun () ->
        for _ = 1 to calls do
          match Scenario.parse_spec spec_s with
          | Ok _ -> ()
          | Error e -> failwith e
        done)
  in
  float_of_int calls /. wall_s

let progress fmt = Printf.ksprintf (fun m -> prerr_endline ("[scenario_bench] " ^ m)) fmt

let () =
  let cfg = fleet () in
  progress "open loop: default scenario over %d hosts / %d guests" cfg.Fleet.Live.hosts
    cfg.Fleet.Live.guests;
  let open_o, open_wall, open_eps = run_bench ~degrade:false () in
  progress "ladder: same scenario with degradation";
  let lad_o, lad_wall, lad_eps = run_bench ~degrade:true () in
  progress "determinism: ladder run repeated";
  let lad_o2, _, _ = run_bench ~degrade:true () in
  let identical = lad_o.Scenario.scorecard = lad_o2.Scenario.scorecard in
  let policy_cells =
    List.map
      (fun kind ->
        progress "policy %s: same scenario" (Policy.name kind);
        let o, wall_s, eps = run_bench ~policy:kind ~degrade:true () in
        (Policy.name kind, o, wall_s, eps))
      Policy.all
  in
  let calls = if !quick then 20_000 else 200_000 in
  progress "parse: %d parse_spec calls" calls;
  let parse_cps = parse_bench ~calls in
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"seed\": %d,\n" !seed;
  p "  \"quick\": %b,\n" !quick;
  p "  \"fleet\": { \"hosts\": %d, \"guests\": %d, \"tenants\": %d },\n" cfg.Fleet.Live.hosts
    cfg.Fleet.Live.guests cfg.Fleet.Live.tenants;
  p "  \"open_loop\": {\n";
  p "    \"sim_events\": %d,\n" open_o.Scenario.sim_events;
  p "    \"wall_s\": %.4f,\n" open_wall;
  p "    \"events_per_sec\": %.0f,\n" open_eps;
  p "    \"slo_met\": %d,\n" open_o.Scenario.met;
  p "    \"slo_missed\": %d\n" open_o.Scenario.missed;
  p "  },\n";
  p "  \"ladder\": {\n";
  p "    \"sim_events\": %d,\n" lad_o.Scenario.sim_events;
  p "    \"wall_s\": %.4f,\n" lad_wall;
  p "    \"events_per_sec\": %.0f,\n" lad_eps;
  p "    \"slo_met\": %d,\n" lad_o.Scenario.met;
  p "    \"slo_missed\": %d,\n" lad_o.Scenario.missed;
  p "    \"max_stage\": %d,\n" lad_o.Scenario.max_stage;
  p "    \"evacuated_guests\": %d\n" lad_o.Scenario.evacuated_guests;
  p "  },\n";
  p "  \"policies\": {\n";
  List.iteri
    (fun i (name, (o : Scenario.outcome), wall_s, eps) ->
      p "    \"%s\": {\n" name;
      p "      \"sim_events\": %d,\n" o.Scenario.sim_events;
      p "      \"wall_s\": %.4f,\n" wall_s;
      p "      \"events_per_sec\": %.0f,\n" eps;
      p "      \"slo_met\": %d,\n" o.Scenario.met;
      p "      \"max_stage\": %d,\n" o.Scenario.max_stage;
      p "      \"evacuated_guests\": %d\n" o.Scenario.evacuated_guests;
      p "    }%s\n" (if i < List.length policy_cells - 1 then "," else ""))
    policy_cells;
  p "  },\n";
  p "  \"parse\": {\n";
  p "    \"calls\": %d,\n" calls;
  p "    \"calls_per_sec\": %.0f\n" parse_cps;
  p "  },\n";
  p "  \"determinism\": { \"scorecards_identical\": %b }\n" identical;
  p "}\n";
  let oc = open_out !out_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf
    "scenario bench: %.0f events/s open loop, %.0f events/s with ladder (SLO met %d -> %d); \
     parse %.0f/s; deterministic: %b\n"
    open_eps lad_eps open_o.Scenario.met lad_o.Scenario.met parse_cps identical;
  Printf.printf "written: %s\n" !out_file
