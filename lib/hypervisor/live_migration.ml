open Bm_engine
open Bm_guest

type injected = {
  sim : Sim.t;
  base : Instance.t;
  wrapped : Instance.t;
  tlb : Bm_hw.Tlb.t;
}

(* Inserting the layer shadows the guest's page tables: a brief stall. *)
let insertion_stall_ns = 50e6

let inject sim rng base =
  match base.Instance.kind with
  | Instance.Virtual -> Error "already virtualized"
  | Instance.Physical -> Error "not a cloud instance"
  | Instance.Bare_metal _ ->
    Sim.delay insertion_stall_ns;
    let tlb = Bm_hw.Tlb.create () in
    let preempt = Preempt.create sim rng ~mode:Preempt.Exclusive ~host_load:0.3 () in
    (* The thin layer adds EPT-style paging and occasional traps on what
       used to be a native guest. *)
    let wrapped =
      {
        base with
        Instance.kind = Instance.Virtual;
        exec_ns = (fun natural -> base.Instance.exec_ns (natural *. 1.02));
        exec_mem_ns =
          (fun ~working_set ~locality natural ->
            let factor = Ept.dilation_factor tlb ~virtualized:true ~working_set ~locality in
            base.Instance.exec_ns (natural *. factor));
        pause = (fun () -> Preempt.maybe_steal preempt);
      }
    in
    Ok { sim; base; wrapped; tlb }

let as_instance t = t.wrapped

type migration_stats = {
  precopy_rounds : int;
  bytes_copied : float;
  blackout_ns : float;
  total_ns : float;
}

let max_rounds = 12
let target_blackout_ns = 10e6

(* Pre-copy traffic on the fabric: 1 MB bursts, a fixed window of
   outstanding chunks, go-back-on-drop retransmission. The endpoint ids
   and tag only feed the ECMP hash — they pin the whole transfer to one
   path, like a real TCP stream. *)
let migration_chunk_bytes = 1_000_000
let migration_window = 16
let migration_tag = 7
let migration_retransmit_ns = 100_000.0

let copy_via sim (net, src_host, dst_host) bytes =
  let chunks = int_of_float (Float.ceil (bytes /. float_of_int migration_chunk_bytes)) in
  if chunks > 0 then begin
    let finished = Sim.Ivar.create () in
    let next = ref 0 in
    let completed = ref 0 in
    let size_of i =
      if i < chunks then migration_chunk_bytes
      else
        (* Last chunk carries the remainder. *)
        let r = bytes -. (float_of_int (chunks - 1) *. float_of_int migration_chunk_bytes) in
        max 1 (int_of_float (Float.ceil r))
    in
    let rec transmit pkt =
      Bm_fabric.Fabric.send net ~src_host ~dst_host pkt
        ~on_drop:(fun pkt ->
          Sim.schedule sim ~delay:migration_retransmit_ns (fun () -> transmit pkt))
        ~deliver:(fun _ ->
          incr completed;
          if !completed >= chunks then Sim.Ivar.fill finished () else send_next ())
    and send_next () =
      if !next < chunks then begin
        incr next;
        let i = !next in
        transmit
          (Bm_virtio.Packet.make ~id:i ~src:(0x4d00 + src_host) ~dst:(0x4d00 + dst_host)
             ~size:(size_of i) ~tag:migration_tag ~protocol:Bm_virtio.Packet.Tcp
             ~sent_at:(Sim.now sim) ())
      end
    in
    for _ = 1 to min migration_window chunks do
      send_next ()
    done;
    Sim.Ivar.read finished
  end

let migrate (t : injected) ?(link_gb_s = 12.5) ?via ~dirty_rate_gb_s ~mem_gb () =
  ignore t.base;
  let link_gb_s =
    match via with
    | None -> link_gb_s
    | Some (net, src_host, dst_host) ->
      Bm_fabric.Fabric.path_capacity_gbit_s net ~src_host ~dst_host /. 8.0
  in
  if dirty_rate_gb_s < 0.0 || mem_gb <= 0 then Error "bad migration parameters"
  else if dirty_rate_gb_s >= link_gb_s then
    Error "guest dirties memory faster than the link can copy: will never converge"
  else begin
    let t0 = Sim.clock () in
    let link_b_ns = link_gb_s in
    (* Copy a round's worth of bytes: over the fabric (contending with
       tenant traffic, so the elapsed time is measured, not computed)
       when a path is given, else the analytic dedicated link. *)
    let copy bytes =
      match via with
      | None ->
        let copy_ns = bytes /. link_b_ns in
        Sim.delay copy_ns;
        copy_ns
      | Some path ->
        let start = Sim.clock () in
        copy_via t.sim path bytes;
        Sim.clock () -. start
    in
    (* Iterative pre-copy: each round copies what the previous round left
       dirty; dirtying continues while copying. *)
    let rec rounds n remaining copied =
      let copy_ns = copy remaining in
      let copied = copied +. remaining in
      let dirtied = copy_ns *. dirty_rate_gb_s in
      if dirtied /. link_b_ns <= target_blackout_ns || n + 1 >= max_rounds then (n + 1, dirtied, copied)
      else rounds (n + 1) dirtied copied
    in
    let total_bytes = float_of_int mem_gb *. 1e9 in
    let precopy_rounds, remainder, copied = rounds 0 total_bytes 0.0 in
    (* Stop-and-copy blackout for the final remainder. *)
    let blackout_ns = copy remainder in
    Ok
      {
        precopy_rounds;
        bytes_copied = copied +. remainder;
        blackout_ns;
        total_ns = Sim.clock () -. t0;
      }
  end
