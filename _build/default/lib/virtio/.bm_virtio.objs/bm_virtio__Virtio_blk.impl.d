lib/virtio/virtio_blk.ml: Bm_engine Feature Metrics Obs Sim Trace Virtio_pci Vring
