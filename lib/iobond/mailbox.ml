open Bm_engine
open Bm_hw

type t = {
  sim : Sim.t;
  base_link : Pcie.t;
  mutable heads : int array;
  mutable tails : int array;
  mutable rings : int;
  mutable pci_accesses : int;
  mutable tail_writes : int;
  mutable lost_tail_writes : int;
  obs : Obs.t;
  fault : Fault.t;
  guard : Fault.Guard.g;
}

(* Retry budget sized against the Mailbox_drop window: the cumulative
   backoff (2+4+8+16 µs) outlasts the default 10 µs drop, so a lone
   window never loses a tail write. *)
let tail_policy =
  {
    Fault.Guard.default_policy with
    max_attempts = 5;
    backoff_ns = 2_000.0;
    backoff_mult = 2.0;
    backoff_max_ns = 16_000.0;
  }

let create ?(obs = Obs.none) ?(fault = Fault.none) sim ~base_link =
  {
    sim;
    base_link;
    heads = Array.make 8 0;
    tails = Array.make 8 0;
    rings = 0;
    pci_accesses = 0;
    tail_writes = 0;
    lost_tail_writes = 0;
    obs;
    fault;
    guard = Fault.Guard.create ~obs ~policy:tail_policy sim ~name:"mailbox.tail";
  }

let ring_count t = t.rings

let grow arr n = if n <= Array.length arr then arr else Array.append arr (Array.make n 0)

let alloc_ring t =
  let i = t.rings in
  t.rings <- t.rings + 1;
  t.heads <- grow t.heads t.rings;
  t.tails <- grow t.tails t.rings;
  i

let check t i = if i < 0 || i >= t.rings then invalid_arg "Mailbox: bad ring index"

let head t i =
  check t i;
  t.heads.(i)

let set_head t i v =
  check t i;
  t.heads.(i) <- v

let tail t i =
  check t i;
  t.tails.(i)

let write_tail t i v =
  check t i;
  Trace.instant_opt (Obs.trace t.obs) ~track:"iobond.mailbox" "tail_write" ~now:(Sim.now t.sim);
  Metrics.incr_opt (Obs.metrics t.obs) "iobond.mailbox.tail_writes";
  (* Each attempt pays the register hop; during a Mailbox_drop window
     the write crosses the link but never latches. The value written is
     absolute, so retries are idempotent. *)
  let attempt () =
    Pcie.register_access t.base_link;
    if Fault.is_active t.fault Fault.Mailbox_drop then begin
      Metrics.incr_opt (Obs.metrics t.obs) "iobond.mailbox.dropped_tail_writes";
      Error "mailbox: tail write dropped"
    end
    else begin
      t.tails.(i) <- v;
      t.tail_writes <- t.tail_writes + 1;
      Ok ()
    end
  in
  match Fault.Guard.run t.guard attempt with
  | Ok () -> ()
  | Error _ ->
    t.lost_tail_writes <- t.lost_tail_writes + 1;
    Metrics.incr_opt (Obs.metrics t.obs) "iobond.mailbox.lost_tail_writes"

let notify_pci_access t =
  Metrics.incr_opt (Obs.metrics t.obs) "iobond.mailbox.pci_accesses";
  t.pci_accesses <- t.pci_accesses + 1

let pci_access_count t = t.pci_accesses
let tail_writes t = t.tail_writes
let lost_tail_writes t = t.lost_tail_writes
