lib/core/instances.mli: Bm_cloud Bm_hw Format
