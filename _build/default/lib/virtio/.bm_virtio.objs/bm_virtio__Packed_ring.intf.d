lib/virtio/packed_ring.mli:
