lib/virtio/feature.mli: Format
