(** STREAM 5.10 model (Fig. 8).

    "The benchmark was configured to use 1.5GB of memory per array (200M
    elements, 8 bytes each) and 4.5GB in total. We run the benchmark ten
    times with 16 threads." Each kernel's bandwidth is the bytes it moves
    divided by its wall time under the fair-sharing memory model; the
    best of the runs is reported, as STREAM does. *)

type kernel = Copy | Scale | Add | Triad

type result = { kernel : kernel; best_gb_s : float; avg_gb_s : float }

val kernel_name : kernel -> string

val bytes_per_element : kernel -> int
(** Bytes moved per array element: 16 for copy/scale (read + write one
    array each), 24 for add/triad (read two, write one). *)

val run :
  Bm_engine.Sim.t ->
  Bm_guest.Instance.t ->
  ?threads:int ->
  ?elements:int ->
  ?runs:int ->
  unit ->
  result list
(** All four kernels with the paper's defaults (16 threads, 200M
    elements, 10 runs). *)
