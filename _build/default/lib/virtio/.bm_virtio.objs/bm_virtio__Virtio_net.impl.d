lib/virtio/virtio_net.ml: Bm_engine Feature List Metrics Obs Packet Trace Virtio_pci Vring
