type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable size : int }

let create () = { heap = [||]; size = 0 }

let length q = q.size
let is_empty q = q.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  if left < q.size then begin
    let right = left + 1 in
    let smallest = if right < q.size && lt q.heap.(right) q.heap.(left) then right else left in
    if lt q.heap.(smallest) q.heap.(i) then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let heap' = Array.make capacity' entry in
    Array.blit q.heap 0 heap' 0 q.size;
    q.heap <- heap'
  end

let add q ~time ~seq value =
  let entry = { time; seq; value } in
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.time, e.seq, e.value)

let pop q =
  if q.size = 0 then None
  else begin
    let e = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (e.time, e.seq, e.value)
  end

let clear q =
  q.heap <- [||];
  q.size <- 0
