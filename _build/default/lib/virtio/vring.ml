open Bm_engine

let wrap16 = 0xFFFF

(* Descriptor flags from the virtio spec. *)
let f_next = 0x1
let f_write = 0x2
let f_indirect = 0x4

type desc = { mutable addr : int; mutable len : int; mutable flags : int; mutable next : int }

type 'a chain = {
  head : int;
  out : (int * int) list;
  in_ : (int * int) list;
  indirect : bool;
  payload : 'a;
}

type 'a slot = {
  mutable chain_out : (int * int) list;
  mutable chain_in : (int * int) list;
  mutable chain_indirect : bool;
  mutable chain_payload : 'a option;
  mutable ndesc : int; (* table descriptors consumed (1 if indirect) *)
}

type 'a t = {
  size : int;
  desc : desc array;
  avail : int array; (* ring of head indices *)
  used : (int * int) array; (* ring of (head, written) *)
  slots : 'a slot array; (* per-head request bookkeeping *)
  mutable avail_idx : int; (* driver-written, free-running mod 2^16 *)
  mutable used_idx : int; (* device-written *)
  mutable last_avail : int; (* device's private progress index *)
  mutable last_used : int; (* driver's private progress index *)
  mutable free_head : int; (* singly-linked free list through desc.next *)
  mutable num_free : int;
  mutable next_addr : int; (* synthetic buffer address allocator *)
  mutable requests : int; (* added but not yet reaped *)
  (* EVENT_IDX suppression state (virtio spec 2.6.7/2.6.8) *)
  mutable used_event : int option; (* driver-written: interrupt threshold *)
  mutable avail_event : int option; (* device-written: notify threshold *)
  mutable interrupt_pending : bool;
  mutable obs : Obs.t;
  mutable track : string;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~size =
  if not (is_power_of_two size && size >= 2 && size <= 32768) then
    invalid_arg "Vring.create: size must be a power of two in [2, 32768]";
  let desc = Array.init size (fun i -> { addr = 0; len = 0; flags = 0; next = i + 1 }) in
  let slots =
    Array.init size (fun _ ->
        { chain_out = []; chain_in = []; chain_indirect = false; chain_payload = None; ndesc = 0 })
  in
  {
    size;
    desc;
    avail = Array.make size (-1);
    used = Array.make size (-1, 0);
    slots;
    avail_idx = 0;
    used_idx = 0;
    last_avail = 0;
    last_used = 0;
    free_head = 0;
    num_free = size;
    next_addr = 0x1000;
    requests = 0;
    used_event = None;
    avail_event = None;
    interrupt_pending = false;
    obs = Obs.none;
    track = "virtio.vring";
  }

let set_obs t ~track obs =
  t.obs <- obs;
  t.track <- track

let size t = t.size
let num_free t = t.num_free

let avail_pending t = (t.avail_idx - t.last_avail) land wrap16
let used_pending t = (t.used_idx - t.last_used) land wrap16
let in_flight t = t.size - t.num_free
let in_flight_requests t = t.requests
let avail_idx t = t.avail_idx
let used_idx t = t.used_idx

let alloc_addr t len =
  let a = t.next_addr in
  t.next_addr <- t.next_addr + ((len + 0xFFF) land lnot 0xFFF);
  a

(* Pop [n] descriptors off the free list, chained with F_NEXT. *)
let alloc_descs t n =
  assert (n >= 1 && n <= t.num_free);
  let head = t.free_head in
  let rec walk i prev =
    if i = n then begin
      t.free_head <- t.desc.(prev).next;
      t.desc.(prev).flags <- t.desc.(prev).flags land lnot f_next
    end
    else begin
      let cur = if i = 0 then head else t.desc.(prev).next in
      t.desc.(cur).flags <- f_next;
      walk (i + 1) cur
    end
  in
  walk 0 head;
  t.num_free <- t.num_free - n;
  head

let free_descs t head n =
  (* Walk the chain to its tail and splice it back onto the free list. *)
  let rec tail i cur = if i = n - 1 then cur else tail (i + 1) t.desc.(cur).next in
  let last = tail 0 head in
  t.desc.(last).next <- t.free_head;
  t.free_head <- head;
  t.num_free <- t.num_free + n

let add t ?(indirect = false) ~out ~in_ payload =
  let nsegs = List.length out + List.length in_ in
  if nsegs = 0 then invalid_arg "Vring.add: at least one segment required";
  List.iter (fun l -> if l < 0 then invalid_arg "Vring.add: negative segment") (out @ in_);
  let needed = if indirect then 1 else nsegs in
  if needed > t.num_free || avail_pending t >= t.size then None
  else begin
    let head = alloc_descs t needed in
    let out_segs = List.map (fun len -> (alloc_addr t len, len)) out in
    let in_segs = List.map (fun len -> (alloc_addr t len, len)) in_ in
    if indirect then begin
      let d = t.desc.(head) in
      d.flags <- f_indirect;
      d.addr <- alloc_addr t (nsegs * 16);
      d.len <- nsegs * 16
    end
    else begin
      (* Fill each table descriptor of the chain in order. *)
      let rec fill cur = function
        | [] -> ()
        | (write, (addr, len)) :: rest ->
          let d = t.desc.(cur) in
          d.addr <- addr;
          d.len <- len;
          d.flags <- (d.flags land f_next) lor (if write then f_write else 0);
          fill d.next rest
      in
      fill head
        (List.map (fun s -> (false, s)) out_segs @ List.map (fun s -> (true, s)) in_segs)
    end;
    let slot = t.slots.(head) in
    slot.chain_out <- out_segs;
    slot.chain_in <- in_segs;
    slot.chain_indirect <- indirect;
    slot.chain_payload <- Some payload;
    slot.ndesc <- needed;
    t.avail.(t.avail_idx land (t.size - 1)) <- head;
    t.avail_idx <- (t.avail_idx + 1) land wrap16;
    t.requests <- t.requests + 1;
    Trace.instant_opt (Obs.trace t.obs) ~track:t.track "add" ~now:(Obs.now t.obs);
    Metrics.incr_opt (Obs.metrics t.obs) "virtio.vring.add";
    Some head
  end

let chain_of_head t head =
  let slot = t.slots.(head) in
  match slot.chain_payload with
  | None -> invalid_arg "Vring: no outstanding request at this head"
  | Some payload ->
    { head; out = slot.chain_out; in_ = slot.chain_in; indirect = slot.chain_indirect; payload }

let peek_avail t =
  if avail_pending t = 0 then None
  else Some (chain_of_head t t.avail.(t.last_avail land (t.size - 1)))

let pop_avail t =
  match peek_avail t with
  | None -> None
  | Some chain ->
    t.last_avail <- (t.last_avail + 1) land wrap16;
    Some chain

let payload t ~head =
  match t.slots.(head).chain_payload with
  | None -> invalid_arg "Vring.payload: head not outstanding"
  | Some p -> p

let set_payload t ~head payload =
  let slot = t.slots.(head) in
  match slot.chain_payload with
  | None -> invalid_arg "Vring.set_payload: head not outstanding"
  | Some _ -> slot.chain_payload <- Some payload

(* Spec: an event fires when the free-running index crossed [event]
   going from [old_idx] to [new_idx] (all mod 2^16). *)
let need_event ~event ~new_idx ~old_idx =
  (new_idx - event - 1) land wrap16 < (new_idx - old_idx) land wrap16

let set_used_event t idx = t.used_event <- Some (idx land wrap16)
let set_avail_event t idx = t.avail_event <- Some (idx land wrap16)

let should_notify t =
  match t.avail_event with
  | None -> true
  | Some event -> need_event ~event ~new_idx:t.avail_idx ~old_idx:((t.avail_idx - 1) land wrap16)

let should_interrupt t =
  let fire = t.interrupt_pending in
  t.interrupt_pending <- false;
  fire

let push_used t ~head ~written =
  let slot = t.slots.(head) in
  (match slot.chain_payload with
  | None -> invalid_arg "Vring.push_used: head not outstanding"
  | Some _ -> ());
  t.used.(t.used_idx land (t.size - 1)) <- (head, written);
  let old_idx = t.used_idx in
  t.used_idx <- (t.used_idx + 1) land wrap16;
  Trace.instant_opt (Obs.trace t.obs) ~track:t.track "used" ~now:(Obs.now t.obs);
  Metrics.incr_opt (Obs.metrics t.obs) "virtio.vring.used";
  (match t.used_event with
  | None -> t.interrupt_pending <- true
  | Some event ->
    if need_event ~event ~new_idx:t.used_idx ~old_idx then t.interrupt_pending <- true)

let pop_used t =
  if used_pending t = 0 then None
  else begin
    let head, written = t.used.(t.last_used land (t.size - 1)) in
    t.last_used <- (t.last_used + 1) land wrap16;
    let slot = t.slots.(head) in
    match slot.chain_payload with
    | None -> invalid_arg "Vring.pop_used: corrupted used entry"
    | Some payload ->
      slot.chain_payload <- None;
      free_descs t head slot.ndesc;
      slot.ndesc <- 0;
      t.requests <- t.requests - 1;
      Some (payload, written)
  end

let total_out_bytes chain = List.fold_left (fun acc (_, len) -> acc + len) 0 chain.out
let total_in_bytes chain = List.fold_left (fun acc (_, len) -> acc + len) 0 chain.in_

let check_invariants t =
  let outstanding = Array.fold_left (fun acc s -> acc + s.ndesc) 0 t.slots in
  (* Count the free list. *)
  let rec count cur n =
    if n > t.size then Error "free list cycle"
    else if n = t.num_free then Ok n
    else count t.desc.(cur).next (n + 1)
  in
  match count t.free_head 0 with
  | Error e -> Error e
  | Ok free ->
    if free + outstanding <> t.size then
      Error
        (Printf.sprintf "descriptor leak: free=%d outstanding=%d size=%d" free outstanding t.size)
    else if avail_pending t > t.size then Error "avail overflow"
    else if used_pending t > t.size then Error "used overflow"
    else Ok ()
