type protocol = Udp | Tcp | Icmp

type t = {
  id : int;
  src : int;
  dst : int;
  size : int;
  count : int;
  protocol : protocol;
  tag : int;
  sent_at : float;
}

let make ~id ~src ~dst ~size ?(count = 1) ?(tag = 0) ~protocol ~sent_at () =
  assert (size > 0 && count > 0);
  { id; src; dst; size; count; protocol; tag; sent_at }

let udp_header_bytes = 42
let tcp_header_bytes = 54

let small_udp ~id ~src ~dst ?(count = 1) ~sent_at () =
  make ~id ~src ~dst ~size:((udp_header_bytes + 1) * count) ~count ~protocol:Udp ~sent_at ()

let pp fmt t =
  let proto = match t.protocol with Udp -> "udp" | Tcp -> "tcp" | Icmp -> "icmp" in
  Format.fprintf fmt "pkt#%d %s %d->%d %dB x%d" t.id proto t.src t.dst t.size t.count
