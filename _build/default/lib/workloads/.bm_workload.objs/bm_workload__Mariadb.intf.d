lib/workloads/mariadb.mli: Bm_engine Bm_guest
