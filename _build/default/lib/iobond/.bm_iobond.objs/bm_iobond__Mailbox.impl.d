lib/iobond/mailbox.ml: Array Bm_engine Bm_hw Pcie Sim
