(** Signed compute-board firmware.

    §1: "The firmware of the compute board is properly signed, and can
    only be updated if the signature of the new firmware passes the
    verification." This models the verification gate: updates carry a
    signature computed with the vendor key over the payload; anything
    else — including a signature made with a different key, or a payload
    modified after signing — is rejected and leaves the running firmware
    untouched. *)

type t

val create : vendor_key:int -> version:string -> t
val version : t -> string
val update_count : t -> int
val rejected_count : t -> int

val sign : key:int -> payload:string -> int
(** Produce a signature over [payload] with [key] (keyed digest). *)

val update : t -> version:string -> payload:string -> signature:int -> (unit, string) result
(** Apply an update if [signature] verifies against the vendor key. *)
