(* High-frequency trading: the paper's motivating tenant (§1, §3.3).

   A trading engine wants (a) the best single-thread performance — served
   by a compute board with a desktop-class CPU, something virtualization
   servers never offer — and (b) minimal latency jitter, which rules out
   sharing a host with other tenants. This example compares order-to-ack
   latency across three rentals:

     - vm-guest on the standard Xeon E5 host (pinned, exclusive)
     - bm-guest on a Xeon E5-2682 v4 board
     - bm-guest on a Xeon E3-1240 v6 board (the §4.2 high-frequency SKU)

     dune exec examples/trading.exe *)

open Bm_engine
open Bm_guest
open Bm_workload

(* One order: parse + risk checks + book update, ~15 us of single-thread
   work on the reference core, then an ack on the wire. *)
let order_work_ns = 15_000.0

let run_engine make name =
  let tb = Testbed.make ~seed:11 () in
  let inst = make tb in
  let hist = Stats.Histogram.create ~lo:100.0 ~hi:1e9 () in
  Sim.spawn tb.Testbed.sim (fun () ->
      for _ = 1 to 20_000 do
        let t0 = Sim.clock () in
        inst.Instance.pause ();
        (* Single-thread work scales with the SKU's single-thread mark. *)
        inst.Instance.exec_ns (order_work_ns /. Instance.relative_single_thread inst);
        Stats.Histogram.add hist (Sim.clock () -. t0)
      done);
  Testbed.run tb;
  Printf.printf "%-26s avg %7.1fus  p99 %7.1fus  p99.9 %7.1fus  max %8.1fus\n" name
    (Stats.Histogram.mean hist /. 1e3)
    (Stats.Histogram.percentile hist 99.0 /. 1e3)
    (Stats.Histogram.percentile hist 99.9 /. 1e3)
    (Stats.Histogram.max hist /. 1e3)

let () =
  print_endline "order-to-ack latency, 20,000 orders:";
  run_engine
    (fun tb -> snd (Testbed.vm_guest ~host_load:0.6 ~pinning:Bm_hyp.Preempt.Exclusive tb))
    "vm-guest (E5, exclusive)";
  run_engine
    (fun tb -> snd (Testbed.vm_guest ~host_load:0.6 ~pinning:Bm_hyp.Preempt.Shared tb))
    "vm-guest (E5, shared)";
  run_engine (fun tb -> snd (Testbed.bm_guest tb)) "bm-guest (E5-2682 v4)";
  run_engine
    (fun tb ->
      let server =
        Bm_hyp.Bm_hypervisor.create_server tb.Testbed.sim tb.Testbed.rng ~fabric:tb.Testbed.fabric
          ~storage:tb.Testbed.storage ~board_spec:Bm_hw.Cpu_spec.xeon_e3_1240_v6 ~boards:16 ()
      in
      match Bm_hyp.Bm_hypervisor.provision server ~name:"hft" () with
      | Ok i -> i
      | Error e -> failwith e)
    "bm-guest (E3-1240 v6)";
  print_endline
    "\nThe E3 board is ~31% faster per order (single-thread mark, §4.2) and the\n\
     bm-guests have no host-preemption tail — the vm tail is host tasks stealing\n\
     the vCPU (§2.1/Fig. 1)."
