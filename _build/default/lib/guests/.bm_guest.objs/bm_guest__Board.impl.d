lib/guests/board.ml: Bm_hw Bm_iobond Cores Cpu_spec Firmware Iobond Memory
