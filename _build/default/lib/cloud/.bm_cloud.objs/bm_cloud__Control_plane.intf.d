lib/cloud/control_plane.mli: Image
