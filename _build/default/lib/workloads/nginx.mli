(** NGINX + Apache HTTP benchmark model (Fig. 12).

    "we used the Apache HTTP benchmark to test the NGINX server with the
    KeepAlive feature disabled" — every request pays a TCP handshake
    (kernel accept + a cross-core worker wakeup) and teardown, then the
    server parses the request and serves a small static page. Throughput
    and mean response time are reported per client-concurrency level, as
    the figure sweeps them. *)

type result = {
  concurrency : int;
  requests : int;
  rps : float;
  avg_ms : float;  (** mean time per request, the `ab` headline number *)
  p99_ms : float;
}

val serve : Bm_guest.Instance.t -> ?page_bytes:int -> ?cpu_ns:float -> unit -> unit
(** Install the NGINX service: [cpu_ns] (default 45 µs) of accept+parse+serve
    work per request, responding with [page_bytes] (default 612 — the
    stock nginx welcome page; large pages would hit the 10 Gbit/s egress
    limit instead of exercising the request path). *)

val ab :
  Bm_engine.Sim.t ->
  client:Bm_guest.Instance.t ->
  server:Bm_guest.Instance.t ->
  concurrency:int ->
  requests:int ->
  result
(** Run `ab -c concurrency -n requests` with KeepAlive off. *)
