(* Structure-of-arrays binary heap: the (time, seq) key lives in two
   flat arrays — [times] is an unboxed float array, [seqs] a plain int
   array — and the payload in a third. Pushing or popping an event
   therefore allocates nothing: the old boxed { time; seq; value }
   entry record cost four words per event, which at millions of events
   per second was the single largest allocation source in the engine
   (see BENCH_engine.json "alloc"). Growth doubles all three arrays at
   once; the amortized cost is unchanged. *)

type 'a t = {
  mutable times : float array;  (* flat (Double_array_tag): no boxing *)
  mutable seqs : int array;
  mutable values : Obj.t array;  (* uniform representation, see below *)
  mutable size : int;
}

(* Payloads are stored as [Obj.t] so vacated slots can be nulled with a
   shared immediate (the unit value) without manufacturing a dummy 'a,
   and so a ['a = float] instantiation cannot flip the array to the
   flat float representation behind the generic accessors. The magic is
   confined to [add]/[value_at]: everything enters through Obj.repr and
   leaves through Obj.obj at the same type. *)
let nil = Obj.repr ()

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }

let length q = q.size
let is_empty q = q.size = 0
let capacity q = Array.length q.times

(* (time, seq) lexicographic order on the flat keys. *)
let lt q i j =
  let ti = q.times.(i) and tj = q.times.(j) in
  ti < tj || (ti = tj && q.seqs.(i) < q.seqs.(j))

let swap q i j =
  let t = q.times.(i) in
  q.times.(i) <- q.times.(j);
  q.times.(j) <- t;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let v = q.values.(i) in
  q.values.(i) <- q.values.(j);
  q.values.(j) <- v

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  if left < q.size then begin
    let right = left + 1 in
    let smallest = if right < q.size && lt q right left then right else left in
    if lt q smallest i then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

let grow q =
  let capacity = Array.length q.times in
  if q.size = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let times' = Array.make capacity' 0.0 in
    let seqs' = Array.make capacity' 0 in
    let values' = Array.make capacity' nil in
    Array.blit q.times 0 times' 0 q.size;
    Array.blit q.seqs 0 seqs' 0 q.size;
    Array.blit q.values 0 values' 0 q.size;
    q.times <- times';
    q.seqs <- seqs';
    q.values <- values'
  end

let add q ~time ~seq value =
  grow q;
  let i = q.size in
  q.times.(i) <- time;
  q.seqs.(i) <- seq;
  q.values.(i) <- Obj.repr value;
  q.size <- i + 1;
  sift_up q i

(* {2 Zero-allocation run-loop accessors}

   The simulator's inner loop never materializes a (time, seq, value)
   tuple: it asks [min_le] (a bool), reads [min_time] (small enough for
   cross-module inlining, so the float stays unboxed at the use site)
   and takes the payload alone with [pop_min]. All three are undefined
   on an empty queue — the caller checks [length] first. *)

let[@inline] min_time q = q.times.(0)
let[@inline] min_seq q = q.seqs.(0)

let[@inline] min_le q ~time ~seq =
  let t0 = q.times.(0) in
  t0 < time || (t0 = time && q.seqs.(0) <= seq)

let pop_min q =
  let v = q.values.(0) in
  let last = q.size - 1 in
  q.size <- last;
  if last > 0 then begin
    q.times.(0) <- q.times.(last);
    q.seqs.(0) <- q.seqs.(last);
    q.values.(0) <- q.values.(last)
  end;
  (* Null the vacated slot so the GC can reclaim the payload (fibers
     retained through popped closures were a genuine space leak). *)
  q.values.(last) <- nil;
  if last > 1 then sift_down q 0;
  Obj.obj v

(* {2 Boxed convenience API} — model tests and non-hot-path callers. *)

let peek q =
  if q.size = 0 then None else Some (q.times.(0), q.seqs.(0), (Obj.obj q.values.(0) : 'a))

let pop q =
  if q.size = 0 then None
  else begin
    let time = q.times.(0) and seq = q.seqs.(0) in
    let v = pop_min q in
    Some (time, seq, v)
  end

let pop_if_le q ~time ~seq = if q.size > 0 && min_le q ~time ~seq then pop q else None

let clear q =
  (* Keep the backing arrays (steady-state simulations re-fill them at
     the same size), but drop every payload reference held in them. *)
  Array.fill q.values 0 q.size nil;
  q.size <- 0
