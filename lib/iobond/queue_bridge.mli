(** One virtqueue bridged across IO-Bond: guest vring ↔ shadow vring.

    Fig. 4/Fig. 6 of the paper: the guest's ring lives in compute-board
    memory; the bm-hypervisor's {e shadow vring} lives in base-server
    memory; IO-Bond's DMA engine keeps them synchronised. Requests flow
    guest→shadow (descriptors plus driver→device payload bytes) and
    completions flow shadow→guest (used entry plus device→driver bytes),
    with an MSI to the guest per completion batch.

    All DMA crossings are metered through the compute-board x4 link, the
    base x8 link and the shared 50 Gbit/s engine, so congestion between
    queues and guests emerges from the hardware models. *)

type 'a t

type 'a request = {
  token : int;  (** shadow-ring head; identifies the request to {!complete} *)
  out_bytes : int;  (** driver→device payload size *)
  in_bytes : int;  (** room for device→driver data *)
  payload : 'a;
}

val create :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  name:string ->
  guest:'a Bm_virtio.Vring.t ->
  dma:Bm_hw.Dma.t ->
  guest_link:Bm_hw.Pcie.t ->
  base_link:Bm_hw.Pcie.t ->
  mailbox:Mailbox.t ->
  'a t
(** With [obs], the bridge traces on track ["iobond.<name>"]: doorbell
    instants, per-chain [forward] spans, shadow [pending] counter
    samples, and [guest_irq] instants, plus the ["iobond.doorbells"],
    ["iobond.forwarded"], ["iobond.completed"] and ["iobond.guest_irqs"]
    metrics. With [fault], both mirror engines stall while a
    [Firmware_wedge] window is open (use {!resync} after the reset), and
    a full shadow ring is retried under a backoff policy. *)

val name : _ t -> string
val ring_index : _ t -> int
(** Index of this queue's head/tail registers in the mailbox. *)

val set_guest_interrupt : 'a t -> (unit -> unit) -> unit
(** MSI hook toward the guest (coalesced: one per completion batch). *)

val set_work_hint : 'a t -> (unit -> unit) -> unit
(** Invoked when the shadow ring transitions from empty to non-empty:
    how a poll-mode backend thread learns there is work without the
    simulator paying for idle poll iterations. The real PMD thread spins;
    the hint models the moment its poll would first see the new head. *)

(** {2 Guest side} *)

val guest_notify : 'a t -> unit
(** Doorbell: a posted register write on the compute-board link. Does not
    block the guest; the forward mirror engine starts after the register
    hop. Callable from process or scheduler context. *)

(** {2 Hypervisor side (poll-mode)} *)

val pending : 'a t -> int
(** Mirrored requests awaiting the backend — a host-memory read. *)

val pop : 'a t -> 'a request option
(** [None] while the bridge is paused, even if work is pending. *)

val pop_batch : 'a t -> max:int -> 'a request list
(** Up to [max] requests in ring order — one poll tick's burst. Empty
    while paused or drained. [pop_batch ~max:1] is exactly {!pop}. *)

val pause : 'a t -> unit
(** Stop handing requests to the backend; they accumulate safely in the
    shadow ring (its state is shared memory, which is what lets a new
    bm-hypervisor process take over — the Orthus-style live upgrade the
    paper's §6 builds on). *)

val resume : 'a t -> unit
(** Resume and re-arm the work hint if requests accumulated. *)

val paused : 'a t -> bool

val complete : 'a t -> 'a request -> ?payload:'a -> written:int -> unit -> unit
(** Publish a completion on the shadow ring. [payload] replaces the
    request's payload (a received packet written into a posted rx
    buffer). Cheap; the device only learns about it via {!flush}. *)

val flush : 'a t -> unit
(** Tail-register write (one base-link register hop, charged to the
    calling hypervisor process) starting the completion mirror engine. *)

val resync : 'a t -> unit
(** Post-reset recovery (process or scheduler context): re-publish the
    head register from the shadow ring's avail index, re-arm the work
    hint, and restart both mirror engines. The shadow ring lives in
    base-server memory and survives an IO-Bond wedge, so every in-flight
    request is preserved and re-posted exactly once — head/tail values
    are absolute indices, making the republication idempotent. *)

(** {2 Statistics} *)

val forwarded : 'a t -> int
(** Requests mirrored guest→shadow. *)

val completed : 'a t -> int
(** Completions mirrored shadow→guest. *)

val interrupts : 'a t -> int
val check_invariants : 'a t -> (unit, string) result
