(** Per-instance I/O rate limits (§4.1).

    "The Xeon E5-2682 instance is limited to 4M packets per second (PPS)
    and 10Gbit/s in bandwidth for network access and 25K I/O per second
    (IOPS) for storage access" — plus 300 MB/s of storage bandwidth
    (§4.3). Limits are token buckets with a small burst allowance, as
    production limiters behave. *)

type policy =
  | Block  (** Queue into token-bucket debt: admission always succeeds, late. *)
  | Shed  (** Refuse bursts beyond the available tokens: fail fast, on time. *)

type net = {
  pps : Bm_engine.Token_bucket.t;
  net_bw : Bm_engine.Token_bucket.t;
  mutable net_policy : policy;
  mutable net_shed : int;  (** Packets refused under [Shed]. *)
}

type blk = {
  iops : Bm_engine.Token_bucket.t;
  blk_bw : Bm_engine.Token_bucket.t;
  mutable blk_policy : policy;
  mutable blk_shed : int;  (** Requests refused under [Shed]. *)
}

val cloud_net : ?policy:policy -> unit -> net
(** 4M PPS, 10 Gbit/s. Default policy [Block]. *)

val cloud_blk : ?policy:policy -> unit -> blk
(** 25K IOPS, 300 MB/s. Default policy [Block]. *)

val unlimited_net : unit -> net
val unlimited_blk : unit -> blk

val custom_net : ?policy:policy -> pps:float -> gbit_s:float -> unit -> net
val custom_blk : ?policy:policy -> iops:float -> mb_s:float -> unit -> blk

val ceiling_net : pps:float -> unit -> net
(** A degradation-policy admission ceiling: a [Shed] bucket that binds
    on the packet rate alone (bandwidth is left effectively unlimited
    at 10 Tbit/s), so a per-tier or per-tenant ceiling refuses bursts
    beyond [pps] fail-fast instead of queueing them late. *)

val set_net_policy : net -> policy -> unit
val set_blk_policy : blk -> policy -> unit

val net_shed : net -> int
val blk_shed : blk -> int

val net_admit : net -> packets:int -> bytes_:int -> bool
(** Under [Block]: suspend the calling process until the burst conforms to
    both limits, then return [true]. Under [Shed]: never block — consume
    from both buckets iff both can cover the burst right now, else refuse
    the whole burst (neither bucket is charged) and return [false]. *)

val blk_admit : blk -> bytes_:int -> bool
(** As {!net_admit} for one storage request of [bytes_]. *)
