test/test_engine.ml: Alcotest Array Bm_engine Buffer Float Gen List Pqueue Printf QCheck QCheck_alcotest Rng Sim Simtime Stats String Token_bucket Trace
