(** Observability context threaded through simulated components.

    Bundles an optional {!Trace} sink, an optional {!Metrics} registry,
    and the clock they timestamp against. Every datapath constructor
    takes [?obs] defaulting to {!none}; instrumentation only ever
    {e records} — it must never delay, spawn, or draw randomness — so a
    run with sinks installed is bit-identical to one without. *)

type t

val none : t
(** No sinks; the clock reads 0. Nothing is recorded through it. *)

val create : ?trace:Trace.t -> ?metrics:Metrics.t -> now:(unit -> float) -> unit -> t

val of_sim : ?trace:Trace.t -> ?metrics:Metrics.t -> Sim.t -> t
(** Context whose clock is the simulation clock. *)

val now : t -> float
val clock : t -> unit -> float
val trace : t -> Trace.t option
val metrics : t -> Metrics.t option

val enabled : t -> bool
(** At least one sink installed. *)

val watch_bounded : t -> track:string -> 'a Sim.Bounded.bounded -> unit
(** Install a {!Sim.Bounded.set_probe} hook that records the queue depth
    as a trace counter on [track] and counts drops/rejects as metrics
    ["<track>.dropped"] / ["<track>.rejected"]. A no-op when no sink is
    installed, so the queue stays probe-free on unobserved runs. *)
