lib/guests/sgx.mli: Instance
