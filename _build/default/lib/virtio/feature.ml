type t = int

let indirect_desc = 1 lsl 28
let event_idx = 1 lsl 29
let version_1 = 1 lsl 32
let mrg_rxbuf = 1 lsl 15
let csum_offload = 1 lsl 0

let default_net = indirect_desc lor event_idx lor version_1 lor mrg_rxbuf lor csum_offload
let default_blk = indirect_desc lor event_idx lor version_1

let contains set bits = set land bits = bits
let intersect = ( land )
let union = ( lor )

let pp fmt t =
  let names =
    [
      (indirect_desc, "INDIRECT_DESC");
      (event_idx, "EVENT_IDX");
      (version_1, "VERSION_1");
      (mrg_rxbuf, "MRG_RXBUF");
      (csum_offload, "CSUM");
    ]
  in
  let present = List.filter_map (fun (bit, name) -> if contains t bit then Some name else None) names in
  Format.fprintf fmt "{%s}" (String.concat "," present)
