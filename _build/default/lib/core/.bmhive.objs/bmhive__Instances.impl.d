lib/core/instances.ml: Bm_cloud Bm_hw Cpu_spec Format List
