lib/cloud/tap.mli: Bm_engine Bm_virtio
