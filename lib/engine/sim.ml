exception Not_in_simulation
exception Stopped

type t = {
  mutable time : float;
  mutable seq : int;
  agenda : (unit -> unit) Pqueue.t;
  (* Hot lane: zero-delay events (every Fork, Suspend resume, spawn and
     Bounded wakeup) run at the current time, so they never need the
     heap — a FIFO preserves their (time, seq) order exactly. The seq
     counter stays global across both lanes, so interleaving with heap
     events at the same timestamp is bit-identical to the all-heap
     scheduler.

     The lane is a growable power-of-two ring over two parallel arrays
     (seq, callback) rather than a [Queue.t] of boxed pairs: pushing a
     zero-delay event — the majority of all events in I/O-heavy runs —
     allocates nothing. Popped slots are nulled so finished fibers stay
     collectable. *)
  mutable lane_seqs : int array;
  mutable lane_fns : (unit -> unit) array;
  mutable lane_head : int;
  mutable lane_len : int;
  mutable lane_executed : int;
  mutable heap_executed : int;
  mutable executed : int;
  mutable stopped : bool;
}

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Clock : float Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Fork : (unit -> unit) -> unit Effect.t

(* Shared filler for vacated lane slots: retains nothing. *)
let lane_nil () = ()

let create () =
  {
    time = 0.0;
    seq = 0;
    agenda = Pqueue.create ();
    lane_seqs = [||];
    lane_fns = [||];
    lane_head = 0;
    lane_len = 0;
    lane_executed = 0;
    heap_executed = 0;
    executed = 0;
    stopped = false;
  }

let now t = t.time
let events_executed t = t.executed
let pending_events t = Pqueue.length t.agenda + t.lane_len

type stats = {
  executed : int;
  lane : int;
  heap : int;
  pending_lane : int;
  pending_heap : int;
  lane_capacity : int;
  heap_capacity : int;
}

let stats (t : t) =
  {
    executed = t.executed;
    lane = t.lane_executed;
    heap = t.heap_executed;
    pending_lane = t.lane_len;
    pending_heap = Pqueue.length t.agenda;
    lane_capacity = Array.length t.lane_fns;
    heap_capacity = Pqueue.capacity t.agenda;
  }

let lane_grow t =
  let cap = Array.length t.lane_fns in
  let cap' = max 16 (2 * cap) in
  let seqs' = Array.make cap' 0 in
  let fns' = Array.make cap' lane_nil in
  for k = 0 to t.lane_len - 1 do
    let i = (t.lane_head + k) land (cap - 1) in
    seqs'.(k) <- t.lane_seqs.(i);
    fns'.(k) <- t.lane_fns.(i)
  done;
  t.lane_seqs <- seqs';
  t.lane_fns <- fns';
  t.lane_head <- 0

let[@inline] lane_push t seq f =
  if t.lane_len = Array.length t.lane_fns then lane_grow t;
  let i = (t.lane_head + t.lane_len) land (Array.length t.lane_fns - 1) in
  t.lane_seqs.(i) <- seq;
  t.lane_fns.(i) <- f;
  t.lane_len <- t.lane_len + 1

let[@inline] lane_pop t =
  let i = t.lane_head in
  let f = t.lane_fns.(i) in
  t.lane_fns.(i) <- lane_nil;
  t.lane_head <- (i + 1) land (Array.length t.lane_fns - 1);
  t.lane_len <- t.lane_len - 1;
  f

let schedule t ~delay f =
  (* An explicit raise, not an assert: the guard must survive builds
     that compile assertions out (matches the Delay effect's behavior).
     The negated comparison also rejects a NaN delay. *)
  if not (delay >= 0.0) then invalid_arg "Sim.schedule: delay must be non-negative";
  t.seq <- t.seq + 1;
  if delay = 0.0 then lane_push t t.seq f
  else Pqueue.add t.agenda ~time:(t.time +. delay) ~seq:t.seq f

(* Absolute-time variant for the sharded scheduler's barrier: a message
   carries its exact arrival timestamp, and round-tripping it through a
   delay ([now +. (arrival -. now)]) can land a ulp off — enough to
   break byte-identity of anything derived from [now] at delivery. *)
let schedule_at t ~time f =
  if not (time >= t.time) then invalid_arg "Sim.schedule_at: time must be >= now";
  t.seq <- t.seq + 1;
  if time = t.time then lane_push t t.seq f else Pqueue.add t.agenda ~time ~seq:t.seq f

(* Run [body] as a fiber, interpreting the blocking effects against [t]. *)
let rec exec : t -> (unit -> unit) -> unit =
 fun t body ->
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> if e == Stopped then () else raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
            Some
              (fun (k : (a, unit) continuation) ->
                if d < 0.0 then discontinue k (Invalid_argument "Sim.delay: negative")
                else schedule t ~delay:d (fun () -> continue k ()))
          | Clock -> Some (fun (k : (a, unit) continuation) -> continue k t.time)
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = ref false in
                let resume v =
                  if !resumed then invalid_arg "Sim.suspend: resumed twice";
                  resumed := true;
                  schedule t ~delay:0.0 (fun () -> continue k v)
                in
                register resume)
          | Fork body' ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule t ~delay:0.0 (fun () -> exec t body');
                continue k ())
          | _ -> None);
    }

let spawn t body = schedule t ~delay:0.0 (fun () -> exec t body)

(* The shared inner loop. Every pending hot-lane event runs at the
   current time (zero-delay scheduling can only target "now", and the
   lane always drains before the clock advances), so the next event is
   either the lane's head or a heap event at the same instant with a
   smaller seq. [hseq] selects the horizon semantics: [max_int] pops
   heap events with time <= horizon (the classic inclusive [run]);
   [min_int] pops strictly before it (the {!run_window} barrier of the
   sharded scheduler — live seqs start at 1, so the tie branch of
   [Pqueue.min_le] can never fire). No step of the loop allocates. *)
let exec_loop t ~horizon ~hseq =
  let rec loop () =
    if not t.stopped then begin
      if t.lane_len > 0 then begin
        let lane_seq = t.lane_seqs.(t.lane_head) in
        if Pqueue.length t.agenda > 0 && Pqueue.min_le t.agenda ~time:t.time ~seq:lane_seq
        then begin
          t.time <- Pqueue.min_time t.agenda;
          let f = Pqueue.pop_min t.agenda in
          t.heap_executed <- t.heap_executed + 1;
          t.executed <- t.executed + 1;
          f ()
        end
        else begin
          let f = lane_pop t in
          t.lane_executed <- t.lane_executed + 1;
          t.executed <- t.executed + 1;
          f ()
        end;
        loop ()
      end
      else if Pqueue.length t.agenda > 0 && Pqueue.min_le t.agenda ~time:horizon ~seq:hseq
      then begin
        t.time <- Pqueue.min_time t.agenda;
        let f = Pqueue.pop_min t.agenda in
        t.heap_executed <- t.heap_executed + 1;
        t.executed <- t.executed + 1;
        f ();
        loop ()
      end
    end
  in
  loop ()

let run ?until t =
  t.stopped <- false;
  let horizon = match until with Some u -> u | None -> infinity in
  exec_loop t ~horizon ~hseq:max_int;
  match until with
  | Some u when t.time < u && not t.stopped -> t.time <- u
  | _ -> ()

let run_window t ~until =
  t.stopped <- false;
  if t.time < until then begin
    exec_loop t ~horizon:until ~hseq:min_int;
    (* Park the clock exactly at the window boundary so a message
       injected for arrival >= until can be scheduled with a plain
       non-negative delay. An infinite window (no conduits) leaves the
       clock at the last executed event, like an exhausted [run]. *)
    if (not t.stopped) && Float.is_finite until && t.time < until then t.time <- until
  end

let next_event_time t =
  if t.lane_len > 0 then t.time
  else if Pqueue.length t.agenda > 0 then Pqueue.min_time t.agenda
  else infinity

let stop t =
  t.stopped <- true;
  Pqueue.clear t.agenda;
  Array.fill t.lane_fns 0 (Array.length t.lane_fns) lane_nil;
  t.lane_head <- 0;
  t.lane_len <- 0

let delay d =
  try Effect.perform (Delay d) with Effect.Unhandled _ -> raise Not_in_simulation

let clock () = try Effect.perform Clock with Effect.Unhandled _ -> raise Not_in_simulation

let suspend register =
  try Effect.perform (Suspend register) with Effect.Unhandled _ -> raise Not_in_simulation

let fork body =
  try Effect.perform (Fork body) with Effect.Unhandled _ -> raise Not_in_simulation

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a ivar = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill iv v =
    match iv.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      iv.state <- Full v;
      List.iter (fun resume -> resume v) (List.rev waiters)

  let read iv =
    match iv.state with
    | Full v -> v
    | Empty _ ->
      suspend (fun resume ->
          match iv.state with
          | Full v -> resume v
          | Empty waiters -> iv.state <- Empty (resume :: waiters))

  let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false
  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None
end

module Channel = struct
  type 'a channel = { items : 'a Queue.t; waiters : ('a -> unit) Queue.t }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let send ch v =
    match Queue.take_opt ch.waiters with
    | Some resume -> resume v
    | None -> Queue.add v ch.items

  let recv ch =
    match Queue.take_opt ch.items with
    | Some v -> v
    | None -> suspend (fun resume -> Queue.add resume ch.waiters)

  let try_recv ch = Queue.take_opt ch.items
  let length ch = Queue.length ch.items
end

module Bounded = struct
  type policy = Block | Drop_tail | Drop_head | Reject

  type probe_event = [ `Enqueue | `Deliver | `Drop | `Reject ]

  type 'a bounded = {
    capacity : int;
    policy : policy;
    items : 'a Queue.t;
    receivers : ('a -> unit) Queue.t;
    (* Senders parked under [Block]; their value is not yet in [items]. *)
    parked : ('a * (unit -> unit)) Queue.t;
    mutable sent : int;
    mutable delivered : int;
    mutable dropped : int;
    mutable rejected : int;
    mutable probe : (probe_event -> depth:int -> unit) option;
  }

  let create ~capacity ~policy () =
    if capacity <= 0 then invalid_arg "Sim.Bounded.create: capacity must be positive";
    {
      capacity;
      policy;
      items = Queue.create ();
      receivers = Queue.create ();
      parked = Queue.create ();
      sent = 0;
      delivered = 0;
      rejected = 0;
      dropped = 0;
      probe = None;
    }

  let capacity q = q.capacity
  let policy q = q.policy
  let length q = Queue.length q.items
  let sent q = q.sent
  let delivered q = q.delivered
  let dropped q = q.dropped
  let rejected q = q.rejected
  let waiting_senders q = Queue.length q.parked
  let set_probe q f = q.probe <- Some f

  let note q ev =
    match q.probe with None -> () | Some f -> f ev ~depth:(Queue.length q.items)

  let enqueue q v =
    Queue.add v q.items;
    note q `Enqueue

  let note_delivered q =
    q.delivered <- q.delivered + 1;
    note q `Deliver

  let send q v =
    q.sent <- q.sent + 1;
    match Queue.take_opt q.receivers with
    | Some resume ->
      (* Direct handoff: a receiver is parked, so the queue is empty. *)
      note_delivered q;
      resume v;
      `Sent
    | None ->
      if Queue.length q.items < q.capacity then begin
        enqueue q v;
        `Sent
      end
      else begin
        match q.policy with
        | Block ->
          (* Backpressure: park until a receiver frees a slot. The slot
             transfer (enqueue) happens on the receiver side so FIFO
             order is preserved. *)
          suspend (fun resume -> Queue.add (v, fun () -> resume ()) q.parked);
          `Sent
        | Drop_tail ->
          q.dropped <- q.dropped + 1;
          note q `Drop;
          `Dropped
        | Drop_head ->
          (* Evict the oldest queued item to make room for the newest. *)
          ignore (Queue.take_opt q.items);
          q.dropped <- q.dropped + 1;
          note q `Drop;
          enqueue q v;
          `Sent
        | Reject ->
          q.rejected <- q.rejected + 1;
          note q `Reject;
          `Rejected
      end

  (* After a slot frees, move the oldest parked sender's item in and wake it. *)
  let unpark q =
    match Queue.take_opt q.parked with
    | Some (v, wake) ->
      enqueue q v;
      wake ()
    | None -> ()

  let recv q =
    match Queue.take_opt q.items with
    | Some v ->
      note_delivered q;
      unpark q;
      v
    | None ->
      (* items empty implies no parked senders (capacity > 0). *)
      suspend (fun resume -> Queue.add resume q.receivers)

  let try_recv q =
    match Queue.take_opt q.items with
    | Some v ->
      note_delivered q;
      unpark q;
      Some v
    | None -> None
end

module Resource = struct
  type waiter = { amount : int; resume : unit -> unit }

  type resource = { capacity : int; mutable used : int; queue : waiter Queue.t }

  let create ~capacity =
    assert (capacity > 0);
    { capacity; used = 0; queue = Queue.create () }

  let capacity r = r.capacity
  let in_use r = r.used
  let waiting r = Queue.length r.queue

  (* Grant waiters strictly in FIFO order: stop at the first waiter that
     does not fit, even if a later, smaller one would (no barging). *)
  let rec grant r =
    match Queue.peek_opt r.queue with
    | Some w when r.used + w.amount <= r.capacity ->
      ignore (Queue.pop r.queue);
      r.used <- r.used + w.amount;
      w.resume ();
      grant r
    | Some _ | None -> ()

  let acquire ?(n = 1) r =
    assert (n > 0 && n <= r.capacity);
    if Queue.is_empty r.queue && r.used + n <= r.capacity then r.used <- r.used + n
    else
      suspend (fun resume -> Queue.add { amount = n; resume = (fun () -> resume ()) } r.queue)

  let release ?(n = 1) r =
    assert (n > 0);
    r.used <- r.used - n;
    assert (r.used >= 0);
    grant r

  let with_resource ?(n = 1) r f =
    acquire ~n r;
    match f () with
    | v ->
      release ~n r;
      v
    | exception e ->
      release ~n r;
      raise e
end
