(** VM images.

    Interoperability (§3.1) requires that "a bm-guest can be run in a VM
    as well": the user provides one image and the cloud boots it on
    either substrate, always from remote storage ("the bootloader and
    kernel (both are a part of the VM image) are stored remotely and only
    accessible through the virtio-blk interface", §3.2). *)

type t = {
  name : string;
  bootloader_bytes : int;
  kernel_bytes : int;
  initrd_bytes : int;
  kernel_version : string;
}

val centos7 : t
(** The evaluation image: CentOS 7, kernel 3.10.0-514.26.2.el7 (§4.2). *)

val make :
  name:string -> ?bootloader_bytes:int -> ?kernel_bytes:int -> ?initrd_bytes:int ->
  kernel_version:string -> unit -> t

val total_boot_bytes : t -> int
(** Bytes the firmware must fetch over virtio-blk to reach the kernel. *)

module Store : sig
  type image = t
  type t

  val create : unit -> t
  val add : t -> image -> unit
  val find : t -> string -> image option
  val names : t -> string list
end
