lib/engine/metrics.ml: Float Hashtbl List Printf Stats Stdlib String
