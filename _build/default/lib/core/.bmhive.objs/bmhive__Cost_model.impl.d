lib/core/cost_model.ml: Bm_hw Cpu_spec Power
