lib/hw/cores.ml: Bm_engine Cpu_spec Sim
