lib/engine/sim.mli:
