(** Fleet telemetry (Table 2, Fig. 1) and the live fleet simulation.

    The paper measures 300,000 production VMs for five minutes (Table 2:
    VM exits per second per vCPU) and 20,000 VMs for 24 hours (Fig. 1:
    preemption percentiles). We cannot replay production traces, so this
    module samples the same statistics from the mechanism models: each VM
    draws a workload class, the class implies an exit-rate distribution
    (and interacts with the host-load model for preemption).

    Two fleets live here:

    - the original {e Monte-Carlo sampler} ({!survey_exits},
      {!survey_preemption}) — population statistics with no placement,
      no hosts, no network;
    - the {e live fleet} ({!Live}) — hundreds of fabric-attached hosts,
      a bin-packing {!Bm_cloud.Scheduler}, tenants with quotas and
      metering, and mass evacuation streamed over the {!Bm_fabric.Fabric}.

    The live fleet {e reuses} the sampler's population model —
    {!class_mix}, {!sample_class}, {!sample_exit_rate},
    {!Preempt.sample_window_fraction} — so the two paths cannot drift:
    {!Live.exit_survey} draws from the same distributions as
    {!survey_exits}, conditioned on the classes of the guests actually
    placed. New code should prefer {!Live}; the standalone sampler
    functions below are kept for the Table-2/Fig-1 calibration
    experiments and as the shared population model, and are {b soft-
    deprecated} as a fleet abstraction: they model a population, not a
    fleet. *)

type workload_class = Idle | Web | Database | Cache | Hpc | Io_heavy

val class_mix : (workload_class * float) list
(** Population mixture (sums to 1). *)

val sample_class : Bm_engine.Rng.t -> workload_class

val sample_exit_rate : Bm_engine.Rng.t -> workload_class -> float
(** Exits per second per vCPU for one VM of this class. *)

type exit_survey = {
  vms : int;
  over_10k : float;  (** fraction of VMs with > 10K exits/s/vCPU *)
  over_50k : float;
  over_100k : float;
}

val survey_exits : Bm_engine.Rng.t -> vms:int -> exit_survey
(** Reproduces Table 2 (paper: 3.82%% / 0.37%% / 0.13%%). *)

type preempt_window = {
  hour : int;
  shared_p99 : float;
  shared_p999 : float;
  exclusive_p99 : float;
  exclusive_p999 : float;
}

val survey_preemption :
  Bm_engine.Rng.t -> vms:int -> hours:int -> preempt_window list
(** Reproduces Fig. 1: per hour of the day, the p99/p99.9 preemption
    fraction across the fleet, for shareable and exclusive VMs. Host
    load follows a diurnal curve. *)

val diurnal_load : hour:int -> float
(** The host-load curve used by {!survey_preemption}. *)

(** The live fleet: placement, tenants, serving traffic, mass
    evacuation. Everything is a pure function of [(seed, config, topo)]
    — the property and golden tests depend on it. *)
module Live : sig
  type config = {
    hosts : int;  (** fabric-attached servers *)
    guests : int;  (** instances requested at build time *)
    tenants : int;  (** owners; guests assigned round-robin *)
    bm_fraction : float;  (** fraction of hosts that are BM-Hive bases *)
    host_ceiling : float;  (** per-host sellable fraction (PR-3 ceiling) *)
    chunk_mb : int;  (** evacuation burst size *)
    mem_per_vcpu_gb : int;  (** guest memory footprint per vCPU *)
  }

  val default_config : config
  (** 280 hosts (15%% BM bases of 16 boards, the rest 88-thread
      virtualization servers), 12,000 guests, 40 tenants, 0.9 per-host
      ceiling, 4 MB evacuation chunks. Sized so the packed fleet runs at
      ~80%% of its ceiling-limited capacity — evacuation headroom. *)

  val quick_config : config
  (** 60 hosts / 1,500 guests / 12 tenants — same proportions, CI-sized. *)

  type t

  val build :
    ?trace:Bm_engine.Trace.t ->
    ?metrics:Bm_engine.Metrics.t ->
    ?topo:Bm_fabric.Topology.t ->
    seed:int ->
    config ->
    t
  (** Construct the fleet: auto-size a Clos ({!Bm_fabric.Topology.for_hosts})
      unless [topo] is given and large enough, attach every host (server
      id = fabric port), register tenants (quota: twice the fair share),
      draw each guest's workload class from {!class_mix}, and place the
      whole population first-fit-decreasing. Every 33rd guest requests
      bare metal; three of every 25 guests form an anti-affinity group.
      Same [seed] + [config] ⇒ identical fleet, byte for byte. *)

  val sim : t -> Bm_engine.Sim.t
  val fabric : t -> Bm_fabric.Fabric.t
  val scheduler : t -> Bm_cloud.Scheduler.t
  val config : t -> config

  val placed : t -> int
  (** Guests successfully placed at build time. *)

  val place_failures : t -> int

  val serve : ?shards:int -> t -> duration_ns:float -> unit
  (** Run the fleet for a window of simulated time: a metering fiber
      charges guest-seconds, bytes and IOPS to each owning tenant in
      eight ticks (class-dependent rates), while [2 x hosts] sampled
      east-west bursts cross the fabric. Runs the simulation to
      quiescence.

      With [shards > 1] (default 1) the east-west flow phase is
      partitioned by source host ([h mod shards]) across that many
      fabric replicas — same topology, same ECMP seed, one simulator
      and one OCaml domain each ({!Bm_engine.Shard}) — and the per-link
      and fabric-wide tallies fold back into the main fabric afterwards
      ({!Bm_fabric.Fabric.absorb}). The offered traffic is drawn from
      the flow RNG identically in both modes, so the accounting is
      byte-identical to [shards = 1] whenever the flow phase is
      drop-free (the regime the fleet experiments assert); the control
      plane always stays on the main simulator. *)

  val flow_bursts : t -> int
  (** East-west bursts delivered by {!serve} so far. *)

  val meter_tick : t -> tick_ns:float -> unit
  (** Charge one accounting tick (guest-seconds, bytes, IOPS per owning
      tenant) for every currently placed guest — the same accounting
      {!serve} performs eight times per window, exposed so an external
      orchestrator (the game-day scenario engine) can interleave
      metering with its own traffic and fault timeline. *)

  val guest_host : t -> string -> int option
  (** The server (= fabric host port) a guest is currently placed on;
      [None] for unknown or stranded guests. Tracks evacuations. *)

  val guest_class : t -> string -> workload_class option
  (** The workload class drawn for a guest at build time. *)

  type evac_report = {
    victims : int;  (** guests on the failed host *)
    replaced : int;  (** re-placed elsewhere *)
    stranded : int;  (** admitted but nowhere to go *)
    bytes_streamed : int;  (** memory moved over the fabric *)
    stream_ns : float;  (** simulated time the pre-copy stream took *)
  }

  val evacuate : ?stream_memory:bool -> t -> server:int -> evac_report
  (** Fail [server] and drain it ({!Bm_cloud.Scheduler.drain}), then —
      unless [stream_memory] is [false] — stream each re-placed victim's
      memory to its new host in [chunk_mb] bursts over the fabric,
      keeping a fleet-wide window of 32 bursts in flight so the drained
      host's uplink queue (64) never drops: the pre-copy phase of mass
      live migration. Runs the simulation to quiescence. *)

  val evacuated_bytes : t -> int

  val restore : t -> server:int -> int
  (** Repair [server] ({!Bm_cloud.Control_plane.restore_server}) and
      retry every stranded guest; returns how many recovered. *)

  val occupancy_table : t -> string
  (** One line per host — id, up/down, thread utilization, guest count —
      plus a placed/stranded total. The golden-trajectory regression
      commits this string verbatim. *)

  val utilization_histogram : t -> (float * int) list
  (** Ten deciles of per-host thread utilization: [(lower bound, hosts)]. *)

  val exit_survey : t -> Bm_engine.Rng.t -> exit_survey
  (** Table 2 over the {e placed} population: same
      {!sample_exit_rate} draws as {!survey_exits}, conditioned on each
      placed guest's class. *)

  val preemption_survey : t -> Bm_engine.Rng.t -> hours:int -> preempt_window list
  (** Fig. 1 over the placed population: each guest's host load is its
      server's packed utilization scaled by {!diurnal_load}'s swing;
      exclusive guests (every 5th) use [Preempt.Exclusive]. *)
end
