lib/hw/cores.mli: Bm_engine Cpu_spec
