lib/virtio/packed_ring.mli: Bm_engine
