lib/hypervisor/preempt.ml: Bm_engine Float Metrics Obs Rng Sim Trace
