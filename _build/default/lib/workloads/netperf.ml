open Bm_engine
open Bm_virtio
open Bm_guest

type pps_result = {
  offered_pps : float;
  received_pps : float;
  jitter_pps : float;
  dropped : int;
}

let udp_pps sim ~src ~dst ?(senders = 4) ?(batch = 32) ~duration () =
  let received = ref 0 in
  let offered = ref 0 in
  let dropped = ref 0 in
  let interval = Simtime.ms 10.0 in
  let interval_counts = ref [] in
  let current = ref 0 in
  dst.Instance.set_rx_handler (fun pkt ->
      received := !received + pkt.Packet.count;
      current := !current + pkt.Packet.count);
  (* Sample per-interval receive rates for the jitter estimate. *)
  Sim.spawn sim (fun () ->
      let rec tick () =
        Sim.delay interval;
        interval_counts := !current :: !interval_counts;
        current := 0;
        tick ()
      in
      tick ());
  let stop_at = Sim.now sim +. duration in
  let next_id = ref 0 in
  for _ = 1 to senders do
    Sim.spawn sim (fun () ->
        let rec blast () =
          if Sim.clock () < stop_at then begin
            incr next_id;
            let pkt =
              Packet.small_udp ~id:!next_id ~src:src.Instance.endpoint
                ~dst:dst.Instance.endpoint ~count:batch ~sent_at:(Sim.clock ()) ()
            in
            offered := !offered + batch;
            if not (src.Instance.send pkt) then dropped := !dropped + batch;
            blast ()
          end
        in
        blast ())
  done;
  Sim.run ~until:(stop_at +. Simtime.ms 5.0) sim;
  let seconds = Simtime.to_sec duration in
  let rates = List.map (fun c -> float_of_int c /. Simtime.to_sec interval) !interval_counts in
  let jitter =
    match rates with
    | [] | [ _ ] -> 0.0
    | rates ->
      let s = Stats.Summary.create () in
      (* Drop the first and last partial intervals. *)
      let trimmed = List.filteri (fun i _ -> i > 0 && i < List.length rates - 1) rates in
      List.iter (Stats.Summary.add s) (if trimmed = [] then rates else trimmed);
      Stats.Summary.stddev s
  in
  {
    offered_pps = float_of_int !offered /. seconds;
    received_pps = float_of_int !received /. seconds;
    jitter_pps = jitter;
    dropped = !dropped;
  }

type throughput_result = { gbit_s : float; payload_gbit_s : float; messages : int }

let tcp_stream sim ~src ~dst ?(connections = 64) ?(message_bytes = 1400) ~duration () =
  let received_bytes = ref 0 in
  let payload_bytes = ref 0 in
  let messages = ref 0 in
  let stop_at = Sim.now sim +. duration in
  dst.Instance.set_rx_handler (fun pkt ->
      (* Only arrivals inside the measurement window count. *)
      if Sim.now sim <= stop_at then begin
        received_bytes := !received_bytes + pkt.Packet.size;
        payload_bytes :=
          !payload_bytes + pkt.Packet.size - (Packet.tcp_header_bytes * pkt.Packet.count);
        messages := !messages + pkt.Packet.count
      end);
  let next_id = ref 0 in
  (* Each connection streams messages back-to-back; a burst of 8 messages
     per send models TSO-style batching. *)
  let burst = 8 in
  for _ = 1 to connections do
    Sim.spawn sim (fun () ->
        let rec stream () =
          if Sim.clock () < stop_at then begin
            incr next_id;
            let size = (message_bytes + Packet.tcp_header_bytes) * burst in
            let pkt =
              Packet.make ~id:!next_id ~src:src.Instance.endpoint ~dst:dst.Instance.endpoint
                ~size ~count:burst ~protocol:Packet.Tcp ~sent_at:(Sim.clock ()) ()
            in
            ignore (src.Instance.send pkt);
            stream ()
          end
        in
        stream ())
  done;
  Sim.run ~until:(stop_at +. Simtime.ms 5.0) sim;
  {
    gbit_s = float_of_int !received_bytes *. 8.0 /. duration;
    payload_gbit_s = float_of_int !payload_bytes *. 8.0 /. duration;
    messages = !messages;
  }
