let widths header rows =
  let ncols = List.length header in
  let w = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < ncols then w.(i) <- max w.(i) (String.length cell)) row)
    (header :: rows);
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render_row w row =
  let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
  "| " ^ String.concat " | " cells ^ " |"

let table ?title ~header rows =
  let w = widths header rows in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w)) ^ "+"
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row w header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row w row ^ "\n")) rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print ?title ~header rows = print_endline (table ?title ~header rows)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let si x =
  let ax = Float.abs x in
  if ax >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
  else if ax >= 1e6 then Printf.sprintf "%.2fM" (x /. 1e6)
  else if ax >= 1e3 then Printf.sprintf "%.1fK" (x /. 1e3)
  else Printf.sprintf "%.1f" x

let pct x = Printf.sprintf "%.1f%%" (x *. 100.0)

let check ~paper ~measured ~ok row = row @ [ paper; measured; (if ok then "ok" else "DIFF") ]

let fabric_table ?(title = "fabric links") fabric ~now =
  let rows =
    List.map
      (fun (s : Bm_fabric.Fabric.link_stat) ->
        [
          s.name;
          f1 s.gbit_s;
          pct s.utilization;
          f1 s.depth_p99;
          si (float_of_int s.delivered_pkts);
          si (float_of_int s.dropped_pkts);
          string_of_int s.queued;
        ])
      (Bm_fabric.Fabric.link_stats fabric ~now)
  in
  table ~title
    ~header:[ "link"; "gbit/s"; "util"; "depth p99"; "delivered"; "dropped"; "queued" ]
    rows

let tenant_table ?(title = "tenants") tenants =
  table ~title ~header:Bm_cloud.Tenant.row_header (List.map Bm_cloud.Tenant.row tenants)

let slo_scorecard ?(title = "per-tenant SLO scorecard") scores =
  table ~title ~header:Bm_cloud.Slo.row_header (List.map Bm_cloud.Slo.row scores)

let vf_table ?(title = "virtual functions") dev =
  table ~title ~header:Bm_iobond.Vf.stats_header (Bm_iobond.Vf.stats_rows dev)

let metrics_table ?(title = "metrics") ?fabric ?vf ?(now = 0.0) m =
  let base = table ~title ~header:Bm_engine.Metrics.table_header (Bm_engine.Metrics.rows m) in
  let base = match fabric with None -> base | Some f -> base ^ "\n" ^ fabric_table f ~now in
  match vf with None -> base | Some dev -> base ^ "\n" ^ vf_table dev
