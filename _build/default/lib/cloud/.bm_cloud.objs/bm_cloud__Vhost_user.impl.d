lib/cloud/vhost_user.ml: Array Bm_virtio Option
