type t = {
  entries : int;
  page_bytes : float;
  walk_access_ns : float;
  accesses_per_page_visit : float;
}

let create ?(entries = 1536) ?(page_kb = 4) ?(walk_access_ns = 60.0) ?(huge_pages = false)
    ?(accesses_per_page_visit = 1024.0) () =
  assert (entries > 0 && page_kb > 0 && walk_access_ns > 0.0 && accesses_per_page_visit >= 1.0);
  let factor = if huge_pages then 512 else 1 in
  {
    entries;
    page_bytes = float_of_int (page_kb * 1024 * factor);
    walk_access_ns;
    accesses_per_page_visit;
  }

let reach_bytes t = float_of_int t.entries *. t.page_bytes

let miss_rate t ~working_set_bytes ~locality =
  assert (locality >= 0.0 && locality <= 1.0);
  let reach = reach_bytes t in
  if working_set_bytes <= reach then 0.0
  else begin
    (* Random accesses hit a cached translation with probability
       reach/ws; local accesses always hit. *)
    let uncovered = 1.0 -. (reach /. working_set_bytes) in
    (* A page visit amortises its translation over many accesses (cache
       lines x reuse): per-access miss rates are small even for large
       working sets, which is why real TLB overheads are percents, not
       multiples. *)
    (1.0 -. locality) *. uncovered /. t.accesses_per_page_visit
  end

(* Native radix walk: 4 levels. Two-dimensional (EPT) walk: each of the 4
   guest levels needs a 5-access nested walk plus the final translation,
   24 accesses in the worst case (§5 / [31]). Page-walk caches make the
   typical cost lower; we charge half the worst case. *)
let walk_accesses ~virtualized = if virtualized then 24.0 /. 2.0 else 4.0 /. 2.0

let walk_ns t ~virtualized = walk_accesses ~virtualized *. t.walk_access_ns

let avg_overhead_ns t ~virtualized ~working_set_bytes ~locality =
  miss_rate t ~working_set_bytes ~locality *. walk_ns t ~virtualized
