lib/guests/instance.mli: Bm_hw Bm_iobond Bm_virtio Guest_os
