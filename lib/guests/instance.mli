(** The uniform handle workloads program against.

    An instance is one rented machine — a bm-guest on a compute board, a
    vm-guest on a virtualization server, or a raw physical machine used
    as a baseline (§4.2). Workload models drive only this interface;
    every difference between the substrates (VM exits, EPT walks, host
    preemption, IO-Bond hops, rate limits) lives behind these closures,
    which is exactly the paper's claim that the substrates are
    interchangeable to the application. *)

type kind = Bare_metal of Bm_iobond.Profile.t | Virtual | Physical

type blk_op = [ `Read | `Write | `Flush ]

type blk_error =
  [ `Limited  (** shed by the instance's IOPS/bandwidth rate limiter *)
  | `Busy  (** the guest's own virtio ring was full *)
  | `Rejected  (** the storage backend's admission queue was full *) ]

type t = {
  name : string;
  kind : kind;
  spec : Bm_hw.Cpu_spec.t;
  endpoint : int;  (** cloud-network address *)
  cores : Bm_hw.Cores.t;  (** where guest work executes *)
  memory : Bm_hw.Memory.t;
  os : Guest_os.t;
  exec_ns : float -> unit;
      (** run CPU-bound work given in natural ns on the reference clock
          (E5-2682 v4); blocks for the substrate-adjusted time *)
  exec_mem_ns : working_set:float -> locality:float -> float -> unit;
      (** memory-intensive work: TLB/EPT effects apply *)
  mem_stream : bytes_:float -> unit;  (** bulk bandwidth-bound transfer *)
  send : Bm_virtio.Packet.t -> bool;
      (** transmit a burst through the full stack; [false] = dropped *)
  send_dpdk : Bm_virtio.Packet.t -> bool;  (** kernel-bypass transmit *)
  set_rx_handler : (Bm_virtio.Packet.t -> unit) -> unit;
      (** [handler] runs in a guest process after all receive-side costs *)
  blk : op:blk_op -> bytes_:int -> float;
      (** blocking block I/O; returns the request latency in ns *)
  blk_try : op:blk_op -> bytes_:int -> (float, blk_error) result;
      (** as {!blk} but surfaces overload: time still advances by the
          costs actually paid before the failure, so callers can retry
          with their own backoff (the TCP-retransmission analogue on the
          storage path) *)
  probe : unit -> (int, string) result;
      (** virtio device discovery; returns the register-access count *)
  pause : unit -> unit;
      (** substrate interference point — a vm-guest may lose the CPU to
          host tasks here; free on bare metal *)
  ipi : unit -> unit;
      (** one cross-vCPU thread wakeup (e.g. accept handing a connection
          to a worker): a cheap IPI natively, a pair of VM exits under
          virtualization (§2.1 lists IPIs among the exit causes) *)
  set_poll_mode : bool -> unit;
      (** kernel-bypass receive (the DPDK measurement of Fig. 10): the
          guest polls its rx ring, so deliveries skip interrupt costs
          (and, on a vm-guest, the injection exits) *)
  timer_arm : unit -> unit;
      (** program a one-shot kernel timer (TCP retransmit/TIME_WAIT on
          connection setup and teardown): nanoseconds natively, an MSR
          write — i.e. a VM exit — under virtualization (§2.1) *)
}

val relative_single_thread : t -> float
(** Single-thread speed relative to the reference SKU. *)

val kind_name : t -> string
