lib/iobond/profile.mli: Format
