open Bm_engine

type reason =
  | Ept_violation
  | Msr_access
  | Ipi
  | Io_instruction
  | Hlt
  | External_interrupt
  | Interrupt_window
  | Cpuid

let handle_ns = function
  | Ept_violation -> 12_000.0
  | Msr_access -> 9_000.0
  | Ipi -> 10_000.0
  | Io_instruction -> 10_000.0
  | Hlt -> 4_000.0
  | External_interrupt -> 6_000.0
  | Interrupt_window -> 5_000.0
  | Cpuid -> 3_000.0

let observable_threshold_per_s = 5_000.0

let all =
  [ Ept_violation; Msr_access; Ipi; Io_instruction; Hlt; External_interrupt; Interrupt_window; Cpuid ]

let index = function
  | Ept_violation -> 0
  | Msr_access -> 1
  | Ipi -> 2
  | Io_instruction -> 3
  | Hlt -> 4
  | External_interrupt -> 5
  | Interrupt_window -> 6
  | Cpuid -> 7

let name = function
  | Ept_violation -> "ept"
  | Msr_access -> "msr"
  | Ipi -> "ipi"
  | Io_instruction -> "io"
  | Hlt -> "hlt"
  | External_interrupt -> "extint"
  | Interrupt_window -> "injection"
  | Cpuid -> "cpuid"

type counters = { counts : int array; mutable time_ns : float; obs : Obs.t; track : string }

let create_counters ?(obs = Obs.none) ?(track = "hyp.vmexit") () =
  { counts = Array.make (List.length all) 0; time_ns = 0.0; obs; track }

let record t reason =
  t.counts.(index reason) <- t.counts.(index reason) + 1;
  t.time_ns <- t.time_ns +. handle_ns reason;
  Trace.instant_opt (Obs.trace t.obs) ~track:t.track (name reason) ~now:(Obs.now t.obs);
  Metrics.incr_opt (Obs.metrics t.obs) ("hyp.vmexit." ^ name reason)

let count t reason = t.counts.(index reason)
let total t = Array.fold_left ( + ) 0 t.counts
let total_time_ns t = t.time_ns

let rate_per_s t ~elapsed_ns = if elapsed_ns <= 0.0 then nan else float_of_int (total t) /. (elapsed_ns /. 1e9)

let pp fmt t =
  Format.fprintf fmt "exits=%d time=%.1fus" (total t) (t.time_ns /. 1e3);
  List.iter
    (fun r -> if count t r > 0 then Format.fprintf fmt " %s=%d" (name r) (count t r))
    all
