(** The vhost-user control protocol (§3.4.2).

    "All the I/O requests are handled in the user space with vhost-user
    protocol interfacing to cloud infrastructure: the customized DPDK
    vSwitch and the SPDK cloud storage." Before a backend may touch a
    single descriptor, the front-end (QEMU for a vm-guest, the
    bm-hypervisor's device glue for a bm-guest) walks it through the
    vhost-user handshake: feature negotiation, guest memory-table setup,
    and per-vring configuration (addresses, base index, kick/call
    eventfds) before enabling each ring.

    This module implements that state machine with the same legality
    rules as the real protocol: messages out of order are errors, rings
    cannot be enabled before they are fully configured, and a new memory
    table invalidates previously configured rings. *)

type t

type message =
  | Get_features
  | Set_features of int  (** must be a subset of what {!Get_features} offered *)
  | Set_owner
  | Set_mem_table of { regions : int }
  | Set_vring_num of { index : int; size : int }
  | Set_vring_addr of { index : int }
  | Set_vring_base of { index : int; base : int }
  | Set_vring_kick of { index : int }
  | Set_vring_call of { index : int }
  | Set_vring_enable of { index : int; enabled : bool }
  | Get_vring_base of { index : int }
      (** stop the ring and read back its position (used on reset) *)

type reply = Ack | Features of int | Vring_base of int

val create : ?backend_features:int -> ?num_queues:int -> unit -> t
(** A backend offering [backend_features] (default
    {!Bm_virtio.Feature.default_net}) with [num_queues] vrings
    (default 2). *)

val handle : t -> message -> (reply, string) result
(** Process one front-end message; [Error] models the backend dropping
    the connection on a protocol violation. *)

val ring_enabled : t -> int -> bool
val negotiated_features : t -> int option
val messages_handled : t -> int

val standard_handshake : t -> driver_features:int -> (unit, string) result
(** Drive the canonical message sequence QEMU/bm-hypervisor sends to
    bring all rings up. Leaves every ring enabled on success. *)
