(** On-demand virtualization for bm-guest live migration (§6).

    "Technically, we can insert a virtualization layer into the bm-guest
    at run-time and convert the bare-metal guest to a special vm-guest,
    which can then be migrated to another compute board. We have built a
    working prototype of this design." The paper also lists the two
    drawbacks — it is intrusive, and the injected layer must make
    assumptions about the guest OS — so it never shipped.

    This module is that prototype: {!inject} wraps a running bm-guest
    instance with a thin virtualization layer (its execution becomes
    EPT-dilated and preemptible); {!migrate} then performs a
    pre-copy-style move over the datacenter network. *)

type injected

val inject :
  Bm_engine.Sim.t -> Bm_engine.Rng.t -> Bm_guest.Instance.t -> (injected, string) result
(** Insert the thin hypervisor under a running bm-guest. Fails on
    anything that is not a bare-metal instance. Must be called from a
    simulation process (the insertion stalls the guest briefly while its
    page tables are shadowed). *)

val as_instance : injected -> Bm_guest.Instance.t
(** The guest's view after injection: same workload interface, but
    execution now pays virtualization overheads — the intrusiveness the
    paper objected to, made measurable. *)

type migration_stats = {
  precopy_rounds : int;
  bytes_copied : float;
  blackout_ns : float;  (** stop-and-copy downtime *)
  total_ns : float;
}

val migrate :
  injected ->
  ?link_gb_s:float ->
  ?via:Bm_fabric.Fabric.t * int * int ->
  dirty_rate_gb_s:float ->
  mem_gb:int ->
  unit ->
  (migration_stats, string) result
(** Pre-copy the guest's memory over a [link_gb_s] (default 12.5 —
    100 Gbit/s) network path while it runs, iterating until the dirty
    remainder fits a sub-10 ms stop-and-copy (or round limit), then cut
    over. Must be called from a simulation process.

    With [via (net, src_host, dst_host)], the transfer streams 1 MB
    chunks over the link-level fabric between those hosts instead of an
    analytic dedicated link: the copy contends with tenant traffic in
    the same queues (drops are retransmitted), so round times — and thus
    rounds, blackout and total — stretch under congestion. [link_gb_s]
    is ignored; the convergence check uses the path's bottleneck
    capacity. *)
