(** TLB reach and page-walk cost model.

    Native page walks read up to 4 page-table levels; under nested paging
    every guest level must itself be translated, giving up to 24 memory
    accesses per walk (§5, citing POM-TLB [31]). This module turns a
    workload's memory footprint and locality into an average per-access
    overhead, which {!Bm_hyp.Ept} applies to vm-guests. *)

type t

val create :
  ?entries:int ->
  ?page_kb:int ->
  ?walk_access_ns:float ->
  ?huge_pages:bool ->
  ?accesses_per_page_visit:float ->
  unit ->
  t
(** Defaults: 1536 entries (Broadwell L2 STLB), 4 KB pages, 60 ns per
    page-walk memory access (a miss mostly hits the page-walk caches and
    DRAM), [huge_pages = false] (2 MB pages multiply reach by 512),
    [accesses_per_page_visit = 1024] (each page visit amortises its
    translation across the accesses made while the page is hot). *)

val reach_bytes : t -> float
(** Memory covered by the TLB: entries × page size. *)

val miss_rate : t -> working_set_bytes:float -> locality:float -> float
(** [miss_rate t ~working_set_bytes ~locality] is the probability that a
    memory access misses the TLB. [locality] ∈ [\[0, 1\]] is the fraction
    of accesses that stay within recently used pages (1 = perfectly
    sequential). When the working set fits in the TLB the rate is ~0;
    beyond that the uncovered fraction of random accesses miss. *)

val walk_ns : t -> virtualized:bool -> float
(** Cost of one page walk: 4 accesses natively, 24 under two-level
    paging. *)

val avg_overhead_ns : t -> virtualized:bool -> working_set_bytes:float -> locality:float -> float
(** Expected extra ns per memory access due to TLB misses. *)
