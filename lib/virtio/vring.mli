(** Virtio split virtqueue (descriptor table + avail ring + used ring).

    This is a faithful model of the split-ring layout from the virtio
    spec: a descriptor table managed through a free list, an avail ring
    written by the driver, and a used ring written by the device. Indices
    free-run modulo 2^16 as in real hardware. Buffers carry an arbitrary
    OCaml payload instead of guest-physical bytes; descriptor [addr]
    values are synthetic but stable, and [len] values are real so DMA
    cost models can meter them.

    The same structure serves as the guest-side ring of a vm-guest
    (where the host backend maps it directly) and as both the guest ring
    and the bm-hypervisor's {e shadow vring} in the IO-Bond path (§3.4,
    Fig. 4). *)

type 'a t

type 'a chain = {
  head : int;  (** head descriptor index, the ring's token for the request *)
  out : (int * int) list;  (** driver→device segments as (addr, len) *)
  in_ : (int * int) list;  (** device→driver segments as (addr, len) *)
  indirect : bool;
  payload : 'a;
}

val create : size:int -> 'a t
(** [create ~size] — [size] must be a power of two (spec requirement),
    between 2 and 32768. *)

val set_obs : 'a t -> track:string -> Bm_engine.Obs.t -> unit
(** Install an observability context: {!add} and {!push_used} then emit
    instants on [track] and bump the ["virtio.vring.add"]/["virtio.vring.used"]
    counters. Off (and free) by default. *)

val size : 'a t -> int
val num_free : 'a t -> int
(** Free descriptors in the table. *)

val in_flight : 'a t -> int
(** Descriptors in use (table slots consumed by outstanding requests). *)

val in_flight_requests : 'a t -> int
(** Requests added but not yet reclaimed by {!pop_used}. *)

(** {2 Driver side} *)

val add : 'a t -> ?indirect:bool -> out:int list -> in_:int list -> 'a -> int option
(** [add t ~out ~in_ payload] queues a request whose driver→device
    segments have the byte lengths [out] and device→driver segments
    [in_]. Uses one descriptor per segment, or a single slot when
    [indirect] (default false). Returns the head index, or [None] when
    the table cannot hold the chain. At least one segment is required. *)

val pop_used : 'a t -> ('a * int) option
(** Driver-side completion reaping: returns [(payload, written)] for the
    oldest unseen used entry and recycles its descriptors. *)

val used_pending : 'a t -> int
(** Used entries the driver has not reaped yet. *)

(** {2 Device side} *)

val avail_pending : 'a t -> int
(** Requests the device has not popped yet. *)

val pop_avail : 'a t -> 'a chain option
(** Device-side: take the oldest unseen avail entry. *)

val peek_avail : 'a t -> 'a chain option

val payload : 'a t -> head:int -> 'a
(** Current payload of an outstanding request. Raises [Invalid_argument]
    if [head] is not outstanding. *)

val set_payload : 'a t -> head:int -> 'a -> unit
(** Device-side write into the request's buffers (e.g. a received packet
    placed into an rx buffer) before completing it. *)

val push_used : 'a t -> head:int -> written:int -> unit
(** Device-side completion: publish [head] in the used ring with
    [written] bytes. Raises [Invalid_argument] if [head] is not an
    outstanding popped chain. *)

(** {2 Inspection} *)

val avail_idx : 'a t -> int
(** Free-running (mod 2^16) driver index — IO-Bond mirrors this into its
    head/tail registers. *)

val used_idx : 'a t -> int

(** {2 EVENT_IDX notification suppression (virtio spec §2.6.7–2.6.8)}

    Negotiated through {!Feature.event_idx}. The driver arms
    {!set_used_event} with the used index at which it next wants an
    interrupt; the device arms {!set_avail_event} with the avail index at
    which it next wants a doorbell. Without arming, every completion
    interrupts and every kick notifies. *)

val set_used_event : 'a t -> int -> unit
val set_avail_event : 'a t -> int -> unit

val should_notify : 'a t -> bool
(** Driver side, after {!add}: must the device be kicked? *)

val should_interrupt : 'a t -> bool
(** Device side, after one or more {!push_used}: is an interrupt owed?
    Reading consumes the pending flag (interrupts coalesce). *)

val total_out_bytes : 'a chain -> int
val total_in_bytes : 'a chain -> int
val check_invariants : 'a t -> (unit, string) result
(** Internal consistency check used by the property tests. *)
