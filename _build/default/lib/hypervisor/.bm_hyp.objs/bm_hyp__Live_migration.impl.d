lib/hypervisor/live_migration.ml: Bm_engine Bm_guest Bm_hw Ept Instance Preempt Sim
