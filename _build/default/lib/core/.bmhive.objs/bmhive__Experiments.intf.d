lib/core/experiments.mli: Bm_engine
