lib/virtio/vring.mli: Bm_engine
