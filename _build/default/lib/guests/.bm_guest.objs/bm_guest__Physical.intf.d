lib/guests/physical.mli: Bm_cloud Bm_engine Bm_hw Instance
