(** Named-instrument registry for simulation components.

    A registry maps dotted names ("hw.dma.copy_ns", "hyp.vmexit.msr") to
    instruments — plain counters, {!Stats.Histogram}s, or
    {!Stats.Meter}s — created on first use, so call sites need no setup.
    Registries snapshot to a renderable table and merge across runs.
    Components hold a [t option]; the [_opt] entry points are exact
    no-ops on [None], keeping instrumentation zero-cost when no sink is
    installed. *)

type t

val create : unit -> t

val incr : t -> ?by:float -> string -> unit
(** Bump a counter (registered on first use; default increment 1). *)

val observe : t -> ?lo:float -> ?hi:float -> ?precision:float -> string -> float -> unit
(** Record one value into a histogram. The optional geometry applies only
    on first registration (see {!Stats.Histogram.create}). *)

val mark : t -> ?n:int -> string -> now:float -> unit
(** Mark [n] events (default 1) on a meter at simulated time [now]. *)

val incr_opt : t option -> ?by:float -> string -> unit
val observe_opt : t option -> ?lo:float -> ?hi:float -> ?precision:float -> string -> float -> unit
val mark_opt : t option -> ?n:int -> string -> now:float -> unit

val counter_value : t -> string -> float
(** 0 when the name is unregistered or not a counter. *)

val histogram : t -> string -> Stats.Histogram.t option
val meter : t -> string -> Stats.Meter.t option

val names : t -> string list
(** Registration order. *)

val is_empty : t -> bool

type summary =
  | Counter_total of float
  | Histogram_summary of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
      p999 : float;
      max : float;
    }
  | Meter_rate of { count : int; per_s : float }

val snapshot : t -> (string * summary) list
(** One summary per instrument, in registration order. *)

val merge : t -> t -> t
(** Fresh registry combining both: counters add, histograms and meters
    merge per {!Stats}. Raises [Invalid_argument] if a name is registered
    with different kinds. Inputs are not mutated. *)

val table_header : string list

val rows : t -> string list list
(** One row per instrument, sorted by name (so dotted prefixes group by
    component); shaped for {!table_header}. *)

val render : t -> string
(** Aligned plain-text table of {!rows}. *)
