lib/iobond/iobond.mli: Bm_engine Bm_hw Bm_virtio Mailbox Profile Queue_bridge
