(* Tests for the §6 "future work" features implemented here: live
   upgrade of the bm-hypervisor, SGX enclaves, and the on-demand
   virtualization prototype for live migration. *)

open Bm_engine
open Bm_guest
open Bm_hyp
open Bm_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Live upgrade *)

let test_live_upgrade_no_loss () =
  let tb = Testbed.make ~seed:41 () in
  let server, guest = Testbed.bm_guest tb in
  let completed = ref 0 in
  let max_lat = ref 0.0 in
  (* Steady storage I/O across the upgrade window. *)
  Sim.spawn tb.Testbed.sim (fun () ->
      for _ = 1 to 400 do
        let l = guest.Instance.blk ~op:`Read ~bytes_:4096 in
        max_lat := Float.max !max_lat l;
        incr completed
      done);
  (* Upgrade mid-run. *)
  let upgraded = ref 0 in
  Sim.spawn tb.Testbed.sim (fun () ->
      Sim.delay (Simtime.ms 10.0);
      match Bm_hypervisor.live_upgrade server ~name:"bm0" ~handover_ns:(Simtime.ms 0.2) () with
      | Ok v -> upgraded := v
      | Error e -> failwith e);
  Testbed.run tb;
  check_int "no request lost" 400 !completed;
  check_int "backend now v2" 2 !upgraded;
  check_int "version visible" 2 (Bm_hypervisor.backend_version server ~name:"bm0");
  (* The blackout shows as a bounded latency blip, not an error. *)
  check_bool "blip bounded (< 5ms)" true (!max_lat < Simtime.ms 5.0)

let test_live_upgrade_unknown_guest () =
  let tb = Testbed.make ~seed:41 () in
  let server, _ = Testbed.bm_guest tb in
  let result = ref (Ok 0) in
  Sim.spawn tb.Testbed.sim (fun () ->
      result := Bm_hypervisor.live_upgrade server ~name:"ghost" ());
  Testbed.run tb;
  check_bool "rejected" true (Result.is_error !result)

let test_bridge_pause_accumulates () =
  let sim = Sim.create () in
  let iobond = Bm_iobond.Iobond.create sim ~profile:Bm_iobond.Profile.Fpga () in
  let port = Bm_iobond.Iobond.attach_net iobond () in
  let bridge = port.Bm_iobond.Iobond.net_tx in
  let dev = port.Bm_iobond.Iobond.net_device in
  Bm_iobond.Queue_bridge.pause bridge;
  Sim.spawn sim (fun () ->
      for i = 1 to 5 do
        ignore
          (Bm_virtio.Virtio_net.xmit dev
             (Bm_virtio.Packet.make ~id:i ~src:1 ~dst:2 ~size:64 ~protocol:Bm_virtio.Packet.Udp
                ~sent_at:0.0 ()))
      done);
  Sim.run ~until:Simtime.(ms 1.0) sim;
  check_bool "paused: pop yields nothing" true (Bm_iobond.Queue_bridge.pop bridge = None);
  check_int "work accumulated in shadow ring" 5 (Bm_iobond.Queue_bridge.pending bridge);
  Bm_iobond.Queue_bridge.resume bridge;
  check_bool "resume: pop works" true (Bm_iobond.Queue_bridge.pop bridge <> None)

(* ------------------------------------------------------------------ *)
(* SGX *)

let test_sgx_native_on_bm_refused_on_vm () =
  let tb = Testbed.make ~seed:42 () in
  let _, bm = Testbed.bm_guest tb in
  let _, vm = Testbed.vm_guest tb in
  (match Sgx.create bm ~name:"trading-core" ~epc_mb:64 with
  | Ok enclave ->
    check_bool "enclave on bare metal" true (Sgx.epc_mb enclave = 64);
    Sim.spawn tb.Testbed.sim (fun () ->
        for _ = 1 to 10 do
          Sgx.ecall enclave ~work_ns:10_000.0
        done);
    Testbed.run tb;
    check_int "transitions counted" 10 (Sgx.transitions enclave)
  | Error e -> Alcotest.fail e);
  match Sgx.create vm ~name:"trading-core" ~epc_mb:64 with
  | Ok _ -> Alcotest.fail "stock vm-guest must not run SGX (paper S6)"
  | Error _ -> ()

let test_sgx_epc_budget () =
  let tb = Testbed.make ~seed:42 () in
  let _, bm = Testbed.bm_guest tb in
  (match Sgx.create bm ~name:"big" ~epc_mb:10_000 with
  | Ok _ -> Alcotest.fail "EPC overcommit accepted"
  | Error e -> check_bool "mentions EPC" true (Astring.String.is_infix ~affix:"EPC" e));
  match Sgx.create bm ~name:"none" ~epc_mb:0 with
  | Ok _ -> Alcotest.fail "zero-size enclave accepted"
  | Error _ -> ()

let test_sgx_attestation () =
  let tb = Testbed.make ~seed:42 () in
  let _, bm = Testbed.bm_guest tb in
  match Sgx.create bm ~name:"webapp" ~epc_mb:16 with
  | Error e -> Alcotest.fail e
  | Ok enclave ->
    let quote = Sgx.attest enclave in
    check_bool "verifies" true (Sgx.verify_quote ~name:"webapp" ~quote);
    check_bool "wrong name fails" false (Sgx.verify_quote ~name:"webapp2" ~quote)

let test_sgx_ecall_cost () =
  let tb = Testbed.make ~seed:42 () in
  let _, bm = Testbed.bm_guest tb in
  match Sgx.create bm ~name:"micro" ~epc_mb:8 with
  | Error e -> Alcotest.fail e
  | Ok enclave ->
    let elapsed = ref 0.0 in
    Sim.spawn tb.Testbed.sim (fun () ->
        let t0 = Sim.clock () in
        Sgx.ecall enclave ~work_ns:0.0;
        elapsed := Sim.clock () -. t0);
    Testbed.run tb;
    (* 16k cycles at 2.5GHz = 6.4us, with the bm 4% bonus. *)
    check_bool "transition cost ~6us" true (!elapsed > 4_000.0 && !elapsed < 9_000.0)

(* ------------------------------------------------------------------ *)
(* On-demand virtualization / live migration *)

let test_inject_slows_guest () =
  let tb = Testbed.make ~seed:43 () in
  let _, bm = Testbed.bm_guest tb in
  let native = ref nan and injected_time = ref nan in
  Sim.spawn tb.Testbed.sim (fun () ->
      let t0 = Sim.clock () in
      bm.Instance.exec_mem_ns ~working_set:1e9 ~locality:0.5 1e6;
      native := Sim.clock () -. t0;
      match Live_migration.inject tb.Testbed.sim (Rng.create ~seed:43) bm with
      | Error e -> failwith e
      | Ok inj ->
        let guest = Live_migration.as_instance inj in
        check_bool "now reports virtual" true (guest.Instance.kind = Instance.Virtual);
        let t1 = Sim.clock () in
        guest.Instance.exec_mem_ns ~working_set:1e9 ~locality:0.5 1e6;
        injected_time := Sim.clock () -. t1);
  Testbed.run tb;
  check_bool "injected layer costs performance" true (!injected_time > !native *. 1.02)

let test_inject_requires_bare_metal () =
  let tb = Testbed.make ~seed:43 () in
  let _, vm = Testbed.vm_guest tb in
  let result = ref (Error "") in
  Sim.spawn tb.Testbed.sim (fun () ->
      result :=
        (match Live_migration.inject tb.Testbed.sim (Rng.create ~seed:1) vm with
        | Ok _ -> Ok ()
        | Error e -> Error e));
  Testbed.run tb;
  check_bool "vm rejected" true (Result.is_error !result)

let test_migration_converges () =
  let tb = Testbed.make ~seed:44 () in
  let _, bm = Testbed.bm_guest tb in
  let stats = ref None in
  Sim.spawn tb.Testbed.sim (fun () ->
      match Live_migration.inject tb.Testbed.sim (Rng.create ~seed:2) bm with
      | Error e -> failwith e
      | Ok inj -> (
        match Live_migration.migrate inj ~dirty_rate_gb_s:1.0 ~mem_gb:64 () with
        | Ok s -> stats := Some s
        | Error e -> failwith e));
  Testbed.run tb;
  match !stats with
  | None -> Alcotest.fail "migration did not finish"
  | Some s ->
    check_bool "several pre-copy rounds" true (s.Live_migration.precopy_rounds >= 2);
    check_bool "blackout under 10ms" true (s.Live_migration.blackout_ns <= 10e6 +. 1.0);
    check_bool "copied at least the RAM" true (s.Live_migration.bytes_copied >= 64e9);
    check_bool "total dominated by copy" true (s.Live_migration.total_ns > 5.12e9 *. 0.9)

let test_migration_never_converges () =
  let tb = Testbed.make ~seed:44 () in
  let _, bm = Testbed.bm_guest tb in
  let result = ref (Ok ()) in
  Sim.spawn tb.Testbed.sim (fun () ->
      match Live_migration.inject tb.Testbed.sim (Rng.create ~seed:2) bm with
      | Error e -> failwith e
      | Ok inj -> (
        match Live_migration.migrate inj ~dirty_rate_gb_s:20.0 ~mem_gb:64 () with
        | Ok _ -> result := Ok ()
        | Error e -> result := Error e));
  Testbed.run tb;
  check_bool "dirtying faster than link rejected" true (Result.is_error !result)

let suites =
  [
    ( "ext.live_upgrade",
      [
        Alcotest.test_case "no loss across upgrade" `Quick test_live_upgrade_no_loss;
        Alcotest.test_case "unknown guest" `Quick test_live_upgrade_unknown_guest;
        Alcotest.test_case "bridge pause accumulates" `Quick test_bridge_pause_accumulates;
      ] );
    ( "ext.sgx",
      [
        Alcotest.test_case "native on bm, refused on vm" `Quick test_sgx_native_on_bm_refused_on_vm;
        Alcotest.test_case "EPC budget" `Quick test_sgx_epc_budget;
        Alcotest.test_case "attestation" `Quick test_sgx_attestation;
        Alcotest.test_case "ecall transition cost" `Quick test_sgx_ecall_cost;
      ] );
    ( "ext.live_migration",
      [
        Alcotest.test_case "inject slows guest" `Quick test_inject_slows_guest;
        Alcotest.test_case "inject requires bare metal" `Quick test_inject_requires_bare_metal;
        Alcotest.test_case "pre-copy converges" `Quick test_migration_converges;
        Alcotest.test_case "non-convergence detected" `Quick test_migration_never_converges;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* IO-Bond flow offload (§6) *)

let mk ?(proto = Bm_virtio.Packet.Udp) ~src ~dst id =
  Bm_virtio.Packet.make ~id ~src ~dst ~size:64 ~protocol:proto ~sent_at:0.0 ()

let test_offload_classify_install () =
  let ot = Bm_iobond.Offload.create () in
  let pkt = mk ~src:1 ~dst:2 7 in
  check_bool "first packet slow" true (Bm_iobond.Offload.classify ot pkt = `Slow_path);
  Bm_iobond.Offload.install ot pkt;
  check_bool "then offloaded" true (Bm_iobond.Offload.classify ot pkt = `Offloaded);
  (* A different protocol is a different flow. *)
  check_bool "other proto slow" true
    (Bm_iobond.Offload.classify ot (mk ~proto:Bm_virtio.Packet.Tcp ~src:1 ~dst:2 8) = `Slow_path);
  Bm_iobond.Offload.install ot pkt;
  check_int "install idempotent" 1 (Bm_iobond.Offload.occupancy ot);
  Bm_iobond.Offload.remove_flow ot ~src:1 ~dst:2;
  check_bool "removed flow is slow again" true
    (Bm_iobond.Offload.classify ot pkt = `Slow_path)

let test_offload_eviction () =
  let ot = Bm_iobond.Offload.create ~capacity:4 () in
  for i = 0 to 9 do
    Bm_iobond.Offload.install ot (mk ~src:i ~dst:100 i)
  done;
  check_bool "bounded occupancy" true (Bm_iobond.Offload.occupancy ot <= 4);
  check_bool "evictions counted" true (Bm_iobond.Offload.evictions ot >= 6);
  (* The most recently installed flows survive. *)
  check_bool "newest survives" true
    (Bm_iobond.Offload.classify ot (mk ~src:9 ~dst:100 99) = `Offloaded);
  check_bool "oldest evicted" true
    (Bm_iobond.Offload.classify ot (mk ~src:0 ~dst:100 98) = `Slow_path)

let test_offload_end_to_end () =
  let tb = Testbed.make ~seed:45 () in
  let server =
    Bm_hyp.Bm_hypervisor.create_server tb.Testbed.sim tb.Testbed.rng ~fabric:tb.Testbed.fabric
      ~storage:tb.Testbed.storage ~boards:2 ()
  in
  let g name =
    Result.get_ok (Bm_hyp.Bm_hypervisor.provision server ~name ~offload:true ())
  in
  let a = g "a" and b = g "b" in
  let got = ref 0 in
  b.Instance.set_rx_handler (fun pkt -> got := !got + pkt.Bm_virtio.Packet.count);
  Sim.spawn tb.Testbed.sim (fun () ->
      for i = 1 to 50 do
        ignore
          (a.Instance.send
             (Bm_virtio.Packet.make ~id:i ~src:a.Instance.endpoint ~dst:b.Instance.endpoint
                ~size:64 ~protocol:Bm_virtio.Packet.Udp ~sent_at:(Sim.clock ()) ()))
      done);
  Sim.run ~until:Simtime.(ms 50.0) tb.Testbed.sim;
  check_int "all delivered through hw path" 50 !got;
  match Bm_hyp.Bm_hypervisor.offload_table server ~name:"a" with
  | None -> Alcotest.fail "offload table missing"
  | Some ot ->
    check_bool "flow installed once" true (Bm_iobond.Offload.occupancy ot >= 1);
    check_bool "most packets offloaded" true
      (Bm_iobond.Offload.hits ot > Bm_iobond.Offload.misses ot)

let offload_suites =
  [
    ( "ext.offload",
      [
        Alcotest.test_case "classify/install/remove" `Quick test_offload_classify_install;
        Alcotest.test_case "eviction" `Quick test_offload_eviction;
        Alcotest.test_case "end to end hw path" `Quick test_offload_end_to_end;
      ] );
  ]

let suites = suites @ offload_suites
