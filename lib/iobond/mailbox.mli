(** IO-Bond's register file toward the bm-hypervisor.

    A pair of mailbox registers signals guest PCI accesses; each shadow
    vring has a head register (written by IO-Bond as it mirrors guest
    requests) and a tail register (written by the bm-hypervisor as it
    completes them) (§3.4.3). Head values are also mirrored into the
    shared shadow-ring buffer, so the hypervisor's poll-mode thread reads
    them from host memory; writes toward IO-Bond cross the base PCIe link
    and cost a register hop. *)

type t

val create :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  base_link:Bm_hw.Pcie.t ->
  t
(** With [obs], tail writes trace on ["iobond.mailbox"] and tail
    writes / forwarded PCI accesses are counted. With [fault], a
    [Mailbox_drop] window makes tail writes cross the link but fail to
    latch; the mailbox retries with exponential backoff (budgeted to
    outlast a default drop window) and counts
    ["iobond.mailbox.dropped_tail_writes"] per lost attempt and
    ["iobond.mailbox.lost_tail_writes"] per write abandoned after the
    retry budget. *)

val ring_count : t -> int
val alloc_ring : t -> int
(** Register a shadow vring; returns its index. *)

val head : t -> int -> int
(** Current head (shadow avail index) for ring [i]; a cheap host-memory
    read for the poll-mode thread. *)

val set_head : t -> int -> int -> unit
(** IO-Bond side: publish a new head value (free: the FPGA owns it and
    DMA-mirrors it with the ring data). *)

val tail : t -> int -> int

val write_tail : t -> int -> int -> unit
(** Hypervisor side: posted register write across the base link —
    delays the calling process by the link's register latency (per
    attempt, when fault injection forces retries). Tail values are
    absolute, so a retried or even lost write never corrupts state. *)

val notify_pci_access : t -> unit
(** Count one guest PCI access forwarded through the mailbox pair. *)

val pci_access_count : t -> int
val tail_writes : t -> int

val lost_tail_writes : t -> int
(** Tail writes abandoned after exhausting the retry budget. *)
