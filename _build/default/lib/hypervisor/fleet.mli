(** Fleet-scale Monte-Carlo telemetry (Table 2, Fig. 1).

    The paper measures 300,000 production VMs for five minutes (Table 2:
    VM exits per second per vCPU) and 20,000 VMs for 24 hours (Fig. 1:
    preemption percentiles). We cannot replay production traces, so this
    module samples the same statistics from the mechanism models: each VM
    draws a workload class, the class implies an exit-rate distribution
    (and interacts with the host-load model for preemption). *)

type workload_class = Idle | Web | Database | Cache | Hpc | Io_heavy

val class_mix : (workload_class * float) list
(** Population mixture (sums to 1). *)

val sample_class : Bm_engine.Rng.t -> workload_class

val sample_exit_rate : Bm_engine.Rng.t -> workload_class -> float
(** Exits per second per vCPU for one VM of this class. *)

type exit_survey = {
  vms : int;
  over_10k : float;  (** fraction of VMs with > 10K exits/s/vCPU *)
  over_50k : float;
  over_100k : float;
}

val survey_exits : Bm_engine.Rng.t -> vms:int -> exit_survey
(** Reproduces Table 2 (paper: 3.82%% / 0.37%% / 0.13%%). *)

type preempt_window = {
  hour : int;
  shared_p99 : float;
  shared_p999 : float;
  exclusive_p99 : float;
  exclusive_p999 : float;
}

val survey_preemption :
  Bm_engine.Rng.t -> vms:int -> hours:int -> preempt_window list
(** Reproduces Fig. 1: per hour of the day, the p99/p99.9 preemption
    fraction across the fleet, for shareable and exclusive VMs. Host
    load follows a diurnal curve. *)

val diurnal_load : hour:int -> float
(** The host-load curve used by {!survey_preemption}. *)
