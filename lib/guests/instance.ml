type kind = Bare_metal of Bm_iobond.Profile.t | Virtual | Physical

type blk_op = [ `Read | `Write | `Flush ]

type blk_error = [ `Limited | `Busy | `Rejected ]

type t = {
  name : string;
  kind : kind;
  spec : Bm_hw.Cpu_spec.t;
  endpoint : int;
  cores : Bm_hw.Cores.t;
  memory : Bm_hw.Memory.t;
  os : Guest_os.t;
  exec_ns : float -> unit;
  exec_mem_ns : working_set:float -> locality:float -> float -> unit;
  mem_stream : bytes_:float -> unit;
  send : Bm_virtio.Packet.t -> bool;
  send_dpdk : Bm_virtio.Packet.t -> bool;
  set_rx_handler : (Bm_virtio.Packet.t -> unit) -> unit;
  blk : op:blk_op -> bytes_:int -> float;
  blk_try : op:blk_op -> bytes_:int -> (float, blk_error) result;
  probe : unit -> (int, string) result;
  pause : unit -> unit;
  ipi : unit -> unit;
  set_poll_mode : bool -> unit;
  timer_arm : unit -> unit;
}

let relative_single_thread t = t.spec.Bm_hw.Cpu_spec.single_thread_mark

let kind_name t =
  match t.kind with
  | Bare_metal profile -> "bm-guest/" ^ Bm_iobond.Profile.name profile
  | Virtual -> "vm-guest"
  | Physical -> "physical"
