(* Fault plans, guard semantics, and recovery invariants: plans are
   deterministic, guards retry/timeout/trip as specified, and the
   datapath neither loses nor duplicates a request under any plan. *)

open Bm_engine
open Bm_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let recoverable_counts =
  [
    (Fault.Link_down, 2);
    (Fault.Dma_stall, 2);
    (Fault.Mailbox_drop, 2);
    (Fault.Firmware_wedge, 1);
    (Fault.Pmd_crash, 1);
  ]

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_plan_deterministic () =
  let a = Fault.make_plan ~seed:7 recoverable_counts in
  let b = Fault.make_plan ~seed:7 recoverable_counts in
  check_string "same seed, same plan" (Fault.render_plan a) (Fault.render_plan b);
  let c = Fault.make_plan ~seed:8 recoverable_counts in
  check_bool "different seed, different plan" false
    (Fault.render_plan a = Fault.render_plan c)

let test_plan_streams_independent () =
  (* Each kind draws from its own split stream, so asking for more
     pmd_crash events must not move the link_down times. *)
  let times plan =
    List.filter_map
      (fun (e : Fault.event) -> if e.Fault.kind = Fault.Link_down then Some e.Fault.at else None)
      plan.Fault.events
  in
  let small = Fault.make_plan ~seed:11 [ (Fault.Link_down, 3) ] in
  let big = Fault.make_plan ~seed:11 [ (Fault.Link_down, 3); (Fault.Pmd_crash, 5) ] in
  Alcotest.(check (list (float 0.0))) "link_down times unmoved" (times small) (times big)

let test_parse_spec () =
  (match Fault.parse_spec "42:link_down=2,firmware_wedge=1" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check_int "seed" 42 p.Fault.seed;
    check_int "events" 3 (List.length p.Fault.events));
  (match Fault.parse_spec "7:default" with
  | Error e -> Alcotest.fail e
  | Ok p -> check_bool "default plan non-empty" true (p.Fault.events <> []));
  (match Fault.parse_spec "7:warp_core_breach=1" with
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error _ -> ());
  match Fault.parse_spec "no-seed" with
  | Ok _ -> Alcotest.fail "missing seed accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Injector *)

let one_event_plan ~kind ~at ~duration_ns =
  { Fault.seed = 0; horizon_ns = 1e6; events = [ { Fault.kind; at; duration_ns } ] }

let test_window_opens_and_closes () =
  let sim = Sim.create () in
  let f = Fault.create sim (one_event_plan ~kind:Fault.Link_down ~at:100.0 ~duration_ns:50.0) in
  let fired = ref 0 in
  Fault.subscribe f Fault.Link_down (fun _ -> incr fired);
  Fault.arm f;
  let cleared_at = ref 0.0 in
  Sim.spawn sim (fun () ->
      check_bool "closed before" false (Fault.is_active f Fault.Link_down);
      Sim.delay 120.0;
      check_bool "open inside window" true (Fault.is_active f Fault.Link_down);
      Fault.block_until_clear f Fault.Link_down;
      cleared_at := Sim.clock ());
  Sim.run sim;
  check_int "subscriber fired once" 1 !fired;
  check_int "injected" 1 (Fault.injected f);
  check_bool "unblocked at window close" true (!cleared_at >= 150.0)

let test_null_injector () =
  let sim = Sim.create () in
  Fault.subscribe Fault.none Fault.Pmd_crash (fun _ -> Alcotest.fail "null injector fired");
  Sim.spawn sim (fun () ->
      let t0 = Sim.clock () in
      Fault.block_until_clear Fault.none Fault.Firmware_wedge;
      check_bool "no wait on null injector" true (Sim.clock () = t0));
  Sim.run sim;
  check_bool "never active" false (Fault.is_active Fault.none Fault.Link_down)

let test_recovery_at_horizon () =
  (* Regression: a window ending exactly at the plan horizon — and a
     permanent Server_failure window that would outlive it — must both
     be reported recovered by the terminal recovery event, so
     availability accounting never leaks an open window. *)
  let sim = Sim.create () in
  let plan =
    {
      Fault.seed = 0;
      horizon_ns = 1_000.0;
      events =
        [
          { Fault.kind = Fault.Link_down; at = 500.0; duration_ns = 500.0 };
          { Fault.kind = Fault.Server_failure; at = 600.0; duration_ns = infinity };
        ];
    }
  in
  let f = Fault.create sim plan in
  Fault.arm f;
  Sim.run sim;
  check_int "both windows opened" 2 (Fault.injected f);
  check_int "recovered exactly once each" 2 (Fault.recovered f);
  check_bool "summary balances" true
    (Astring.String.is_infix ~affix:"recovered/injected: 2/2" (Fault.summary f))

(* ------------------------------------------------------------------ *)
(* Guard *)

let test_guard_retries_until_success () =
  let sim = Sim.create () in
  let g = Fault.Guard.create sim ~name:"t" in
  let attempts = ref 0 in
  Sim.spawn sim (fun () ->
      let result =
        Fault.Guard.run g (fun () ->
            incr attempts;
            if !attempts < 3 then Error "transient" else Ok "done")
      in
      check_bool "eventually succeeds" true (result = Ok "done"));
  Sim.run sim;
  check_int "attempts" 3 !attempts;
  check_int "retries counted" 2 (Fault.Guard.retries g)

let test_guard_first_try_is_free () =
  let sim = Sim.create () in
  let g = Fault.Guard.create sim ~name:"t" in
  Sim.spawn sim (fun () ->
      Sim.delay 5.0;
      let t0 = Sim.clock () in
      (match Fault.Guard.run g (fun () -> Ok ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      check_bool "healthy path pays nothing" true (Sim.clock () = t0));
  Sim.run sim

let test_guard_circuit_breaker () =
  let sim = Sim.create () in
  let policy =
    {
      Fault.Guard.default_policy with
      max_attempts = 2;
      backoff_ns = 10.0;
      circuit_threshold = 2;
      circuit_cooldown_ns = 1e9;
    }
  in
  let g = Fault.Guard.create ~policy sim ~name:"t" in
  let attempts = ref 0 in
  let failing () =
    incr attempts;
    Error "down"
  in
  Sim.spawn sim (fun () ->
      (match Fault.Guard.run g failing with Ok _ -> Alcotest.fail "?" | Error _ -> ());
      (match Fault.Guard.run g failing with Ok _ -> Alcotest.fail "?" | Error _ -> ());
      check_bool "breaker tripped" true (Fault.Guard.circuit_open g);
      let before = !attempts in
      (match Fault.Guard.run g failing with Ok _ -> Alcotest.fail "?" | Error _ -> ());
      check_int "rejected without attempting" before !attempts);
  Sim.run sim;
  check_int "two exhausted runs" 4 !attempts;
  check_int "one trip" 1 (Fault.Guard.circuit_opens g)

let test_with_timeout () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () ->
      (match Fault.Guard.with_timeout sim ~timeout_ns:100.0 (fun () -> Sim.delay 1_000.0) with
      | Ok () -> Alcotest.fail "slow op beat its deadline"
      | Error `Timeout -> ());
      match Fault.Guard.with_timeout sim ~timeout_ns:1_000.0 (fun () -> Sim.delay 10.0; 42) with
      | Ok n -> check_int "fast op wins" 42 n
      | Error `Timeout -> Alcotest.fail "fast op timed out");
  Sim.run sim

(* ------------------------------------------------------------------ *)
(* Datapath recovery *)

(* [workers] fibers issue [per_worker] sequential 4 KiB reads; returns
   how many came back (the run drains, so anything lost shows up as a
   stuck fiber and a short count). *)
let drive_reads tb inst ~workers ~per_worker =
  let done_ = ref 0 in
  for _ = 1 to workers do
    Sim.spawn tb.Testbed.sim (fun () ->
        for _ = 1 to per_worker do
          ignore (inst.Bm_guest.Instance.blk ~op:`Read ~bytes_:4096);
          incr done_
        done)
  done;
  Testbed.run tb;
  !done_

let meter_count m name =
  match Metrics.meter m name with Some meter -> Stats.Meter.count meter | None -> 0

let test_wedge_reset_recovers () =
  let metrics = Metrics.create () in
  let faults = one_event_plan ~kind:Fault.Firmware_wedge ~at:150_000.0 ~duration_ns:100_000.0 in
  let tb = Testbed.make ~seed:5 ~metrics ~faults () in
  let server, inst = Testbed.bm_guest tb in
  let completions = drive_reads tb inst ~workers:4 ~per_worker:5 in
  check_int "every read returned" 20 completions;
  check_bool "device was reset" true (Metrics.counter_value metrics "iobond.resets" >= 1.0);
  let board =
    match Bm_hyp.Bm_hypervisor.guest_board server ~name:"bm0" with
    | Some b -> b
    | None -> Alcotest.fail "guest board missing"
  in
  check_int "reset count on the device" 1 (Bm_iobond.Iobond.resets (Bm_guest.Board.iobond board))

let test_pmd_crash_respawns () =
  let metrics = Metrics.create () in
  let faults = one_event_plan ~kind:Fault.Pmd_crash ~at:200_000.0 ~duration_ns:150_000.0 in
  let tb = Testbed.make ~seed:5 ~metrics ~faults () in
  let server, inst = Testbed.bm_guest tb in
  let completions = drive_reads tb inst ~workers:4 ~per_worker:5 in
  check_int "every read returned" 20 completions;
  check_int "one crash" 1 (Bm_hyp.Bm_hypervisor.pmd_crashes server);
  check_bool "backend is back" true (Bm_hyp.Bm_hypervisor.pmd_alive server);
  check_bool "respawn recorded" true (Metrics.counter_value metrics "hyp.bm.pmd_respawns" = 1.0)

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Arbitrary plan over the recoverable kinds. *)
let plan_gen =
  QCheck.Gen.(
    map2
      (fun seed counts ->
        Fault.make_plan ~seed
          (List.map2 (fun (kind, _) n -> (kind, n)) recoverable_counts counts))
      (int_range 1 10_000)
      (flatten_l (List.map (fun _ -> int_range 0 2) recoverable_counts)))

let plan_arb = QCheck.make ~print:Fault.render_plan plan_gen

(* The forward pumps also mirror the guest's pre-posted net rx buffers,
   so the expected chain count comes from a clean run of the identical
   workload, not from the request count alone. *)
let clean_forwarded =
  lazy
    (let metrics = Metrics.create () in
     let tb = Testbed.make ~seed:3 ~metrics () in
     let _server, inst = Testbed.bm_guest tb in
     ignore (drive_reads tb inst ~workers:3 ~per_worker:4);
     meter_count metrics "iobond.forwarded")

let prop_no_loss_no_dup =
  QCheck.Test.make ~name:"completions = requests under any fault plan" ~count:25 plan_arb
    (fun plan ->
      let metrics = Metrics.create () in
      let tb = Testbed.make ~seed:3 ~metrics ~faults:plan () in
      let _server, inst = Testbed.bm_guest tb in
      let issued = 3 * 4 in
      let completions = drive_reads tb inst ~workers:3 ~per_worker:4 in
      (* Every blocking call returned (no loss); every request was
         completed exactly once (no duplicates); recovery re-posted no
         chain a second time (forward count matches the clean run). *)
      completions = issued
      && meter_count metrics "iobond.completed" = issued
      && meter_count metrics "iobond.forwarded" = Lazy.force clean_forwarded)

let prop_same_seed_same_metrics =
  QCheck.Test.make ~name:"same seed + same plan = identical metrics" ~count:10
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let once () =
        let metrics = Metrics.create () in
        let plan = Fault.make_plan ~seed recoverable_counts in
        let tb = Testbed.make ~seed ~metrics ~faults:plan () in
        let _server, inst = Testbed.bm_guest tb in
        ignore (drive_reads tb inst ~workers:3 ~per_worker:4);
        Metrics.render metrics
      in
      once () = once ())

let test_availability_outcome_deterministic () =
  let once () =
    match Bmhive.Experiments.run_one ~quick:true ~seed:2020 "availability" with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  check_bool "bit-identical outcome" true (once () = once ())

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
        Alcotest.test_case "per-kind streams independent" `Quick test_plan_streams_independent;
        Alcotest.test_case "parse_spec" `Quick test_parse_spec;
      ] );
    ( "faults.injector",
      [
        Alcotest.test_case "window opens and closes" `Quick test_window_opens_and_closes;
        Alcotest.test_case "null injector" `Quick test_null_injector;
        Alcotest.test_case "recovery at horizon" `Quick test_recovery_at_horizon;
      ] );
    ( "faults.guard",
      [
        Alcotest.test_case "retries until success" `Quick test_guard_retries_until_success;
        Alcotest.test_case "first try is free" `Quick test_guard_first_try_is_free;
        Alcotest.test_case "circuit breaker" `Quick test_guard_circuit_breaker;
        Alcotest.test_case "with_timeout" `Quick test_with_timeout;
      ] );
    ( "faults.recovery",
      [
        Alcotest.test_case "wedge reset recovers" `Quick test_wedge_reset_recovers;
        Alcotest.test_case "pmd crash respawns" `Quick test_pmd_crash_respawns;
        Alcotest.test_case "availability deterministic" `Slow
          test_availability_outcome_deterministic;
      ] );
    ("faults.properties", qsuite [ prop_no_loss_no_dup; prop_same_seed_same_metrics ]);
  ]
