lib/workloads/mariadb.ml: Array Bm_engine Bm_guest Bm_virtio Instance List Packet Rng Rpc Sim Simtime Stats
