(** PCIe links and register access.

    IO-Bond exposes a x4 link per emulated virtio device toward the
    compute board (32 Gbit/s each) and a x8 link toward the base server
    (§3.4.3). Register (config/BAR) accesses through the low-cost FPGA
    take 0.8 µs per hop; an ASIC would take 0.2 µs (§6).

    Bulk transfers serialise through the link: concurrent DMA shares the
    wire in FIFO order, which is how a real link behaves at the flow
    level. *)

type t

val create :
  ?obs:Bm_engine.Obs.t ->
  ?fault:Bm_engine.Fault.t ->
  Bm_engine.Sim.t ->
  gbit_s:float ->
  ?register_ns:float ->
  ?mtu_bytes:int ->
  unit ->
  t
(** [create sim ~gbit_s ()] is a link with [gbit_s] usable bandwidth.
    [register_ns] (default 800 — the paper's FPGA) is the latency of one
    non-posted register read/write crossing this link. [mtu_bytes]
    (default 256, a typical max-payload TLP) bounds the transfer quantum
    so small transfers are not unfairly delayed behind huge ones. With
    [obs], register accesses count to ["hw.pcie.register_accesses"] and
    transfer latencies (including wire queueing) feed
    ["hw.pcie.transfer_ns"], with spans on the ["hw.pcie"] track. With
    [fault], a [Link_down] window stalls register accesses and transfer
    chunks until the link retrains (counted in ["hw.pcie.link_stalls"]);
    nothing in flight is lost. *)

val x4 : ?obs:Bm_engine.Obs.t -> ?fault:Bm_engine.Fault.t -> Bm_engine.Sim.t -> register_ns:float -> t
(** 32 Gbit/s, per the paper's virtio device links. *)

val x8 : ?obs:Bm_engine.Obs.t -> ?fault:Bm_engine.Fault.t -> Bm_engine.Sim.t -> register_ns:float -> t
(** 64 Gbit/s, the IO-Bond uplink to the bm-hypervisor. *)

val gbit_s : t -> float
val register_ns : t -> float

val register_access : t -> unit
(** One blocking register read/write: delays the caller by
    [register_ns]. *)

val transfer : t -> bytes_:int -> unit
(** Move [bytes_] across the link, waiting for the wire if busy. *)

val transfer_time_ns : t -> bytes_:int -> float
(** Unloaded serialisation time for [bytes_]. *)

val account : t -> bytes_:int -> unit
(** Record payload carried by an external transfer model (e.g. a DMA
    engine streaming through this link) without re-serialising it. *)

val bytes_moved : t -> float
(** Total payload bytes carried since creation. *)
