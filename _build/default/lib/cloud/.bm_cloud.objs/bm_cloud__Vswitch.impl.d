lib/cloud/vswitch.ml: Bm_engine Bm_hw Bm_virtio Cores Hashtbl Metrics Obs Packet Sim Trace
