lib/hypervisor/fleet.ml: Array Bm_engine Float List Preempt Rng
