type owner = int

type line = { mutable tag : int; mutable owner : owner; mutable lru : int; mutable valid : bool }

type counters = { mutable hits : int; mutable accesses : int }

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  lines : line array array; (* sets × ways *)
  mutable tick : int;
  stats : (owner, counters) Hashtbl.t;
}

let create ~size_kb ~ways ~line_bytes =
  let total = size_kb * 1024 in
  assert (total mod (ways * line_bytes) = 0);
  let sets = total / (ways * line_bytes) in
  let make_line () = { tag = -1; owner = -1; lru = 0; valid = false } in
  {
    sets;
    ways;
    line_bytes;
    lines = Array.init sets (fun _ -> Array.init ways (fun _ -> make_line ()));
    tick = 0;
    stats = Hashtbl.create 8;
  }

let sets t = t.sets
let ways t = t.ways
let line_bytes t = t.line_bytes

let counters t owner =
  match Hashtbl.find_opt t.stats owner with
  | Some c -> c
  | None ->
    let c = { hits = 0; accesses = 0 } in
    Hashtbl.add t.stats owner c;
    c

let access t ~owner addr =
  t.tick <- t.tick + 1;
  let block = addr / t.line_bytes in
  let set = block mod t.sets in
  let tag = block / t.sets in
  let lines = t.lines.(set) in
  let c = counters t owner in
  c.accesses <- c.accesses + 1;
  let rec find i = if i >= t.ways then None else if lines.(i).valid && lines.(i).tag = tag then Some i else find (i + 1) in
  match find 0 with
  | Some i ->
    lines.(i).lru <- t.tick;
    lines.(i).owner <- owner;
    c.hits <- c.hits + 1;
    `Hit
  | None ->
    (* Fill an invalid way if there is one, otherwise evict the LRU way. *)
    let victim = ref 0 in
    (try
       for i = 0 to t.ways - 1 do
         if not lines.(i).valid then begin
           victim := i;
           raise Exit
         end
       done;
       for i = 1 to t.ways - 1 do
         if lines.(i).lru < lines.(!victim).lru then victim := i
       done
     with Exit -> ());
    let v = lines.(!victim) in
    v.tag <- tag;
    v.owner <- owner;
    v.lru <- t.tick;
    v.valid <- true;
    `Miss

let occupancy t ~owner =
  let owned = ref 0 and valid = ref 0 in
  Array.iter
    (Array.iter (fun l ->
         if l.valid then begin
           incr valid;
           if l.owner = owner then incr owned
         end))
    t.lines;
  if !valid = 0 then 0.0 else float_of_int !owned /. float_of_int !valid

let hit_ratio t ~owner =
  match Hashtbl.find_opt t.stats owner with
  | None -> nan
  | Some c -> if c.accesses = 0 then nan else float_of_int c.hits /. float_of_int c.accesses

let reset_stats t = Hashtbl.reset t.stats

let thrash t ~owner =
  for set = 0 to t.sets - 1 do
    for way = 0 to t.ways - 1 do
      (* Distinct tags per way guarantee every resident line is evicted. *)
      let block = ((way + 1) * t.sets * 7919) + set in
      ignore (access t ~owner (block * t.line_bytes))
    done
  done
