(** VM-exit taxonomy and cost (§2.1).

    "Many events in the guest can cause VM exits, such as updates to MSRs
    …, IPIs …, and certain page faults. … It takes about 10 µs for the
    KVM hypervisor to handle an event, but could be longer if the event
    handler is preempted by the kernel. The performance overhead becomes
    observable when there are more than 5,000 VM exits per second." *)

type reason =
  | Ept_violation
  | Msr_access
  | Ipi
  | Io_instruction  (** port/config-space access emulation *)
  | Hlt
  | External_interrupt
  | Interrupt_window  (** virtual interrupt injection *)
  | Cpuid

val handle_ns : reason -> float
(** Hypervisor time to handle one exit of this kind. Heavyweight exits
    cost the paper's ~10 µs; lightweight ones (HLT wake-ups, CPUID) less. *)

val observable_threshold_per_s : float
(** 5,000 exits/s — where the paper says overhead becomes observable. *)

type counters

val create_counters : ?obs:Bm_engine.Obs.t -> ?track:string -> unit -> counters
(** With [obs], each {!record} emits a per-reason instant on [track]
    (default ["hyp.vmexit"]) and bumps the ["hyp.vmexit.<reason>"]
    counter. *)

val record : counters -> reason -> unit
val count : counters -> reason -> int
val total : counters -> int
val total_time_ns : counters -> float
val rate_per_s : counters -> elapsed_ns:float -> float
val pp : Format.formatter -> counters -> unit
