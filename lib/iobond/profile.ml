type t = Fpga | Asic

let register_ns = function Fpga -> 800.0 | Asic -> 200.0
let pci_emulation_ns t = 2.0 *. register_ns t
let dma_gbit_s = function Fpga | Asic -> 50.0
let dma_setup_ns = function Fpga -> 250.0 | Asic -> 100.0
let name = function Fpga -> "FPGA" | Asic -> "ASIC"
let pp fmt t = Format.pp_print_string fmt (name t)

(* Per-VF/per-queue metric labels, with hard caps so a device with
   many functions cannot blow up the metric registry: indexes past the
   cap collapse into one overflow bucket. *)
let max_labeled_vfs = 8
let max_labeled_queues = 4

let vf_label id = if id >= 0 && id < max_labeled_vfs then "vf" ^ string_of_int id else "vf_other"

let queue_label q =
  if q >= 0 && q < max_labeled_queues then "q" ^ string_of_int q else "q_other"
