lib/hypervisor/nested.ml:
