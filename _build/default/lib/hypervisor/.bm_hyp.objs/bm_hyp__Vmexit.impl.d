lib/hypervisor/vmexit.ml: Array Format List
