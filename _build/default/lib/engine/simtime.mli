(** Simulated time.

    All simulation timestamps and durations are expressed in nanoseconds,
    stored as [float]. A double has 52 bits of mantissa, which keeps
    nanosecond resolution exact for simulations of up to ~52 days — far
    beyond any experiment in this repository. *)

type t = float
(** A point in simulated time, or a duration, in nanoseconds. *)

val ns : float -> t
(** [ns x] is [x] nanoseconds. *)

val us : float -> t
(** [us x] is [x] microseconds. *)

val ms : float -> t
(** [ms x] is [x] milliseconds. *)

val sec : float -> t
(** [sec x] is [x] seconds. *)

val minutes : float -> t
(** [minutes x] is [x] minutes. *)

val hours : float -> t
(** [hours x] is [x] hours. *)

val to_ns : t -> float
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val pp : Format.formatter -> t -> unit
(** Pretty-print a duration with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string
