lib/hypervisor/nested.mli:
