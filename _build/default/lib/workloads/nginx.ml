open Bm_engine
open Bm_guest

type result = { concurrency : int; requests : int; rps : float; avg_ms : float; p99_ms : float }

let page_packets bytes = max 1 ((bytes + 1447) / 1448)

let serve instance ?(page_bytes = 612) ?(cpu_ns = 45_000.0) () =
  Rpc.attach_server instance ~service:(fun _req ->
      (* Parse + locate + sendfile of a cached static page; the page body
         touches little memory, so this is plain CPU work. *)
      instance.Instance.exec_ns cpu_ns;
      { Rpc.reply_bytes = page_bytes; reply_packets = page_packets page_bytes })

let ab sim ~client ~server ~concurrency ~requests =
  let rpc = Rpc.create_client sim client in
  let hist = Stats.Histogram.create ~lo:1_000.0 ~hi:1e10 () in
  let remaining = ref requests in
  let completed = ref 0 in
  let t_first = ref nan in
  let t_end = ref nan in
  for i = 1 to concurrency do
    Sim.spawn sim (fun () ->
        (* Let the server finish posting rx buffers, and ramp the client
           connections up gradually as ab does. *)
        Sim.delay (Simtime.ms 2.0 +. (float_of_int i *. 10_000.0));
        let rec next () =
          if !remaining > 0 then begin
            decr remaining;
            (match Rpc.call rpc ~dst:server.Instance.endpoint ~request_bytes:120 ~handshake:true () with
            | `Reply latency ->
              Stats.Histogram.add hist latency;
              incr completed;
              if Float.is_nan !t_first then t_first := Sim.clock ();
              t_end := Sim.clock ()
            | `Timeout -> ());
            next ()
          end
        in
        next ())
  done;
  Sim.run sim;
  let elapsed = Float.max 1.0 (!t_end -. !t_first) in
  {
    concurrency;
    requests = !completed;
    rps = float_of_int !completed /. Simtime.to_sec elapsed;
    avg_ms = Stats.Histogram.mean hist /. 1e6;
    p99_ms = Stats.Histogram.percentile hist 99.0 /. 1e6;
  }
