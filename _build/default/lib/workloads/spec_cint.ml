open Bm_engine
open Bm_guest

type profile = { bench : string; natural_ns : float; working_set : float; locality : float }

let mb x = x *. 1024.0 *. 1024.0

(* Working sets and localities follow published CINT2006 memory
   characterisations: mcf/omnetpp/astar/xalancbmk are the TLB-hostile
   ones; gobmk/hmmer/h264ref barely leave the caches. Run length: 20 ms
   of native time per benchmark — relative scores are length-invariant. *)
let profiles =
  let t = 20e6 in
  [
    { bench = "perlbench"; natural_ns = t; working_set = mb 380.0; locality = 0.90 };
    { bench = "bzip2"; natural_ns = t; working_set = mb 850.0; locality = 0.85 };
    { bench = "gcc"; natural_ns = t; working_set = mb 900.0; locality = 0.84 };
    { bench = "mcf"; natural_ns = t; working_set = mb 1700.0; locality = 0.62 };
    { bench = "gobmk"; natural_ns = t; working_set = mb 28.0; locality = 0.92 };
    { bench = "hmmer"; natural_ns = t; working_set = mb 60.0; locality = 0.95 };
    { bench = "sjeng"; natural_ns = t; working_set = mb 180.0; locality = 0.88 };
    { bench = "libquantum"; natural_ns = t; working_set = mb 100.0; locality = 0.78 };
    { bench = "h264ref"; natural_ns = t; working_set = mb 65.0; locality = 0.93 };
    { bench = "omnetpp"; natural_ns = t; working_set = mb 175.0; locality = 0.66 };
    { bench = "astar"; natural_ns = t; working_set = mb 330.0; locality = 0.72 };
    { bench = "xalancbmk"; natural_ns = t; working_set = mb 420.0; locality = 0.75 };
  ]

type score = { bench : string; time_ns : float }

let run sim instance =
  let scores = ref [] in
  Sim.spawn sim (fun () ->
      List.iter
        (fun p ->
          let t0 = Sim.clock () in
          instance.Instance.exec_mem_ns ~working_set:p.working_set ~locality:p.locality
            p.natural_ns;
          scores := { bench = p.bench; time_ns = Sim.clock () -. t0 } :: !scores)
        profiles);
  Sim.run sim;
  List.rev !scores

let relative ~baseline scores =
  let time name l =
    match List.find_opt (fun s -> s.bench = name) l with
    | Some s -> s.time_ns
    | None -> invalid_arg ("Spec_cint.relative: missing " ^ name)
  in
  let per_bench =
    List.map
      (fun (p : profile) -> (p.bench, time p.bench baseline /. time p.bench scores))
      profiles
  in
  let geomean =
    exp (List.fold_left (fun acc (_, r) -> acc +. log r) 0.0 per_bench /. float_of_int (List.length per_bench))
  in
  per_bench @ [ ("geomean", geomean) ]
